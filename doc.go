// Package excovery is a from-scratch Go reproduction of "ExCovery — A
// Framework for Distributed System Experiments and a Case Study of Service
// Discovery" (Dittrich, Wanja, Malek; IPDPS Workshops 2014).
//
// The module implements the complete experimentation environment the paper
// describes — abstract XML experiment descriptions, deterministic
// treatment-plan generation, an experiment master driving node managers
// through run phases, fault injection and environment manipulation, event
// and packet measurement with time-sync conditioning, and a four-level
// storage hierarchy ending in a single relational database per experiment
// — together with every substrate it needs: a cooperative discrete-event
// scheduler, an emulated wireless mesh network, two service discovery
// protocols (plus a hybrid), an XML-RPC control plane and an embedded
// relational database. See README.md for a tour, DESIGN.md for the system
// inventory and platform substitutions, and EXPERIMENTS.md for
// paper-vs-measured records.
//
// The public entry point is internal/core:
//
//	exp := desc.OneShot(30)
//	x, _ := core.New(exp, core.Options{})
//	rep, _ := x.Run()
//	db, _ := x.Finalize()
//
// This root package carries the benchmark harness (bench_test.go) that
// regenerates every figure and table artifact of the paper.
package excovery

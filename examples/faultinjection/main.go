// Fault injection: responsiveness of two-party SD under increasing
// message loss (§IV-D1), in the style of the responsiveness studies
// ExCovery was built for [25].
//
// A manipulation process injects a message-loss fault on the SM for the
// whole run; the loss probability is a treatment factor swept from 0 to
// 60 %. Expected shape: responsiveness decreases monotonically with loss,
// and the t_R distribution grows step-like tails at the query-retry
// backoff points (1 s, 3 s, 7 s, …).
//
//	go run ./examples/faultinjection -reps 40
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/metrics"
)

// buildExperiment creates a two-party SD experiment whose treatment factor
// is the message loss probability injected on the SM node.
func buildExperiment(reps int) *desc.Experiment {
	e := desc.OneShot(15)
	e.Name = "sd-loss-sweep"
	e.Comment = "Two-party SD under injected message loss"
	e.Repl.Count = reps
	e.Factors = append(e.Factors,
		desc.FloatFactor("fact_loss", desc.UsageConstant, 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6))

	// The manipulation process runs on the SM node concurrently with the
	// SD process (§IV-D3): it activates the fault before the SM starts
	// publishing and leaves it active for the whole run.
	e.ManipProcesses = []desc.ManipulationProcess{{
		Actor: "actor0", NodesRef: "fact_nodes",
		Actions: []desc.Action{
			desc.Act("fault_msg_loss", "direction", "both", "proto", "sd").
				WithFactorRef("prob", "fact_loss"),
			desc.Flag("fault_armed"),
			desc.WaitEvent(desc.WaitSpec{Event: "done"}),
			desc.Act("fault_stop", "kind", "fault_msg_loss"),
		},
	}}
	// The SM must not publish before the fault is armed, so the loss
	// applies to the announcements as well.
	sm := &e.NodeProcesses[0]
	sm.Actions = append([]desc.Action{
		desc.WaitEvent(desc.WaitSpec{Event: "fault_armed"}),
	}, sm.Actions...)
	return e
}

func main() {
	reps := flag.Int("reps", 40, "replications per loss level")
	flag.Parse()

	exp := buildExperiment(*reps)
	x, err := core.New(exp, core.Options{})
	if err != nil {
		fail(err)
	}
	rep, err := x.Run()
	if err != nil {
		fail(err)
	}

	ms := metrics.FromReport(exp, rep, "", "")
	fmt.Println("responsiveness vs injected message loss ([25]-shaped):")
	fmt.Printf("%-8s %-6s %-10s %-10s %-8s %-8s %-8s\n",
		"loss", "n", "t_R mean", "t_R p90", "R(0.5s)", "R(2s)", "R(15s)")
	groups := metrics.GroupBy(ms, "fact_loss")
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, _ := strconv.ParseFloat(keys[i], 64)
		b, _ := strconv.ParseFloat(keys[j], 64)
		return a < b
	})
	for _, k := range keys {
		g := groups[k]
		trs := metrics.TRs(g)
		sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
		fmt.Printf("%-8s %-6d %-10s %-10s %-8.3f %-8.3f %-8.3f\n",
			k, len(g),
			fmt.Sprintf("%.4fs", sum.Mean),
			fmt.Sprintf("%.4fs", sum.P90),
			metrics.Responsiveness(g, 500*time.Millisecond),
			metrics.Responsiveness(g, 2*time.Second),
			metrics.Responsiveness(g, 15*time.Second))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

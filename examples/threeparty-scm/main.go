// Architecture comparison: two-party (decentralized, multicast) versus
// three-party (centralized through an SCM, directed unicast) service
// discovery (§III-B, Fig. 2) under increasing background load.
//
// Expected shape: the two-party architecture answers fast on an idle
// channel, but its multicast query/response path suffers as the medium
// saturates; the three-party architecture pays an SCM-discovery cost once,
// then serves directed unicast queries that are lean under load.
//
//	go run ./examples/threeparty-scm -reps 30
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/metrics"
	"excovery/internal/netem"
)

func main() {
	reps := flag.Int("reps", 30, "replications per load level")
	flag.Parse()

	loads := []int{0, 200, 400}
	fmt.Printf("%-12s %-10s %-6s %-10s %-10s %-8s\n",
		"architecture", "load_kbps", "n", "t_R mean", "t_R p90", "R(2s)")

	for _, arch := range []string{"two-party", "three-party"} {
		for _, load := range loads {
			ms := runArch(arch, load, *reps)
			trs := metrics.TRs(ms)
			sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
			fmt.Printf("%-12s %-10d %-6d %-10s %-10s %-8.3f\n",
				arch, load, len(ms),
				fmt.Sprintf("%.4fs", sum.Mean),
				fmt.Sprintf("%.4fs", sum.P90),
				metrics.Responsiveness(ms, 2*time.Second))
		}
	}
}

// runArch executes one architecture at one load level and returns the
// per-run metrics.
func runArch(arch string, loadKbps, reps int) []metrics.RunMetric {
	var exp *desc.Experiment
	if arch == "two-party" {
		exp = desc.CaseStudy(reps)
	} else {
		exp = desc.ThreeParty(30, reps)
		// Give the three-party experiment the same environment nodes and
		// load generator as the case study for a fair comparison.
		exp.EnvironmentNodes = []string{"E0", "E1", "E2", "E3"}
		exp.EnvProcesses = desc.CaseStudy(1).EnvProcesses
	}
	// Replace the load factors with a single fixed load level.
	for i := range exp.Factors {
		switch exp.Factors[i].ID {
		case "fact_pairs":
			exp.Factors[i] = desc.IntFactor("fact_pairs", desc.UsageConstant, 4)
		case "fact_bw":
			exp.Factors[i] = desc.IntFactor("fact_bw", desc.UsageConstant, maxInt(loadKbps, 1))
		}
	}
	if exp.Factor("fact_pairs") == nil {
		exp.Factors = append(exp.Factors,
			desc.IntFactor("fact_pairs", desc.UsageConstant, 4),
			desc.IntFactor("fact_bw", desc.UsageConstant, maxInt(loadKbps, 1)))
	}
	if loadKbps == 0 {
		// No load: drop the environment process entirely.
		exp.EnvProcesses = nil
		stripReadyWait(exp)
	}

	x, err := core.New(exp, core.Options{
		Node: netem.NodeParams{RateBps: 1_000_000},
	})
	if err != nil {
		fail(err)
	}
	rep, err := x.Run()
	if err != nil {
		fail(err)
	}
	return metrics.FromReport(exp, rep, "", "")
}

// stripReadyWait removes waits on the ready_to_init flag when no
// environment process will raise it.
func stripReadyWait(exp *desc.Experiment) {
	for pi := range exp.NodeProcesses {
		var kept []desc.Action
		for _, a := range exp.NodeProcesses[pi].Actions {
			if a.Wait != nil && a.Wait.Event == "ready_to_init" {
				continue
			}
			kept = append(kept, a)
		}
		exp.NodeProcesses[pi].Actions = kept
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// Two-party SD under background load — the paper's case study, composed
// from Figs. 4–10: actors A (SM) and B (SU) on a six-node platform, with
// background traffic between a randomized number of environment node pairs
// at a swept data rate, many replications per treatment.
//
// The program prints the treatment table the evaluation would report:
// discovery time and responsiveness per (pairs, bandwidth) combination.
// The expected shape: t_R grows and responsiveness falls with load.
//
//	go run ./examples/twoparty-load -reps 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/metrics"
	"excovery/internal/netem"
)

func main() {
	reps := flag.Int("reps", 50, "replications per treatment (paper: 1000)")
	flag.Parse()

	exp := desc.CaseStudy(*reps)
	x, err := core.New(exp, core.Options{
		// A tight radio rate makes the generated load bite, like the
		// saturated wireless medium of the DES testbed.
		Node: netem.NodeParams{RateBps: 1_500_000},
	})
	if err != nil {
		fail(err)
	}

	wall := time.Now()
	rep, err := x.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("%d runs in %s wall time\n\n", len(rep.Results), time.Since(wall).Round(time.Millisecond))

	ms := metrics.FromReport(exp, rep, "", "")
	fmt.Println("treatment table (paper case study, Figs. 4-10):")
	fmt.Printf("%-8s %-8s %-6s %-10s %-10s %-8s %-8s\n",
		"pairs", "bw_kbps", "n", "t_R mean", "t_R p90", "R(1s)", "R(5s)")

	byPairs := metrics.GroupBy(ms, "fact_pairs")
	for _, pairs := range sortedIntKeys(byPairs) {
		byBw := metrics.GroupBy(byPairs[pairs], "fact_bw")
		for _, bw := range sortedIntKeys(byBw) {
			g := byBw[bw]
			trs := metrics.TRs(g)
			sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
			fmt.Printf("%-8s %-8s %-6d %-10s %-10s %-8.3f %-8.3f\n",
				pairs, bw, len(g),
				fmt.Sprintf("%.4fs", sum.Mean),
				fmt.Sprintf("%.4fs", sum.P90),
				metrics.Responsiveness(g, time.Second),
				metrics.Responsiveness(g, 5*time.Second))
		}
	}
}

func sortedIntKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, _ := strconv.Atoi(keys[i])
		b, _ := strconv.Atoi(keys[j])
		return a < b
	})
	return keys
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// Quickstart: the one-shot discovery process of Fig. 11.
//
// One service manager (SM) publishes a service; one service user (SU)
// searches for it. The experiment description drives both through their
// preparation, execution and clean-up phases; the program prints the
// resulting event timeline and the discovery time t_R.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/metrics"
)

func main() {
	// Build the Fig. 11 experiment: a two-party architecture with a 30 s
	// discovery deadline, described abstractly (the same document could
	// be written as XML and parsed with desc.Parse).
	exp := desc.OneShot(30)

	// Assemble the emulated platform: two nodes in radio range, default
	// link quality (1 ms delay, 1 % loss), zeroconf SDP.
	x, err := core.New(exp, core.Options{})
	if err != nil {
		fail(err)
	}

	rep, err := x.Run()
	if err != nil {
		fail(err)
	}
	rr := rep.Results[0]
	fmt.Println("event timeline (Fig. 11):")
	for _, ev := range rr.Events {
		fmt.Printf("  %s  %-18s %-4s %v\n",
			ev.Time.Format("15:04:05.000000"), ev.Type, ev.Node, ev.Params)
	}

	ms := metrics.FromReport(exp, rep, "", "")
	if len(ms) == 1 && ms[0].Complete {
		fmt.Printf("\ndiscovery completed: t_R = %s\n", ms[0].TR)
	} else {
		fmt.Println("\ndiscovery did not complete within the deadline")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

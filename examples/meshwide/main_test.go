package main

import (
	"testing"

	"excovery/internal/core"
	"excovery/internal/metrics"
	"excovery/internal/netem"
)

// TestMeshwide500NodeSmoke runs the mesh-wide study on a 500-node random
// geometric mesh under virtual time: one replication per blocking level,
// exercising flood fan-out, the packet pool and the precomputed neighbor
// snapshots at a scale far beyond the ten-node default.
func TestMeshwide500NodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("500-node mesh in -short mode")
	}
	const nodes = 500
	exp := buildExperiment(1, nodes)
	x, err := core.New(exp, buildOptions(nodes))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(x.Net.Nodes()); got != nodes {
		t.Fatalf("mesh size = %d, want %d", got, nodes)
	}
	for _, sm := range []netem.NodeID{"M0", "M1", "M2"} {
		if x.Net.HopCount("U", sm) < 0 {
			t.Fatalf("mesh not connected: U cannot reach %s", sm)
		}
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	ms := metrics.FromReport(exp, rep, "", "")
	if len(ms) != 3 {
		t.Fatalf("runs = %d, want 3 (one per blocking level)", len(ms))
	}
	found := 0
	for _, m := range ms {
		found += m.Found
	}
	if found == 0 {
		t.Fatal("no SM discovered in any run on the 500-node mesh")
	}
}

// Mesh-wide discovery under bursty radio loss, in the style of the
// authors' mesh-network responsiveness study [26]: an SU in a random
// geometric mesh must discover a growing set of SMs within a deadline,
// over links with Gilbert–Elliott burst loss.
//
// The number of SMs the SU must find is varied through three levels of the
// actor_node_map blocking factor, and the plan uses the randomized
// complete block design (§II-A3): replication order is shuffled within
// each block while the blocks stay in sequence.
//
// Expected shape: responsiveness falls as more SMs must be found (the
// slowest multicast exchange dominates) and as hop distance grows.
//
//	go run ./examples/meshwide -reps 30 -nodes 50
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/metrics"
	"excovery/internal/netem"
)

// minNodes covers the three SMs, the SU and the six relays of the original
// ten-node study; -nodes grows the relay population beyond that.
const minNodes = 10

func buildExperiment(reps, nodes int) *desc.Experiment {
	abstract := []string{"M0", "M1", "M2", "U"}
	for i := 0; i < nodes-4; i++ {
		abstract = append(abstract, fmt.Sprintf("R%d", i))
	}
	e := &desc.Experiment{
		Name:    "sd-meshwide",
		Comment: "Mesh-wide discovery of k SMs under bursty loss",
		Params: []desc.Param{
			{Key: "sd_architecture", Value: "two-party"},
			{Key: "sd_protocol", Value: "zeroconf"},
			{Key: "sd_scheme", Value: "active"},
		},
		AbstractNodes: abstract,
		Factors: []desc.Factor{
			{
				ID: "fact_nodes", Type: desc.TypeActorNodeMap, Usage: desc.UsageBlocking,
				Levels: []desc.Level{
					{ActorMap: map[string][]string{"actor0": {"M0"}, "actor1": {"U"}}},
					{ActorMap: map[string][]string{"actor0": {"M0", "M1"}, "actor1": {"U"}}},
					{ActorMap: map[string][]string{"actor0": {"M0", "M1", "M2"}, "actor1": {"U"}}},
				},
			},
		},
		Repl:     desc.Replication{ID: "fact_replication_id", Count: reps},
		Seed:     26,
		PlanKind: desc.PlanBlocked,
	}
	e.NodeProcesses = []desc.NodeProcess{
		{
			Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
			Actions: []desc.Action{
				desc.Act("sd_init"),
				desc.Act("sd_start_publish"),
				desc.WaitEvent(desc.WaitSpec{Event: "done"}),
				desc.Act("sd_stop_publish"),
				desc.Act("sd_exit"),
			},
		},
		{
			Actor: "actor1", Name: "SU", NodesRef: "fact_nodes",
			Actions: []desc.Action{
				desc.WaitEvent(desc.WaitSpec{
					Event:     "sd_start_publish",
					FromActor: "actor0", FromInstance: "all",
				}),
				desc.WaitTime(5),
				desc.Act("sd_init"),
				desc.WaitMarker(),
				desc.Act("sd_start_search"),
				desc.WaitEvent(desc.WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor1", FromInstance: "all",
					ParamActor: "actor0", ParamInstance: "all",
					TimeoutSec: 30,
				}),
				desc.Flag("done"),
				desc.Act("sd_stop_search"),
				desc.Act("sd_exit"),
			},
		},
	}
	return e
}

// buildOptions keeps the historical 0.35 radius for the original ten-node
// mesh; larger populations use the geometric connectivity threshold
// sqrt(1.6·ln n / (π·n)), which keeps mean node degree near ten instead of
// densifying into a clique (wireTopology still grows the radius if a draw
// comes out disconnected).
func buildOptions(nodes int) core.Options {
	radius := 0.35
	if nodes > minNodes {
		n := float64(nodes)
		radius = math.Sqrt(1.6 * math.Log(n) / (math.Pi * n))
	}
	return core.Options{
		Topology:  core.TopoGeometric,
		GeoRadius: radius,
		Link: netem.LinkParams{
			Delay: time.Millisecond, Jitter: time.Millisecond,
			Burst: &netem.BurstLoss{
				PGoodToBad: 0.04, PBadToGood: 0.1,
				LossGood: 0.01, LossBad: 0.85,
			},
		},
	}
}

func main() {
	reps := flag.Int("reps", 30, "replications per SM count")
	nodes := flag.Int("nodes", minNodes, "total mesh size (SMs + SU + relays)")
	flag.Parse()
	if *nodes < minNodes {
		fail(fmt.Errorf("-nodes must be at least %d", minNodes))
	}

	exp := buildExperiment(*reps, *nodes)
	opts := buildOptions(*nodes)
	x, err := core.New(exp, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("geometric mesh, %d nodes; U is %d/%d/%d hops from M0/M1/M2; stationary link loss %.3f\n",
		len(x.Net.Nodes()),
		x.Net.HopCount("U", "M0"), x.Net.HopCount("U", "M1"), x.Net.HopCount("U", "M2"),
		opts.Link.Burst.MeanLoss())

	rep, err := x.Run()
	if err != nil {
		fail(err)
	}
	ms := metrics.FromReport(exp, rep, "", "")

	// Group by the number of expected SMs (the blocking level).
	byK := map[int][]metrics.RunMetric{}
	for _, m := range ms {
		byK[m.Expected] = append(byK[m.Expected], m)
	}
	fmt.Printf("\n%-6s %-6s %-10s %-10s %-8s %-16s\n",
		"k SMs", "n", "t_R mean", "t_R p90", "R(1s)", "R(1s) 95% CI")
	for k := 1; k <= 3; k++ {
		g := byK[k]
		trs := metrics.TRs(g)
		sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
		lo, hi := metrics.ResponsivenessCI(g, time.Second)
		fmt.Printf("%-6d %-6d %-10s %-10s %-8.3f [%.3f, %.3f]\n",
			k, len(g),
			fmt.Sprintf("%.4fs", sum.Mean),
			fmt.Sprintf("%.4fs", sum.P90),
			metrics.Responsiveness(g, time.Second), lo, hi)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

#!/bin/sh
# bench-delta.sh NEW.json — emit a one-line CHANGES.md note comparing the
# Fig. 3 full-workflow allocs/op in NEW.json against the oldest other
# BENCH_*.json in the repo root. Plain sh + grep + awk; no jq in CI.
set -eu
new="$1"

allocs() {
	grep 'BenchmarkFig3FullWorkflow' "$1" 2>/dev/null |
		grep -o '[0-9][0-9]* allocs/op' | head -1 | cut -d' ' -f1
}

cur=$(allocs "$new" || true)
base=""
for f in BENCH_*.json; do
	[ "$f" = "$new" ] && continue
	[ -f "$f" ] || continue
	base="$f"
	break
done
day=$(date +%Y-%m-%d)
if [ -z "$cur" ]; then
	echo "- bench $day ($new): BenchmarkFig3FullWorkflow missing from the run."
elif [ -z "$base" ]; then
	echo "- bench $day ($new): Fig. 3 full workflow at $cur allocs/op (no prior BENCH_*.json to compare against)."
else
	old=$(allocs "$base")
	if [ -z "$old" ]; then
		echo "- bench $day ($new): Fig. 3 full workflow at $cur allocs/op ($base has no Fig. 3 line)."
	else
		pct=$(awk -v o="$old" -v c="$cur" 'BEGIN{printf "%+.1f", (c - o) * 100.0 / o}')
		echo "- bench $day ($new): Fig. 3 full workflow $old -> $cur allocs/op ($pct% vs $base)."
	fi
fi

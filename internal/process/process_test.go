package process

import (
	"fmt"
	"testing"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/sched"
	"excovery/internal/vclock"
)

type recordingExec struct {
	calls []string
	fail  string
}

func (r *recordingExec) Execute(node, action string, params map[string]string) error {
	r.calls = append(r.calls, fmt.Sprintf("%s:%s:%v", node, action, params["x"]))
	if action == r.fail {
		return fmt.Errorf("boom")
	}
	return nil
}

func newCtx(s *sched.Scheduler, b *eventlog.Bus, exec Executor, node string) *Ctx {
	recorders := map[string]*eventlog.Recorder{}
	return &Ctx{
		S: s, Bus: b, Exec: exec, Node: node,
		Run:   desc.Run{Treatment: map[string]desc.Level{"f1": {Raw: "42"}}},
		Roles: map[string][]string{"actor0": {"n0"}, "actor1": {"n1", "n2"}},
		Emit: func(nd, typ string, params map[string]string) {
			r := recorders[nd]
			if r == nil {
				r = eventlog.NewRecorder(nd, vclock.Perfect{S: s}, func(ev eventlog.Event) { b.Publish(ev) })
				recorders[nd] = r
			}
			r.Emit(typ, params)
		},
	}
}

func TestSequenceDispatchAndFactorResolution(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	exec := &recordingExec{}
	ctx := newCtx(s, b, exec, "n0")
	actions := []desc.Action{
		desc.Act("sd_init", "x", "literal"),
		desc.Act("custom").WithFactorRef("x", "f1"),
	}
	var res Result
	s.Go("p", func() {
		var err error
		res, err = ctx.RunSequence(actions)
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(exec.calls) != 2 || exec.calls[0] != "n0:sd_init:literal" || exec.calls[1] != "n0:custom:42" {
		t.Fatalf("calls = %v", exec.calls)
	}
	if res.Executed != 2 || len(res.Timeouts) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestUnknownFactorRefErrors(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n0")
	s.Go("p", func() {
		_, err := ctx.RunSequence([]desc.Action{desc.Act("a").WithFactorRef("x", "nope")})
		if err == nil {
			t.Error("expected error for unknown factor")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorErrorAborts(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	exec := &recordingExec{fail: "bad"}
	ctx := newCtx(s, b, exec, "n0")
	s.Go("p", func() {
		_, err := ctx.RunSequence([]desc.Action{
			desc.Act("ok"), desc.Act("bad"), desc.Act("never"),
		})
		if err == nil {
			t.Error("expected abort")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(exec.calls) != 2 {
		t.Fatalf("calls = %v (sequence must abort)", exec.calls)
	}
}

func TestWaitForTime(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n0")
	start := s.Now()
	s.Go("p", func() {
		ctx.RunSequence([]desc.Action{desc.WaitTime(2.5)})
		if got := s.Now().Sub(start); got != 2500*time.Millisecond {
			t.Errorf("slept %v", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForTimeBadValue(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n0")
	s.Go("p", func() {
		_, err := ctx.RunSequence([]desc.Action{desc.Act("wait_for_time", "seconds", "soon")})
		if err == nil {
			t.Error("expected parse error")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventFlagAndWait(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	exec := &recordingExec{}
	ctxA := newCtx(s, b, exec, "n0")
	ctxB := newCtx(s, b, exec, "n1")
	order := []string{}
	s.Go("flagger", func() {
		s.Sleep(time.Second)
		ctxA.RunSequence([]desc.Action{desc.Flag("ready_to_init")})
		order = append(order, "flagged")
	})
	s.Go("waiter", func() {
		ctxB.RunSequence([]desc.Action{desc.WaitEvent(desc.WaitSpec{Event: "ready_to_init"})})
		order = append(order, "woke")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[flagged woke]" {
		t.Fatalf("order = %v", order)
	}
}

func TestWaitFromActorInstances(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n0")
	matched := false
	s.Go("waiter", func() {
		// Wait for event from actor1 instance 1 only (= node n2).
		_, err := ctx.RunSequence([]desc.Action{desc.WaitEvent(desc.WaitSpec{
			Event: "ping", FromActor: "actor1", FromInstance: "1", TimeoutSec: 5,
		})})
		if err != nil {
			t.Error(err)
		}
		matched = true
	})
	s.Go("emitters", func() {
		s.Sleep(time.Second)
		ctx.Emit("n1", "ping", nil) // wrong instance: must not match
		s.Sleep(time.Second)
		ctx.Emit("n2", "ping", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !matched {
		t.Fatal("wait did not complete")
	}
	// No timeout event recorded.
	for _, ev := range b.Events() {
		if ev.Type == "wait_timeout" {
			t.Fatal("unexpected wait_timeout")
		}
	}
}

func TestWaitTimeoutContinuesAndRecords(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	exec := &recordingExec{}
	ctx := newCtx(s, b, exec, "n0")
	start := s.Now()
	var res Result
	s.Go("p", func() {
		var err error
		res, err = ctx.RunSequence([]desc.Action{
			desc.WaitEvent(desc.WaitSpec{Event: "never", TimeoutSec: 30}),
			desc.Flag("done"),
			desc.Act("after"),
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Now().Sub(start); got != 30*time.Second {
		t.Fatalf("deadline = %v, want 30s", got)
	}
	if len(res.Timeouts) != 1 || res.Timeouts[0].Event != "never" {
		t.Fatalf("timeouts = %v", res.Timeouts)
	}
	if len(exec.calls) != 1 {
		t.Fatal("sequence did not continue after timeout")
	}
	found := false
	for _, ev := range b.Events() {
		if ev.Type == "wait_timeout" && ev.Param("event") == "never" {
			found = true
		}
	}
	if !found {
		t.Fatal("wait_timeout event not recorded")
	}
}

func TestMarkerConsumedByNextWait(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n0")
	s.Go("p", func() {
		ctx.Emit("n0", "early", nil)
		// First wait without marker sees the past event.
		res, err := ctx.RunSequence([]desc.Action{
			desc.WaitEvent(desc.WaitSpec{Event: "early", TimeoutSec: 1}),
			desc.WaitMarker(),
			// Second wait is restricted by the marker: early happened
			// before, so it must time out.
			desc.WaitEvent(desc.WaitSpec{Event: "early", TimeoutSec: 1}),
			// Third wait has no marker anymore: past events visible
			// again.
			desc.WaitEvent(desc.WaitSpec{Event: "early", TimeoutSec: 1}),
		})
		if err != nil {
			t.Error(err)
		}
		if len(res.Timeouts) != 1 {
			t.Errorf("timeouts = %v, want exactly the marked wait", res.Timeouts)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParamDependencyAllInstances(t *testing.T) {
	// Fig. 10: wait until sd_service_add events cover all actor0 nodes.
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n1")
	ctx.Roles = map[string][]string{"actor0": {"sm0", "sm1"}, "actor1": {"n1"}}
	var res Result
	s.Go("p", func() {
		var err error
		res, err = ctx.RunSequence([]desc.Action{desc.WaitEvent(desc.WaitSpec{
			Event: "sd_service_add", FromActor: "actor1", FromInstance: "all",
			ParamActor: "actor0", ParamInstance: "all", TimeoutSec: 30,
		})})
		if err != nil {
			t.Error(err)
		}
	})
	s.Go("sm-events", func() {
		s.Sleep(time.Second)
		ctx.Emit("n1", "sd_service_add", map[string]string{"node": "sm0"})
		s.Sleep(time.Second)
		ctx.Emit("n1", "sd_service_add", map[string]string{"node": "sm0"}) // dup
		s.Sleep(time.Second)
		ctx.Emit("n1", "sd_service_add", map[string]string{"node": "sm1"})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Timeouts) != 0 {
		t.Fatalf("timeouts = %v", res.Timeouts)
	}
}

func TestParamDependencyTimeoutPartial(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n1")
	ctx.Roles = map[string][]string{"actor0": {"sm0", "sm1"}, "actor1": {"n1"}}
	var res Result
	s.Go("p", func() {
		res, _ = ctx.RunSequence([]desc.Action{desc.WaitEvent(desc.WaitSpec{
			Event: "sd_service_add", ParamActor: "actor0", ParamInstance: "all",
			TimeoutSec: 5,
		})})
	})
	s.Go("one-only", func() {
		s.Sleep(time.Second)
		ctx.Emit("n1", "sd_service_add", map[string]string{"node": "sm0"})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Timeouts) != 1 {
		t.Fatalf("timeouts = %v, want deadline miss", res.Timeouts)
	}
}

func TestInstanceSelectorOutOfRange(t *testing.T) {
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	ctx := newCtx(s, b, &recordingExec{}, "n0")
	s.Go("p", func() {
		// Instance 9 of actor1 does not exist: nil node set matches any
		// node per eventlog semantics — guard by expecting the wait to
		// resolve against any emitter.
		got := ctx.resolveInstances("actor1", "9")
		if got != nil {
			t.Errorf("out-of-range instances = %v", got)
		}
		if got := ctx.resolveInstances("actor1", "all"); len(got) != 2 {
			t.Errorf("all instances = %v", got)
		}
		if got := ctx.resolveInstances("actor1", "0"); len(got) != 1 || got[0] != "n1" {
			t.Errorf("instance 0 = %v", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFig9SMSequenceAgainstEngine(t *testing.T) {
	// The SM process of Fig. 9 driven by a stub executor: publish, wait
	// for done, unpublish, exit.
	s := sched.NewVirtual()
	b := eventlog.NewBus(s)
	exec := &recordingExec{}
	sm := newCtx(s, b, exec, "n0")
	su := newCtx(s, b, exec, "n1")
	e := desc.CaseStudy(1)
	smActions := e.NodeProcesses[0].Actions
	s.Go("sm", func() {
		if _, err := sm.RunSequence(smActions); err != nil {
			t.Error(err)
		}
	})
	s.Go("su", func() {
		s.Sleep(3 * time.Second)
		su.RunSequence([]desc.Action{desc.Flag("done")})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[n0:sd_init: n0:sd_start_publish: n0:sd_stop_publish: n0:sd_exit:]"
	if fmt.Sprint(exec.calls) != want {
		t.Fatalf("calls = %v", exec.calls)
	}
}

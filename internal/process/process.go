// Package process executes the action sequences of an experiment
// description: node processes, manipulation processes and environment
// processes (§IV-C2).
//
// The engine interprets the four flow-control actions itself —
// wait_for_time, wait_for_event, wait_marker and event_flag — and
// dispatches every other action to an Executor (the node manager for SD
// and fault actions, the master for environment manipulations). Action
// parameters that reference factors are resolved against the current run's
// treatment before dispatch.
package process

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/obs"
	"excovery/internal/sched"
)

// Executor performs non-flow-control actions. node is the platform node
// the process is bound to, or "" for environment processes. Parameters
// arrive with factor references already resolved to level values.
type Executor interface {
	Execute(node, action string, params map[string]string) error
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(node, action string, params map[string]string) error

// Execute implements Executor.
func (f ExecutorFunc) Execute(node, action string, params map[string]string) error {
	return f(node, action, params)
}

// Ctx is the execution context of one process within one run.
type Ctx struct {
	// S is the scheduler; the process runs in task context.
	S *sched.Scheduler
	// Bus is the master's event bus used by wait_for_event.
	Bus *eventlog.Bus
	// Run is the current treatment.
	Run desc.Run
	// Roles maps actor roles to platform node ids for this run.
	Roles map[string][]string
	// Node is the platform node executing this process ("" for
	// environment processes).
	Node string
	// Emit records an event on behalf of the executing node (event_flag
	// and wait_timeout events).
	Emit func(node, typ string, params map[string]string)
	// Exec performs the domain actions.
	Exec Executor
	// Canceled, if set, is polled before every action; when it reports
	// true the sequence aborts with ErrCanceled (run abort, §IV-C1
	// clean-up must not race with leftover process tasks).
	Canceled func() bool

	// Trace, if set, records one span per action on the Track lane,
	// parented under SpanParent (the run's execute-phase span). A nil
	// tracer keeps the sequence uninstrumented.
	Trace *obs.Tracer
	// SpanParent is the parent span id for action spans.
	SpanParent uint64
	// Track is the trace lane name, e.g. "proc sm@A".
	Track string
	// Attempt is the run attempt number stamped on action spans.
	Attempt int

	// marker is the wait_marker position consumed by the next
	// wait_for_event (§IV-C2).
	marker    uint64
	hasMarker bool
}

// Timeout marks a wait_for_event that expired. It is recorded as a
// wait_timeout event and execution continues — the description decides how
// to react (Fig. 10 flags "done" either way).
type Timeout struct {
	Event string
}

// Result summarizes a process execution.
type Result struct {
	// Timeouts lists expired waits in order of occurrence.
	Timeouts []Timeout
	// Executed counts dispatched (non-flow-control) actions.
	Executed int
}

// ErrCanceled reports that the run was aborted while the process was
// still executing.
var ErrCanceled = errors.New("process: run canceled")

// RunSequence executes the actions in order. It must run in scheduler task
// context. Execution errors abort the sequence; wait timeouts do not.
func (ctx *Ctx) RunSequence(actions []desc.Action) (Result, error) {
	var res Result
	for i, a := range actions {
		if ctx.Canceled != nil && ctx.Canceled() {
			return res, ErrCanceled
		}
		sp := ctx.beginActionSpan(a)
		switch a.Name {
		case "wait_for_time":
			secs, err := strconv.ParseFloat(a.Param("seconds", "0"), 64)
			if err != nil {
				ctx.Trace.EndWith(sp, map[string]string{"err": "bad seconds"})
				return res, fmt.Errorf("process: action %d wait_for_time: bad seconds %q", i, a.Param("seconds", ""))
			}
			ctx.S.Sleep(time.Duration(secs * float64(time.Second)))
			ctx.Trace.End(sp)

		case "wait_marker":
			ctx.marker = ctx.Bus.Marker()
			ctx.hasMarker = true
			ctx.Trace.End(sp)

		case "event_flag":
			ctx.Emit(ctx.Node, a.Value, nil)
			ctx.Trace.End(sp)

		case "wait_for_event":
			if a.Wait == nil {
				ctx.Trace.EndWith(sp, map[string]string{"err": "missing spec"})
				return res, fmt.Errorf("process: action %d: wait_for_event without spec", i)
			}
			if to := ctx.waitForEvent(*a.Wait); to != nil {
				res.Timeouts = append(res.Timeouts, *to)
				ctx.Trace.EndWith(sp, map[string]string{"timeout": "true"})
			} else {
				ctx.Trace.End(sp)
			}

		default:
			params, err := ctx.resolveParams(a)
			if err != nil {
				ctx.Trace.EndWith(sp, map[string]string{"err": err.Error()})
				return res, fmt.Errorf("process: action %d (%s): %w", i, a.Name, err)
			}
			if err := ctx.Exec.Execute(ctx.Node, a.Name, params); err != nil {
				ctx.Trace.EndWith(sp, map[string]string{"err": err.Error()})
				return res, fmt.Errorf("process: action %d (%s) on %q: %w", i, a.Name, ctx.Node, err)
			}
			res.Executed++
			ctx.Trace.End(sp)
		}
	}
	return res, nil
}

// beginActionSpan opens one span per action. The span name carries the
// action's discriminating detail (the flagged event name for event_flag,
// the awaited event for wait_for_event) so the trace reads like the
// description.
func (ctx *Ctx) beginActionSpan(a desc.Action) uint64 {
	if ctx.Trace == nil {
		return 0
	}
	name := a.Name
	var args map[string]string
	switch a.Name {
	case "event_flag":
		args = map[string]string{"event": a.Value}
	case "wait_for_event":
		if a.Wait != nil {
			args = map[string]string{"event": a.Wait.Event}
		}
	case "wait_for_time":
		args = map[string]string{"seconds": a.Param("seconds", "0")}
	}
	return ctx.Trace.Begin(ctx.SpanParent, ctx.Track, "action", name,
		ctx.Run.ID, ctx.Attempt, args)
}

// resolveParams merges literal parameters with factor-referenced values
// from the run's treatment.
func (ctx *Ctx) resolveParams(a desc.Action) (map[string]string, error) {
	params := make(map[string]string, len(a.Params)+len(a.FactorRefs))
	for k, v := range a.Params {
		params[k] = v
	}
	for k, fid := range a.FactorRefs {
		l, ok := ctx.Run.Level(fid)
		if !ok {
			return nil, fmt.Errorf("factor %q not in treatment", fid)
		}
		params[k] = l.Raw
	}
	return params, nil
}

// waitForEvent implements the wait_for_event semantics of §IV-C2: an event
// is specified by its name, location (node or actor role) and parameters;
// omitted parts default to "any". A preceding wait_marker restricts
// matching to events after the marker; the marker is consumed. A
// param_dependency against an actor requires the event parameter "node" to
// cover every node bound to that actor (Fig. 10: all SMs discovered).
func (ctx *Ctx) waitForEvent(w desc.WaitSpec) *Timeout {
	from := uint64(0)
	if ctx.hasMarker {
		from = ctx.marker
		ctx.hasMarker = false
	}
	timeout := time.Duration(w.TimeoutSec * float64(time.Second))

	m := eventlog.Match{Type: w.Event, Params: w.Params}
	switch {
	case w.FromNode != "":
		m.Nodes = []string{w.FromNode}
	case w.FromActor != "":
		m.Nodes = ctx.resolveInstances(w.FromActor, w.FromInstance)
	}

	if w.ParamActor != "" {
		want := ctx.resolveInstances(w.ParamActor, w.ParamInstance)
		_, ok := ctx.Bus.WaitForDistinct(m, "node", want, from, timeout)
		if !ok {
			ctx.emitTimeout(w)
			return &Timeout{Event: w.Event}
		}
		return nil
	}
	if _, ok := ctx.Bus.WaitFor(m, from, timeout); !ok {
		ctx.emitTimeout(w)
		return &Timeout{Event: w.Event}
	}
	return nil
}

func (ctx *Ctx) emitTimeout(w desc.WaitSpec) {
	ctx.Emit(ctx.Node, eventlog.EvWaitTimeout, map[string]string{"event": w.Event})
}

// resolveInstances maps an actor role and instance selector to platform
// node ids: "all" or "" selects every instance, a number selects one.
func (ctx *Ctx) resolveInstances(actor, instance string) []string {
	nodes := ctx.Roles[actor]
	if instance == "" || instance == "all" {
		return nodes
	}
	idx, err := strconv.Atoi(instance)
	if err != nil || idx < 0 || idx >= len(nodes) {
		return nil
	}
	return []string{nodes[idx]}
}

package netem

import (
	"strconv"

	"excovery/internal/obs"
)

// nodeMetrics caches a node's pre-resolved instruments. The zero value
// (all nil pointers) is the uninstrumented state: every method on a nil
// *obs.Counter / *obs.Gauge is a no-op, so the per-packet data path needs
// no guards and adds no allocations when no registry is attached —
// benchmarks and level-3 artifacts stay byte-identical.
type nodeMetrics struct {
	sent       *obs.Counter
	transmit   *obs.Counter
	delivered  *obs.Counter
	dupFlood   *obs.Counter
	dupRule    *obs.Counter
	queueDepth *obs.Gauge
	dropped    [dropReasonCount]*obs.Counter
}

// ruleMetrics caches one installed rule's instruments (resolved at
// InstallRule when the network is instrumented): the probabilistic
// manipulations a rule performs beyond dropping — reordering, corruption,
// rate-limiter stalls — counted per node and rule id.
type ruleMetrics struct {
	reordered  *obs.Counter
	corrupted  *obs.Counter
	rateStalls *obs.Counter
}

// Instrument attaches a metrics registry to the network: every existing
// and future node resolves per-node packet counters and a queue-depth
// gauge, and every future rule resolves per-rule manipulation counters.
// A nil registry is valid and leaves the data path uninstrumented.
func (nw *Network) Instrument(reg *obs.Registry) {
	nw.obs = reg
	if reg == nil {
		return
	}
	for _, id := range nw.order {
		nw.nodes[id].instrument(reg)
	}
}

func (n *Node) instrument(reg *obs.Registry) {
	id := string(n.id)
	n.m.sent = reg.Counter(obs.MNetemSent,
		"packets originated via Send", "node", id)
	n.m.transmit = reg.Counter(obs.MNetemTransmissions,
		"per-hop radio transmissions", "node", id)
	n.m.delivered = reg.Counter(obs.MNetemDelivered,
		"packets delivered to the node handler", "node", id)
	n.m.dupFlood = reg.Counter(obs.MNetemDuplicated,
		"duplicate packets (flood copies suppressed, rule-made copies)",
		"node", id, "kind", "flood")
	n.m.dupRule = reg.Counter(obs.MNetemDuplicated,
		"duplicate packets (flood copies suppressed, rule-made copies)",
		"node", id, "kind", "rule")
	n.m.queueDepth = reg.Gauge(obs.MNetemQueueDepth,
		"current egress queue depth", "node", id)
	for r := DropReason(0); r < dropReasonCount; r++ {
		n.m.dropped[r] = reg.Counter(obs.MNetemDropped,
			"packets discarded, by reason", "node", id, "reason", r.String())
	}
}

func (r *Rule) instrument(reg *obs.Registry, node NodeID) {
	id, rule := string(node), strconv.Itoa(r.id)
	r.m.reordered = reg.Counter(obs.MNetemReordered,
		"packets held back by a reorder rule", "node", id, "rule", rule)
	r.m.corrupted = reg.Counter(obs.MNetemCorrupted,
		"packets rewritten by a corruption rule", "node", id, "rule", rule)
	r.m.rateStalls = reg.Counter(obs.MNetemRateStalls,
		"packets stalled by a rate-limiting rule", "node", id, "rule", rule)
}

// drop records one discarded packet in the network-wide statistics and, on
// an instrumented network, the node's per-reason drop counter.
func (n *Node) drop(reason DropReason) {
	n.sh.stats.Dropped[reason]++
	n.m.dropped[reason].Inc()
}

package netem

import (
	"fmt"
	"testing"
	"time"

	"excovery/internal/sched"
	"excovery/internal/vclock"
)

// lossless returns link params with no loss and no jitter for exact-timing
// tests.
func lossless(delay time.Duration) LinkParams {
	return LinkParams{Delay: delay}
}

// keep deep-copies a delivered packet: handlers must not retain the pooled
// packet itself (see Handler).
func keep(p *Packet) *Packet {
	q := *p
	q.Path = append([]NodeID(nil), p.Path...)
	return &q
}

func TestUnicastOneHop(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(2*time.Millisecond))
	var got *Packet
	var at time.Time
	b.SetHandler(func(p *Packet) { got = keep(p); at = s.Now() })
	start := s.Now()
	s.Go("send", func() {
		if _, ok := a.Send(Unicast("b"), "test", []byte("hello")); !ok {
			t.Error("Send failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if string(got.Payload) != "hello" || got.Src != "a" {
		t.Fatalf("packet = %+v", got)
	}
	// Latency = serialization + link delay. 53 bytes wire at 6 Mbit/s
	// ≈ 70.6 µs, plus 2 ms.
	lat := at.Sub(start)
	if lat < 2*time.Millisecond || lat > 3*time.Millisecond {
		t.Fatalf("latency = %v", lat)
	}
	if fmt.Sprint(got.Path) != "[a b]" {
		t.Fatalf("path = %v", got.Path)
	}
}

func TestUnicastMultiHopRoutingAndPath(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildChain(nw, "n", 5, NodeParams{}, lossless(time.Millisecond))
	var got *Packet
	nw.Node(ids[4]).SetHandler(func(p *Packet) { got = keep(p) })
	s.Go("send", func() { nw.Node(ids[0]).Send(Unicast(ids[4]), "t", []byte("x")) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("not delivered over 4 hops")
	}
	if fmt.Sprint(got.Path) != "[n0 n1 n2 n3 n4]" {
		t.Fatalf("path = %v", got.Path)
	}
	if nw.HopCount(ids[0], ids[4]) != 4 {
		t.Fatalf("hop count = %d", nw.HopCount(ids[0], ids[4]))
	}
}

func TestLoopbackUnicast(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	delivered := false
	a.SetHandler(func(p *Packet) { delivered = true })
	s.Go("send", func() { a.Send(Unicast("a"), "t", nil) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("loopback packet not delivered")
	}
}

func TestMulticastFloodReachesGroupOnly(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildChain(nw, "n", 4, NodeParams{}, lossless(time.Millisecond))
	recv := map[NodeID]int{}
	for _, id := range ids {
		id := id
		nw.Node(id).SetHandler(func(p *Packet) { recv[id]++ })
	}
	nw.Join("svc", ids[1])
	nw.Join("svc", ids[3])
	s.Go("send", func() { nw.Node(ids[0]).Send(Multicast("svc"), "t", []byte("q")) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv[ids[1]] != 1 || recv[ids[3]] != 1 {
		t.Fatalf("group members recv = %v", recv)
	}
	if recv[ids[0]] != 0 || recv[ids[2]] != 0 {
		t.Fatalf("non-members received: %v", recv)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildGrid(nw, "g", 3, 3, NodeParams{}, lossless(time.Millisecond))
	recv := map[NodeID]int{}
	for _, id := range ids {
		id := id
		nw.Node(id).SetHandler(func(p *Packet) { recv[id]++ })
	}
	s.Go("send", func() { nw.Node(ids[0]).Send(Broadcast(), "t", nil) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// All nodes except the sender receive exactly once (dedup).
	for _, id := range ids[1:] {
		if recv[id] != 1 {
			t.Fatalf("recv[%s] = %d, want 1 (dedup)", id, recv[id])
		}
	}
	if recv[ids[0]] != 0 {
		t.Fatalf("sender received own broadcast")
	}
	if nw.Stats().Duplicates == 0 {
		t.Fatal("grid flood should suppress duplicates")
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	nw.DefaultTTL = 2
	ids := BuildChain(nw, "n", 5, NodeParams{}, lossless(time.Millisecond))
	recv := map[NodeID]bool{}
	for _, id := range ids {
		id := id
		nw.Node(id).SetHandler(func(p *Packet) { recv[id] = true })
	}
	s.Go("send", func() { nw.Node(ids[0]).Send(Broadcast(), "t", nil) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !recv[ids[1]] || !recv[ids[2]] {
		t.Fatalf("nodes within TTL not reached: %v", recv)
	}
	if recv[ids[3]] || recv[ids[4]] {
		t.Fatalf("TTL 2 should not reach hop 3+: %v", recv)
	}
}

func TestLinkLossDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		s := sched.NewVirtual()
		nw := New(s, seed)
		a := nw.AddNode("a", NodeParams{})
		b := nw.AddNode("b", NodeParams{})
		nw.AddLink("a", "b", LinkParams{Delay: time.Millisecond, Loss: 0.5})
		delivered := uint64(0)
		b.SetHandler(func(p *Packet) { delivered++ })
		s.Go("send", func() {
			for i := 0; i < 200; i++ {
				a.Send(Unicast("b"), "t", nil)
				s.Sleep(time.Millisecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return delivered
	}
	d1, d2, d3 := run(42), run(42), run(7)
	if d1 != d2 {
		t.Fatalf("same seed, different outcomes: %d vs %d", d1, d2)
	}
	if d1 == d3 {
		t.Log("different seeds produced equal outcomes (possible but unlikely)")
	}
	// With 50 % loss, around 100 of 200 should arrive.
	if d1 < 60 || d1 > 140 {
		t.Fatalf("delivered %d of 200 at 50%% loss", d1)
	}
}

func TestRuleDropAll(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	n := 0
	b.SetHandler(func(p *Packet) { n++ })
	s.Go("t", func() {
		r := a.InstallRule(Rule{Dir: DirTx, DropAll: true})
		a.Send(Unicast("b"), "t", nil)
		s.Sleep(10 * time.Millisecond)
		a.RemoveRule(r)
		a.Send(Unicast("b"), "t", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d, want 1 (rule removed before second send)", n)
	}
}

func TestRuleProtoFilter(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	var got []string
	b.SetHandler(func(p *Packet) { got = append(got, p.Proto) })
	s.Go("t", func() {
		// Drop only experiment-process ("sd") packets (§IV-D1).
		a.InstallRule(Rule{Dir: DirTx, Proto: "sd", DropAll: true})
		a.Send(Unicast("b"), "sd", nil)
		a.Send(Unicast("b"), "traffic", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[traffic]" {
		t.Fatalf("delivered protos = %v", got)
	}
}

func TestRulePeerFilterPathLoss(t *testing.T) {
	// Path loss: affect only traffic between the target and one peer.
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildFull(nw, "n", 3, NodeParams{}, lossless(time.Millisecond))
	recv := map[NodeID]int{}
	for _, id := range ids {
		id := id
		nw.Node(id).SetHandler(func(p *Packet) { recv[id]++ })
	}
	s.Go("t", func() {
		nw.Node(ids[0]).InstallRule(Rule{Dir: DirTx, Peer: ids[1], DropAll: true})
		nw.Node(ids[0]).Send(Unicast(ids[1]), "t", nil)
		nw.Node(ids[0]).Send(Unicast(ids[2]), "t", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv[ids[1]] != 0 || recv[ids[2]] != 1 {
		t.Fatalf("recv = %v, want path to n1 blocked only", recv)
	}
}

func TestRuleRxDirection(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	n := 0
	b.SetHandler(func(p *Packet) { n++ })
	s.Go("t", func() {
		b.InstallRule(Rule{Dir: DirRx, Peer: "a", DropAll: true})
		a.Send(Unicast("b"), "t", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("rx rule did not drop")
	}
}

func TestRuleDelayAddsLatency(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	var base, delayed time.Duration
	var at time.Time
	b.SetHandler(func(p *Packet) { at = s.Now() })
	s.Go("t", func() {
		start := s.Now()
		a.Send(Unicast("b"), "t", nil)
		s.Sleep(100 * time.Millisecond)
		base = at.Sub(start)
		r := a.InstallRule(Rule{Dir: DirTx, Delay: 50 * time.Millisecond})
		start2 := s.Now()
		a.Send(Unicast("b"), "t", nil)
		s.Sleep(200 * time.Millisecond)
		delayed = at.Sub(start2)
		a.RemoveRule(r)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if diff := delayed - base; diff != 50*time.Millisecond {
		t.Fatalf("delay rule added %v, want 50ms", diff)
	}
}

func TestRuleModifyPayload(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	var got string
	b.SetHandler(func(p *Packet) { got = string(p.Payload) })
	s.Go("t", func() {
		a.InstallRule(Rule{Dir: DirTx, Modify: func(p *Packet) { p.Payload = []byte("corrupted") }})
		a.Send(Unicast("b"), "t", []byte("original"))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "corrupted" {
		t.Fatalf("payload = %q", got)
	}
}

func TestInterfaceDownExcludesFromRouting(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildChain(nw, "n", 3, NodeParams{}, lossless(time.Millisecond))
	// Add an alternative longer path n0-x-y-n2.
	x := nw.AddNode("x", NodeParams{})
	y := nw.AddNode("y", NodeParams{})
	_ = x
	_ = y
	nw.AddLink(ids[0], "x", lossless(time.Millisecond))
	nw.AddLink("x", "y", lossless(time.Millisecond))
	nw.AddLink("y", ids[2], lossless(time.Millisecond))
	if nw.HopCount(ids[0], ids[2]) != 2 {
		t.Fatalf("initial hop count = %d", nw.HopCount(ids[0], ids[2]))
	}
	var got *Packet
	nw.Node(ids[2]).SetHandler(func(p *Packet) { got = keep(p) })
	s.Go("t", func() {
		nw.Node(ids[1]).SetInterface(false) // midpoint dies
		if hc := nw.HopCount(ids[0], ids[2]); hc != 3 {
			t.Errorf("hop count after failure = %d, want 3 (reroute)", hc)
		}
		nw.Node(ids[0]).Send(Unicast(ids[2]), "t", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not rerouted around dead node")
	}
	if fmt.Sprint(got.Path) != fmt.Sprintf("[%s x y %s]", ids[0], ids[2]) {
		t.Fatalf("path = %v", got.Path)
	}
}

func TestInterfaceDirBlocksOneDirection(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	na, nb := 0, 0
	a.SetHandler(func(p *Packet) { na++ })
	b.SetHandler(func(p *Packet) { nb++ })
	s.Go("t", func() {
		b.SetInterfaceDir(true, false) // b cannot receive, can send
		a.Send(Unicast("b"), "t", nil)
		b.Send(Unicast("a"), "t", nil)
		s.Sleep(50 * time.Millisecond)
		b.SetInterfaceDir(false, false)
		a.Send(Unicast("b"), "t", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if na != 1 || nb != 1 {
		t.Fatalf("na=%d nb=%d, want 1/1", na, nb)
	}
}

func TestQueueTailDrop(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{RateBps: 1000, QueueLen: 4}) // very slow
	nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	sentOK := 0
	s.Go("t", func() {
		for i := 0; i < 20; i++ {
			if _, ok := a.Send(Unicast("b"), "t", make([]byte, 100)); ok {
				sentOK++
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sentOK >= 20 {
		t.Fatal("expected tail drops on full queue")
	}
	if nw.Stats().Dropped[DropQueue] == 0 {
		t.Fatal("DropQueue counter not incremented")
	}
}

func TestSerializationDelayScalesWithLoad(t *testing.T) {
	// Two senders share a relay; the relay's radio serializes, so delivery
	// of a burst takes longer than a single packet. This is the mechanism
	// that makes background traffic inflate t_R in the case study.
	lat := func(burst int) time.Duration {
		s := sched.NewVirtual()
		nw := New(s, 1)
		ids := BuildChain(nw, "n", 3, NodeParams{RateBps: 100_000}, lossless(time.Millisecond))
		var last time.Time
		nw.Node(ids[2]).SetHandler(func(p *Packet) { last = s.Now() })
		start := s.Now()
		s.Go("t", func() {
			for i := 0; i < burst; i++ {
				nw.Node(ids[0]).Send(Unicast(ids[2]), "t", make([]byte, 500))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last.Sub(start)
	}
	if l1, l10 := lat(1), lat(10); l10 < 2*l1 {
		t.Fatalf("burst of 10 (%v) should be much slower than 1 (%v)", l10, l1)
	}
}

func TestPacketTagger(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	var tags []uint16
	b.SetHandler(func(p *Packet) { tags = append(tags, p.Tag) })
	s.Go("t", func() {
		a.SetTagging(true)
		for i := 0; i < 3; i++ {
			a.Send(Unicast("b"), "t", nil)
			s.Sleep(time.Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(tags) != "[1 2 3]" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestCapturesUseLocalClock(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	skew := 250 * time.Millisecond
	b := nw.AddNode("b", NodeParams{Clock: vclock.NewSkewed(s, skew, 0)})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	a.SetCapture(true)
	b.SetCapture(true)
	s.Go("t", func() { a.Send(Unicast("b"), "t", []byte("x")) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.Captures()) != 1 || len(b.Captures()) != 1 {
		t.Fatalf("captures: a=%d b=%d", len(a.Captures()), len(b.Captures()))
	}
	txc, rxc := a.Captures()[0], b.Captures()[0]
	if txc.Dir != CaptureTx || rxc.Dir != CaptureRx {
		t.Fatalf("directions: %v %v", txc.Dir, rxc.Dir)
	}
	// The rx capture carries b's skewed local time: it should appear
	// ~skew later than the true arrival (which is ~1ms after tx).
	gap := rxc.Time.Sub(txc.Time)
	if gap < skew || gap > skew+10*time.Millisecond {
		t.Fatalf("capture gap = %v, want ≈ %v (skewed clock)", gap, skew)
	}
	if txc.Pkt.ID != rxc.Pkt.ID {
		t.Fatal("capture IDs differ")
	}
}

func TestStatsCounters(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	b.SetHandler(func(p *Packet) {})
	s.Go("t", func() {
		a.Send(Unicast("b"), "t", nil)
		a.Send(Unicast("c"), "t", nil) // no route
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Sent != 2 || st.Delivered != 1 || st.Dropped[DropNoRoute] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	nw.ResetStats()
	if nw.Stats().Sent != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestGridHopCounts(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildGrid(nw, "g", 4, 4, NodeParams{}, lossless(time.Millisecond))
	// Corner to corner: Manhattan distance 6.
	if hc := nw.HopCount(ids[0], ids[15]); hc != 6 {
		t.Fatalf("corner-corner hops = %d, want 6", hc)
	}
	m := nw.HopMatrix()
	if m[ids[0]][ids[0]] != 0 || m[ids[0]][ids[1]] != 1 {
		t.Fatalf("hop matrix wrong: %v", m[ids[0]])
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildRandomGeometric(nw, "r", 25, 0.2, 99, NodeParams{}, DefaultLink())
	for _, b := range ids[1:] {
		if nw.HopCount(ids[0], b) < 0 {
			t.Fatalf("node %s unreachable", b)
		}
	}
	// Same seed must give the same topology.
	s2 := sched.NewVirtual()
	nw2 := New(s2, 1)
	BuildRandomGeometric(nw2, "r", 25, 0.2, 99, NodeParams{}, DefaultLink())
	for _, a := range ids {
		for _, b := range ids {
			if (nw.Link(a, b) == nil) != (nw2.Link(a, b) == nil) {
				t.Fatalf("topology differs for same seed at %s-%s", a, b)
			}
		}
	}
}

func TestStarAndRingTopologies(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	star := BuildStar(nw, "s", 4, NodeParams{}, lossless(time.Millisecond))
	if got := nw.HopCount(star[1], star[2]); got != 2 {
		t.Fatalf("spoke-spoke hops = %d, want 2", got)
	}
	ring := BuildRing(nw, "r", 6, NodeParams{}, lossless(time.Millisecond))
	if got := nw.HopCount(ring[0], ring[3]); got != 3 {
		t.Fatalf("ring opposite hops = %d, want 3", got)
	}
	if got := nw.HopCount(ring[0], ring[5]); got != 1 {
		t.Fatalf("ring wrap hops = %d, want 1", got)
	}
}

func TestResetRunStateClearsDedupAndQueue(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildFull(nw, "n", 2, NodeParams{RateBps: 1000}, lossless(time.Millisecond))
	a := nw.Node(ids[0])
	s.Go("t", func() {
		for i := 0; i < 10; i++ {
			a.Send(Unicast(ids[1]), "t", make([]byte, 200))
		}
		a.ResetRunState()
	})
	if err := s.RunFor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if a.queueLen() != 0 {
		t.Fatalf("queued = %d after reset", a.queueLen())
	}
	if len(a.seen) != 0 {
		t.Fatalf("seen = %d after reset", len(a.seen))
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	s := sched.NewVirtual()
	nw := New(s, 1)
	nw.AddNode("a", NodeParams{})
	nw.AddNode("a", NodeParams{})
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self link")
		}
	}()
	s := sched.NewVirtual()
	nw := New(s, 1)
	nw.AddNode("a", NodeParams{})
	nw.AddLink("a", "a", DefaultLink())
}

func TestAsymmetricLink(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddDirectedLink("a", "b", lossless(time.Millisecond))
	na, nb := 0, 0
	a.SetHandler(func(p *Packet) { na++ })
	b.SetHandler(func(p *Packet) { nb++ })
	s.Go("t", func() {
		a.Send(Unicast("b"), "t", nil)
		b.Send(Unicast("a"), "t", nil) // no reverse link
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if nb != 1 || na != 0 {
		t.Fatalf("na=%d nb=%d; reverse direction should fail", na, nb)
	}
}

func TestDropReasonStrings(t *testing.T) {
	want := map[DropReason]string{
		DropLoss: "loss", DropRule: "rule", DropQueue: "queue",
		DropNoRoute: "noroute", DropTTL: "ttl", DropIfDown: "ifdown",
	}
	for r, w := range want {
		if r.String() != w {
			t.Errorf("%d.String() = %s, want %s", r, r, w)
		}
	}
}

func TestFullDeterminismAcrossRuns(t *testing.T) {
	// An entire noisy scenario (grid, loss, jitter, mixed traffic) must
	// produce identical stats when repeated with the same seed.
	run := func() Stats {
		s := sched.NewVirtual()
		nw := New(s, 12345)
		ids := BuildGrid(nw, "g", 3, 3, NodeParams{},
			LinkParams{Delay: time.Millisecond, Jitter: time.Millisecond, Loss: 0.1})
		for _, id := range ids {
			nw.Node(id).SetHandler(func(p *Packet) {})
		}
		nw.Join("m", ids[4])
		s.Go("traffic", func() {
			for i := 0; i < 50; i++ {
				nw.Node(ids[i%9]).Send(Unicast(ids[(i+4)%9]), "t", make([]byte, 100))
				nw.Node(ids[(i+2)%9]).Send(Multicast("m"), "sd", make([]byte, 60))
				s.Sleep(500 * time.Microsecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return nw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestRuleReorder(t *testing.T) {
	// A reorder rule delays selected packets so later ones overtake:
	// receive order must differ from send order while no packet is lost.
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	var got []uint16
	b.SetHandler(func(p *Packet) { got = append(got, p.Tag) })
	s.Go("t", func() {
		a.SetTagging(true)
		a.InstallRule(Rule{Dir: DirTx, ReorderProb: 0.5, ReorderDelay: 20 * time.Millisecond})
		for i := 0; i < 40; i++ {
			a.Send(Unicast("b"), "t", nil)
			s.Sleep(2 * time.Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("received %d of 40", len(got))
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed")
	}
}

func TestContentionCouplesNeighbors(t *testing.T) {
	// With the shared medium, a busy neighbor delays our transmissions;
	// with contention off, flows are independent. This is the mechanism
	// that lets background traffic inflate SD latency (§ DESIGN.md).
	// Direct comparison: measure probe latency under both settings.
	lat := func(contention bool) time.Duration {
		s := sched.NewVirtual()
		nw := New(s, 3)
		nw.Contention = contention
		ids := BuildFull(nw, "n", 3, NodeParams{RateBps: 100_000}, lossless(time.Millisecond))
		var probeAt, sentAt time.Time
		nw.Node(ids[1]).SetHandler(func(p *Packet) {
			if p.Proto == "probe" {
				probeAt = s.Now()
			}
		})
		s.Go("noise", func() {
			for i := 0; i < 50; i++ {
				nw.Node(ids[0]).Send(Unicast(ids[1]), "noise", make([]byte, 1000))
			}
		})
		s.Go("probe", func() {
			s.Sleep(5 * time.Millisecond)
			sentAt = s.Now()
			nw.Node(ids[2]).Send(Unicast(ids[1]), "probe", make([]byte, 100))
		})
		if err := s.RunFor(time.Minute); err != nil {
			t.Fatal(err)
		}
		if probeAt.IsZero() {
			t.Fatal("probe not delivered")
		}
		return probeAt.Sub(sentAt)
	}
	with, without := lat(true), lat(false)
	if with <= without {
		t.Fatalf("contention should delay the probe: with=%v without=%v", with, without)
	}
	if with < 10*time.Millisecond {
		t.Fatalf("busy medium barely delayed the probe: %v", with)
	}
}

func TestBurstLossIsBursty(t *testing.T) {
	// Gilbert–Elliott losses must cluster: the conditional loss
	// probability after a loss is much higher than after a delivery.
	s := sched.NewVirtual()
	nw := New(s, 77)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	burst := &BurstLoss{PGoodToBad: 0.02, PBadToGood: 0.2, LossGood: 0.001, LossBad: 0.8}
	nw.AddDirectedLink("a", "b", LinkParams{Delay: time.Millisecond, Burst: burst})
	const n = 20000
	received := make([]bool, n)
	b.SetHandler(func(p *Packet) { received[p.Tag-1] = true })
	s.Go("t", func() {
		a.SetTagging(true)
		for i := 0; i < n; i++ {
			a.Send(Unicast("b"), "t", nil)
			s.Sleep(100 * time.Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	losses, lossAfterLoss, afterLoss, lossAfterOK, afterOK := 0, 0, 0, 0, 0
	for i := 0; i < n; i++ {
		if !received[i] {
			losses++
		}
		if i == 0 {
			continue
		}
		if !received[i-1] {
			afterLoss++
			if !received[i] {
				lossAfterLoss++
			}
		} else {
			afterOK++
			if !received[i] {
				lossAfterOK++
			}
		}
	}
	meanLoss := float64(losses) / n
	want := burst.MeanLoss()
	if meanLoss < want*0.6 || meanLoss > want*1.4 {
		t.Fatalf("mean loss %.4f, stationary model predicts %.4f", meanLoss, want)
	}
	pAfterLoss := float64(lossAfterLoss) / float64(afterLoss)
	pAfterOK := float64(lossAfterOK) / float64(afterOK)
	if pAfterLoss < 3*pAfterOK {
		t.Fatalf("losses not bursty: P(loss|loss)=%.3f P(loss|ok)=%.3f", pAfterLoss, pAfterOK)
	}
}

func TestBurstLossDeterministic(t *testing.T) {
	run := func() uint64 {
		s := sched.NewVirtual()
		nw := New(s, 5)
		a := nw.AddNode("a", NodeParams{})
		b := nw.AddNode("b", NodeParams{})
		nw.AddDirectedLink("a", "b", LinkParams{Delay: time.Millisecond,
			Burst: &BurstLoss{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.9}})
		got := uint64(0)
		b.SetHandler(func(p *Packet) { got++ })
		s.Go("t", func() {
			for i := 0; i < 500; i++ {
				a.Send(Unicast("b"), "t", nil)
				s.Sleep(time.Millisecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("burst loss not deterministic: %d vs %d", a, b)
	}
}

func TestBurstLossMeanLossFormula(t *testing.T) {
	b := BurstLoss{PGoodToBad: 0.1, PBadToGood: 0.3, LossGood: 0.01, LossBad: 0.81}
	// pBad = 0.1/0.4 = 0.25 → mean = 0.75*0.01 + 0.25*0.81 = 0.21.
	if got := b.MeanLoss(); got < 0.2099 || got > 0.2101 {
		t.Fatalf("MeanLoss = %v", got)
	}
	if got := (BurstLoss{LossGood: 0.05}).MeanLoss(); got != 0.05 {
		t.Fatalf("degenerate MeanLoss = %v", got)
	}
}

package netem

import (
	"math/rand"
	"time"
)

// Direction selects which packet flows a manipulation rule applies to
// (§IV-D1: "Direction can be receive, transmit, both").
type Direction int

const (
	// DirBoth applies to received and transmitted packets.
	DirBoth Direction = iota
	// DirRx applies to received packets only.
	DirRx
	// DirTx applies to transmitted packets only.
	DirTx
)

func (d Direction) String() string {
	switch d {
	case DirRx:
		return "rx"
	case DirTx:
		return "tx"
	default:
		return "both"
	}
}

// matches reports whether a rule with direction d applies to a packet
// moving in capture direction c.
func (d Direction) matches(c CaptureDir) bool {
	switch d {
	case DirBoth:
		return true
	case DirRx:
		return c == CaptureRx
	default:
		return c == CaptureTx
	}
}

// Rule is a packet-manipulation rule installed on a node. Rules implement
// the connection-control requirement of §IV-A2 (dropping, delaying and
// modifying packets based on defined rules) and are the mechanism behind
// the fault injections of §IV-D1.
type Rule struct {
	id int
	// Dir selects transmit and/or receive application.
	Dir Direction
	// Proto, if non-empty, restricts the rule to packets with that
	// protocol label. Fault injections use "sd" to affect only packets
	// "belonging to the experiment process" (§IV-D1).
	Proto string
	// Peer, if non-empty, restricts the rule to packets whose remote end
	// (source for rx, destination for tx) is this node. Path loss and
	// path delay faults use it.
	Peer NodeID
	// DropProb is the probability in [0,1] that a matching packet is
	// discarded.
	DropProb float64
	// DropAll unconditionally discards matching packets (interface
	// fault / drop-all manipulation).
	DropAll bool
	// Delay adds a constant delay to matching packets (message delay
	// fault).
	Delay time.Duration
	// ReorderProb delays a matching packet by ReorderDelay with this
	// probability, letting later packets overtake it (§IV-A2 requires
	// reordering support).
	ReorderProb  float64
	ReorderDelay time.Duration
	// ReorderCorr correlates successive reorder decisions, netem-style:
	// with this probability a packet repeats the previous packet's
	// decision instead of drawing fresh against ReorderProb. Reordered
	// packets then arrive in bursts, as on real radio links.
	ReorderCorr float64
	// DupProb is the probability in [0,1] that a matching packet is
	// duplicated: on tx a second transmission is queued, on rx the packet
	// is delivered (or relayed) twice.
	DupProb float64
	// CorruptProb gates Modify: the hook runs on a matching packet with
	// this probability. Zero keeps the legacy behaviour of applying
	// Modify to every match.
	CorruptProb float64
	// RateBps, if positive, shapes matching packets through a token
	// bucket of RateBurst bytes (default 4 full frames): packets beyond
	// the rate are delayed until tokens refill, never dropped (netem rate
	// semantics).
	RateBps   int64
	RateBurst int
	// Rng, if non-nil, supplies the rule's probabilistic draws; nil falls
	// back to the node's stream. Fault injections set it so a fault's
	// randomness is fully determined by its own seed.
	Rng *rand.Rand
	// Modify, if non-nil, replaces the packet payload (content
	// manipulation, §IV-A2). It must not retain the packet.
	Modify func(p *Packet)

	// Token-bucket and correlation state, owned by the installed rule.
	lastReorder bool
	tokens      float64
	lastFill    time.Time
	filled      bool

	// m holds the rule's pre-resolved instruments (metrics.go); the zero
	// value keeps evaluation uninstrumented and allocation-free.
	m ruleMetrics
}

// ID returns the rule identifier assigned at installation.
func (r *Rule) ID() int { return r.id }

// appliesTo reports whether the rule matches packet p moving in direction c
// at node n.
func (r *Rule) appliesTo(p *Packet, c CaptureDir) bool {
	if !r.Dir.matches(c) {
		return false
	}
	if r.Proto != "" && p.Proto != r.Proto {
		return false
	}
	if r.Peer != "" {
		if c == CaptureRx {
			if p.Src != r.Peer {
				return false
			}
		} else {
			if !p.Dst.IsUnicast() || p.Dst.Node != r.Peer {
				return false
			}
		}
	}
	return true
}

// verdict is the outcome of evaluating a node's rule chain on one packet.
type verdict struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// DefaultRateBurst is the token-bucket depth used when a rate-limiting
// rule leaves RateBurst zero: four full ethernet frames.
const DefaultRateBurst = 4 * 1500

// shape passes one packet through the rule's token bucket at virtual time
// now and returns the shaping delay. The bucket may go negative: each
// packet consumes its wire size, and a deficit translates into the time
// the refill needs to cover it, so back-to-back packets queue up behind
// each other like in a real qdisc.
func (r *Rule) shape(p *Packet, now time.Time) time.Duration {
	burst := float64(r.RateBurst)
	if burst <= 0 {
		burst = DefaultRateBurst
	}
	if !r.filled {
		r.tokens = burst
		r.filled = true
	} else {
		r.tokens += now.Sub(r.lastFill).Seconds() * float64(r.RateBps) / 8
		if r.tokens > burst {
			r.tokens = burst
		}
	}
	r.lastFill = now
	r.tokens -= float64(p.WireSize())
	if r.tokens >= 0 {
		return 0
	}
	return time.Duration(-r.tokens * 8 / float64(r.RateBps) * float64(time.Second))
}

// evalRules runs all installed rules of n on p for direction c. Random
// decisions draw from the rule's own rng when set (seeded fault
// injections), otherwise from the node's deterministic stream.
func (n *Node) evalRules(p *Packet, c CaptureDir) verdict {
	var v verdict
	for _, r := range n.rules {
		if !r.appliesTo(p, c) {
			continue
		}
		rng := r.Rng
		if rng == nil {
			rng = n.rng
		}
		if r.DropAll {
			v.drop = true
			return v
		}
		if r.DropProb > 0 && rng.Float64() < r.DropProb {
			v.drop = true
			return v
		}
		v.delay += r.Delay
		if r.ReorderProb > 0 {
			reorder := rng.Float64() < r.ReorderProb
			if r.ReorderCorr > 0 && rng.Float64() < r.ReorderCorr {
				reorder = r.lastReorder
			}
			r.lastReorder = reorder
			if reorder {
				v.delay += r.ReorderDelay
				r.m.reordered.Inc()
			}
		}
		if r.RateBps > 0 {
			if stall := r.shape(p, n.sh.s.Now()); stall > 0 {
				v.delay += stall
				r.m.rateStalls.Inc()
			}
		}
		if r.DupProb > 0 && rng.Float64() < r.DupProb {
			v.dup = true
		}
		if r.Modify != nil && (r.CorruptProb <= 0 || rng.Float64() < r.CorruptProb) {
			r.Modify(p)
			r.m.corrupted.Inc()
		}
	}
	return v
}

// InstallRule adds a manipulation rule to the node and returns it; the rule
// stays active until RemoveRule.
func (n *Node) InstallRule(r Rule) *Rule {
	n.net.ruleSeq++
	r.id = n.net.ruleSeq
	rp := &r
	if n.net.obs != nil {
		rp.instrument(n.net.obs, n.id)
	}
	n.rules = append(n.rules, rp)
	return rp
}

// RemoveRule uninstalls a rule previously returned by InstallRule. Removing
// a rule twice is a no-op.
func (n *Node) RemoveRule(r *Rule) {
	for i, x := range n.rules {
		if x == r {
			n.rules = append(n.rules[:i], n.rules[i+1:]...)
			return
		}
	}
}

// ClearRules removes all rules (run preparation resets the environment,
// §IV-C1).
func (n *Node) ClearRules() { n.rules = nil }

// RuleCount returns the number of installed rules.
func (n *Node) RuleCount() int { return len(n.rules) }

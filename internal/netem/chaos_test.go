package netem

// Tests for the chaos rule vocabulary (duplicate, corrupt, correlated
// reorder, rate limit) and the process-state faults (kill, pause,
// stress).

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"excovery/internal/sched"
)

func TestDuplicateRuleTx(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	a.InstallRule(Rule{Dir: DirTx, DupProb: 1, Rng: rand.New(rand.NewSource(7))})
	recv := 0
	b.SetHandler(func(p *Packet) { recv++ })
	s.Go("send", func() {
		for i := 0; i < 10; i++ {
			a.Send(Unicast("b"), "t", []byte("x"))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 20 {
		t.Fatalf("received %d packets, want 20 (every one duplicated)", recv)
	}
	if nw.Stats().RuleDuplicates != 10 {
		t.Fatalf("RuleDuplicates = %d, want 10", nw.Stats().RuleDuplicates)
	}
}

func TestDuplicateRuleRxDeliversTwice(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	b.InstallRule(Rule{Dir: DirRx, DupProb: 1, Rng: rand.New(rand.NewSource(7))})
	recv := 0
	b.SetHandler(func(p *Packet) { recv++ })
	s.Go("send", func() { a.Send(Unicast("b"), "t", []byte("x")) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 2 {
		t.Fatalf("received %d deliveries, want 2", recv)
	}
}

func TestCorruptRuleFlipsBitCopyOnWrite(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	rng := rand.New(rand.NewSource(3))
	b.InstallRule(Rule{Dir: DirRx, CorruptProb: 1, Rng: rng,
		Modify: func(p *Packet) {
			q := append([]byte(nil), p.Payload...)
			bit := rng.Intn(len(q) * 8)
			q[bit/8] ^= 1 << (bit % 8)
			p.Payload = q
		}})
	orig := []byte("payload")
	var got []byte
	b.SetHandler(func(p *Packet) { got = p.Payload })
	s.Go("send", func() { a.Send(Unicast("b"), "t", orig) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("payload not corrupted")
	}
	if string(orig) != "payload" {
		t.Fatalf("sender payload mutated to %q — Modify must copy", orig)
	}
	// Exactly one bit differs.
	diff := 0
	for i := range got {
		for b := got[i] ^ orig[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
}

func TestCorruptProbGatesModify(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	modified := 0
	b.InstallRule(Rule{Dir: DirRx, CorruptProb: 0.5, Rng: rand.New(rand.NewSource(5)),
		Modify: func(p *Packet) { modified++ }})
	s.Go("send", func() {
		for i := 0; i < 200; i++ {
			a.Send(Unicast("b"), "t", []byte("x"))
			s.Sleep(time.Millisecond) // pace below the egress queue limit
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if modified < 60 || modified > 140 {
		t.Fatalf("modified %d of 200 at prob 0.5", modified)
	}
}

func TestReorderCorrelationRepeatsDecisions(t *testing.T) {
	// With full correlation, every packet after the first repeats the
	// first decision: either all are held back or none, never a mix.
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		s := sched.NewVirtual()
		nw := New(s, 1)
		a := nw.AddNode("a", NodeParams{})
		b := nw.AddNode("b", NodeParams{})
		nw.AddLink("a", "b", lossless(time.Millisecond))
		b.InstallRule(Rule{Dir: DirRx, ReorderProb: 0.5, ReorderCorr: 1,
			ReorderDelay: 40 * time.Millisecond, Rng: rand.New(rand.NewSource(seed))})
		var times []time.Time
		b.SetHandler(func(p *Packet) { times = append(times, s.Now()) })
		s.Go("send", func() {
			for i := 1; i < 10; i++ {
				a.Send(Unicast("b"), "t", []byte("x"))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if len(times) != 9 {
			t.Fatalf("seed %d: delivered %d", seed, len(times))
		}
		// All deliveries after the first must share the first packet's
		// fate; spread between consecutive arrivals stays < reorder
		// delay if and only if decisions never flip.
		for i := 2; i < len(times); i++ {
			gap := times[i].Sub(times[i-1])
			if gap > 20*time.Millisecond {
				t.Fatalf("seed %d: decision flipped mid-stream (gap %v)", seed, gap)
			}
		}
	}
}

func TestRateLimitShapesThroughput(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	// 64 kbit/s, burst of one packet: 20 packets of 1000 B wire size
	// need ≈ (20-burst)·1000·8/64000 s ≈ 2.4 s.
	a.InstallRule(Rule{Dir: DirTx, RateBps: 64_000, RateBurst: 1000,
		Rng: rand.New(rand.NewSource(1))})
	var last time.Time
	recv := 0
	b.SetHandler(func(p *Packet) { recv++; last = s.Now() })
	start := s.Now()
	s.Go("send", func() {
		for i := 0; i < 20; i++ {
			a.Send(Unicast("b"), "t", make([]byte, 952)) // 1000 B wire
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 20 {
		t.Fatalf("rate limit dropped packets: %d/20", recv)
	}
	took := last.Sub(start)
	if took < 2*time.Second || took > 3*time.Second {
		t.Fatalf("20 packets at 64 kbit/s took %v, want ≈2.4 s", took)
	}
}

func TestKilledNodeMuteAndUnrouted(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	ids := BuildChain(nw, "n", 3, NodeParams{}, lossless(time.Millisecond))
	mid := nw.Node(ids[1])
	recv := 0
	nw.Node(ids[2]).SetHandler(func(p *Packet) { recv++ })
	s.Go("kill", func() {
		mid.SetKilled(true)
		if _, ok := nw.NextHop(ids[0], ids[2]); ok {
			t.Error("route through killed node survived")
		}
		if _, ok := nw.Node(ids[0]).Send(Unicast(ids[2]), "t", nil); ok {
			t.Error("send through killed relay succeeded")
		}
		mid.SetKilled(false)
		if _, ok := nw.Node(ids[0]).Send(Unicast(ids[2]), "t", nil); !ok {
			t.Error("send after restart failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 1 {
		t.Fatalf("delivered %d, want 1 (only after restart)", recv)
	}
}

func TestPausedNodeBuffersAndDrains(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	var deliveredAt []time.Time
	b.SetHandler(func(p *Packet) { deliveredAt = append(deliveredAt, s.Now()) })
	start := s.Now()
	s.Go("drive", func() {
		b.SetPaused(true)
		for i := 0; i < 3; i++ {
			a.Send(Unicast("b"), "t", []byte("x"))
		}
		s.Sleep(100 * time.Millisecond)
		if len(deliveredAt) != 0 {
			t.Error("paused node delivered packets")
		}
		b.SetPaused(false)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 3 {
		t.Fatalf("delivered %d after resume, want 3", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		if at.Sub(start) < 100*time.Millisecond {
			t.Fatalf("delivery at %v predates resume", at.Sub(start))
		}
	}
}

func TestStressSlowsSerialization(t *testing.T) {
	lat := func(stress float64) time.Duration {
		s := sched.NewVirtual()
		nw := New(s, 1)
		a := nw.AddNode("a", NodeParams{})
		b := nw.AddNode("b", NodeParams{})
		nw.AddLink("a", "b", lossless(time.Millisecond))
		a.SetStress(stress)
		var at time.Time
		b.SetHandler(func(p *Packet) { at = s.Now() })
		start := s.Now()
		s.Go("send", func() { a.Send(Unicast("b"), "t", make([]byte, 7452)) }) // 7500 B → 10 ms at 6 Mbit/s
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return at.Sub(start)
	}
	base := lat(0)
	loaded := lat(2)
	// Serialization triples under stress 2; link delay is constant.
	wantMin := base + 15*time.Millisecond
	if loaded < wantMin {
		t.Fatalf("stress 2: latency %v vs base %v, want ≥ %v", loaded, base, wantMin)
	}
}

func TestResetRunStateClearsProcessFaults(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	a := nw.AddNode("a", NodeParams{})
	b := nw.AddNode("b", NodeParams{})
	nw.AddLink("a", "b", lossless(time.Millisecond))
	s.Go("drive", func() {
		a.SetKilled(true)
		b.SetPaused(true)
		b.SetStress(3)
		a.ResetRunState()
		b.ResetRunState()
		if a.Killed() || b.Paused() || b.Stress() != 0 {
			t.Errorf("state survived reset: killed=%v paused=%v stress=%v",
				a.Killed(), b.Paused(), b.Stress())
		}
		if _, ok := a.Send(Unicast("b"), "t", nil); !ok {
			t.Error("send after reset failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// Package netem emulates a wireless multi-hop IP network on a cooperative
// scheduler.
//
// The paper's prototype runs on the DES wireless testbed at FU Berlin; this
// package is the substitute platform (see DESIGN.md). It fulfils the
// platform requirements of §IV-A as far as they apply to an emulator:
//
//   - Experiment management (§IV-A1): the control channel is out of band —
//     the master manipulates nodes through direct method calls (or XML-RPC
//     in the distributed deployment), never through emulated links.
//   - Connection control (§IV-A2): interfaces can be taken down per
//     direction and packets can be dropped, delayed and modified based on
//     installed rules (see rules.go).
//   - Measurement (§IV-A3): every node captures packets with local
//     timestamps and full content, packets carry unique identifiers and
//     their hop-by-hop path, and a 16-bit packet tagger reproduces the
//     prototype's IP-option tagging.
//
// Topology is an arbitrary undirected graph with per-link delay, jitter and
// loss and per-node transmission rate (the shared-medium serialization of a
// wireless radio). Unicast packets are routed hop by hop along shortest
// paths; multicast and broadcast packets flood the mesh with per-hop
// duplicate suppression and a TTL, which is how mDNS traffic propagates in
// a mesh under flooding-based multicast.
//
// The per-packet data path runs as inline scheduler events with pooled
// packets and precomputed per-node fan-out (see DESIGN.md §16): no
// goroutine handoff, no allocation and no neighbor recomputation per
// delivery. A network can further be sharded across the members of a
// sched.Group (NewSharded) so disjoint node sets advance in parallel under
// conservative lookahead.
package netem

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/vclock"
)

// BurstLoss is a two-state Gilbert–Elliott loss model for bursty wireless
// links ([8]: real radio channels lose packets in bursts, not
// independently). The link is in a good or a bad state; each traversing
// packet first triggers a possible state transition, then draws its loss
// from the current state's probability.
type BurstLoss struct {
	// PGoodToBad and PBadToGood are per-packet transition probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the loss probabilities in each state
	// (typically LossGood ≪ LossBad).
	LossGood, LossBad float64
}

// MeanLoss returns the stationary loss probability of the model.
func (b BurstLoss) MeanLoss() float64 {
	den := b.PGoodToBad + b.PBadToGood
	if den == 0 {
		return b.LossGood
	}
	pBad := b.PGoodToBad / den
	return (1-pBad)*b.LossGood + pBad*b.LossBad
}

// LinkParams describe one directed link of the topology.
type LinkParams struct {
	// Delay is the constant propagation/processing delay.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0,Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a packet on this link is
	// lost. Losses are independent per packet and per receiving neighbor
	// (broadcast transmissions can reach some neighbors and miss others,
	// as on a real radio channel).
	Loss float64
	// Burst, if non-nil, replaces the independent Loss with the
	// Gilbert–Elliott model; each directed link keeps its own state.
	Burst *BurstLoss

	// burstBad is the per-directed-link Gilbert–Elliott state.
	burstBad bool
}

// DefaultLink returns link parameters resembling one hop of an IEEE 802.11
// mesh under light load: 1 ms delay, 0.5 ms jitter, 1 % loss.
func DefaultLink() LinkParams {
	return LinkParams{Delay: time.Millisecond, Jitter: 500 * time.Microsecond, Loss: 0.01}
}

// NodeParams describe a node's radio.
type NodeParams struct {
	// RateBps is the egress serialization rate in bits per second. All
	// transmissions of a node share this rate, which models medium
	// occupancy: background traffic inflates the queueing delay of SD
	// packets. Default 6 Mbit/s (effective 802.11g mesh rate).
	RateBps int64
	// QueueLen is the maximum number of packets in the egress queue;
	// excess packets are tail-dropped. Default 64.
	QueueLen int
	// Clock is the node's local clock; nil means a perfect clock.
	Clock vclock.Clock
}

func (p *NodeParams) fill(s *sched.Scheduler) {
	if p.RateBps == 0 {
		p.RateBps = 6_000_000
	}
	if p.QueueLen == 0 {
		p.QueueLen = 64
	}
	if p.Clock == nil {
		p.Clock = vclock.Perfect{S: s}
	}
}

// DropReason classifies discarded packets in the network statistics.
type DropReason int

const (
	// DropLoss is a random link loss.
	DropLoss DropReason = iota
	// DropRule is a discard by an installed manipulation rule.
	DropRule
	// DropQueue is an egress tail drop (queue full).
	DropQueue
	// DropNoRoute means no path to the unicast destination exists.
	DropNoRoute
	// DropTTL means the flood TTL expired.
	DropTTL
	// DropIfDown means the interface was administratively down.
	DropIfDown
	// DropProc means the node's process was killed or paused.
	DropProc
	dropReasonCount
)

func (r DropReason) String() string {
	switch r {
	case DropLoss:
		return "loss"
	case DropRule:
		return "rule"
	case DropQueue:
		return "queue"
	case DropNoRoute:
		return "noroute"
	case DropTTL:
		return "ttl"
	case DropIfDown:
		return "ifdown"
	case DropProc:
		return "proc"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Stats are network-wide packet counters.
type Stats struct {
	// Sent counts packets handed to Send.
	Sent uint64
	// Transmissions counts per-hop radio transmissions.
	Transmissions uint64
	// Delivered counts handler invocations.
	Delivered uint64
	// Duplicates counts flood duplicates suppressed at receivers.
	Duplicates uint64
	// RuleDuplicates counts packet copies created by duplication rules.
	RuleDuplicates uint64
	// Dropped counts discards by reason.
	Dropped [dropReasonCount]uint64
}

// DroppedTotal sums all drop reasons.
func (st *Stats) DroppedTotal() uint64 {
	var t uint64
	for _, v := range st.Dropped {
		t += v
	}
	return t
}

// add accumulates other into st (shard merge).
func (st *Stats) add(other *Stats) {
	st.Sent += other.Sent
	st.Transmissions += other.Transmissions
	st.Delivered += other.Delivered
	st.Duplicates += other.Duplicates
	st.RuleDuplicates += other.RuleDuplicates
	for i := range st.Dropped {
		st.Dropped[i] += other.Dropped[i]
	}
}

// maxFreePackets bounds each shard's packet free list.
const maxFreePackets = 8192

// shardState is the per-shard slice of the network's mutable hot-path
// state: the scheduler the shard's nodes run on, the shard-local packet
// counters and sequence, and the packet free list. Every field is written
// only by the owning shard's controller goroutine, so shards never contend
// — the merged view (Stats) must only be read while the group is idle.
type shardState struct {
	idx    int
	s      *sched.Scheduler
	stats  Stats
	pktSeq uint64
	free   []*Packet
}

// newPacket returns a zeroed packet from the shard's free list (or a fresh
// one). The caller owns it until it is handed to exactly one of: the egress
// ring, a scheduled delivery event, the paused-process buffer — or freed.
func (sh *shardState) newPacket() *Packet {
	if k := len(sh.free); k > 0 {
		p := sh.free[k-1]
		sh.free[k-1] = nil
		sh.free = sh.free[:k-1]
		return p
	}
	return &Packet{}
}

// freePacket recycles p. The packet must not be referenced afterwards; its
// Path backing array is retained for reuse.
func (sh *shardState) freePacket(p *Packet) {
	path := p.Path[:0]
	*p = Packet{}
	p.Path = path
	if len(sh.free) < maxFreePackets {
		sh.free = append(sh.free, p)
	}
}

// edge is one precomputed outgoing link of a node: the resolved target node
// and the link parameters, so the flood fan-out and the contention model
// touch no maps. Rebuilt only on topology mutation.
type edge struct {
	n  *Node
	lp *LinkParams
}

// Network is an emulated mesh network.
type Network struct {
	s      *sched.Scheduler // shard 0 / control scheduler
	g      *sched.Group     // nil for a single-shard network
	shards []*shardState
	assign func(NodeID) int // node -> shard; nil means shard 0

	nodes  map[NodeID]*Node
	order  []NodeID // sorted, for deterministic iteration
	links  map[NodeID]map[NodeID]*LinkParams
	groups map[string]map[NodeID]bool
	routes map[NodeID]map[NodeID]NodeID // routes[src][dst] = next hop
	// edgesDirty/routesDirty mark the per-node edge snapshots and the
	// next-hop tables stale after a topology mutation. Both rebuild
	// lazily on a single-shard network; a sharded network rebuilds them
	// at window barriers and freezes the topology while running.
	edgesDirty  bool
	routesDirty bool
	started     bool // a sharded network has begun running windows
	ruleSeq     int
	seed        int64
	// obs, when non-nil, makes nodes and rules resolve per-node/per-rule
	// instruments (see metrics.go). Nil leaves the data path bare.
	obs *obs.Registry

	// DefaultTTL limits multicast/broadcast flooding; default 8 hops.
	DefaultTTL int
	// Contention models the shared wireless medium (CSMA-style): a
	// transmission occupies the channel at the sender and all its radio
	// neighbors, so background traffic steals airtime from everyone in
	// range — the mechanism that makes generated load inflate discovery
	// times on a real testbed. Default on; switch off for idealized
	// point-to-point links. On a sharded network, reservations apply to
	// same-shard neighbors only.
	Contention bool
}

// New creates an empty single-shard network. All random decisions (loss,
// jitter) derive from seed, so two networks with equal topology, seed and
// workload behave identically (§IV-C1: "perfect repeatability of random
// sequences").
func New(s *sched.Scheduler, seed int64) *Network {
	return &Network{
		s:          s,
		shards:     []*shardState{{idx: 0, s: s}},
		nodes:      make(map[NodeID]*Node),
		links:      make(map[NodeID]map[NodeID]*LinkParams),
		groups:     make(map[string]map[NodeID]bool),
		seed:       seed,
		DefaultTTL: 8,
		Contention: true,
	}
}

// NewSharded creates a network whose nodes are distributed over the members
// of g by assign (which must return a valid member index for every node
// id). Cross-shard links need Delay ≥ g's lookahead — AddLink enforces it —
// and the topology freezes once the group starts running: AddLink,
// RemoveLink, Join, Leave, SetInterface and SetKilled panic mid-run.
// Per-node randomness is seeded exactly as on a single-shard network, and
// cross-shard deliveries merge deterministically (see sched.Group), so a
// run is byte-identical at any GOMAXPROCS.
func NewSharded(g *sched.Group, seed int64, assign func(NodeID) int) *Network {
	members := g.Members()
	nw := &Network{
		s:          members[0],
		g:          g,
		assign:     assign,
		nodes:      make(map[NodeID]*Node),
		links:      make(map[NodeID]map[NodeID]*LinkParams),
		groups:     make(map[string]map[NodeID]bool),
		seed:       seed,
		DefaultTTL: 8,
		Contention: true,
	}
	for i, m := range members {
		nw.shards = append(nw.shards, &shardState{idx: i, s: m})
	}
	g.BeforeWindow = nw.prepareWindow
	return nw
}

// Scheduler returns the scheduler the network runs on (shard 0 when
// sharded).
func (nw *Network) Scheduler() *sched.Scheduler { return nw.s }

// Group returns the shard group, or nil for a single-shard network.
func (nw *Network) Group() *sched.Group { return nw.g }

// prepareWindow rebuilds the topology snapshots while every shard is idle;
// it is the group's BeforeWindow hook. During windows the snapshots are
// read-only, which is what makes concurrent shard execution race-free.
func (nw *Network) prepareWindow() {
	nw.started = true
	nw.ensureEdges()
	if nw.routesDirty {
		nw.recomputeRoutes()
	}
}

// frozenTopo panics when a sharded network mutates topology or group
// membership mid-run: the snapshots other shards read concurrently cannot
// be invalidated inside a window.
func (nw *Network) frozenTopo() {
	if nw.g != nil && nw.started {
		panic("netem: topology mutation is not supported on a running sharded network")
	}
}

// Stats returns a snapshot of the network counters, merged over all shards.
// On a sharded network it must be called while the group is idle (before
// Run, between windows, or after Run returns).
func (nw *Network) Stats() Stats {
	var out Stats
	for _, sh := range nw.shards {
		out.add(&sh.stats)
	}
	return out
}

// ResetStats zeroes the network counters (run preparation). Same idle-only
// contract as Stats on a sharded network.
func (nw *Network) ResetStats() {
	for _, sh := range nw.shards {
		sh.stats = Stats{}
	}
}

func (nw *Network) shardFor(id NodeID) *shardState {
	if nw.assign == nil {
		return nw.shards[0]
	}
	i := nw.assign(id)
	if i < 0 || i >= len(nw.shards) {
		panic(fmt.Sprintf("netem: shard assignment %d for node %q out of range", i, id))
	}
	return nw.shards[i]
}

// AddNode creates a node. Adding an existing node panics: node identifiers
// are host names and must be unique (§IV-E).
func (nw *Network) AddNode(id NodeID, params NodeParams) *Node {
	if _, dup := nw.nodes[id]; dup {
		panic(fmt.Sprintf("netem: duplicate node %q", id))
	}
	nw.frozenTopo()
	sh := nw.shardFor(id)
	params.fill(sh.s)
	n := &Node{
		id:     id,
		net:    nw,
		sh:     sh,
		params: params,
		clock:  params.Clock,
		rng:    rand.New(rand.NewSource(nw.seed ^ int64(hashID(id)))),
		seen:   make(map[uint64]bool),
		member: make(map[string]bool),
		up:     true,
	}
	for gname, members := range nw.groups {
		if members[id] {
			n.member[gname] = true
		}
	}
	if nw.obs != nil {
		n.instrument(nw.obs)
	}
	nw.nodes[id] = n
	nw.order = append(nw.order, id)
	sort.Slice(nw.order, func(i, j int) bool { return nw.order[i] < nw.order[j] })
	nw.links[id] = make(map[NodeID]*LinkParams)
	nw.edgesDirty, nw.routesDirty = true, true
	return n
}

// Node returns the named node or nil.
func (nw *Network) Node(id NodeID) *Node { return nw.nodes[id] }

// Nodes returns all node identifiers in sorted order.
func (nw *Network) Nodes() []NodeID { return append([]NodeID(nil), nw.order...) }

// AddLink creates a bidirectional link with the same parameters in both
// directions. Links to unknown nodes panic.
func (nw *Network) AddLink(a, b NodeID, p LinkParams) {
	nw.addDirected(a, b, p)
	nw.addDirected(b, a, p)
}

// AddDirectedLink creates a unidirectional link (asymmetric links are
// common in wireless meshes, [8]).
func (nw *Network) AddDirectedLink(from, to NodeID, p LinkParams) {
	nw.addDirected(from, to, p)
}

func (nw *Network) addDirected(from, to NodeID, p LinkParams) {
	if nw.nodes[from] == nil || nw.nodes[to] == nil {
		panic(fmt.Sprintf("netem: link %s->%s references unknown node", from, to))
	}
	if from == to {
		panic("netem: self link")
	}
	nw.frozenTopo()
	if nw.g != nil && nw.nodes[from].sh != nw.nodes[to].sh && p.Delay < nw.g.Lookahead() {
		panic(fmt.Sprintf("netem: cross-shard link %s->%s delay %s below group lookahead %s",
			from, to, p.Delay, nw.g.Lookahead()))
	}
	cp := p
	nw.links[from][to] = &cp
	nw.edgesDirty, nw.routesDirty = true, true
}

// Link returns the parameters of the directed link from->to, or nil.
func (nw *Network) Link(from, to NodeID) *LinkParams {
	return nw.links[from][to]
}

// RemoveLink deletes the link in both directions and invalidates the
// per-node edge snapshots and routes, so the very next transmission sees
// the new topology.
func (nw *Network) RemoveLink(a, b NodeID) {
	nw.frozenTopo()
	delete(nw.links[a], b)
	delete(nw.links[b], a)
	nw.edgesDirty, nw.routesDirty = true, true
}

// Join adds a node to a multicast group. The node's membership snapshot is
// updated immediately, so the next flood delivery observes it.
func (nw *Network) Join(group string, id NodeID) {
	nw.frozenTopo()
	if nw.groups[group] == nil {
		nw.groups[group] = make(map[NodeID]bool)
	}
	nw.groups[group][id] = true
	if n := nw.nodes[id]; n != nil {
		n.member[group] = true
	}
}

// Leave removes a node from a multicast group; the node's membership
// snapshot is invalidated immediately, so the very next flood delivery no
// longer reaches it.
func (nw *Network) Leave(group string, id NodeID) {
	nw.frozenTopo()
	delete(nw.groups[group], id)
	if n := nw.nodes[id]; n != nil {
		delete(n.member, group)
	}
}

// InGroup reports group membership.
func (nw *Network) InGroup(group string, id NodeID) bool {
	return nw.groups[group][id]
}

// ensureEdges rebuilds every node's outgoing-edge snapshot (sorted by
// target id) after a topology mutation. The snapshot resolves the target
// node and link parameters once, so the per-transmission fan-out loop does
// no map lookups and no sorting.
func (nw *Network) ensureEdges() {
	if !nw.edgesDirty {
		return
	}
	for _, id := range nw.order {
		n := nw.nodes[id]
		n.edges = n.edges[:0]
		for to, lp := range nw.links[id] {
			n.edges = append(n.edges, edge{n: nw.nodes[to], lp: lp})
		}
		sort.Slice(n.edges, func(i, j int) bool { return n.edges[i].n.id < n.edges[j].n.id })
	}
	nw.edgesDirty = false
}

// recomputeRoutes rebuilds the next-hop tables with a BFS per source over
// operational nodes (interface up, process not killed).
func (nw *Network) recomputeRoutes() {
	nw.ensureEdges()
	nw.routes = make(map[NodeID]map[NodeID]NodeID, len(nw.order))
	for _, src := range nw.order {
		nw.routes[src] = nw.bfsFrom(src)
	}
	nw.routesDirty = false
}

func (nw *Network) bfsFrom(src NodeID) map[NodeID]NodeID {
	next := make(map[NodeID]NodeID)
	if !nw.nodes[src].operational() {
		return next
	}
	type qe struct {
		node  *Node
		first NodeID // first hop on the path from src
	}
	visited := map[NodeID]bool{src: true}
	var queue []qe
	for _, e := range nw.nodes[src].edges {
		if e.n.operational() {
			visited[e.n.id] = true
			next[e.n.id] = e.n.id
			queue = append(queue, qe{e.n, e.n.id})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.node.edges {
			if visited[e.n.id] || !e.n.operational() {
				continue
			}
			visited[e.n.id] = true
			next[e.n.id] = cur.first
			queue = append(queue, qe{e.n, cur.first})
		}
	}
	return next
}

// NextHop returns the first hop on the route src->dst, recomputing routes
// if the topology changed. ok is false when dst is unreachable.
func (nw *Network) NextHop(src, dst NodeID) (NodeID, bool) {
	if nw.routesDirty {
		nw.recomputeRoutes()
	}
	hop, ok := nw.routes[src][dst]
	return hop, ok
}

// HopCount returns the number of hops on the shortest path a->b, 0 for
// a==b, or -1 if unreachable. It is the topology measurement of §IV-B4.
func (nw *Network) HopCount(a, b NodeID) int {
	if a == b {
		return 0
	}
	if nw.routesDirty {
		nw.recomputeRoutes()
	}
	hops := 0
	cur := a
	for cur != b {
		next, ok := nw.routes[cur][b]
		if !ok {
			return -1
		}
		cur = next
		hops++
		if hops > len(nw.order) {
			return -1 // routing loop guard; cannot happen with BFS tables
		}
	}
	return hops
}

// HopMatrix measures hop counts between all node pairs, as done before and
// after each experiment (§IV-B4).
func (nw *Network) HopMatrix() map[NodeID]map[NodeID]int {
	m := make(map[NodeID]map[NodeID]int, len(nw.order))
	for _, a := range nw.order {
		m[a] = make(map[NodeID]int, len(nw.order))
		for _, b := range nw.order {
			m[a][b] = nw.HopCount(a, b)
		}
	}
	return m
}

func hashID(id NodeID) uint64 {
	// FNV-1a; stable across runs and platforms.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

package netem

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology constructors. They create nodes named <prefix>0, <prefix>1, …
// and wire them with uniform parameters. Experiments use them to reproduce
// the DES testbed's mesh structures: chains isolate hop-count effects,
// grids approximate the dense office deployment, and random geometric
// graphs model irregular radio reach.

// BuildChain creates a linear multi-hop topology of n nodes.
func BuildChain(nw *Network, prefix string, n int, np NodeParams, lp LinkParams) []NodeID {
	ids := addNodes(nw, prefix, n, np)
	for i := 0; i+1 < n; i++ {
		nw.AddLink(ids[i], ids[i+1], lp)
	}
	return ids
}

// BuildRing creates a cycle of n nodes.
func BuildRing(nw *Network, prefix string, n int, np NodeParams, lp LinkParams) []NodeID {
	ids := BuildChain(nw, prefix, n, np, lp)
	if n > 2 {
		nw.AddLink(ids[n-1], ids[0], lp)
	}
	return ids
}

// BuildStar creates a hub-and-spoke topology: node 0 is the hub.
func BuildStar(nw *Network, prefix string, spokes int, np NodeParams, lp LinkParams) []NodeID {
	ids := addNodes(nw, prefix, spokes+1, np)
	for i := 1; i <= spokes; i++ {
		nw.AddLink(ids[0], ids[i], lp)
	}
	return ids
}

// BuildFull creates a fully meshed (single-collision-domain) topology where
// every node hears every other — a one-hop WLAN.
func BuildFull(nw *Network, prefix string, n int, np NodeParams, lp LinkParams) []NodeID {
	ids := addNodes(nw, prefix, n, np)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			nw.AddLink(ids[i], ids[j], lp)
		}
	}
	return ids
}

// BuildGrid creates a w×h grid with 4-neighborhood links, the canonical
// mesh-testbed layout.
func BuildGrid(nw *Network, prefix string, w, h int, np NodeParams, lp LinkParams) []NodeID {
	ids := addNodes(nw, prefix, w*h, np)
	at := func(x, y int) NodeID { return ids[y*w+x] }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				nw.AddLink(at(x, y), at(x+1, y), lp)
			}
			if y+1 < h {
				nw.AddLink(at(x, y), at(x, y+1), lp)
			}
		}
	}
	return ids
}

// BuildRandomGeometric places n nodes uniformly in the unit square and
// links pairs closer than radius, retrying with a growing radius until the
// graph is connected. The placement derives from seed only.
func BuildRandomGeometric(nw *Network, prefix string, n int, radius float64, seed int64, np NodeParams, lp LinkParams) []NodeID {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	ids := addNodes(nw, prefix, n, np)
	r := radius
	for {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
				if d <= r && nw.Link(ids[i], ids[j]) == nil {
					nw.AddLink(ids[i], ids[j], lp)
				}
			}
		}
		if isConnected(nw, ids) {
			return ids
		}
		r *= 1.25
	}
}

func isConnected(nw *Network, ids []NodeID) bool {
	if len(ids) == 0 {
		return true
	}
	for _, b := range ids[1:] {
		if nw.HopCount(ids[0], b) < 0 {
			return false
		}
	}
	return true
}

func addNodes(nw *Network, prefix string, n int, np NodeParams) []NodeID {
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = NodeID(fmt.Sprintf("%s%d", prefix, i))
		nw.AddNode(ids[i], np)
	}
	return ids
}

package netem

import (
	"math/rand"
	"time"

	"excovery/internal/sched"
	"excovery/internal/vclock"
)

// Handler receives packets addressed to a node. It runs in scheduler task
// context and may use all scheduler primitives.
type Handler func(p *Packet)

// Node is one emulated network node.
type Node struct {
	id     NodeID
	net    *Network
	params NodeParams
	clock  vclock.Clock
	rng    *rand.Rand
	rxName string // "rx <id>" timer label, precomputed (per-packet hot)

	handler Handler

	egress  *sched.Queue[*transmission]
	queued  int // packets currently in egress (for tail drop)
	up      bool
	rxDown  bool
	txDown  bool
	killed  bool      // process killed: node mute and out of routing
	paused  bool      // process paused: rx buffers, nothing processed
	pausedQ []*Packet // packets buffered while paused (kernel socket buffer)
	stress  float64   // CPU stress factor; scales serialization time
	tag     uint16
	tagging bool

	capturing bool
	captures  []Capture

	rules []*Rule
	seen  map[uint64]bool // flood duplicate suppression

	// m holds the node's pre-resolved instruments (metrics.go); the zero
	// value keeps the data path uninstrumented and allocation-free.
	m nodeMetrics
}

// transmission is one queued radio transmission.
type transmission struct {
	pkt *Packet
	// nextHop is the unicast relay target; zero for flood transmissions.
	nextHop NodeID
	// extraDelay accumulates rule-injected delay to apply before
	// propagation.
	extraDelay time.Duration
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Net returns the network the node belongs to.
func (n *Node) Net() *Network { return n.net }

// Clock returns the node's local clock.
func (n *Node) Clock() vclock.Clock { return n.clock }

// SetClock replaces the node's local clock (used by experiments that model
// clock deviation).
func (n *Node) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Perfect{S: n.net.s}
	}
	n.clock = c
}

// SetHandler installs the packet receive handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// SetTagging enables the packet tagger of §VI-A: each transmitted packet
// gets a 16-bit identifier, incremented per packet, wrapping at 65535.
func (n *Node) SetTagging(on bool) { n.tagging = on }

// SetCapture enables or disables packet capture on this node.
func (n *Node) SetCapture(on bool) { n.capturing = on }

// Captures returns the packets captured so far.
func (n *Node) Captures() []Capture { return n.captures }

// ClearCaptures drops captured packets (between runs).
func (n *Node) ClearCaptures() { n.captures = nil }

// ResetRunState clears per-run transient state: flood duplicate suppression
// and queued packets are discarded, reproducing the preparation-phase
// requirement that "network packets generated in previous runs must be
// dropped on all participants" (§IV-C1).
func (n *Node) ResetRunState() {
	n.seen = make(map[uint64]bool)
	for {
		if _, ok := n.egress.TryPop(); !ok {
			break
		}
		n.queued--
	}
	n.m.queueDepth.Set(int64(n.queued))
	n.pausedQ = nil
	n.paused = false
	n.stress = 0
	n.SetKilled(false)
}

// InterfaceUp reports whether the interface is administratively up.
func (n *Node) InterfaceUp() bool { return n.up }

// SetInterface activates or deactivates the node's network interface
// (§IV-A2). A down interface neither sends, receives nor forwards, and the
// node disappears from routing until reactivated.
func (n *Node) SetInterface(up bool) {
	if n.up == up {
		return
	}
	n.up = up
	n.net.dirty, n.net.nbrs = true, nil
}

// SetInterfaceDir blocks only one direction, implementing the directional
// interface fault of §IV-D1 without removing the node from routing.
func (n *Node) SetInterfaceDir(rxBlocked, txBlocked bool) {
	n.rxDown = rxBlocked
	n.txDown = txBlocked
}

// operational reports whether the node participates in the network: its
// interface is up and its process has not been killed.
func (n *Node) operational() bool { return n.up && !n.killed }

// Killed reports whether the node's process is killed.
func (n *Node) Killed() bool { return n.killed }

// SetKilled kills or restarts the node's process (pumba-style container
// kill). A killed node neither sends, receives nor forwards; its queued
// transmissions and buffered packets are lost and it disappears from
// routing until restarted.
func (n *Node) SetKilled(on bool) {
	if n.killed == on {
		return
	}
	n.killed = on
	if on {
		for {
			if _, ok := n.egress.TryPop(); !ok {
				break
			}
			n.queued--
		}
		n.m.queueDepth.Set(int64(n.queued))
		n.pausedQ = nil
	}
	n.net.dirty, n.net.nbrs = true, nil
}

// Paused reports whether the node's process is paused.
func (n *Node) Paused() bool { return n.paused }

// SetPaused freezes or resumes the node's process (pumba-style SIGSTOP).
// While paused the NIC still receives — packets are captured and buffered
// up to the queue limit, like a kernel socket buffer under a stopped
// process — but nothing is processed or sent. Resuming drains the buffer
// in arrival order.
func (n *Node) SetPaused(on bool) {
	if n.paused == on {
		return
	}
	n.paused = on
	if on || len(n.pausedQ) == 0 {
		return
	}
	q := n.pausedQ
	n.pausedQ = nil
	for _, p := range q {
		p := p
		n.net.s.ScheduleFunc(0, n.rxName, func() { n.process(p) })
	}
}

// Stress returns the node's CPU stress factor.
func (n *Node) Stress() float64 { return n.stress }

// SetStress sets a CPU stress factor f ≥ 0 (pumba-style stress-ng): packet
// serialization takes (1+f)× as long, modelling a loaded host competing
// with the network stack. Zero removes the stress.
func (n *Node) SetStress(f float64) {
	if f < 0 {
		f = 0
	}
	n.stress = f
}

func (n *Node) capture(p *Packet, dir CaptureDir) {
	if !n.capturing {
		return
	}
	n.captures = append(n.captures, Capture{
		Time: n.clock.Now(),
		Dir:  dir,
		Node: n.id,
		Pkt:  *p,
	})
}

// Send originates a packet from this node. For unicast destinations it is
// routed hop by hop; multicast and broadcast flood the mesh. It returns the
// assigned packet ID; ok is false if the packet was dropped locally (down
// interface, full queue, tx rule, or no route).
func (n *Node) Send(dst Dest, proto string, payload []byte) (id uint64, ok bool) {
	nw := n.net
	nw.stats.Sent++
	n.m.sent.Inc()
	nw.pktSeq++
	p := &Packet{
		ID:      nw.pktSeq,
		Src:     n.id,
		Dst:     dst,
		Proto:   proto,
		Payload: payload,
		TTL:     nw.DefaultTTL,
		Path:    []NodeID{n.id},
		SentAt:  nw.s.Now(),
	}
	if n.tagging {
		n.tag++
		p.Tag = n.tag
	}
	// Originating node has seen its own flood packet.
	n.seen[p.ID] = true
	return p.ID, n.enqueue(p)
}

// enqueue pushes a packet into the egress queue, applying tx admission
// (interface state, rules, tail drop). It is used for both originated and
// forwarded packets.
func (n *Node) enqueue(p *Packet) bool {
	nw := n.net
	if !n.up || n.txDown {
		n.drop(DropIfDown)
		return false
	}
	if n.killed || n.paused {
		// A killed or frozen process cannot send; attempts by its still-
		// scheduled tasks are discarded.
		n.drop(DropProc)
		return false
	}
	v := n.evalRules(p, CaptureTx)
	if v.drop {
		n.drop(DropRule)
		return false
	}
	x := &transmission{pkt: p, extraDelay: v.delay}
	if p.Dst.IsUnicast() && p.Dst.Node != n.id {
		hop, ok := nw.NextHop(n.id, p.Dst.Node)
		if !ok {
			n.drop(DropNoRoute)
			return false
		}
		x.nextHop = hop
	}
	if n.queued >= n.params.QueueLen {
		n.drop(DropQueue)
		return false
	}
	n.queued++
	n.egress.Push(x)
	if v.dup && n.queued < n.params.QueueLen {
		// Duplicate rule: queue a second copy of the same transmission.
		// The copy bypasses rule evaluation so a duplication probability
		// of 1 cannot cascade.
		nw.stats.RuleDuplicates++
		n.m.dupRule.Inc()
		n.queued++
		n.egress.Push(&transmission{pkt: p, nextHop: x.nextHop, extraDelay: v.delay})
	}
	n.m.queueDepth.Set(int64(n.queued))
	return true
}

// pump serializes transmissions at the node's radio rate. One daemon task
// per node.
func (n *Node) pump() {
	for {
		x, ok := n.egress.Pop()
		if !ok {
			return
		}
		n.queued--
		n.m.queueDepth.Set(int64(n.queued))
		// Serialization: the radio occupies the medium for size*8/rate.
		// Rule-injected delay does NOT occupy the medium; it is applied
		// per propagation below, like a real qdisc netem delay.
		txTime := time.Duration(float64(x.pkt.WireSize()*8) / float64(n.params.RateBps) * float64(time.Second))
		if n.stress > 0 {
			txTime = time.Duration(float64(txTime) * (1 + n.stress))
		}
		if n.net.Contention {
			// CSMA-style deferral: wait while any neighbor occupies the
			// channel, with a small random backoff against lockstep.
			for {
				busy := n.net.busyUntil[n.id]
				now := n.net.s.Now()
				if !busy.After(now) {
					break
				}
				n.net.s.Sleep(busy.Sub(now) + time.Duration(n.rng.Int63n(int64(50*time.Microsecond))))
			}
			// Reserve the channel at the sender and all its neighbors.
			until := n.net.s.Now().Add(txTime)
			if until.After(n.net.busyUntil[n.id]) {
				n.net.busyUntil[n.id] = until
			}
			for _, nb := range n.net.neighbors(n.id) {
				if until.After(n.net.busyUntil[nb]) {
					n.net.busyUntil[nb] = until
				}
			}
		}
		n.net.s.Sleep(txTime)
		if !n.up || n.txDown || n.killed {
			n.drop(DropIfDown)
			continue
		}
		n.transmit(x)
	}
}

// transmit propagates one radio transmission to its neighbor(s).
func (n *Node) transmit(x *transmission) {
	nw := n.net
	nw.stats.Transmissions++
	n.m.transmit.Inc()
	n.capture(x.pkt, CaptureTx)
	if x.pkt.Dst.IsUnicast() {
		if x.pkt.Dst.Node == n.id {
			// Loopback delivery.
			n.receive(x.pkt.clone())
			return
		}
		n.propagate(x.pkt, x.nextHop, x.extraDelay)
		return
	}
	// Flood: one transmission reaches every neighbor, each with an
	// independent loss draw.
	for _, nb := range nw.neighbors(n.id) {
		n.propagate(x.pkt, nb, x.extraDelay)
	}
}

// propagate models the link from n to neighbor nb: loss, delay, jitter,
// plus any rule-injected extra delay.
func (n *Node) propagate(p *Packet, nb NodeID, extra time.Duration) {
	nw := n.net
	lp := nw.links[n.id][nb]
	if lp == nil {
		n.drop(DropNoRoute)
		return
	}
	if lp.Burst != nil {
		b := lp.Burst
		if lp.burstBad {
			if n.rng.Float64() < b.PBadToGood {
				lp.burstBad = false
			}
		} else {
			if n.rng.Float64() < b.PGoodToBad {
				lp.burstBad = true
			}
		}
		loss := b.LossGood
		if lp.burstBad {
			loss = b.LossBad
		}
		if loss > 0 && n.rng.Float64() < loss {
			n.drop(DropLoss)
			return
		}
	} else if lp.Loss > 0 && n.rng.Float64() < lp.Loss {
		n.drop(DropLoss)
		return
	}
	delay := lp.Delay + extra
	if lp.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(lp.Jitter)))
	}
	target := nw.nodes[nb]
	q := p.clone()
	nw.s.ScheduleFunc(delay, target.rxName, func() {
		target.receive(q)
	})
}

// receive admits an arriving packet: capture happens at the NIC, then the
// packet is either buffered (paused process) or processed.
func (n *Node) receive(p *Packet) {
	if !n.up || n.rxDown || n.killed {
		n.drop(DropIfDown)
		return
	}
	p.Path = append(p.Path, n.id)
	n.capture(p, CaptureRx)
	if n.paused {
		if len(n.pausedQ) >= n.params.QueueLen {
			n.drop(DropProc)
			return
		}
		n.pausedQ = append(n.pausedQ, p)
		return
	}
	n.process(p)
}

// process runs rx rules, duplicate suppression, local delivery and
// forwarding/reflooding on an admitted packet. Packets buffered during a
// process pause resume here when the node is unpaused.
func (n *Node) process(p *Packet) {
	nw := n.net
	v := n.evalRules(p, CaptureRx)
	if v.drop {
		n.drop(DropRule)
		return
	}
	if v.delay > 0 {
		nw.s.Sleep(v.delay)
	}

	if p.Dst.IsUnicast() {
		if p.Dst.Node == n.id {
			n.deliver(p)
			if v.dup {
				nw.stats.RuleDuplicates++
				n.m.dupRule.Inc()
				n.deliver(p.clone())
			}
			return
		}
		// Relay.
		n.enqueue(p)
		if v.dup {
			nw.stats.RuleDuplicates++
			n.m.dupRule.Inc()
			n.enqueue(p.clone())
		}
		return
	}

	// Flood handling with duplicate suppression. An rx duplicate of a
	// flood packet delivers twice but refloods once: the copy would be
	// suppressed by every receiver's seen map anyway.
	if n.seen[p.ID] {
		nw.stats.Duplicates++
		n.m.dupFlood.Inc()
		return
	}
	n.seen[p.ID] = true
	if p.Dst.Broadcast || nw.InGroup(p.Dst.Group, n.id) {
		n.deliver(p)
		if v.dup {
			nw.stats.RuleDuplicates++
			n.m.dupRule.Inc()
			n.deliver(p.clone())
		}
	}
	p.TTL--
	if p.TTL <= 0 {
		n.drop(DropTTL)
		return
	}
	n.enqueue(p)
}

func (n *Node) deliver(p *Packet) {
	n.net.stats.Delivered++
	n.m.delivered.Inc()
	if n.handler != nil {
		n.handler(p)
	}
}

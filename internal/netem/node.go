package netem

import (
	"math/rand"
	"time"

	"excovery/internal/vclock"
)

// Handler receives packets addressed to a node. It runs inline on the
// delivery path, so it must not block on scheduler primitives (Sleep,
// Cond.Wait, Queue.Pop) — use ScheduleFunc or a task for deferred work —
// and it must not retain p or p.Path beyond the call: the packet returns
// to the shard's pool when the handler returns. Payload may be retained;
// payload buffers are never pooled.
type Handler func(p *Packet)

// Node is one emulated network node.
type Node struct {
	id     NodeID
	net    *Network
	sh     *shardState
	params NodeParams
	clock  vclock.Clock
	rng    *rand.Rand

	handler Handler

	// ring/head form the egress FIFO of queued radio transmissions; cur
	// and curTx hold the transmission currently being serialized. pumping
	// is true from the moment a transmission is queued on an idle radio
	// until the ring drains — the event-driven replacement of the old
	// per-node pump daemon task.
	ring    []transmission
	head    int
	cur     transmission
	curTx   time.Duration
	pumping bool
	// busyUntil is the CSMA medium reservation on this node (written by
	// the node itself and its same-shard neighbors).
	busyUntil time.Time

	up      bool
	rxDown  bool
	txDown  bool
	killed  bool      // process killed: node mute and out of routing
	paused  bool      // process paused: rx buffers, nothing processed
	pausedQ []*Packet // packets buffered while paused (kernel socket buffer)
	stress  float64   // CPU stress factor; scales serialization time
	tag     uint16
	tagging bool

	capturing bool
	captures  []Capture

	rules []*Rule
	seen  map[uint64]bool // flood duplicate suppression
	// member is the node's multicast-membership snapshot, maintained by
	// Join/Leave so the flood delivery check is one lookup on node-local
	// state.
	member map[string]bool
	// edges is the node's outgoing-link snapshot (sorted by target id),
	// rebuilt by Network.ensureEdges on topology mutation.
	edges []edge

	// m holds the node's pre-resolved instruments (metrics.go); the zero
	// value keeps the data path uninstrumented and allocation-free.
	m nodeMetrics
}

// transmission is one queued radio transmission. The transmission owns its
// packet: duplication rules enqueue an independent clone, never a shared
// pointer, so recycling one copy cannot alias the other.
type transmission struct {
	pkt *Packet
	// nextHop is the unicast relay target; zero for flood transmissions.
	nextHop NodeID
	// extraDelay accumulates rule-injected delay to apply before
	// propagation.
	extraDelay time.Duration
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Net returns the network the node belongs to.
func (n *Node) Net() *Network { return n.net }

// Clock returns the node's local clock.
func (n *Node) Clock() vclock.Clock { return n.clock }

// SetClock replaces the node's local clock (used by experiments that model
// clock deviation).
func (n *Node) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Perfect{S: n.sh.s}
	}
	n.clock = c
}

// SetHandler installs the packet receive handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// SetTagging enables the packet tagger of §VI-A: each transmitted packet
// gets a 16-bit identifier, incremented per packet, wrapping at 65535.
func (n *Node) SetTagging(on bool) { n.tagging = on }

// SetCapture enables or disables packet capture on this node.
func (n *Node) SetCapture(on bool) { n.capturing = on }

// Captures returns the packets captured so far.
func (n *Node) Captures() []Capture { return n.captures }

// ClearCaptures drops captured packets (between runs).
func (n *Node) ClearCaptures() { n.captures = nil }

// queueLen returns the egress ring occupancy.
func (n *Node) queueLen() int { return len(n.ring) - n.head }

func (n *Node) pushRing(x transmission) {
	n.ring = append(n.ring, x)
}

func (n *Node) popRing() transmission {
	x := n.ring[n.head]
	n.ring[n.head] = transmission{}
	n.head++
	if n.head == len(n.ring) {
		n.ring = n.ring[:0]
		n.head = 0
	}
	return x
}

// drainRing discards all queued transmissions, recycling their packets.
func (n *Node) drainRing() {
	for n.queueLen() > 0 {
		x := n.popRing()
		n.sh.freePacket(x.pkt)
	}
	n.m.queueDepth.Set(0)
}

// drainPausedQ discards the paused-process receive buffer.
func (n *Node) drainPausedQ() {
	for _, p := range n.pausedQ {
		n.sh.freePacket(p)
	}
	n.pausedQ = nil
}

// ResetRunState clears per-run transient state: flood duplicate suppression
// and queued packets are discarded, reproducing the preparation-phase
// requirement that "network packets generated in previous runs must be
// dropped on all participants" (§IV-C1).
func (n *Node) ResetRunState() {
	n.seen = make(map[uint64]bool)
	n.drainRing()
	n.drainPausedQ()
	n.paused = false
	n.stress = 0
	n.SetKilled(false)
}

// InterfaceUp reports whether the interface is administratively up.
func (n *Node) InterfaceUp() bool { return n.up }

// SetInterface activates or deactivates the node's network interface
// (§IV-A2). A down interface neither sends, receives nor forwards, and the
// node disappears from routing until reactivated.
func (n *Node) SetInterface(up bool) {
	if n.up == up {
		return
	}
	n.net.frozenTopo()
	n.up = up
	n.net.routesDirty = true
}

// SetInterfaceDir blocks only one direction, implementing the directional
// interface fault of §IV-D1 without removing the node from routing.
func (n *Node) SetInterfaceDir(rxBlocked, txBlocked bool) {
	n.rxDown = rxBlocked
	n.txDown = txBlocked
}

// operational reports whether the node participates in the network: its
// interface is up and its process has not been killed.
func (n *Node) operational() bool { return n.up && !n.killed }

// Killed reports whether the node's process is killed.
func (n *Node) Killed() bool { return n.killed }

// SetKilled kills or restarts the node's process (pumba-style container
// kill). A killed node neither sends, receives nor forwards; its queued
// transmissions and buffered packets are lost and it disappears from
// routing until restarted.
func (n *Node) SetKilled(on bool) {
	if n.killed == on {
		return
	}
	n.net.frozenTopo()
	n.killed = on
	if on {
		n.drainRing()
		n.drainPausedQ()
	}
	n.net.routesDirty = true
}

// Paused reports whether the node's process is paused.
func (n *Node) Paused() bool { return n.paused }

// SetPaused freezes or resumes the node's process (pumba-style SIGSTOP).
// While paused the NIC still receives — packets are captured and buffered
// up to the queue limit, like a kernel socket buffer under a stopped
// process — but nothing is processed or sent. Resuming drains the buffer
// in arrival order.
func (n *Node) SetPaused(on bool) {
	if n.paused == on {
		return
	}
	n.paused = on
	if on || len(n.pausedQ) == 0 {
		return
	}
	q := n.pausedQ
	n.pausedQ = nil
	for _, p := range q {
		p.rcv = n
		n.sh.s.ScheduleEvent(0, processEvent, p)
	}
}

// Stress returns the node's CPU stress factor.
func (n *Node) Stress() float64 { return n.stress }

// SetStress sets a CPU stress factor f ≥ 0 (pumba-style stress-ng): packet
// serialization takes (1+f)× as long, modelling a loaded host competing
// with the network stack. Zero removes the stress.
func (n *Node) SetStress(f float64) {
	if f < 0 {
		f = 0
	}
	n.stress = f
}

func (n *Node) capture(p *Packet, dir CaptureDir) {
	if !n.capturing {
		return
	}
	c := Capture{
		Time: n.clock.Now(),
		Dir:  dir,
		Node: n.id,
		Pkt:  *p,
	}
	// The live packet is pooled; the capture needs its own Path copy.
	c.Pkt.Path = append([]NodeID(nil), p.Path...)
	c.Pkt.rcv = nil
	n.captures = append(n.captures, c)
}

// Send originates a packet from this node. For unicast destinations it is
// routed hop by hop; multicast and broadcast flood the mesh. It returns the
// assigned packet ID; ok is false if the packet was dropped locally (down
// interface, full queue, tx rule, or no route).
func (n *Node) Send(dst Dest, proto string, payload []byte) (id uint64, ok bool) {
	sh := n.sh
	sh.stats.Sent++
	n.m.sent.Inc()
	sh.pktSeq++
	p := sh.newPacket()
	p.ID = sh.pktSeq*uint64(len(n.net.shards)) + uint64(sh.idx)
	p.Src = n.id
	p.Dst = dst
	p.Proto = proto
	p.Payload = payload
	p.TTL = n.net.DefaultTTL
	p.Path = append(p.Path, n.id)
	p.SentAt = sh.s.Now()
	if n.tagging {
		n.tag++
		p.Tag = n.tag
	}
	// Originating node has seen its own flood packet. Unicast IDs never
	// consult the map, so the steady-state unicast path stays free of map
	// growth.
	if !dst.IsUnicast() {
		n.seen[p.ID] = true
	}
	id = p.ID
	return id, n.enqueue(p)
}

// enqueue pushes a packet into the egress ring, applying tx admission
// (interface state, rules, tail drop). It is used for both originated and
// forwarded packets and takes ownership of p: on admission the ring owns
// it, on any refusal it is recycled.
func (n *Node) enqueue(p *Packet) bool {
	nw := n.net
	sh := n.sh
	if !n.up || n.txDown {
		n.drop(DropIfDown)
		sh.freePacket(p)
		return false
	}
	if n.killed || n.paused {
		// A killed or frozen process cannot send; attempts by its still-
		// scheduled tasks are discarded.
		n.drop(DropProc)
		sh.freePacket(p)
		return false
	}
	v := n.evalRules(p, CaptureTx)
	if v.drop {
		n.drop(DropRule)
		sh.freePacket(p)
		return false
	}
	x := transmission{pkt: p, extraDelay: v.delay}
	if p.Dst.IsUnicast() && p.Dst.Node != n.id {
		hop, ok := nw.NextHop(n.id, p.Dst.Node)
		if !ok {
			n.drop(DropNoRoute)
			sh.freePacket(p)
			return false
		}
		x.nextHop = hop
	}
	if n.queueLen() >= n.params.QueueLen {
		n.drop(DropQueue)
		sh.freePacket(p)
		return false
	}
	n.pushRing(x)
	if v.dup && n.queueLen() < n.params.QueueLen {
		// Duplicate rule: queue a second copy of the transmission, as an
		// independent clone (pool ownership). The copy bypasses rule
		// evaluation so a duplication probability of 1 cannot cascade.
		sh.stats.RuleDuplicates++
		n.m.dupRule.Inc()
		n.pushRing(transmission{pkt: p.cloneInto(sh.newPacket()), nextHop: x.nextHop, extraDelay: v.delay})
	}
	n.m.queueDepth.Set(int64(n.queueLen()))
	if !n.pumping {
		// Idle radio: start the pump at the current instant, in the same
		// runnable-FIFO position the old pump daemon's wakeup took.
		n.pumping = true
		sh.s.PostEvent(pumpNextEvent, n)
	}
	return true
}

// The pump serializes transmissions at the node's radio rate. It is a
// per-node event chain rather than a daemon task: pumpNext pops the next
// transmission and either defers on a busy medium (pumpRetryEvent) or
// reserves the channel and schedules the end of serialization
// (pumpTxDoneEvent), which transmits and continues with the next queued
// transmission.

func pumpNextEvent(now time.Time, arg any) {
	arg.(*Node).pumpNext(now)
}

func pumpRetryEvent(now time.Time, arg any) {
	arg.(*Node).contendOrTransmit(now)
}

func pumpTxDoneEvent(now time.Time, arg any) {
	n := arg.(*Node)
	x := n.cur
	n.cur = transmission{}
	if !n.up || n.txDown || n.killed {
		n.drop(DropIfDown)
		n.sh.freePacket(x.pkt)
	} else {
		n.transmit(x, now)
	}
	if n.queueLen() > 0 {
		n.pumpNext(now)
		return
	}
	n.pumping = false
}

func (n *Node) pumpNext(now time.Time) {
	if n.queueLen() == 0 {
		// The ring was drained (reset, kill) between the pump activation
		// and this event.
		n.pumping = false
		return
	}
	if n.net.edgesDirty {
		n.net.ensureEdges()
	}
	x := n.popRing()
	n.m.queueDepth.Set(int64(n.queueLen()))
	// Serialization: the radio occupies the medium for size*8/rate.
	// Rule-injected delay does NOT occupy the medium; it is applied
	// per propagation below, like a real qdisc netem delay.
	txTime := time.Duration(float64(x.pkt.WireSize()*8) / float64(n.params.RateBps) * float64(time.Second))
	if n.stress > 0 {
		txTime = time.Duration(float64(txTime) * (1 + n.stress))
	}
	n.cur = x
	n.curTx = txTime
	n.contendOrTransmit(now)
}

func (n *Node) contendOrTransmit(now time.Time) {
	if n.net.Contention {
		// CSMA-style deferral: wait while any neighbor occupies the
		// channel, with a small random backoff against lockstep.
		if n.busyUntil.After(now) {
			wait := n.busyUntil.Sub(now) + time.Duration(n.rng.Int63n(int64(50*time.Microsecond)))
			n.sh.s.ScheduleEvent(wait, pumpRetryEvent, n)
			return
		}
		// Reserve the channel at the sender and all its (same-shard)
		// neighbors.
		until := now.Add(n.curTx)
		if until.After(n.busyUntil) {
			n.busyUntil = until
		}
		for _, e := range n.edges {
			if e.n.sh == n.sh && until.After(e.n.busyUntil) {
				e.n.busyUntil = until
			}
		}
	}
	n.sh.s.ScheduleEvent(n.curTx, pumpTxDoneEvent, n)
}

// transmit propagates one radio transmission to its neighbor(s) and
// recycles the transmission's packet.
func (n *Node) transmit(x transmission, now time.Time) {
	sh := n.sh
	sh.stats.Transmissions++
	n.m.transmit.Inc()
	n.capture(x.pkt, CaptureTx)
	if x.pkt.Dst.IsUnicast() {
		if x.pkt.Dst.Node == n.id {
			// Loopback delivery.
			q := x.pkt.cloneInto(sh.newPacket())
			sh.freePacket(x.pkt)
			n.receive(q, now)
			return
		}
		n.propagate(x.pkt, x.nextHop, x.extraDelay, now)
		sh.freePacket(x.pkt)
		return
	}
	// Flood: one transmission reaches every neighbor, each with an
	// independent loss draw. The precomputed edge snapshot replaces the
	// per-transmission neighbor lookup.
	for _, e := range n.edges {
		n.propagateLink(x.pkt, e.n, e.lp, x.extraDelay, now)
	}
	sh.freePacket(x.pkt)
}

// propagate models the unicast hop from n to neighbor nb.
func (n *Node) propagate(p *Packet, nb NodeID, extra time.Duration, now time.Time) {
	lp := n.net.links[n.id][nb]
	if lp == nil {
		n.drop(DropNoRoute)
		return
	}
	n.propagateLink(p, n.net.nodes[nb], lp, extra, now)
}

// propagateLink models the link from n to target: loss, delay, jitter,
// plus any rule-injected extra delay. The delivery is an independently
// owned clone of p, scheduled as an inline event on the target's shard.
func (n *Node) propagateLink(p *Packet, target *Node, lp *LinkParams, extra time.Duration, now time.Time) {
	if lp.Burst != nil {
		b := lp.Burst
		if lp.burstBad {
			if n.rng.Float64() < b.PBadToGood {
				lp.burstBad = false
			}
		} else {
			if n.rng.Float64() < b.PGoodToBad {
				lp.burstBad = true
			}
		}
		loss := b.LossGood
		if lp.burstBad {
			loss = b.LossBad
		}
		if loss > 0 && n.rng.Float64() < loss {
			n.drop(DropLoss)
			return
		}
	} else if lp.Loss > 0 && n.rng.Float64() < lp.Loss {
		n.drop(DropLoss)
		return
	}
	delay := lp.Delay + extra
	if lp.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(lp.Jitter)))
	}
	q := p.cloneInto(n.sh.newPacket())
	q.rcv = target
	if target.sh == n.sh {
		n.sh.s.ScheduleEvent(delay, receiveEvent, q)
	} else {
		n.net.g.Post(target.sh.idx, n.sh.idx, now.Add(delay), receiveEvent, q)
	}
}

// receiveEvent is the arrival of one packet at its target node; the target
// rides in the packet's in-flight rcv field so the event needs no closure.
func receiveEvent(now time.Time, arg any) {
	q := arg.(*Packet)
	t := q.rcv
	q.rcv = nil
	t.receive(q, now)
}

// processEvent re-enters process for a packet buffered during a process
// pause.
func processEvent(now time.Time, arg any) {
	p := arg.(*Packet)
	t := p.rcv
	p.rcv = nil
	t.process(p, now)
}

// processResumeEvent continues process after a rule-injected rx delay.
func processResumeEvent(now time.Time, arg any) {
	p := arg.(*Packet)
	t := p.rcv
	dup := p.rxDup
	p.rcv, p.rxDup = nil, false
	t.processAfterDelay(p, dup, now)
}

// receive admits an arriving packet: capture happens at the NIC, then the
// packet is either buffered (paused process) or processed. receive owns p.
func (n *Node) receive(p *Packet, now time.Time) {
	if !n.up || n.rxDown || n.killed {
		n.drop(DropIfDown)
		n.sh.freePacket(p)
		return
	}
	p.Path = append(p.Path, n.id)
	n.capture(p, CaptureRx)
	if n.paused {
		if len(n.pausedQ) >= n.params.QueueLen {
			n.drop(DropProc)
			n.sh.freePacket(p)
			return
		}
		n.pausedQ = append(n.pausedQ, p)
		return
	}
	n.process(p, now)
}

// process runs rx rules on an admitted packet; a rule-injected delay
// parks the packet on a continuation event instead of blocking (the old
// task-based path slept here). Packets buffered during a process pause
// resume here when the node is unpaused.
func (n *Node) process(p *Packet, now time.Time) {
	v := n.evalRules(p, CaptureRx)
	if v.drop {
		n.drop(DropRule)
		n.sh.freePacket(p)
		return
	}
	if v.delay > 0 {
		p.rcv = n
		p.rxDup = v.dup
		n.sh.s.ScheduleEvent(v.delay, processResumeEvent, p)
		return
	}
	n.processAfterDelay(p, v.dup, now)
}

// processAfterDelay performs duplicate suppression, local delivery and
// forwarding/reflooding.
func (n *Node) processAfterDelay(p *Packet, dup bool, now time.Time) {
	sh := n.sh
	if p.Dst.IsUnicast() {
		if p.Dst.Node == n.id {
			n.deliver(p)
			if dup {
				sh.stats.RuleDuplicates++
				n.m.dupRule.Inc()
				c := p.cloneInto(sh.newPacket())
				n.deliver(c)
				sh.freePacket(c)
			}
			sh.freePacket(p)
			return
		}
		// Relay. The duplicate clone is taken before enqueue consumes p.
		if dup {
			c := p.cloneInto(sh.newPacket())
			n.enqueue(p)
			sh.stats.RuleDuplicates++
			n.m.dupRule.Inc()
			n.enqueue(c)
			return
		}
		n.enqueue(p)
		return
	}

	// Flood handling with duplicate suppression. An rx duplicate of a
	// flood packet delivers twice but refloods once: the copy would be
	// suppressed by every receiver's seen map anyway.
	if n.seen[p.ID] {
		sh.stats.Duplicates++
		n.m.dupFlood.Inc()
		sh.freePacket(p)
		return
	}
	n.seen[p.ID] = true
	if p.Dst.Broadcast || n.member[p.Dst.Group] {
		n.deliver(p)
		if dup {
			sh.stats.RuleDuplicates++
			n.m.dupRule.Inc()
			c := p.cloneInto(sh.newPacket())
			n.deliver(c)
			sh.freePacket(c)
		}
	}
	p.TTL--
	if p.TTL <= 0 {
		n.drop(DropTTL)
		n.sh.freePacket(p)
		return
	}
	n.enqueue(p)
}

// deliver hands p to the node handler; the caller retains ownership (the
// handler must not keep the packet, see Handler).
func (n *Node) deliver(p *Packet) {
	n.sh.stats.Delivered++
	n.m.delivered.Inc()
	if n.handler != nil {
		n.handler(p)
	}
}

package netem

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"excovery/internal/sched"
)

// buildShardedMesh constructs a two-shard mesh: 8 nodes per shard in a
// chorded ring, two cross-shard links with delay ≥ the lookahead, and a
// multicast group spanning both shards. Node "s<k>n<i>" lives on shard k.
func buildShardedMesh(seed int64) (*sched.Group, *Network) {
	const lookahead = 5 * time.Millisecond
	members := []*sched.Scheduler{sched.NewVirtual(), sched.NewVirtual()}
	g := sched.NewGroup(lookahead, members...)
	nw := NewSharded(g, seed, func(id NodeID) int { return int(id[1] - '0') })
	for k := 0; k < 2; k++ {
		for i := 0; i < 8; i++ {
			n := nw.AddNode(NodeID(fmt.Sprintf("s%dn%d", k, i)), NodeParams{})
			n.SetCapture(true)
			n.SetTagging(true)
		}
		for i := 0; i < 8; i++ {
			a := NodeID(fmt.Sprintf("s%dn%d", k, i))
			b := NodeID(fmt.Sprintf("s%dn%d", k, (i+1)%8))
			nw.AddLink(a, b, LinkParams{Delay: time.Millisecond, Jitter: 300 * time.Microsecond, Loss: 0.02})
		}
		nw.AddLink(NodeID(fmt.Sprintf("s%dn0", k)), NodeID(fmt.Sprintf("s%dn4", k)),
			LinkParams{Delay: time.Millisecond, Loss: 0.01})
	}
	nw.AddLink("s0n0", "s1n0", LinkParams{Delay: lookahead})
	nw.AddLink("s0n4", "s1n2", LinkParams{Delay: lookahead + time.Millisecond, Jitter: time.Millisecond, Loss: 0.05})
	for _, id := range []NodeID{"s0n1", "s0n5", "s1n3", "s1n7"} {
		nw.Join("svc", id)
	}
	return g, nw
}

// shardedDigest runs a mixed unicast/multicast workload on the sharded
// mesh at the given GOMAXPROCS and renders every capture on every node.
func shardedDigest(t *testing.T, procs int, seed int64) string {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	g, nw := buildShardedMesh(seed)
	members := g.Members()
	// Staggered sends, scheduled on each node's owning shard: multicast
	// floods that cross the cut, unicast same-shard and cross-shard.
	for k := 0; k < 2; k++ {
		m := members[k]
		for i := 0; i < 8; i++ {
			src := nw.Node(NodeID(fmt.Sprintf("s%dn%d", k, i)))
			at := time.Duration(3*i+k) * time.Millisecond
			m.ScheduleFunc(at, "mcast", func() {
				src.Send(Multicast("svc"), "sd", []byte(fmt.Sprintf("q-%s", src.ID())))
			})
			dst := NodeID(fmt.Sprintf("s%dn%d", 1-k, (i+5)%8))
			m.ScheduleFunc(at+20*time.Millisecond, "ucast", func() {
				src.Send(Unicast(dst), "traffic", []byte("x"))
			})
		}
	}
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	var sb strings.Builder
	for _, id := range nw.Nodes() {
		n := nw.Node(id)
		fmt.Fprintf(&sb, "== %s (%d captures)\n", id, len(n.Captures()))
		for _, c := range n.Captures() {
			fmt.Fprintf(&sb, "%s %s %s %s\n", c.Time.Format(time.RFC3339Nano), c.Dir, c.Node, c.Pkt.String())
		}
	}
	fmt.Fprintf(&sb, "stats: %+v\n", nw.Stats())
	return sb.String()
}

// TestShardedDeterministicAcrossGOMAXPROCS is the tentpole determinism
// gate at the emulator level: the same seed and sharding must produce
// byte-identical captures and statistics whether the shards interleave on
// one core or run truly parallel on eight.
func TestShardedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	want := shardedDigest(t, 1, 42)
	if !strings.Contains(want, "captures") || len(want) < 1000 {
		t.Fatalf("implausibly small digest:\n%s", want)
	}
	// The workload must actually cross the shard cut.
	if !strings.Contains(want, "path [s0n0 s1n0") && !strings.Contains(want, "s1n0 s0n0") {
		t.Fatalf("no cross-shard traffic in digest")
	}
	for i := 0; i < 3; i++ {
		if got := shardedDigest(t, 8, 42); got != want {
			t.Fatalf("GOMAXPROCS=8 run %d diverged from GOMAXPROCS=1", i)
		}
	}
	if same := shardedDigest(t, 8, 43); same == want {
		t.Fatal("different seed produced identical digest; workload is not seed-sensitive")
	}
}

// TestShardedStatsMergeAndReset covers the shard-local stats satellite:
// counters accumulate per shard without synchronization and merge on read;
// ResetStats zeroes every shard.
func TestShardedStatsMergeAndReset(t *testing.T) {
	g, nw := buildShardedMesh(7)
	members := g.Members()
	for k := 0; k < 2; k++ {
		src := nw.Node(NodeID(fmt.Sprintf("s%dn1", k)))
		members[k].ScheduleFunc(time.Duration(k)*time.Millisecond, "send", func() {
			src.Send(Multicast("svc"), "sd", []byte("hello"))
		})
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Sent != 2 {
		t.Fatalf("merged Sent = %d, want 2", st.Sent)
	}
	if st.Transmissions == 0 || st.Delivered == 0 {
		t.Fatalf("merged stats missing activity: %+v", st)
	}
	nw.ResetStats()
	if got := nw.Stats(); got != (Stats{}) {
		t.Fatalf("stats after reset = %+v", got)
	}
}

func TestShardedCrossShardLinkBelowLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-shard link below lookahead")
		}
	}()
	members := []*sched.Scheduler{sched.NewVirtual(), sched.NewVirtual()}
	g := sched.NewGroup(5*time.Millisecond, members...)
	nw := NewSharded(g, 1, func(id NodeID) int { return int(id[1] - '0') })
	nw.AddNode("s0n0", NodeParams{})
	nw.AddNode("s1n0", NodeParams{})
	nw.AddLink("s0n0", "s1n0", LinkParams{Delay: time.Millisecond})
}

func TestShardedFrozenTopologyPanics(t *testing.T) {
	g, nw := buildShardedMesh(1)
	members := g.Members()
	var recovered any
	members[0].ScheduleFunc(time.Millisecond, "mutate", func() {
		defer func() { recovered = recover() }()
		nw.RemoveLink("s0n0", "s0n1")
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if recovered == nil {
		t.Fatal("mid-run topology mutation on a sharded network must panic")
	}
}

// TestDupCascadePooledAliasing is the pooled-packet aliasing regression
// around the DupProb re-enqueue: a relay with certain duplication queues an
// independent clone; if original and copy shared a recycled buffer, paths
// or payloads would cross between packets.
func TestDupCascadePooledAliasing(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 3)
	BuildChain(nw, "n", 3, NodeParams{}, LinkParams{Delay: time.Millisecond})
	relay := nw.Node("n1")
	relay.InstallRule(Rule{Dir: DirTx, DupProb: 1})
	const N = 40
	type rx struct {
		payload string
		path    string
	}
	var got []rx
	nw.Node("n2").SetHandler(func(p *Packet) {
		got = append(got, rx{payload: string(p.Payload), path: fmt.Sprint(p.Path)})
	})
	s.Go("send", func() {
		for i := 0; i < N; i++ {
			nw.Node("n0").Send(Unicast("n2"), "t", []byte(fmt.Sprintf("payload-%02d", i)))
			s.Sleep(2 * time.Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Every packet is relayed twice by n1 (original + rule duplicate); the
	// duplicate bypasses rule evaluation, so exactly 2N deliveries.
	if len(got) != 2*N {
		t.Fatalf("deliveries = %d, want %d", len(got), 2*N)
	}
	count := map[string]int{}
	for _, r := range got {
		if r.path != "[n0 n1 n2]" {
			t.Fatalf("corrupted path %s for %q (pool aliasing)", r.path, r.payload)
		}
		count[r.payload]++
	}
	for i := 0; i < N; i++ {
		key := fmt.Sprintf("payload-%02d", i)
		if count[key] != 2 {
			t.Fatalf("payload %q delivered %d times, want 2", key, count[key])
		}
	}
	if st := nw.Stats(); st.RuleDuplicates != N {
		t.Fatalf("RuleDuplicates = %d, want %d", st.RuleDuplicates, N)
	}
}

// TestRemoveLinkInvalidatesSnapshotNextDelivery checks the fan-out
// snapshot invalidation satellite: after RemoveLink the very next delivery
// must take the surviving path.
func TestRemoveLinkInvalidatesSnapshotNextDelivery(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		nw.AddNode(id, NodeParams{})
	}
	// Diamond: a-b-c (short) and a-d-c (alternative).
	nw.AddLink("a", "b", LinkParams{Delay: time.Millisecond})
	nw.AddLink("b", "c", LinkParams{Delay: time.Millisecond})
	nw.AddLink("a", "d", LinkParams{Delay: time.Millisecond})
	nw.AddLink("d", "c", LinkParams{Delay: time.Millisecond})
	var paths []string
	nw.Node("c").SetHandler(func(p *Packet) { paths = append(paths, fmt.Sprint(p.Path)) })
	s.Go("t", func() {
		nw.Node("a").Send(Unicast("c"), "t", nil)
		s.Sleep(20 * time.Millisecond)
		nw.RemoveLink("a", "b")
		// Very next delivery after the cut must route around it.
		nw.Node("a").Send(Unicast("c"), "t", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("deliveries = %d, want 2 (%v)", len(paths), paths)
	}
	if paths[0] != "[a b c]" && paths[0] != "[a d c]" {
		t.Fatalf("first path = %s", paths[0])
	}
	if paths[1] != "[a d c]" {
		t.Fatalf("path after RemoveLink = %s, want [a d c]", paths[1])
	}
}

// TestLeaveInvalidatesMembershipNextFlood checks the membership snapshot:
// after Leave the very next flood must no longer deliver to the node.
func TestLeaveInvalidatesMembershipNextFlood(t *testing.T) {
	s := sched.NewVirtual()
	nw := New(s, 1)
	BuildChain(nw, "n", 3, NodeParams{}, LinkParams{Delay: time.Millisecond})
	nw.Join("svc", "n2")
	recv := 0
	nw.Node("n2").SetHandler(func(p *Packet) { recv++ })
	s.Go("t", func() {
		nw.Node("n0").Send(Multicast("svc"), "sd", nil)
		s.Sleep(20 * time.Millisecond)
		nw.Leave("svc", "n2")
		nw.Node("n0").Send(Multicast("svc"), "sd", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 1 {
		t.Fatalf("deliveries = %d, want 1 (second flood after Leave must not deliver)", recv)
	}
}

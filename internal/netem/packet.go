package netem

import (
	"fmt"
	"time"
)

// NodeID identifies a network node; ExCovery identifies nodes by host name
// (§IV-E), so NodeID is the host name.
type NodeID string

// Dest is a packet destination: a concrete node, a multicast group or the
// broadcast domain.
type Dest struct {
	// Node is set for unicast destinations.
	Node NodeID
	// Group is set for multicast destinations (e.g. the mDNS group).
	Group string
	// Broadcast addresses every node reachable by flooding.
	Broadcast bool
}

// Unicast returns a unicast destination.
func Unicast(n NodeID) Dest { return Dest{Node: n} }

// Multicast returns a multicast destination.
func Multicast(group string) Dest { return Dest{Group: group} }

// Broadcast addresses all nodes.
func Broadcast() Dest { return Dest{Broadcast: true} }

func (d Dest) String() string {
	switch {
	case d.Broadcast:
		return "*"
	case d.Group != "":
		return "mcast:" + d.Group
	default:
		return string(d.Node)
	}
}

// IsUnicast reports whether d addresses a single node.
func (d Dest) IsUnicast() bool { return !d.Broadcast && d.Group == "" }

// Packet is the unit of communication in the emulated network. It carries
// everything §IV-B2 requires of a measured packet: a unique identifier, the
// source and destination addresses and the content; timestamps are recorded
// per capture. The Tag field is the 16-bit identifier written by the packet
// tagger of §VI-A.
type Packet struct {
	// ID is the globally unique packet identifier assigned at send time.
	ID uint64
	// Tag is the 16-bit per-sender sequence tag added by the packet
	// tagger; it wraps around.
	Tag uint16
	// Src is the originating node.
	Src NodeID
	// Dst is the destination.
	Dst Dest
	// Proto is a free-form protocol label ("sd", "traffic", "sync", …)
	// used by manipulation rules to select experiment process packets.
	Proto string
	// Payload is the packet content. It is shared between hops and must
	// be treated as immutable; Modify rules replace it wholesale.
	Payload []byte
	// Size is the wire size in bytes used for serialization-delay
	// computation. If zero, len(Payload) plus a fixed header is assumed.
	Size int
	// TTL limits flooding of multicast/broadcast packets; it decrements
	// per hop.
	TTL int
	// Path records the nodes the packet traversed, in order (packet
	// tracking, §IV-A3).
	Path []NodeID
	// SentAt is the global virtual time the packet left its source.
	SentAt time.Time

	// In-flight routing state, carried while the packet rides a scheduled
	// delivery event so the event needs no closure allocation. Unexported:
	// never serialized, cleared before the packet reaches a handler or a
	// capture.
	rcv   *Node // delivery / continuation target
	rxDup bool  // rx duplication verdict across a rule-delay continuation
}

// WireSize returns the size used for serialization-delay computation.
func (p *Packet) WireSize() int {
	if p.Size > 0 {
		return p.Size
	}
	return len(p.Payload) + 48 // UDP/IP/MAC framing overhead
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt %d tag %d %s->%s proto %s len %d path %v",
		p.ID, p.Tag, p.Src, p.Dst, p.Proto, len(p.Payload), p.Path)
}

// cloneInto copies p into the pooled packet q (reusing q's Path capacity)
// and returns q. The clone is independently owned: recycling one copy can
// never alias the other. Payload is shared — it is immutable between hops
// and never pooled.
func (p *Packet) cloneInto(q *Packet) *Packet {
	path := q.Path
	*q = *p
	q.Path = append(path[:0], p.Path...)
	return q
}

// CaptureDir distinguishes transmit from receive captures.
type CaptureDir int

const (
	// CaptureTx marks a packet leaving the node.
	CaptureTx CaptureDir = iota
	// CaptureRx marks a packet arriving at the node.
	CaptureRx
)

func (d CaptureDir) String() string {
	if d == CaptureTx {
		return "tx"
	}
	return "rx"
}

// Capture is one captured packet occurrence on a node, with the local
// timestamp of that node (§IV-B2).
type Capture struct {
	// Time is the local (possibly skewed) timestamp of the capture.
	Time time.Time
	// Dir is the capture direction.
	Dir CaptureDir
	// Node is the capturing node.
	Node NodeID
	// Pkt is the captured packet as seen at this node.
	Pkt Packet
}

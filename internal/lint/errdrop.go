package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// errdrop reports discarded error returns from durability-critical calls:
// the fsio staged-write helpers, (*os.File).Sync, (*os.File).Close on a
// file the function opened for writing, and the store.Journal append
// family. A dropped error from any of these converts "the data is on
// stable storage" into "the data is probably on stable storage" — the
// exact failure mode the WAL and the staged-write contract exist to rule
// out (DESIGN.md §8).
//
// Discard forms: a bare expression statement, and an assignment whose
// error position is blank (`_ = f.Sync()`, `n, _ := …`). One allowlist is
// built in: a discarded call is exempt when a later statement on the same
// path (the rest of its enclosing block, or of any enclosing block within
// the function) returns a non-nil error — cleanup on an already-failing
// path cannot mask the first cause, and forcing `_ =` noise onto
// `f.Close(); os.Remove(tmp); return err` sequences would teach people to
// ignore the check. Everything else needs an explicit //lint:ignore with
// a reason.

// Errdrop returns the dropped-durability-error analyzer.
func Errdrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "no discarded error returns from durability-critical calls (fsio, Sync, Close-after-write, Journal)",
		Run:  errdropRun,
	}
}

func errdropRun(f *File) []Diagnostic {
	var out []Diagnostic
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		written := f.writtenFiles(fd.Body)
		out = append(out, f.scanDiscards(fd.Body.List, written, false)...)
	}
	return out
}

// writtenFiles collects the local *os.File variables the function opens
// for writing (os.Create, or os.OpenFile with a write flag): Close errors
// matter for these — the kernel may surface a failed delayed write only
// at close time — while a read-side Close is harmless.
func (f *File) writtenFiles(body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := f.qualifiedCall(call)
		if !ok || pkg != "os" {
			return true
		}
		writes := name == "Create"
		if name == "OpenFile" && len(call.Args) == 3 {
			flags := exprText(call.Args[1])
			writes = strings.Contains(flags, "O_WRONLY") || strings.Contains(flags, "O_RDWR") ||
				strings.Contains(flags, "O_APPEND")
		}
		if !writes {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && !isBlank(id) {
			if obj := f.identObj(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// identObj resolves an identifier to its object via Defs (for :=) or Uses
// (for =).
func (f *File) identObj(id *ast.Ident) types.Object {
	if obj := f.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return f.Pkg.Info.Uses[id]
}

// scanDiscards walks a statement list. errPath is true when a later
// statement of an enclosing block returns a non-nil error — discards
// below such a point are cleanup on an already-failing path.
func (f *File) scanDiscards(stmts []ast.Stmt, written map[types.Object]bool, errPath bool) []Diagnostic {
	var out []Diagnostic
	for i, st := range stmts {
		ep := errPath || errReturnIn(stmts[i+1:])
		switch v := st.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if target := f.durabilityTarget(call, written); target != "" && !ep {
					out = append(out, f.errdropDiag(call, target, "discarded"))
				}
			}
		case *ast.DeferStmt:
			// defer f.Close() on a written file drops the error even on the
			// success path; the error-path exemption does not apply.
			if target := f.durabilityTarget(v.Call, written); target != "" {
				out = append(out, f.errdropDiag(v.Call, target, "deferred and discarded"))
			}
		case *ast.AssignStmt:
			if len(v.Rhs) == 1 {
				if call, ok := v.Rhs[0].(*ast.CallExpr); ok && f.blankErrAssign(v, call) {
					if target := f.durabilityTarget(call, written); target != "" && !ep {
						out = append(out, f.errdropDiag(call, target, "assigned to _"))
					}
				}
			}
		}
		// Recurse into nested statements carrying the error-path flag.
		for _, nested := range nestedBlocks(st) {
			out = append(out, f.scanDiscards(nested, written, ep)...)
		}
		// Func literal bodies are scanned as fresh roots (they may close
		// over the written-file variables); only outermost literals here —
		// inner ones recurse through their enclosing literal's scan.
		for _, lit := range outerFuncLits(st) {
			out = append(out, f.scanDiscards(lit.Body.List, written, false)...)
		}
	}
	return out
}

// outerFuncLits returns the outermost func literals inside one statement.
func outerFuncLits(st ast.Stmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(st, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

func (f *File) errdropDiag(call *ast.CallExpr, target, how string) Diagnostic {
	return Diagnostic{
		Pos:   f.pos(call.Pos()),
		Check: "errdrop",
		Message: fmt.Sprintf("error from durability-critical %s %s; "+
			"check it or return it (staged-write contract, DESIGN.md §8)", target, how),
	}
}

// blankErrAssign reports whether the assignment discards the call's error
// result: the LHS slot matching the signature's trailing error is blank.
func (f *File) blankErrAssign(as *ast.AssignStmt, call *ast.CallExpr) bool {
	return len(as.Lhs) > 0 && isBlank(as.Lhs[len(as.Lhs)-1])
}

// durabilityTarget classifies a call as durability-critical and returns
// its description, or "". The callee must return an error for a discard
// to exist.
func (f *File) durabilityTarget(call *ast.CallExpr, written map[types.Object]bool) string {
	if !f.returnsError(call) {
		return ""
	}
	if pkg, name, ok := f.qualifiedCall(call); ok && pkg == "excovery/internal/store/fsio" {
		return "fsio." + name
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := f.typeOf(sel.X)
	switch sel.Sel.Name {
	case "Sync":
		if recv == "os.File" {
			return "(*os.File).Sync"
		}
	case "Close":
		if recv == "os.File" {
			if id, ok := sel.X.(*ast.Ident); ok && written[f.identObj(id)] {
				return "Close of write-opened file"
			}
		}
		if strings.HasSuffix(recv, "store.Journal") {
			return "Journal.Close"
		}
	case "Begin", "End", "Done", "Append":
		if strings.HasSuffix(recv, "store.Journal") {
			return "Journal." + sel.Sel.Name
		}
	}
	return ""
}

// returnsError reports whether the call's (possibly multi-value) result
// ends in an error.
func (f *File) returnsError(call *ast.CallExpr) bool {
	tv, ok := f.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// errReturnIn reports whether the statement list contains, at its top
// level, a return carrying a non-nil error expression (an identifier or
// call, not the literal nil).
func errReturnIn(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		ret, ok := st.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			continue
		}
		last := ret.Results[len(ret.Results)-1]
		if id, ok := last.(*ast.Ident); ok && id.Name != "nil" && strings.Contains(id.Name, "err") {
			return true
		}
		if _, ok := last.(*ast.CallExpr); ok {
			return true
		}
	}
	return false
}

// nestedBlocks returns the statement lists nested directly inside one
// statement (if/else chains, loops, switches, selects, blocks).
func nestedBlocks(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch v := st.(type) {
	case *ast.BlockStmt:
		out = append(out, v.List)
	case *ast.IfStmt:
		out = append(out, v.Body.List)
		if v.Else != nil {
			out = append(out, []ast.Stmt{v.Else})
		}
	case *ast.ForStmt:
		out = append(out, v.Body.List)
	case *ast.RangeStmt:
		out = append(out, v.Body.List)
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{v.Stmt})
	}
	return out
}

package lint

import (
	"fmt"
	"go/ast"
)

// Metricnames keeps the metric namespace coherent across processes: the
// campaign fan-in re-exports every node-host series under a derived name
// (obs.MNodePrefix + name, fleet rollups, dashboards keyed on exact
// family strings), so a metric registered under a typo'd literal splits
// one logical series into two that no query joins. The analyzer therefore
// rejects a string literal as the name (first) argument at instrument
// factory sites — Counter, Gauge and Histogram on a registry, and the
// lowercase counter/gauge/histogram convenience helpers — which must use
// the obs.M* constants of internal/obs/names.go instead. Composed names
// (obs.MNodePrefix+name) and forwarded variables are out of scope: the
// check targets the literal-at-call-site pattern where a typo is
// invisible.
func Metricnames() *Analyzer {
	return &Analyzer{
		Name: "metricnames",
		Doc:  "metric names at instrument factory sites come from the obs.M* registry constants",
		Run:  metricnamesRun,
	}
}

var metricFactories = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"counter": true, "gauge": true, "histogram": true,
}

func metricnamesRun(f *File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !metricFactories[name] || len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind.String() != "STRING" {
			return true
		}
		out = append(out, Diagnostic{
			Pos:   f.pos(lit.Pos()),
			Check: "metricnames",
			Message: fmt.Sprintf("metric name %s passed to %s as a string literal; "+
				"use a registry constant (internal/obs/names.go)", lit.Value, name),
		})
		return true
	})
	return out
}

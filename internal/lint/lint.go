// Package lint is ExCovery's invariant linter: a stdlib-only static
// analysis suite (go/parser, go/ast, go/types, go/importer) that turns the
// framework's repeatability and durability conventions into mechanically
// checked contracts. The paper's core promise — perfectly repeatable runs
// from seeded PRNGs and reference-clock timestamps (§IV-C1, §VI) — and the
// durability contracts of DESIGN.md §8 are exactly the kind of invariant
// that survives code review for months and then breaks silently in an
// unrelated refactor; the analyzers here fail `make check` instead.
//
// Six repo-specific analyzers run over every non-test file of the module:
//
//	walltime      — no time.Now() outside the allowlisted wall-clock
//	                sites; deterministic paths read an injected
//	                vclock.Clock.
//	seededrand    — no global math/rand functions and no wall-clock PRNG
//	                seeds; randomness flows through plumbed seeded
//	                *rand.Rand values.
//	eventnames    — event types at Emit sites and journal record
//	                constructors come from the central registries
//	                (eventlog.Ev*, sd.Ev*, store.Rec*), never string
//	                literals.
//	metricnames   — metric names at Counter/Gauge/Histogram factory
//	                sites come from the obs.M* registry constants
//	                (internal/obs/names.go), never string literals.
//	durablerename — os.Rename inside internal/store is paired with a
//	                directory fsync in the same function (the fsio
//	                staged-write contract).
//	mutexheldio   — no network call or blocking file I/O between Lock()
//	                and Unlock() of a mutex within a function.
//
// A finding is suppressed by the comment
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, reported as "file:line: [check] message".
type Diagnostic struct {
	// Pos locates the finding; Filename is module-root-relative.
	Pos token.Position
	// Check names the analyzer (or "lint" for driver-level findings).
	Check string
	// Message states the violated invariant.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Analyzer is one invariant check, run file by file.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the file's findings (before suppression filtering).
	Run func(f *File) []Diagnostic
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Walltime(),
		Seededrand(),
		Eventnames(),
		Metricnames(),
		Durablerename(),
		Mutexheldio(),
	}
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	line   int
	check  string
	reason string
}

// File is one parsed and type-checked source file.
type File struct {
	// Pkg is the containing package.
	Pkg *Package
	// Ast is the parsed file (with comments).
	Ast *ast.File
	// Name is the module-root-relative path used in diagnostics.
	Name string

	suppressions []suppression
}

// Package is one type-checked package of the module.
type Package struct {
	// Path is the import path, e.g. "excovery/internal/store".
	Path string
	// Files are the package's non-test files, sorted by name.
	Files []*File
	// Types and Info hold the go/types results.
	Types *types.Package
	Info  *types.Info
	mod   *Module
}

// Module is a loaded and fully type-checked source tree.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Root is the absolute module root directory.
	Root string
	// Fset maps positions for every parsed file.
	Fset *token.FileSet
	// Pkgs are the module's packages sorted by import path.
	Pkgs []*Package
}

// Load parses and type-checks every non-test package under root (a module
// root containing go.mod). Directories named testdata, vendor and hidden
// directories are skipped, as are _test.go files: the invariants guard
// production paths, and tests legitimately fake clocks and event names.
func Load(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: modPath, Root: absRoot, Fset: token.NewFileSet()}

	// Pass 1: parse every package directory.
	byPath := map[string]*Package{}
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != absRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(absRoot, path)
		if err != nil {
			return err
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		ipath := modPath
		if dir != "." {
			ipath = modPath + "/" + dir
		}
		pkg := byPath[ipath]
		if pkg == nil {
			pkg = &Package{Path: ipath, mod: mod}
			byPath[ipath] = pkg
		}
		// Read via the absolute path but register the module-relative name:
		// diagnostics stay stable regardless of the caller's working
		// directory.
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		af, err := parser.ParseFile(mod.Fset, filepath.ToSlash(rel), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		f := &File{Pkg: pkg, Ast: af, Name: filepath.ToSlash(rel)}
		f.parseSuppressions(mod.Fset)
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pkg := range byPath {
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })

	// Pass 2: type-check in dependency order, module-internal imports
	// served from the cache, everything else from the standard library
	// importers.
	imp := newStdImporter(mod.Fset)
	checked := map[string]bool{}
	var checkPkg func(p *Package) error
	checkPkg = func(p *Package) error {
		if checked[p.Path] {
			return nil
		}
		checked[p.Path] = true
		for _, dep := range p.internalImports() {
			if d := byPath[dep]; d != nil {
				if err := checkPkg(d); err != nil {
					return err
				}
			}
		}
		return p.typecheck(imp, byPath)
	}
	for _, p := range mod.Pkgs {
		if err := checkPkg(p); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// LoadPackage parses and type-checks the .go files of one directory as a
// single package under an explicit import path. It backs the analyzer
// golden tests: the import path places a testdata package inside (or
// outside) an analyzer's scope, and the files may import the standard
// library only.
func LoadPackage(dir, importPath string) (*Module, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: importPath, Root: absDir, Fset: token.NewFileSet()}
	pkg := &Package{Path: importPath, mod: mod}
	entries, err := os.ReadDir(absDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(mod.Fset, e.Name(), readFileIn(absDir, e.Name()), parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		f := &File{Pkg: pkg, Ast: af, Name: e.Name()}
		f.parseSuppressions(mod.Fset)
		pkg.Files = append(pkg.Files, f)
	}
	sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
	mod.Pkgs = []*Package{pkg}
	if err := pkg.typecheck(newStdImporter(mod.Fset), map[string]*Package{}); err != nil {
		return nil, err
	}
	return mod, nil
}

// readFileIn reads dir/name, returning the source or nil (letting the
// parser report the open error with the right filename).
func readFileIn(dir, name string) any {
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil
	}
	return b
}

// Run executes the analyzers over every file, filters suppressed findings,
// reports malformed or unused-reason suppressions, and returns the
// diagnostics sorted by file, line and check.
func (m *Module) Run(analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, s := range f.suppressions {
				if s.reason == "" {
					out = append(out, Diagnostic{
						Pos:     token.Position{Filename: f.Name, Line: s.line},
						Check:   "lint",
						Message: "suppression without a reason: //lint:ignore <check> <reason>",
					})
				}
			}
			for _, a := range analyzers {
				for _, d := range a.Run(f) {
					if f.suppressed(a.Name, d.Pos.Line) {
						continue
					}
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return out
}

// internalImports returns the package's module-internal dependencies.
func (p *Package) internalImports() []string {
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Ast.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == p.mod.Path || strings.HasPrefix(path, p.mod.Path+"/") {
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// typecheck runs go/types over the package's files.
func (p *Package) typecheck(std types.Importer, byPath map[string]*Package) error {
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		files[i] = f.Ast
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: &modImporter{mod: p.mod, std: std, byPath: byPath},
	}
	tp, err := conf.Check(p.Path, p.mod.Fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
	}
	p.Types, p.Info = tp, info
	return nil
}

// modImporter resolves module-internal imports from the already-checked
// package cache and delegates everything else to the stdlib importer.
type modImporter struct {
	mod    *Module
	std    types.Importer
	byPath map[string]*Package
}

func (im *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.byPath[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: %s not yet type-checked (import cycle?)", path)
		}
		return p.Types, nil
	}
	return im.std.Import(path)
}

// newStdImporter builds the standard-library importer: compiled export
// data when available (fast), with a from-source fallback for toolchains
// that ship no precompiled standard library.
func newStdImporter(fset *token.FileSet) types.Importer {
	return &stdImporter{gc: importer.Default(), src: importer.ForCompiler(fset, "source", nil)}
}

type stdImporter struct {
	gc, src types.Importer
}

func (im *stdImporter) Import(path string) (*types.Package, error) {
	if p, err := im.gc.Import(path); err == nil {
		return p, nil
	}
	return im.src.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parseSuppressions collects the file's //lint:ignore comments.
func (f *File) parseSuppressions(fset *token.FileSet) {
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			s := suppression{line: fset.Position(c.Pos()).Line}
			if len(fields) > 0 {
				s.check = fields[0]
			}
			if len(fields) > 1 {
				s.reason = strings.Join(fields[1:], " ")
			}
			f.suppressions = append(f.suppressions, s)
		}
	}
}

// suppressed reports whether a finding of check at line is covered by a
// suppression on the same line or the line directly above.
func (f *File) suppressed(check string, line int) bool {
	for _, s := range f.suppressions {
		if s.check != check || s.reason == "" {
			continue
		}
		if s.line == line || s.line == line-1 {
			return true
		}
	}
	return false
}

// pos converts a token.Pos into a Diagnostic position with the file's
// module-relative name.
func (f *File) pos(p token.Pos) token.Position {
	pos := f.Pkg.mod.Fset.Position(p)
	pos.Filename = f.Name
	return pos
}

// pkgPathOf resolves an identifier used as a package qualifier to the
// imported package path, or "" when the identifier is not a package name
// (e.g. a local variable shadowing an import).
func (f *File) pkgPathOf(id *ast.Ident) string {
	if obj, ok := f.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// qualifiedCall matches a call of the form pkg.Fn(...) and returns the
// package path and function name.
func (f *File) qualifiedCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path := f.pkgPathOf(id)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// typeOf returns the fully-qualified type string of an expression with any
// leading pointer stripped, or "".
func (f *File) typeOf(e ast.Expr) string {
	tv, ok := f.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	s := tv.Type.String()
	return strings.TrimPrefix(s, "*")
}

// Package lint is ExCovery's invariant linter: a stdlib-only static
// analysis suite (go/parser, go/ast, go/types, go/importer) that turns the
// framework's repeatability and durability conventions into mechanically
// checked contracts. The paper's core promise — perfectly repeatable runs
// from seeded PRNGs and reference-clock timestamps (§IV-C1, §VI) — and the
// durability contracts of DESIGN.md §8 are exactly the kind of invariant
// that survives code review for months and then breaks silently in an
// unrelated refactor; the analyzers here fail `make check` instead.
//
// The driver is a whole-program, fact-based two-pass pipeline (DESIGN.md
// §15). Loading parses every non-test package of the module and
// type-checks dependency-ready packages in parallel; a package that fails
// to parse or type-check is isolated — its facts never poison dependents,
// which are skipped with a driver diagnostic instead of a panic. Analysis
// then runs in two passes: pass 1 walks every file, running the
// file-local checks and collecting per-package facts (registered RPC
// handlers, lock-acquisition regions, call edges, map-iteration sites);
// pass 2 hands the merged module-wide fact set to each analyzer's Finish
// hook for cross-package checking (RPC contract verification, lock-order
// cycle detection, determinism-sink reachability).
//
// Ten repo-specific analyzers run over every non-test file of the module:
//
//	walltime      — no time.Now() outside the allowlisted wall-clock
//	                sites; deterministic paths read an injected
//	                vclock.Clock.
//	seededrand    — no global math/rand functions and no wall-clock PRNG
//	                seeds; randomness flows through plumbed seeded
//	                *rand.Rand values.
//	eventnames    — event types at Emit sites and journal record
//	                constructors come from the central registries
//	                (eventlog.Ev*, sd.Ev*, store.Rec*), never string
//	                literals.
//	metricnames   — metric names at Counter/Gauge/Histogram factory
//	                sites come from the obs.M* registry constants
//	                (internal/obs/names.go), never string literals.
//	durablerename — os.Rename inside internal/store is paired with a
//	                directory fsync in the same function (the fsio
//	                staged-write contract).
//	mutexheldio   — no network call or blocking file I/O between Lock()
//	                and Unlock() of a mutex within a function.
//	rpccontract   — every Client.Call("x.y", …) site module-wide matches
//	                a registered XML-RPC handler's name and positional
//	                arity, net of the optional trailing trace_parent /
//	                fence_epoch markers.
//	lockorder     — the cross-package lock-acquisition graph (keyed on
//	                type.field mutex identity) is cycle-free.
//	maporder      — no range over a map whose body reaches a
//	                determinism-sensitive sink (Emit, RPC fan-out,
//	                journal append, encoder, gauge export).
//	errdrop       — no discarded error returns from durability-critical
//	                calls (fsio helpers, file Sync/Write, Close on
//	                written files, journal appends).
//
// A finding is suppressed by the comment
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported. On
// whole-module runs a suppression that no longer matches any finding is
// reported as stale, so the suppression inventory shrinks with the code
// instead of fossilizing.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, reported as "file:line: [check] message".
type Diagnostic struct {
	// Pos locates the finding; Filename is module-root-relative.
	Pos token.Position
	// Check names the analyzer ("lint" for suppression meta-findings,
	// "driver" for load failures).
	Check string
	// Message states the violated invariant.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Facts is the module-wide fact store of a two-pass run: pass 1 (Collect)
// records per-package observations under (analyzer, key); pass 2 (Finish)
// reads the merged set for cross-package checking. Keys are
// analyzer-chosen; Keys returns them sorted so finishing passes iterate
// deterministically. The store is written and read on one goroutine.
type Facts struct {
	m map[string]map[string]any
}

func newFacts() *Facts { return &Facts{m: map[string]map[string]any{}} }

// Put records a fact for an analyzer under key, replacing any previous
// value.
func (fx *Facts) Put(analyzer, key string, v any) {
	byKey := fx.m[analyzer]
	if byKey == nil {
		byKey = map[string]any{}
		fx.m[analyzer] = byKey
	}
	byKey[key] = v
}

// Get returns the fact an analyzer stored under key.
func (fx *Facts) Get(analyzer, key string) (any, bool) {
	v, ok := fx.m[analyzer][key]
	return v, ok
}

// Keys returns an analyzer's fact keys sorted.
func (fx *Facts) Keys(analyzer string) []string {
	out := make([]string, 0, len(fx.m[analyzer]))
	for k := range fx.m[analyzer] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Analyzer is one invariant check. Run is the file-local pass; Collect and
// Finish form the whole-program pass: Collect gathers facts file by file,
// Finish checks the merged module-wide fact set. Any hook may be nil.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports a file's findings (before suppression filtering).
	Run func(f *File) []Diagnostic
	// Collect records per-file facts into the module-wide store (pass 1).
	Collect func(f *File, fx *Facts)
	// Finish checks the merged facts and reports module-wide findings
	// (pass 2).
	Finish func(m *Module, fx *Facts) []Diagnostic
}

// All returns the full ten-analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Walltime(),
		Seededrand(),
		Eventnames(),
		Metricnames(),
		Durablerename(),
		Mutexheldio(),
		Rpccontract(),
		Lockorder(),
		Maporder(),
		Errdrop(),
	}
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	line   int
	check  string
	reason string
	used   bool
}

// File is one parsed and type-checked source file.
type File struct {
	// Pkg is the containing package.
	Pkg *Package
	// Ast is the parsed file (with comments).
	Ast *ast.File
	// Name is the module-root-relative path used in diagnostics.
	Name string

	suppressions []suppression
}

// Package is one type-checked package of the module.
type Package struct {
	// Path is the import path, e.g. "excovery/internal/store".
	Path string
	// Files are the package's non-test files, sorted by name.
	Files []*File
	// Types and Info hold the go/types results (nil when the package
	// failed to load — such packages are excluded from analysis).
	Types *types.Package
	Info  *types.Info
	mod   *Module

	// broken marks a package that failed to parse or type-check, or that
	// depends on one; the corresponding driver diagnostic lives in
	// Module.errs.
	broken bool
}

// Broken reports whether the package failed to load (and was therefore
// excluded from analysis).
func (p *Package) Broken() bool { return p.broken }

// LoadStats describes how the driver loaded the module.
type LoadStats struct {
	// Packages is the number of packages discovered.
	Packages int
	// TypeChecked is the number of packages successfully type-checked.
	TypeChecked int
	// MaxParallel is the high-water mark of concurrently type-checking
	// packages — the timing guard in the test suite asserts it stays > 1
	// so the parallel driver cannot silently regress to serial.
	MaxParallel int
}

// Module is a loaded source tree, type-checked as far as its packages
// permit.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Root is the absolute module root directory.
	Root string
	// Fset maps positions for every parsed file.
	Fset *token.FileSet
	// Pkgs are the module's packages sorted by import path.
	Pkgs []*Package
	// Stats describes the load (package counts, type-check parallelism).
	Stats LoadStats

	errs        []Diagnostic
	reportStale bool
}

// LoadErrors returns the driver diagnostics of packages that failed to
// parse or type-check (and of their skipped dependents), sorted. A
// non-empty result means the analysis covered only part of the module;
// cmd/excovery-lint exits 2.
func (m *Module) LoadErrors() []Diagnostic {
	return append([]Diagnostic(nil), m.errs...)
}

// Load parses and type-checks every non-test package under root (a module
// root containing go.mod). Directories named testdata, vendor and hidden
// directories are skipped, as are _test.go files: the invariants guard
// production paths, and tests legitimately fake clocks and event names.
//
// Dependency-ready packages type-check in parallel. A package that fails
// to parse or type-check does not abort the load and does not poison its
// dependents: it (and every package importing it) is marked broken with a
// driver diagnostic in LoadErrors, and the healthy remainder is analyzed
// normally. Load itself errors only on infrastructure failures (unreadable
// go.mod, filesystem walk errors).
func Load(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: modPath, Root: absRoot, Fset: token.NewFileSet(), reportStale: true}

	// Pass 1: parse every package directory. Parse failures are recorded
	// as driver diagnostics and mark the package broken; the walk
	// continues.
	byPath := map[string]*Package{}
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != absRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(absRoot, path)
		if err != nil {
			return err
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		ipath := modPath
		if dir != "." {
			ipath = modPath + "/" + dir
		}
		pkg := byPath[ipath]
		if pkg == nil {
			pkg = &Package{Path: ipath, mod: mod}
			byPath[ipath] = pkg
		}
		// Read via the absolute path but register the module-relative name:
		// diagnostics stay stable regardless of the caller's working
		// directory.
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		relName := filepath.ToSlash(rel)
		af, perr := parser.ParseFile(mod.Fset, relName, src, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			pkg.broken = true
			mod.errs = append(mod.errs, parseDiagnostic(relName, perr))
			return nil
		}
		f := &File{Pkg: pkg, Ast: af, Name: relName}
		f.parseSuppressions(mod.Fset)
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pkg := range byPath {
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	mod.Stats.Packages = len(mod.Pkgs)

	// Pass 2: type-check dependency-ready packages in parallel.
	mod.typecheckAll(byPath)
	sortDiagnostics(mod.errs)
	return mod, nil
}

// typecheckAll runs go/types over the module in dependency levels: every
// package whose internal imports are already checked runs concurrently
// with its peers (Kahn levels, so no locking on the package cache is
// needed — imports resolve strictly to earlier levels). Packages whose
// dependencies are broken are skipped with a driver diagnostic instead of
// being fed partial facts.
func (m *Module) typecheckAll(byPath map[string]*Package) {
	// Internal dependency edges, restricted to packages that exist.
	deps := map[string][]string{}
	for _, p := range m.Pkgs {
		seen := map[string]bool{}
		for _, d := range p.internalImports() {
			if d == p.Path || byPath[d] == nil || seen[d] {
				continue
			}
			seen[d] = true
			deps[p.Path] = append(deps[p.Path], d)
		}
	}

	imp := newStdImporter(m.Fset)
	done := map[string]bool{}
	var mu sync.Mutex // guards m.errs and the parallelism high-water mark
	inFlight := 0
	for {
		var ready []*Package
		for _, p := range m.Pkgs {
			if done[p.Path] {
				continue
			}
			ok := true
			for _, d := range deps[p.Path] {
				if !done[d] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, p)
			}
		}
		if len(ready) == 0 {
			break
		}
		var run []*Package
		for _, p := range ready {
			done[p.Path] = true
			if p.broken {
				continue // parse failure already diagnosed
			}
			if bad := firstBrokenDep(p, deps[p.Path], byPath); bad != "" {
				p.broken = true
				m.errs = append(m.errs, Diagnostic{
					Pos:   p.anchorPos(),
					Check: "driver",
					Message: fmt.Sprintf("package %s not analyzed: dependency %s failed to load",
						p.Path, bad),
				})
				continue
			}
			run = append(run, p)
		}
		var wg sync.WaitGroup
		for _, p := range run {
			wg.Add(1)
			go func(p *Package) {
				defer wg.Done()
				mu.Lock()
				inFlight++
				if inFlight > m.Stats.MaxParallel {
					m.Stats.MaxParallel = inFlight
				}
				mu.Unlock()
				err := p.typecheck(imp, byPath)
				mu.Lock()
				inFlight--
				if err != nil {
					p.broken = true
					m.errs = append(m.errs, typecheckDiagnostic(m, p, err))
				} else {
					m.Stats.TypeChecked++
				}
				mu.Unlock()
			}(p)
		}
		wg.Wait()
	}
	// Anything still pending sits on an import cycle (invalid Go, but the
	// driver must degrade to a diagnostic, not a hang).
	for _, p := range m.Pkgs {
		if !done[p.Path] && !p.broken {
			p.broken = true
			m.errs = append(m.errs, Diagnostic{
				Pos:     p.anchorPos(),
				Check:   "driver",
				Message: fmt.Sprintf("package %s not analyzed: import cycle", p.Path),
			})
		}
	}
}

// firstBrokenDep returns the first (sorted) broken dependency of p, or "".
func firstBrokenDep(p *Package, deps []string, byPath map[string]*Package) string {
	sorted := append([]string(nil), deps...)
	sort.Strings(sorted)
	for _, d := range sorted {
		if dp := byPath[d]; dp != nil && dp.broken {
			return d
		}
	}
	return ""
}

// anchorPos is the package's reporting position for package-level driver
// diagnostics: line 1 of its first file, or just the import path when no
// file parsed.
func (p *Package) anchorPos() token.Position {
	if len(p.Files) > 0 {
		return token.Position{Filename: p.Files[0].Name, Line: 1}
	}
	return token.Position{Filename: p.Path, Line: 1}
}

// parseDiagnostic converts a parser error into a driver diagnostic at the
// first error's position.
func parseDiagnostic(file string, err error) Diagnostic {
	d := Diagnostic{Pos: token.Position{Filename: file, Line: 1}, Check: "driver"}
	// parser returns a scanner.ErrorList; avoid importing go/scanner for
	// one type switch by parsing the "file:line:col: msg" prefix instead.
	msg := err.Error()
	if i := strings.Index(msg, ": "); i > 0 {
		if f, line, ok := splitPosPrefix(msg[:i]); ok && f == file {
			d.Pos.Line = line
			msg = msg[i+2:]
		}
	}
	d.Message = "cannot parse: " + firstLine(msg)
	return d
}

// typecheckDiagnostic converts a go/types error into a driver diagnostic.
func typecheckDiagnostic(m *Module, p *Package, err error) Diagnostic {
	d := Diagnostic{Pos: p.anchorPos(), Check: "driver"}
	var terr types.Error
	if e, ok := errAsTypes(err); ok {
		terr = e
		pos := m.Fset.Position(terr.Pos)
		if pos.IsValid() {
			d.Pos = pos
		}
		d.Message = fmt.Sprintf("package %s failed to type-check: %s", p.Path, terr.Msg)
		return d
	}
	d.Message = fmt.Sprintf("package %s failed to type-check: %s", p.Path, firstLine(err.Error()))
	return d
}

// errAsTypes unwraps err to a types.Error.
func errAsTypes(err error) (types.Error, bool) {
	for err != nil {
		if te, ok := err.(types.Error); ok {
			return te, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			break
		}
		err = u.Unwrap()
	}
	return types.Error{}, false
}

// splitPosPrefix parses "file:line" or "file:line:col" into (file, line).
func splitPosPrefix(s string) (string, int, bool) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return "", 0, false
	}
	// The line number is the first numeric component after the filename.
	var line int
	if _, err := fmt.Sscanf(parts[1], "%d", &line); err != nil || line <= 0 {
		return "", 0, false
	}
	return parts[0], line, true
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// LoadPackage parses and type-checks the .go files of one directory as a
// single package under an explicit import path. It backs the analyzer
// golden tests: the import path places a testdata package inside (or
// outside) an analyzer's scope, and the files may import the standard
// library only. Stale-suppression reporting stays off — fixtures carry
// suppressions for the one analyzer under test, which other-analyzer runs
// would misreport as stale.
func LoadPackage(dir, importPath string) (*Module, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: importPath, Root: absDir, Fset: token.NewFileSet()}
	pkg := &Package{Path: importPath, mod: mod}
	entries, err := os.ReadDir(absDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(mod.Fset, e.Name(), readFileIn(absDir, e.Name()), parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		f := &File{Pkg: pkg, Ast: af, Name: e.Name()}
		f.parseSuppressions(mod.Fset)
		pkg.Files = append(pkg.Files, f)
	}
	sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
	mod.Pkgs = []*Package{pkg}
	mod.Stats = LoadStats{Packages: 1, TypeChecked: 1, MaxParallel: 1}
	if err := pkg.typecheck(newStdImporter(mod.Fset), map[string]*Package{}); err != nil {
		return nil, err
	}
	return mod, nil
}

// readFileIn reads dir/name, returning the source or nil (letting the
// parser report the open error with the right filename).
func readFileIn(dir, name string) any {
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil
	}
	return b
}

// SetReportStale toggles stale-suppression reporting (on for Load, off for
// LoadPackage).
func (m *Module) SetReportStale(on bool) { m.reportStale = on }

// Run executes the analyzers in two passes over every loaded file —
// pass 1: file-local checks plus fact collection; pass 2: the whole-program
// Finish hooks over the merged fact set — filters suppressed findings,
// reports malformed and (on whole-module runs) stale suppressions, and
// returns the diagnostics sorted by file, line and check. Broken packages
// are skipped; their driver diagnostics live in LoadErrors.
func (m *Module) Run(analyzers []*Analyzer) []Diagnostic {
	fx := newFacts()
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		if pkg.broken || pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for i := range f.suppressions {
				f.suppressions[i].used = false
				if f.suppressions[i].reason == "" {
					out = append(out, Diagnostic{
						Pos:     token.Position{Filename: f.Name, Line: f.suppressions[i].line},
						Check:   "lint",
						Message: "suppression without a reason: //lint:ignore <check> <reason>",
					})
				}
			}
			for _, a := range analyzers {
				if a.Collect != nil {
					a.Collect(f, fx)
				}
				if a.Run == nil {
					continue
				}
				for _, d := range a.Run(f) {
					if f.suppress(a.Name, d.Pos.Line) {
						continue
					}
					out = append(out, d)
				}
			}
		}
	}
	files := m.fileIndex()
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		for _, d := range a.Finish(m, fx) {
			if f := files[d.Pos.Filename]; f != nil && f.suppress(a.Name, d.Pos.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	if m.reportStale {
		for _, pkg := range m.Pkgs {
			if pkg.broken || pkg.Types == nil {
				continue
			}
			for _, f := range pkg.Files {
				for i := range f.suppressions {
					s := &f.suppressions[i]
					if s.reason == "" || s.used || !enabled[s.check] {
						continue
					}
					out = append(out, Diagnostic{
						Pos:   token.Position{Filename: f.Name, Line: s.line},
						Check: "lint",
						Message: fmt.Sprintf("stale suppression: no %s finding on this "+
							"or the next line; remove the //lint:ignore", s.check),
					})
				}
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// fileIndex maps module-relative filenames to files, for applying
// suppressions to whole-program (Finish) diagnostics.
func (m *Module) fileIndex() map[string]*File {
	idx := map[string]*File{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			idx[f.Name] = f
		}
	}
	return idx
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// internalImports returns the package's module-internal dependencies.
func (p *Package) internalImports() []string {
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Ast.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == p.mod.Path || strings.HasPrefix(path, p.mod.Path+"/") {
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// typecheck runs go/types over the package's files.
func (p *Package) typecheck(std types.Importer, byPath map[string]*Package) error {
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		files[i] = f.Ast
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: &modImporter{mod: p.mod, std: std, byPath: byPath},
	}
	tp, err := conf.Check(p.Path, p.mod.Fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
	}
	p.Types, p.Info = tp, info
	return nil
}

// modImporter resolves module-internal imports from the already-checked
// package cache and delegates everything else to the stdlib importer.
type modImporter struct {
	mod    *Module
	std    types.Importer
	byPath map[string]*Package
}

func (im *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.byPath[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: %s not yet type-checked (import cycle?)", path)
		}
		return p.Types, nil
	}
	return im.std.Import(path)
}

// newStdImporter builds the standard-library importer: compiled export
// data when available (fast), with a from-source fallback for toolchains
// that ship no precompiled standard library. Imports are serialized behind
// a mutex — the go/importer caches are not safe for the driver's parallel
// type-checking, but completed *types.Package values are immutable and
// shared freely.
func newStdImporter(fset *token.FileSet) types.Importer {
	return &stdImporter{gc: importer.Default(), src: importer.ForCompiler(fset, "source", nil)}
}

type stdImporter struct {
	mu      sync.Mutex
	gc, src types.Importer
}

func (im *stdImporter) Import(path string) (*types.Package, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if p, err := im.gc.Import(path); err == nil {
		return p, nil
	}
	return im.src.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parseSuppressions collects the file's //lint:ignore comments.
func (f *File) parseSuppressions(fset *token.FileSet) {
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			s := suppression{line: fset.Position(c.Pos()).Line}
			if len(fields) > 0 {
				s.check = fields[0]
			}
			if len(fields) > 1 {
				s.reason = strings.Join(fields[1:], " ")
			}
			f.suppressions = append(f.suppressions, s)
		}
	}
}

// suppress reports whether a finding of check at line is covered by a
// suppression on the same line or the line directly above, marking the
// suppression used (for stale-suppression reporting).
func (f *File) suppress(check string, line int) bool {
	for i := range f.suppressions {
		s := &f.suppressions[i]
		if s.check != check || s.reason == "" {
			continue
		}
		if s.line == line || s.line == line-1 {
			s.used = true
			return true
		}
	}
	return false
}

// pos converts a token.Pos into a Diagnostic position with the file's
// module-relative name.
func (f *File) pos(p token.Pos) token.Position {
	pos := f.Pkg.mod.Fset.Position(p)
	pos.Filename = f.Name
	return pos
}

// pkgPathOf resolves an identifier used as a package qualifier to the
// imported package path, or "" when the identifier is not a package name
// (e.g. a local variable shadowing an import).
func (f *File) pkgPathOf(id *ast.Ident) string {
	if obj, ok := f.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// qualifiedCall matches a call of the form pkg.Fn(...) and returns the
// package path and function name.
func (f *File) qualifiedCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path := f.pkgPathOf(id)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// typeOf returns the fully-qualified type string of an expression with any
// leading pointer stripped, or "".
func (f *File) typeOf(e ast.Expr) string {
	tv, ok := f.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	s := tv.Type.String()
	return strings.TrimPrefix(s, "*")
}

// calleeFunc resolves a call's callee to its *types.Func (package-level
// function or method), or nil for dynamic calls, builtins and conversions.
func (f *File) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		switch x := fun.X.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	case *ast.IndexListExpr:
		switch x := fun.X.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	}
	if id == nil {
		return nil
	}
	if fn, ok := f.Pkg.Info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// moduleFunc reports whether fn belongs to this module and returns its
// stable full name ("(*pkg.Type).Method" / "pkg.Func").
func (f *File) moduleFunc(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	mod := f.Pkg.mod.Path
	if path != mod && !strings.HasPrefix(path, mod+"/") {
		return "", false
	}
	return fn.FullName(), true
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder detects lock-order cycles across the module's five interacting
// lock domains (master committer, fleet, registry, obs, and the sharded
// scheduler, where the hierarchy is Group.mu above Scheduler.mu: group
// barriers install cross-shard inboxes into member schedulers, so a member
// must never call back into the group with its own lock held): it builds a
// whole-program lock-acquisition graph whose nodes are mutex identities
// keyed on the declaring `Type.field` — every *Fleet value's `mu` is one
// node, so an order inversion between any two instances is caught — and
// reports every cycle. Edges come from two sources: a direct nested
// acquisition (B locked while A is held), and a call made while holding A
// to a function that (transitively, through the intra-module call graph)
// acquires B. The scan is linear per function like mutexheldio: func
// literals, go statements and deferred calls are skipped (they run
// outside the current hold), and a deferred Unlock keeps the mutex held
// to the end of the function.
//
// Self-edges (A -> A) are not reported: locking two instances of the same
// type is a different hazard (an ordering convention over instance
// identity) that this pass cannot check without value tracking.

// lockFnFact is the per-function fact of pass 1.
type lockFnFact struct {
	name     string         // types.Func full name
	acquires map[string]int // mutex identity -> line of first acquisition
	calls    []lockCall     // module functions called (anywhere in the body)
	edges    []lockEdge     // direct nested acquisitions
	held     []lockCall     // module calls made while holding a mutex
	file     string
}

type lockCall struct {
	callee string // for held entries: the held mutex is in `from`
	from   string
	line   int
}

type lockEdge struct {
	from, to string
	line     int
}

// Lockorder returns the cross-package lock-order cycle analyzer.
func Lockorder() *Analyzer {
	return &Analyzer{
		Name:    "lockorder",
		Doc:     "the module-wide lock-acquisition graph (Type.field identities) must be cycle-free",
		Collect: lockorderCollect,
		Finish:  lockorderFinish,
	}
}

func lockorderCollect(f *File, fx *Facts) {
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := f.declFullName(fd)
		if name == "" {
			continue
		}
		fact := &lockFnFact{name: name, acquires: map[string]int{}, file: f.Name}
		f.scanLockEvents(fd.Body, fact)
		if len(fact.acquires) == 0 && len(fact.calls) == 0 {
			continue
		}
		pos := f.pos(fd.Pos())
		fx.Put("lockorder", fmt.Sprintf("fn/%s@%s:%d", name, pos.Filename, pos.Line), fact)
	}
}

// scanLockEvents walks a body in source order, tracking the held-mutex
// set: Lock/RLock pushes (emitting a direct edge per already-held mutex),
// Unlock/RUnlock pops, and any module-function call is recorded both as a
// call-graph edge and — per held mutex — as a held call. Deferred
// statements, go statements and func literals are not entered; a deferred
// Unlock therefore never pops, which models "held to end of function".
func (f *File) scanLockEvents(body *ast.BlockStmt, fact *lockFnFact) {
	var held []lockEdge // from = identity, line = acquisition line
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				line := f.pos(v.Pos()).Line
				if id, op := f.lockIdentity(v); id != "" {
					switch op {
					case "Lock", "RLock":
						for _, h := range held {
							if h.from != id {
								fact.edges = append(fact.edges, lockEdge{from: h.from, to: id, line: line})
							}
						}
						held = append(held, lockEdge{from: id, line: line})
						if _, seen := fact.acquires[id]; !seen {
							fact.acquires[id] = line
						}
					case "Unlock", "RUnlock":
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].from == id {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
					return true
				}
				if full, ok := f.moduleFunc(f.calleeFunc(v)); ok {
					fact.calls = append(fact.calls, lockCall{callee: full, line: line})
					for _, h := range held {
						fact.held = append(fact.held, lockCall{callee: full, from: h.from, line: line})
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// lockIdentity matches mu.Lock()/mu.Unlock()/RLock/RUnlock where mu is a
// sync.Mutex or sync.RWMutex, and returns the mutex's declaration-keyed
// identity: "pkg.Type.field" for a struct field, "pkg.name" otherwise.
func (f *File) lockIdentity(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	switch f.typeOf(sel.X) {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return "", ""
	}
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		if owner := f.typeOf(inner.X); owner != "" && !strings.Contains(owner, " ") {
			return owner + "." + inner.Sel.Name, sel.Sel.Name
		}
	}
	return f.Pkg.Path + "." + exprText(sel.X), sel.Sel.Name
}

// exprText renders a short expression for identity/reporting purposes.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprText(v.X)
	case *ast.StarExpr:
		return exprText(v.X)
	case *ast.BinaryExpr:
		return exprText(v.X) + v.Op.String() + exprText(v.Y)
	}
	return "?"
}

// declFullName resolves a FuncDecl to its types.Func full name.
func (f *File) declFullName(fd *ast.FuncDecl) string {
	if fn, ok := f.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// edgeInfo locates one lock-graph edge for reporting.
type edgeInfo struct {
	file string
	line int
	via  string // "" for a direct nesting; callee name otherwise
}

func lockorderFinish(m *Module, fx *Facts) []Diagnostic {
	// Merge per-function facts (multiple init functions share a name).
	fns := map[string]*lockFnFact{}
	for _, key := range fx.Keys("lockorder") {
		v, _ := fx.Get("lockorder", key)
		fact := v.(*lockFnFact)
		if cur := fns[fact.name]; cur != nil {
			for id, line := range fact.acquires {
				if _, ok := cur.acquires[id]; !ok {
					cur.acquires[id] = line
				}
			}
			cur.calls = append(cur.calls, fact.calls...)
			cur.edges = append(cur.edges, fact.edges...)
			cur.held = append(cur.held, fact.held...)
		} else {
			fns[fact.name] = fact
		}
	}

	// Transitive acquisition sets over the intra-module call graph.
	memo := map[string]map[string]bool{}
	var reach func(name string, stack map[string]bool) map[string]bool
	reach = func(name string, stack map[string]bool) map[string]bool {
		if got, ok := memo[name]; ok {
			return got
		}
		if stack[name] {
			return nil // recursion: the cycle's own edges are still collected
		}
		fn := fns[name]
		if fn == nil {
			return nil
		}
		stack[name] = true
		out := map[string]bool{}
		for id := range fn.acquires {
			out[id] = true
		}
		for _, c := range fn.calls {
			for id := range reach(c.callee, stack) {
				out[id] = true
			}
		}
		delete(stack, name)
		memo[name] = out
		return out
	}

	// The lock graph: direct nested edges plus held-call closure edges.
	edges := map[string]map[string]edgeInfo{}
	addEdge := func(from, to string, info edgeInfo) {
		if from == to {
			return
		}
		byTo := edges[from]
		if byTo == nil {
			byTo = map[string]edgeInfo{}
			edges[from] = byTo
		}
		if cur, ok := byTo[to]; !ok || info.file < cur.file ||
			(info.file == cur.file && info.line < cur.line) {
			byTo[to] = info
		}
	}
	fnNames := make([]string, 0, len(fns))
	for n := range fns {
		fnNames = append(fnNames, n)
	}
	sort.Strings(fnNames)
	for _, n := range fnNames {
		fn := fns[n]
		for _, e := range fn.edges {
			addEdge(e.from, e.to, edgeInfo{file: fn.file, line: e.line})
		}
		for _, hc := range fn.held {
			for id := range reach(hc.callee, map[string]bool{}) {
				addEdge(hc.from, id, edgeInfo{file: fn.file, line: hc.line, via: hc.callee})
			}
		}
	}

	// Cycle detection: from each node (sorted), DFS for a path back to it;
	// report each cycle once, keyed on its sorted member set.
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	reported := map[string]bool{}
	var out []Diagnostic
	for _, start := range nodes {
		path := findCycle(start, edges)
		if path == nil {
			continue
		}
		members := append([]string(nil), path...)
		sort.Strings(members)
		key := strings.Join(members, "|")
		if reported[key] {
			continue
		}
		reported[key] = true
		info := edges[path[0]][path[1%len(path)]]
		desc := strings.Join(append(path, path[0]), " -> ")
		msg := fmt.Sprintf("lock-order cycle: %s", desc)
		if info.via != "" {
			msg += fmt.Sprintf(" (via call to %s while %s held)", info.via, path[0])
		}
		out = append(out, Diagnostic{
			Pos:     token.Position{Filename: info.file, Line: info.line},
			Check:   "lockorder",
			Message: msg,
		})
	}
	return out
}

// findCycle returns the first (sorted-neighbor DFS) cycle through start,
// as the node sequence [start, …] without the closing repeat, or nil.
func findCycle(start string, edges map[string]map[string]edgeInfo) []string {
	var path []string
	onPath := map[string]bool{}
	visited := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		onPath[n] = true
		tos := make([]string, 0, len(edges[n]))
		for to := range edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if to == start && len(path) > 1 {
				return true
			}
			if onPath[to] || visited[to] {
				continue
			}
			if dfs(to) {
				return true
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		visited[n] = true
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}

package lint

import (
	"go/ast"
)

// wallClockAllowed lists package-path prefixes where reading the wall
// clock is the point: the time-sync estimator measures real clock offsets
// (§IV-B3), the obs layer stamps traces and metrics with operator-facing
// wall times, and the examples report human wall durations. Everywhere
// else a time.Now() breaks repeatability — the same seed must replay the
// same timeline, so deterministic paths read an injected vclock.Clock
// (or the scheduler's virtual clock) instead.
var wallClockAllowed = []string{
	"excovery/internal/timesync",
	"excovery/internal/obs",
	"excovery/examples",
}

// Walltime rejects time.Now() calls outside the allowlisted wall-clock
// packages. Legitimate wall reads elsewhere — the realtime scheduler
// anchor, journal wall metadata — carry a //lint:ignore walltime comment
// naming why the site is exempt.
func Walltime() *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "no time.Now() outside allowlisted wall-clock sites; inject a vclock.Clock",
		Run:  walltimeRun,
	}
}

func walltimeRun(f *File) []Diagnostic {
	if pathAllowed(f.Pkg.Path, wallClockAllowed) {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := f.qualifiedCall(call); ok && pkg == "time" && name == "Now" {
			out = append(out, Diagnostic{
				Pos:   f.pos(call.Pos()),
				Check: "walltime",
				Message: "time.Now() outside an allowed wall-clock site; " +
					"deterministic paths must read an injected vclock.Clock",
			})
		}
		return true
	})
	return out
}

// pathAllowed reports whether path equals or lies under one of the
// allowlisted package-path prefixes.
func pathAllowed(path string, allowed []string) bool {
	for _, a := range allowed {
		if path == a || len(path) > len(a) && path[:len(a)] == a && path[len(a)] == '/' {
			return true
		}
	}
	return false
}

package lint

import (
	"fmt"
	"go/ast"
)

// Eventnames keeps level-3 analysis honest: conditioning and the
// EventsOfRun queries select events by exact type string, so an event
// emitted under a typo'd literal silently vanishes from every analysis
// instead of failing anywhere. The analyzer therefore rejects string
// literals passed directly to Emit (and the lowercase emit helpers of the
// sd agents) — event types must be constants from a registry
// (eventlog.Ev*, sd.Ev*) — and string literals assigned to the Type field
// of store.JournalRecord constructors, which must use the store.Rec*
// constants. Dynamically composed names (kind+"_stop") and forwarded
// variables are out of scope: the check targets the literal-at-call-site
// pattern where a typo is invisible.
func Eventnames() *Analyzer {
	return &Analyzer{
		Name: "eventnames",
		Doc:  "event types at Emit sites and journal record constructors come from registry constants",
		Run:  eventnamesRun,
	}
}

func eventnamesRun(f *File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			name := calleeName(node)
			if name != "Emit" && name != "emit" {
				return true
			}
			for _, arg := range node.Args {
				lit, ok := arg.(*ast.BasicLit)
				if !ok || lit.Kind.String() != "STRING" {
					continue
				}
				out = append(out, Diagnostic{
					Pos:   f.pos(lit.Pos()),
					Check: "eventnames",
					Message: fmt.Sprintf("event type %s passed to %s as a string literal; "+
						"use a registry constant (internal/eventlog/names.go or sd.Ev*)", lit.Value, name),
				})
			}
		case *ast.CompositeLit:
			if typeNameOf(node.Type) != "JournalRecord" {
				return true
			}
			for _, elt := range node.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Type" {
					continue
				}
				if lit, ok := kv.Value.(*ast.BasicLit); ok && lit.Kind.String() == "STRING" {
					out = append(out, Diagnostic{
						Pos:   f.pos(lit.Pos()),
						Check: "eventnames",
						Message: fmt.Sprintf("journal record type %s as a string literal; "+
							"use the store.Rec* constants", lit.Value),
					})
				}
			}
		}
		return true
	})
	return out
}

// calleeName extracts the called function or method name from a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// typeNameOf returns the last component of a composite literal's type
// expression ("JournalRecord" for both JournalRecord{…} and
// store.JournalRecord{…}), or "".
func typeNameOf(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// rpccontract verifies the module's XML-RPC wire contract statically: the
// control channel, the lease protocol and the discovery registry all speak
// stringly-typed method names with positional parameters, so a client and
// a handler can drift apart without any compiler noticing — the drift
// surfaces mid-campaign as a fault. The analyzer collects every handler
// registered on an xmlrpc.Server (name plus a positional-arity profile
// derived from the handler body's arg/argAt accesses) and checks every
// Client.Call site with a literal method name module-wide against that
// table: unknown method names and arities outside [min, max] are findings.
//
// The profile distinguishes required from optional positions by the
// handler's own parsing idiom: a statement-level `v, ok := arg[T](params,
// i)` is required (the handler rejects the call without it), while a
// blank `v, _ :=` or an if-guarded `if v, ok := …; ok` access is optional
// — this is how host.set_master's trailing (session, ttl_ms, epoch) and
// registry.claim's (count, region) stay optional-suffix without any
// annotation. Call-site arity is computed net of the trailing
// trace_parent/fence_epoch markers: WithFenceEpoch/WithTraceParent
// wrappers are peeled (the server strips them before the handler sees
// params), and calls through a forwarder like (*RemoteNode).call — a
// module function of shape (method string, params ...any) that forwards
// to Client.Call — are checked like direct calls.

// rpcMethodRE matches the method-name vocabulary ("host.set_master",
// "system.listMethods"); other string literals in a Call-shaped position
// are not treated as RPC methods.
var rpcMethodRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*\.[A-Za-z_][A-Za-z0-9_]*$`)

const (
	rpcClientType = "excovery/internal/xmlrpc.Client"
	rpcServerType = "excovery/internal/xmlrpc.Server"
	rpcPkgPath    = "excovery/internal/xmlrpc"
)

// rpcProfile is a handler's positional-parameter profile.
type rpcProfile struct {
	req     map[int]bool // indices the handler rejects calls without
	opt     map[int]bool // indices the handler reads but tolerates missing
	helpers []string     // []any-helper functions the handler delegates to
	unknown bool         // params escapes the recognized idioms; arity unchecked
}

func newRPCProfile() *rpcProfile {
	return &rpcProfile{req: map[int]bool{}, opt: map[int]bool{}}
}

// minArgs is the smallest accepted call arity (highest required index + 1).
func (p *rpcProfile) minArgs() int {
	n := 0
	for i := range p.req {
		if i+1 > n {
			n = i + 1
		}
	}
	return n
}

// maxArgs is the largest accepted call arity (highest referenced index + 1).
func (p *rpcProfile) maxArgs() int {
	n := p.minArgs()
	for i := range p.opt {
		if i+1 > n {
			n = i + 1
		}
	}
	return n
}

// merge folds another registration or helper profile into p, keeping the
// union of referenced indices and of required indices.
func (p *rpcProfile) merge(q *rpcProfile) {
	if q == nil {
		return
	}
	for i := range q.req {
		p.req[i] = true
	}
	for i := range q.opt {
		p.opt[i] = true
	}
	p.helpers = append(p.helpers, q.helpers...)
	p.unknown = p.unknown || q.unknown
}

// rpcHandlerFact records one srv.Register("name", handler) site.
type rpcHandlerFact struct {
	name    string
	profile *rpcProfile
	pos     token.Position
}

// rpcCallFact records one Call site with a literal method name. callee is
// "" for a direct Client.Call and the forwarder's full name otherwise;
// argc is -1 when the argument count is not statically derivable.
type rpcCallFact struct {
	method string
	argc   int
	callee string
	pos    token.Position
}

// Rpccontract returns the XML-RPC client/server drift analyzer.
func Rpccontract() *Analyzer {
	return &Analyzer{
		Name:    "rpccontract",
		Doc:     "Client.Call sites must match a registered XML-RPC handler's name and positional arity",
		Collect: rpccontractCollect,
		Finish:  rpccontractFinish,
	}
}

func rpccontractCollect(f *File, fx *Facts) {
	// Function-level facts: Call forwarders and []any-param helpers.
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := f.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		if rpcIsForwarder(f, fd) {
			fx.Put("rpccontract", "forwarder/"+obj.FullName(), true)
		}
		if ident := rpcParamsIdent(fd); ident != nil {
			p := rpcProfileOf(f, fd.Body, ident)
			fx.Put("rpccontract", "helper/"+obj.FullName(), p)
		}
	}

	ast.Inspect(f.Ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Register" && len(call.Args) >= 2 &&
			f.typeOf(sel.X) == rpcServerType {
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			pos := f.pos(call.Pos())
			fx.Put("rpccontract", fmt.Sprintf("handler/%s@%s:%d", name, pos.Filename, pos.Line),
				&rpcHandlerFact{name: name, profile: rpcHandlerProfile(f, call.Args[1]), pos: pos})
			return true
		}
		if fact, ok := rpcCallSite(f, call); ok {
			fx.Put("rpccontract", fmt.Sprintf("call/%s:%d", fact.pos.Filename, fact.pos.Line), fact)
		}
		return true
	})
}

func rpccontractFinish(m *Module, fx *Facts) []Diagnostic {
	handlers := map[string]*rpcHandlerFact{}
	helpers := map[string]*rpcProfile{}
	forwarders := map[string]bool{}
	var calls []*rpcCallFact
	for _, key := range fx.Keys("rpccontract") {
		v, _ := fx.Get("rpccontract", key)
		switch {
		case strings.HasPrefix(key, "handler/"):
			h := v.(*rpcHandlerFact)
			if cur := handlers[h.name]; cur != nil {
				cur.profile.merge(h.profile)
			} else {
				cp := newRPCProfile()
				cp.merge(h.profile)
				handlers[h.name] = &rpcHandlerFact{name: h.name, profile: cp, pos: h.pos}
			}
		case strings.HasPrefix(key, "helper/"):
			helpers[strings.TrimPrefix(key, "helper/")] = v.(*rpcProfile)
		case strings.HasPrefix(key, "forwarder/"):
			forwarders[strings.TrimPrefix(key, "forwarder/")] = true
		case strings.HasPrefix(key, "call/"):
			calls = append(calls, v.(*rpcCallFact))
		}
	}
	// Fold delegated helpers (e.g. nodeRunArgs) into the handler profiles;
	// helpers may in turn delegate, so iterate to a fixed point (depth is
	// tiny in practice).
	for range handlers {
		changed := false
		for _, h := range handlers {
			for len(h.profile.helpers) > 0 {
				name := h.profile.helpers[0]
				h.profile.helpers = h.profile.helpers[1:]
				if hp := helpers[name]; hp != nil {
					h.profile.merge(hp)
				} else {
					h.profile.unknown = true
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var out []Diagnostic
	names := make([]string, 0, len(handlers))
	for n := range handlers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, c := range calls {
		if c.callee != "" && !forwarders[c.callee] {
			continue // a string-first module call that is not an RPC forwarder
		}
		h := handlers[c.method]
		if h == nil {
			out = append(out, Diagnostic{
				Pos:   c.pos,
				Check: "rpccontract",
				Message: fmt.Sprintf("call to unregistered XML-RPC method %q (known: %s)",
					c.method, strings.Join(names, ", ")),
			})
			continue
		}
		if c.argc < 0 || h.profile.unknown {
			continue
		}
		minN, maxN := h.profile.minArgs(), h.profile.maxArgs()
		if c.argc < minN || c.argc > maxN {
			want := fmt.Sprintf("%d", minN)
			if maxN != minN {
				want = fmt.Sprintf("%d..%d", minN, maxN)
			}
			out = append(out, Diagnostic{
				Pos:   c.pos,
				Check: "rpccontract",
				Message: fmt.Sprintf("call to %s passes %d params, handler at %s:%d takes %s",
					c.method, c.argc, h.pos.Filename, h.pos.Line, want),
			})
		}
	}
	return out
}

// rpcCallSite matches a Call-shaped site with a literal method name:
// either method "Call" on *xmlrpc.Client, or a module function call whose
// first argument is a method-name literal and whose signature ends in
// ...any (a forwarder candidate, confirmed against the forwarder facts in
// Finish).
func rpcCallSite(f *File, call *ast.CallExpr) (*rpcCallFact, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	method, ok := stringLit(call.Args[0])
	if !ok || !rpcMethodRE.MatchString(method) {
		return nil, false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Call" &&
		f.typeOf(sel.X) == rpcClientType {
		return &rpcCallFact{method: method, argc: rpcArgc(f, call), pos: f.pos(call.Pos())}, true
	}
	fn := f.calleeFunc(call)
	full, inModule := f.moduleFunc(fn)
	if !inModule {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() < 2 {
		return nil, false
	}
	return &rpcCallFact{method: method, argc: rpcArgc(f, call), callee: full, pos: f.pos(call.Pos())}, true
}

// rpcArgc computes the positional-parameter count a call puts on the wire,
// net of trailing fence/trace markers: the plain form counts arguments
// after the method name; the spread form Call(m, WithFenceEpoch(base,
// e)...) peels the marker wrappers (the server strips the markers before
// the handler sees params) down to the base slice literal. -1 when not
// statically derivable.
func rpcArgc(f *File, call *ast.CallExpr) int {
	if !call.Ellipsis.IsValid() {
		return len(call.Args) - 1
	}
	if len(call.Args) != 2 {
		return -1
	}
	e := call.Args[1]
	for {
		inner, ok := e.(*ast.CallExpr)
		if !ok {
			break
		}
		fn := f.calleeFunc(inner)
		if fn == nil || fn.Pkg() == nil || len(inner.Args) == 0 {
			return -1
		}
		if fn.Pkg().Path() != rpcPkgPath ||
			(fn.Name() != "WithFenceEpoch" && fn.Name() != "WithTraceParent") {
			return -1
		}
		e = inner.Args[0]
	}
	switch v := e.(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return 0
		}
	case *ast.CompositeLit:
		return len(v.Elts)
	}
	return -1
}

// rpcIsForwarder reports whether fd has the forwarder shape: parameters
// (method string, params ...any) and a body that passes the method
// parameter on to Client.Call.
func rpcIsForwarder(f *File, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	var names []*ast.Ident
	for _, field := range params.List {
		names = append(names, field.Names...)
	}
	if len(names) != 2 {
		return false
	}
	obj := f.Pkg.Info.Defs[names[0]]
	if obj == nil || obj.Type() == nil || obj.Type().String() != "string" {
		return false
	}
	fnObj, ok := f.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	if sig, ok := fnObj.Type().(*types.Signature); !ok || !sig.Variadic() {
		return false
	}
	forwards := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Call" || f.typeOf(sel.X) != rpcClientType {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && f.Pkg.Info.Uses[id] == obj {
			forwards = true
		}
		return true
	})
	return forwards
}

// rpcParamsIdent returns the sole []any parameter of a handler-shaped
// function ("func(params []any) …" or a helper like nodeRunArgs), or nil.
func rpcParamsIdent(fd *ast.FuncDecl) *ast.Ident {
	return rpcParamsIdentOf(fd.Type)
}

func rpcParamsIdentOf(ft *ast.FuncType) *ast.Ident {
	if ft.Params == nil || len(ft.Params.List) != 1 {
		return nil
	}
	field := ft.Params.List[0]
	if len(field.Names) != 1 {
		return nil
	}
	arr, ok := field.Type.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return nil
	}
	if id, ok := arr.Elt.(*ast.Ident); !ok || id.Name != "any" {
		if iface, ok := arr.Elt.(*ast.InterfaceType); !ok || iface.Methods == nil || len(iface.Methods.List) != 0 {
			return nil
		}
	}
	return field.Names[0]
}

// rpcHandlerProfile profiles the handler expression of a Register call,
// looking through wrapper calls like dataPath("m", fn) / h.fenced("m",
// fn) to the innermost func literal.
func rpcHandlerProfile(f *File, expr ast.Expr) *rpcProfile {
	for {
		switch v := expr.(type) {
		case *ast.FuncLit:
			if ident := rpcParamsIdentOf(v.Type); ident != nil {
				return rpcProfileOf(f, v.Body, ident)
			}
			p := newRPCProfile()
			p.unknown = true
			return p
		case *ast.CallExpr:
			var lit ast.Expr
			for _, a := range v.Args {
				if _, ok := a.(*ast.FuncLit); ok {
					lit = a
					break
				}
				if _, ok := a.(*ast.CallExpr); ok {
					lit = a // nested wrapper
				}
			}
			if lit == nil {
				p := newRPCProfile()
				p.unknown = true
				return p
			}
			expr = lit
		default:
			p := newRPCProfile()
			p.unknown = true
			return p
		}
	}
}

// rpcProfileOf derives the positional profile of a handler body over its
// []any parameter. Recognized accesses: `v, ok := arg[T](params, i)` at
// statement level (required), the same with a blank ok or as an if-guard
// init (optional), len(params), and delegation `helper(params)` to a
// single-[]any-param function (profile merged in Finish). Any other use
// of params makes the arity unknown — the name check still applies, the
// arity check is skipped.
func rpcProfileOf(f *File, body *ast.BlockStmt, params *ast.Ident) *rpcProfile {
	p := newRPCProfile()
	obj := f.Pkg.Info.Defs[params]
	if obj == nil {
		p.unknown = true
		return p
	}
	recognized := map[*ast.Ident]bool{}

	// classify records the index access of one arg/argAt call; optional
	// marks if-guarded or blank-ok accesses.
	classify := func(call *ast.CallExpr, optional bool) bool {
		idx, paramsID, ok := rpcArgAccess(f, call, obj)
		if !ok {
			return false
		}
		recognized[paramsID] = true
		if optional {
			p.opt[idx] = true
		} else {
			p.req[idx] = true
		}
		return true
	}
	// Parents are visited before children, so an if-guard classifies its
	// init assignment (optional) before the bare AssignStmt visit would
	// reclassify it, and an assignment consumes its RHS call before the
	// bare CallExpr visit reaches it.
	consumed := map[ast.Node]bool{}
	classifyAssign := func(as *ast.AssignStmt, guarded bool) bool {
		if consumed[as] || len(as.Rhs) != 1 {
			return false
		}
		consumed[as] = true
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		blank := len(as.Lhs) == 2 && isBlank(as.Lhs[1])
		if !classify(call, guarded || blank) {
			// Not an arg access: leave the call for the bare CallExpr
			// visit, which recognizes len(params) and helper delegation.
			return false
		}
		consumed[call] = true
		return true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IfStmt:
			if as, ok := v.Init.(*ast.AssignStmt); ok {
				classifyAssign(as, true)
			}
		case *ast.AssignStmt:
			classifyAssign(v, false)
		case *ast.CallExpr:
			if consumed[v] {
				return true
			}
			// len(params) is harmless; helper(params) delegates.
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "len" && len(v.Args) == 1 {
				if pid, ok := v.Args[0].(*ast.Ident); ok && f.Pkg.Info.Uses[pid] == obj {
					recognized[pid] = true
				}
			}
			if len(v.Args) == 1 {
				if pid, ok := v.Args[0].(*ast.Ident); ok && f.Pkg.Info.Uses[pid] == obj {
					if fn := f.calleeFunc(v); fn != nil {
						if full, inMod := f.moduleFunc(fn); inMod {
							recognized[pid] = true
							p.helpers = append(p.helpers, full)
						}
					}
				}
			}
			classify(v, false) // bare arg call (result compared inline etc.)
		}
		return true
	})

	// Any remaining use of params escapes the recognized idioms.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && f.Pkg.Info.Uses[id] == obj && !recognized[id] {
			p.unknown = true
		}
		return true
	})
	return p
}

// rpcArgAccess matches arg[T](params, i) / argAt[T](params, i) against the
// handler's params object, returning the constant index.
func rpcArgAccess(f *File, call *ast.CallExpr, params types.Object) (int, *ast.Ident, bool) {
	if len(call.Args) != 2 {
		return 0, nil, false
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "arg" && name != "argAt" {
		return 0, nil, false
	}
	pid, ok := call.Args[0].(*ast.Ident)
	if !ok || f.Pkg.Info.Uses[pid] != params {
		return 0, nil, false
	}
	lit, ok := call.Args[1].(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, nil, false
	}
	idx, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, nil, false
	}
	return idx, pid, true
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// maporder guards the repeatability contract (§IV-C1) against Go's
// randomized map iteration: a `range` over a map whose body reaches a
// determinism-sensitive sink — an event Emit/Publish, an XML-RPC fan-out,
// a journal write, an encoder or formatted stream write, a gauge/histogram
// export — produces artifacts whose order varies run to run even under a
// fixed seed. The fix is always the same: iterate sorted keys (which also
// makes the loop range a slice, silencing the check). Commutative metric
// updates (Inc/Add) are deliberately not sinks.
//
// The body scan includes func literals (InjectWait-style synchronous
// closures are the common case) but skips `go` statements only in the
// sense that a goroutine's own scheduling is already nondeterministic —
// they are still flagged, since launching per-map-entry goroutines toward
// an ordered sink is exactly the hazard.

// Maporder returns the deterministic-iteration analyzer.
func Maporder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "no range over a map whose body reaches a determinism-sensitive sink; iterate sorted keys",
		Run:  maporderRun,
	}
}

func maporderRun(f *File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !f.isMapRange(rng) {
			return true
		}
		if sink := f.firstSink(rng.Body); sink != "" {
			out = append(out, Diagnostic{
				Pos:   f.pos(rng.Pos()),
				Check: "maporder",
				Message: fmt.Sprintf("map iteration order reaches determinism-sensitive sink %s; "+
					"range over sorted keys instead", sink),
			})
		}
		return true
	})
	return out
}

// isMapRange reports whether the range expression is map-typed.
func (f *File) isMapRange(rng *ast.RangeStmt) bool {
	tv, ok := f.Pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// firstSink returns a description of the first determinism-sensitive sink
// call in the body, or "".
func (f *File) firstSink(body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s := f.sinkOf(call); s != "" {
			sink = s
			return false
		}
		return true
	})
	return sink
}

// sinkOf classifies one call as a determinism-sensitive sink.
func (f *File) sinkOf(call *ast.CallExpr) string {
	// Package-level sinks: formatted stream writes and fsio writes.
	if pkg, name, ok := f.qualifiedCall(call); ok {
		if pkg == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
			return "fmt." + name
		}
		if pkg == "excovery/internal/store/fsio" {
			return "fsio." + name
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	recv := f.typeOf(sel.X)
	switch name {
	case "Emit":
		// The event API: NodeHandle.Emit, EventWriter.Emit, recorder Emit.
		return "Emit"
	case "Publish":
		if strings.Contains(recv, "eventlog.") {
			return recv + ".Publish"
		}
	case "Call":
		if recv == rpcClientType {
			return "Client.Call"
		}
	case "Set", "Observe":
		// Gauge/histogram exports under internal/obs; counters (Inc/Add)
		// are commutative and excluded.
		if strings.HasPrefix(recv, "excovery/internal/obs.") {
			return recv + "." + name
		}
	case "Encode":
		switch recv {
		case "encoding/json.Encoder", "encoding/gob.Encoder", "encoding/xml.Encoder":
			return recv + ".Encode"
		}
	case "Begin", "End", "Done", "Append":
		if strings.HasSuffix(recv, "store.Journal") {
			return "Journal." + name
		}
	}
	return ""
}

package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// writeTree materializes a throwaway module for driver failure-path tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadSurvivesBrokenPackages pins the driver's failure-path contract:
// a syntax error or type-check failure in one package yields a driver
// diagnostic (not a panic and not an aborted load), its dependents are
// skipped with their own diagnostics, and healthy packages are still
// analyzed normally.
func TestLoadSurvivesBrokenPackages(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		// Healthy package with a walltime violation: proves broken
		// siblings don't stop analysis of the rest of the module.
		"a/a.go": "package a\n\nimport \"time\"\n\nfunc Now() time.Time { return time.Now() }\n",
		// Syntax error.
		"bad/bad.go": "package bad\n\nfunc broken( {\n",
		// Depends on the unparseable package: must be skipped, not poisoned.
		"dep/dep.go": "package dep\n\nimport _ \"demo/bad\"\n",
		// Parses but fails type-checking.
		"typ/typ.go": "package typ\n\nvar X undefinedType\n",
		// Depends on the failed-typecheck package: skipped likewise.
		"use/use.go": "package use\n\nimport _ \"demo/typ\"\n",
	})

	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load returned an infrastructure error for source-level breakage: %v", err)
	}
	if mod.Stats.Packages != 5 {
		t.Errorf("Stats.Packages = %d, want 5", mod.Stats.Packages)
	}
	if mod.Stats.TypeChecked != 1 {
		t.Errorf("Stats.TypeChecked = %d, want 1 (only demo/a is healthy)", mod.Stats.TypeChecked)
	}

	wantErrs := []string{
		"cannot parse:",
		"package demo/dep not analyzed: dependency demo/bad failed to load",
		"package demo/typ failed to type-check:",
		"package demo/use not analyzed: dependency demo/typ failed to load",
	}
	errs := mod.LoadErrors()
	if len(errs) != len(wantErrs) {
		t.Fatalf("LoadErrors = %v, want %d diagnostics", errs, len(wantErrs))
	}
	for i, want := range wantErrs {
		if errs[i].Check != "driver" {
			t.Errorf("LoadErrors[%d].Check = %q, want driver", i, errs[i].Check)
		}
		if !strings.Contains(errs[i].Message, want) {
			t.Errorf("LoadErrors[%d] = %q, want substring %q", i, errs[i], want)
		}
	}

	broken := map[string]bool{}
	for _, p := range mod.Pkgs {
		broken[p.Path] = p.Broken()
	}
	for path, want := range map[string]bool{
		"demo/a": false, "demo/bad": true, "demo/dep": true, "demo/typ": true, "demo/use": true,
	} {
		if broken[path] != want {
			t.Errorf("Broken(%s) = %v, want %v", path, broken[path], want)
		}
	}

	// Analysis still runs over the healthy remainder — and ONLY over it:
	// no analyzer findings may come out of a broken package's files.
	diags := mod.Run(All())
	if len(diags) != 1 {
		t.Fatalf("Run = %v, want exactly the walltime finding from demo/a", diags)
	}
	if diags[0].Check != "walltime" || diags[0].Pos.Filename != "a/a.go" {
		t.Errorf("Run[0] = %v, want a walltime finding in a/a.go", diags[0])
	}
}

// TestLoadMissingDependencyDiagnosed pins that an unresolvable module
// import is a driver diagnostic on the importing package, and that a
// broken package contributes no analyzer findings or facts.
func TestLoadMissingDependencyDiagnosed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport _ \"demo/gone\"\n",
	})
	mod, err := Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	errs := mod.LoadErrors()
	if len(errs) != 1 || !strings.Contains(errs[0].Message, "failed to type-check") {
		t.Errorf("LoadErrors = %v, want one missing-import type-check diagnostic", errs)
	}
	if diags := mod.Run(All()); len(diags) != 0 {
		t.Errorf("Run over a fully-broken module produced findings: %v", diags)
	}
}

// TestLoadTimingGuard is the perf gate behind `make lint`: the parallel
// driver must load and type-check the whole module inside the budget, use
// real parallelism on multi-core machines, and leave nothing unchecked.
func TestLoadTimingGuard(t *testing.T) {
	const budget = 90 * time.Second
	start := time.Now()
	mod, err := Load(filepath.Join("..", ".."))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if errs := mod.LoadErrors(); len(errs) != 0 {
		t.Fatalf("module does not load cleanly: %v", errs)
	}
	if mod.Stats.TypeChecked != mod.Stats.Packages {
		t.Errorf("TypeChecked %d != Packages %d: part of the module went unanalyzed",
			mod.Stats.TypeChecked, mod.Stats.Packages)
	}
	if runtime.NumCPU() >= 2 && mod.Stats.MaxParallel < 2 {
		t.Errorf("MaxParallel = %d on a %d-CPU machine: driver regressed to serial",
			mod.Stats.MaxParallel, runtime.NumCPU())
	}
	if elapsed > budget {
		t.Errorf("whole-module load took %v, budget %v", elapsed, budget)
	}
}

// Fixture for the maporder analyzer: map ranges whose bodies reach
// determinism-sensitive sinks (encoder, formatted stream write, event
// Emit) are findings; collect-then-sort loops, slice ranges and
// commutative accumulation are not.
package testcase

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

type recorder struct{}

func (recorder) Emit(typ string, params map[string]string) {}

func encodeEach(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m { // want maporder
		_ = enc.Encode(map[string]int{k: v})
	}
}

func printEach(m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
}

func emitEach(rec recorder, m map[string]string) {
	for k, v := range m { // want maporder
		rec.Emit(k, map[string]string{"v": v})
	}
}

// Sinks behind a synchronous closure are still reached from the loop body.
func emitViaClosure(rec recorder, m map[string]string, run func(f func())) {
	for k := range m { // want maporder
		run(func() { rec.Emit(k, nil) })
	}
}

// The idiomatic fix: collect, sort, then range the slice.
func encodeSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc := json.NewEncoder(w)
	for _, k := range keys {
		_ = enc.Encode(map[string]int{k: m[k]})
	}
}

// Commutative accumulation is order-insensitive: no finding.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressed(w io.Writer, m map[string]int) {
	//lint:ignore maporder demo: debug dump, order explicitly irrelevant
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

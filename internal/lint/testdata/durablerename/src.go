// Package testcase is the durablerename analyzer fixture. The golden test
// loads it under an import path inside internal/store (scope applies) and
// again under an unrelated path (scope does not apply, zero findings).
package testcase

import "os"

// syncDir stands in for fsio.SyncDir; the analyzer matches the callee
// name in the same function.
func syncDir(dir string) error { return nil }

// RenameUnsafe renames without fsyncing the directory.
func RenameUnsafe(a, b string) error {
	return os.Rename(a, b) // want durablerename
}

// RenameSafe pairs the rename with a directory fsync.
func RenameSafe(a, b string) error {
	if err := os.Rename(a, b); err != nil {
		return err
	}
	return syncDir(".")
}

// RenameSuppressed argues durability away explicitly.
func RenameSuppressed(a, b string) error {
	//lint:ignore durablerename fixture: scratch file outside the durability contract
	return os.Rename(a, b)
}

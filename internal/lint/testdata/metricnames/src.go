// Package testcase is the metricnames analyzer fixture: a local registry
// with Counter/Gauge/Histogram factories and a lowercase counter helper
// stand in for the real obs API (the analyzer matches by name, not import
// path, so the fixture needs no module imports).
package testcase

type instrument struct{}

func (instrument) Inc() {}

type registry struct{}

func (registry) Counter(name, help string, labels ...string) instrument   { return instrument{} }
func (registry) Gauge(name, help string, labels ...string) instrument     { return instrument{} }
func (registry) Histogram(name, help string, labels ...string) instrument { return instrument{} }

func counter(name, help string) instrument { return instrument{} }

// MGood stands in for an obs.M* registry constant; MPrefix for a
// re-export namespace prefix.
const (
	MGood   = "excovery_good_total"
	MPrefix = "excovery_node_"
)

func use(r registry, dynamic string) {
	r.Counter("excovery_bad_total", "typo'd literal") // want metricnames
	r.Gauge("excovery_bad_gauge", "another")          // want metricnames
	r.Histogram("excovery_bad_seconds", "third")      // want metricnames
	counter("excovery_bad_helper_total", "helper")    // want metricnames

	r.Counter(MGood, "constant name is fine").Inc()
	r.Gauge(MPrefix+dynamic, "composed names are out of scope")
	r.Histogram(dynamic, "forwarded variables are out of scope")
	// The help string and label literals are not names.
	r.Counter(MGood, "help text stays literal", "node", "n1")

	//lint:ignore metricnames fixture exercising the suppression path
	r.Counter("excovery_suppressed_total", "suppressed")
}

// Fixture for the rpccontract analyzer. Loaded under the import path
// "excovery/internal/xmlrpc", so the mini Server/Client/marker types here
// carry exactly the qualified names the analyzer keys on; handlers and
// call sites live in one package, exercising registration profiling
// (required vs optional vs wrapped), forwarder calls, marker peeling,
// arity mismatches, unknown methods and suppression.
package xmlrpc

// Handler is the mini handler contract.
type Handler func(params []any) (any, error)

// Server is the mini registration table.
type Server struct{ methods map[string]Handler }

// Register records a handler.
func (s *Server) Register(name string, h Handler) { s.methods[name] = h }

// Client is the mini caller.
type Client struct{ URL string }

// Call issues a call.
func (c *Client) Call(method string, params ...any) (any, error) { return nil, nil }

// WithFenceEpoch appends the fencing marker.
func WithFenceEpoch(params []any, epoch int64) []any { return params }

// WithTraceParent appends the tracing marker.
func WithTraceParent(params []any, id uint64) []any { return params }

func arg[T any](params []any, i int) (T, bool) {
	var zero T
	if i >= len(params) {
		return zero, false
	}
	v, ok := params[i].(T)
	return v, ok
}

package xmlrpc

// Remote mimics noderpc.RemoteNode: call is a forwarder (method string +
// variadic params, handed to Client.Call), so its sites are checked like
// direct Call sites.
type Remote struct{ C *Client }

func (r *Remote) call(method string, params ...any) (any, error) {
	return r.C.Call(method, WithTraceParent(params, 1)...)
}

// helper is NOT a forwarder (no Client.Call inside); its string-first
// sites must not be treated as RPC calls.
func helper(name string, params ...any) (any, error) { return nil, nil }

func useCalls(c *Client, r *Remote, m string) {
	c.Call("host.ok", "a")                                 // in range
	c.Call("host.ok", "a", 1, 2)                           // max
	c.Call("host.ok")                                      // want rpccontract
	c.Call("host.ok", "a", 1, 2, 3)                        // want rpccontract
	c.Call("host.gone", "a")                               // want rpccontract
	c.Call("node.wrapped", "n", 7)                         // exact
	c.Call("host.none")                                    // zero params ok
	c.Call("host.opaque", "anything", "goes", 1, 2, 3)     // arity unknown: name check only
	c.Call("host.ok", WithFenceEpoch([]any{"a", 1}, 9)...) // markers peel to 2
	c.Call("host.none", WithFenceEpoch(nil, 9)...)         // markers peel to 0
	c.Call("host.ok", WithFenceEpoch(nil, 9)...)           // want rpccontract
	c.Call(m, "a")                                         // non-literal method: unchecked
	r.call("node.wrapped", "n", 7)                         // forwarder, exact
	r.call("node.wrapped", "n")                            // want rpccontract
	helper("host.gone", "x")                               // not an RPC site
	//lint:ignore rpccontract drift demo: suppressed mismatch stays silent
	c.Call("node.wrapped", "n", 7, 8)
}

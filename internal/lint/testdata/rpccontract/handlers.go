package xmlrpc

import "errors"

// wrap mimics the host's dataPath/fenced/traced wrappers: the analyzer
// must look through it to the func literal's profile.
func wrap(method string, fn Handler) Handler { return fn }

// pairArgs mimics nodeRunArgs: a delegated []any helper whose required
// indices fold into the calling handler's profile.
func pairArgs(params []any) (string, int, error) {
	id, ok := arg[string](params, 0)
	run, ok2 := arg[int](params, 1)
	if !ok || !ok2 {
		return "", 0, errors.New("want (id, run)")
	}
	return id, run, nil
}

func setup(s *Server) {
	// host.ok: index 0 required, 1 optional (blank ok), 2 optional
	// (if-guarded) -> accepts 1..3 params.
	s.Register("host.ok", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, errors.New("want id")
		}
		ttl, _ := arg[int](params, 1)
		if flag, ok := arg[int](params, 2); ok && flag > 0 {
			ttl += flag
		}
		return id, nil
	})
	// node.wrapped: profile read through the wrapper and the delegated
	// helper -> exactly 2 params.
	s.Register("node.wrapped", wrap("node.wrapped", func(params []any) (any, error) {
		id, run, err := pairArgs(params)
		if err != nil {
			return nil, err
		}
		_ = run
		return id, nil
	}))
	// host.none ignores params -> exactly 0.
	s.Register("host.none", func(params []any) (any, error) {
		return "pong", nil
	})
	// host.opaque hands params to another consumer -> arity unknown, only
	// the name is checkable.
	s.Register("host.opaque", func(params []any) (any, error) {
		return len(opaque(params)), nil
	})
}

func opaque(vs []any) []any { return vs }

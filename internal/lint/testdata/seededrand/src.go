// Package testcase is the seededrand analyzer fixture.
package testcase

import (
	"math/rand"
	"time"
)

// Global draws touch the process-wide PRNG.
func Global() int {
	rand.Shuffle(3, func(i, j int) {}) // want seededrand
	return rand.Intn(10)               // want seededrand
}

// WallSeed builds an explicit source, but seeds it from the wall clock;
// the nested constructors must yield exactly one finding.
func WallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want seededrand
}

// Seeded is the sanctioned pattern: explicit state from a plumbed seed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// MethodDraws on a plumbed *rand.Rand are not global functions.
func MethodDraws(r *rand.Rand) float64 {
	return r.Float64()
}

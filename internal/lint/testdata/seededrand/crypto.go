package testcase

// crypto/rand imported under the same local name as math/rand elsewhere:
// resolution is by package path, not identifier, so nothing here fires.

import rand "crypto/rand"

// Token draws unpredictable bytes for an identifier; crypto/rand is
// deliberately unrestricted.
func Token() ([]byte, error) {
	b := make([]byte, 8)
	_, err := rand.Read(b)
	return b, err
}

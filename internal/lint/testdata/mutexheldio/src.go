// Package testcase is the mutexheldio analyzer fixture.
package testcase

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type journal struct {
	mu sync.Mutex
	rw sync.RWMutex
	f  *os.File
}

// WriteHeld performs file I/O inside an explicit Lock/Unlock pair.
func (j *journal) WriteHeld() error {
	j.mu.Lock()
	_, err := j.f.Write(nil) // want mutexheldio
	j.mu.Unlock()
	return err
}

// SleepUnderDefer shows defer j.mu.Unlock() holds to the end of the
// function: the sleep is still inside the critical section.
func (j *journal) SleepUnderDefer() {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Millisecond) // want mutexheldio
}

// ReadLocked fires for RLock-held regions too.
func (j *journal) ReadLocked() ([]byte, error) {
	j.rw.RLock()
	b, err := os.ReadFile("x") // want mutexheldio
	j.rw.RUnlock()
	return b, err
}

// AfterUnlock is the sanctioned shape: release, then block.
func (j *journal) AfterUnlock() error {
	j.mu.Lock()
	j.mu.Unlock()
	return j.f.Sync()
}

// SpawnedGoroutine bodies are separate functions with fresh lock state:
// the request runs on another goroutine, outside the critical section.
func (j *journal) SpawnedGoroutine() {
	j.mu.Lock()
	go func() {
		http.Get("http://localhost/probe")
	}()
	j.mu.Unlock()
}

// Suppressed documents a deliberate write-under-lock.
func (j *journal) Suppressed() error {
	j.mu.Lock()
	//lint:ignore mutexheldio fixture exercising the suppression path
	err := j.f.Sync()
	j.mu.Unlock()
	return err
}

// Fixture for the lockorder analyzer: a direct lock-order cycle (A/B), a
// transitive one through the call graph (C/D), a clean ordered pair (E/F)
// and a suppressed cycle (G/H). Mutex identities key on the declaring
// Type.field, so any two instances of the same pair participate.
package testcase

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func direct1(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want lockorder
	b.mu.Unlock()
	a.mu.Unlock()
}

func direct2(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func trans1(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want lockorder
	c.mu.Unlock()
}

func trans2(c *C, d *D) {
	d.mu.Lock()
	lockC(c)
	d.mu.Unlock()
}

// E/F are always taken in the same order: no cycle, no finding.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func ordered1(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func ordered2(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

// A goroutine or deferred call runs outside the current hold: no edge.
func asyncOK(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	go func() {
		e.mu.Lock()
		e.mu.Unlock()
	}()
}

// Two instances of the same type: a self-edge, deliberately not reported.
func sameType(x, y *E) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

func supp1(g *G, h *H) {
	g.mu.Lock()
	//lint:ignore lockorder demo: acknowledged cycle kept for the suppression test
	h.mu.Lock()
	h.mu.Unlock()
	g.mu.Unlock()
}

func supp2(g *G, h *H) {
	h.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}

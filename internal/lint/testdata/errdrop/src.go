// Fixture for the errdrop analyzer, loaded under the import path
// "excovery/internal/store" so the mini Journal carries the qualified
// name the analyzer keys on. Hits: discarded Sync, discarded and deferred
// Close on a write-opened file, discarded Journal appends, blank-error
// assignments. Misses: checked errors, read-side closes, and cleanup
// discards on a path that already returns an error.
package store

import "os"

// Journal stands in for the store's write-ahead journal.
type Journal struct{}

func (j *Journal) Begin(run int) error { return nil }
func (j *Journal) Done(run int) error  { return nil }
func (j *Journal) Close() error        { return nil }

func dropSync(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Sync()     // want errdrop
	_ = f.Sync() // want errdrop
	f.Close()    // want errdrop
}

func deferredClose(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want errdrop
	_, err = f.WriteString("x")
	return err
}

func journalDrop(j *Journal) {
	j.Begin(1)    // want errdrop
	_ = j.Done(1) // want errdrop
	j.Close()     // want errdrop
}

func checkedOK(path string, j *Journal) error {
	if err := j.Begin(1); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() // no finding: this path already returns an error
		return err
	}
	return f.Close()
}

func readSideOK(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// Read-side close: the kernel cannot owe us a delayed write here.
	defer f.Close()
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return err
}

func suppressedDrop(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	//lint:ignore errdrop demo: scratch file, durability irrelevant
	f.Sync()
	//lint:ignore errdrop demo: scratch file, durability irrelevant
	f.Close()
}

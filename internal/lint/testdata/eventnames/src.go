// Package testcase is the eventnames analyzer fixture: a local Emit
// method, emit helper and JournalRecord type stand in for the real
// eventlog / store APIs (the analyzer matches by name, not import path,
// so the fixture needs no module imports).
package testcase

type bus struct{}

func (bus) Emit(typ string, params map[string]string) {}

func emit(typ string) {}

type JournalRecord struct {
	Type string
	Run  int
}

// EvGood stands in for a registry constant.
const EvGood = "good_event"

func use(b bus, dynamic string) {
	b.Emit("bad_literal", nil) // want eventnames
	b.Emit(EvGood, nil)
	b.Emit(dynamic, nil)
	b.Emit(dynamic+"_stop", nil)
	emit("lowercase_literal") // want eventnames

	_ = JournalRecord{Type: "raw_type", Run: 1} // want eventnames
	_ = JournalRecord{Type: EvGood}
	_ = JournalRecord{Run: 2}

	//lint:ignore eventnames fixture exercising the suppression path
	b.Emit("suppressed_literal", nil)
}

// Package testcase is the driver-level suppression fixture: a
// //lint:ignore comment with no reason is itself a finding, and does not
// silence the diagnostic on the line it annotates.
package testcase

import "time"

// Bare omits the mandatory reason.
func Bare() time.Time {
	//lint:ignore walltime
	return time.Now()
}

// Package testcase is the walltime analyzer fixture. Lines carrying a
// "// want <check>" marker are expected findings; the golden test asserts
// the analyzer fires on exactly those lines and no others.
package testcase

import "time"

// Epoch shows that constructing instants (time.Unix, time.Date) is fine;
// only reading the running clock is restricted.
var Epoch = time.Unix(0, 0)

// Bad reads the wall clock directly.
func Bad() time.Time {
	return time.Now() // want walltime
}

// BadTwice shows every call site is reported, not just the first.
func BadTwice() time.Duration {
	a := time.Now() // want walltime
	b := time.Now() // want walltime
	return b.Sub(a)
}

// Injected stores time.Now as a value without calling it — the
// injection-seam pattern (now func() time.Time) the allowlist exists for.
func Injected() func() time.Time {
	return time.Now
}

// Suppressed documents a sanctioned wall read.
func Suppressed() time.Time {
	//lint:ignore walltime fixture exercising the suppression path
	return time.Now()
}

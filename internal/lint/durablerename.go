package lint

import (
	"go/ast"
)

// durableScope is the package subtree bound to the staged-write contract.
var durableScope = []string{"excovery/internal/store"}

// Durablerename enforces the store's durability contract (DESIGN.md §8,
// internal/store/fsio): a rename is only crash-safe once the containing
// directory is fsync'd — until then the new directory entry lives in
// volatile cache and a power cut resurrects the old file, or neither.
// Inside internal/store, every function calling os.Rename must therefore
// also fsync a directory in the same function (a call to fsio.SyncDir /
// the store's syncDir wrapper), or carry a //lint:ignore durablerename
// comment arguing why durability is not needed at that site.
func Durablerename() *Analyzer {
	return &Analyzer{
		Name: "durablerename",
		Doc:  "os.Rename in internal/store is paired with a directory fsync in the same function",
		Run:  durablerenameRun,
	}
}

func durablerenameRun(f *File) []Diagnostic {
	if !pathAllowed(f.Pkg.Path, durableScope) {
		return nil
	}
	var out []Diagnostic
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var renames []*ast.CallExpr
		synced := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := f.qualifiedCall(call); ok && pkg == "os" && name == "Rename" {
				renames = append(renames, call)
				return true
			}
			switch calleeName(call) {
			case "SyncDir", "syncDir":
				synced = true
			}
			return true
		})
		if synced {
			continue
		}
		for _, call := range renames {
			out = append(out, Diagnostic{
				Pos:   f.pos(call.Pos()),
				Check: "durablerename",
				Message: "os.Rename without a directory fsync in the same function; " +
					"route the write through fsio.WriteFileAtomic or pair it with fsio.SyncDir",
			})
		}
	}
	return out
}

package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata directory under an explicit import
// path (the path places the fixture inside or outside an analyzer's
// package scope).
func loadFixture(t *testing.T, dir, importPath string) *Module {
	t.Helper()
	mod, err := LoadPackage(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatalf("LoadPackage(%s): %v", dir, err)
	}
	return mod
}

// wantedFindings collects the fixture's "// want <check> [<check>…]"
// markers as "file:line: check" keys with expected counts.
func wantedFindings(mod *Module) map[string]int {
	want := map[string]int{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Ast.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					line := mod.Fset.Position(c.Pos()).Line
					for _, check := range strings.Fields(rest) {
						want[fmt.Sprintf("%s:%d: %s", f.Name, line, check)]++
					}
				}
			}
		}
	}
	return want
}

// checkGolden runs one analyzer over the fixture and matches the findings
// against the want markers exactly — every marker must fire on its line,
// and nothing else may fire.
func checkGolden(t *testing.T, mod *Module, a *Analyzer) []Diagnostic {
	t.Helper()
	diags := mod.Run([]*Analyzer{a})
	want := wantedFindings(mod)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Check)
		if want[key] > 0 {
			want[key]--
			continue
		}
		t.Errorf("unexpected finding: %s", d)
	}
	var missed []string
	for key, n := range want {
		for ; n > 0; n-- {
			missed = append(missed, key)
		}
	}
	sort.Strings(missed)
	for _, key := range missed {
		t.Errorf("expected finding did not fire: %s", key)
	}
	return diags
}

func TestWalltimeGolden(t *testing.T) {
	mod := loadFixture(t, "walltime", "excovery/internal/core/testcase")
	diags := checkGolden(t, mod, Walltime())
	if len(diags) == 0 {
		t.Fatal("no findings")
	}
	// Pin the full diagnostic format once: "file:line: [check] message".
	got := diags[0].String()
	want := "src.go:14: [walltime] time.Now() outside an allowed wall-clock site; " +
		"deterministic paths must read an injected vclock.Clock"
	if got != want {
		t.Errorf("diagnostic format:\n got %q\nwant %q", got, want)
	}
}

func TestWalltimeAllowlist(t *testing.T) {
	// The same fixture under an allowlisted wall-clock package is clean.
	for _, path := range []string{
		"excovery/internal/obs",
		"excovery/internal/timesync/estimator",
		"excovery/examples/twoparty",
	} {
		mod := loadFixture(t, "walltime", path)
		if diags := mod.Run([]*Analyzer{Walltime()}); len(diags) != 0 {
			t.Errorf("under %s: unexpected findings: %v", path, diags)
		}
	}
}

func TestSeededrandGolden(t *testing.T) {
	mod := loadFixture(t, "seededrand", "excovery/internal/core/testcase")
	checkGolden(t, mod, Seededrand())
}

func TestEventnamesGolden(t *testing.T) {
	mod := loadFixture(t, "eventnames", "excovery/internal/core/testcase")
	checkGolden(t, mod, Eventnames())
}

func TestMetricnamesGolden(t *testing.T) {
	mod := loadFixture(t, "metricnames", "excovery/internal/core/testcase")
	checkGolden(t, mod, Metricnames())
}

func TestDurablerenameGolden(t *testing.T) {
	mod := loadFixture(t, "durablerename", "excovery/internal/store/testcase")
	checkGolden(t, mod, Durablerename())
}

func TestDurablerenameOutOfScope(t *testing.T) {
	// Outside internal/store the staged-write contract does not apply.
	mod := loadFixture(t, "durablerename", "excovery/internal/core/testcase")
	if diags := mod.Run([]*Analyzer{Durablerename()}); len(diags) != 0 {
		t.Errorf("out of scope: unexpected findings: %v", diags)
	}
}

func TestMutexheldioGolden(t *testing.T) {
	mod := loadFixture(t, "mutexheldio", "excovery/internal/core/testcase")
	checkGolden(t, mod, Mutexheldio())
}

func TestSuppressionRequiresReason(t *testing.T) {
	// A reason-less //lint:ignore is itself reported and silences nothing.
	mod := loadFixture(t, "suppress", "excovery/internal/core/testcase")
	var got []string
	for _, d := range mod.Run([]*Analyzer{Walltime()}) {
		got = append(got, d.String())
	}
	want := []string{
		"src.go:10: [lint] suppression without a reason: //lint:ignore <check> <reason>",
		"src.go:11: [walltime] time.Now() outside an allowed wall-clock site; " +
			"deterministic paths must read an injected vclock.Clock",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("diagnostics:\n got %v\nwant %v", got, want)
	}
}

func TestRpccontractGolden(t *testing.T) {
	// The fixture is loaded AS excovery/internal/xmlrpc so the mini
	// Client/Server carry the qualified names the analyzer keys on.
	mod := loadFixture(t, "rpccontract", "excovery/internal/xmlrpc")
	diags := checkGolden(t, mod, Rpccontract())
	var sawArity, sawUnknown bool
	for _, d := range diags {
		if strings.Contains(d.Message, "passes") && strings.Contains(d.Message, "takes") {
			sawArity = true
		}
		if strings.Contains(d.Message, "unregistered XML-RPC method") {
			sawUnknown = true
		}
	}
	if !sawArity {
		t.Error("no arity-mismatch finding in golden output")
	}
	if !sawUnknown {
		t.Error("no unknown-method finding in golden output")
	}
}

func TestLockorderGolden(t *testing.T) {
	mod := loadFixture(t, "lockorder", "excovery/internal/core/testcase")
	diags := checkGolden(t, mod, Lockorder())
	for _, d := range diags {
		if !strings.Contains(d.Message, "lock-order cycle:") {
			t.Errorf("finding lacks cycle description: %s", d)
		}
	}
}

// TestLockorderSeesShardHierarchy pins the sharded scheduler's lock
// hierarchy into the module lock graph: barrier inbox installation holds
// Group.mu while calling into member schedulers that take Scheduler.mu,
// so the graph must contain the Group.mu → Scheduler.mu edge. With the
// edge modeled, any future path that locks Scheduler.mu and then calls
// back into the group becomes a reported cycle instead of a latent
// GOMAXPROCS>1 deadlock — and TestRepoClean keeps the graph acyclic.
func TestLockorderSeesShardHierarchy(t *testing.T) {
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fx := newFacts()
	for _, pkg := range mod.Pkgs {
		if pkg.broken || pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			lockorderCollect(f, fx)
		}
	}
	const groupMu = "excovery/internal/sched.Group.mu"
	const schedMu = "excovery/internal/sched.Scheduler.mu"
	acquiresSched := map[string]bool{}
	var heldUnderGroup []lockCall
	for _, key := range fx.Keys("lockorder") {
		v, _ := fx.Get("lockorder", key)
		fact := v.(*lockFnFact)
		if _, ok := fact.acquires[schedMu]; ok {
			acquiresSched[fact.name] = true
		}
		for _, h := range fact.held {
			if h.from == groupMu {
				heldUnderGroup = append(heldUnderGroup, h)
			}
		}
	}
	if len(acquiresSched) == 0 {
		t.Fatal("no function acquires Scheduler.mu; lock identities drifted")
	}
	for _, h := range heldUnderGroup {
		if acquiresSched[h.callee] {
			return // Group.mu → Scheduler.mu edge present
		}
	}
	t.Fatalf("lock graph lacks the %s → %s shard hierarchy edge (held calls under Group.mu: %v)",
		groupMu, schedMu, heldUnderGroup)
}

func TestMaporderGolden(t *testing.T) {
	mod := loadFixture(t, "maporder", "excovery/internal/core/testcase")
	checkGolden(t, mod, Maporder())
}

func TestErrdropGolden(t *testing.T) {
	mod := loadFixture(t, "errdrop", "excovery/internal/store")
	checkGolden(t, mod, Errdrop())
}

// TestRepoClean is the meta-test behind `make lint`: the full analyzer
// suite over the real module must report nothing. A finding here means
// either a genuine invariant violation or a missing //lint:ignore with a
// reason — fix the code, don't relax the analyzer.
func TestRepoClean(t *testing.T) {
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(mod.Pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(mod.Pkgs))
	}
	if errs := mod.LoadErrors(); len(errs) != 0 {
		t.Fatalf("module does not load cleanly: %v", errs)
	}
	for _, d := range mod.Run(All()) {
		t.Errorf("%s", d)
	}
}

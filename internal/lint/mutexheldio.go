package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Mutexheldio flags network calls and blocking file I/O performed while a
// mutex is held. The control-plane hot spots — the noderpc host's outbox
// and lease state, the master's accounting, the journal — share mutexes
// between the cooperative scheduler's goroutine and plain OS goroutines; a
// synchronous RPC or an fsync under such a lock turns a slow peer or disk
// into a framework-wide stall (every Emit blocks behind the host mutex).
// The scan is linear per function: a call is "held" when it appears
// between X.Lock() and the matching X.Unlock() in source order, with
// defer X.Unlock() holding to the end of the function. Function literals
// are analyzed as separate functions: their bodies usually run on another
// goroutine (go / defer / scheduler task), outside the caller's critical
// section. Deliberate exceptions — the journal's write+fsync ordering —
// carry //lint:ignore mutexheldio comments stating the reason.
func Mutexheldio() *Analyzer {
	return &Analyzer{
		Name: "mutexheldio",
		Doc:  "no network call or blocking file I/O between Lock() and Unlock() of a mutex",
		Run:  mutexheldioRun,
	}
}

// osBlockingFuncs are package-level os functions that hit the filesystem.
var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "Truncate": true,
}

// fileBlockingMethods are *os.File methods that perform disk I/O.
var fileBlockingMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Sync": true, "Truncate": true,
}

func mutexheldioRun(f *File) []Diagnostic {
	var out []Diagnostic
	for _, body := range functionBodies(f.Ast) {
		out = append(out, scanLockedRegions(f, body)...)
	}
	return out
}

// functionBodies collects every function body in the file: declarations
// plus all function literals (each analyzed with fresh lock state).
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// scanLockedRegions walks one function body in source order tracking which
// mutexes are held.
func scanLockedRegions(f *File, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	locked := map[string]int{} // mutex expr → Lock line
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			// Analyzed separately with its own lock state.
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock to the end of the function:
			// leave the map untouched and do not treat it as a release.
			// Other deferred calls are skipped too — they run at return,
			// outside this linear scan's notion of "between".
			return false
		case *ast.CallExpr:
			if mu, op := mutexOp(f, node); mu != "" {
				switch op {
				case "Lock", "RLock":
					locked[mu] = f.pos(node.Pos()).Line
				case "Unlock", "RUnlock":
					delete(locked, mu)
				}
				return true
			}
			if len(locked) == 0 {
				return true
			}
			if desc := blockingCall(f, node); desc != "" {
				mu, line := firstHeld(locked)
				out = append(out, Diagnostic{
					Pos:   f.pos(node.Pos()),
					Check: "mutexheldio",
					Message: fmt.Sprintf("%s while holding %s (locked at line %d); "+
						"release the mutex before blocking I/O", desc, mu, line),
				})
			}
		}
		return true
	})
	return out
}

// mutexOp matches mu.Lock/Unlock/RLock/RUnlock calls on sync mutexes and
// returns the mutex expression string and the operation.
func mutexOp(f *File, call *ast.CallExpr) (mutex, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	switch f.typeOf(sel.X) {
	case "sync.Mutex", "sync.RWMutex":
		return types.ExprString(sel.X), sel.Sel.Name
	}
	return "", ""
}

// blockingCall classifies a call as network or file I/O, returning a short
// description or "".
func blockingCall(f *File, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		switch f.pkgPathOf(id) {
		case "time":
			if name == "Sleep" {
				return "time.Sleep"
			}
			return ""
		case "os":
			if osBlockingFuncs[name] {
				return "os." + name
			}
			return ""
		case "io":
			if name == "ReadAll" || name == "Copy" {
				return "io." + name
			}
			return ""
		case "net":
			if strings.HasPrefix(name, "Dial") || name == "Listen" {
				return "net." + name
			}
			return ""
		case "net/http":
			switch name {
			case "Get", "Head", "Post", "PostForm":
				return "http." + name
			}
			return ""
		}
	}
	switch f.typeOf(sel.X) {
	case "excovery/internal/xmlrpc.Client":
		// Every method of the RPC client performs an HTTP exchange (Call)
		// or backs one (do).
		return "xmlrpc client ." + name
	case "net/http.Client":
		if name == "Do" {
			return "http.Client.Do"
		}
	case "os.File":
		if fileBlockingMethods[name] {
			return "os.File." + name
		}
	}
	return ""
}

// firstHeld returns the lexically smallest held mutex (deterministic
// reporting when several are held).
func firstHeld(locked map[string]int) (string, int) {
	best := ""
	for mu := range locked {
		if best == "" || mu < best {
			best = mu
		}
	}
	return best, locked[best]
}

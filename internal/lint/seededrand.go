package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// randConstructors are the math/rand functions that build explicit,
// plumbable PRNG state instead of touching the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Seededrand enforces the paper's repeatability requirement on randomness
// (§IV-C1: identical seeds replay identical treatment plans, backoff
// schedules and fault timings): no calls to global math/rand functions —
// rand.Intn, rand.Seed, rand.Float64, rand.Shuffle, … share hidden
// process-global state that makes runs order-dependent — and no PRNG
// seeded from the wall clock. Every random draw flows through a *rand.Rand
// built from a seed derived from the experiment seed. crypto/rand is not
// restricted: it feeds identifiers (session ids, idempotency key bases),
// never measurements.
func Seededrand() *Analyzer {
	return &Analyzer{
		Name: "seededrand",
		Doc:  "no global math/rand functions, no wall-clock PRNG seeds; plumb a seeded *rand.Rand",
		Run:  seededrandRun,
	}
}

func seededrandRun(f *File) []Diagnostic {
	var out []Diagnostic
	// Nested constructors (rand.New(rand.NewSource(time.Now()…))) would
	// report the same wall read once per enclosing call; dedup by position.
	seen := map[token.Pos]bool{}
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := f.qualifiedCall(call)
		if !ok || pkg != "math/rand" && pkg != "math/rand/v2" {
			return true
		}
		if !randConstructors[name] {
			out = append(out, Diagnostic{
				Pos:   f.pos(call.Pos()),
				Check: "seededrand",
				Message: fmt.Sprintf("global rand.%s uses the process-wide PRNG; "+
					"draw from a seeded *rand.Rand derived from the experiment seed", name),
			})
			return true
		}
		// rand.NewSource(time.Now().…) / rand.New(rand.NewSource(wall)):
		// an explicit source seeded from the wall clock defeats replay just
		// as thoroughly as the global PRNG.
		for _, arg := range call.Args {
			if wall := wallSeedIn(f, arg); wall != nil && !seen[wall.Pos()] {
				seen[wall.Pos()] = true
				out = append(out, Diagnostic{
					Pos:   f.pos(wall.Pos()),
					Check: "seededrand",
					Message: fmt.Sprintf("rand.%s seeded from the wall clock; "+
						"derive the seed from the experiment seed instead", name),
				})
			}
		}
		return true
	})
	return out
}

// wallSeedIn returns a time.Now() call inside expr, if any.
func wallSeedIn(f *File, expr ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, name, ok := f.qualifiedCall(call); ok && pkg == "time" && name == "Now" {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

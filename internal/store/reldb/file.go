package reldb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"excovery/internal/store/fsio"
)

// Single-file binary format:
//
//	magic "XCRDB1\n"
//	uvarint tableCount
//	per table: name, uvarint colCount, cols (name, type byte),
//	           uvarint rowCount, rows (per value: tag byte + payload)
//	uint32 CRC-32 (IEEE) of everything before the trailer
//
// Strings and blobs are uvarint-length-prefixed. The CRC makes a truncated
// or corrupted experiment file detectable when exchanged between
// researchers (§IV-F: facilitating exchange of experiments).

var magic = []byte("XCRDB1\n")

const (
	tagNil byte = iota
	tagInt
	tagFloat
	tagText
	tagBlob
	tagTime
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Save writes the database to w.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(magic); err != nil {
		return err
	}
	writeUvarint(cw, uint64(len(db.order)))
	for _, name := range db.order {
		t := db.tables[name]
		writeString(cw, name)
		writeUvarint(cw, uint64(len(t.schema.Columns)))
		for _, c := range t.schema.Columns {
			writeString(cw, c.Name)
			cw.Write([]byte{byte(c.Type)})
		}
		writeUvarint(cw, uint64(len(t.rows)))
		for _, row := range t.rows {
			for _, v := range row {
				if err := writeValue(cw, v); err != nil {
					return err
				}
			}
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a database previously written by Save.
func Load(r io.Reader) (*DB, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("reldb: file too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("reldb: checksum mismatch (corrupted file)")
	}
	rd := &reader{data: body}
	if string(rd.bytes(len(magic))) != string(magic) {
		return nil, fmt.Errorf("reldb: bad magic")
	}
	db := New()
	nTables := rd.uvarint()
	for i := uint64(0); i < nTables && rd.err == nil; i++ {
		name := rd.string()
		nCols := rd.uvarint()
		s := Schema{Name: name}
		for c := uint64(0); c < nCols && rd.err == nil; c++ {
			cn := rd.string()
			ct := Type(rd.byte())
			s.Columns = append(s.Columns, Column{Name: cn, Type: ct})
		}
		if rd.err != nil {
			break
		}
		if err := db.CreateTable(s); err != nil {
			return nil, err
		}
		nRows := rd.uvarint()
		for r := uint64(0); r < nRows && rd.err == nil; r++ {
			row := make(Row, len(s.Columns))
			for c := range row {
				row[c] = rd.value()
			}
			if rd.err == nil {
				if err := db.Insert(name, row); err != nil {
					return nil, err
				}
			}
		}
	}
	if rd.err != nil {
		return nil, fmt.Errorf("reldb: parse: %w", rd.err)
	}
	return db, nil
}

// SaveFile writes the database to path atomically and durably through the
// store's staged-write helper (temp + fsync + rename + directory fsync): a
// conditioned level-3 database handed to other researchers must survive a
// crash at any point, same as the level-2 artifacts.
func (db *DB) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return err
	}
	return fsio.WriteFileAtomic(path, buf.Bytes())
}

// OpenFile loads a database from path.
func OpenFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func writeValue(w io.Writer, v any) error {
	switch x := v.(type) {
	case nil:
		w.Write([]byte{tagNil})
	case int64:
		w.Write([]byte{tagInt})
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		w.Write(buf[:])
	case float64:
		w.Write([]byte{tagFloat})
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		w.Write(buf[:])
	case string:
		w.Write([]byte{tagText})
		writeString(w, x)
	case []byte:
		w.Write([]byte{tagBlob})
		writeUvarint(w, uint64(len(x)))
		w.Write(x)
	case time.Time:
		w.Write([]byte{tagTime})
		var buf [12]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(x.Unix()))
		binary.LittleEndian.PutUint32(buf[8:], uint32(x.Nanosecond()))
		w.Write(buf[:])
	default:
		return fmt.Errorf("reldb: cannot persist %T", v)
	}
	return nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	return string(r.bytes(int(n)))
}

func (r *reader) value() any {
	switch r.byte() {
	case tagNil:
		return nil
	case tagInt:
		b := r.bytes(8)
		if b == nil {
			return nil
		}
		return int64(binary.LittleEndian.Uint64(b))
	case tagFloat:
		b := r.bytes(8)
		if b == nil {
			return nil
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	case tagText:
		return r.string()
	case tagBlob:
		n := r.uvarint()
		return append([]byte(nil), r.bytes(int(n))...)
	case tagTime:
		b := r.bytes(12)
		if b == nil {
			return nil
		}
		sec := int64(binary.LittleEndian.Uint64(b[:8]))
		nsec := int64(binary.LittleEndian.Uint32(b[8:]))
		return time.Unix(sec, nsec).UTC()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("unknown value tag")
		}
		return nil
	}
}

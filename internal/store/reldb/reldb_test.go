package reldb

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.CreateTable(Schema{Name: "Events", Columns: []Column{
		{Name: "RunID", Type: Int64},
		{Name: "NodeID", Type: Text},
		{Name: "CommonTime", Type: Time},
		{Name: "EventType", Type: Text},
		{Name: "Parameter", Type: Text},
	}}); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 5, 19, 10, 0, 0, 0, time.UTC)
	for run := int64(0); run < 3; run++ {
		for i := int64(0); i < 4; i++ {
			err := db.Insert("Events", Row{
				run, fmt.Sprintf("n%d", i%2), base.Add(time.Duration(run*10+i) * time.Second),
				"ev" + fmt.Sprint(i), "",
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := New()
	ok := Schema{Name: "T", Columns: []Column{{Name: "a", Type: Int64}}}
	if err := db.CreateTable(ok); err != nil {
		t.Fatal(err)
	}
	cases := []Schema{
		{Name: "", Columns: ok.Columns},
		{Name: "T", Columns: ok.Columns}, // duplicate
		{Name: "U"},                      // no columns
		{Name: "V", Columns: []Column{{Name: "", Type: Int64}}},
		{Name: "W", Columns: []Column{{Name: "a", Type: Int64}, {Name: "a", Type: Text}}},
	}
	for _, s := range cases {
		if err := db.CreateTable(s); err == nil {
			t.Errorf("CreateTable(%+v) succeeded", s)
		}
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "T", Columns: []Column{
		{Name: "i", Type: Int64}, {Name: "s", Type: Text},
	}})
	if err := db.Insert("T", Row{int64(1), "x"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("T", Row{int64(1), nil}); err != nil {
		t.Fatal("nil must be allowed:", err)
	}
	bad := []Row{
		{int64(1)},            // wrong arity
		{"x", "y"},            // wrong type
		{int64(1), 2},         // int not int64
		{1.5, "x"},            // float in int col
		{int64(1), []byte{1}}, // blob in text col
		{int64(1), "x", "y"},  // too many
	}
	for _, r := range bad {
		if err := db.Insert("T", r); err == nil {
			t.Errorf("Insert(%v) succeeded", r)
		}
	}
	if err := db.Insert("Nope", Row{int64(1)}); err == nil {
		t.Error("insert into missing table succeeded")
	}
}

func TestSelectAllAndCount(t *testing.T) {
	db := sampleDB(t)
	rows, err := db.Select(Query{Table: "Events"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	if n, _ := db.Count("Events"); n != 12 {
		t.Fatalf("count = %d", n)
	}
	if _, err := db.Count("Nope"); err == nil {
		t.Fatal("Count on missing table succeeded")
	}
}

func TestSelectWhere(t *testing.T) {
	db := sampleDB(t)
	rows, err := db.Select(Query{Table: "Events", Where: []Pred{
		Eq("RunID", int64(1)), Eq("NodeID", "n0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r[0] != int64(1) || r[1] != "n0" {
			t.Fatalf("row = %v", r)
		}
	}
}

func TestSelectComparisonOps(t *testing.T) {
	db := sampleDB(t)
	for _, c := range []struct {
		op   Op
		want int
	}{
		{OpEq, 4}, {OpNe, 8}, {OpLt, 4}, {OpLe, 8}, {OpGt, 4}, {OpGe, 8},
	} {
		rows, err := db.Select(Query{Table: "Events",
			Where: []Pred{{Col: "RunID", Op: c.op, Val: int64(1)}}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != c.want {
			t.Errorf("op %d: rows = %d, want %d", c.op, len(rows), c.want)
		}
	}
}

func TestSelectOrderLimitOffset(t *testing.T) {
	db := sampleDB(t)
	rows, err := db.Select(Query{Table: "Events", OrderBy: "CommonTime", Desc: true, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].timeAt(2).After(rows[i-1].timeAt(2)) {
			t.Fatal("not descending")
		}
	}
	rows2, err := db.Select(Query{Table: "Events", OrderBy: "CommonTime", Offset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 2 {
		t.Fatalf("offset rows = %d", len(rows2))
	}
	if none, err := db.Select(Query{Table: "Events", Offset: 100}); err != nil || none != nil {
		t.Fatalf("out-of-range offset = %v, %v", none, err)
	}
}

func (r Row) timeAt(i int) time.Time { return r[i].(time.Time) }

func TestSelectErrors(t *testing.T) {
	db := sampleDB(t)
	if _, err := db.Select(Query{Table: "Nope"}); err == nil {
		t.Error("missing table")
	}
	if _, err := db.Select(Query{Table: "Events", Where: []Pred{Eq("nope", 1)}}); err == nil {
		t.Error("missing where column")
	}
	if _, err := db.Select(Query{Table: "Events", OrderBy: "nope"}); err == nil {
		t.Error("missing order column")
	}
}

func TestTypeMismatchPredicateSelectsNothing(t *testing.T) {
	db := sampleDB(t)
	rows, err := db.Select(Query{Table: "Events", Where: []Pred{Eq("RunID", "one")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestIndexEquivalence(t *testing.T) {
	db := sampleDB(t)
	plain, err := db.Select(Query{Table: "Events", Where: []Pred{Eq("NodeID", "n1")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("Events", "NodeID"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("Events", "NodeID"); err != nil {
		t.Fatal("re-index must be a no-op:", err)
	}
	indexed, err := db.Select(Query{Table: "Events", Where: []Pred{Eq("NodeID", "n1")}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, indexed) {
		t.Fatalf("index changed results:\n%v\n%v", plain, indexed)
	}
	// Index stays consistent across later inserts.
	db.Insert("Events", Row{int64(9), "n1", time.Now().UTC(), "late", ""})
	after, _ := db.Select(Query{Table: "Events", Where: []Pred{Eq("NodeID", "n1")}})
	if len(after) != len(indexed)+1 {
		t.Fatalf("index missed insert: %d vs %d", len(after), len(indexed))
	}
	if err := db.CreateIndex("Events", "nope"); err == nil {
		t.Error("index on missing column succeeded")
	}
	if err := db.CreateIndex("Nope", "NodeID"); err == nil {
		t.Error("index on missing table succeeded")
	}
}

func TestSelectOne(t *testing.T) {
	db := sampleDB(t)
	row, ok, err := db.SelectOne(Query{Table: "Events", Where: []Pred{Eq("RunID", int64(2))}})
	if err != nil || !ok || row[0] != int64(2) {
		t.Fatalf("SelectOne = %v, %v, %v", row, ok, err)
	}
	_, ok, err = db.SelectOne(Query{Table: "Events", Where: []Pred{Eq("RunID", int64(99))}})
	if err != nil || ok {
		t.Fatalf("SelectOne on empty = %v, %v", ok, err)
	}
}

func TestColAccessor(t *testing.T) {
	db := sampleDB(t)
	row, _, _ := db.SelectOne(Query{Table: "Events"})
	v, err := db.Col("Events", row, "EventType")
	if err != nil || v != "ev0" {
		t.Fatalf("Col = %v, %v", v, err)
	}
	if _, err := db.Col("Events", row, "nope"); err == nil {
		t.Error("missing column succeeded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "All", Columns: []Column{
		{Name: "i", Type: Int64}, {Name: "f", Type: Float64},
		{Name: "s", Type: Text}, {Name: "b", Type: Blob}, {Name: "t", Type: Time},
	}})
	when := time.Date(2014, 5, 19, 1, 2, 3, 456789, time.UTC)
	rows := []Row{
		{int64(-42), 3.25, "hello", []byte{0, 255, 7}, when},
		{nil, nil, nil, nil, nil},
		{int64(1 << 60), -0.0, "", []byte{}, time.Unix(0, 0).UTC()},
	}
	for _, r := range rows {
		if err := db.Insert("All", r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Select(Query{Table: "All"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range rows {
		for c := range rows[i] {
			want := rows[i][c]
			if b, ok := want.([]byte); ok && len(b) == 0 {
				// Empty and nil blobs are both acceptable as empty.
				if g, ok := got[i][c].([]byte); ok && len(g) == 0 {
					continue
				}
			}
			if wt, ok := want.(time.Time); ok {
				// Sub-microsecond precision: stored as sec+nsec.
				if !got[i][c].(time.Time).Equal(wt) {
					t.Errorf("row %d col %d: %v != %v", i, c, got[i][c], want)
				}
				continue
			}
			if !reflect.DeepEqual(got[i][c], want) {
				t.Errorf("row %d col %d: %#v != %#v", i, c, got[i][c], want)
			}
		}
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted file loaded without error")
	}
	if _, err := Load(bytes.NewReader([]byte("xx"))); err == nil {
		t.Fatal("short file loaded")
	}
}

func TestSaveFileOpenFile(t *testing.T) {
	db := sampleDB(t)
	path := filepath.Join(t.TempDir(), "exp.xcdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := db.Count("Events")
	n2, _ := db2.Count("Events")
	if n1 != n2 {
		t.Fatalf("row counts differ: %d vs %d", n1, n2)
	}
	if !reflect.DeepEqual(db.Tables(), db2.Tables()) {
		t.Fatalf("tables differ")
	}
}

// Property: any set of int64 rows survives a save/load round trip and
// Select(Eq) finds exactly the matching subset.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []int64, probe int64) bool {
		db := New()
		db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "v", Type: Int64}}})
		want := 0
		for _, v := range vals {
			db.Insert("T", Row{v})
			if v == probe {
				want++
			}
		}
		var buf bytes.Buffer
		if db.Save(&buf) != nil {
			return false
		}
		db2, err := Load(&buf)
		if err != nil {
			return false
		}
		rows, err := db2.Select(Query{Table: "T", Where: []Pred{Eq("v", probe)}})
		return err == nil && len(rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty, want := range map[Type]string{
		Int64: "int64", Float64: "float64", Text: "text", Blob: "blob", Time: "time",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %s", ty, ty)
		}
	}
}

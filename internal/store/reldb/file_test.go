package reldb

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSaveRejectsUnsupportedType(t *testing.T) {
	var b strings.Builder
	if err := writeValue(&b, struct{}{}); err == nil {
		t.Fatal("struct value persisted")
	}
}

func TestLoadBadMagic(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "a", Type: Int64}}})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	copy(data, "BADMAG!")
	// Recompute nothing: the checksum now mismatches, which is the
	// expected first line of defence.
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestLoadTruncated(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "a", Type: Text}}})
	for i := 0; i < 10; i++ {
		db.Insert("T", Row{"some text value"})
	}
	var buf bytes.Buffer
	db.Save(&buf)
	data := buf.Bytes()
	for _, cut := range []int{1, 8, len(data) / 2, len(data) - 5} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(t.TempDir() + "/nope.xcdb"); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestSaveFileBadPath(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "a", Type: Int64}}})
	if err := db.SaveFile("/nonexistent-dir-xyz/f.xcdb"); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestTimePrecisionPreserved(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "t", Type: Time}}})
	want := time.Date(2014, 5, 19, 23, 59, 59, 999999999, time.UTC)
	db.Insert("T", Row{want})
	var buf bytes.Buffer
	db.Save(&buf)
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := db2.Select(Query{Table: "T"})
	if got := rows[0][0].(time.Time); !got.Equal(want) {
		t.Fatalf("time = %v, want %v (nanosecond precision)", got, want)
	}
}

func TestEmptyDatabaseRoundTrip(t *testing.T) {
	db := New()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Tables()) != 0 {
		t.Fatalf("tables = %v", db2.Tables())
	}
}

// Package reldb is a small embedded relational database used for
// ExCovery's third storage level (§IV-F, Table I). The paper's prototype
// stores each experiment in a file-based SQLite database to "unify and
// accelerate data access and extraction methods"; reldb provides the same
// properties with the standard library only: typed tables, predicate
// selection with ordering and limits, hash indexes for equality lookups,
// and a checksummed single-file binary format so complete experiments can
// be exchanged as one file.
package reldb

import (
	"fmt"
	"sort"
	"time"
)

// Type is a column type.
type Type int

const (
	// Int64 stores signed integers.
	Int64 Type = iota
	// Float64 stores floating point numbers.
	Float64
	// Text stores strings.
	Text
	// Blob stores byte slices.
	Blob
	// Time stores timestamps with nanosecond precision.
	Time
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Text:
		return "text"
	case Blob:
		return "blob"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema describes one table.
type Schema struct {
	Name    string
	Columns []Column
}

// Row is one table row; values align with the schema's columns. Allowed
// value types: int64, float64, string, []byte, time.Time, and nil.
type Row []any

// table holds schema, rows and indexes.
type table struct {
	schema  Schema
	colIdx  map[string]int
	rows    []Row
	indexes map[string]map[any][]int // column → value → row ordinals
}

// DB is an in-memory relational database with file persistence.
type DB struct {
	tables map[string]*table
	order  []string // table creation order, for deterministic dumps
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable adds a table. Duplicate table or column names error.
func (db *DB) CreateTable(s Schema) error {
	if s.Name == "" {
		return fmt.Errorf("reldb: empty table name")
	}
	if _, dup := db.tables[s.Name]; dup {
		return fmt.Errorf("reldb: table %q exists", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("reldb: table %q has no columns", s.Name)
	}
	t := &table{schema: s, colIdx: make(map[string]int), indexes: make(map[string]map[any][]int)}
	for i, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("reldb: table %q column %d unnamed", s.Name, i)
		}
		if _, dup := t.colIdx[c.Name]; dup {
			return fmt.Errorf("reldb: table %q duplicate column %q", s.Name, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	db.tables[s.Name] = t
	db.order = append(db.order, s.Name)
	return nil
}

// Tables returns the table names in creation order.
func (db *DB) Tables() []string { return append([]string(nil), db.order...) }

// Schema returns a table's schema.
func (db *DB) Schema(name string) (Schema, error) {
	t, ok := db.tables[name]
	if !ok {
		return Schema{}, fmt.Errorf("reldb: no table %q", name)
	}
	return t.schema, nil
}

// checkValue verifies a value against a column type.
func checkValue(c Column, v any) error {
	if v == nil {
		return nil
	}
	ok := false
	switch c.Type {
	case Int64:
		_, ok = v.(int64)
	case Float64:
		_, ok = v.(float64)
	case Text:
		_, ok = v.(string)
	case Blob:
		_, ok = v.([]byte)
	case Time:
		_, ok = v.(time.Time)
	}
	if !ok {
		return fmt.Errorf("reldb: column %q wants %s, got %T", c.Name, c.Type, v)
	}
	return nil
}

// Insert appends a row. The row length and value types must match the
// schema. Insert takes ownership of row: the caller must not read or
// modify it afterwards (conditioning inserts every event and packet of an
// experiment, so the defensive copy this replaces was one allocation per
// stored measurement).
func (db *DB) Insert(tableName string, row Row) error {
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("reldb: no table %q", tableName)
	}
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("reldb: table %q wants %d values, got %d",
			tableName, len(t.schema.Columns), len(row))
	}
	for i, c := range t.schema.Columns {
		if err := checkValue(c, row[i]); err != nil {
			return err
		}
	}
	ord := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		key := indexKey(row[t.colIdx[col]])
		idx[key] = append(idx[key], ord)
	}
	return nil
}

// indexKey normalizes a value for use as an index map key. []byte is not
// comparable, so blobs are keyed by string conversion.
func indexKey(v any) any {
	if b, ok := v.([]byte); ok {
		return string(b)
	}
	return v
}

// CreateIndex builds a hash index over one column; Eq predicates on that
// column then use it.
func (db *DB) CreateIndex(tableName, column string) error {
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("reldb: no table %q", tableName)
	}
	ci, ok := t.colIdx[column]
	if !ok {
		return fmt.Errorf("reldb: table %q has no column %q", tableName, column)
	}
	if _, dup := t.indexes[column]; dup {
		return nil
	}
	idx := make(map[any][]int)
	for ord, row := range t.rows {
		key := indexKey(row[ci])
		idx[key] = append(idx[key], ord)
	}
	t.indexes[column] = idx
	return nil
}

// Count returns the number of rows in a table.
func (db *DB) Count(tableName string) (int, error) {
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("reldb: no table %q", tableName)
	}
	return len(t.rows), nil
}

// Op is a predicate comparison operator.
type Op int

const (
	// OpEq matches equal values.
	OpEq Op = iota
	// OpNe matches unequal values.
	OpNe
	// OpLt matches values less than the operand.
	OpLt
	// OpLe matches values less than or equal to the operand.
	OpLe
	// OpGt matches values greater than the operand.
	OpGt
	// OpGe matches values greater than or equal to the operand.
	OpGe
)

// Pred is one column comparison; a query's predicates are conjunctive.
type Pred struct {
	Col string
	Op  Op
	Val any
}

// Eq builds an equality predicate.
func Eq(col string, val any) Pred { return Pred{Col: col, Op: OpEq, Val: val} }

// Query selects rows from a table.
type Query struct {
	// Table is the source table.
	Table string
	// Where predicates are ANDed; empty selects all rows.
	Where []Pred
	// OrderBy sorts ascending by this column ("" keeps insertion
	// order); Desc reverses.
	OrderBy string
	Desc    bool
	// Offset/Limit window the result; Limit 0 means unlimited.
	Offset, Limit int
}

// compare orders two values of the same column type; nil sorts first.
func compare(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y := b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case []byte:
		y := b.([]byte)
		return compareBytes(x, y)
	case time.Time:
		y := b.(time.Time)
		switch {
		case x.Before(y):
			return -1
		case x.After(y):
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("reldb: uncomparable type %T", a))
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func (p Pred) match(v any) bool {
	// Type mismatches never match rather than panicking: a query with a
	// wrong-typed operand selects nothing.
	if v != nil && p.Val != nil && fmt.Sprintf("%T", v) != fmt.Sprintf("%T", p.Val) {
		return false
	}
	if v == nil || p.Val == nil {
		if p.Op == OpEq {
			return v == nil && p.Val == nil
		}
		if p.Op == OpNe {
			return (v == nil) != (p.Val == nil)
		}
		return false
	}
	c := compare(v, p.Val)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Select runs a query and returns matching rows (copies).
func (db *DB) Select(q Query) ([]Row, error) {
	t, ok := db.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("reldb: no table %q", q.Table)
	}
	for _, p := range q.Where {
		if _, ok := t.colIdx[p.Col]; !ok {
			return nil, fmt.Errorf("reldb: table %q has no column %q", q.Table, p.Col)
		}
	}
	if q.OrderBy != "" {
		if _, ok := t.colIdx[q.OrderBy]; !ok {
			return nil, fmt.Errorf("reldb: table %q has no column %q", q.Table, q.OrderBy)
		}
	}

	// Candidate row ordinals: use a hash index if an Eq predicate has
	// one, else full scan.
	var cands []int
	useIndex := false
	for _, p := range q.Where {
		if p.Op != OpEq {
			continue
		}
		if idx, has := t.indexes[p.Col]; has {
			cands = append([]int(nil), idx[indexKey(p.Val)]...)
			useIndex = true
			break
		}
	}
	if !useIndex {
		cands = make([]int, len(t.rows))
		for i := range cands {
			cands[i] = i
		}
	}

	var out []Row
	for _, ord := range cands {
		row := t.rows[ord]
		match := true
		for _, p := range q.Where {
			if !p.match(row[t.colIdx[p.Col]]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, append(Row(nil), row...))
		}
	}

	if q.OrderBy != "" {
		ci := t.colIdx[q.OrderBy]
		sort.SliceStable(out, func(i, j int) bool {
			c := compare(out[i][ci], out[j][ci])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	} else if q.Desc {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}

	if q.Offset > 0 {
		if q.Offset >= len(out) {
			return nil, nil
		}
		out = out[q.Offset:]
	}
	if q.Limit > 0 && q.Limit < len(out) {
		out = out[:q.Limit]
	}
	return out, nil
}

// SelectOne returns the first matching row; ok is false when none match.
func (db *DB) SelectOne(q Query) (Row, bool, error) {
	q.Limit = 1
	rows, err := db.Select(q)
	if err != nil || len(rows) == 0 {
		return nil, false, err
	}
	return rows[0], true, nil
}

// Col extracts a named column value from a row of the given table.
func (db *DB) Col(tableName string, row Row, col string) (any, error) {
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("reldb: no table %q", tableName)
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("reldb: table %q has no column %q", tableName, col)
	}
	return row[ci], nil
}

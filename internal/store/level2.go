// Package store implements ExCovery's four storage levels (§IV-F):
//
//	level 1 — the abstract experiment description (an XML document,
//	          provided by package desc);
//	level 2 — intermediate per-run storage of all raw measurements, a
//	          file-system hierarchy of per-node event logs, packet
//	          captures, log files and plugin measurements;
//	level 3 — one relational database per experiment with the schema of
//	          Table I, filled by the conditioning step that unifies all
//	          timestamps onto the master's reference time base;
//	level 4 — a repository integrating multiple experiments (the paper
//	          leaves this to future work; a basic implementation is
//	          provided here).
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/netem"
	"excovery/internal/timesync"
)

// Level-2 layout below the experiment directory:
//
//	runs/<run>/<node>/events.jsonl
//	runs/<run>/<node>/packets.jsonl
//	runs/<run>/<node>/log.txt
//	runs/<run>/<node>/extra/<name>
//	runs/<run>/sync.jsonl            (master's time-sync measurements)
//	runs/<run>/runinfo.json
//	experiment/<node>/<name>         (experiment-wide measurements)
//	description.xml                  (level 1, copied for transparency)

// RunStore is the level-2 intermediate storage for one experiment.
type RunStore struct {
	// Dir is the experiment directory.
	Dir string
}

// NewRunStore creates (or reuses) the experiment directory.
func NewRunStore(dir string) (*RunStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &RunStore{Dir: dir}, nil
}

func (rs *RunStore) runDir(run int, node string) string {
	return filepath.Join(rs.Dir, "runs", strconv.Itoa(run), node)
}

// WriteDescription stores the level-1 document alongside the raw data.
func (rs *RunStore) WriteDescription(xml string) error {
	return os.WriteFile(filepath.Join(rs.Dir, "description.xml"), []byte(xml), 0o644)
}

// ReadDescription returns the stored level-1 document.
func (rs *RunStore) ReadDescription() (string, error) {
	b, err := os.ReadFile(filepath.Join(rs.Dir, "description.xml"))
	return string(b), err
}

// WriteEvents appends a node's recorded events of one run.
func (rs *RunStore) WriteEvents(run int, node string, events []eventlog.Event) error {
	return appendJSONL(filepath.Join(rs.runDir(run, node), "events.jsonl"), events)
}

// ForEachEvent streams a node's events of one run in file order. The
// pointed-to Event is reused between calls; callers that retain it must
// copy the value. A single decoder is shared across the whole file, which
// keeps conditioning from paying encoding/json's per-call scanner setup
// for every line.
func (rs *RunStore) ForEachEvent(run int, node string, fn func(ev *eventlog.Event) error) error {
	path := filepath.Join(rs.runDir(run, node), "events.jsonl")
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	var ev eventlog.Event
	for dec.More() {
		ev = eventlog.Event{}
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := fn(&ev); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// ReadEvents loads a node's events of one run.
func (rs *RunStore) ReadEvents(run int, node string) ([]eventlog.Event, error) {
	var out []eventlog.Event
	err := rs.ForEachEvent(run, node, func(ev *eventlog.Event) error {
		out = append(out, *ev)
		return nil
	})
	return out, err
}

// PacketRecord is the serialized form of one captured packet (§IV-B2): a
// local timestamp, a unique identifier, source and destination and the
// content.
type PacketRecord struct {
	Time time.Time `json:"time"`
	Dir  string    `json:"dir"`
	// Node is the capturing node (where this tx/rx was observed).
	Node string         `json:"node,omitempty"`
	ID   uint64         `json:"id"`
	Tag  uint16         `json:"tag"`
	Src  string         `json:"src"`
	Dst  string         `json:"dst"`
	Data []byte         `json:"data"`
	Path []netem.NodeID `json:"path,omitempty"`
}

// FromCapture converts a netem capture.
func FromCapture(c netem.Capture) PacketRecord {
	return PacketRecord{
		Time: c.Time,
		Dir:  c.Dir.String(),
		Node: string(c.Node),
		ID:   c.Pkt.ID,
		Tag:  c.Pkt.Tag,
		Src:  string(c.Pkt.Src),
		Dst:  c.Pkt.Dst.String(),
		Data: c.Pkt.Payload,
		Path: c.Pkt.Path,
	}
}

// WritePackets appends a node's packet captures of one run.
func (rs *RunStore) WritePackets(run int, node string, pkts []PacketRecord) error {
	return appendJSONL(filepath.Join(rs.runDir(run, node), "packets.jsonl"), pkts)
}

// packetMeta is the subset of PacketRecord that conditioning decodes: the
// stored line itself becomes the Packets.Data blob, so the payload, path
// and identifier fields never need parsing.
type packetMeta struct {
	Time time.Time `json:"time"`
	Src  string    `json:"src"`
}

// ForEachPacketLine streams a node's packet captures of one run, yielding
// each record's capture time, source node, and the raw stored line. The
// line is a view into a shared buffer, valid only during the call. The
// decoder and the line scan advance in lockstep, which holds because
// appendJSONL writes exactly one JSON value per line.
func (rs *RunStore) ForEachPacketLine(run int, node string, fn func(t time.Time, src string, line []byte) error) error {
	path := filepath.Join(rs.runDir(run, node), "packets.jsonl")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	for start := 0; start < len(data); {
		var line []byte
		if end := bytes.IndexByte(data[start:], '\n'); end < 0 {
			line = data[start:]
			start = len(data)
		} else {
			line = data[start : start+end]
			start += end + 1
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var m packetMeta
		if err := dec.Decode(&m); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := fn(m.Time, m.Src, line); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// ReadPackets loads a node's packet captures of one run.
func (rs *RunStore) ReadPackets(run int, node string) ([]PacketRecord, error) {
	var out []PacketRecord
	err := rs.ForEachPacketLine(run, node, func(_ time.Time, _ string, line []byte) error {
		var p PacketRecord
		if err := json.Unmarshal(line, &p); err != nil {
			return err
		}
		out = append(out, p)
		return nil
	})
	return out, err
}

// AppendLog appends to a node's free-form log file for a run.
func (rs *RunStore) AppendLog(run int, node, text string) error {
	dir := rs.runDir(run, node)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, "log.txt"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(text); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLog returns a node's log file for a run ("" if none).
func (rs *RunStore) ReadLog(run int, node string) (string, error) {
	b, err := os.ReadFile(filepath.Join(rs.runDir(run, node), "log.txt"))
	if os.IsNotExist(err) {
		return "", nil
	}
	return string(b), err
}

// WriteExtra stores a plugin measurement for a run (§IV-B5: plugins have a
// separate storage location).
func (rs *RunStore) WriteExtra(run int, node, name string, content []byte) error {
	dir := filepath.Join(rs.runDir(run, node), "extra")
	path := filepath.Join(dir, name)
	err := os.WriteFile(path, content, 0o644)
	if err != nil && os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		err = os.WriteFile(path, content, 0o644)
	}
	return err
}

// ExtraMeasurement is one plugin measurement.
type ExtraMeasurement struct {
	Run     int
	Node    string
	Name    string
	Content []byte
}

// ListExtras returns all plugin measurements of a run.
func (rs *RunStore) ListExtras(run int) ([]ExtraMeasurement, error) {
	runRoot := filepath.Join(rs.Dir, "runs", strconv.Itoa(run))
	nodes, err := os.ReadDir(runRoot)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []ExtraMeasurement
	for _, nd := range nodes {
		if !nd.IsDir() {
			continue
		}
		extraDir := filepath.Join(runRoot, nd.Name(), "extra")
		files, err := os.ReadDir(extraDir)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			content, err := os.ReadFile(filepath.Join(extraDir, f.Name()))
			if err != nil {
				return nil, err
			}
			out = append(out, ExtraMeasurement{Run: run, Node: nd.Name(), Name: f.Name(), Content: content})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// WriteExperimentMeasurement stores an experiment-wide named measurement.
func (rs *RunStore) WriteExperimentMeasurement(node, name string, content []byte) error {
	dir := filepath.Join(rs.Dir, "experiment", node)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), content, 0o644)
}

// ListExperimentMeasurements returns all experiment-wide measurements.
func (rs *RunStore) ListExperimentMeasurements() ([]ExtraMeasurement, error) {
	root := filepath.Join(rs.Dir, "experiment")
	nodes, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []ExtraMeasurement
	for _, nd := range nodes {
		files, err := os.ReadDir(filepath.Join(root, nd.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			content, err := os.ReadFile(filepath.Join(root, nd.Name(), f.Name()))
			if err != nil {
				return nil, err
			}
			out = append(out, ExtraMeasurement{Run: -1, Node: nd.Name(), Name: f.Name(), Content: content})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// RunInfo records a run's start time and per-node clock offsets, feeding
// the RunInfos table (Table I: RunID, NodeID, StartTime, TimeDiff).
type RunInfo struct {
	Run     int                    `json:"run"`
	Start   time.Time              `json:"start"`
	Offsets []timesync.Measurement `json:"offsets"`
	// Attempts is the number of in-place attempts the run consumed.
	Attempts int `json:"attempts,omitempty"`
	// Partial marks measurements harvested from a run that failed or was
	// aborted: usable for post-mortems, but the run is not marked done,
	// so a resumed session re-executes it.
	Partial bool `json:"partial,omitempty"`
	// Aborted and Err describe why a partial run ended.
	Aborted bool   `json:"aborted,omitempty"`
	Err     string `json:"err,omitempty"`
}

// WriteRunInfo stores the run metadata and time-sync measurements.
func (rs *RunStore) WriteRunInfo(info RunInfo) error {
	dir := filepath.Join(rs.Dir, "runs", strconv.Itoa(info.Run))
	b, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "runinfo.json")
	err = os.WriteFile(path, b, 0o644)
	if err != nil && os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		err = os.WriteFile(path, b, 0o644)
	}
	return err
}

// ReadRunInfo loads a run's metadata.
func (rs *RunStore) ReadRunInfo(run int) (RunInfo, error) {
	var info RunInfo
	b, err := os.ReadFile(filepath.Join(rs.Dir, "runs", strconv.Itoa(run), "runinfo.json"))
	if err != nil {
		return info, err
	}
	err = json.Unmarshal(b, &info)
	return info, err
}

// Runs lists the run ids present in the store, sorted.
func (rs *RunStore) Runs() ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(rs.Dir, "runs"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, err := strconv.Atoi(e.Name()); err == nil {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// RunNodes lists the node directories of a run, sorted.
func (rs *RunStore) RunNodes(run int) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(rs.Dir, "runs", strconv.Itoa(run)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// appendJSONL writes one JSON value per line. Encoding through *T keeps
// the elements from being boxed into interfaces one by one (the former
// []any conversion heap-copied every event and packet record).
func appendJSONL[T any](path string, items []T) error {
	// Open first, create the directory only on ENOENT: in the steady state
	// (second and later files of a run directory) this saves the MkdirAll
	// stat chain per append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil && os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err = os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	}
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range items {
		if err := enc.Encode(&items[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MarkRunDone records that a run completed, enabling resume-after-abort:
// a restarted experiment skips runs marked done (§VII: ExCovery "recovers
// from failures by resuming aborted runs").
//
// The marker (and its directory entry) is fsync'd before return, making
// completion an at-least-once guarantee: once MarkRunDone returns, no
// crash can lose the marker, so a completed run is never re-executed; a
// crash *during* the call may lose it, in which case a resumed session
// re-executes the run — after the journal replay discards its partial
// state — rather than skipping work that may not be durable.
func (rs *RunStore) MarkRunDone(run int) error {
	dir := filepath.Join(rs.Dir, "runs", strconv.Itoa(run))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, "done"), []byte("done\n"))
}

// RunDone reports whether a run was marked done.
func (rs *RunStore) RunDone(run int) bool {
	_, err := os.Stat(filepath.Join(rs.Dir, "runs", strconv.Itoa(run), "done"))
	return err == nil
}

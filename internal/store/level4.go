package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Repository is the fourth storage level: an integration of multiple
// level-3 experiment packages "to facilitate comparison and analysis
// covering multiple experiments" (§IV-F). The paper does not realize this
// level; this basic implementation stores one level-3 file per experiment
// in a directory and offers enumeration and cross-experiment iteration.
type Repository struct {
	// Dir is the repository directory.
	Dir string
}

// repoExt is the file extension of stored experiment packages.
const repoExt = ".xcdb"

// OpenRepository creates or opens a repository directory.
func OpenRepository(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Repository{Dir: dir}, nil
}

func (r *Repository) path(name string) string {
	return filepath.Join(r.Dir, name+repoExt)
}

// Add stores an experiment under a name; an existing package with the same
// name is an error (experiments are immutable once stored).
func (r *Repository) Add(name string, e *ExperimentDB) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("store: invalid experiment name %q", name)
	}
	p := r.path(name)
	if _, err := os.Stat(p); err == nil {
		return fmt.Errorf("store: experiment %q already in repository", name)
	}
	return e.Save(p)
}

// List returns the stored experiment names, sorted.
func (r *Repository) List() ([]string, error) {
	entries, err := os.ReadDir(r.Dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), repoExt) {
			out = append(out, strings.TrimSuffix(e.Name(), repoExt))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Open loads one stored experiment.
func (r *Repository) Open(name string) (*ExperimentDB, error) {
	return OpenExperimentDB(r.path(name))
}

// Remove deletes a stored experiment.
func (r *Repository) Remove(name string) error {
	return os.Remove(r.path(name))
}

// ForEach opens every stored experiment in name order and calls fn; the
// iteration stops at the first error.
func (r *Repository) ForEach(fn func(name string, e *ExperimentDB) error) error {
	names, err := r.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		e, err := r.Open(n)
		if err != nil {
			return fmt.Errorf("store: open %q: %w", n, err)
		}
		if err := fn(n, e); err != nil {
			return err
		}
	}
	return nil
}

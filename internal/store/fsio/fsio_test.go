package fsio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Overwrite must replace the content and leave no temp files behind.
	if err := WriteFileAtomic(path, []byte("v2-longer")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2-longer" {
		t.Fatalf("read back: %q, %v", b, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "f.bin" {
		t.Fatalf("leftover files in %s: %v", dir, entries)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	// The contract requires the containing directory to exist: callers
	// (store.atomicWriteFile) decide whether to create it.
	path := filepath.Join(t.TempDir(), "missing", "f.bin")
	if err := WriteFileAtomic(path, []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

// Package fsio is the single implementation of the store's staged-write
// durability contract (DESIGN.md §8): data reaches its final name only via
// write-to-temp → fsync(file) → rename → fsync(directory). Both the
// level-2 RunStore and the level-3 reldb persistence route through this
// package, so the contract lives in one place and the durablerename
// analyzer (internal/lint) can hold every other os.Rename in the store to
// it.
package fsio

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to a sibling temp file, fsyncs it, renames
// it over path and fsyncs the containing directory: after it returns, a
// crash leaves either the previous file or the new one — never a torn or
// unnamed write. The containing directory must exist.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a preceding rename/create in it is
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"excovery/internal/eventlog"
)

func TestJournalReplayLifecycle(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Run 0: clean completion. Run 1: failed attempt, then success.
	// Run 2: begin with no end — the crash case.
	j.Begin(0, 1, 42, 0)
	j.End(0, 1, "ok", "")
	j.Done(0)
	j.Begin(1, 1, 43, 1)
	j.End(1, 1, "failed", "boom")
	j.Begin(1, 2, 43, 1)
	j.End(1, 2, "ok", "")
	j.Done(1)
	j.Begin(2, 1, 44, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rp := j2.Replay()
	if rp.Records != 9 {
		t.Fatalf("records = %d, want 9", rp.Records)
	}
	if !rp.Done[0] || !rp.Done[1] || rp.Done[2] {
		t.Fatalf("done = %v", rp.Done)
	}
	if !rp.Dangling[2] || rp.Dangling[0] || rp.Dangling[1] {
		t.Fatalf("dangling = %v", rp.Dangling)
	}
	if !rp.InDoubt(2) || rp.InDoubt(0) || rp.InDoubt(1) {
		t.Fatal("InDoubt disagrees with replay state")
	}
	if rp.Attempts[1] != 2 {
		t.Fatalf("attempts[1] = %d, want 2", rp.Attempts[1])
	}
	// New appends continue the sequence.
	j2.End(2, 1, "aborted", "")
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	rp3 := j3.Replay()
	if rp3.Dangling[2] || !rp3.Ended[2] || !rp3.InDoubt(2) {
		t.Fatalf("after end: dangling=%v ended=%v", rp3.Dangling, rp3.Ended)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Begin(0, 1, 1, 0)
	j.End(0, 1, "ok", "")
	j.Done(0)
	j.Close()

	// Simulate a crash mid-append: a half-written final record.
	f, err := os.OpenFile(JournalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"type":"run_attempt_beg`)
	f.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer j2.Close()
	rp := j2.Replay()
	if !rp.Truncated || rp.Records != 3 || !rp.Done[0] {
		t.Fatalf("replay = %+v", rp)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir)
	j.Begin(0, 1, 1, 0)
	j.Close()
	data, _ := os.ReadFile(JournalPath(dir))
	os.WriteFile(JournalPath(dir), append([]byte("garbage not json\n"), data...), 0o644)
	if _, err := OpenJournal(dir); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	if err := j.Begin(0, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.End(0, 1, "ok", ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(0); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 0 || j.Replay().InDoubt(0) {
		t.Fatal("nil journal not inert")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestManifestVerify(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := PlanManifest{DescriptionHash: HashDescription("<x/>"), Seed: 7, PlanLen: 12, PlatformSeed: 41}
	// No manifest yet: verification is trivial (pre-journal stores).
	if err := rs.VerifyManifest(m); err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	if err := rs.VerifyManifest(m); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*PlanManifest)
	}{
		{"description", func(p *PlanManifest) { p.DescriptionHash = HashDescription("<y/>") }},
		{"seed", func(p *PlanManifest) { p.Seed = 8 }},
		{"plan length", func(p *PlanManifest) { p.PlanLen = 13 }},
		{"platform seed", func(p *PlanManifest) { p.PlatformSeed = 42 }},
	} {
		bad := m
		tc.mut(&bad)
		err := rs.VerifyManifest(bad)
		if err == nil || !strings.Contains(err.Error(), "resume refused") {
			t.Fatalf("%s mismatch: err = %v", tc.name, err)
		}
	}
	// A zero platform seed on either side (no emulated platform, or a
	// pre-field manifest) is not verified.
	unset := m
	unset.PlatformSeed = 0
	if err := rs.VerifyManifest(unset); err != nil {
		t.Fatalf("zero platform seed verified: %v", err)
	}
}

func TestStagedHarvestCommitsAtomically(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := rs.StageRun(3)
	if err != nil {
		t.Fatal(err)
	}
	st := sr.Store()
	if err := st.WriteEvents(3, "A", []eventlog.Event{{Node: "A", Type: "ev"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteRunInfo(RunInfo{Run: 3}); err != nil {
		t.Fatal(err)
	}
	// Nothing visible in the real store before commit, and run listing
	// ignores the staging directory.
	if runs, _ := rs.Runs(); len(runs) != 0 {
		t.Fatalf("runs before commit = %v", runs)
	}
	if err := sr.Commit(); err != nil {
		t.Fatal(err)
	}
	if runs, _ := rs.Runs(); len(runs) != 1 || runs[0] != 3 {
		t.Fatalf("runs after commit = %v", runs)
	}
	evs, err := rs.ReadEvents(3, "A")
	if err != nil || len(evs) != 1 {
		t.Fatalf("events = %v, %v", evs, err)
	}
	if _, err := os.Stat(filepath.Join(rs.Dir, "runs", ".staging-3")); !os.IsNotExist(err) {
		t.Fatal("staging directory left behind")
	}
}

func TestStagedHarvestSupersedesPartialDir(t *testing.T) {
	rs, _ := NewRunStore(t.TempDir())
	// A half-written run dir from a crashed in-place harvest.
	if err := rs.WriteEvents(1, "A", []eventlog.Event{{Node: "A", Type: "stale"}}); err != nil {
		t.Fatal(err)
	}
	sr, err := rs.StageRun(1)
	if err != nil {
		t.Fatal(err)
	}
	sr.Store().WriteEvents(1, "A", []eventlog.Event{{Node: "A", Type: "fresh"}})
	if err := sr.Commit(); err != nil {
		t.Fatal(err)
	}
	evs, _ := rs.ReadEvents(1, "A")
	if len(evs) != 1 || evs[0].Type != "fresh" {
		t.Fatalf("committed events = %v", evs)
	}
}

func TestDiscardRunRefusesDone(t *testing.T) {
	rs, _ := NewRunStore(t.TempDir())
	rs.WriteEvents(0, "A", []eventlog.Event{{Node: "A", Type: "ev"}})
	rs.MarkRunDone(0)
	if err := rs.DiscardRun(0); err == nil {
		t.Fatal("discarded a completed run")
	}
	rs.WriteEvents(1, "A", []eventlog.Event{{Node: "A", Type: "ev"}})
	if err := rs.DiscardRun(1); err != nil {
		t.Fatal(err)
	}
	if runs, _ := rs.Runs(); len(runs) != 1 || runs[0] != 0 {
		t.Fatalf("runs after discard = %v", runs)
	}
}

package store

import (
	"strings"
	"testing"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/netem"
	"excovery/internal/store/reldb"
	"excovery/internal/timesync"
)

var base = time.Date(2014, 5, 19, 12, 0, 0, 0, time.UTC)

// fillStore builds a two-run, two-node level-2 store with skewed node
// clocks: node B's local timestamps lead the reference by 100 ms.
func fillStore(t *testing.T, dir string) *RunStore {
	t.Helper()
	rs, err := NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteDescription("<experiment name=\"t\" />"); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		start := base.Add(time.Duration(run) * time.Minute)
		info := RunInfo{Run: run, Start: start, Offsets: []timesync.Measurement{
			{Node: "A", Offset: 0},
			{Node: "B", Offset: 100 * time.Millisecond},
		}}
		if err := rs.WriteRunInfo(info); err != nil {
			t.Fatal(err)
		}
		// A publishes at +1s reference; B records discovery at +1.2s
		// reference, i.e. +1.3s on its fast local clock.
		evA := eventlog.Event{Run: run, Node: "A", Time: start.Add(time.Second),
			Type: "sd_start_publish", Params: map[string]string{"service": "s"}}
		evB := eventlog.Event{Run: run, Node: "B", Time: start.Add(1300 * time.Millisecond),
			Type: "sd_service_add", Params: map[string]string{"service": "s", "node": "A"}}
		if err := rs.WriteEvents(run, "A", []eventlog.Event{evA}); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteEvents(run, "B", []eventlog.Event{evB}); err != nil {
			t.Fatal(err)
		}
		if err := rs.WritePackets(run, "A", []PacketRecord{{
			Time: start.Add(time.Second), Dir: "tx", ID: 1, Src: "A", Dst: "mcast:mdns",
			Data: []byte("announce"),
		}}); err != nil {
			t.Fatal(err)
		}
		if err := rs.WritePackets(run, "B", []PacketRecord{{
			Time: start.Add(1102 * time.Millisecond), Dir: "rx", ID: 1, Src: "A", Dst: "mcast:mdns",
			Data: []byte("announce"), Path: []netem.NodeID{"A", "B"},
		}}); err != nil {
			t.Fatal(err)
		}
		if err := rs.AppendLog(run, "A", "run log line\n"); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteExtra(run, "B", "cpu.txt", []byte("42%")); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.WriteExperimentMeasurement("master", "topology.txt", []byte("A-B 1 hop")); err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestLevel2RoundTrip(t *testing.T) {
	rs := fillStore(t, t.TempDir())
	runs, err := rs.Runs()
	if err != nil || len(runs) != 2 {
		t.Fatalf("runs = %v, %v", runs, err)
	}
	nodes, err := rs.RunNodes(0)
	if err != nil || strings.Join(nodes, ",") != "A,B" {
		t.Fatalf("nodes = %v, %v", nodes, err)
	}
	evs, err := rs.ReadEvents(0, "B")
	if err != nil || len(evs) != 1 || evs[0].Type != "sd_service_add" {
		t.Fatalf("events = %v, %v", evs, err)
	}
	pkts, err := rs.ReadPackets(0, "B")
	if err != nil || len(pkts) != 1 || pkts[0].Src != "A" {
		t.Fatalf("packets = %v, %v", pkts, err)
	}
	if log, _ := rs.ReadLog(0, "A"); log != "run log line\n" {
		t.Fatalf("log = %q", log)
	}
	if log, _ := rs.ReadLog(0, "Z"); log != "" {
		t.Fatalf("missing log = %q", log)
	}
	extras, err := rs.ListExtras(0)
	if err != nil || len(extras) != 1 || extras[0].Name != "cpu.txt" {
		t.Fatalf("extras = %v, %v", extras, err)
	}
	info, err := rs.ReadRunInfo(1)
	if err != nil || len(info.Offsets) != 2 {
		t.Fatalf("runinfo = %+v, %v", info, err)
	}
	desc, err := rs.ReadDescription()
	if err != nil || !strings.Contains(desc, "experiment") {
		t.Fatalf("description = %q, %v", desc, err)
	}
	ems, err := rs.ListExperimentMeasurements()
	if err != nil || len(ems) != 1 || ems[0].Node != "master" {
		t.Fatalf("experiment measurements = %v, %v", ems, err)
	}
}

func TestEmptyStoreReads(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if runs, err := rs.Runs(); err != nil || runs != nil {
		t.Fatalf("Runs = %v, %v", runs, err)
	}
	if evs, err := rs.ReadEvents(0, "X"); err != nil || evs != nil {
		t.Fatalf("ReadEvents = %v, %v", evs, err)
	}
	if ex, err := rs.ListExtras(3); err != nil || ex != nil {
		t.Fatalf("ListExtras = %v, %v", ex, err)
	}
}

func TestConditionBuildsTableI(t *testing.T) {
	rs := fillStore(t, t.TempDir())
	e, err := Condition(rs, Meta{ExpXML: "<x/>", Name: "exp1", Comment: "c"})
	if err != nil {
		t.Fatal(err)
	}
	// All Table I tables exist.
	want := []string{"ExperimentInfo", "Logs", "EEFiles", "ExperimentMeasurements",
		"RunInfos", "ExtraRunMeasurements", "Events", "Packets"}
	got := e.DB.Tables()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing table %s (have %v)", w, got)
		}
	}
	info, err := e.Info()
	if err != nil || info.Name != "exp1" {
		t.Fatalf("Info = %+v, %v", info, err)
	}
	if n, _ := e.DB.Count("Events"); n != 4 {
		t.Fatalf("Events rows = %d", n)
	}
	if n, _ := e.DB.Count("Packets"); n != 4 {
		t.Fatalf("Packets rows = %d", n)
	}
	if n, _ := e.DB.Count("RunInfos"); n != 4 {
		t.Fatalf("RunInfos rows = %d", n)
	}
	if n, _ := e.DB.Count("Logs"); n != 1 {
		t.Fatalf("Logs rows = %d", n)
	}
	if n, _ := e.DB.Count("ExtraRunMeasurements"); n != 2 {
		t.Fatalf("Extra rows = %d", n)
	}
	if n, _ := e.DB.Count("ExperimentMeasurements"); n != 1 {
		t.Fatalf("ExperimentMeasurements rows = %d", n)
	}
	runs, err := e.RunIDs()
	if err != nil || len(runs) != 2 {
		t.Fatalf("RunIDs = %v, %v", runs, err)
	}
}

func TestConditioningCorrectsTimeBase(t *testing.T) {
	rs := fillStore(t, t.TempDir())
	e, err := Condition(rs, Meta{Name: "exp1"})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := e.EventsOfRun(0)
	if err != nil || len(evs) != 2 {
		t.Fatalf("events = %v, %v", evs, err)
	}
	// Order on the common time base: publish (A, +1s) before discovery
	// (B, +1.2s after correction of the 100ms skew).
	if evs[0].Type != "sd_start_publish" || evs[1].Type != "sd_service_add" {
		t.Fatalf("order = %s, %s", evs[0].Type, evs[1].Type)
	}
	gap := evs[1].Time.Sub(evs[0].Time)
	if gap != 200*time.Millisecond {
		t.Fatalf("conditioned gap = %v, want 200ms (skew removed)", gap)
	}
	// Without conditioning the raw gap would have been 300ms.
	raw, _ := rs.ReadEvents(0, "B")
	rawGap := raw[0].Time.Sub(base.Add(time.Second))
	if rawGap != 300*time.Millisecond {
		t.Fatalf("raw gap = %v", rawGap)
	}
	// No causality violation: the rx capture (B) must not precede the tx
	// capture (A) on the common base.
	pkts, err := e.PacketsOfRun(0)
	if err != nil || len(pkts) != 2 {
		t.Fatalf("packets = %v, %v", pkts, err)
	}
	if pkts[0].Dir != "tx" || pkts[1].Dir != "rx" {
		t.Fatalf("packet order: %s before %s", pkts[0].Dir, pkts[1].Dir)
	}
	if pkts[1].Time.Before(pkts[0].Time) {
		t.Fatal("effect precedes cause after conditioning")
	}
}

func TestExperimentDBSaveLoad(t *testing.T) {
	rs := fillStore(t, t.TempDir())
	e, err := Condition(rs, Meta{ExpXML: "<x/>", Name: "exp1"})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/exp1.xcdb"
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	e2, err := OpenExperimentDB(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := e2.EventsOfRun(1)
	if err != nil || len(evs) != 2 {
		t.Fatalf("loaded events = %v, %v", evs, err)
	}
	if evs[1].Params["node"] != "A" {
		t.Fatalf("params lost: %v", evs[1].Params)
	}
}

func TestDecodeParams(t *testing.T) {
	if DecodeParams("") != nil {
		t.Fatal("empty should be nil")
	}
	if DecodeParams("not json") != nil {
		t.Fatal("garbage should be nil")
	}
	m := DecodeParams(`{"a":"1"}`)
	if m["a"] != "1" {
		t.Fatalf("m = %v", m)
	}
	if got := encodeParams(nil); got != "" {
		t.Fatalf("encodeParams(nil) = %q", got)
	}
}

func TestRepository(t *testing.T) {
	repo, err := OpenRepository(t.TempDir() + "/repo")
	if err != nil {
		t.Fatal(err)
	}
	rs := fillStore(t, t.TempDir())
	e, err := Condition(rs, Meta{Name: "exp1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("exp1", e); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("exp1", e); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := repo.Add("bad/name", e); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := repo.Add("exp2", e); err != nil {
		t.Fatal(err)
	}
	names, err := repo.List()
	if err != nil || strings.Join(names, ",") != "exp1,exp2" {
		t.Fatalf("List = %v, %v", names, err)
	}
	opened, err := repo.Open("exp1")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := opened.DB.Count("Events"); n != 4 {
		t.Fatalf("opened Events = %d", n)
	}
	visited := 0
	err = repo.ForEach(func(name string, e *ExperimentDB) error {
		visited++
		_, err := e.RunIDs()
		return err
	})
	if err != nil || visited != 2 {
		t.Fatalf("ForEach visited %d, %v", visited, err)
	}
	if err := repo.Remove("exp2"); err != nil {
		t.Fatal(err)
	}
	names, _ = repo.List()
	if len(names) != 1 {
		t.Fatalf("after remove: %v", names)
	}
}

func TestEventsQueryByTypeViaDB(t *testing.T) {
	rs := fillStore(t, t.TempDir())
	e, err := Condition(rs, Meta{Name: "exp1"})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.DB.Select(reldb.Query{
		Table: "Events",
		Where: []reldb.Pred{reldb.Eq("EventType", "sd_service_add")},
	})
	if err != nil || len(rows) != 2 {
		t.Fatalf("typed select = %d rows, %v", len(rows), err)
	}
}

func TestConditionRequiresRunInfo(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Events exist but no runinfo: conditioning cannot establish the
	// common time base and must fail loudly.
	if err := rs.WriteEvents(0, "A", []eventlog.Event{{Node: "A", Type: "x", Time: base}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Condition(rs, Meta{Name: "broken"}); err == nil {
		t.Fatal("conditioning without runinfo succeeded")
	}
}

func TestConditionWithoutOffsetsKeepsLocalTimes(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteRunInfo(RunInfo{Run: 0, Start: base}); err != nil {
		t.Fatal(err)
	}
	ev := eventlog.Event{Run: 0, Node: "A", Type: "x", Time: base.Add(time.Second)}
	if err := rs.WriteEvents(0, "A", []eventlog.Event{ev}); err != nil {
		t.Fatal(err)
	}
	db, err := Condition(rs, Meta{Name: "no-offsets"})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := db.EventsOfRun(0)
	if err != nil || len(evs) != 1 {
		t.Fatalf("events = %v, %v", evs, err)
	}
	// Unknown node offset: time passes through unchanged.
	if !evs[0].Time.Equal(ev.Time) {
		t.Fatalf("time = %v, want %v", evs[0].Time, ev.Time)
	}
}

func TestRunStoreDoneMarkers(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rs.RunDone(3) {
		t.Fatal("unmarked run reported done")
	}
	if err := rs.MarkRunDone(3); err != nil {
		t.Fatal(err)
	}
	if !rs.RunDone(3) {
		t.Fatal("marked run not reported done")
	}
}

func TestOpenExperimentDBMissing(t *testing.T) {
	if _, err := OpenExperimentDB(t.TempDir() + "/nope.xcdb"); err == nil {
		t.Fatal("missing DB opened")
	}
}

func TestInfoOnEmptyDB(t *testing.T) {
	db, err := NewExperimentDB()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Info(); err == nil {
		t.Fatal("Info on empty ExperimentInfo succeeded")
	}
}

func TestFromCapturePreservesFields(t *testing.T) {
	c := netem.Capture{
		Time: base, Dir: netem.CaptureRx, Node: "B",
		Pkt: netem.Packet{ID: 7, Tag: 3, Src: "A",
			Dst: netem.Multicast("mdns"), Payload: []byte("p"),
			Path: []netem.NodeID{"A", "B"}},
	}
	r := FromCapture(c)
	if r.ID != 7 || r.Tag != 3 || r.Src != "A" || r.Node != "B" ||
		r.Dir != "rx" || r.Dst != "mcast:mdns" || string(r.Data) != "p" {
		t.Fatalf("record = %+v", r)
	}
}

package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Journal record types. The master writes one record around every stage of
// a run's lifecycle; resume replays the file to reconstruct exactly which
// runs are durably finished and which died mid-attempt.
const (
	// RecAttemptBegin is written (and fsync'd) before an attempt starts.
	RecAttemptBegin = "run_attempt_begin"
	// RecAttemptEnd is written after an attempt returned, carrying its
	// outcome ("ok", "failed" or "aborted").
	RecAttemptEnd = "run_attempt_end"
	// RecRunDone is written after the run's measurements were atomically
	// committed to level 2 and the done marker was fsync'd.
	RecRunDone = "run_done"
)

// JournalRecord is one line of the write-ahead run journal.
type JournalRecord struct {
	// Seq is the record's position in the journal, starting at 1.
	Seq int64 `json:"seq"`
	// Type is one of the Rec* constants.
	Type string `json:"type"`
	// Run is the plan run id.
	Run int `json:"run"`
	// Attempt is the in-place attempt number (begin/end records).
	Attempt int `json:"attempt,omitempty"`
	// Seed is the derived run seed (begin records), so a journal alone
	// identifies what was about to execute.
	Seed int64 `json:"seed,omitempty"`
	// Treatment is the run's treatment index (begin records).
	Treatment int `json:"treatment,omitempty"`
	// Outcome is "ok", "failed" or "aborted" (end records).
	Outcome string `json:"outcome,omitempty"`
	// Err is the attempt's first error (end records).
	Err string `json:"err,omitempty"`
	// Time is the wall-clock write time (the journal is an OS-level
	// durability log, not an experiment measurement).
	Time time.Time `json:"time"`
}

// Replay is the state reconstructed from an existing journal: which runs
// finished durably and which have lifecycle records but no completion —
// those died mid-attempt (or after a failed final attempt) and must be
// re-executed after their partial level-2 state is discarded.
type Replay struct {
	// Records is the number of intact records replayed.
	Records int
	// Done marks runs with a run_done record.
	Done map[int]bool
	// Dangling marks runs whose last lifecycle record is a begin without
	// a matching end: the process died mid-attempt.
	Dangling map[int]bool
	// Ended marks runs that have attempt records but neither a dangling
	// attempt nor a run_done — e.g. a crash between the final attempt's
	// end record and the level-2 commit, or a run that failed all
	// attempts in the previous session.
	Ended map[int]bool
	// Attempts is the highest attempt number seen per run.
	Attempts map[int]int
	// Truncated reports that the journal's final line was cut off
	// mid-write (the crash interrupted an append) and was ignored.
	Truncated bool
}

// InDoubt reports whether a run has lifecycle records but no durable
// completion: its on-disk state is untrustworthy and must be discarded
// before the run is re-executed.
func (rp Replay) InDoubt(run int) bool {
	if rp.Done[run] {
		return false
	}
	return rp.Dangling[run] || rp.Ended[run]
}

// Journal is the append-only, fsync'd write-ahead run journal of one
// experiment (journal.jsonl in the experiment directory). All methods are
// safe for concurrent use and nil-safe: calls on a nil *Journal are
// no-ops, so an unjournaled master carries no conditional wiring.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	seq    int64
	replay Replay
}

// JournalPath returns the journal location inside an experiment directory.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// OpenJournal replays an existing journal (if any) and opens it for
// appending. A truncated final line — the signature of a crash during an
// append — is tolerated and dropped; corruption anywhere else is an error.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := JournalPath(dir)
	rp, seq, err := replayJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path, seq: seq, replay: rp}, nil
}

func replayJournal(path string) (Replay, int64, error) {
	rp := Replay{
		Done:     map[int]bool{},
		Dangling: map[int]bool{},
		Ended:    map[int]bool{},
		Attempts: map[int]int{},
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return rp, 0, nil
	}
	if err != nil {
		return rp, 0, err
	}
	defer f.Close()

	var seq int64
	var pendingErr error
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// A bad line followed by more data is real corruption, not a
			// torn tail.
			return rp, 0, pendingErr
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("store: journal %s: record %d: %w", path, rp.Records+1, err)
			continue
		}
		rp.Records++
		seq = rec.Seq
		switch rec.Type {
		case RecAttemptBegin:
			rp.Dangling[rec.Run] = true
			rp.Ended[rec.Run] = false
			if rec.Attempt > rp.Attempts[rec.Run] {
				rp.Attempts[rec.Run] = rec.Attempt
			}
		case RecAttemptEnd:
			rp.Dangling[rec.Run] = false
			rp.Ended[rec.Run] = true
			if rec.Attempt > rp.Attempts[rec.Run] {
				rp.Attempts[rec.Run] = rec.Attempt
			}
		case RecRunDone:
			rp.Done[rec.Run] = true
			rp.Dangling[rec.Run] = false
			rp.Ended[rec.Run] = false
		}
	}
	if err := sc.Err(); err != nil {
		return rp, 0, err
	}
	if pendingErr != nil {
		rp.Truncated = true
	}
	for run, d := range rp.Dangling {
		if !d {
			delete(rp.Dangling, run)
		}
	}
	for run, e := range rp.Ended {
		if !e {
			delete(rp.Ended, run)
		}
	}
	return rp, seq, nil
}

// Replay returns the state recovered when the journal was opened.
func (j *Journal) Replay() Replay {
	if j == nil {
		return Replay{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replay
}

// append writes one record and forces it to stable storage before
// returning: a crash after append returns can lose nothing.
func (j *Journal) append(rec JournalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec.Seq = j.seq
	//lint:ignore walltime journal wall metadata for operators; replay keys on Seq, never Time
	rec.Time = time.Now()
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	//lint:ignore mutexheldio the WAL serializes write+fsync under j.mu by design; record order is the contract
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	//lint:ignore mutexheldio fsync must complete before the next record is admitted
	return j.f.Sync()
}

// Begin journals the start of one run attempt.
func (j *Journal) Begin(run, attempt int, seed int64, treatment int) error {
	return j.append(JournalRecord{Type: RecAttemptBegin, Run: run,
		Attempt: attempt, Seed: seed, Treatment: treatment})
}

// End journals the outcome of one run attempt.
func (j *Journal) End(run, attempt int, outcome, errStr string) error {
	return j.append(JournalRecord{Type: RecAttemptEnd, Run: run,
		Attempt: attempt, Outcome: outcome, Err: errStr})
}

// Done journals that a run's measurements are durably committed.
func (j *Journal) Done(run int) error {
	return j.append(JournalRecord{Type: RecRunDone, Run: run})
}

// Records returns how many records this session appended plus those
// replayed at open.
func (j *Journal) Records() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return int(j.seq)
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

package store

import (
	"encoding/json"
	"testing"
	"time"

	"excovery/internal/netem"
)

// TestEncodeParamsMatchesJSON pins the hand-rolled Parameter encoding to
// encoding/json byte for byte: level-3 databases written before and after
// the optimization must be identical, and DecodeParams still parses with
// encoding/json.
func TestEncodeParamsMatchesJSON(t *testing.T) {
	cases := []map[string]string{
		{"a": "b"},
		{"z": "1", "a": "2", "m": "3"}, // key sorting
		{"plain": "hello world"},
		{"quote": `say "hi"`, "backslash": `a\b`},
		{"newline": "a\nb", "cr": "a\rb", "tab": "a\tb"},
		{"ctl": "a\x01b\x1fc", "nul": "\x00"},
		{"html": "<b>&amp;</b>", "angle": "1<2>3&4"},
		{"unicode": "héllo wörld", "cjk": "実験", "emoji": "🧪"},
		{"seps": "a\u2028b\u2029c"},
		{"invalid": "a\xffb\xfe", "lone": "\xc3"},
		{"trunc": "ok\xe2\x80"}, // truncated multi-byte sequence
		{"mixed": "x<\xff\u2028\"\n>"},
		{"key\nwith\x02esc&": "v"},
		{"": ""},
	}
	for _, p := range cases {
		want, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", p, err)
		}
		if got := encodeParams(p); got != string(want) {
			t.Errorf("encodeParams(%q):\n got %q\nwant %q", p, got, want)
		}
	}
	if got := encodeParams(nil); got != "" {
		t.Errorf("encodeParams(nil) = %q, want empty", got)
	}
	// Round trip through DecodeParams (encoding/json parser).
	p := map[string]string{"seps": "a\u2028b", "q": `"`, "u": "日\x7f"}
	back := DecodeParams(encodeParams(p))
	if len(back) != len(p) {
		t.Fatalf("round trip lost keys: %v", back)
	}
	for k, v := range p {
		if back[k] != v {
			t.Errorf("round trip %q: got %q want %q", k, back[k], v)
		}
	}
}

// TestPacketLineMatchesMarshal pins the raw-line reuse in Condition: the
// stored packets.jsonl line must be byte-identical to re-marshaling the
// decoded record, because conditioning now feeds the line directly into
// the Packets.Data column instead of a fresh json.Marshal.
func TestPacketLineMatchesMarshal(t *testing.T) {
	rs, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(3, 141592653).UTC()
	pkts := []PacketRecord{
		{Time: ts, Dir: "rx", Node: "n1", ID: 7, Tag: 65535, Src: "a",
			Dst: "mdns", Data: []byte{0x00, 0xff, '<', '&'}, Path: []netem.NodeID{"a", "b"}},
		{Time: ts.Add(time.Microsecond), Dir: "tx", ID: 8, Src: "b", Dst: "c"},
		{Time: ts, Dir: "tx", Node: "n2", ID: 9, Src: "x", Dst: "y", Data: []byte{}},
	}
	if err := rs.WritePackets(4, "n1", pkts); err != nil {
		t.Fatal(err)
	}
	var i int
	err = rs.ForEachPacketLine(4, "n1", func(tm time.Time, src string, line []byte) error {
		var p PacketRecord
		if err := json.Unmarshal(line, &p); err != nil {
			return err
		}
		want, err := json.Marshal(p)
		if err != nil {
			return err
		}
		if string(line) != string(want) {
			t.Errorf("packet %d: stored line differs from re-marshal:\n got %s\nwant %s", i, line, want)
		}
		if !tm.Equal(pkts[i].Time) || src != pkts[i].Src {
			t.Errorf("packet %d: meta (%v, %q), want (%v, %q)", i, tm, src, pkts[i].Time, pkts[i].Src)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(pkts) {
		t.Fatalf("streamed %d packets, want %d", i, len(pkts))
	}
}

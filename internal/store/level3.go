package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/store/reldb"
	"excovery/internal/timesync"
)

// EEVersion is the ExCovery implementation version recorded in
// ExperimentInfo (Table I).
const EEVersion = "excovery-go/1.0"

// Meta is the experiment-level metadata of the ExperimentInfo table.
type Meta struct {
	// ExpXML is the complete level-1 description document.
	ExpXML string
	// Name and Comment describe the experiment.
	Name, Comment string
}

// ExperimentDB is the level-3 single-package representation of one
// complete experiment, using exactly the tables and attributes of Table I.
type ExperimentDB struct {
	DB *reldb.DB
}

// NewExperimentDB creates an empty level-3 database with the Table I
// schema.
func NewExperimentDB() (*ExperimentDB, error) {
	db := reldb.New()
	schemas := []reldb.Schema{
		{Name: "ExperimentInfo", Columns: []reldb.Column{
			{Name: "ExpXML", Type: reldb.Text},
			{Name: "EEVersion", Type: reldb.Text},
			{Name: "Name", Type: reldb.Text},
			{Name: "Comment", Type: reldb.Text},
		}},
		{Name: "Logs", Columns: []reldb.Column{
			{Name: "NodeID", Type: reldb.Text},
			{Name: "Log", Type: reldb.Text},
		}},
		{Name: "EEFiles", Columns: []reldb.Column{
			{Name: "ID", Type: reldb.Text},
			{Name: "File", Type: reldb.Blob},
		}},
		{Name: "ExperimentMeasurements", Columns: []reldb.Column{
			{Name: "ID", Type: reldb.Int64},
			{Name: "NodeID", Type: reldb.Text},
			{Name: "Name", Type: reldb.Text},
			{Name: "Content", Type: reldb.Blob},
		}},
		{Name: "RunInfos", Columns: []reldb.Column{
			{Name: "RunID", Type: reldb.Int64},
			{Name: "NodeID", Type: reldb.Text},
			{Name: "StartTime", Type: reldb.Time},
			{Name: "TimeDiff", Type: reldb.Float64},
		}},
		{Name: "ExtraRunMeasurements", Columns: []reldb.Column{
			{Name: "RunID", Type: reldb.Int64},
			{Name: "NodeID", Type: reldb.Text},
			{Name: "Name", Type: reldb.Text},
			{Name: "Content", Type: reldb.Blob},
		}},
		{Name: "Events", Columns: []reldb.Column{
			{Name: "RunID", Type: reldb.Int64},
			{Name: "NodeID", Type: reldb.Text},
			{Name: "CommonTime", Type: reldb.Time},
			{Name: "EventType", Type: reldb.Text},
			{Name: "Parameter", Type: reldb.Text},
		}},
		{Name: "Packets", Columns: []reldb.Column{
			{Name: "RunID", Type: reldb.Int64},
			{Name: "NodeID", Type: reldb.Text},
			{Name: "CommonTime", Type: reldb.Time},
			{Name: "SrcNodeID", Type: reldb.Text},
			{Name: "Data", Type: reldb.Blob},
		}},
	}
	for _, s := range schemas {
		if err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}
	for _, idx := range [][2]string{
		{"Events", "RunID"}, {"Packets", "RunID"},
		{"RunInfos", "RunID"}, {"ExtraRunMeasurements", "RunID"},
	} {
		if err := db.CreateIndex(idx[0], idx[1]); err != nil {
			return nil, err
		}
	}
	return &ExperimentDB{DB: db}, nil
}

// OpenExperimentDB loads a level-3 database file.
func OpenExperimentDB(path string) (*ExperimentDB, error) {
	db, err := reldb.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &ExperimentDB{DB: db}, nil
}

// Save writes the database to a single file.
func (e *ExperimentDB) Save(path string) error { return e.DB.SaveFile(path) }

// Condition turns the level-2 store into a level-3 database: all local
// timestamps are mapped onto the reference time base using the per-run
// time-sync measurements, then events, packets, logs, run infos and
// measurements are ingested (§IV-F).
func Condition(rs *RunStore, meta Meta) (*ExperimentDB, error) {
	e, err := NewExperimentDB()
	if err != nil {
		return nil, err
	}
	if err := e.DB.Insert("ExperimentInfo", reldb.Row{
		meta.ExpXML, EEVersion, meta.Name, meta.Comment,
	}); err != nil {
		return nil, err
	}
	if meta.ExpXML != "" {
		if err := e.DB.Insert("EEFiles", reldb.Row{"description.xml", []byte(meta.ExpXML)}); err != nil {
			return nil, err
		}
	}

	runs, err := rs.Runs()
	if err != nil {
		return nil, err
	}
	logsByNode := map[string]string{}
	for _, run := range runs {
		info, err := rs.ReadRunInfo(run)
		if err != nil {
			return nil, fmt.Errorf("store: run %d has no runinfo: %w", run, err)
		}
		offsets := map[string]timesync.Measurement{}
		for _, m := range info.Offsets {
			offsets[m.Node] = m
			if err := e.DB.Insert("RunInfos", reldb.Row{
				int64(run), m.Node, info.Start.UTC(), m.Offset.Seconds(),
			}); err != nil {
				return nil, err
			}
		}
		correct := func(node string, local time.Time) time.Time {
			if m, ok := offsets[node]; ok {
				return timesync.Correct(local, m).UTC()
			}
			return local.UTC()
		}

		nodes, err := rs.RunNodes(run)
		if err != nil {
			return nil, err
		}
		for _, node := range nodes {
			err := rs.ForEachEvent(run, node, func(ev *eventlog.Event) error {
				return e.DB.Insert("Events", reldb.Row{
					int64(run), ev.Node, correct(ev.Node, ev.Time),
					ev.Type, encodeParams(ev.Params),
				})
			})
			if err != nil {
				return nil, err
			}
			// The stored line is byte-identical to re-marshaling the decoded
			// record (both sides are encoding/json output of PacketRecord;
			// TestPacketLineMatchesMarshal pins this), so the raw bytes feed
			// the Data column directly and the payload is never re-encoded.
			err = rs.ForEachPacketLine(run, node, func(t time.Time, src string, line []byte) error {
				return e.DB.Insert("Packets", reldb.Row{
					int64(run), node, correct(node, t), src,
					append([]byte(nil), line...),
				})
			})
			if err != nil {
				return nil, err
			}
			if log, err := rs.ReadLog(run, node); err != nil {
				return nil, err
			} else if log != "" {
				logsByNode[node] += log
			}
		}
		extras, err := rs.ListExtras(run)
		if err != nil {
			return nil, err
		}
		for _, x := range extras {
			if err := e.DB.Insert("ExtraRunMeasurements", reldb.Row{
				int64(x.Run), x.Node, x.Name, x.Content,
			}); err != nil {
				return nil, err
			}
		}
	}

	nodes := make([]string, 0, len(logsByNode))
	for n := range logsByNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if err := e.DB.Insert("Logs", reldb.Row{n, logsByNode[n]}); err != nil {
			return nil, err
		}
	}

	ems, err := rs.ListExperimentMeasurements()
	if err != nil {
		return nil, err
	}
	for i, m := range ems {
		if err := e.DB.Insert("ExperimentMeasurements", reldb.Row{
			int64(i), m.Node, m.Name, m.Content,
		}); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// DecodeParams parses a Parameter column value.
func DecodeParams(s string) map[string]string {
	if s == "" {
		return nil
	}
	var m map[string]string
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return nil
	}
	return m
}

// Info returns the ExperimentInfo tuple.
func (e *ExperimentDB) Info() (Meta, error) {
	row, ok, err := e.DB.SelectOne(reldb.Query{Table: "ExperimentInfo"})
	if err != nil || !ok {
		return Meta{}, fmt.Errorf("store: no ExperimentInfo (%v)", err)
	}
	return Meta{ExpXML: row[0].(string), Name: row[2].(string), Comment: row[3].(string)}, nil
}

// RunIDs returns the distinct run ids in the Events table, sorted.
func (e *ExperimentDB) RunIDs() ([]int, error) {
	rows, err := e.DB.Select(reldb.Query{Table: "RunInfos"})
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int
	for _, r := range rows {
		id := int(r[0].(int64))
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out, nil
}

// EventsOfRun returns the conditioned events of one run ordered by common
// time.
func (e *ExperimentDB) EventsOfRun(run int) ([]eventlog.Event, error) {
	rows, err := e.DB.Select(reldb.Query{
		Table:   "Events",
		Where:   []reldb.Pred{reldb.Eq("RunID", int64(run))},
		OrderBy: "CommonTime",
	})
	if err != nil {
		return nil, err
	}
	out := make([]eventlog.Event, len(rows))
	for i, r := range rows {
		out[i] = eventlog.Event{
			Run:    int(r[0].(int64)),
			Node:   r[1].(string),
			Time:   r[2].(time.Time),
			Type:   r[3].(string),
			Params: DecodeParams(r[4].(string)),
		}
	}
	return out, nil
}

// ExtrasOfRun returns the plugin/extra measurements of one run (e.g. the
// master's trace.json execution trace).
func (e *ExperimentDB) ExtrasOfRun(run int) ([]ExtraMeasurement, error) {
	rows, err := e.DB.Select(reldb.Query{
		Table: "ExtraRunMeasurements",
		Where: []reldb.Pred{reldb.Eq("RunID", int64(run))},
	})
	if err != nil {
		return nil, err
	}
	out := make([]ExtraMeasurement, len(rows))
	for i, r := range rows {
		out[i] = ExtraMeasurement{
			Run:     int(r[0].(int64)),
			Node:    r[1].(string),
			Name:    r[2].(string),
			Content: r[3].([]byte),
		}
	}
	return out, nil
}

// PacketsOfRun returns the conditioned packet records of one run ordered
// by common time.
func (e *ExperimentDB) PacketsOfRun(run int) ([]PacketRecord, error) {
	rows, err := e.DB.Select(reldb.Query{
		Table:   "Packets",
		Where:   []reldb.Pred{reldb.Eq("RunID", int64(run))},
		OrderBy: "CommonTime",
	})
	if err != nil {
		return nil, err
	}
	out := make([]PacketRecord, len(rows))
	for i, r := range rows {
		var p PacketRecord
		if err := json.Unmarshal(r[4].([]byte), &p); err != nil {
			return nil, err
		}
		p.Time = r[2].(time.Time) // conditioned common time
		p.Node = r[1].(string)    // capturing node
		out[i] = p
	}
	return out, nil
}

package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"excovery/internal/store/fsio"
)

// ErrResumeRefused marks a resume attempt against a store whose manifest
// records a different experiment plan.
var ErrResumeRefused = errors.New("store: resume refused")

// PlanManifest pins a level-2 store to one experiment plan. It is written
// at experiment init and verified on resume, so a resumed session with a
// different description, seed or plan length fails loudly instead of
// silently mixing measurements of two plans in one store.
type PlanManifest struct {
	// DescriptionHash is the hex SHA-256 of the level-1 XML document.
	DescriptionHash string `json:"description_hash"`
	// Seed is the experiment seed the plan derives from.
	Seed int64 `json:"seed"`
	// PlanLen is the number of runs in the generated plan.
	PlanLen int `json:"plan_len"`
	// PlatformSeed is the effective seed of the emulated platform
	// (network and clock randomness), when one exists: a resumed session
	// with a different platform seed would mix measurements taken under
	// different network conditions. Zero means "no platform" (e.g. a
	// distributed master, whose platform lives on the node host) and is
	// not verified.
	PlatformSeed int64 `json:"platform_seed,omitempty"`
	// Flags records informative execution settings (not verified).
	Flags map[string]string `json:"flags,omitempty"`
}

// HashDescription returns the manifest hash of a level-1 document.
func HashDescription(xml string) string {
	sum := sha256.Sum256([]byte(xml))
	return hex.EncodeToString(sum[:])
}

func (rs *RunStore) manifestPath() string {
	return filepath.Join(rs.Dir, "manifest.json")
}

// WriteManifest persists the plan manifest atomically (temp + rename +
// directory fsync).
func (rs *RunStore) WriteManifest(m PlanManifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(rs.manifestPath(), append(b, '\n'))
}

// ReadManifest loads the plan manifest; ok is false when none exists.
func (rs *RunStore) ReadManifest() (m PlanManifest, ok bool, err error) {
	b, err := os.ReadFile(rs.manifestPath())
	if os.IsNotExist(err) {
		return m, false, nil
	}
	if err != nil {
		return m, false, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, false, fmt.Errorf("store: manifest: %w", err)
	}
	return m, true, nil
}

// VerifyManifest checks a resumed store against the current plan. A store
// without a manifest (pre-journal sessions) verifies trivially.
func (rs *RunStore) VerifyManifest(want PlanManifest) error {
	have, ok, err := rs.ReadManifest()
	if err != nil || !ok {
		return err
	}
	if have.DescriptionHash != want.DescriptionHash {
		return fmt.Errorf("%w: description changed (manifest %.12s…, now %.12s…)",
			ErrResumeRefused, have.DescriptionHash, want.DescriptionHash)
	}
	if have.Seed != want.Seed {
		return fmt.Errorf("%w: seed changed (manifest %d, now %d)", ErrResumeRefused, have.Seed, want.Seed)
	}
	if have.PlanLen != want.PlanLen {
		return fmt.Errorf("%w: plan length changed (manifest %d, now %d)", ErrResumeRefused, have.PlanLen, want.PlanLen)
	}
	if have.PlatformSeed != 0 && want.PlatformSeed != 0 && have.PlatformSeed != want.PlatformSeed {
		return fmt.Errorf("%w: platform seed changed (manifest %d, now %d)",
			ErrResumeRefused, have.PlatformSeed, want.PlatformSeed)
	}
	return nil
}

// StagedRun collects one run's harvest in a staging directory and commits
// it into the level-2 hierarchy with a single rename, so a crash anywhere
// during harvest leaves either the previous state or nothing — never a
// half-written run directory that conditioning could ingest.
type StagedRun struct {
	rs   *RunStore
	run  int
	tmp  *RunStore
	done bool
}

// StageRun opens a staging area for one run's harvest. Leftover staging
// directories of earlier crashed harvests for the same run are discarded.
func (rs *RunStore) StageRun(run int) (*StagedRun, error) {
	root := filepath.Join(rs.Dir, "runs", ".staging-"+strconv.Itoa(run))
	if err := os.RemoveAll(root); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &StagedRun{rs: rs, run: run, tmp: &RunStore{Dir: root}}, nil
}

// Store returns the staging store; write the run's measurements through it
// with the normal RunStore API.
func (sr *StagedRun) Store() *RunStore { return sr.tmp }

// Commit fsyncs the staged tree and renames it into place, superseding any
// partial directory a previous attempt (or crashed session) left behind.
func (sr *StagedRun) Commit() error {
	if sr.done {
		return nil
	}
	src := filepath.Join(sr.tmp.Dir, "runs", strconv.Itoa(sr.run))
	if _, err := os.Stat(src); os.IsNotExist(err) {
		// Nothing was harvested; commit to an empty run directory so the
		// run still appears in the store.
		if err := os.MkdirAll(src, 0o755); err != nil {
			return err
		}
	}
	if err := syncTree(src); err != nil {
		return err
	}
	dst := filepath.Join(sr.rs.Dir, "runs", strconv.Itoa(sr.run))
	if err := os.RemoveAll(dst); err != nil {
		return err
	}
	if err := os.Rename(src, dst); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(dst)); err != nil {
		return err
	}
	sr.done = true
	return os.RemoveAll(sr.tmp.Dir)
}

// Abort discards the staged harvest.
func (sr *StagedRun) Abort() {
	if !sr.done {
		os.RemoveAll(sr.tmp.Dir)
		sr.done = true
	}
}

// DiscardRun removes a run's level-2 directory (and any staging leftovers)
// unless the run is marked done: resume calls it for runs the journal
// proves died mid-attempt, so conditioning can never ingest their partial
// state.
func (rs *RunStore) DiscardRun(run int) error {
	if rs.RunDone(run) {
		return fmt.Errorf("store: refusing to discard completed run %d", run)
	}
	if err := os.RemoveAll(filepath.Join(rs.Dir, "runs", ".staging-"+strconv.Itoa(run))); err != nil {
		return err
	}
	dir := filepath.Join(rs.Dir, "runs", strconv.Itoa(run))
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return syncDir(filepath.Dir(dir))
}

// atomicWriteFile writes data to a sibling temp file, fsyncs it and
// renames it over path (fsio.WriteFileAtomic, the shared staged-write
// helper), creating the containing directory first.
func atomicWriteFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return fsio.WriteFileAtomic(path, data)
}

// syncDir fsyncs a directory so a preceding rename/create in it is
// durable.
func syncDir(dir string) error {
	return fsio.SyncDir(dir)
}

// syncTree fsyncs every file and directory below root (harvest trees are
// small: a handful of JSONL files per node).
func syncTree(root string) error {
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		serr := f.Sync()
		f.Close()
		return serr
	})
}

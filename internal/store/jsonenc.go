package store

import (
	"sort"
	"unicode/utf8"
)

// Hand-rolled JSON encoding of the Parameter column. Conditioning
// serializes every event's parameter map, which made encoding/json's
// reflection (map iteration, key sorting, interface boxing) one of the
// largest allocation sources of the whole workflow. The output must stay
// byte-identical to json.Marshal(map[string]string) — existing level-3
// databases were written with it and DecodeParams still round-trips
// through encoding/json — so appendJSONString replicates the default
// encoder's escaping exactly (including HTML escaping and U+2028/2029);
// TestEncodeParamsMatchesJSON pins the equivalence.

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping exactly
// like encoding/json's default (HTML-escaping) encoder.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control characters, plus <, >, & (HTML escaping).
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// encodeParams serializes event parameters for the Parameter column with
// deterministic key order, byte-identical to json.Marshal.
func encodeParams(p map[string]string) string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	n := 2 // braces
	for k := range p {
		keys = append(keys, k)
		n += len(k) + len(p[k]) + 6 // quotes, colon, comma; escapes grow on demand
	}
	sort.Strings(keys)
	dst := make([]byte, 0, n)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		dst = appendJSONString(dst, p[k])
	}
	dst = append(dst, '}')
	return string(dst)
}

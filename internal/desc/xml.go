package desc

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the XML codec for experiment descriptions. The
// document structure follows the paper's listings (Figs. 4–10); action
// sequences contain arbitrary elements, so parsing goes through a small
// generic element tree instead of static struct tags.

// elem is a minimal DOM node.
type elem struct {
	name  string
	attrs map[string]string
	text  string
	kids  []*elem
}

func (e *elem) attr(k string) string { return e.attrs[k] }

func (e *elem) child(name string) *elem {
	for _, k := range e.kids {
		if k.name == name {
			return k
		}
	}
	return nil
}

func (e *elem) children(name string) []*elem {
	var out []*elem
	for _, k := range e.kids {
		if k.name == name {
			out = append(out, k)
		}
	}
	return out
}

func (e *elem) childText(name string) string {
	if c := e.child(name); c != nil {
		return strings.TrimSpace(c.text)
	}
	return ""
}

// parseTree reads an XML document into an element tree, dropping comments
// and processing instructions.
func parseTree(r io.Reader) (*elem, error) {
	dec := xml.NewDecoder(r)
	var stack []*elem
	var root *elem
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("desc: xml parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			e := &elem{name: t.Name.Local, attrs: map[string]string{}}
			for _, a := range t.Attr {
				e.attrs[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("desc: multiple root elements")
				}
				root = e
			} else {
				top := stack[len(stack)-1]
				top.kids = append(top.kids, e)
			}
			stack = append(stack, e)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("desc: empty document")
	}
	return root, nil
}

// Parse reads an experiment description document.
func Parse(r io.Reader) (*Experiment, error) {
	root, err := parseTree(r)
	if err != nil {
		return nil, err
	}
	if root.name != "experiment" {
		return nil, fmt.Errorf("desc: root element is %q, want experiment", root.name)
	}
	e := &Experiment{
		Name:    root.attr("name"),
		Comment: root.attr("comment"),
	}
	if pl := root.child("parameterlist"); pl != nil {
		e.Params = parseParams(pl)
	}
	if ns := root.child("nodes"); ns != nil {
		for _, n := range ns.children("abstractnode") {
			e.AbstractNodes = append(e.AbstractNodes, n.attr("id"))
		}
		for _, n := range ns.children("environmentnode") {
			e.EnvironmentNodes = append(e.EnvironmentNodes, n.attr("id"))
		}
	}
	if fl := root.child("factorlist"); fl != nil {
		if err := parseFactorList(fl, e); err != nil {
			return nil, err
		}
	}
	if ps := root.child("processes"); ps != nil {
		if err := parseProcesses(ps, e); err != nil {
			return nil, err
		}
	}
	if pf := root.child("platform"); pf != nil {
		for _, n := range pf.children("actornode") {
			e.Platform.Actors = append(e.Platform.Actors, PlatformNode{
				ID: n.attr("id"), Abstract: n.attr("abstract"), Address: n.attr("address"),
			})
		}
		for _, n := range pf.children("envnode") {
			e.Platform.Env = append(e.Platform.Env, PlatformNode{
				ID: n.attr("id"), Address: n.attr("address"),
			})
		}
	}
	if ex := root.child("execution"); ex != nil {
		if s := ex.attr("seed"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("desc: bad seed %q", s)
			}
			e.Seed = v
		}
		e.PlanKind = PlanKind(ex.attr("plan"))
	}
	if ep := root.child("eeparams"); ep != nil {
		e.EEParams = parseParams(ep)
	}
	return e, nil
}

// ParseString parses a description from a string.
func ParseString(s string) (*Experiment, error) {
	return Parse(strings.NewReader(s))
}

func parseParams(pl *elem) []Param {
	var out []Param
	for _, p := range pl.children("parameter") {
		out = append(out, Param{Key: p.attr("key"), Value: strings.TrimSpace(p.text)})
	}
	return out
}

func parseFactorList(fl *elem, e *Experiment) error {
	for _, k := range fl.kids {
		switch k.name {
		case "factor":
			f := Factor{
				ID:          k.attr("id"),
				Type:        LevelType(k.attr("type")),
				Usage:       Usage(k.attr("usage")),
				Description: k.childText("description"),
			}
			if lv := k.child("levels"); lv != nil {
				for _, l := range lv.children("level") {
					level, err := parseLevel(l, f.Type)
					if err != nil {
						return fmt.Errorf("desc: factor %s: %w", f.ID, err)
					}
					f.Levels = append(f.Levels, level)
				}
			}
			e.Factors = append(e.Factors, f)
		case "replicationfactor":
			n, err := strconv.Atoi(strings.TrimSpace(k.text))
			if err != nil {
				return fmt.Errorf("desc: bad replication count %q", k.text)
			}
			e.Repl = Replication{ID: k.attr("id"), Count: n}
		}
	}
	return nil
}

func parseLevel(l *elem, t LevelType) (Level, error) {
	if t == TypeActorNodeMap {
		lv := Level{ActorMap: map[string][]string{}}
		for _, a := range l.children("actor") {
			id := a.attr("id")
			insts := a.children("instance")
			nodes := make([]string, len(insts))
			for _, in := range insts {
				idx, err := strconv.Atoi(in.attr("id"))
				if err != nil || idx < 0 || idx >= len(insts) {
					return Level{}, fmt.Errorf("bad instance id %q", in.attr("id"))
				}
				nodes[idx] = strings.TrimSpace(in.text)
			}
			lv.ActorMap[id] = nodes
		}
		return lv, nil
	}
	return Level{Raw: unquote(l.text)}, nil
}

func parseProcesses(ps *elem, e *Experiment) error {
	for _, k := range ps.kids {
		switch k.name {
		case "node_process":
			np := NodeProcess{
				Actor:    k.attr("actor"),
				Name:     k.attr("name"),
				NodesRef: k.attr("nodesref"),
			}
			np.Actions = parseActionsContainer(k)
			e.NodeProcesses = append(e.NodeProcesses, np)
		case "manipulation_process":
			mp := ManipulationProcess{
				Actor:    k.attr("actor"),
				NodesRef: k.attr("nodesref"),
			}
			mp.Actions = parseActionsContainer(k)
			e.ManipProcesses = append(e.ManipProcesses, mp)
		case "env_process":
			ep := EnvProcess{Name: k.attr("name")}
			ep.Actions = parseActionsContainer(k)
			e.EnvProcesses = append(e.EnvProcesses, ep)
		}
	}
	return nil
}

// parseActionsContainer accepts either a wrapper child (sd_actions,
// env_actions, manip_actions, actions) or direct action children.
func parseActionsContainer(k *elem) []Action {
	container := k
	for _, w := range []string{"sd_actions", "env_actions", "manip_actions", "actions"} {
		if c := k.child(w); c != nil {
			container = c
			break
		}
	}
	var out []Action
	for _, a := range container.kids {
		out = append(out, parseAction(a))
	}
	return out
}

func parseAction(a *elem) Action {
	act := Action{
		Name:       a.name,
		Params:     map[string]string{},
		FactorRefs: map[string]string{},
	}
	for k, v := range a.attrs {
		act.Params[k] = v
	}
	switch a.name {
	case "wait_for_event":
		act.Wait = parseWaitSpec(a)
		return act
	case "event_flag":
		act.Value = unquote(a.childText("value"))
		return act
	case "wait_for_time":
		if s := a.childText("seconds"); s != "" {
			act.Params["seconds"] = unquote(s)
		} else if s := strings.TrimSpace(a.text); s != "" {
			act.Params["seconds"] = unquote(s)
		}
		return act
	}
	for _, c := range a.kids {
		if fr := c.child("factorref"); fr != nil {
			act.FactorRefs[c.name] = fr.attr("id")
			continue
		}
		act.Params[c.name] = unquote(c.text)
	}
	return act
}

func parseWaitSpec(a *elem) *WaitSpec {
	w := &WaitSpec{Params: map[string]string{}}
	w.Event = unquote(a.childText("event_dependency"))
	if fd := a.child("from_dependency"); fd != nil {
		if n := fd.child("node"); n != nil {
			w.FromActor = n.attr("actor")
			w.FromInstance = n.attr("instance")
			if id := n.attr("id"); id != "" {
				w.FromNode = id
			}
		} else {
			w.FromNode = unquote(fd.text)
		}
	}
	if pd := a.child("param_dependency"); pd != nil {
		if n := pd.child("node"); n != nil {
			w.ParamActor = n.attr("actor")
			w.ParamInstance = n.attr("instance")
		}
	}
	for _, p := range a.children("param") {
		w.Params[p.attr("key")] = unquote(p.text)
	}
	if ts := a.childText("timeout"); ts != "" {
		if v, err := strconv.ParseFloat(unquote(ts), 64); err == nil {
			w.TimeoutSec = v
		}
	}
	return w
}

// --- Marshalling ---

// Encode writes the experiment description as an XML document.
func Encode(e *Experiment, w io.Writer) error {
	var b strings.Builder
	b.Grow(8 << 10) // typical documents are a few KiB; skip doubling growth
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, "<experiment name=\"%s\" comment=\"%s\">\n", esc(e.Name), esc(e.Comment))
	if len(e.Params) > 0 {
		b.WriteString("  <parameterlist>\n")
		for _, p := range e.Params {
			fmt.Fprintf(&b, "    <parameter key=\"%s\">%s</parameter>\n", esc(p.Key), esc(p.Value))
		}
		b.WriteString("  </parameterlist>\n")
	}
	b.WriteString("  <nodes>\n")
	for _, n := range e.AbstractNodes {
		fmt.Fprintf(&b, "    <abstractnode id=\"%s\" />\n", esc(n))
	}
	for _, n := range e.EnvironmentNodes {
		fmt.Fprintf(&b, "    <environmentnode id=\"%s\" />\n", esc(n))
	}
	b.WriteString("  </nodes>\n")
	b.WriteString("  <factorlist>\n")
	for _, f := range e.Factors {
		fmt.Fprintf(&b, "    <factor id=\"%s\" type=\"%s\" usage=\"%s\">\n", esc(f.ID), esc(string(f.Type)), esc(string(f.Usage)))
		if f.Description != "" {
			fmt.Fprintf(&b, "      <description>%s</description>\n", esc(f.Description))
		}
		b.WriteString("      <levels>\n")
		for _, l := range f.Levels {
			encodeLevel(&b, l, f.Type)
		}
		b.WriteString("      </levels>\n")
		b.WriteString("    </factor>\n")
	}
	if e.Repl.Count > 0 {
		fmt.Fprintf(&b, "    <replicationfactor usage=\"replication\" type=\"int\" id=\"%s\">%d</replicationfactor>\n",
			esc(e.Repl.ID), e.Repl.Count)
	}
	b.WriteString("  </factorlist>\n")
	b.WriteString("  <processes>\n")
	for _, np := range e.NodeProcesses {
		fmt.Fprintf(&b, "    <node_process actor=\"%s\" name=\"%s\" nodesref=\"%s\">\n      <sd_actions>\n",
			esc(np.Actor), esc(np.Name), esc(np.NodesRef))
		for _, a := range np.Actions {
			encodeAction(&b, a, "        ")
		}
		b.WriteString("      </sd_actions>\n    </node_process>\n")
	}
	for _, mp := range e.ManipProcesses {
		fmt.Fprintf(&b, "    <manipulation_process actor=\"%s\" nodesref=\"%s\">\n      <manip_actions>\n",
			esc(mp.Actor), esc(mp.NodesRef))
		for _, a := range mp.Actions {
			encodeAction(&b, a, "        ")
		}
		b.WriteString("      </manip_actions>\n    </manipulation_process>\n")
	}
	for _, ep := range e.EnvProcesses {
		fmt.Fprintf(&b, "    <env_process name=\"%s\">\n      <env_actions>\n", esc(ep.Name))
		for _, a := range ep.Actions {
			encodeAction(&b, a, "        ")
		}
		b.WriteString("      </env_actions>\n    </env_process>\n")
	}
	b.WriteString("  </processes>\n")
	b.WriteString("  <platform>\n")
	for _, n := range e.Platform.Actors {
		fmt.Fprintf(&b, "    <actornode id=\"%s\" abstract=\"%s\" address=\"%s\" />\n", esc(n.ID), esc(n.Abstract), esc(n.Address))
	}
	for _, n := range e.Platform.Env {
		fmt.Fprintf(&b, "    <envnode id=\"%s\" address=\"%s\" />\n", esc(n.ID), esc(n.Address))
	}
	b.WriteString("  </platform>\n")
	fmt.Fprintf(&b, "  <execution seed=\"%d\" plan=\"%s\" />\n", e.Seed, esc(string(e.PlanKind)))
	if len(e.EEParams) > 0 {
		b.WriteString("  <eeparams>\n")
		for _, p := range e.EEParams {
			fmt.Fprintf(&b, "    <parameter key=\"%s\">%s</parameter>\n", esc(p.Key), esc(p.Value))
		}
		b.WriteString("  </eeparams>\n")
	}
	b.WriteString("</experiment>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// EncodeString returns the XML document as a string.
func EncodeString(e *Experiment) (string, error) {
	var b strings.Builder
	if err := Encode(e, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func encodeLevel(b *strings.Builder, l Level, t LevelType) {
	if t == TypeActorNodeMap {
		b.WriteString("        <level>\n")
		actors := make([]string, 0, len(l.ActorMap))
		for a := range l.ActorMap {
			actors = append(actors, a)
		}
		sort.Strings(actors)
		for _, a := range actors {
			fmt.Fprintf(b, "          <actor id=\"%s\">", esc(a))
			for i, n := range l.ActorMap[a] {
				fmt.Fprintf(b, "<instance id=\"%d\">%s</instance>", i, esc(n))
			}
			b.WriteString("</actor>\n")
		}
		b.WriteString("        </level>\n")
		return
	}
	fmt.Fprintf(b, "        <level>%s</level>\n", esc(l.Raw))
}

func encodeAction(b *strings.Builder, a Action, ind string) {
	switch a.Name {
	case "wait_for_event":
		fmt.Fprintf(b, "%s<wait_for_event>\n", ind)
		w := a.Wait
		if w != nil {
			if w.FromActor != "" || w.FromNode != "" {
				fmt.Fprintf(b, "%s  <from_dependency>", ind)
				if w.FromActor != "" {
					fmt.Fprintf(b, "<node actor=\"%s\" instance=\"%s\" />", esc(w.FromActor), esc(w.FromInstance))
				} else {
					b.WriteString(esc(w.FromNode))
				}
				b.WriteString("</from_dependency>\n")
			}
			fmt.Fprintf(b, "%s  <event_dependency>%s</event_dependency>\n", ind, esc(w.Event))
			if w.ParamActor != "" {
				fmt.Fprintf(b, "%s  <param_dependency><node actor=\"%s\" instance=\"%s\" /></param_dependency>\n",
					ind, esc(w.ParamActor), esc(w.ParamInstance))
			}
			keys := sortedKeys(w.Params)
			for _, k := range keys {
				fmt.Fprintf(b, "%s  <param key=\"%s\">%s</param>\n", ind, esc(k), esc(w.Params[k]))
			}
			if w.TimeoutSec > 0 {
				fmt.Fprintf(b, "%s  <timeout>%v</timeout>\n", ind, w.TimeoutSec)
			}
		}
		fmt.Fprintf(b, "%s</wait_for_event>\n", ind)
	case "event_flag":
		fmt.Fprintf(b, "%s<event_flag><value>%s</value></event_flag>\n", ind, esc(a.Value))
	default:
		if len(a.Params) == 0 && len(a.FactorRefs) == 0 {
			fmt.Fprintf(b, "%s<%s />\n", ind, a.Name)
			return
		}
		fmt.Fprintf(b, "%s<%s>\n", ind, a.Name)
		for _, k := range sortedKeys(a.Params) {
			fmt.Fprintf(b, "%s  <%s>%s</%s>\n", ind, k, esc(a.Params[k]), k)
		}
		for _, k := range sortedKeys(a.FactorRefs) {
			fmt.Fprintf(b, "%s  <%s><factorref id=\"%s\" /></%s>\n", ind, k, esc(a.FactorRefs[k]), k)
		}
		fmt.Fprintf(b, "%s</%s>\n", ind, a.Name)
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func esc(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

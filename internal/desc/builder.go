package desc

import "fmt"

// Builder helpers for constructing experiment descriptions in Go. The XML
// document stays the canonical interchange form (§IV-F level 1); these
// helpers exist for tests, examples and generated experiments.

// IntFactor creates an integer factor from literal values.
func IntFactor(id string, usage Usage, values ...int) Factor {
	f := Factor{ID: id, Type: TypeInt, Usage: usage}
	for _, v := range values {
		f.Levels = append(f.Levels, Level{Raw: fmt.Sprint(v)})
	}
	return f
}

// StringFactor creates a string factor from literal values.
func StringFactor(id string, usage Usage, values ...string) Factor {
	f := Factor{ID: id, Type: TypeString, Usage: usage}
	for _, v := range values {
		f.Levels = append(f.Levels, Level{Raw: v})
	}
	return f
}

// FloatFactor creates a float factor from literal values.
func FloatFactor(id string, usage Usage, values ...float64) Factor {
	f := Factor{ID: id, Type: TypeFloat, Usage: usage}
	for _, v := range values {
		f.Levels = append(f.Levels, Level{Raw: fmt.Sprint(v)})
	}
	return f
}

// ActorMapFactor creates an actor_node_map factor with a single level.
func ActorMapFactor(id string, usage Usage, m map[string][]string) Factor {
	return Factor{ID: id, Type: TypeActorNodeMap, Usage: usage,
		Levels: []Level{{ActorMap: m}}}
}

// Act creates a generic action with key/value parameters given as
// alternating pairs.
func Act(name string, kv ...string) Action {
	if len(kv)%2 != 0 {
		panic("desc: Act requires key/value pairs")
	}
	a := Action{Name: name, Params: map[string]string{}, FactorRefs: map[string]string{}}
	for i := 0; i < len(kv); i += 2 {
		a.Params[kv[i]] = kv[i+1]
	}
	return a
}

// WithFactorRef attaches a treatment-varying parameter to an action.
func (a Action) WithFactorRef(param, factorID string) Action {
	a.FactorRefs[param] = factorID
	return a
}

// Flag creates an event_flag action (§IV-C2).
func Flag(value string) Action {
	return Action{Name: "event_flag", Value: value,
		Params: map[string]string{}, FactorRefs: map[string]string{}}
}

// WaitTime creates a wait_for_time action (§IV-C2).
func WaitTime(seconds float64) Action {
	return Act("wait_for_time", "seconds", fmt.Sprint(seconds))
}

// WaitEvent creates a wait_for_event action (§IV-C2).
func WaitEvent(w WaitSpec) Action {
	ws := w
	if ws.Params == nil {
		ws.Params = map[string]string{}
	}
	return Action{Name: "wait_for_event", Wait: &ws,
		Params: map[string]string{}, FactorRefs: map[string]string{}}
}

// WaitMarker creates a wait_marker action (§IV-C2).
func WaitMarker() Action { return Act("wait_marker") }

// CaseStudy builds the paper's case-study experiment exactly as assembled
// from Figs. 4–10: a two-party SD process between abstract nodes A (SM,
// actor0) and B (SU, actor1), with background traffic between a random
// number of node pairs (fact_pairs ∈ {5,20}, randomized) at a swept data
// rate (fact_bw ∈ {10,50,100} kbit/s, held constant per sweep), and the
// given number of replications per treatment (the paper uses 1000).
func CaseStudy(replications int) *Experiment {
	e := &Experiment{
		Name:    "sd-twoparty-load",
		Comment: "Two-party service discovery under generated background load (Figs. 4-10)",
		Params: []Param{
			{Key: "sd_architecture", Value: "two-party"},
			{Key: "sd_protocol", Value: "zeroconf"},
			{Key: "sd_scheme", Value: "active"},
		},
		AbstractNodes:    []string{"A", "B"},
		EnvironmentNodes: []string{"E0", "E1", "E2", "E3"},
		Factors: []Factor{
			ActorMapFactor("fact_nodes", UsageBlocking, map[string][]string{
				"actor0": {"A"},
				"actor1": {"B"},
			}),
			IntFactor("fact_pairs", UsageRandom, 5, 20),
			{
				ID: "fact_bw", Type: TypeInt, Usage: UsageConstant,
				Description: "datarate generated load",
				Levels:      []Level{{Raw: "10"}, {Raw: "50"}, {Raw: "100"}},
			},
		},
		Repl: Replication{ID: "fact_replication_id", Count: replications},
		Seed: 20140519,
	}

	// Fig. 7: environment traffic-generation process.
	e.EnvProcesses = []EnvProcess{{
		Name: "traffic",
		Actions: []Action{
			Flag("ready_to_init"),
			Act("env_traffic_start",
				"choice", "0",
				"random_switch_amount", "1").
				WithFactorRef("bw", "fact_bw").
				WithFactorRef("random_switch_seed", "fact_replication_id").
				WithFactorRef("random_pairs", "fact_pairs").
				WithFactorRef("random_seed", "fact_pairs"),
			WaitEvent(WaitSpec{Event: "done"}),
			Act("env_traffic_stop"),
		},
	}}

	// Fig. 9: SM publisher role.
	e.NodeProcesses = []NodeProcess{
		{
			Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
			Actions: []Action{
				Act("sd_init"),
				Act("sd_start_publish"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_stop_publish"),
				Act("sd_exit"),
			},
		},
		// Fig. 10: SU requester role.
		{
			Actor: "actor1", Name: "SU", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "sd_start_publish",
					FromActor: "actor0", FromInstance: "all",
				}),
				WaitEvent(WaitSpec{Event: "ready_to_init"}),
				// Fig. 11: the preparation phase ends a fixed time after
				// sd_start_publish "to let unsolicited announcements of
				// SM1 pass", so t_R measures the query/response path.
				WaitTime(5),
				Act("sd_init"),
				WaitMarker(),
				Act("sd_start_search"),
				WaitEvent(WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor1", FromInstance: "all",
					ParamActor: "actor0", ParamInstance: "all",
					TimeoutSec: 30,
				}),
				Flag("done"),
				Act("sd_stop_search"),
				Act("sd_exit"),
			},
		},
	}

	// Fig. 8: platform specification — two actor nodes and four
	// environment nodes of the DES testbed.
	e.Platform = Platform{
		Actors: []PlatformNode{
			{ID: "t9-105", Abstract: "A", Address: "10.0.1.105"},
			{ID: "t9-149", Abstract: "B", Address: "10.0.1.149"},
		},
		Env: []PlatformNode{
			{ID: "t9-108", Address: "10.0.1.108"},
			{ID: "t9-150", Address: "10.0.1.150"},
			{ID: "t9-117", Address: "10.0.1.117"},
			{ID: "t9-146", Address: "10.0.1.146"},
		},
	}
	return e
}

// OneShot builds the minimal one-shot discovery experiment of Fig. 11: one
// SM and one SU, a single run, no background load. deadline is the SU
// search timeout in seconds.
func OneShot(deadline float64) *Experiment {
	e := &Experiment{
		Name:    "sd-oneshot",
		Comment: "One-shot two-party discovery (Fig. 11)",
		Params: []Param{
			{Key: "sd_architecture", Value: "two-party"},
			{Key: "sd_protocol", Value: "zeroconf"},
			{Key: "sd_scheme", Value: "active"},
		},
		AbstractNodes: []string{"A", "B"},
		Factors: []Factor{
			ActorMapFactor("fact_nodes", UsageBlocking, map[string][]string{
				"actor0": {"A"},
				"actor1": {"B"},
			}),
		},
		Repl: Replication{ID: "fact_replication_id", Count: 1},
		Seed: 1,
	}
	e.NodeProcesses = []NodeProcess{
		{
			Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
			Actions: []Action{
				Act("sd_init"),
				Act("sd_start_publish"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_stop_publish"),
				Act("sd_exit"),
			},
		},
		{
			Actor: "actor1", Name: "SU", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "sd_start_publish",
					FromActor: "actor0", FromInstance: "all",
				}),
				// Fig. 11: let the SM's unsolicited announcements pass
				// before the SU initializes, so the measured t_R is the
				// query/response time of the execution phase.
				WaitTime(5),
				Act("sd_init"),
				WaitMarker(),
				Act("sd_start_search"),
				WaitEvent(WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor1", FromInstance: "all",
					ParamActor: "actor0", ParamInstance: "all",
					TimeoutSec: deadline,
				}),
				Flag("done"),
				Act("sd_stop_search"),
				Act("sd_exit"),
			},
		},
	}
	return e
}

// ThreeParty builds a three-party SD experiment: one SCM (actor2 on node
// C), one SM (actor0 on A) and one SU (actor1 on B). The SU searches until
// all SMs are found or the deadline expires (§III-B centralized
// architecture; Exp. D in DESIGN.md).
func ThreeParty(deadline float64, replications int) *Experiment {
	e := &Experiment{
		Name:    "sd-threeparty",
		Comment: "Three-party service discovery through an SCM",
		Params: []Param{
			{Key: "sd_architecture", Value: "three-party"},
			{Key: "sd_protocol", Value: "scmdir"},
			{Key: "sd_scheme", Value: "directed"},
		},
		AbstractNodes: []string{"A", "B", "C"},
		Factors: []Factor{
			ActorMapFactor("fact_nodes", UsageBlocking, map[string][]string{
				"actor0": {"A"},
				"actor1": {"B"},
				"actor2": {"C"},
			}),
		},
		Repl: Replication{ID: "fact_replication_id", Count: replications},
		Seed: 3,
	}
	e.NodeProcesses = []NodeProcess{
		{
			Actor: "actor2", Name: "SCM", NodesRef: "fact_nodes",
			Actions: []Action{
				Act("sd_init"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_exit"),
			},
		},
		{
			Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "scm_started",
					FromActor: "actor2", FromInstance: "all",
				}),
				Act("sd_init"),
				Act("sd_start_publish"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_stop_publish"),
				Act("sd_exit"),
			},
		},
		{
			Actor: "actor1", Name: "SU", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "sd_start_publish",
					FromActor: "actor0", FromInstance: "all",
				}),
				Act("sd_init"),
				WaitMarker(),
				Act("sd_start_search"),
				WaitEvent(WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor1", FromInstance: "all",
					ParamActor: "actor0", ParamInstance: "all",
					TimeoutSec: deadline,
				}),
				Flag("done"),
				Act("sd_stop_search"),
				Act("sd_exit"),
			},
		},
	}
	return e
}

package desc

import (
	"errors"
	"fmt"
	"strconv"
)

// faultKinds lists the fault injection actions of the chaos vocabulary
// (§IV-D1 + DESIGN.md §12). Scenario actions (fault_flap, fault_ramp)
// wrap one of these as their inner kind.
var faultKinds = map[string]bool{
	"fault_interface":     true,
	"fault_msg_loss":      true,
	"fault_msg_delay":     true,
	"fault_path_loss":     true,
	"fault_path_delay":    true,
	"fault_msg_corrupt":   true,
	"fault_msg_duplicate": true,
	"fault_msg_reorder":   true,
	"fault_rate_limit":    true,
	"fault_node_kill":     true,
	"fault_node_pause":    true,
	"fault_node_stress":   true,
}

// rampableKinds are the fault kinds fault_ramp can sweep (the level feeds
// their intensity parameter).
var rampableKinds = map[string]bool{
	"fault_msg_loss":   true,
	"fault_msg_delay":  true,
	"fault_rate_limit": true,
}

// checkFaultAction validates the literal parameters of fault and scenario
// actions against their constructors' ranges, so misconfigured chaos
// scenarios fail at validation instead of mid-experiment. Parameters
// bound by factorref resolve per run and are skipped; unknown action
// names are never rejected here (plugins extend the vocabulary).
func checkFaultAction(where string, a Action, add func(format string, args ...any)) {
	// num fetches a literal numeric parameter; absent or factor-bound
	// parameters report ok=false and are not checked.
	num := func(key string) (float64, bool) {
		s, present := a.Params[key]
		if !present {
			return 0, false
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			add("%s action %s: parameter %s=%q is not a number", where, a.Name, key, s)
			return 0, false
		}
		return v, true
	}
	within := func(key string, lo, hi float64, exclLo bool) {
		if v, ok := num(key); ok && (v < lo || v > hi || (exclLo && v == lo)) {
			bracket := "["
			if exclLo {
				bracket = "("
			}
			add("%s action %s: parameter %s=%v outside %s%v,%v]", where, a.Name, key, v, bracket, lo, hi)
		}
	}
	atLeast := func(key string, lo float64, excl bool) {
		if v, ok := num(key); ok && (v < lo || (excl && v == lo)) {
			cmp := "≥"
			if excl {
				cmp = ">"
			}
			add("%s action %s: parameter %s=%v must be %s %v", where, a.Name, key, v, cmp, lo)
		}
	}

	if faultKinds[a.Name] || a.Name == "fault_flap" || a.Name == "fault_ramp" {
		atLeast("duration_s", 0, false)
		within("rate", 0, 1, false)
		if d, present := a.Params["direction"]; present {
			switch d {
			case "receive", "transmit", "both", "random":
			default:
				add("%s action %s: unknown direction %q", where, a.Name, d)
			}
		}
	}

	switch a.Name {
	case "fault_msg_loss", "fault_path_loss":
		within("prob", 0, 1, false)
	case "fault_msg_corrupt", "fault_msg_duplicate":
		within("prob", 0, 1, true)
	case "fault_msg_reorder":
		within("prob", 0, 1, true)
		within("corr", 0, 1, false)
		atLeast("delay_ms", 0, true)
	case "fault_msg_delay", "fault_path_delay":
		atLeast("delay_ms", 0, false)
	case "fault_rate_limit":
		atLeast("rate_kbps", 0, true)
		atLeast("burst", 0, false)
	case "fault_node_stress":
		atLeast("factor", 0, false)
	case "fault_flap":
		kind := a.Params["kind"]
		if _, bound := a.FactorRefs["kind"]; !bound && !faultKinds[kind] {
			add("%s action fault_flap: unknown inner kind %q", where, kind)
		}
		atLeast("period_s", 0, true)
		within("duty", 0, 1, true)
		atLeast("cycles", 1, false)
	case "fault_ramp":
		kind := a.Params["kind"]
		if _, bound := a.FactorRefs["kind"]; !bound && !rampableKinds[kind] {
			add("%s action fault_ramp: cannot sweep kind %q", where, kind)
		}
		atLeast("steps", 1, false)
		atLeast("step_s", 0, true)
	case "env_partition_start":
		for _, key := range []string{"group_a", "group_b"} {
			if _, bound := a.FactorRefs[key]; bound {
				continue
			}
			if a.Params[key] == "" {
				add("%s action env_partition_start: missing %s", where, key)
			}
		}
	}
}

// Validate checks an experiment description for structural consistency so
// execution failures surface before any run starts ("automatic checking" of
// descriptions, §I). It returns all problems joined into one error, or nil.
func Validate(e *Experiment) error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if e.Name == "" {
		add("experiment has no name")
	}

	abstract := map[string]bool{}
	for _, n := range e.AbstractNodes {
		if n == "" {
			add("abstract node with empty id")
			continue
		}
		if abstract[n] {
			add("duplicate abstract node %q", n)
		}
		abstract[n] = true
	}
	for _, n := range e.EnvironmentNodes {
		if n == "" {
			add("environment node with empty id")
			continue
		}
		if abstract[n] {
			add("environment node %q collides with abstract node", n)
		}
	}

	factorIDs := map[string]*Factor{}
	actorRoles := map[string]bool{} // roles defined by actor_node_map levels
	for i := range e.Factors {
		f := &e.Factors[i]
		if f.ID == "" {
			add("factor %d has empty id", i)
			continue
		}
		if factorIDs[f.ID] != nil {
			add("duplicate factor id %q", f.ID)
		}
		factorIDs[f.ID] = f
		switch f.Usage {
		case UsageBlocking, UsageConstant, UsageRandom:
		case "":
			add("factor %q has no usage", f.ID)
		default:
			add("factor %q has unknown usage %q", f.ID, f.Usage)
		}
		if len(f.Levels) == 0 {
			add("factor %q has no levels", f.ID)
		}
		for j, l := range f.Levels {
			switch f.Type {
			case TypeInt:
				if _, err := l.Int(); err != nil {
					add("factor %q level %d: %v", f.ID, j, err)
				}
			case TypeFloat:
				if _, err := l.Float(); err != nil {
					add("factor %q level %d: %v", f.ID, j, err)
				}
			case TypeString:
			case TypeActorNodeMap:
				if len(l.ActorMap) == 0 {
					add("factor %q level %d: empty actor map", f.ID, j)
				}
				for actor, nodes := range l.ActorMap {
					actorRoles[actor] = true
					for k, n := range nodes {
						if n == "" {
							add("factor %q level %d: actor %q instance %d empty", f.ID, j, actor, k)
						} else if !abstract[n] {
							add("factor %q maps actor %q to unknown abstract node %q", f.ID, actor, n)
						}
					}
				}
			default:
				add("factor %q has unknown type %q", f.ID, f.Type)
			}
		}
	}
	if e.Repl.ID != "" {
		if e.Repl.Count < 1 {
			add("replication factor %q has count %d", e.Repl.ID, e.Repl.Count)
		}
		if factorIDs[e.Repl.ID] != nil {
			add("replication factor id %q collides with a factor", e.Repl.ID)
		}
	}

	factorRefOK := func(id string) bool {
		return factorIDs[id] != nil || (e.Repl.ID != "" && id == e.Repl.ID)
	}
	checkActions := func(where string, actions []Action) {
		if len(actions) == 0 {
			add("%s: empty action sequence", where)
		}
		for i, a := range actions {
			if a.Name == "" {
				add("%s action %d: empty name", where, i)
			}
			for param, ref := range a.FactorRefs {
				if !factorRefOK(ref) {
					add("%s action %s: parameter %q references unknown factor %q", where, a.Name, param, ref)
				}
			}
			if a.Name == "wait_for_event" {
				w := a.Wait
				if w == nil {
					add("%s action %d: wait_for_event without dependencies", where, i)
					continue
				}
				if w.Event == "" && len(w.Params) == 0 {
					add("%s action %d: wait_for_event with neither event nor param dependency", where, i)
				}
				if w.FromActor != "" && !actorRoles[w.FromActor] {
					add("%s action %d: from_dependency references unknown actor %q", where, i, w.FromActor)
				}
				if w.ParamActor != "" && !actorRoles[w.ParamActor] {
					add("%s action %d: param_dependency references unknown actor %q", where, i, w.ParamActor)
				}
				if w.TimeoutSec < 0 {
					add("%s action %d: negative timeout", where, i)
				}
			}
			if a.Name == "event_flag" && a.Value == "" {
				add("%s action %d: event_flag without value", where, i)
			}
			checkFaultAction(where, a, add)
		}
	}

	seenActors := map[string]bool{}
	for _, np := range e.NodeProcesses {
		if np.Actor == "" {
			add("node process %q has no actor", np.Name)
			continue
		}
		if seenActors[np.Actor] {
			add("duplicate node process for actor %q", np.Actor)
		}
		seenActors[np.Actor] = true
		if !actorRoles[np.Actor] {
			add("node process actor %q not bound by any actor_node_map factor", np.Actor)
		}
		if np.NodesRef != "" {
			f := factorIDs[np.NodesRef]
			if f == nil {
				add("node process %q references unknown factor %q", np.Actor, np.NodesRef)
			} else if f.Type != TypeActorNodeMap {
				add("node process %q nodesref %q is not an actor_node_map factor", np.Actor, np.NodesRef)
			}
		}
		checkActions("node process "+np.Actor, np.Actions)
	}
	for _, mp := range e.ManipProcesses {
		if mp.Actor != "" && !actorRoles[mp.Actor] {
			add("manipulation process actor %q not bound by any actor_node_map factor", mp.Actor)
		}
		checkActions("manipulation process "+mp.Actor, mp.Actions)
	}
	for i, ep := range e.EnvProcesses {
		checkActions(fmt.Sprintf("env process %d", i), ep.Actions)
	}

	platformIDs := map[string]bool{}
	mapped := map[string]bool{}
	for _, n := range e.Platform.Actors {
		if platformIDs[n.ID] {
			add("duplicate platform node %q", n.ID)
		}
		platformIDs[n.ID] = true
		if n.Abstract == "" {
			add("platform actor node %q has no abstract mapping", n.ID)
		} else if !abstract[n.Abstract] {
			add("platform node %q maps unknown abstract node %q", n.ID, n.Abstract)
		} else if mapped[n.Abstract] {
			add("abstract node %q mapped by multiple platform nodes", n.Abstract)
		} else {
			mapped[n.Abstract] = true
		}
	}
	for _, n := range e.Platform.Env {
		if platformIDs[n.ID] {
			add("duplicate platform node %q", n.ID)
		}
		platformIDs[n.ID] = true
	}
	// Every abstract node used by processes must be realizable: if a
	// platform mapping exists at all, it must cover all abstract nodes.
	if len(e.Platform.Actors) > 0 {
		for n := range abstract {
			if !mapped[n] {
				add("abstract node %q has no platform mapping", n)
			}
		}
	}

	switch e.PlanKind {
	case "", PlanOFAT, PlanRandomized, PlanBlocked:
	default:
		add("unknown plan kind %q", e.PlanKind)
	}

	return errors.Join(errs...)
}

package desc

import (
	"fmt"
	"math/rand"
	"sort"
)

// PlanKind selects how treatments are ordered over the runs (§II-A2/3,
// §IV-C1).
type PlanKind string

const (
	// PlanOFAT enumerates the cartesian product of factor levels in
	// factor-list order: the first factor varies least often, the last
	// changes every treatment (the paper's default when "no custom
	// factor level variation plan is given").
	PlanOFAT PlanKind = "ofat"
	// PlanRandomized shuffles the complete run sequence with the
	// experiment seed — a completely randomized design (§II-A3).
	PlanRandomized PlanKind = "randomized"
	// PlanBlocked keeps the levels of blocking factors in enumeration
	// order but shuffles the runs within each block — a randomized
	// complete block design (§II-A3: "partitioning observations into
	// groups ... collected under similar experimental conditions").
	PlanBlocked PlanKind = "blocked"
)

// Run is one experiment run of the treatment plan: a treatment (one level
// per factor) plus a replication index.
type Run struct {
	// ID is the execution order index, 0-based.
	ID int
	// TreatmentIndex numbers the distinct treatment combination.
	TreatmentIndex int
	// Replication is the replication index within the treatment,
	// 0-based. It is also exposed as a pseudo-factor under the
	// replication factor's ID, so processes can reference it (Fig. 7
	// seeds the traffic generator with fact_replication_id).
	Replication int
	// Treatment maps factor ID → applied level.
	Treatment map[string]Level
}

// Level returns the applied level of a factor.
func (r Run) Level(factorID string) (Level, bool) {
	l, ok := r.Treatment[factorID]
	return l, ok
}

// Int returns the applied level of a factor parsed as int.
func (r Run) Int(factorID string) (int, error) {
	l, ok := r.Treatment[factorID]
	if !ok {
		return 0, fmt.Errorf("desc: run %d has no factor %q", r.ID, factorID)
	}
	return l.Int()
}

// String returns the applied level of a factor as string, or def.
func (r Run) String(factorID, def string) string {
	if l, ok := r.Treatment[factorID]; ok {
		return l.Raw
	}
	return def
}

// Plan is the expanded treatment plan of an experiment: the exact sequence
// of treatments stored alongside results for repeatability (§IV, Fig. 3).
type Plan struct {
	// Runs is the ordered run sequence.
	Runs []Run
	// Treatments is the number of distinct treatment combinations.
	Treatments int
}

// maxPlanRuns guards against accidental combinatorial explosion.
const maxPlanRuns = 10_000_000

// GeneratePlan expands the experiment's factors, levels and replication
// into the run sequence. The generation is a pure function of the
// description (including its seed): regenerating the plan for the same
// document yields the identical sequence, which is the repeatability
// property §IV-C1 demands.
func GeneratePlan(e *Experiment) (*Plan, error) {
	factors := e.Factors
	repl := e.Repl.Count
	if repl <= 0 {
		repl = 1
	}
	total := repl
	for _, f := range factors {
		if len(f.Levels) == 0 {
			return nil, fmt.Errorf("desc: factor %q has no levels", f.ID)
		}
		if total > maxPlanRuns/len(f.Levels) {
			return nil, fmt.Errorf("desc: plan exceeds %d runs", maxPlanRuns)
		}
		total *= len(f.Levels)
	}

	// Per-factor deterministic RNG streams for level-order
	// randomization, derived from the experiment seed and the factor
	// position so streams are independent.
	rngs := make([]*rand.Rand, len(factors))
	perms := make([][]int, len(factors))
	for i, f := range factors {
		rngs[i] = rand.New(rand.NewSource(e.Seed*31 + int64(i) + int64(len(f.ID))))
		perms[i] = identity(len(f.Levels))
	}
	reshuffle := func(i int) {
		if factors[i].Usage == UsageRandom {
			rngs[i].Shuffle(len(perms[i]), func(a, b int) {
				perms[i][a], perms[i][b] = perms[i][b], perms[i][a]
			})
		}
	}
	for i := range factors {
		reshuffle(i)
	}

	p := &Plan{Runs: make([]Run, 0, total)}
	// counters enumerate the mixed-radix treatment index; the last factor
	// is the fastest digit (the paper: "the last factor changes every
	// run").
	counters := make([]int, len(factors))
	tIndex := 0
	for {
		for rep := 0; rep < repl; rep++ {
			run := Run{
				ID:             len(p.Runs),
				TreatmentIndex: tIndex,
				Replication:    rep,
				Treatment:      make(map[string]Level, len(factors)+1),
			}
			for i, f := range factors {
				run.Treatment[f.ID] = f.Levels[perms[i][counters[i]]]
			}
			if e.Repl.ID != "" {
				run.Treatment[e.Repl.ID] = Level{Raw: fmt.Sprint(rep)}
			}
			p.Runs = append(p.Runs, run)
		}
		tIndex++
		// Increment mixed-radix counter, last factor fastest.
		i := len(factors) - 1
		for ; i >= 0; i-- {
			counters[i]++
			if counters[i] < len(factors[i].Levels) {
				break
			}
			counters[i] = 0
			// This factor completed a full cycle: re-randomize its
			// level order for the next sweep.
			reshuffle(i)
		}
		if i < 0 {
			break
		}
	}
	p.Treatments = tIndex

	kind := e.PlanKind
	if kind == "" {
		kind = PlanOFAT
	}
	switch kind {
	case PlanOFAT:
		// Enumeration order is already OFAT.
	case PlanRandomized:
		rng := rand.New(rand.NewSource(e.Seed ^ 0x5DEECE66D))
		rng.Shuffle(len(p.Runs), func(a, b int) {
			p.Runs[a], p.Runs[b] = p.Runs[b], p.Runs[a]
		})
		for i := range p.Runs {
			p.Runs[i].ID = i
		}
	case PlanBlocked:
		shuffleWithinBlocks(e, p)
	default:
		return nil, fmt.Errorf("desc: unknown plan kind %q", kind)
	}
	return p, nil
}

// shuffleWithinBlocks implements the randomized complete block design:
// consecutive runs sharing the levels of all blocking factors form a
// block; run order is shuffled inside each block and blocks stay in
// enumeration order. With no blocking factors the whole plan is one block
// (equivalent to PlanRandomized).
func shuffleWithinBlocks(e *Experiment, p *Plan) {
	var blocking []string
	for _, f := range e.Factors {
		if f.Usage == UsageBlocking {
			blocking = append(blocking, f.ID)
		}
	}
	blockKey := func(r Run) string {
		key := ""
		for _, id := range blocking {
			l := r.Treatment[id]
			key += l.Raw + "|"
			actors := make([]string, 0, len(l.ActorMap))
			for actor := range l.ActorMap {
				actors = append(actors, actor)
			}
			sort.Strings(actors)
			for _, actor := range actors {
				key += actor + "="
				for _, n := range l.ActorMap[actor] {
					key += n + ","
				}
			}
		}
		return key
	}
	rng := rand.New(rand.NewSource(e.Seed ^ 0x1B10C4ED))
	start := 0
	for start < len(p.Runs) {
		end := start + 1
		for end < len(p.Runs) && blockKey(p.Runs[end]) == blockKey(p.Runs[start]) {
			end++
		}
		block := p.Runs[start:end]
		rng.Shuffle(len(block), func(a, b int) {
			block[a], block[b] = block[b], block[a]
		})
		start = end
	}
	for i := range p.Runs {
		p.Runs[i].ID = i
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RunSeed derives a per-run random seed from the experiment seed and the
// run's identity. Manipulations that should randomize identically across
// replications (Fig. 7's comment: "this causes identical randomization in
// replications") instead derive their seed from a referenced factor level
// such as the replication index.
func RunSeed(expSeed int64, runID int) int64 {
	h := uint64(expSeed) * 0x9E3779B97F4A7C15
	h ^= uint64(runID) + 0x632BE59BD9B4E019
	h *= 0xD1B54A32D192ED03
	return int64(h)
}

package desc

import (
	"strings"
	"testing"
)

// fig4 is the rudimentary description of Fig. 4 (informative parameters
// and abstract nodes), embedded in a full document skeleton.
const fig4 = `<?xml version="1.0"?>
<experiment name="fig4" comment="rudimentary">
  <parameterlist>
    <parameter key="sd_architecture">two-party</parameter>
    <parameter key="sd_protocol">zeroconf</parameter>
    <parameter key="sd_scheme">active</parameter>
  </parameterlist>
  <nodes>
    <abstractnode id="A" />
    <abstractnode id="B" />
  </nodes>
</experiment>`

func TestFig4Description(t *testing.T) {
	e, err := ParseString(fig4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "fig4" {
		t.Errorf("name = %q", e.Name)
	}
	if len(e.AbstractNodes) != 2 || e.AbstractNodes[0] != "A" || e.AbstractNodes[1] != "B" {
		t.Errorf("abstract nodes = %v", e.AbstractNodes)
	}
	if got := e.ParamValue("sd_architecture"); got != "two-party" {
		t.Errorf("sd_architecture = %q", got)
	}
	if got := e.ParamValue("nope"); got != "" {
		t.Errorf("missing param = %q", got)
	}
}

// fig5 is the factor list of Fig. 5.
const fig5 = `<?xml version="1.0"?>
<experiment name="fig5">
  <nodes><abstractnode id="A" /><abstractnode id="B" /></nodes>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level>
        <actor id="actor0"><instance id="0">A</instance></actor>
        <actor id="actor1"><instance id="0">B</instance></actor>
      </level></levels>
    </factor>
    <factor usage="random" type="int" id="fact_pairs">
      <levels>
        <level>5</level><level>20</level>
      </levels>
    </factor>
    <factor usage="constant" id="fact_bw" type="int">
      <description>datarate generated load</description>
      <levels>
        <level>10</level><level>50</level><level>100</level>
      </levels>
    </factor>
    <replicationfactor usage="replication" type="int" id="fact_replication_id">1000</replicationfactor>
  </factorlist>
</experiment>`

func TestFig5Factors(t *testing.T) {
	e, err := ParseString(fig5)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Factors) != 3 {
		t.Fatalf("factors = %d", len(e.Factors))
	}
	fn := e.Factor("fact_nodes")
	if fn == nil || fn.Type != TypeActorNodeMap || fn.Usage != UsageBlocking {
		t.Fatalf("fact_nodes = %+v", fn)
	}
	if got := ActorNodes(fn.Levels[0], "actor1"); len(got) != 1 || got[0] != "B" {
		t.Fatalf("actor1 nodes = %v", got)
	}
	fp := e.Factor("fact_pairs")
	if fp.Usage != UsageRandom || len(fp.Levels) != 2 {
		t.Fatalf("fact_pairs = %+v", fp)
	}
	if v, _ := fp.Levels[1].Int(); v != 20 {
		t.Fatalf("fact_pairs level 1 = %v", fp.Levels[1])
	}
	fb := e.Factor("fact_bw")
	if fb.Description != "datarate generated load" || len(fb.Levels) != 3 {
		t.Fatalf("fact_bw = %+v", fb)
	}
	if e.Repl.ID != "fact_replication_id" || e.Repl.Count != 1000 {
		t.Fatalf("replication = %+v", e.Repl)
	}
}

// fig7 is the environment traffic process of Fig. 7.
const fig7 = `<?xml version="1.0"?>
<experiment name="fig7">
  <nodes><abstractnode id="A" /></nodes>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level><actor id="actor0"><instance id="0">A</instance></actor></level></levels>
    </factor>
    <factor usage="random" type="int" id="fact_pairs"><levels><level>5</level></levels></factor>
    <factor usage="constant" type="int" id="fact_bw"><levels><level>10</level></levels></factor>
    <replicationfactor usage="replication" type="int" id="fact_replication_id">10</replicationfactor>
  </factorlist>
  <processes>
    <env_process>
      <env_actions>
        <event_flag><value>"ready_to_init"</value></event_flag>
        <env_traffic_start>
          <bw><factorref id="fact_bw" /></bw>
          <choice>0</choice>
          <random_switch_amount>"1"</random_switch_amount>
          <random_switch_seed><factorref id="fact_replication_id" /></random_switch_seed>
          <random_pairs><factorref id="fact_pairs" /></random_pairs>
          <random_seed><factorref id="fact_pairs" /></random_seed>
        </env_traffic_start>
        <wait_for_event>
          <event_dependency>"done"</event_dependency>
        </wait_for_event>
        <env_traffic_stop />
      </env_actions>
    </env_process>
  </processes>
</experiment>`

func TestFig7EnvProcess(t *testing.T) {
	e, err := ParseString(fig7)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.EnvProcesses) != 1 {
		t.Fatalf("env processes = %d", len(e.EnvProcesses))
	}
	acts := e.EnvProcesses[0].Actions
	if len(acts) != 4 {
		t.Fatalf("actions = %d", len(acts))
	}
	if acts[0].Name != "event_flag" || acts[0].Value != "ready_to_init" {
		t.Fatalf("action 0 = %+v (quotes must be stripped)", acts[0])
	}
	ts := acts[1]
	if ts.Name != "env_traffic_start" {
		t.Fatalf("action 1 = %+v", ts)
	}
	if ts.FactorRefs["bw"] != "fact_bw" || ts.FactorRefs["random_switch_seed"] != "fact_replication_id" {
		t.Fatalf("factor refs = %v", ts.FactorRefs)
	}
	if ts.Params["choice"] != "0" || ts.Params["random_switch_amount"] != "1" {
		t.Fatalf("params = %v", ts.Params)
	}
	if acts[2].Wait == nil || acts[2].Wait.Event != "done" {
		t.Fatalf("wait = %+v", acts[2].Wait)
	}
	if acts[3].Name != "env_traffic_stop" {
		t.Fatalf("action 3 = %+v", acts[3])
	}
	if err := Validate(e); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// fig9and10 contains the SM and SU processes of Figs. 9 and 10.
const fig9and10 = `<?xml version="1.0"?>
<experiment name="fig9-10">
  <nodes><abstractnode id="A" /><abstractnode id="B" /></nodes>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level>
        <actor id="actor0"><instance id="0">A</instance></actor>
        <actor id="actor1"><instance id="0">B</instance></actor>
      </level></levels>
    </factor>
  </factorlist>
  <processes>
    <node_process actor="actor0" name="SM" nodesref="fact_nodes">
      <sd_actions>
        <sd_init />
        <sd_start_publish />
        <wait_for_event>
          <event_dependency>"done"</event_dependency>
        </wait_for_event>
        <sd_stop_publish />
        <sd_exit />
      </sd_actions>
    </node_process>
    <node_process actor="actor1" name="SU" nodesref="fact_nodes">
      <sd_actions>
        <wait_for_event>
          <from_dependency>
            <node actor="actor0" instance="all" />
          </from_dependency>
          <event_dependency>"sd_start_publish"</event_dependency>
        </wait_for_event>
        <wait_for_event>
          <event_dependency>"ready_to_init"</event_dependency>
        </wait_for_event>
        <sd_init />
        <wait_marker />
        <sd_start_search />
        <wait_for_event>
          <from_dependency><node actor="actor1" instance="all" /></from_dependency>
          <event_dependency>"sd_service_add"</event_dependency>
          <param_dependency><node actor="actor0" instance="all" /></param_dependency>
          <timeout>"30"</timeout>
        </wait_for_event>
        <event_flag><value>"done"</value></event_flag>
        <sd_stop_search />
        <sd_exit />
      </sd_actions>
    </node_process>
  </processes>
</experiment>`

func TestFig9And10Processes(t *testing.T) {
	e, err := ParseString(fig9and10)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.NodeProcesses) != 2 {
		t.Fatalf("node processes = %d", len(e.NodeProcesses))
	}
	sm := e.NodeProcesses[0]
	if sm.Actor != "actor0" || sm.Name != "SM" || sm.NodesRef != "fact_nodes" {
		t.Fatalf("SM = %+v", sm)
	}
	names := make([]string, len(sm.Actions))
	for i, a := range sm.Actions {
		names[i] = a.Name
	}
	want := "[sd_init sd_start_publish wait_for_event sd_stop_publish sd_exit]"
	if got := strings.Join(names, " "); "["+got+"]" != want {
		t.Fatalf("SM actions = %v", names)
	}

	su := e.NodeProcesses[1]
	if len(su.Actions) != 9 {
		t.Fatalf("SU actions = %d", len(su.Actions))
	}
	w0 := su.Actions[0].Wait
	if w0 == nil || w0.Event != "sd_start_publish" || w0.FromActor != "actor0" || w0.FromInstance != "all" {
		t.Fatalf("SU wait 0 = %+v", w0)
	}
	w5 := su.Actions[5].Wait
	if w5 == nil || w5.Event != "sd_service_add" || w5.ParamActor != "actor0" ||
		w5.FromActor != "actor1" || w5.TimeoutSec != 30 {
		t.Fatalf("SU wait 5 = %+v", w5)
	}
	if su.Actions[3].Name != "wait_marker" {
		t.Fatalf("SU action 3 = %v", su.Actions[3].Name)
	}
	if err := Validate(e); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

const fig8 = `<?xml version="1.0"?>
<experiment name="fig8">
  <nodes><abstractnode id="A" /><abstractnode id="B" /></nodes>
  <platform>
    <actornode id="t9-105" abstract="A" address="10.0.1.105" />
    <actornode id="t9-149" abstract="B" address="10.0.1.149" />
    <envnode id="t9-108" address="10.0.1.108" />
    <envnode id="t9-150" address="10.0.1.150" />
    <envnode id="t9-117" address="10.0.1.117" />
    <envnode id="t9-146" address="10.0.1.146" />
  </platform>
</experiment>`

func TestFig8PlatformMapping(t *testing.T) {
	e, err := ParseString(fig8)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Platform.Actors) != 2 || len(e.Platform.Env) != 4 {
		t.Fatalf("platform = %+v", e.Platform)
	}
	if e.Platform.Actors[0].ID != "t9-105" || e.Platform.Actors[0].Abstract != "A" ||
		e.Platform.Actors[0].Address != "10.0.1.105" {
		t.Fatalf("actor node 0 = %+v", e.Platform.Actors[0])
	}
}

func TestCaseStudyValidatesAndMatchesPaper(t *testing.T) {
	e := CaseStudy(1000)
	if err := Validate(e); err != nil {
		t.Fatalf("case study invalid: %v", err)
	}
	plan, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	// 1 node-map level × 2 pair levels × 3 bw levels × 1000 reps.
	if len(plan.Runs) != 6000 {
		t.Fatalf("runs = %d, want 6000", len(plan.Runs))
	}
	if plan.Treatments != 6 {
		t.Fatalf("treatments = %d, want 6", plan.Treatments)
	}
}

func TestOneShotValidates(t *testing.T) {
	e := OneShot(30)
	if err := Validate(e); err != nil {
		t.Fatal(err)
	}
	plan, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Runs) != 1 {
		t.Fatalf("runs = %d", len(plan.Runs))
	}
}

func TestRoundTripCaseStudy(t *testing.T) {
	e := CaseStudy(10)
	doc, err := EncodeString(e)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseString(doc)
	if err != nil {
		t.Fatalf("reparse: %v\ndoc:\n%s", err, doc)
	}
	if err := Validate(e2); err != nil {
		t.Fatalf("reparsed invalid: %v", err)
	}
	// Round trip must preserve plan identity.
	p1, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GeneratePlan(e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Runs) != len(p2.Runs) {
		t.Fatalf("plan sizes differ: %d vs %d", len(p1.Runs), len(p2.Runs))
	}
	for i := range p1.Runs {
		for fid, l := range p1.Runs[i].Treatment {
			if !l.Equal(p2.Runs[i].Treatment[fid]) {
				t.Fatalf("run %d factor %s: %v vs %v", i, fid, l, p2.Runs[i].Treatment[fid])
			}
		}
	}
	// Processes preserved.
	if len(e2.NodeProcesses) != 2 || len(e2.EnvProcesses) != 1 {
		t.Fatalf("processes lost: %d node, %d env", len(e2.NodeProcesses), len(e2.EnvProcesses))
	}
	su := e2.NodeProcesses[1]
	if su.Actions[6].Wait == nil || su.Actions[6].Wait.TimeoutSec != 30 {
		t.Fatalf("SU deadline lost: %+v", su.Actions[6])
	}
	tr := e2.EnvProcesses[0].Actions[1]
	if tr.FactorRefs["bw"] != "fact_bw" {
		t.Fatalf("factor ref lost: %+v", tr)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(e *Experiment)
		want   string
	}{
		{"empty name", func(e *Experiment) { e.Name = "" }, "no name"},
		{"dup abstract node", func(e *Experiment) { e.AbstractNodes = append(e.AbstractNodes, "A") }, "duplicate abstract node"},
		{"dup factor", func(e *Experiment) { e.Factors = append(e.Factors, IntFactor("fact_pairs", UsageRandom, 1)) }, "duplicate factor"},
		{"bad level", func(e *Experiment) { e.Factors[1].Levels[0].Raw = "xyz" }, "not an int"},
		{"no levels", func(e *Experiment) { e.Factors[1].Levels = nil }, "no levels"},
		{"bad usage", func(e *Experiment) { e.Factors[1].Usage = "wild" }, "unknown usage"},
		{"bad type", func(e *Experiment) { e.Factors[1].Type = "blob" }, "unknown type"},
		{"unknown mapped node", func(e *Experiment) {
			e.Factors[0].Levels[0].ActorMap["actor0"] = []string{"Z"}
		}, "unknown abstract node"},
		{"zero replication", func(e *Experiment) { e.Repl.Count = 0 }, "count 0"},
		{"unknown factorref", func(e *Experiment) {
			e.EnvProcesses[0].Actions[1].FactorRefs["bw"] = "nope"
		}, "unknown factor"},
		{"dup node process", func(e *Experiment) {
			e.NodeProcesses = append(e.NodeProcesses, e.NodeProcesses[0])
		}, "duplicate node process"},
		{"unknown actor", func(e *Experiment) { e.NodeProcesses[0].Actor = "actor9" }, "not bound"},
		{"bad nodesref", func(e *Experiment) { e.NodeProcesses[0].NodesRef = "fact_bw" }, "not an actor_node_map"},
		{"empty actions", func(e *Experiment) { e.NodeProcesses[0].Actions = nil }, "empty action sequence"},
		{"wait without deps", func(e *Experiment) {
			e.NodeProcesses[0].Actions[2].Wait = &WaitSpec{}
		}, "neither event nor param"},
		{"negative timeout", func(e *Experiment) {
			e.NodeProcesses[1].Actions[6].Wait.TimeoutSec = -1
		}, "negative timeout"},
		{"flag without value", func(e *Experiment) {
			e.NodeProcesses[1].Actions[7].Value = ""
		}, "event_flag without value"},
		{"platform unknown abstract", func(e *Experiment) {
			e.Platform.Actors[0].Abstract = "Z"
		}, "unknown abstract"},
		{"platform incomplete mapping", func(e *Experiment) {
			e.Platform.Actors = e.Platform.Actors[:1]
		}, "no platform mapping"},
		{"dup platform node", func(e *Experiment) {
			e.Platform.Env[0].ID = e.Platform.Actors[0].ID
		}, "duplicate platform node"},
		{"bad plan kind", func(e *Experiment) { e.PlanKind = "chaotic" }, "unknown plan kind"},
	}
	for _, c := range cases {
		e := CaseStudy(10)
		c.mutate(e)
		err := Validate(e)
		if err == nil {
			t.Errorf("%s: Validate passed, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsCleanDescriptions(t *testing.T) {
	for _, e := range []*Experiment{CaseStudy(1), OneShot(5)} {
		if err := Validate(e); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"<foo></foo>",    // wrong root
		"<experiment>",   // malformed
		"<a></a><b></b>", // multiple roots
		`<experiment name="x"><execution seed="abc" /></experiment>`, // bad seed
	}
	for _, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("ParseString(%q) succeeded", doc)
		}
	}
}

func TestUnquote(t *testing.T) {
	cases := map[string]string{
		`"done"`:  "done",
		`done`:    "done",
		` "30" `:  "30",
		`""`:      "",
		`"`:       `"`,
		`"a"b"`:   `a"b`,
		`  bare `: "bare",
	}
	for in, want := range cases {
		if got := unquote(in); got != want {
			t.Errorf("unquote(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLevelParsers(t *testing.T) {
	if v, err := (Level{Raw: " 42 "}).Int(); err != nil || v != 42 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if _, err := (Level{Raw: "x"}).Int(); err == nil {
		t.Error("Int on non-number succeeded")
	}
	if v, err := (Level{Raw: "2.5"}).Float(); err != nil || v != 2.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if _, err := (Level{Raw: "x"}).Float(); err == nil {
		t.Error("Float on non-number succeeded")
	}
}

func TestActPanicsOnOddKV(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Act("x", "key-without-value")
}

// fig6 is the process template listing of Fig. 6: a node process bound to
// an actor role (with the abstract nodes referenced from the factor list)
// and an environment process that "does not need a definition of nodes".
const fig6 = `<?xml version="1.0"?>
<experiment name="fig6">
  <nodes><abstractnode id="A" /></nodes>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level><actor id="actor0"><instance id="0">A</instance></actor></level></levels>
    </factor>
  </factorlist>
  <processes>
    <node_process actor="actor0" name="proto" nodesref="fact_nodes">
      <sd_actions>
        <sd_init />
      </sd_actions>
    </node_process>
    <manipulation_process actor="actor0" nodesref="fact_nodes">
      <manip_actions>
        <fault_msg_loss><prob>0.5</prob></fault_msg_loss>
      </manip_actions>
    </manipulation_process>
    <env_process>
      <env_actions>
        <env_traffic_stop />
      </env_actions>
    </env_process>
  </processes>
</experiment>`

func TestFig6ProcessTemplates(t *testing.T) {
	e, err := ParseString(fig6)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.NodeProcesses) != 1 || len(e.ManipProcesses) != 1 || len(e.EnvProcesses) != 1 {
		t.Fatalf("processes: %d node, %d manip, %d env",
			len(e.NodeProcesses), len(e.ManipProcesses), len(e.EnvProcesses))
	}
	np := e.NodeProcesses[0]
	if np.Actor != "actor0" || np.NodesRef != "fact_nodes" || len(np.Actions) != 1 {
		t.Fatalf("node process = %+v", np)
	}
	mp := e.ManipProcesses[0]
	if mp.Actor != "actor0" || mp.Actions[0].Params["prob"] != "0.5" {
		t.Fatalf("manipulation process = %+v", mp)
	}
	if e.EnvProcesses[0].Actions[0].Name != "env_traffic_stop" {
		t.Fatalf("env process = %+v", e.EnvProcesses[0])
	}
	if err := Validate(e); err != nil {
		t.Fatal(err)
	}
}

// TestExperimentModelRoundTrip covers the Fig. 1 model end to end: an
// experiment exercising every description feature encodes to XML and
// parses back without loss.
func TestExperimentModelRoundTrip(t *testing.T) {
	e := &Experiment{
		Name:             "full-model",
		Comment:          "all features",
		Params:           []Param{{Key: "k", Value: "v"}},
		AbstractNodes:    []string{"A", "B"},
		EnvironmentNodes: []string{"E0"},
		Factors: []Factor{
			ActorMapFactor("f_map", UsageBlocking, map[string][]string{
				"actor0": {"A", "B"},
			}),
			IntFactor("f_int", UsageRandom, 1, 2, 3),
			FloatFactor("f_float", UsageConstant, 0.5, 1.5),
			StringFactor("f_str", UsageConstant, "x", "y"),
		},
		Repl:     Replication{ID: "rep", Count: 7},
		Seed:     99,
		PlanKind: PlanRandomized,
		EEParams: []Param{{Key: "impl", Value: "go"}},
	}
	e.NodeProcesses = []NodeProcess{{
		Actor: "actor0", Name: "X", NodesRef: "f_map",
		Actions: []Action{
			Act("sd_init"),
			WaitTime(1.5),
			WaitMarker(),
			WaitEvent(WaitSpec{
				Event: "ev", FromActor: "actor0", FromInstance: "1",
				ParamActor: "actor0", ParamInstance: "all",
				Params: map[string]string{"pk": "pv"}, TimeoutSec: 2.5,
			}),
			Flag("flagged"),
			Act("custom", "a", "b").WithFactorRef("x", "f_int"),
		},
	}}
	e.ManipProcesses = []ManipulationProcess{{
		Actor: "actor0", NodesRef: "f_map",
		Actions: []Action{Act("fault_msg_loss", "prob", "0.3")},
	}}
	e.EnvProcesses = []EnvProcess{{
		Name:    "env",
		Actions: []Action{Act("env_drop_all_start"), Act("env_drop_all_stop")},
	}}
	e.Platform = Platform{
		Actors: []PlatformNode{
			{ID: "p0", Abstract: "A", Address: "10.0.0.1"},
			{ID: "p1", Abstract: "B", Address: "10.0.0.2"},
		},
		Env: []PlatformNode{{ID: "p2", Address: "10.0.0.3"}},
	}
	if err := Validate(e); err != nil {
		t.Fatal(err)
	}

	doc, err := EncodeString(e)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseString(doc)
	if err != nil {
		t.Fatalf("%v\n%s", err, doc)
	}
	if err := Validate(e2); err != nil {
		t.Fatal(err)
	}
	if e2.Name != e.Name || e2.Comment != e.Comment || e2.Seed != 99 || e2.PlanKind != PlanRandomized {
		t.Fatalf("header lost: %+v", e2)
	}
	if e2.EEParam("impl", "") != "go" {
		t.Fatal("eeparams lost")
	}
	if len(e2.Factors) != 4 || e2.Factors[1].Usage != UsageRandom {
		t.Fatalf("factors lost: %+v", e2.Factors)
	}
	w := e2.NodeProcesses[0].Actions[3].Wait
	if w == nil || w.Event != "ev" || w.FromInstance != "1" || w.ParamActor != "actor0" ||
		w.Params["pk"] != "pv" || w.TimeoutSec != 2.5 {
		t.Fatalf("wait spec lost: %+v", w)
	}
	if e2.NodeProcesses[0].Actions[5].FactorRefs["x"] != "f_int" {
		t.Fatal("factor ref lost")
	}
	if e2.NodeProcesses[0].Actions[4].Value != "flagged" {
		t.Fatal("flag value lost")
	}
	if len(e2.ManipProcesses) != 1 || e2.ManipProcesses[0].Actions[0].Params["prob"] != "0.3" {
		t.Fatal("manipulation process lost")
	}
	if len(e2.Platform.Env) != 1 || e2.Platform.Actors[1].Address != "10.0.0.2" {
		t.Fatalf("platform lost: %+v", e2.Platform)
	}
	// Both descriptions generate identical plans.
	p1, _ := GeneratePlan(e)
	p2, _ := GeneratePlan(e2)
	if len(p1.Runs) != len(p2.Runs) {
		t.Fatalf("plan size differs: %d vs %d", len(p1.Runs), len(p2.Runs))
	}
	for i := range p1.Runs {
		for fid, l := range p1.Runs[i].Treatment {
			if !l.Equal(p2.Runs[i].Treatment[fid]) {
				t.Fatalf("plan diverges at run %d factor %s", i, fid)
			}
		}
	}
}

package desc

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestShippedDescriptionsMatchBuilders keeps descriptions/*.xml in sync
// with the programmatic builders: each file must parse, validate, and
// generate the exact treatment plan of its builder counterpart.
func TestShippedDescriptionsMatchBuilders(t *testing.T) {
	root := repoRoot(t)
	cases := map[string]*Experiment{
		"casestudy.xml":           CaseStudy(1000),
		"oneshot.xml":             OneShot(30),
		"threeparty.xml":          ThreeParty(30, 1000),
		"casestudy-reorder.xml":   ChaosReorder(100),
		"casestudy-duplicate.xml": ChaosDuplicate(100),
		"flapping-iface.xml":      FlappingIface(100),
		"partition-heal.xml":      PartitionHeal(100),
		"ramped-loss.xml":         RampedLoss(100),
		"rate-limited.xml":        RateLimited(100),
		"registry-churn.xml":      RegistryChurn(100),
	}
	for file, want := range cases {
		t.Run(file, func(t *testing.T) {
			f, err := os.Open(filepath.Join(root, "descriptions", file))
			if err != nil {
				t.Fatalf("shipped description missing: %v (regenerate with desc.Encode)", err)
			}
			defer f.Close()
			got, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(got); err != nil {
				t.Fatal(err)
			}
			if got.Name != want.Name || got.Seed != want.Seed {
				t.Fatalf("header drift: %q/%d vs %q/%d", got.Name, got.Seed, want.Name, want.Seed)
			}
			pGot, err := GeneratePlan(got)
			if err != nil {
				t.Fatal(err)
			}
			pWant, err := GeneratePlan(want)
			if err != nil {
				t.Fatal(err)
			}
			if len(pGot.Runs) != len(pWant.Runs) || pGot.Treatments != pWant.Treatments {
				t.Fatalf("plan drift: %d/%d vs %d/%d runs/treatments",
					len(pGot.Runs), pGot.Treatments, len(pWant.Runs), pWant.Treatments)
			}
			for i := range pGot.Runs {
				for fid, l := range pWant.Runs[i].Treatment {
					if !l.Equal(pGot.Runs[i].Treatment[fid]) {
						t.Fatalf("run %d factor %s drifted", i, fid)
					}
				}
			}
			// Process structure preserved.
			if len(got.NodeProcesses) != len(want.NodeProcesses) ||
				len(got.EnvProcesses) != len(want.EnvProcesses) ||
				len(got.ManipProcesses) != len(want.ManipProcesses) {
				t.Fatalf("process drift: %d/%d/%d vs %d/%d/%d node/env/manip",
					len(got.NodeProcesses), len(got.EnvProcesses), len(got.ManipProcesses),
					len(want.NodeProcesses), len(want.EnvProcesses), len(want.ManipProcesses))
			}
		})
	}
}

// TestSchemaFileExists keeps the XSD artifact (§IV-C: "An XML schema
// description is provided with the framework code") present and
// non-trivial.
func TestSchemaFileExists(t *testing.T) {
	root := repoRoot(t)
	data, err := os.ReadFile(filepath.Join(root, "schema", "experiment.xsd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"xs:schema", "wait_for_event", "factorref", "replicationfactor"} {
		if !containsStr(string(data), want) {
			t.Errorf("schema lacks %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

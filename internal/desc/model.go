// Package desc implements ExCovery's abstract experiment description
// (§IV-C): the experiment design with factors and levels, the processes
// executed on abstract nodes and on the environment, the platform mapping
// and the informative parameters. Descriptions are exchanged as XML
// documents (the paper's Figs. 4–10 are fragments of such documents) and
// expanded into deterministic treatment plans for execution.
package desc

import (
	"fmt"
	"strconv"
	"strings"
)

// Usage classifies how a factor is applied during the experiment,
// following the taxonomy of §II-A1 and the usage attributes in Fig. 5.
type Usage string

const (
	// UsageBlocking marks a controllable nuisance factor fixed by the
	// experimenter (e.g. the actor-to-node mapping). Its single level
	// applies to every run; multiple levels partition the experiment
	// into blocks.
	UsageBlocking Usage = "blocking"
	// UsageConstant marks a held-constant design factor: each level is
	// held constant for a full sweep of the faster-varying factors
	// (OFAT order).
	UsageConstant Usage = "constant"
	// UsageRandom marks a design factor whose level order is randomized
	// per sweep using the experiment seed.
	UsageRandom Usage = "random"
	// UsageReplication marks the replication factor (§IV-C: an integer
	// number of replications per treatment).
	UsageReplication Usage = "replication"
)

// LevelType is the value type of a factor's levels.
type LevelType string

const (
	// TypeInt levels parse as integers.
	TypeInt LevelType = "int"
	// TypeFloat levels parse as floating point numbers.
	TypeFloat LevelType = "float"
	// TypeString levels are free-form strings.
	TypeString LevelType = "string"
	// TypeActorNodeMap levels map actor roles to abstract node
	// instances (Fig. 5, fact_nodes).
	TypeActorNodeMap LevelType = "actor_node_map"
)

// Level is one concrete value a factor can take (§IV-C).
type Level struct {
	// Raw is the scalar value as written in the description.
	Raw string
	// ActorMap is set for actor_node_map levels: actor id → abstract
	// node id per instance index.
	ActorMap map[string][]string
}

// Int parses the level as integer.
func (l Level) Int() (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(l.Raw))
	if err != nil {
		return 0, fmt.Errorf("desc: level %q is not an int", l.Raw)
	}
	return v, nil
}

// Float parses the level as float64.
func (l Level) Float() (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(l.Raw), 64)
	if err != nil {
		return 0, fmt.Errorf("desc: level %q is not a float", l.Raw)
	}
	return v, nil
}

// String returns the raw scalar value.
func (l Level) String() string { return l.Raw }

// Equal reports deep equality of two levels.
func (l Level) Equal(o Level) bool {
	if l.Raw != o.Raw || len(l.ActorMap) != len(o.ActorMap) {
		return false
	}
	for k, v := range l.ActorMap {
		ov, ok := o.ActorMap[k]
		if !ok || len(ov) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != ov[i] {
				return false
			}
		}
	}
	return true
}

// Factor is one source of controlled variation (§IV-C). Its position in
// the factor list determines variation speed in OFAT plans: the first
// factor varies least often, the last changes every run.
type Factor struct {
	// ID is the unique factor identifier referenced by factorref
	// elements.
	ID string
	// Type is the level value type.
	Type LevelType
	// Usage classifies the factor's role in the design.
	Usage Usage
	// Levels is the set of levels to apply; order matters for OFAT.
	Levels []Level
	// Description is an optional human-readable comment.
	Description string
}

// Replication is the replication factor (Fig. 5): every treatment is
// repeated Count times. Its ID can be referenced as a factor to derive
// per-replication random seeds (Fig. 7 references fact_replication_id as
// random_switch_seed).
type Replication struct {
	// ID is the identifier usable in factorref elements.
	ID string
	// Count is the number of replications per treatment.
	Count int
}

// Param is an informative key-value parameter (Fig. 4) used to classify
// experiments (e.g. sd_architecture=two-party).
type Param struct {
	Key   string
	Value string
}

// WaitSpec is the dependency description of a wait_for_event action
// (§IV-C2 and Figs. 9/10).
type WaitSpec struct {
	// Event is the awaited event type (event_dependency).
	Event string
	// FromActor/FromInstance restrict the originating location to the
	// node(s) bound to an actor role; instance "all" means every
	// instance (from_dependency).
	FromActor    string
	FromInstance string
	// FromNode restricts the originating location to a single abstract
	// node.
	FromNode string
	// ParamActor/ParamInstance require an event parameter value inside
	// the node set of an actor (param_dependency); used by the SU
	// process to wait for discovery of all SMs.
	ParamActor    string
	ParamInstance string
	// Params are literal parameter requirements (key → value; empty
	// value means presence).
	Params map[string]string
	// TimeoutSec is the wait deadline in seconds; 0 means no timeout.
	TimeoutSec float64
}

// Action is one step of a process description. Flow control actions
// (wait_for_time, wait_for_event, wait_marker, event_flag) are interpreted
// by the process engine; all other actions are dispatched to the node's
// action registry (SD actions of §V, fault injections and environment
// manipulations of §IV-D).
type Action struct {
	// Name is the XML element name, e.g. "sd_init" or
	// "env_traffic_start".
	Name string
	// Params are scalar parameters from child elements, e.g.
	// <bw>50</bw> → {"bw": "50"}. Quoted values in descriptions are
	// unquoted at parse time.
	Params map[string]string
	// FactorRefs map parameter names to factor IDs for values that vary
	// with the treatment: <bw><factorref id="fact_bw"/></bw> →
	// {"bw": "fact_bw"}.
	FactorRefs map[string]string
	// Value is the chardata payload of event_flag actions.
	Value string
	// Wait is set for wait_for_event actions.
	Wait *WaitSpec
}

// Param returns the named scalar parameter or def if absent.
func (a Action) Param(k, def string) string {
	if v, ok := a.Params[k]; ok {
		return v
	}
	return def
}

// NodeProcess is a process prototype bound to an actor role (the paper's
// actor description): each abstract node mapped to the actor executes the
// action sequence.
type NodeProcess struct {
	// Actor is the actor role id, e.g. "actor0".
	Actor string
	// Name is the human-readable role name (e.g. "SM", "SU").
	Name string
	// NodesRef names the actor_node_map factor providing the actor →
	// node binding (Fig. 6 references fact_nodes).
	NodesRef string
	// Actions is the executed sequence.
	Actions []Action
}

// ManipulationProcess is a fault-injection process bound to an actor role
// (§IV-D3); it runs concurrently with the node processes.
type ManipulationProcess struct {
	// Actor is the targeted actor role.
	Actor string
	// NodesRef names the actor_node_map factor.
	NodesRef string
	// Actions is the executed sequence of fault actions and flow
	// control.
	Actions []Action
}

// EnvProcess is an environment manipulation process (§IV-D2); it is not
// node specific.
type EnvProcess struct {
	// Name is an optional label.
	Name string
	// Actions is the executed sequence.
	Actions []Action
}

// PlatformNode maps a platform node to the experiment (Fig. 8).
type PlatformNode struct {
	// ID is the platform host name.
	ID string
	// Abstract is the abstract node id this platform node realizes;
	// empty for environment nodes.
	Abstract string
	// Address is the node's network address.
	Address string
}

// Platform is the platform specification (§IV-E).
type Platform struct {
	// Actors are the nodes realizing abstract nodes.
	Actors []PlatformNode
	// Env are the environment nodes (traffic generation etc.).
	Env []PlatformNode
}

// Experiment is the complete abstract experiment description (§IV-C).
type Experiment struct {
	// Name identifies the experiment.
	Name string
	// Comment is a free-form description.
	Comment string
	// Params are informative classification parameters (Fig. 4).
	Params []Param
	// AbstractNodes lists the abstract node ids (Fig. 4).
	AbstractNodes []string
	// EnvironmentNodes lists abstract environment node ids.
	EnvironmentNodes []string
	// Factors is the ordered factor list (Fig. 5).
	Factors []Factor
	// Repl is the replication factor.
	Repl Replication
	// NodeProcesses are the actor process descriptions (Figs. 9/10).
	NodeProcesses []NodeProcess
	// ManipProcesses are fault-injection processes (§IV-D3).
	ManipProcesses []ManipulationProcess
	// EnvProcesses are environment processes (Fig. 7).
	EnvProcesses []EnvProcess
	// Platform is the platform mapping (Fig. 8).
	Platform Platform
	// Seed initializes all pseudo-random generators so random sequences
	// are reproducible (§IV-C1).
	Seed int64
	// PlanKind selects treatment-plan generation; empty means OFAT.
	PlanKind PlanKind
	// EEParams exposes implementation-specific parameters to the
	// execution program (§IV-E).
	EEParams []Param
}

// Factor returns the factor with the given id, or nil. The replication
// factor is addressable by its id as well, exposing the replication index
// (Fig. 7 uses it as a random seed source).
func (e *Experiment) Factor(id string) *Factor {
	for i := range e.Factors {
		if e.Factors[i].ID == id {
			return &e.Factors[i]
		}
	}
	return nil
}

// ParamValue returns the informative parameter value for key, or "".
func (e *Experiment) ParamValue(key string) string {
	for _, p := range e.Params {
		if p.Key == key {
			return p.Value
		}
	}
	return ""
}

// EEParam returns the EE-specific parameter value for key, or def.
func (e *Experiment) EEParam(key, def string) string {
	for _, p := range e.EEParams {
		if p.Key == key {
			return p.Value
		}
	}
	return def
}

// ActorNodes resolves the node binding of an actor role from an
// actor_node_map level: the list of abstract node ids, by instance index.
func ActorNodes(l Level, actor string) []string {
	return l.ActorMap[actor]
}

// unquote strips one pair of surrounding double quotes; the paper's
// listings quote literal values ("done", "30").
func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// RolesFor resolves actor roles to platform node ids for one run: the
// run's actor_node_map levels bind actors to abstract nodes, and the
// platform specification maps abstract nodes to platform nodes (§IV-E).
// Abstract nodes without a platform mapping map to themselves.
func RolesFor(e *Experiment, run Run) map[string][]string {
	a2p := map[string]string{}
	for _, pn := range e.Platform.Actors {
		a2p[pn.Abstract] = pn.ID
	}
	roles := map[string][]string{}
	for _, f := range e.Factors {
		if f.Type != TypeActorNodeMap {
			continue
		}
		l, ok := run.Level(f.ID)
		if !ok {
			continue
		}
		for actor, abstracts := range l.ActorMap {
			nodes := make([]string, len(abstracts))
			for i, ab := range abstracts {
				if p, mapped := a2p[ab]; mapped {
					nodes[i] = p
				} else {
					nodes[i] = ab
				}
			}
			roles[actor] = nodes
		}
	}
	return roles
}

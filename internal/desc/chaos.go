package desc

// Canned chaos scenario descriptions (DESIGN.md §12): each builder
// assembles one experiment from the case-study skeleton plus a fault
// scenario, and each ships as a versioned XML artifact under
// descriptions/ ("Experiments as Code" — the scenario library is data,
// not scripts). The XML files are generated from these builders, and
// files_test.go keeps both in sync.

// chaosTwoParty is the shared two-party skeleton of the chaos scenarios:
// SM (actor0 on A) publishes, SU (actor1 on B) searches with a 30 s
// deadline and flags "done" either way, on the case-study platform.
func chaosTwoParty(name, comment string, replications int) *Experiment {
	e := &Experiment{
		Name:    name,
		Comment: comment,
		Params: []Param{
			{Key: "sd_architecture", Value: "two-party"},
			{Key: "sd_protocol", Value: "zeroconf"},
			{Key: "sd_scheme", Value: "active"},
		},
		AbstractNodes: []string{"A", "B"},
		Factors: []Factor{
			ActorMapFactor("fact_nodes", UsageBlocking, map[string][]string{
				"actor0": {"A"},
				"actor1": {"B"},
			}),
		},
		Repl: Replication{ID: "fact_replication_id", Count: replications},
		Seed: 20140519,
	}
	e.NodeProcesses = []NodeProcess{
		{
			Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
			Actions: []Action{
				Act("sd_init"),
				Act("sd_start_publish"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_stop_publish"),
				Act("sd_exit"),
			},
		},
		{
			Actor: "actor1", Name: "SU", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "sd_start_publish",
					FromActor: "actor0", FromInstance: "all",
				}),
				// Let the SM's unsolicited announcements pass (Fig. 11) so
				// t_R measures the query/response path under the fault.
				WaitTime(5),
				Act("sd_init"),
				WaitMarker(),
				Act("sd_start_search"),
				WaitEvent(WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor1", FromInstance: "all",
					ParamActor: "actor0", ParamInstance: "all",
					TimeoutSec: 30,
				}),
				Flag("done"),
				Act("sd_stop_search"),
				Act("sd_exit"),
			},
		},
	}
	e.Platform = Platform{
		Actors: []PlatformNode{
			{ID: "t9-105", Abstract: "A", Address: "10.0.1.105"},
			{ID: "t9-149", Abstract: "B", Address: "10.0.1.149"},
		},
	}
	return e
}

// manipUntilDone wraps fault actions into a manipulation process on the
// given actor: the faults apply immediately, hold until the SU flags
// "done", then stop (stopKinds name the fault_stop targets, in order).
func manipUntilDone(actor string, faults []Action, stopKinds ...string) ManipulationProcess {
	actions := append([]Action{}, faults...)
	actions = append(actions, WaitEvent(WaitSpec{Event: "done"}))
	for _, k := range stopKinds {
		actions = append(actions, Act("fault_stop", "kind", k))
	}
	return ManipulationProcess{Actor: actor, Actions: actions}
}

// ChaosReorder builds casestudy-reorder: discovery responsiveness under
// correlated packet reordering at the SU — a swept reorder probability
// holds back SD packets in 50 ms bursts.
func ChaosReorder(replications int) *Experiment {
	e := chaosTwoParty("sd-chaos-reorder",
		"Two-party discovery under correlated message reordering at the SU",
		replications)
	e.Factors = append(e.Factors, FloatFactor("fact_reorder_prob", UsageConstant, 0.1, 0.3, 0.5))
	e.ManipProcesses = []ManipulationProcess{manipUntilDone("actor1",
		[]Action{
			Act("fault_msg_reorder", "corr", "0.5", "delay_ms", "50", "direction", "receive").
				WithFactorRef("prob", "fact_reorder_prob").
				WithFactorRef("randomseed", "fact_replication_id"),
		}, "fault_msg_reorder")}
	return e
}

// ChaosDuplicate builds casestudy-duplicate: discovery under packet
// duplication at the SU — every duplicated query and response doubles the
// SD load on the mesh.
func ChaosDuplicate(replications int) *Experiment {
	e := chaosTwoParty("sd-chaos-duplicate",
		"Two-party discovery under message duplication at the SU",
		replications)
	e.Factors = append(e.Factors, FloatFactor("fact_dup_prob", UsageConstant, 0.2, 0.5, 0.9))
	e.ManipProcesses = []ManipulationProcess{manipUntilDone("actor1",
		[]Action{
			Act("fault_msg_duplicate", "direction", "both").
				WithFactorRef("prob", "fact_dup_prob").
				WithFactorRef("randomseed", "fact_replication_id"),
		}, "fault_msg_duplicate")}
	return e
}

// FlappingIface builds flapping-iface: the SM's interface flaps with a
// 2 s period and 50 % duty cycle while the SU searches, so discovery
// succeeds only in the up-windows.
func FlappingIface(replications int) *Experiment {
	e := chaosTwoParty("sd-flapping-iface",
		"SU discovery against an SM whose interface flaps (2 s period, 50% duty)",
		replications)
	e.ManipProcesses = []ManipulationProcess{manipUntilDone("actor0",
		[]Action{
			Act("fault_flap", "kind", "fault_interface",
				"period_s", "2", "duty", "0.5", "cycles", "10").
				WithFactorRef("randomseed", "fact_replication_id"),
		}, "fault_flap")}
	return e
}

// PartitionHeal builds partition-heal: once the SU starts searching, the
// network splits between SM and SU for 4 s and then heals; the SU's
// backoff queries discover the SM after the heal (exercises recovery, not
// steady-state loss).
func PartitionHeal(replications int) *Experiment {
	e := chaosTwoParty("sd-partition-heal",
		"Network partition between SM and SU healed after 4 s",
		replications)
	e.EnvProcesses = []EnvProcess{{
		Name: "partition",
		Actions: []Action{
			WaitEvent(WaitSpec{
				Event:     "sd_start_search",
				FromActor: "actor1", FromInstance: "all",
			}),
			Act("env_partition_start", "group_a", "t9-105", "group_b", "t9-149"),
			WaitTime(4),
			Act("env_partition_heal"),
			WaitEvent(WaitSpec{Event: "done"}),
		},
	}}
	return e
}

// RampedLoss builds ramped-loss: message loss at the SU sweeps from 0 to
// 80 % in four 5 s steps during the search window.
func RampedLoss(replications int) *Experiment {
	e := chaosTwoParty("sd-ramped-loss",
		"Message loss at the SU ramping 0 → 80% in four 5 s steps",
		replications)
	e.ManipProcesses = []ManipulationProcess{manipUntilDone("actor1",
		[]Action{
			Act("fault_ramp", "kind", "fault_msg_loss",
				"from", "0", "to", "0.8", "steps", "4", "step_s", "5").
				WithFactorRef("randomseed", "fact_replication_id"),
		}, "fault_ramp")}
	return e
}

// RateLimited builds rate-limited: the SU's SD traffic is shaped through
// a token bucket at a swept rate, modelling discovery over a saturated
// uplink.
func RateLimited(replications int) *Experiment {
	e := chaosTwoParty("sd-rate-limited",
		"SU SD traffic token-bucket limited to a swept rate",
		replications)
	e.Factors = append(e.Factors, IntFactor("fact_rate_kbps", UsageConstant, 16, 64, 256))
	e.ManipProcesses = []ManipulationProcess{manipUntilDone("actor1",
		[]Action{
			Act("fault_rate_limit", "direction", "both").
				WithFactorRef("rate_kbps", "fact_rate_kbps").
				WithFactorRef("randomseed", "fact_replication_id"),
		}, "fault_rate_limit")}
	return e
}

// RegistryChurn builds registry-churn: "discovery measured by discovery"
// — the claim-after-host-death responsiveness the self-healing fleet
// (DESIGN.md §14) relies on, expressed as a pure SD experiment. The SU
// discovers the active publisher (SM1) and flags the claim; at that exact
// moment SM1's node is killed, the standby (SM2) observes the kill and
// starts publishing, and the measured quantity is how long the SU needs
// to re-discover the replacement — under a swept message-loss rate at the
// SU, since real failovers never happen on a quiet network.
func RegistryChurn(replications int) *Experiment {
	e := &Experiment{
		Name:    "sd-registry-churn",
		Comment: "SU re-discovers a standby publisher after the active one is killed mid-claim, under swept SU-side message loss",
		Params: []Param{
			{Key: "sd_architecture", Value: "two-party"},
			{Key: "sd_protocol", Value: "zeroconf"},
			{Key: "sd_scheme", Value: "active"},
		},
		AbstractNodes: []string{"A", "B", "C"},
		Factors: []Factor{
			ActorMapFactor("fact_nodes", UsageBlocking, map[string][]string{
				"actor0": {"A"},
				"actor1": {"B"},
				"actor2": {"C"},
			}),
			FloatFactor("fact_loss_prob", UsageConstant, 0, 0.2, 0.4),
		},
		Repl: Replication{ID: "fact_replication_id", Count: replications},
		Seed: 20140520,
	}
	e.NodeProcesses = []NodeProcess{
		{
			Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
			Actions: []Action{
				Act("sd_init"),
				Act("sd_start_publish"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_stop_publish"),
				Act("sd_exit"),
			},
		},
		{
			// The standby: it publishes only once the active publisher's
			// node is observed dead — the SD analogue of a spare host
			// picking up a failed-over campaign.
			Actor: "actor1", Name: "SM", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "fault_node_kill_start",
					FromActor: "actor0", FromInstance: "all",
				}),
				Act("sd_init"),
				Act("sd_start_publish"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("sd_stop_publish"),
				Act("sd_exit"),
			},
		},
		{
			Actor: "actor2", Name: "SU", NodesRef: "fact_nodes",
			Actions: []Action{
				WaitEvent(WaitSpec{
					Event:     "sd_start_publish",
					FromActor: "actor0", FromInstance: "all",
				}),
				// Let SM1's unsolicited announcements pass (Fig. 11) so
				// the first discovery measures the query/response path.
				WaitTime(5),
				Act("sd_init"),
				WaitMarker(),
				Act("sd_start_search"),
				WaitEvent(WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor2", FromInstance: "all",
					ParamActor: "actor0", ParamInstance: "all",
					TimeoutSec: 30,
				}),
				Flag("claimed"),
				WaitEvent(WaitSpec{
					Event:     "sd_service_add",
					FromActor: "actor2", FromInstance: "all",
					ParamActor: "actor1", ParamInstance: "all",
					TimeoutSec: 30,
				}),
				Flag("done"),
				Act("sd_stop_search"),
				Act("sd_exit"),
			},
		},
	}
	e.ManipProcesses = []ManipulationProcess{
		{
			// The churn itself: the kill lands exactly when the SU has
			// claimed SM1, never earlier, so every run measures the same
			// transition.
			Actor: "actor0",
			Actions: []Action{
				WaitEvent(WaitSpec{Event: "claimed"}),
				Act("fault_node_kill").
					WithFactorRef("randomseed", "fact_replication_id"),
				WaitEvent(WaitSpec{Event: "done"}),
				Act("fault_stop", "kind", "fault_node_kill"),
			},
		},
		manipUntilDone("actor2",
			[]Action{
				Act("fault_msg_loss", "direction", "receive").
					WithFactorRef("prob", "fact_loss_prob").
					WithFactorRef("randomseed", "fact_replication_id"),
			}, "fault_msg_loss"),
	}
	return e
}

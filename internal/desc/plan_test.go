package desc

import (
	"fmt"
	"testing"
	"testing/quick"
)

func planExperiment(kind PlanKind, seed int64, reps int) *Experiment {
	return &Experiment{
		Name:          "plan-test",
		AbstractNodes: []string{"A"},
		Factors: []Factor{
			IntFactor("f1", UsageConstant, 1, 2),
			IntFactor("f2", UsageConstant, 10, 20, 30),
		},
		Repl:     Replication{ID: "rep", Count: reps},
		Seed:     seed,
		PlanKind: kind,
	}
}

func TestOFATOrderLastFactorFastest(t *testing.T) {
	p, err := GeneratePlan(planExperiment(PlanOFAT, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != 6 || p.Treatments != 6 {
		t.Fatalf("runs=%d treatments=%d", len(p.Runs), p.Treatments)
	}
	var seq []string
	for _, r := range p.Runs {
		seq = append(seq, r.String("f1", "?")+"/"+r.String("f2", "?"))
	}
	want := "[1/10 1/20 1/30 2/10 2/20 2/30]"
	if fmt.Sprint(seq) != want {
		t.Fatalf("OFAT order = %v, want %v", seq, want)
	}
}

func TestReplicationInnermost(t *testing.T) {
	p, err := GeneratePlan(planExperiment(PlanOFAT, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != 18 {
		t.Fatalf("runs = %d", len(p.Runs))
	}
	// First three runs share the treatment and enumerate replications.
	for i := 0; i < 3; i++ {
		r := p.Runs[i]
		if r.Replication != i || r.TreatmentIndex != 0 {
			t.Fatalf("run %d: rep=%d treatment=%d", i, r.Replication, r.TreatmentIndex)
		}
		// Replication index exposed as pseudo-factor.
		if got := r.String("rep", "?"); got != fmt.Sprint(i) {
			t.Fatalf("run %d rep pseudo-factor = %q", i, got)
		}
	}
}

func TestEveryTreatmentExactlyReplicationTimes(t *testing.T) {
	f := func(seed int64, repsRaw uint8, kindPick bool) bool {
		reps := int(repsRaw%5) + 1
		kind := PlanOFAT
		if kindPick {
			kind = PlanRandomized
		}
		p, err := GeneratePlan(planExperiment(kind, seed, reps))
		if err != nil {
			return false
		}
		counts := map[string]int{}
		for _, r := range p.Runs {
			counts[r.String("f1", "?")+"/"+r.String("f2", "?")]++
		}
		if len(counts) != 6 {
			return false
		}
		for _, c := range counts {
			if c != reps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDeterministicForSeed(t *testing.T) {
	sig := func(seed int64, kind PlanKind) string {
		e := planExperiment(kind, seed, 2)
		e.Factors[0].Usage = UsageRandom
		p, err := GeneratePlan(e)
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, r := range p.Runs {
			s += r.String("f1", "?") + r.String("f2", "?") + ","
		}
		return s
	}
	if sig(5, PlanOFAT) != sig(5, PlanOFAT) {
		t.Fatal("OFAT plan not deterministic")
	}
	if sig(5, PlanRandomized) != sig(5, PlanRandomized) {
		t.Fatal("randomized plan not deterministic for same seed")
	}
	if sig(5, PlanRandomized) == sig(6, PlanRandomized) {
		t.Fatal("different seeds should give different randomized orders")
	}
}

func TestRandomUsageShufflesLevelOrder(t *testing.T) {
	e := &Experiment{
		Name:          "shuffle",
		AbstractNodes: []string{"A"},
		Factors: []Factor{
			IntFactor("outer", UsageConstant, 1, 2, 3, 4),
			IntFactor("inner", UsageRandom, 1, 2, 3, 4, 5, 6, 7, 8),
		},
		Repl: Replication{ID: "rep", Count: 1},
		Seed: 99,
	}
	p, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	// Each sweep of the inner factor covers all 8 levels.
	for sweep := 0; sweep < 4; sweep++ {
		seen := map[string]bool{}
		for i := 0; i < 8; i++ {
			seen[p.Runs[sweep*8+i].String("inner", "?")] = true
		}
		if len(seen) != 8 {
			t.Fatalf("sweep %d does not cover all levels: %v", sweep, seen)
		}
	}
	// At least one sweep must differ from the sorted order (probability
	// of all four being identity is (1/8!)⁴).
	identityCount := 0
	for sweep := 0; sweep < 4; sweep++ {
		ordered := true
		for i := 0; i < 8; i++ {
			if p.Runs[sweep*8+i].String("inner", "?") != fmt.Sprint(i+1) {
				ordered = false
				break
			}
		}
		if ordered {
			identityCount++
		}
	}
	if identityCount == 4 {
		t.Fatal("random factor never shuffled")
	}
}

func TestRandomizedPlanIsPermutationOfOFAT(t *testing.T) {
	ofat, err := GeneratePlan(planExperiment(PlanOFAT, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := GeneratePlan(planExperiment(PlanRandomized, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	count := func(p *Plan) map[string]int {
		m := map[string]int{}
		for _, r := range p.Runs {
			m[r.String("f1", "")+r.String("f2", "")+fmt.Sprint(r.Replication)]++
		}
		return m
	}
	a, b := count(ofat), count(rnd)
	if len(a) != len(b) {
		t.Fatalf("different multisets: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("multiset mismatch at %s", k)
		}
	}
	// IDs must be the execution order in both.
	for i, r := range rnd.Runs {
		if r.ID != i {
			t.Fatalf("randomized run %d has ID %d", i, r.ID)
		}
	}
}

func TestPlanErrorOnEmptyFactor(t *testing.T) {
	e := planExperiment(PlanOFAT, 1, 1)
	e.Factors[0].Levels = nil
	if _, err := GeneratePlan(e); err == nil {
		t.Fatal("expected error for empty factor")
	}
}

func TestPlanErrorOnExplosion(t *testing.T) {
	e := &Experiment{Name: "boom", Seed: 1}
	for i := 0; i < 10; i++ {
		e.Factors = append(e.Factors, IntFactor(fmt.Sprintf("f%d", i), UsageConstant, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	}
	e.Repl.Count = 1000
	if _, err := GeneratePlan(e); err == nil {
		t.Fatal("expected explosion guard error")
	}
}

func TestPlanErrorOnUnknownKind(t *testing.T) {
	e := planExperiment("weird", 1, 1)
	if _, err := GeneratePlan(e); err == nil {
		t.Fatal("expected error for unknown plan kind")
	}
}

func TestRunAccessors(t *testing.T) {
	p, err := GeneratePlan(planExperiment(PlanOFAT, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	r := p.Runs[0]
	if v, err := r.Int("f1"); err != nil || v != 1 {
		t.Fatalf("Int = %d, %v", v, err)
	}
	if _, err := r.Int("missing"); err == nil {
		t.Fatal("Int on missing factor succeeded")
	}
	if _, ok := r.Level("f2"); !ok {
		t.Fatal("Level lookup failed")
	}
	if got := r.String("missing", "dflt"); got != "dflt" {
		t.Fatalf("String default = %q", got)
	}
}

func TestRunSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for run := 0; run < 1000; run++ {
		s := RunSeed(42, run)
		if seen[s] {
			t.Fatalf("duplicate run seed at run %d", run)
		}
		seen[s] = true
	}
	if RunSeed(1, 0) == RunSeed(2, 0) {
		t.Fatal("different experiment seeds should differ")
	}
}

func TestNoFactorsPlan(t *testing.T) {
	e := &Experiment{Name: "min", Seed: 1, Repl: Replication{ID: "r", Count: 4}}
	p, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != 4 || p.Treatments != 1 {
		t.Fatalf("runs=%d treatments=%d", len(p.Runs), p.Treatments)
	}
}

func TestBlockedPlanShufflesWithinBlocks(t *testing.T) {
	// Blocking factor "site" with two levels forms two blocks; within a
	// block the design-factor order is shuffled, but no run of block B
	// precedes a run of block A.
	e := &Experiment{
		Name:          "blocked",
		AbstractNodes: []string{"A"},
		Factors: []Factor{
			StringFactor("site", UsageBlocking, "alpha", "beta"),
			IntFactor("x", UsageConstant, 1, 2, 3, 4, 5, 6, 7, 8),
		},
		Repl:     Replication{ID: "rep", Count: 1},
		Seed:     13,
		PlanKind: PlanBlocked,
	}
	p, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != 16 {
		t.Fatalf("runs = %d", len(p.Runs))
	}
	// Block boundary intact.
	for i, r := range p.Runs {
		want := "alpha"
		if i >= 8 {
			want = "beta"
		}
		if r.String("site", "?") != want {
			t.Fatalf("run %d in wrong block: %s", i, r.String("site", "?"))
		}
	}
	// Within at least one block the x order differs from enumeration.
	ordered := true
	for i := 0; i < 8; i++ {
		if p.Runs[i].String("x", "?") != fmt.Sprint(i+1) {
			ordered = false
		}
	}
	if ordered {
		t.Fatal("block interior not shuffled")
	}
	// Each block covers every level exactly once.
	for b := 0; b < 2; b++ {
		seen := map[string]bool{}
		for i := 0; i < 8; i++ {
			seen[p.Runs[b*8+i].String("x", "?")] = true
		}
		if len(seen) != 8 {
			t.Fatalf("block %d missing levels: %v", b, seen)
		}
	}
	// Deterministic per seed.
	p2, _ := GeneratePlan(e)
	for i := range p.Runs {
		if p.Runs[i].String("x", "?") != p2.Runs[i].String("x", "?") {
			t.Fatal("blocked plan not deterministic")
		}
	}
	// IDs follow execution order.
	for i, r := range p.Runs {
		if r.ID != i {
			t.Fatalf("run %d has ID %d", i, r.ID)
		}
	}
}

func TestBlockedPlanWithActorMapBlocks(t *testing.T) {
	// Actor-map blocking levels (different node placements) also key
	// blocks correctly.
	e := &Experiment{
		Name:          "blocked-map",
		AbstractNodes: []string{"A", "B"},
		Factors: []Factor{
			{ID: "fact_nodes", Type: TypeActorNodeMap, Usage: UsageBlocking,
				Levels: []Level{
					{ActorMap: map[string][]string{"actor0": {"A"}}},
					{ActorMap: map[string][]string{"actor0": {"B"}}},
				}},
			IntFactor("x", UsageConstant, 1, 2, 3),
		},
		Repl:     Replication{ID: "rep", Count: 2},
		Seed:     7,
		PlanKind: PlanBlocked,
	}
	if err := Validate(e); err != nil {
		t.Fatal(err)
	}
	p, err := GeneratePlan(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != 12 {
		t.Fatalf("runs = %d", len(p.Runs))
	}
	for i, r := range p.Runs {
		nodes := r.Treatment["fact_nodes"].ActorMap["actor0"]
		want := "A"
		if i >= 6 {
			want = "B"
		}
		if nodes[0] != want {
			t.Fatalf("run %d block violated: %v", i, nodes)
		}
	}
}

package discovery

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/master"
	"excovery/internal/noderpc"
	"excovery/internal/obs"
	"excovery/internal/store"
	"excovery/internal/xmlrpc"
)

// Fleet is the master-side placement manager over a discovery registry:
// it claims node hosts (one active, the rest kept as warm spares), builds
// the fenced control-channel proxies for the master's run loop, keeps the
// active host leased, and — as master.FleetManager — re-places the run's
// nodes onto a surviving or newly joined host when the active one dies
// mid-campaign. Each adoption carries the claim's fencing epoch, so the
// displaced host refuses any RPC from the epoch it outgrew.
type Fleet struct {
	// Reg is the registry's XML-RPC endpoint.
	Reg *xmlrpc.Client
	// MasterID is this master's session id (doubles as the claim owner).
	MasterID string
	// MasterURL is the master's event endpoint, registered on the host.
	MasterURL string
	// Region is the preferred placement region ("" for no preference).
	Region string
	// LeaseTTL is the session lease imposed on the adopted host.
	LeaseTTL time.Duration
	// NewClient dials a claimed host's control endpoint.
	NewClient func(url string) *xmlrpc.Client
	// ReplaceTimeout bounds how long a failover polls for a replacement
	// host — surviving spares first, then newly joining hosts (default 30s).
	ReplaceTimeout time.Duration
	// Poll is the registry polling interval during a failover (default 500ms).
	Poll time.Duration
	// Obs, if set, receives the lease and failover counters.
	Obs *obs.Registry
	// OnHostChange, if set, observes adoptions: event is "adopt" on
	// Connect and "failover" on a mid-campaign replacement.
	OnHostChange func(event, hostID string)

	mu     sync.Mutex
	active Host
	spares []Host
	nodes  map[string]*FleetNode
	env    *switchEnv
	lease  *noderpc.Lease
}

// Connect claims hosts from the registry and adopts the first as the
// campaign's backing host; the remaining claims stay as warm spares for
// failover. It fails when the registry has no usable host.
func (f *Fleet) Connect() error {
	claimed, err := f.claim()
	if err != nil {
		return err
	}
	var errs []string
	for i, h := range claimed {
		if err := f.adopt(h, claimed[i+1:], false); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", h.ID, err))
			continue
		}
		if f.OnHostChange != nil {
			f.OnHostChange("adopt", h.ID)
		}
		return nil
	}
	return fmt.Errorf("fleet: no usable host among %d claimed (registry %s): %v",
		len(claimed), f.Reg.URL, errs)
}

// claim asks the registry for every available host in one call: the first
// becomes active, the rest are spares. Claiming eagerly is what makes
// failover fast — the spare's fencing epoch is already minted.
func (f *Fleet) claim() ([]Host, error) {
	v, err := f.Reg.Call("registry.claim", f.MasterID, 0, f.Region)
	if err != nil {
		return nil, fmt.Errorf("fleet: claim from registry %s: %w", f.Reg.URL, err)
	}
	s, _ := v.(string)
	var hosts []Host
	if err := json.Unmarshal([]byte(s), &hosts); err != nil {
		return nil, fmt.Errorf("fleet: bad claim reply from %s: %w", f.Reg.URL, err)
	}
	return hosts, nil
}

// adopt makes h the active host: register the master session under the
// claim's fencing epoch, verify the node set, rebind every proxy and start
// the lease heartbeat. rebind is false on the first adoption (the proxies
// are created) and true on failover (they are re-pointed, so the master's
// handle map stays valid mid-campaign).
func (f *Fleet) adopt(h Host, spares []Host, rebind bool) error {
	c := f.NewClient(h.URL)
	nodes, err := noderpc.FetchNodes(c, 3, 200*time.Millisecond)
	if err != nil {
		return err
	}
	lease := &noderpc.Lease{
		C:         c,
		MasterURL: f.MasterURL,
		Session:   f.MasterID,
		TTL:       f.LeaseTTL,
		Epoch:     h.Epoch,
		Obs:       f.Obs,
	}
	if err := lease.Register(); err != nil {
		return fmt.Errorf("adopt %s: %w", h.URL, err)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if rebind {
		if missing := missingNodes(f.nodeIDsLocked(), nodes); len(missing) > 0 {
			return fmt.Errorf("adopt %s: host does not serve node %q", h.URL, missing[0])
		}
	} else {
		f.nodes = make(map[string]*FleetNode, len(nodes))
		for _, id := range nodes {
			f.nodes[id] = &FleetNode{id: id}
		}
		f.env = &switchEnv{}
	}
	for _, id := range f.nodeIDsLocked() {
		n := f.nodes[id]
		r := &noderpc.RemoteNode{NodeID: n.id, C: c}
		r.SetFenceEpoch(h.Epoch)
		n.rebind(r)
	}
	f.env.rebind(&noderpc.RemoteEnv{C: c, Epoch: h.Epoch})
	if f.lease != nil {
		f.lease.Stop()
	}
	f.lease = lease
	lease.Start()
	f.active = h
	f.spares = append([]Host(nil), spares...)
	return nil
}

// nodeIDsLocked returns the run's node ids sorted: every loop that orders
// an observable action over the node set — adoption validation, proxy
// rebinds, handle export — iterates this slice, never the map, so
// placement decisions and failure messages are seed-stable (§IV-C1).
// Caller holds f.mu.
func (f *Fleet) nodeIDsLocked() []string {
	ids := make([]string, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// missingNodes returns the sorted want-ids a host's node set does not
// serve; an adoption is refused on the first one.
func missingNodes(want, have []string) []string {
	set := make(map[string]bool, len(have))
	for _, id := range have {
		set[id] = true
	}
	var missing []string
	for _, id := range want {
		if !set[id] {
			missing = append(missing, id)
		}
	}
	return missing
}

// Handles returns the master's node handle map. The handles are stable
// across failovers — they re-point at the replacement host internally.
func (f *Fleet) Handles() map[string]master.NodeHandle {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]master.NodeHandle, len(f.nodes))
	for _, id := range f.nodeIDsLocked() {
		out[id] = f.nodes[id]
	}
	return out
}

// Env returns the environment executor, stable across failovers.
func (f *Fleet) Env() master.EnvExecutor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.env
}

// ActiveHost returns the currently adopted host.
func (f *Fleet) ActiveHost() Host {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

// Failover implements master.FleetManager: the active host failed the
// given run, so report it dead, then re-place the nodes onto the first
// usable replacement — surviving spares first, then whatever the registry
// can claim within ReplaceTimeout (this is how elastic hosts that joined
// mid-campaign pick up work). Returns the replacement's host id.
func (f *Fleet) Failover(run int, nodeErrs map[string]string) (string, error) {
	f.mu.Lock()
	dead := f.active
	spares := append([]Host(nil), f.spares...)
	if f.lease != nil {
		f.lease.Stop()
		f.lease = nil
	}
	f.mu.Unlock()

	// Best-effort: tell the registry the host is gone so nobody else
	// claims it until it re-registers. The claim itself dies with this.
	f.Reg.Call("registry.report_down", f.MasterID, dead.ID)

	poll := f.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	timeout := f.ReplaceTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	attempts := int(timeout/poll) + 1
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(poll)
		}
		for len(spares) > 0 {
			h := spares[0]
			spares = spares[1:]
			if err := f.adopt(h, spares, true); err != nil {
				f.Reg.Call("registry.release", f.MasterID, h.ID)
				continue
			}
			if f.OnHostChange != nil {
				f.OnHostChange("failover", h.ID)
			}
			return h.ID, nil
		}
		// No spare left: poll the registry for survivors or new joiners.
		if claimed, err := f.claim(); err == nil {
			spares = claimed
		}
	}
	return "", fmt.Errorf("fleet: no replacement host for %s within %s (run %d, %d node errors)",
		dead.ID, timeout, run, len(nodeErrs))
}

// Close stops the lease heartbeat and releases every claim.
func (f *Fleet) Close() {
	f.mu.Lock()
	lease := f.lease
	f.lease = nil
	active := f.active
	spares := append([]Host(nil), f.spares...)
	f.mu.Unlock()
	if lease != nil {
		lease.Stop()
	}
	if active.ID != "" {
		f.Reg.Call("registry.release", f.MasterID, active.ID)
	}
	for _, h := range spares {
		f.Reg.Call("registry.release", f.MasterID, h.ID)
	}
}

// FleetNode is a stable node handle over a swappable noderpc.RemoteNode:
// the master's Config.Nodes map keeps pointing at the same FleetNode while
// a failover re-points it at the replacement host. It forwards the full
// NodeHandle contract plus every optional extension the XML-RPC proxy
// implements (health probe, run error accounting, trace propagation and
// harvest, metric fan-in).
type FleetNode struct {
	id string
	mu sync.Mutex
	r  *noderpc.RemoteNode
}

func (n *FleetNode) rebind(r *noderpc.RemoteNode) {
	n.mu.Lock()
	n.r = r
	n.mu.Unlock()
}

func (n *FleetNode) proxy() *noderpc.RemoteNode {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.r
}

// ID implements master.NodeHandle.
func (n *FleetNode) ID() string { return n.id }

// PrepareRun implements master.NodeHandle.
func (n *FleetNode) PrepareRun(run int) { n.proxy().PrepareRun(run) }

// CleanupRun implements master.NodeHandle.
func (n *FleetNode) CleanupRun(run int) { n.proxy().CleanupRun(run) }

// Execute implements master.NodeHandle.
func (n *FleetNode) Execute(action string, params map[string]string) error {
	return n.proxy().Execute(action, params)
}

// Emit implements master.NodeHandle.
func (n *FleetNode) Emit(typ string, params map[string]string) { n.proxy().Emit(typ, params) }

// LocalTime implements master.NodeHandle.
func (n *FleetNode) LocalTime() time.Time { return n.proxy().LocalTime() }

// HarvestEvents implements master.NodeHandle.
func (n *FleetNode) HarvestEvents(run int) []eventlog.Event { return n.proxy().HarvestEvents(run) }

// HarvestPackets implements master.NodeHandle.
func (n *FleetNode) HarvestPackets() []store.PacketRecord { return n.proxy().HarvestPackets() }

// HarvestExtras implements master.NodeHandle.
func (n *FleetNode) HarvestExtras() []store.ExtraMeasurement { return n.proxy().HarvestExtras() }

// Health implements master.HealthChecker.
func (n *FleetNode) Health() error { return n.proxy().Health() }

// Err reports the current run's first control-channel error (the master's
// quarantine accounting extension).
func (n *FleetNode) Err() error { return n.proxy().Err() }

// SetTraceParent implements the master's trace-propagation extension.
func (n *FleetNode) SetTraceParent(id uint64) { n.proxy().SetTraceParent(id) }

// HarvestTrace implements the master's trace-harvest extension.
func (n *FleetNode) HarvestTrace(run int) []obs.Span { return n.proxy().HarvestTrace(run) }

// ObsSnapshot implements the master's metric fan-in extension.
func (n *FleetNode) ObsSnapshot() ([]obs.MetricPoint, error) { return n.proxy().ObsSnapshot() }

// ObsSource implements the master's metric fan-in extension.
func (n *FleetNode) ObsSource() string { return n.proxy().ObsSource() }

// switchEnv is the swappable environment executor counterpart of FleetNode.
type switchEnv struct {
	mu sync.Mutex
	e  *noderpc.RemoteEnv
}

func (s *switchEnv) rebind(e *noderpc.RemoteEnv) {
	s.mu.Lock()
	s.e = e
	s.mu.Unlock()
}

func (s *switchEnv) proxy() *noderpc.RemoteEnv {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e
}

// Execute implements master.EnvExecutor.
func (s *switchEnv) Execute(action string, params map[string]string) error {
	return s.proxy().Execute(action, params)
}

// Reset implements master.EnvExecutor.
func (s *switchEnv) Reset() { s.proxy().Reset() }

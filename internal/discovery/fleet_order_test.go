package discovery

import (
	"fmt"
	"testing"
)

// TestNodeIDsLockedIsSorted pins the fleet's determinism contract
// (§IV-C1): every loop that orders an observable action over the node set
// iterates nodeIDsLocked, and nodeIDsLocked is sorted regardless of map
// insertion order or Go's randomized map iteration. Repeated rounds with
// different insertion orders would flip a map-range implementation on most
// runs.
func TestNodeIDsLockedIsSorted(t *testing.T) {
	ids := []string{"node-c", "node-a", "node-10", "node-2", "node-b"}
	want := fmt.Sprint([]string{"node-10", "node-2", "node-a", "node-b", "node-c"})
	for round := 0; round < 50; round++ {
		f := &Fleet{nodes: map[string]*FleetNode{}}
		// Rotate the insertion order each round.
		for i := range ids {
			id := ids[(i+round)%len(ids)]
			f.nodes[id] = &FleetNode{id: id}
		}
		if got := fmt.Sprint(f.nodeIDsLocked()); got != want {
			t.Fatalf("round %d: nodeIDsLocked() = %v, want %v", round, got, want)
		}
	}
}

// TestMissingNodesDeterministic pins that adoption refusal is
// deterministic: the same want/have sets always name the same first
// missing node in the error, independent of set iteration order.
func TestMissingNodesDeterministic(t *testing.T) {
	want := []string{"node-a", "node-b", "node-c", "node-d"}
	for round := 0; round < 50; round++ {
		missing := missingNodes(want, []string{"node-c", "node-a"})
		if fmt.Sprint(missing) != fmt.Sprint([]string{"node-b", "node-d"}) {
			t.Fatalf("round %d: missingNodes = %v", round, missing)
		}
	}
	if got := missingNodes(want, want); len(got) != 0 {
		t.Errorf("missingNodes(want, want) = %v, want empty", got)
	}
}

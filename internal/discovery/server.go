package discovery

import (
	"encoding/json"
	"fmt"
	"time"

	"excovery/internal/xmlrpc"
)

// Server builds the registry's XML-RPC method table. The protocol mirrors
// the host lease protocol of internal/noderpc (DESIGN.md §14):
//
//	registry.register(host_id, url, nodes, region, ttl_ms, epoch) -> ttl_ms
//	registry.heartbeat(host_id, ttl_ms)                           -> true
//	registry.claim(master_id, count, region)                      -> JSON []Host
//	registry.release(master_id, host_id)                          -> true
//	registry.report_down(master_id, host_id)                      -> true
//	registry.fleet()                                              -> JSON []Host
//	registry.ping()                                               -> "pong"
//
// Fleet snapshots travel as JSON strings like the harvest RPCs of the
// control channel, keeping the XML-RPC value vocabulary flat.
func (r *Registry) Server() *xmlrpc.Server {
	srv := xmlrpc.NewServer()
	srv.Register("registry.ping", func(params []any) (any, error) {
		return "pong", nil
	})
	srv.Register("registry.register", func(params []any) (any, error) {
		id, ok := argAt[string](params, 0)
		url, ok2 := argAt[string](params, 1)
		if !ok || !ok2 || id == "" {
			return nil, fmt.Errorf("registry.register: want (host_id, url, nodes, region, ttl_ms, epoch)")
		}
		var nodes []string
		if raw, ok := argAt[[]any](params, 2); ok {
			for _, n := range raw {
				if s, ok := n.(string); ok {
					nodes = append(nodes, s)
				}
			}
		}
		region, _ := argAt[string](params, 3)
		ttlMS, _ := argAt[int](params, 4)
		epoch, _ := argAt[int](params, 5)
		granted := r.Register(id, url, nodes, region,
			time.Duration(ttlMS)*time.Millisecond, int64(epoch))
		return int(granted / time.Millisecond), nil
	})
	srv.Register("registry.heartbeat", func(params []any) (any, error) {
		id, ok := argAt[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("registry.heartbeat: want (host_id, ttl_ms)")
		}
		ttlMS, _ := argAt[int](params, 1)
		if err := r.Heartbeat(id, time.Duration(ttlMS)*time.Millisecond); err != nil {
			return nil, err
		}
		return true, nil
	})
	srv.Register("registry.claim", func(params []any) (any, error) {
		masterID, ok := argAt[string](params, 0)
		if !ok || masterID == "" {
			return nil, fmt.Errorf("registry.claim: want (master_id, count, region)")
		}
		want, _ := argAt[int](params, 1)
		region, _ := argAt[string](params, 2)
		data, err := json.Marshal(r.Claim(masterID, want, region))
		if err != nil {
			return nil, err
		}
		return string(data), nil
	})
	srv.Register("registry.release", func(params []any) (any, error) {
		masterID, ok := argAt[string](params, 0)
		hostID, ok2 := argAt[string](params, 1)
		if !ok || !ok2 {
			return nil, fmt.Errorf("registry.release: want (master_id, host_id)")
		}
		r.Release(masterID, hostID)
		return true, nil
	})
	srv.Register("registry.report_down", func(params []any) (any, error) {
		masterID, ok := argAt[string](params, 0)
		hostID, ok2 := argAt[string](params, 1)
		if !ok || !ok2 {
			return nil, fmt.Errorf("registry.report_down: want (master_id, host_id)")
		}
		if err := r.ReportDown(masterID, hostID); err != nil {
			return nil, err
		}
		return true, nil
	})
	srv.Register("registry.fleet", func(params []any) (any, error) {
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			return nil, err
		}
		return string(data), nil
	})
	return srv
}

func argAt[T any](params []any, i int) (T, bool) {
	var zero T
	if i >= len(params) {
		return zero, false
	}
	v, ok := params[i].(T)
	if !ok {
		return zero, false
	}
	return v, true
}

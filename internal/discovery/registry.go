// Package discovery implements the fleet registry of the distributed
// deployment (DESIGN.md §14): node hosts register their capabilities —
// control endpoint, served platform nodes, region tag — under a TTL lease
// renewed by heartbeats, and masters claim hosts for a campaign under a
// monotonically increasing fencing epoch. Missed heartbeats mark a host
// dead, which the master's placement loop turns into a mid-campaign
// re-placement of the in-flight run; a claim's epoch fences the previous
// owner out of the host (noderpc fencing), so a partitioned master can
// never double-drive a node after a takeover.
//
// The registry is deliberately soft-state: every fact it holds is
// re-asserted by the next round of heartbeats/re-registrations, so a
// crashed-and-restarted registry rebuilds the fleet view — including the
// epoch high-water mark, which hosts echo back — within one heartbeat
// interval, without any persistence.
package discovery

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"excovery/internal/obs"
)

// Host is one registered node host as seen by the registry: the snapshot
// handed to claiming masters and the /status document entry.
type Host struct {
	// ID is the host's self-chosen stable identity.
	ID string `json:"id"`
	// URL is the host's XML-RPC control endpoint.
	URL string `json:"url"`
	// Nodes are the platform node ids the host serves.
	Nodes []string `json:"nodes"`
	// Region is an optional placement tag; masters prefer (but are not
	// restricted to) hosts of their own region.
	Region string `json:"region,omitempty"`
	// Epoch is the fencing epoch of the host's current claim (0 unclaimed).
	Epoch int64 `json:"epoch,omitempty"`
	// ClaimedBy is the claiming master's session id ("" unclaimed).
	ClaimedBy string `json:"claimed_by,omitempty"`
	// Alive reports whether the lease is current.
	Alive bool `json:"alive"`
	// ExpiresIn is the remaining lease time in seconds (alive hosts only).
	ExpiresIn float64 `json:"expires_in_s,omitempty"`
}

// entry is the registry's mutable record of one host.
type entry struct {
	Host
	ttl     time.Duration
	expires time.Time
}

// Registry is the in-memory fleet registry. All methods are safe for
// concurrent use; expiry is checked lazily on every operation and by an
// optional watchdog (Start) so dead hosts are detected even while the
// registry is idle.
type Registry struct {
	defaultTTL time.Duration
	now        func() time.Time // wall clock; overridable in tests

	mu    sync.Mutex
	hosts map[string]*entry
	epoch int64

	stop     chan struct{}
	done     chan struct{}
	watching bool

	// Instrumentation (nil-safe without Instrument).
	mAlive    *obs.Gauge
	mClaimed  *obs.Gauge
	mEpoch    *obs.Gauge
	mRegister *obs.Counter
	mResur    *obs.Counter
	mBeats    *obs.Counter
	mUnknown  *obs.Counter
	mExpiries *obs.Counter
	mClaims   *obs.Counter
	mReleases *obs.Counter
	mDown     *obs.Counter
}

// NewRegistry creates a registry granting defaultTTL to registrations
// that do not name their own lease duration (15s when zero).
func NewRegistry(defaultTTL time.Duration) *Registry {
	if defaultTTL <= 0 {
		defaultTTL = 15 * time.Second
	}
	return &Registry{
		defaultTTL: defaultTTL,
		now:        time.Now,
		hosts:      map[string]*entry{},
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Instrument registers the registry's metrics. Call before serving.
func (r *Registry) Instrument(reg *obs.Registry) {
	r.mAlive = reg.Gauge(obs.MRegistryHostsAlive,
		"node hosts with a current lease")
	r.mClaimed = reg.Gauge(obs.MRegistryHostsClaimed,
		"alive hosts currently claimed by a master")
	r.mEpoch = reg.Gauge(obs.MRegistryFenceEpoch,
		"fencing epoch high-water mark")
	r.mRegister = reg.Counter(obs.MRegistryRegistrations,
		"host registrations, including re-registrations")
	r.mResur = reg.Counter(obs.MRegistryResurrections,
		"registrations that revived a host previously marked dead")
	r.mBeats = reg.Counter(obs.MRegistryHeartbeats,
		"accepted host heartbeats")
	r.mUnknown = reg.Counter(obs.MRegistryHeartbeatUnknown,
		"heartbeats refused for an unknown or expired host (caller re-registers)")
	r.mExpiries = reg.Counter(obs.MRegistryExpiries,
		"host leases that expired without a heartbeat")
	r.mClaims = reg.Counter(obs.MRegistryClaims,
		"hosts granted to claiming masters")
	r.mReleases = reg.Counter(obs.MRegistryReleases,
		"claims released by their master")
	r.mDown = reg.Counter(obs.MRegistryReportsDown,
		"hosts reported dead by their claiming master")
}

// Register upserts a host under a fresh lease and returns the granted TTL.
// A dead host registering again is resurrected (its stale claim, whose
// master has long failed over, is dissolved). The host echoes the highest
// fencing epoch it has accepted, so a restarted registry re-learns the
// fleet's epoch high-water mark from ordinary re-registration traffic and
// can never hand out an epoch that a host would consider stale.
func (r *Registry) Register(id, url string, nodes []string, region string, ttl time.Duration, epoch int64) time.Duration {
	if ttl <= 0 {
		ttl = r.defaultTTL
	}
	r.mu.Lock()
	r.expireLocked()
	e := r.hosts[id]
	if e == nil {
		e = &entry{Host: Host{ID: id}}
		r.hosts[id] = e
	} else if !e.Alive {
		e.ClaimedBy = ""
		e.Epoch = 0
		r.mResur.Inc()
	}
	e.URL = url
	e.Nodes = append([]string(nil), nodes...)
	sort.Strings(e.Nodes)
	e.Region = region
	e.Alive = true
	e.ttl = ttl
	e.expires = r.now().Add(ttl)
	if epoch > r.epoch {
		r.epoch = epoch
	}
	if epoch > e.Epoch {
		e.Epoch = epoch
	}
	r.gaugesLocked()
	r.mu.Unlock()
	r.mRegister.Inc()
	return ttl
}

// Heartbeat renews a registered host's lease. An unknown or expired host
// is refused — the caller falls back to a full Register, which is exactly
// how a crashed registry rebuilds its state from the fleet's ordinary
// lease traffic.
func (r *Registry) Heartbeat(id string, ttl time.Duration) error {
	r.mu.Lock()
	r.expireLocked()
	e := r.hosts[id]
	if e == nil || !e.Alive {
		r.mu.Unlock()
		r.mUnknown.Inc()
		return fmt.Errorf("registry: unknown host %q (re-register)", id)
	}
	if ttl > 0 {
		e.ttl = ttl
	}
	e.expires = r.now().Add(e.ttl)
	r.mu.Unlock()
	r.mBeats.Inc()
	return nil
}

// Claim grants up to want alive, unclaimed hosts to the master session,
// each under a fresh fencing epoch (strictly increasing across all claims
// registry-wide). Hosts in the master's region are preferred; when the
// region cannot satisfy the claim, hosts from other regions fill in —
// placement degrades gracefully rather than failing. want <= 0 claims
// every available host. The selection is deterministic (region match,
// then host id).
func (r *Registry) Claim(masterID string, want int, region string) []Host {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	var avail []*entry
	for _, e := range r.hosts {
		if e.Alive && e.ClaimedBy == "" {
			avail = append(avail, e)
		}
	}
	sort.Slice(avail, func(i, j int) bool {
		mi := region != "" && avail[i].Region == region
		mj := region != "" && avail[j].Region == region
		if mi != mj {
			return mi
		}
		return avail[i].ID < avail[j].ID
	})
	if want > 0 && len(avail) > want {
		avail = avail[:want]
	}
	out := make([]Host, 0, len(avail))
	for _, e := range avail {
		r.epoch++
		e.Epoch = r.epoch
		e.ClaimedBy = masterID
		out = append(out, r.snapLocked(e))
		r.mClaims.Inc()
	}
	r.gaugesLocked()
	return out
}

// Release returns a claimed host to the pool. Only the claiming master
// may release; stale callers are ignored.
func (r *Registry) Release(masterID, hostID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.hosts[hostID]
	if e == nil || e.ClaimedBy != masterID {
		return
	}
	e.ClaimedBy = ""
	r.mReleases.Inc()
	r.gaugesLocked()
}

// ReportDown marks a claimed host dead on its master's authority: the
// master's lease heartbeats and RPC retries against the host failed, which
// is faster and no less reliable than waiting out the registry-side TTL.
// Only the claiming master is believed.
func (r *Registry) ReportDown(masterID, hostID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.hosts[hostID]
	if e == nil || e.ClaimedBy != masterID {
		return fmt.Errorf("registry: %q does not hold a claim on %q", masterID, hostID)
	}
	e.Alive = false
	e.ClaimedBy = ""
	r.mDown.Inc()
	r.gaugesLocked()
	return nil
}

// Snapshot returns the fleet view, sorted by host id, for /status and the
// registry.fleet RPC.
func (r *Registry) Snapshot() []Host {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	out := make([]Host, 0, len(r.hosts))
	for _, e := range r.hosts {
		out = append(out, r.snapLocked(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Epoch returns the fencing epoch high-water mark.
func (r *Registry) Epoch() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Start launches the expiry watchdog so hosts are marked dead on schedule
// even while no master polls the registry. Close tears it down.
func (r *Registry) Start() {
	r.mu.Lock()
	if r.watching {
		r.mu.Unlock()
		return
	}
	r.watching = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		interval := r.defaultTTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			select {
			case <-r.stop:
				return
			case <-time.After(interval):
			}
			r.mu.Lock()
			r.expireLocked()
			r.mu.Unlock()
		}
	}()
}

// Close stops the watchdog.
func (r *Registry) Close() {
	r.mu.Lock()
	watching := r.watching
	r.watching = false
	r.mu.Unlock()
	if watching {
		close(r.stop)
		<-r.done
	}
}

// expireLocked sweeps lapsed leases: the host is marked dead and its claim
// dissolved, so the next Claim no longer sees it and the claiming master's
// own failure detection (lease errors, RPC failures) converges with the
// registry view. Callers hold r.mu.
func (r *Registry) expireLocked() {
	now := r.now()
	changed := false
	for _, e := range r.hosts {
		if e.Alive && !now.Before(e.expires) {
			e.Alive = false
			e.ClaimedBy = ""
			r.mExpiries.Inc()
			changed = true
		}
	}
	if changed {
		r.gaugesLocked()
	}
}

// snapLocked copies an entry into its public snapshot.
func (r *Registry) snapLocked(e *entry) Host {
	h := e.Host
	h.Nodes = append([]string(nil), e.Nodes...)
	if e.Alive {
		h.ExpiresIn = e.expires.Sub(r.now()).Seconds()
	}
	return h
}

// gaugesLocked refreshes the membership gauges. Callers hold r.mu.
func (r *Registry) gaugesLocked() {
	alive, claimed := 0, 0
	for _, e := range r.hosts {
		if e.Alive {
			alive++
			if e.ClaimedBy != "" {
				claimed++
			}
		}
	}
	r.mAlive.Set(int64(alive))
	r.mClaimed.Set(int64(claimed))
	r.mEpoch.Set(r.epoch)
}

package discovery_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/discovery"
	"excovery/internal/eventlog"
	"excovery/internal/master"
	"excovery/internal/node"
	"excovery/internal/sched"
	"excovery/internal/store"
)

// The virtual-time determinism harness: two full platform replicas share
// one virtual scheduler and event bus, standing in for two node hosts
// whose emulators would otherwise live in separate processes. A
// registry-backed fleet places the campaign on replica A and — when A is
// "killed" — re-places it on replica B, exactly like the distributed
// failover path but with every source of nondeterminism pinned.

// mgrHandle adapts node.Manager to master.NodeHandle (the in-process
// shape of the control channel, cf. internal/core's adapter).
type mgrHandle struct{ m *node.Manager }

func (h mgrHandle) ID() string                                  { return h.m.ID() }
func (h mgrHandle) PrepareRun(run int)                          { h.m.PrepareRun(run) }
func (h mgrHandle) CleanupRun(run int)                          { h.m.CleanupRun(run) }
func (h mgrHandle) Execute(a string, p map[string]string) error { return h.m.Execute(a, p) }
func (h mgrHandle) Emit(t string, p map[string]string)          { h.m.Emit(t, p) }
func (h mgrHandle) LocalTime() time.Time                        { return h.m.LocalTime() }
func (h mgrHandle) HarvestEvents(run int) []eventlog.Event      { return h.m.Recorder().RunEvents(run) }
func (h mgrHandle) HarvestPackets() []store.PacketRecord        { return h.m.HarvestRun() }
func (h mgrHandle) HarvestExtras() []store.ExtraMeasurement     { return h.m.HarvestExtras() }

// vhost is one virtual node host: a platform replica plus the fencing
// state a real noderpc.Host keeps (accepted epoch high-water mark).
type vhost struct {
	id  string
	x   *core.Experiment
	hnd map[string]master.NodeHandle

	mu     sync.Mutex
	epoch  int64
	killed bool
}

func (h *vhost) setMaster(epoch int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if epoch < h.epoch {
		return fmt.Errorf("set_master: fenced: stale epoch %d (host claimed at epoch %d)", epoch, h.epoch)
	}
	h.epoch = epoch
	return nil
}

func (h *vhost) kill() {
	h.mu.Lock()
	h.killed = true
	h.mu.Unlock()
}

func (h *vhost) dead() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.killed
}

// vfleet implements master.FleetManager over a discovery.Registry and the
// in-memory vhosts, mirroring discovery.Fleet's claim/adopt/failover
// choreography without the wire.
type vfleet struct {
	reg      *discovery.Registry
	masterID string
	byID     map[string]*vhost

	mu     sync.Mutex
	act    *vhost
	spares []discovery.Host
}

func (f *vfleet) connect(t *testing.T) {
	t.Helper()
	claimed := f.reg.Claim(f.masterID, 0, "")
	if len(claimed) == 0 {
		t.Fatal("vfleet: nothing claimable")
	}
	if err := f.byID[claimed[0].ID].setMaster(claimed[0].Epoch); err != nil {
		t.Fatal(err)
	}
	f.act, f.spares = f.byID[claimed[0].ID], claimed[1:]
}

// handoff is the reference campaign's planned migration: adopt the next
// spare at a run boundary with no failure involved. It consumes the same
// claims at the same boundary as a failover, so the two campaigns stay
// PRNG-for-PRNG comparable.
func (f *vfleet) handoff() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.byID[f.spares[0].ID]
	if err := h.setMaster(f.spares[0].Epoch); err != nil {
		return err
	}
	f.act, f.spares = h, f.spares[1:]
	return nil
}

// Failover implements master.FleetManager.
func (f *vfleet) Failover(run int, nodeErrs map[string]string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reg.ReportDown(f.masterID, f.act.id)
	for len(f.spares) > 0 {
		h := f.byID[f.spares[0].ID]
		epoch := f.spares[0].Epoch
		f.spares = f.spares[1:]
		if h.dead() {
			f.reg.Release(f.masterID, h.id)
			continue
		}
		if err := h.setMaster(epoch); err != nil {
			return "", err
		}
		f.act = h
		return h.id, nil
	}
	return "", fmt.Errorf("vfleet: no replacement for run %d", run)
}

func (f *vfleet) active() *vhost {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.act
}

// vnode is the stable handle the master keeps across failovers: it
// resolves the active host per call, like discovery.FleetNode.
type vnode struct {
	id string
	f  *vfleet
}

func (n *vnode) h() master.NodeHandle { return n.f.active().hnd[n.id] }

func (n *vnode) ID() string                                  { return n.id }
func (n *vnode) PrepareRun(run int)                          { n.h().PrepareRun(run) }
func (n *vnode) CleanupRun(run int)                          { n.h().CleanupRun(run) }
func (n *vnode) Execute(a string, p map[string]string) error { return n.h().Execute(a, p) }
func (n *vnode) Emit(t string, p map[string]string)          { n.h().Emit(t, p) }
func (n *vnode) LocalTime() time.Time                        { return n.h().LocalTime() }
func (n *vnode) HarvestEvents(run int) []eventlog.Event      { return n.h().HarvestEvents(run) }
func (n *vnode) HarvestPackets() []store.PacketRecord        { return n.h().HarvestPackets() }
func (n *vnode) HarvestExtras() []store.ExtraMeasurement     { return n.h().HarvestExtras() }

// Health implements master.HealthChecker: the preflight probe is where a
// dead host surfaces — before any platform activity, so a killed attempt
// consumes zero virtual time.
func (n *vnode) Health() error {
	if n.f.active().dead() {
		return fmt.Errorf("vnode %s: host %s is dead", n.id, n.f.active().id)
	}
	return nil
}

// venv is the stable environment executor across failovers.
type venv struct{ f *vfleet }

func (v venv) Execute(a string, p map[string]string) error { return v.f.active().x.Env.Execute(a, p) }
func (v venv) Reset()                                      { v.f.active().x.Env.Reset() }

type campaignResult struct {
	rep    *master.Report
	events map[int][]eventlog.Event
	pkts   map[int][]store.PacketRecord
	replay store.Replay
	fleet  *vfleet
}

// runVirtualCampaign executes one deterministic dual-replica campaign.
// kill=false performs a planned handoff to replica B after the second
// run; kill=true murders replica A at the same boundary and lets the
// master's failover path recover. Everything else is identical.
func runVirtualCampaign(t *testing.T, kill bool) campaignResult {
	t.Helper()
	s := sched.New(sched.Virtual, time.Unix(0, 0))
	bus := eventlog.NewBus(s)

	mkHost := func(id string) *vhost {
		x, err := core.New(desc.OneShot(30), core.Options{S: s, Bus: bus, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		hnd := make(map[string]master.NodeHandle, len(x.Managers))
		for nid, mgr := range x.Managers {
			hnd[nid] = mgrHandle{mgr}
		}
		return &vhost{id: id, x: x, hnd: hnd}
	}
	a := mkHost("h-a")
	b := mkHost("h-b")

	nodeIDs := make([]string, 0, len(a.hnd))
	for id := range a.hnd {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Strings(nodeIDs)

	reg := discovery.NewRegistry(time.Hour)
	reg.Register("h-a", "mem://a", nodeIDs, "", 0, 0)
	reg.Register("h-b", "mem://b", nodeIDs, "", 0, 0)
	vf := &vfleet{reg: reg, masterID: "m-det", byID: map[string]*vhost{"h-a": a, "h-b": b}}
	vf.connect(t)
	if vf.active() != a {
		t.Fatalf("initial placement on %s, want h-a", vf.active().id)
	}

	nodes := make(map[string]master.NodeHandle, len(nodeIDs))
	for _, id := range nodeIDs {
		nodes[id] = &vnode{id: id, f: vf}
	}

	e := desc.OneShot(30)
	e.Repl.Count = 4
	dir := t.TempDir()
	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}

	completed := 0
	moved := false
	m, err := master.New(master.Config{
		Exp: e, S: s, Bus: bus,
		Nodes:   nodes,
		Env:     venv{vf},
		Store:   st,
		Journal: j,
		Retry:   master.RetryPolicy{MaxAttempts: 2},
		Fleet:   vf,
		OnRunDone: func(run desc.Run, rr master.RunResult) {
			completed++
			if completed != 2 || moved {
				return
			}
			moved = true
			if kill {
				a.kill()
			} else if err := vf.handoff(); err != nil {
				t.Errorf("handoff: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var rep *master.Report
	var runErr error
	s.Go("experimaster", func() { rep, runErr = m.RunAll() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !moved {
		t.Fatal("boundary hook never fired")
	}
	if vf.active() != b {
		t.Fatalf("campaign ended on %s, want h-b", vf.active().id)
	}

	j.Close()
	j2, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	rp := j2.Replay()
	j2.Close()

	db, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	res := campaignResult{rep: rep, replay: rp, fleet: vf,
		events: map[int][]eventlog.Event{}, pkts: map[int][]store.PacketRecord{}}
	for _, rr := range rep.Results {
		id := rr.Run.ID
		if res.events[id], err = db.EventsOfRun(id); err != nil {
			t.Fatal(err)
		}
		if res.pkts[id], err = db.PacketsOfRun(id); err != nil {
			t.Fatal(err)
		}
	}
	return res
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// nodeScoped drops master/env-recorder events ("env" node) and rebases
// the bus sequence numbers, leaving exactly the platform nodes' telemetry
// in arrival order.
func nodeScoped(evs []eventlog.Event) []eventlog.Event {
	out := make([]eventlog.Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Node == "env" {
			continue
		}
		out = append(out, ev)
	}
	if len(out) > 0 {
		base := out[0].Seq
		for i := range out {
			out[i].Seq -= base
		}
	}
	return out
}

// TestFailoverReplayIsByteIdentical pins the strongest robustness claim:
// a campaign that loses its backing host mid-flight produces *the same
// level-3 artifacts* as one that migrated on purpose at the same run
// boundary. The killed attempt fails in preflight (zero virtual time),
// the journal shows exactly-once re-execution, and every unaffected run
// is byte-identical — events and packets. The interrupted run is
// byte-identical in its node-scoped telemetry; it differs only by the
// master's own retry/failover markers.
func TestFailoverReplayIsByteIdentical(t *testing.T) {
	ref := runVirtualCampaign(t, false)
	chaos := runVirtualCampaign(t, true)

	if ref.rep.Completed != 4 || chaos.rep.Completed != 4 {
		t.Fatalf("completed: ref %d, chaos %d, want 4", ref.rep.Completed, chaos.rep.Completed)
	}
	if ref.rep.Retried != 0 || chaos.rep.Retried != 1 {
		t.Fatalf("retried: ref %d, chaos %d, want 0/1", ref.rep.Retried, chaos.rep.Retried)
	}

	// The journal pins exactly-once re-execution of exactly one run.
	killRun := -1
	for id, n := range chaos.replay.Attempts {
		if !chaos.replay.Done[id] || chaos.replay.InDoubt(id) {
			t.Errorf("run %d not durably done after failover", id)
		}
		if n > 1 {
			if killRun != -1 {
				t.Fatalf("runs %d and %d both re-executed", killRun, id)
			}
			if n != 2 {
				t.Fatalf("run %d took %d attempts, want 2", id, n)
			}
			killRun = id
		}
	}
	if killRun != 2 {
		t.Fatalf("re-executed run = %d, want 2 (the one after the kill boundary)", killRun)
	}

	for _, rr := range ref.rep.Results {
		id := rr.Run.ID
		if !bytes.Equal(mustJSON(t, ref.pkts[id]), mustJSON(t, chaos.pkts[id])) {
			t.Errorf("run %d: packet records diverge between planned handoff and failover", id)
		}
		if id == killRun {
			refN := nodeScoped(ref.events[id])
			chaosN := nodeScoped(chaos.events[id])
			if !bytes.Equal(mustJSON(t, refN), mustJSON(t, chaosN)) {
				t.Errorf("run %d: node-scoped events of the re-executed run diverge", id)
			}
			sawRetry := false
			for _, ev := range chaos.events[id] {
				if ev.Type == eventlog.EvRunRetry {
					sawRetry = true
				}
			}
			if !sawRetry {
				t.Errorf("run %d: no %s marker in the failover campaign", id, eventlog.EvRunRetry)
			}
			continue
		}
		if !bytes.Equal(mustJSON(t, ref.events[id]), mustJSON(t, chaos.events[id])) {
			t.Errorf("run %d: events diverge between planned handoff and failover", id)
		}
	}

	// Fencing survives in the virtual harness too: after the failover the
	// survivor was claimed at a higher epoch and refuses the old one.
	stale := chaos.fleet.byID["h-b"].epoch - 1
	if err := chaos.fleet.byID["h-b"].setMaster(stale); err == nil {
		t.Fatal("survivor accepted a stale fencing epoch")
	}
	// The registry marked the dead host; only a re-registration revives it.
	for _, h := range chaos.fleet.reg.Snapshot() {
		if h.ID == "h-a" && h.Alive {
			t.Fatalf("dead host still alive in the registry: %+v", h)
		}
	}
}

package discovery_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/discovery"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/fault"
	"excovery/internal/master"
	"excovery/internal/noderpc"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/xmlrpc"
)

// fleetHost is one live node host: emulated platform, RPC server (with a
// failpoint registry so tests can partition it), and registry agent.
type fleetHost struct {
	host  *noderpc.Host
	http  *httptest.Server
	fp    *failpoint.Registry
	agent *discovery.Agent
	stop  func()
}

func startFleetHost(t *testing.T, regURL, hostID string, seed int64) *fleetHost {
	t.Helper()
	var host *noderpc.Host
	x, err := core.New(desc.OneShot(30), core.Options{
		RealTime: true,
		Speed:    0.002,
		OnEvent:  func(ev eventlog.Event) { host.ForwardEvent(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	host = noderpc.NewHost(x)
	srv := host.Server()
	fp := failpoint.New(seed)
	srv.FP = fp
	ts := httptest.NewServer(srv)
	x.S.SetKeepAlive(true)
	hostDone := make(chan error, 1)
	go func() { hostDone <- x.S.Run() }()

	ids := make([]string, 0, len(x.Managers))
	for id := range x.Managers {
		ids = append(ids, id)
	}
	agent := &discovery.Agent{
		C:         xmlrpc.NewClient(regURL),
		HostID:    hostID,
		URL:       ts.URL,
		Nodes:     ids,
		Heartbeat: 100 * time.Millisecond,
		Epoch:     host.FenceEpoch,
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	fh := &fleetHost{host: host, http: ts, fp: fp, agent: agent}
	fh.stop = func() {
		agent.Stop()
		host.Close()
		x.S.Stop()
		<-hostDone
		ts.Close()
	}
	t.Cleanup(fh.stop)
	return fh
}

// TestCampaignSurvivesHostDeath is the tentpole acceptance scenario: two
// node hosts register with a discovery registry, a master claims both and
// runs a campaign on the first; mid-campaign the active host is
// partitioned away (a control-plane kill). The campaign must complete by
// re-placing the dead host's runs onto the survivor, the journal must
// show exactly one re-executed attempt and durable completion for every
// run, and the displaced host's fencing epoch must keep refusing the
// stale master after the heal.
func TestCampaignSurvivesHostDeath(t *testing.T) {
	reg := discovery.NewRegistry(2 * time.Second)
	regHTTP := httptest.NewServer(reg.Server())
	defer regHTTP.Close()

	a := startFleetHost(t, regHTTP.URL, "h-aaa", 11)
	b := startFleetHost(t, regHTTP.URL, "h-bbb", 12)

	// --- master over the fleet ---
	ms := sched.New(sched.RealTime, time.Unix(0, 0))
	ms.SetSpeed(0.002)
	bus := eventlog.NewBus(ms)
	masterHTTP := httptest.NewServer(noderpc.MasterServer(ms, bus))
	defer masterHTTP.Close()

	policy := xmlrpc.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Seed:        5,
	}
	mreg := obs.NewRegistry()
	fleet := &discovery.Fleet{
		Reg:            xmlrpc.NewClient(regHTTP.URL),
		MasterID:       noderpc.NewSessionID(),
		MasterURL:      masterHTTP.URL,
		LeaseTTL:       time.Hour,
		NewClient:      func(url string) *xmlrpc.Client { return xmlrpc.NewRetryingClient(url, policy) },
		ReplaceTimeout: 10 * time.Second,
		Poll:           50 * time.Millisecond,
		Obs:            mreg,
	}
	if err := fleet.Connect(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if got := fleet.ActiveHost().ID; got != "h-aaa" {
		t.Fatalf("active host = %s, want h-aaa (deterministic claim order)", got)
	}

	e := desc.OneShot(30)
	e.Repl.Count = 6
	dir := t.TempDir()
	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	part := fault.NewRPCPartition(a.fp)
	killed := false
	m, err := master.New(master.Config{
		Exp: e, S: ms, Bus: bus,
		Nodes:   fleet.Handles(),
		Env:     fleet.Env(),
		Store:   st,
		Journal: j,
		Retry:   master.RetryPolicy{MaxAttempts: 3, QuarantineAfter: 8},
		Fleet:   fleet,
		Metrics: mreg,
		OnRunDone: func(run desc.Run, rr master.RunResult) {
			// Run boundary two: the active host drops off the network —
			// its RPC server stops answering and its registry heartbeats
			// cease, exactly as if the machine lost power.
			if !killed && rr.Attempts > 0 && run.ID == e.Repl.Count/2 {
				killed = true
				a.agent.Stop()
				part.Start()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var rep *master.Report
	var runErr error
	ms.Go("experimaster", func() { rep, runErr = m.RunAll() })
	if err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !killed {
		t.Fatal("kill hook never fired")
	}

	// The campaign completed despite losing its backing host mid-flight.
	if rep.Completed != len(rep.Results) || rep.Completed != 6 {
		t.Fatalf("completed %d/%d runs across the host death", rep.Completed, len(rep.Results))
	}
	if got := fleet.ActiveHost().ID; got != "h-bbb" {
		t.Fatalf("active host after failover = %s, want h-bbb", got)
	}
	if st := b.host.Status(); !st.MasterSet || st.Session != fleet.MasterID {
		t.Fatalf("survivor host not adopted by the master: %+v", st)
	}
	if got := mreg.CounterTotal(obs.MMasterFailovers); got != 1 {
		t.Fatalf("failover counter = %d, want 1", got)
	}

	// Exactly-once re-execution: re-open the journal the way a resuming
	// master would — it must show every run durably done, exactly one run
	// needing a second attempt (the one the death interrupted), and
	// nothing left in doubt.
	j.Close()
	j2, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rp := j2.Replay()
	retriedRuns := 0
	for _, rr := range rep.Results {
		id := rr.Run.ID
		if !rp.Done[id] {
			t.Errorf("run %d has no durable completion record", id)
		}
		if rp.InDoubt(id) {
			t.Errorf("run %d left in doubt", id)
		}
		if rp.Attempts[id] > 1 {
			retriedRuns++
			if rp.Attempts[id] != 2 {
				t.Errorf("run %d took %d attempts, want 2", id, rp.Attempts[id])
			}
		}
	}
	if retriedRuns != 1 {
		t.Fatalf("%d runs were re-executed, want exactly the interrupted one", retriedRuns)
	}

	// Fencing: heal the partition — the displaced host is reachable again
	// but was claimed at epoch 1, which the failover outgrew. Its own
	// state still refuses the stale epoch, and the survivor (claimed at a
	// higher epoch) refuses anything older.
	part.Stop()
	staleEpoch := 1
	if _, err := xmlrpc.NewClient(b.http.URL).Call("host.set_master",
		"http://stale-master", "s-stale", 60000, staleEpoch); err == nil {
		t.Fatal("survivor accepted a set_master from a fenced epoch")
	} else if !strings.Contains(err.Error(), "stale epoch") {
		t.Fatalf("stale set_master refused with the wrong error: %v", err)
	}
	rn := &noderpc.RemoteNode{NodeID: "A", C: xmlrpc.NewClient(b.http.URL)}
	rn.SetFenceEpoch(int64(staleEpoch))
	rn.PrepareRun(99)
	if err := rn.Err(); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("data-path RPC under a stale epoch = %v, want fenced refusal", err)
	}
	if st := b.host.Status(); st.FencedRejections == 0 {
		t.Fatalf("survivor recorded no fenced rejections: %+v", st)
	}

	// The artifacts are real: every run reaches level 3.
	db, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Results {
		evs, err := db.EventsOfRun(rr.Run.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) == 0 {
			t.Fatalf("run %d committed no events", rr.Run.ID)
		}
	}
}

// TestRegistryPartitionHealRebuild is the crash-tolerance scenario for
// the registry itself: a host's heartbeats are cut off until its
// registration lease expires, then the partition heals. The agent's next
// refused heartbeat must fall back to a full re-registration, the
// registry's fleet view must rebuild, and the host must be claimable
// again — all without restarting anything.
func TestRegistryPartitionHealRebuild(t *testing.T) {
	reg := discovery.NewRegistry(time.Second)
	srv := reg.Server()
	fp := failpoint.New(3)
	srv.FP = fp
	regHTTP := httptest.NewServer(srv)
	defer regHTTP.Close()

	agent := &discovery.Agent{
		C:         xmlrpc.NewClient(regHTTP.URL),
		HostID:    "h-part",
		URL:       "http://127.0.0.1:1",
		Nodes:     []string{"A"},
		TTL:       300 * time.Millisecond,
		Heartbeat: 60 * time.Millisecond,
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer agent.Stop()

	part := fault.NewRPCPartition(fp)
	part.Start()
	waitFor(t, "registration lease expiry", func() bool {
		snap := reg.Snapshot()
		return len(snap) == 1 && !snap[0].Alive
	})

	part.Stop()
	waitFor(t, "re-registration after heal", func() bool {
		_, rebinds, _ := agent.Stats()
		snap := reg.Snapshot()
		return rebinds >= 1 && len(snap) == 1 && snap[0].Alive
	})
	if got := reg.Claim("m-1", 0, ""); len(got) != 1 || got[0].ID != "h-part" {
		t.Fatalf("healed host not claimable: %+v", got)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

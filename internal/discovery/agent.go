package discovery

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"excovery/internal/noderpc"
	"excovery/internal/obs"
	"excovery/internal/xmlrpc"
)

// NewHostID returns a fresh node-host identity for registry registration.
// Hosts that want a stable identity across restarts pass their own id
// instead (excovery-node -host-id).
func NewHostID() string {
	var b [6]byte
	rand.Read(b[:])
	return "h-" + hex.EncodeToString(b[:])
}

// Agent keeps one node host registered: it announces the host's
// capabilities to the registry and renews the lease from a jittered
// heartbeat loop (the noderpc.Lease machinery, pointed at the registry
// protocol). A refused heartbeat — the registry restarted, or the lease
// expired across a partition — falls back to a full re-registration, so
// the registry's soft state rebuilds from the fleet's ordinary lease
// traffic without operator intervention.
type Agent struct {
	// C is the registry's XML-RPC endpoint.
	C *xmlrpc.Client
	// HostID identifies this host (NewHostID or a stable operator id).
	HostID string
	// URL is the advertised control endpoint masters should dial.
	URL string
	// Nodes are the platform node ids served here.
	Nodes []string
	// Region is the optional placement tag.
	Region string
	// TTL is the requested registration lease (default 3x Heartbeat).
	TTL time.Duration
	// Heartbeat is the renewal period (default TTL/3, then 5s).
	Heartbeat time.Duration
	// Epoch, if set, reports the host's accepted fencing epoch high-water
	// mark (noderpc.Host.FenceEpoch) with every registration, so a
	// restarted registry re-learns it before granting new claims.
	Epoch func() int64
	// Obs, if set, receives the heartbeat counters.
	Obs *obs.Registry

	lease *noderpc.Lease
}

// Start registers the host and launches the heartbeat loop. The initial
// registration must succeed — a host that cannot reach its configured
// registry at boot is misconfigured and should say so immediately.
func (a *Agent) Start() error {
	if a.HostID == "" || a.URL == "" {
		return fmt.Errorf("discovery agent: need HostID and URL")
	}
	if a.Heartbeat <= 0 {
		if a.TTL > 0 {
			a.Heartbeat = a.TTL / 3
		} else {
			a.Heartbeat = 5 * time.Second
		}
	}
	if a.TTL <= 0 {
		a.TTL = 3 * a.Heartbeat
	}
	a.lease = &noderpc.Lease{
		Session:    a.HostID,
		TTL:        a.TTL,
		Interval:   a.Heartbeat,
		RegisterFn: a.register,
		RenewFn:    a.heartbeat,
		Obs:        a.Obs,
	}
	if err := a.lease.Register(); err != nil {
		return fmt.Errorf("discovery agent: register with %s: %w", a.C.URL, err)
	}
	a.lease.Start()
	return nil
}

// Stop halts the heartbeat loop.
func (a *Agent) Stop() {
	if a.lease != nil {
		a.lease.Stop()
	}
}

// Stats exposes the underlying lease accounting (renewals, re-register
// rebinds, hard errors).
func (a *Agent) Stats() (renewals, rebinds, errs int) {
	if a.lease == nil {
		return 0, 0, 0
	}
	return a.lease.Stats()
}

func (a *Agent) register() error {
	nodes := make([]any, 0, len(a.Nodes))
	for _, n := range a.Nodes {
		nodes = append(nodes, n)
	}
	var epoch int64
	if a.Epoch != nil {
		epoch = a.Epoch()
	}
	_, err := a.C.Call("registry.register", a.HostID, a.URL, nodes, a.Region,
		int(a.TTL/time.Millisecond), int(epoch))
	return err
}

func (a *Agent) heartbeat() error {
	_, err := a.C.Call("registry.heartbeat", a.HostID, int(a.TTL/time.Millisecond))
	return err
}

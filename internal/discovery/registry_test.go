package discovery

import (
	"fmt"
	"testing"
	"time"

	"excovery/internal/obs"
)

// fakeClock drives the registry's failure detection deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	r := NewRegistry(ttl)
	c := &fakeClock{t: time.Unix(1400000000, 0)}
	r.now = c.now
	return r, c
}

func TestRegisterClaimLifecycle(t *testing.T) {
	r, _ := newTestRegistry(time.Second)
	r.Instrument(obs.NewRegistry())
	r.Register("h-b", "http://b", []string{"A", "B"}, "eu", 0, 0)
	r.Register("h-a", "http://a", []string{"A", "B"}, "us", 0, 0)

	got := r.Claim("m-1", 1, "")
	if len(got) != 1 || got[0].ID != "h-a" {
		t.Fatalf("claim = %+v, want h-a (id order)", got)
	}
	if got[0].Epoch != 1 {
		t.Fatalf("first claim epoch = %d, want 1", got[0].Epoch)
	}
	if got[0].Nodes[0] != "A" || got[0].Nodes[1] != "B" {
		t.Fatalf("claim nodes = %v", got[0].Nodes)
	}

	// A second master cannot claim the same host; it gets the other one
	// under a strictly higher epoch.
	got2 := r.Claim("m-2", 0, "")
	if len(got2) != 1 || got2[0].ID != "h-b" || got2[0].Epoch != 2 {
		t.Fatalf("second claim = %+v", got2)
	}

	// Release returns the host to the pool; a stale releaser is ignored.
	r.Release("m-2", "h-a")
	if got := r.Claim("m-2", 0, ""); len(got) != 0 {
		t.Fatalf("claim after stale release = %+v, want none", got)
	}
	r.Release("m-1", "h-a")
	got3 := r.Claim("m-2", 0, "")
	if len(got3) != 1 || got3[0].ID != "h-a" || got3[0].Epoch != 3 {
		t.Fatalf("claim after release = %+v", got3)
	}
}

func TestClaimPrefersRegionButDegrades(t *testing.T) {
	r, _ := newTestRegistry(time.Second)
	r.Register("h-a", "http://a", nil, "us", 0, 0)
	r.Register("h-b", "http://b", nil, "eu", 0, 0)
	r.Register("h-c", "http://c", nil, "eu", 0, 0)

	got := r.Claim("m-1", 2, "eu")
	if len(got) != 2 || got[0].ID != "h-b" || got[1].ID != "h-c" {
		t.Fatalf("regional claim = %+v, want h-b,h-c", got)
	}
	// The region is drained: the next claim falls through to the other
	// region instead of failing.
	got = r.Claim("m-1", 2, "eu")
	if len(got) != 1 || got[0].ID != "h-a" {
		t.Fatalf("degraded claim = %+v, want h-a", got)
	}
}

func TestExpiryAndResurrection(t *testing.T) {
	r, clk := newTestRegistry(time.Second)
	r.Register("h-a", "http://a", nil, "", 0, 0)
	if got := r.Claim("m-1", 0, ""); len(got) != 1 {
		t.Fatalf("claim = %+v", got)
	}

	// Heartbeats hold the lease.
	clk.advance(700 * time.Millisecond)
	if err := r.Heartbeat("h-a", 0); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clk.advance(700 * time.Millisecond)
	if snap := r.Snapshot(); !snap[0].Alive {
		t.Fatalf("host dead despite heartbeat: %+v", snap[0])
	}

	// Silence kills it: lease lapses, claim dissolves, heartbeat refused.
	clk.advance(1100 * time.Millisecond)
	snap := r.Snapshot()
	if snap[0].Alive || snap[0].ClaimedBy != "" {
		t.Fatalf("host should be dead and unclaimed: %+v", snap[0])
	}
	if err := r.Heartbeat("h-a", 0); err == nil {
		t.Fatal("heartbeat of expired host must be refused")
	}
	if got := r.Claim("m-2", 0, ""); len(got) != 0 {
		t.Fatalf("dead host claimable: %+v", got)
	}

	// Re-registration resurrects; the next claim epoch stays monotonic.
	r.Register("h-a", "http://a", nil, "", 0, 0)
	got := r.Claim("m-2", 0, "")
	if len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("post-resurrection claim = %+v, want epoch 2", got)
	}
}

func TestReportDown(t *testing.T) {
	r, _ := newTestRegistry(time.Minute)
	r.Register("h-a", "http://a", nil, "", 0, 0)
	r.Claim("m-1", 0, "")
	if err := r.ReportDown("m-2", "h-a"); err == nil {
		t.Fatal("non-claimer may not report a host down")
	}
	if err := r.ReportDown("m-1", "h-a"); err != nil {
		t.Fatalf("report down: %v", err)
	}
	if snap := r.Snapshot(); snap[0].Alive {
		t.Fatalf("reported-down host still alive: %+v", snap[0])
	}
	// The host's own re-registration brings it back.
	r.Register("h-a", "http://a", nil, "", 0, 0)
	if snap := r.Snapshot(); !snap[0].Alive || snap[0].ClaimedBy != "" {
		t.Fatalf("re-registered host: %+v", snap[0])
	}
}

// TestEpochRebuildAfterRegistryCrash is the crash-tolerance contract: a
// fresh registry learns the fleet's fencing epoch high-water mark from the
// hosts' re-registrations, so it can never grant a claim a host would
// refuse as stale.
func TestEpochRebuildAfterRegistryCrash(t *testing.T) {
	r1, _ := newTestRegistry(time.Second)
	r1.Register("h-a", "http://a", nil, "", 0, 0)
	r1.Register("h-b", "http://b", nil, "", 0, 0)
	var last int64
	for i := 0; i < 5; i++ {
		got := r1.Claim(fmt.Sprintf("m-%d", i), 1, "")
		r1.Release(fmt.Sprintf("m-%d", i), got[0].ID)
		last = got[0].Epoch
	}

	// "Restart": a brand-new registry; the hosts re-register, echoing the
	// epochs their noderpc fencing state has accepted.
	r2, _ := newTestRegistry(time.Second)
	r2.Register("h-a", "http://a", nil, "", 0, last)
	r2.Register("h-b", "http://b", nil, "", 0, last-1)
	got := r2.Claim("m-9", 1, "")
	if len(got) != 1 || got[0].Epoch <= last {
		t.Fatalf("post-crash claim epoch = %+v, want > %d", got, last)
	}
}

func BenchmarkRegistryHeartbeat(b *testing.B) {
	r, _ := newTestRegistry(time.Minute)
	const hosts = 64
	ids := make([]string, hosts)
	for i := range ids {
		ids[i] = fmt.Sprintf("h-%03d", i)
		r.Register(ids[i], "http://h", []string{"A", "B"}, "eu", 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Heartbeat(ids[i%hosts], 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryClaim(b *testing.B) {
	r, _ := newTestRegistry(time.Minute)
	const hosts = 64
	for i := 0; i < hosts; i++ {
		r.Register(fmt.Sprintf("h-%03d", i), "http://h", []string{"A", "B"}, "eu", 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := r.Claim("m-1", 1, "eu")
		if len(got) != 1 {
			b.Fatal("no host")
		}
		r.Release("m-1", got[0].ID)
	}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every obs type must be a no-op when nil, so instrumentation points
	// need no guards.
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	r.Gauge("g", "").Set(7)
	r.Histogram("h", "", nil).Observe(0.1)
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	id := tr.Begin(0, "t", "run", "r", 0, 1, nil)
	tr.End(id)
	if got := tr.Spans(); got != nil {
		t.Fatal("nil tracer recorded spans")
	}
	var st *Status
	st.RunStarted(1, 1, nil)
	if snap := st.Snapshot(); snap.State != "idle" {
		t.Fatalf("nil status snapshot = %+v", snap)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("excovery_calls_total", "calls", "method", "a").Add(3)
	r.Counter("excovery_calls_total", "calls", "method", "b").Inc()
	r.Gauge("excovery_outbox_len", "queued events").Set(12)
	h := r.Histogram("excovery_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE excovery_calls_total counter",
		`excovery_calls_total{method="a"} 3`,
		`excovery_calls_total{method="b"} 1`,
		"# TYPE excovery_outbox_len gauge",
		"excovery_outbox_len 12",
		"# TYPE excovery_latency_seconds histogram",
		`excovery_latency_seconds_bucket{le="0.1"} 1`,
		`excovery_latency_seconds_bucket{le="1"} 2`,
		`excovery_latency_seconds_bucket{le="+Inf"} 3`,
		"excovery_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if r.CounterTotal("excovery_calls_total") != 4 {
		t.Fatalf("CounterTotal = %d, want 4", r.CounterTotal("excovery_calls_total"))
	}
	if r.CounterValue("excovery_calls_total", "method", "a") != 3 {
		t.Fatal("CounterValue lookup failed")
	}
	if r.HistogramTotal("excovery_latency_seconds") != 3 {
		t.Fatal("HistogramTotal")
	}
}

func TestRegistrySameSeriesSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "m", "1")
	b := r.Counter("x_total", "", "m", "1")
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
}

func TestTracerHierarchyAndRunSpans(t *testing.T) {
	now := time.Unix(0, 0)
	tr := NewTracer(func() time.Time { return now })
	exp := tr.Begin(0, "master", "experiment", "exp", -1, 0, nil)
	run := tr.Begin(exp, "master", "run", "run 0", 0, 1, map[string]string{"seed": "42"})
	now = now.Add(time.Second)
	ph := tr.Begin(run, "master", "phase", "prepare", 0, 1, nil)
	now = now.Add(time.Second)
	tr.End(ph)
	tr.EndWith(run, map[string]string{"err": "boom"})
	tr.End(exp)

	spans := tr.RunSpans(0)
	if len(spans) != 2 {
		t.Fatalf("RunSpans(0) = %d spans, want 2 (run + phase)", len(spans))
	}
	if spans[0].Cat != "run" || spans[0].Args["seed"] != "42" || spans[0].Args["err"] != "boom" {
		t.Fatalf("run span = %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatal("phase span not parented under run span")
	}
	if spans[1].Duration() != time.Second {
		t.Fatalf("phase duration = %v", spans[1].Duration())
	}

	// Round trip through the level-2 artifact format.
	back, err := UnmarshalSpans(MarshalSpans(spans))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "run 0" {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestChromeTraceExport(t *testing.T) {
	now := time.Unix(100, 0)
	tr := NewTracer(func() time.Time { return now })
	a := tr.Begin(0, "master", "run", "run 0", 0, 1, nil)
	b := tr.Begin(a, "proc sm@A", "action", "sd_publish", 0, 1, nil)
	now = now.Add(50 * time.Millisecond)
	tr.End(b)
	tr.End(a)

	out := ChromeTrace(tr.Spans())
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var meta, complete int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			tids[ev.TID] = true
			if ev.Name == "sd_publish" && ev.Dur != 50_000 {
				t.Fatalf("action dur = %dus, want 50000", ev.Dur)
			}
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("events meta=%d complete=%d, want 2/2", meta, complete)
	}
	if len(tids) != 2 {
		t.Fatal("tracks not mapped to distinct thread lanes")
	}
}

func TestStatusLifecycle(t *testing.T) {
	st := NewStatus(nil)
	st.ExperimentStarted("exp1", 10)
	st.RunStarted(3, 2, map[string]string{"fact_bw": "50"})
	st.PhaseChanged("execute")
	st.NodeFailed("A", "conn refused", 2)
	st.NodeQuarantined("A")
	st.NodeHealthy("B")
	snap := st.Snapshot()
	if snap.State != "running" || snap.Run != 3 || snap.Attempt != 2 || snap.Phase != "execute" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Treatment["fact_bw"] != "50" {
		t.Fatal("treatment missing")
	}
	if snap.Nodes["A"].Health != "quarantined" || snap.Nodes["B"].Health != "ok" {
		t.Fatalf("nodes = %+v", snap.Nodes)
	}
	// A quarantined node stays quarantined even after a later success.
	st.NodeHealthy("A")
	if st.Snapshot().Nodes["A"].Health != "quarantined" {
		t.Fatal("quarantine cleared by NodeHealthy")
	}
	st.RunFinished("completed", true)
	st.ExperimentFinished()
	snap = st.Snapshot()
	if snap.State != "done" || snap.RunsCompleted != 1 || snap.RunsRetried != 1 {
		t.Fatalf("final snapshot = %+v", snap)
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help").Inc()
	st := NewStatus(nil)
	st.ExperimentStarted("exp1", 1)
	srv := httptest.NewServer(NewMux(reg, func() any { return st.Snapshot() }))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "x_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get("/status")
	if code != 200 {
		t.Fatalf("/status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if snap.Experiment != "exp1" || snap.State != "running" {
		t.Fatalf("/status = %+v", snap)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.Observe(0.1) // on the boundary counts into le="0.1"
	h.Observe(1.5)
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket0 = %d", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d", got)
	}
	if h.Count() != 2 {
		t.Fatal("count")
	}
}

package obs

import (
	"testing"
	"time"
)

// TestTracerEvictionKeepsOpenSpans opens a span, pushes the tracer across
// the traceCap eviction boundary with closed filler spans, and verifies
// End still closes exactly the held span: compaction must re-point the
// open-map index at the span's new position.
func TestTracerEvictionKeepsOpenSpans(t *testing.T) {
	base := time.Unix(1000, 0)
	var tick int64
	tr := NewTracer(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Microsecond)
	})
	held := tr.Begin(0, "master", "run", "held", 1, 1, nil)
	for i := 0; i < traceCap+16; i++ {
		id := tr.Begin(held, "master", "action", "filler", 1, 1, nil)
		tr.End(id)
	}
	tr.EndWith(held, map[string]string{"mark": "held"})

	spans := tr.Spans()
	if len(spans) > traceCap {
		t.Fatalf("compaction did not bound the ring: %d spans", len(spans))
	}
	found := 0
	for _, sp := range spans {
		if sp.ID == held {
			found++
			if sp.End.IsZero() {
				t.Fatalf("held span %d not closed after eviction", held)
			}
			if sp.Args["mark"] != "held" {
				t.Fatalf("held span %d lost EndWith args: %v", held, sp.Args)
			}
			continue
		}
		if sp.Args["mark"] == "held" {
			t.Fatalf("EndWith mutated the wrong span: id %d", sp.ID)
		}
		if sp.End.IsZero() {
			t.Fatalf("filler span %d reopened by compaction", sp.ID)
		}
	}
	if found != 1 {
		t.Fatalf("held span appears %d times after eviction", found)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.open) != 0 {
		t.Fatalf("open map retains %d entries after everything closed", len(tr.open))
	}
}

// TestTracerEvictionZeroTimeClose closes a span while the tracer clock
// still reads the zero instant — exactly what a virtual-time clock
// produces at experiment start. Compaction used to treat the zero End as
// "still open", resurrecting the span into the open map, where a stray
// duplicate End could then mutate the long-closed span.
func TestTracerEvictionZeroTimeClose(t *testing.T) {
	var now time.Time // zero epoch, as a virtual scheduler clock starts
	tr := NewTracer(func() time.Time { return now })
	early := tr.Begin(0, "master", "action", "early", 0, 1, nil)
	tr.End(early) // End stamped at the zero time
	now = now.Add(time.Second)
	for i := 0; i < traceCap+16; i++ {
		id := tr.Begin(0, "master", "action", "filler", 1, 1, nil)
		tr.End(id)
	}
	// A duplicate End on the long-closed early span must be a no-op.
	tr.EndWith(early, map[string]string{"corrupt": "yes"})
	for _, sp := range tr.Spans() {
		if sp.Args["corrupt"] == "yes" {
			t.Fatalf("duplicate End mutated span %d after eviction", sp.ID)
		}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for id := range tr.open {
		if id == early {
			t.Fatalf("compaction resurrected closed span %d into the open map", early)
		}
	}
	if len(tr.open) != 0 {
		t.Fatalf("open map retains %d entries after everything closed", len(tr.open))
	}
}

package obs

import (
	"sync"
	"time"
)

// NodeState is the live control-channel view of one participating node.
type NodeState struct {
	// Health is "ok", "failing", "quarantined" or "probation".
	Health string `json:"health"`
	// ConsecutiveFailures counts control-channel failures since the last
	// success (mirrors the master's quarantine accounting).
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastErr is the most recent control-channel error ("" when healthy).
	LastErr string `json:"last_err,omitempty"`
	// ProbationOK and ProbationNeed track a quarantined node's path back:
	// ProbationOK consecutive healthy probes out of ProbationNeed.
	ProbationOK   int `json:"probation_ok,omitempty"`
	ProbationNeed int `json:"probation_need,omitempty"`
	// Readmitted marks a node that was quarantined and later re-admitted.
	Readmitted bool `json:"readmitted,omitempty"`
}

// Snapshot is the JSON document served on /status: what the master is
// doing right now and how the control plane is holding up.
type Snapshot struct {
	// Experiment is the executing experiment's name ("" before init).
	Experiment string `json:"experiment"`
	// State is "idle", "running" or "done".
	State string `json:"state"`
	// Run, Attempt and Phase locate the current execution position:
	// Phase is one of "prepare", "execute", "cleanup" ("" between runs);
	// Run is -1 outside any run.
	Run     int    `json:"run"`
	Attempt int    `json:"attempt,omitempty"`
	Phase   string `json:"phase,omitempty"`
	// Treatment is the current run's factor → raw level map.
	Treatment map[string]string `json:"treatment,omitempty"`
	// Run accounting so far.
	RunsTotal     int `json:"runs_total"`
	RunsCompleted int `json:"runs_completed"`
	RunsSkipped   int `json:"runs_skipped,omitempty"`
	RunsFailed    int `json:"runs_failed,omitempty"`
	RunsRetried   int `json:"runs_retried,omitempty"`
	// Nodes maps node ids to their health/quarantine state.
	Nodes map[string]NodeState `json:"nodes,omitempty"`
	// NodesReporting is how many node hosts delivered a metric snapshot at
	// the last campaign fan-in (0 before the first fan-in).
	NodesReporting int `json:"nodes_reporting,omitempty"`
	// UpdatedAt is the reference-clock time of the last update.
	UpdatedAt time.Time `json:"updated_at"`
}

// Status tracks the live execution state. All methods are safe for
// concurrent use and no-ops on a nil receiver; Snapshot on nil returns a
// zero snapshot.
type Status struct {
	now func() time.Time

	mu   sync.Mutex
	snap Snapshot
}

// NewStatus creates a status tracker on the given clock (nil means wall
// time).
func NewStatus(now func() time.Time) *Status {
	if now == nil {
		now = time.Now
	}
	return &Status{now: now, snap: Snapshot{State: "idle", Run: -1}}
}

func (s *Status) update(fn func(*Snapshot)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(&s.snap)
	s.snap.UpdatedAt = s.now()
}

// ExperimentStarted records experiment init.
func (s *Status) ExperimentStarted(name string, totalRuns int) {
	s.update(func(sn *Snapshot) {
		sn.Experiment = name
		sn.State = "running"
		sn.RunsTotal = totalRuns
		sn.Run = -1
	})
}

// ExperimentFinished records experiment exit.
func (s *Status) ExperimentFinished() {
	s.update(func(sn *Snapshot) {
		sn.State = "done"
		sn.Run = -1
		sn.Attempt = 0
		sn.Phase = ""
		sn.Treatment = nil
	})
}

// RunStarted records the start of one run attempt.
func (s *Status) RunStarted(run, attempt int, treatment map[string]string) {
	s.update(func(sn *Snapshot) {
		sn.Run = run
		sn.Attempt = attempt
		sn.Phase = "prepare"
		sn.Treatment = treatment
	})
}

// PhaseChanged records a phase transition of the current run attempt.
func (s *Status) PhaseChanged(phase string) {
	s.update(func(sn *Snapshot) { sn.Phase = phase })
}

// RunFinished records the outcome of one run: "completed", "failed" or
// "skipped"; retried marks runs that consumed more than one attempt.
func (s *Status) RunFinished(outcome string, retried bool) {
	s.update(func(sn *Snapshot) {
		switch outcome {
		case "completed":
			sn.RunsCompleted++
		case "failed":
			sn.RunsFailed++
		case "skipped":
			sn.RunsSkipped++
		}
		if retried {
			sn.RunsRetried++
		}
		sn.Run = -1
		sn.Attempt = 0
		sn.Phase = ""
		sn.Treatment = nil
	})
}

// NodeHealthy records a successful control-channel interaction.
func (s *Status) NodeHealthy(id string) {
	s.update(func(sn *Snapshot) {
		if sn.Nodes == nil {
			sn.Nodes = map[string]NodeState{}
		}
		ns := sn.Nodes[id]
		if ns.Health == "quarantined" || ns.Health == "probation" {
			return
		}
		sn.Nodes[id] = NodeState{Health: "ok", Readmitted: ns.Readmitted}
	})
}

// NodeFailed records a control-channel failure.
func (s *Status) NodeFailed(id, errStr string, consecutive int) {
	s.update(func(sn *Snapshot) {
		if sn.Nodes == nil {
			sn.Nodes = map[string]NodeState{}
		}
		ns := sn.Nodes[id]
		if ns.Health != "quarantined" && ns.Health != "probation" {
			ns.Health = "failing"
		}
		ns.ConsecutiveFailures = consecutive
		ns.LastErr = errStr
		sn.Nodes[id] = ns
	})
}

// NodeQuarantined marks a node quarantined.
func (s *Status) NodeQuarantined(id string) {
	s.update(func(sn *Snapshot) {
		if sn.Nodes == nil {
			sn.Nodes = map[string]NodeState{}
		}
		ns := sn.Nodes[id]
		ns.Health = "quarantined"
		ns.ProbationOK = 0
		sn.Nodes[id] = ns
	})
}

// NodeProbation records a quarantined node's progress toward re-admission:
// ok consecutive healthy probes out of the need required.
func (s *Status) NodeProbation(id string, ok, need int) {
	s.update(func(sn *Snapshot) {
		if sn.Nodes == nil {
			sn.Nodes = map[string]NodeState{}
		}
		ns := sn.Nodes[id]
		ns.Health = "probation"
		ns.ProbationOK = ok
		ns.ProbationNeed = need
		sn.Nodes[id] = ns
	})
}

// FanIn records the outcome of a campaign metric fan-in: how many node
// hosts delivered a registry snapshot.
func (s *Status) FanIn(sources int) {
	s.update(func(sn *Snapshot) { sn.NodesReporting = sources })
}

// NodeReadmitted clears a node's quarantine after it served probation.
func (s *Status) NodeReadmitted(id string) {
	s.update(func(sn *Snapshot) {
		if sn.Nodes == nil {
			sn.Nodes = map[string]NodeState{}
		}
		sn.Nodes[id] = NodeState{Health: "ok", Readmitted: true}
	})
}

// Snapshot returns a deep copy of the current state.
func (s *Status) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{State: "idle", Run: -1}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.snap
	if s.snap.Treatment != nil {
		out.Treatment = make(map[string]string, len(s.snap.Treatment))
		for k, v := range s.snap.Treatment {
			out.Treatment[k] = v
		}
	}
	if s.snap.Nodes != nil {
		out.Nodes = make(map[string]NodeState, len(s.snap.Nodes))
		for k, v := range s.snap.Nodes {
			out.Nodes[k] = v
		}
	}
	return out
}

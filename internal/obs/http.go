package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the observability endpoint set:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       liveness probe ("ok")
//	/status        JSON snapshot from status (may be nil)
//	/debug/pprof/  net/http/pprof profiles
//
// Both reg and status may be nil; the endpoints then serve empty documents
// so probes keep working before instrumentation is wired.
func NewMux(reg *Registry, status func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var doc any = struct{}{}
		if status != nil {
			doc = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener.
type Server struct {
	ln net.Listener
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }

// Serve starts the observability endpoints on addr in a background
// goroutine. It is the -obs-addr implementation shared by the master and
// node CLIs.
func Serve(addr string, reg *Registry, status func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	go http.Serve(ln, NewMux(reg, status))
	return &Server{ln: ln}, nil
}

// Package obs is the framework's own observability layer: while ExCovery's
// measurement concept (§IV-B) instruments the system under study, obs
// instruments the experimentation environment itself — the master, the
// node hosts and the control channel between them.
//
// It provides three building blocks, all standard-library only and all
// nil-safe (a nil *Registry, *Tracer or *Status turns every call into a
// no-op, so instrumentation points need no guards):
//
//   - a metrics Registry of counters, gauges and latency histograms with
//     Prometheus text-format exposition;
//   - a span Tracer recording the hierarchical execution structure of an
//     experiment (experiment → run → phase → action/RPC call),
//     exportable as Chrome trace_event JSON;
//   - a live Status of the executing experiment (current run, treatment,
//     phase, per-node health), served as JSON.
//
// The HTTP side (NewMux, Serve) exposes /metrics, /healthz, /status and
// net/http/pprof on an opt-in listener (-obs-addr on the CLIs).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative values are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add applies a delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for control-channel
// latencies, in seconds: 1 ms up to 30 s, roughly exponential.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram (cumulative buckets in the
// Prometheus sense). All methods are safe for concurrent use and no-ops on
// a nil receiver.
type Histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []atomic.Int64
	count  atomic.Int64
	sumUs  atomic.Int64 // sum of observations in microseconds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	if h == nil || math.IsNaN(seconds) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(int64(seconds * 1e6))
}

// ObserveDuration records one observation from a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumUs.Load()) / 1e6
}

// metric is one registered instrument with its resolved labels.
type metric struct {
	labels string   // canonical rendered label set, `k="v",...` or ""
	pairs  []string // the original alternating key/value pairs
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all label variants of one metric name.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	by   map[string]*metric
	keys []string // insertion order of label sets
}

// Registry holds named metric families. The zero value is not usable; use
// NewRegistry. A nil *Registry is valid everywhere and yields nil
// instruments, whose methods are all no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString canonicalizes key/value pairs; keys are sorted.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// get returns the metric for name+labels, creating family and instrument on
// first use. labels are alternating key/value pairs.
func (r *Registry) get(name, help, typ string, labels []string) *metric {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, by: map[string]*metric{}}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	m := f.by[ls]
	if m == nil {
		m = &metric{labels: ls, pairs: append([]string(nil), labels...)}
		f.by[ls] = m
		f.keys = append(f.keys, ls)
		sort.Strings(f.keys)
	}
	return m
}

// Counter returns (creating on first use) the counter name{labels...}.
// labels are alternating key/value pairs, e.g. ("method", "node.execute").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.get(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns (creating on first use) the gauge name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.get(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns (creating on first use) the histogram name{labels...}
// with the given bucket bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.get(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		m.h = newHistogram(bounds)
	}
	return m.h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		r.mu.Lock()
		keys := append([]string(nil), f.keys...)
		ms := make([]*metric, len(keys))
		for i, k := range keys {
			ms[i] = f.by[k]
		}
		r.mu.Unlock()
		for _, m := range ms {
			if err := writeMetric(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetric(w io.Writer, f *family, m *metric) error {
	series := func(name, extra string, v string) error {
		lbl := m.labels
		if extra != "" {
			if lbl != "" {
				lbl += ","
			}
			lbl += extra
		}
		if lbl != "" {
			lbl = "{" + lbl + "}"
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, lbl, v)
		return err
	}
	switch f.typ {
	case "counter":
		return series(f.name, "", fmt.Sprint(m.c.Value()))
	case "gauge":
		return series(f.name, "", fmt.Sprint(m.g.Value()))
	case "histogram":
		h := m.h
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if err := series(f.name+"_bucket", fmt.Sprintf(`le="%g"`, b), fmt.Sprint(cum)); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if err := series(f.name+"_bucket", `le="+Inf"`, fmt.Sprint(cum)); err != nil {
			return err
		}
		if err := series(f.name+"_sum", "", fmt.Sprintf("%g", h.Sum())); err != nil {
			return err
		}
		return series(f.name+"_count", "", fmt.Sprint(h.Count()))
	}
	return nil
}

// MetricPoint is one sample of a registry Snapshot — the JSON-friendly
// unit the campaign fan-in ships from a node host to the master. Labels
// are the original alternating key/value pairs, so the master can re-label
// (adding a node=... pair) without parsing the rendered form. Histograms
// flatten into two counter points, <name>_count and <name>_sum_seconds.
type MetricPoint struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"` // "counter" or "gauge"
	Help   string   `json:"help,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// Snapshot returns every registered series as a flat, deterministic list
// (families sorted by name, series by canonical label set). A nil registry
// snapshots to nil.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricPoint
	for _, name := range r.names {
		f := r.families[name]
		for _, k := range f.keys {
			m := f.by[k]
			switch {
			case m.c != nil:
				out = append(out, MetricPoint{Name: f.name, Type: "counter",
					Help: f.help, Labels: m.pairs, Value: float64(m.c.Value())})
			case m.g != nil:
				out = append(out, MetricPoint{Name: f.name, Type: "gauge",
					Help: f.help, Labels: m.pairs, Value: float64(m.g.Value())})
			case m.h != nil:
				out = append(out,
					MetricPoint{Name: f.name + "_count", Type: "counter",
						Help: f.help, Labels: m.pairs, Value: float64(m.h.Count())},
					MetricPoint{Name: f.name + "_sum_seconds", Type: "counter",
						Help: f.help, Labels: m.pairs, Value: m.h.Sum()})
			}
		}
	}
	return out
}

// CounterValue returns the current value of a registered counter series (0
// when absent) — a test and consistency-check helper.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0
	}
	m := f.by[ls]
	if m == nil || m.c == nil {
		return 0
	}
	return m.c.Value()
}

// CounterTotal sums a counter family across all label sets.
func (r *Registry) CounterTotal(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0
	}
	var total int64
	for _, m := range f.by {
		if m.c != nil {
			total += m.c.Value()
		}
	}
	return total
}

// HistogramTotal sums a histogram family's observation counts across all
// label sets.
func (r *Registry) HistogramTotal(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0
	}
	var total int64
	for _, m := range f.by {
		if m.h != nil {
			total += m.h.Count()
		}
	}
	return total
}

package obs

// MetricName is the type of registered metric identifiers. Like
// eventlog.Name it is an alias (not a defined type) so registry constants
// flow into Counter/Gauge/Histogram signatures without conversions.
type MetricName = string

// Central registry of framework metric names. Dashboards, the campaign
// fan-in and the bench/report tooling select series by exact name, so a
// typo at an instrumentation site silently produces an orphan family that
// no consumer ever reads. The metricnames analyzer (internal/lint) rejects
// string literals at Registry.Counter/Gauge/Histogram call sites; add new
// names here, never inline. Dynamically composed names (the campaign
// fan-in's re-exported node series, prefixed MNodePrefix) are out of the
// analyzer's scope by design.
const (
	// Event bus (internal/eventlog).
	MEventbusPublished     MetricName = "excovery_eventbus_published_total"
	MEventbusResets        MetricName = "excovery_eventbus_resets_total"
	MEventbusCancelWaiters MetricName = "excovery_eventbus_cancel_waiters_total"
	MEventbusLen           MetricName = "excovery_eventbus_len"

	// Control channel, server side (internal/xmlrpc).
	MRPCServerRequests            MetricName = "excovery_rpc_server_requests_total"
	MRPCServerDedupReplays        MetricName = "excovery_rpc_server_dedup_replays_total"
	MRPCServerHandlerCalls        MetricName = "excovery_rpc_server_handler_calls_total"
	MRPCServerHandlerLatency      MetricName = "excovery_rpc_server_handler_latency_seconds"
	MRPCServerFailpointInjections MetricName = "excovery_rpc_server_failpoint_injections_total"

	// Control channel, client side (internal/xmlrpc).
	MRPCClientCalls    MetricName = "excovery_rpc_client_calls_total"
	MRPCClientLatency  MetricName = "excovery_rpc_client_latency_seconds"
	MRPCClientAttempts MetricName = "excovery_rpc_client_attempts_total"
	MRPCClientRetries  MetricName = "excovery_rpc_client_retries_total"
	MRPCClientErrors   MetricName = "excovery_rpc_client_errors_total"

	// Node host (internal/noderpc).
	MHostEventsForwarded MetricName = "excovery_host_events_forwarded_total"
	MHostEventBatches    MetricName = "excovery_host_event_batches_total"
	MHostEventPushErrors MetricName = "excovery_host_event_push_errors_total"
	MHostOutboxLen       MetricName = "excovery_host_outbox_len"
	MHostMasterAdoptions MetricName = "excovery_host_master_adoptions_total"
	MHostLeaseRenewals   MetricName = "excovery_host_lease_renewals_total"
	MHostLeaseExpiries   MetricName = "excovery_host_lease_expiries_total"

	// Lease client (internal/noderpc).
	MLeaseRenewals MetricName = "excovery_lease_renewals_total"
	MLeaseErrors   MetricName = "excovery_lease_errors_total"
	MLeaseRebinds  MetricName = "excovery_lease_rebinds_total"

	// Master campaign loop (internal/master).
	MRunsSkipped            MetricName = "excovery_runs_skipped_total"
	MRunsRecovered          MetricName = "excovery_runs_recovered_total"
	MRunsRetried            MetricName = "excovery_runs_retried_total"
	MRunsCompleted          MetricName = "excovery_runs_completed_total"
	MRunsFailed             MetricName = "excovery_runs_failed_total"
	MRunsPartial            MetricName = "excovery_runs_partial_total"
	MRunsAborted            MetricName = "excovery_runs_aborted_total"
	MRunAttempts            MetricName = "excovery_run_attempts_total"
	MJournalWriteErrors     MetricName = "excovery_journal_write_errors_total"
	MJournalRecords         MetricName = "excovery_journal_records_total"
	MJournalReplayedRecords MetricName = "excovery_journal_replayed_records_total"
	MCrashFailpoints        MetricName = "excovery_crash_failpoints_total"
	MHealthProbes           MetricName = "excovery_health_probes_total"
	MHealthProbeFailures    MetricName = "excovery_health_probe_failures_total"
	MNodesReadmitted        MetricName = "excovery_nodes_readmitted_total"
	MNodesQuarantined       MetricName = "excovery_nodes_quarantined_total"

	// Network emulator data path (internal/netem). Packet counters carry a
	// node label; drop counters additionally a reason label (the
	// netem.DropReason strings).
	MNetemSent          MetricName = "excovery_netem_packets_sent_total"
	MNetemTransmissions MetricName = "excovery_netem_transmissions_total"
	MNetemDelivered     MetricName = "excovery_netem_packets_delivered_total"
	MNetemDropped       MetricName = "excovery_netem_packets_dropped_total"
	MNetemDuplicated    MetricName = "excovery_netem_packets_duplicated_total"
	MNetemReordered     MetricName = "excovery_netem_packets_reordered_total"
	MNetemCorrupted     MetricName = "excovery_netem_packets_corrupted_total"
	MNetemRateStalls    MetricName = "excovery_netem_rate_limiter_stalls_total"
	MNetemQueueDepth    MetricName = "excovery_netem_queue_depth"

	// Discrete-event scheduler (internal/sched).
	MSchedSwitches      MetricName = "excovery_sched_switches_total"
	MSchedTimersFired   MetricName = "excovery_sched_timers_fired_total"
	MSchedEventQueueLen MetricName = "excovery_sched_event_queue_len"
	MSchedRunnableLen   MetricName = "excovery_sched_runnable_len"
	MSchedVtimeLagUs    MetricName = "excovery_sched_vtime_lag_us"
	MSchedLockWait      MetricName = "excovery_sched_lock_wait_seconds"

	// Campaign metric fan-in (internal/master): collection accounting plus
	// fleet-wide rollups of the emulator families above.
	MCampaignFanins         MetricName = "excovery_campaign_fanins_total"
	MCampaignFaninErrors    MetricName = "excovery_campaign_fanin_errors_total"
	MCampaignNodesReporting MetricName = "excovery_campaign_nodes_reporting"

	// Discovery registry (internal/discovery, DESIGN.md §14): fleet
	// membership, lease traffic and claim/fencing accounting.
	MRegistryHostsAlive       MetricName = "excovery_registry_hosts_alive"
	MRegistryHostsClaimed     MetricName = "excovery_registry_hosts_claimed"
	MRegistryRegistrations    MetricName = "excovery_registry_registrations_total"
	MRegistryResurrections    MetricName = "excovery_registry_resurrections_total"
	MRegistryHeartbeats       MetricName = "excovery_registry_heartbeats_total"
	MRegistryHeartbeatUnknown MetricName = "excovery_registry_heartbeat_unknown_total"
	MRegistryExpiries         MetricName = "excovery_registry_expiries_total"
	MRegistryClaims           MetricName = "excovery_registry_claims_total"
	MRegistryReleases         MetricName = "excovery_registry_releases_total"
	MRegistryReportsDown      MetricName = "excovery_registry_reports_down_total"
	MRegistryFenceEpoch       MetricName = "excovery_registry_fence_epoch"

	// Host-side fencing (internal/noderpc, DESIGN.md §14).
	MHostFencedRejections MetricName = "excovery_host_fenced_rejections_total"

	// Self-healing fleet placement (internal/master + internal/discovery):
	// mid-campaign host replacement accounting.
	MMasterFailovers      MetricName = "excovery_master_failovers_total"
	MMasterFailoverErrors MetricName = "excovery_master_failover_errors_total"
)

// MNodePrefix prefixes node-host series re-exported by the master's
// campaign fan-in: a node's excovery_netem_packets_dropped_total arrives at
// the master as excovery_node_netem_packets_dropped_total{src="..."}. The
// composed names are intentionally dynamic (see the metricnames analyzer).
const MNodePrefix = "excovery_node_"

// MFleetPrefix prefixes the fan-in's fleet-wide rollups: the same series
// summed across all reporting hosts, with the source label collapsed.
const MFleetPrefix = "excovery_fleet_"

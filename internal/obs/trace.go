package obs

import (
	"encoding/json"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one node of the hierarchical execution trace: the experiment
// spans runs, a run spans its phases (prepare, execute, clean-up), a phase
// spans actions and control-channel calls.
type Span struct {
	// ID identifies the span within its tracer; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Track groups spans that execute sequentially (one process, the
	// master loop); the Chrome export maps each track to its own thread
	// lane so concurrent processes render side by side.
	Track string `json:"track,omitempty"`
	// Cat is the span category: "experiment", "run", "phase", "action",
	// "rpc".
	Cat  string `json:"cat"`
	Name string `json:"name"`
	// Run is the run the span belongs to (-1 for experiment scope);
	// Attempt is the run attempt (1-based, 0 for experiment scope).
	Run     int `json:"run"`
	Attempt int `json:"attempt,omitempty"`
	// Start and End are tracer-clock timestamps; End is zero while the
	// span is open.
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"`
	// Args carries span attributes (seed, treatment, error, ...).
	Args map[string]string `json:"args,omitempty"`
}

// Duration returns End−Start (0 for open spans).
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// traceCap bounds tracer memory; long campaigns keep the most recent spans
// (older runs have already been harvested into the level-2 store).
const traceCap = 1 << 17

// Tracer records spans. It is safe for concurrent use and, like every obs
// type, a nil *Tracer turns all calls into no-ops (Begin returns 0, which
// is in turn a valid no-op parent).
type Tracer struct {
	now func() time.Time

	mu    sync.Mutex
	next  uint64
	spans []Span
	open  map[uint64]int // span id → index in spans
}

// NewTracer creates a tracer on the given clock (the master passes its
// reference clock so span times line up with event timestamps; nil means
// wall time).
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, open: map[uint64]int{}}
}

// SeedIDs moves the tracer's id allocator to start above base. A tracer
// whose spans will be merged with another process's trace (the node hosts,
// whose spans the master folds into the per-run trace.json) must allocate
// from a disjoint id space, or parent links in the merged file become
// ambiguous. Calling it after spans exist, or with a base below the
// current allocator, is a no-op.
func (t *Tracer) SeedIDs(base uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if base > t.next {
		t.next = base
	}
}

// Begin opens a span and returns its id. parent 0 makes a root span.
func (t *Tracer) Begin(parent uint64, track, cat, name string, run, attempt int, args map[string]string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	var copied map[string]string
	if len(args) > 0 {
		copied = make(map[string]string, len(args))
		for k, v := range args {
			copied[k] = v
		}
	}
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Track: track, Cat: cat, Name: name,
		Run: run, Attempt: attempt, Start: t.now(), Args: copied,
	})
	t.open[id] = len(t.spans) - 1
	if len(t.spans) > traceCap {
		t.compactLocked()
	}
	return id
}

// End closes a span.
func (t *Tracer) End(id uint64) { t.EndWith(id, nil) }

// EndWith closes a span and merges extra args (e.g. an error).
func (t *Tracer) EndWith(id uint64, args map[string]string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	sp := &t.spans[i]
	sp.End = t.now()
	if len(args) > 0 {
		if sp.Args == nil {
			sp.Args = make(map[string]string, len(args))
		}
		for k, v := range args {
			sp.Args[k] = v
		}
	}
}

// compactLocked drops the oldest closed spans to stay under traceCap. The
// open map is rebuilt from scratch, and membership in it — not a zero End
// time — decides which spans survive as open: a span closed while the
// tracer clock still read the zero instant (virtual clocks start there) is
// evicted like any other closed span instead of being resurrected, and no
// stale id→index entry can outlive the compaction and redirect a later
// End to the wrong span.
func (t *Tracer) compactLocked() {
	drop := len(t.spans) - traceCap/2
	keep := make([]Span, 0, len(t.spans)-drop+len(t.open))
	open := make(map[uint64]int, len(t.open))
	for i, sp := range t.spans {
		_, isOpen := t.open[sp.ID]
		if i < drop && !isOpen {
			continue
		}
		if isOpen {
			open[sp.ID] = len(keep)
		}
		keep = append(keep, sp)
	}
	t.spans = keep
	t.open = open
}

// Spans returns a snapshot of all recorded spans in begin order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// RunSpans returns the closed spans of one run (all attempts), in begin
// order — the per-run level-2 trace artifact.
func (t *Tracer) RunSpans(run int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, sp := range t.spans {
		if sp.Run == run && !sp.End.IsZero() {
			out = append(out, sp)
		}
	}
	return out
}

// MarshalSpans serializes spans as indented JSON (the trace.json level-2
// artifact format).
func MarshalSpans(spans []Span) []byte {
	b, err := json.MarshalIndent(spans, "", " ")
	if err != nil {
		return []byte("[]")
	}
	return b
}

// UnmarshalSpans parses a trace.json artifact.
func UnmarshalSpans(data []byte) ([]Span, error) {
	var spans []Span
	if err := json.Unmarshal(data, &spans); err != nil {
		return nil, err
	}
	return spans, nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`            // microseconds
	Dur  int64             `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace exports spans as a Chrome trace_event JSON document
// (loadable in chrome://tracing and Perfetto). Each distinct track becomes
// a named thread lane; timestamps are microseconds since the earliest
// span.
func ChromeTrace(spans []Span) []byte {
	tids := map[string]int{}
	var tracks []string
	for _, sp := range spans {
		if _, ok := tids[sp.Track]; !ok {
			tids[sp.Track] = 0
			tracks = append(tracks, sp.Track)
		}
	}
	sort.Strings(tracks)
	for i, tr := range tracks {
		tids[tr] = i
	}
	var epoch time.Time
	for _, sp := range spans {
		if epoch.IsZero() || sp.Start.Before(epoch) {
			epoch = sp.Start
		}
	}
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, tr := range tracks {
		name := tr
		if name == "" {
			name = "main"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[tr],
			Args: map[string]string{"name": name},
		})
	}
	for _, sp := range spans {
		end := sp.End
		if end.IsZero() {
			end = sp.Start
		}
		args := sp.Args
		if sp.Attempt > 0 {
			args = make(map[string]string, len(sp.Args)+1)
			for k, v := range sp.Args {
				args[k] = v
			}
			args["attempt"] = strconv.Itoa(sp.Attempt)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS:  sp.Start.Sub(epoch).Microseconds(),
			Dur: end.Sub(sp.Start).Microseconds(),
			PID: 1, TID: tids[sp.Track], Args: args,
		})
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return []byte(`{"traceEvents":[]}`)
	}
	return b
}

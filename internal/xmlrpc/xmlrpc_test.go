package xmlrpc

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := EncodeResponse(v)
	if err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return got
}

func TestScalarRoundTrips(t *testing.T) {
	cases := []any{
		42, -7, 0,
		true, false,
		"hello", "", "with <xml> & \"chars\"",
		3.14159, -0.5, 1e10,
	}
	for _, v := range cases {
		if got := roundTrip(t, v); !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %v (%T) = %v (%T)", v, v, got, got)
		}
	}
}

func TestTimeRoundTrip(t *testing.T) {
	v := time.Date(2014, 5, 19, 13, 37, 42, 0, time.UTC)
	got := roundTrip(t, v)
	gt, ok := got.(time.Time)
	if !ok || !gt.Equal(v) {
		t.Fatalf("time round trip = %v", got)
	}
}

func TestBase64RoundTrip(t *testing.T) {
	v := []byte{0, 1, 2, 254, 255, 'x'}
	got := roundTrip(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("base64 round trip = %v", got)
	}
}

func TestStructAndArrayRoundTrip(t *testing.T) {
	v := map[string]any{
		"name":  "run_init",
		"runid": 17,
		"ok":    true,
		"list":  []any{1, "two", 3.0},
		"inner": map[string]any{"x": 1},
	}
	got := roundTrip(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("struct round trip:\n got %#v\nwant %#v", got, v)
	}
}

func TestConvenienceTypes(t *testing.T) {
	got := roundTrip(t, []string{"a", "b"})
	if !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("[]string = %#v", got)
	}
	got = roundTrip(t, map[string]string{"k": "v"})
	if !reflect.DeepEqual(got, map[string]any{"k": "v"}) {
		t.Fatalf("map[string]string = %#v", got)
	}
}

func TestInt64Overflow(t *testing.T) {
	if _, err := EncodeResponse(int64(1) << 40); err == nil {
		t.Fatal("expected overflow error")
	}
	if got := roundTrip(t, map[string]any{"v": 5}); got.(map[string]any)["v"] != 5 {
		t.Fatal("small int64 path broken")
	}
}

func TestNilRejected(t *testing.T) {
	if _, err := EncodeResponse(nil); err == nil {
		t.Fatal("nil must be rejected")
	}
	if _, err := EncodeCall("m", 1, nil); err == nil {
		t.Fatal("nil param must be rejected")
	}
}

func TestUntypedValueIsString(t *testing.T) {
	doc := `<?xml version="1.0"?><methodResponse><params><param>
		<value>bare text</value></param></params></methodResponse>`
	got, err := DecodeResponse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got != "bare text" {
		t.Fatalf("got %q", got)
	}
}

func TestI4Alias(t *testing.T) {
	doc := `<?xml version="1.0"?><methodResponse><params><param>
		<value><i4>99</i4></value></param></params></methodResponse>`
	got, err := DecodeResponse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("got %v", got)
	}
}

func TestEncodeDecodeCall(t *testing.T) {
	data, err := EncodeCall("node.run_init", 5, "nodeA", true)
	if err != nil {
		t.Fatal(err)
	}
	method, params, err := DecodeCall(data)
	if err != nil {
		t.Fatal(err)
	}
	if method != "node.run_init" {
		t.Fatalf("method = %q", method)
	}
	want := []any{5, "nodeA", true}
	if !reflect.DeepEqual(params, want) {
		t.Fatalf("params = %#v", params)
	}
}

func TestDecodeCallMissingMethod(t *testing.T) {
	if _, _, err := DecodeCall([]byte("<methodCall></methodCall>")); err == nil {
		t.Fatal("expected error on missing methodName")
	}
}

func TestFaultRoundTrip(t *testing.T) {
	data := EncodeFault(&Fault{Code: 42, String: "node locked"})
	_, err := DecodeResponse(data)
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Code != 42 || f.String != "node locked" {
		t.Fatalf("fault = %+v", f)
	}
	if !strings.Contains(f.Error(), "node locked") {
		t.Fatalf("Error() = %q", f.Error())
	}
}

func TestServerDispatch(t *testing.T) {
	srv := NewServer()
	srv.Register("math.add", func(params []any) (any, error) {
		return params[0].(int) + params[1].(int), nil
	})
	srv.Register("fail", func(params []any) (any, error) {
		return nil, fmt.Errorf("kaputt")
	})
	srv.Register("fault", func(params []any) (any, error) {
		return nil, &Fault{Code: 7, String: "custom"}
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	got, err := c.Call("math.add", 2, 3)
	if err != nil || got != 5 {
		t.Fatalf("add = %v, %v", got, err)
	}

	_, err = c.Call("fail")
	if f, ok := err.(*Fault); !ok || f.Code != 1 || !strings.Contains(f.String, "kaputt") {
		t.Fatalf("generic error fault = %v", err)
	}

	_, err = c.Call("fault")
	if f, ok := err.(*Fault); !ok || f.Code != 7 {
		t.Fatalf("custom fault = %v", err)
	}

	_, err = c.Call("nosuch")
	if f, ok := err.(*Fault); !ok || f.Code != -32601 {
		t.Fatalf("unknown method fault = %v", err)
	}
}

func TestServerRejectsGet(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestServerMalformedBody(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	resp, err := ts.Client().Post(ts.URL, "text/xml", strings.NewReader("not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_ = c
	// Response should be a parse fault, not a transport error.
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "-32700") {
		t.Fatalf("want parse fault, got %s", buf[:n])
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	srv := NewServer()
	h := func([]any) (any, error) { return 0, nil }
	srv.Register("m", h)
	srv.Register("m", h)
}

func TestMethodsSorted(t *testing.T) {
	srv := NewServer()
	h := func([]any) (any, error) { return 0, nil }
	for _, m := range []string{"zeta", "alpha", "mid"} {
		srv.Register(m, h)
	}
	got := srv.Methods()
	want := []string{"alpha", "mid", "system.listMethods", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Methods = %v", got)
	}
}

// Property: any string survives a call round trip, including XML
// metacharacters and unicode.
func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !isValidXMLString(s) {
			return true // XML 1.0 cannot carry control chars; skip
		}
		data, err := EncodeCall("echo", s)
		if err != nil {
			return false
		}
		_, params, err := DecodeCall(data)
		if err != nil || len(params) != 1 {
			return false
		}
		return params[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: int values in the 32-bit range round trip exactly.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		data, err := EncodeCall("echo", int(v))
		if err != nil {
			return false
		}
		_, params, err := DecodeCall(data)
		return err == nil && params[0] == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isValidXMLString(s string) bool {
	for _, r := range s {
		if r == 0xFFFD || r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
		if r >= 0xD800 && r <= 0xDFFF || r == 0xFFFE || r == 0xFFFF {
			return false
		}
	}
	return true
}

func TestSystemListMethods(t *testing.T) {
	srv := NewServer()
	srv.Register("alpha", func([]any) (any, error) { return 1, nil })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	v, err := NewClient(ts.URL).Call("system.listMethods")
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]any)
	if len(got) != 2 || got[0] != "alpha" || got[1] != "system.listMethods" {
		t.Fatalf("listMethods = %v", got)
	}
}

package xmlrpc

import "strconv"

// TraceParentKey is the member name of the optional trailing struct
// parameter that carries the caller's span id across the RPC boundary
// (DESIGN.md §13). The id is transported as a decimal string because
// XML-RPC integers are 32-bit and span ids are uint64.
const TraceParentKey = "trace_parent"

// WithTraceParent appends a non-zero parent span id to params as a
// trailing {trace_parent: "<id>"} struct. The parameter is strictly
// trailing, so handlers that parse positionally and ignore it keep
// working; handlers that honor it strip it first with TraceParent. A zero
// parent returns params unchanged (and unshared: callers may append).
func WithTraceParent(params []any, parent uint64) []any {
	if parent == 0 {
		return params
	}
	out := make([]any, 0, len(params)+1)
	out = append(out, params...)
	return append(out, map[string]any{TraceParentKey: strconv.FormatUint(parent, 10)})
}

// TraceParent extracts the trailing trace_parent parameter, returning the
// caller's span id (0 when absent or malformed) and the params with the
// marker stripped.
func TraceParent(params []any) (uint64, []any) {
	if len(params) == 0 {
		return 0, params
	}
	m, ok := params[len(params)-1].(map[string]any)
	if !ok || len(m) != 1 {
		return 0, params
	}
	s, ok := m[TraceParentKey].(string)
	if !ok {
		return 0, params
	}
	id, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, params
	}
	return id, params[:len(params)-1]
}

// Package xmlrpc implements the XML-RPC wire protocol [23] used between
// the ExperiMaster and the NodeManagers (§VI-A): marshalling of the XML-RPC
// value types, an HTTP client and an HTTP server with a method registry.
//
// Supported value types and their Go mappings:
//
//	<int>/<i4>            int
//	<boolean>             bool
//	<string> / bare text  string
//	<double>              float64
//	<dateTime.iso8601>    time.Time
//	<base64>              []byte
//	<struct>              map[string]any
//	<array>               []any
//
// Nil parameters are rejected: XML-RPC has no nil in its base spec.
package xmlrpc

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// iso8601 is the dateTime layout mandated by the XML-RPC specification.
const iso8601 = "20060102T15:04:05"

// Fault is an XML-RPC fault response.
type Fault struct {
	Code   int
	String string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("xmlrpc: fault %d: %s", f.Code, f.String)
}

// normalize widens convenience types ([]string, map[string]string) to the
// canonical []any / map[string]any forms.
func normalize(v any) any {
	switch x := v.(type) {
	case []string:
		conv := make([]any, len(x))
		for i, e := range x {
			conv[i] = e
		}
		return conv
	case map[string]string:
		conv := make(map[string]any, len(x))
		for k, e := range x {
			conv[k] = e
		}
		return conv
	default:
		return v
	}
}

// writeInt writes one XML-RPC <int> element without fmt's interface
// boxing (per-parameter hot on the encode path).
func writeInt(b *bytes.Buffer, x int64) {
	b.WriteString("<int>")
	b.Write(strconv.AppendInt(b.AvailableBuffer(), x, 10))
	b.WriteString("</int>")
}

// encodeValue writes a Go value as an XML-RPC <value> element.
func encodeValue(b *bytes.Buffer, v any) error {
	v = normalize(v)
	b.WriteString("<value>")
	switch x := v.(type) {
	case int:
		writeInt(b, int64(x))
	case int32:
		writeInt(b, int64(x))
	case int64:
		if x > 1<<31-1 || x < -(1<<31) {
			return fmt.Errorf("xmlrpc: int64 %d overflows XML-RPC int", x)
		}
		writeInt(b, x)
	case bool:
		if x {
			b.WriteString("<boolean>1</boolean>")
		} else {
			b.WriteString("<boolean>0</boolean>")
		}
	case string:
		b.WriteString("<string>")
		xml.EscapeText(b, []byte(x))
		b.WriteString("</string>")
	case float64:
		b.WriteString("<double>")
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		b.WriteString("</double>")
	case float32:
		b.WriteString("<double>")
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		b.WriteString("</double>")
	case time.Time:
		b.WriteString("<dateTime.iso8601>")
		b.Write(x.UTC().AppendFormat(b.AvailableBuffer(), iso8601))
		b.WriteString("</dateTime.iso8601>")
	case []byte:
		b.WriteString("<base64>")
		b.WriteString(base64.StdEncoding.EncodeToString(x))
		b.WriteString("</base64>")
	case map[string]any:
		b.WriteString("<struct>")
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic wire format
		for _, k := range keys {
			b.WriteString("<member><name>")
			xml.EscapeText(b, []byte(k))
			b.WriteString("</name>")
			if err := encodeValue(b, x[k]); err != nil {
				return err
			}
			b.WriteString("</member>")
		}
		b.WriteString("</struct>")
	case []any:
		b.WriteString("<array><data>")
		for _, e := range x {
			if err := encodeValue(b, e); err != nil {
				return err
			}
		}
		b.WriteString("</data></array>")
	case nil:
		return fmt.Errorf("xmlrpc: cannot encode nil")
	default:
		return fmt.Errorf("xmlrpc: unsupported type %T", v)
	}
	b.WriteString("</value>")
	return nil
}

// xValue mirrors the XML structure of an XML-RPC <value>.
type xValue struct {
	Int      *string  `xml:"int"`
	I4       *string  `xml:"i4"`
	Boolean  *string  `xml:"boolean"`
	Str      *string  `xml:"string"`
	Double   *string  `xml:"double"`
	DateTime *string  `xml:"dateTime.iso8601"`
	Base64   *string  `xml:"base64"`
	Struct   *xStruct `xml:"struct"`
	Array    *xArray  `xml:"array"`
	Raw      string   `xml:",chardata"`
}

type xStruct struct {
	Members []xMember `xml:"member"`
}

type xMember struct {
	Name  string `xml:"name"`
	Value xValue `xml:"value"`
}

type xArray struct {
	Values []xValue `xml:"data>value"`
}

// decodeValue converts a parsed xValue into a Go value.
func decodeValue(v xValue) (any, error) {
	switch {
	case v.Int != nil:
		return strconv.Atoi(strings.TrimSpace(*v.Int))
	case v.I4 != nil:
		return strconv.Atoi(strings.TrimSpace(*v.I4))
	case v.Boolean != nil:
		switch strings.TrimSpace(*v.Boolean) {
		case "1", "true":
			return true, nil
		case "0", "false":
			return false, nil
		default:
			return nil, fmt.Errorf("xmlrpc: bad boolean %q", *v.Boolean)
		}
	case v.Str != nil:
		return *v.Str, nil
	case v.Double != nil:
		return strconv.ParseFloat(strings.TrimSpace(*v.Double), 64)
	case v.DateTime != nil:
		return time.ParseInLocation(iso8601, strings.TrimSpace(*v.DateTime), time.UTC)
	case v.Base64 != nil:
		return base64.StdEncoding.DecodeString(strings.TrimSpace(*v.Base64))
	case v.Struct != nil:
		m := make(map[string]any, len(v.Struct.Members))
		for _, mem := range v.Struct.Members {
			dv, err := decodeValue(mem.Value)
			if err != nil {
				return nil, err
			}
			m[mem.Name] = dv
		}
		return m, nil
	case v.Array != nil:
		arr := make([]any, 0, len(v.Array.Values))
		for _, e := range v.Array.Values {
			dv, err := decodeValue(e)
			if err != nil {
				return nil, err
			}
			arr = append(arr, dv)
		}
		return arr, nil
	default:
		// Untyped <value>text</value> is a string per the spec.
		return v.Raw, nil
	}
}

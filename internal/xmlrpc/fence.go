package xmlrpc

import "strconv"

// FenceEpochKey is the member name of the optional trailing struct
// parameter that carries a master's fencing epoch across the RPC boundary
// (DESIGN.md §14). A host refuses calls whose epoch is older than the one
// it last accepted on host.set_master, so a master that lost its claim to
// a registry takeover cannot keep driving the nodes. The epoch is
// transported as a decimal string for symmetry with trace_parent and to
// stay clear of XML-RPC's 32-bit integers.
const FenceEpochKey = "fence_epoch"

// WithFenceEpoch appends a positive fencing epoch to params as a trailing
// {fence_epoch: "<n>"} struct. The parameter is strictly trailing — when a
// call also carries a trace parent, the fence comes first and the trace
// parent last — so handlers that parse positionally and ignore it keep
// working. A non-positive epoch (static wiring, no registry) returns
// params unchanged (and unshared: callers may append).
func WithFenceEpoch(params []any, epoch int64) []any {
	if epoch <= 0 {
		return params
	}
	out := make([]any, 0, len(params)+1)
	out = append(out, params...)
	return append(out, map[string]any{FenceEpochKey: strconv.FormatInt(epoch, 10)})
}

// FenceEpoch extracts the trailing fence_epoch parameter, returning the
// caller's epoch (0 when absent or malformed) and the params with the
// marker stripped. Call after TraceParent, which strips the outermost
// trailing marker.
func FenceEpoch(params []any) (int64, []any) {
	if len(params) == 0 {
		return 0, params
	}
	m, ok := params[len(params)-1].(map[string]any)
	if !ok || len(m) != 1 {
		return 0, params
	}
	s, ok := m[FenceEpochKey].(string)
	if !ok {
		return 0, params
	}
	epoch, err := strconv.ParseInt(s, 10, 64)
	if err != nil || epoch <= 0 {
		return 0, params
	}
	return epoch, params[:len(params)-1]
}

package xmlrpc

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"excovery/internal/failpoint"
)

// testPolicy retries fast so tests don't sleep for real.
func testPolicy(seed int64) RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond, Seed: seed}
}

func newEchoServer(t *testing.T, fp *failpoint.Registry) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer()
	srv.FP = fp
	srv.Register("echo", func(params []any) (any, error) {
		if len(params) == 0 {
			return "nothing", nil
		}
		return params[0], nil
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestRetryTransientThenSuccess(t *testing.T) {
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 1, Act: failpoint.Error, Count: 2})
	_, ts := newEchoServer(t, fp)
	c := NewRetryingClient(ts.URL, testPolicy(1))
	v, err := c.Call("echo", "hi")
	if err != nil || v != "hi" {
		t.Fatalf("Call = %v, %v", v, err)
	}
	st := c.Stats()
	if st.Calls != 1 || st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryExhausted(t *testing.T) {
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 1, Act: failpoint.Error})
	_, ts := newEchoServer(t, fp)
	c := NewRetryingClient(ts.URL, testPolicy(1))
	_, err := c.Call("echo", "hi")
	if err == nil {
		t.Fatal("call against always-failing server succeeded")
	}
	if !Retryable(err) {
		t.Fatalf("exhausted error not a retryable transport error: %v", err)
	}
	st := c.Stats()
	if st.Attempts != 5 || st.Retries != 4 || st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryDropAtEverySite(t *testing.T) {
	// One drop at each site in turn; the call must still land.
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteClientSend, failpoint.Rule{Prob: 1, Act: failpoint.Drop, Count: 1})
	fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 1, Act: failpoint.Drop, Count: 1})
	fp.Enable(failpoint.SiteServerSend, failpoint.Rule{Prob: 1, Act: failpoint.Drop, Count: 1})
	srv, ts := newEchoServer(t, fp)
	c := NewRetryingClient(ts.URL, testPolicy(1))
	c.FP = fp
	v, err := c.Call("echo", "through")
	if err != nil || v != "through" {
		t.Fatalf("Call = %v, %v", v, err)
	}
	if c.Stats().Retries != 3 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// The server-send drop lost a response after execution; the retry must
	// have been served from the idempotency cache, not re-executed.
	if srv.Stats().DedupReplays == 0 {
		t.Fatalf("no dedup replay: %+v", srv.Stats())
	}
}

func TestFaultsAreNotRetried(t *testing.T) {
	srv := NewServer()
	calls := 0
	srv.Register("boom", func(params []any) (any, error) {
		calls++
		return nil, fmt.Errorf("boom %d", calls)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewRetryingClient(ts.URL, testPolicy(1))
	_, err := c.Call("boom")
	if _, ok := err.(*Fault); !ok {
		t.Fatalf("err = %v", err)
	}
	if Retryable(err) {
		t.Fatal("fault classified retryable")
	}
	if calls != 1 || c.Stats().Attempts != 1 {
		t.Fatalf("calls=%d stats=%+v", calls, c.Stats())
	}
}

func TestIdempotencyDedupSuppressesDuplicateExecution(t *testing.T) {
	srv := NewServer()
	execs := 0
	srv.Register("bump", func(params []any) (any, error) {
		execs++
		return execs, nil
	})
	fp := failpoint.New(1)
	// Lose the response of the first execution and of the first replay:
	// the client retries twice, the handler must still run exactly once.
	fp.Enable(failpoint.SiteServerSend, failpoint.Rule{Prob: 1, Act: failpoint.Drop, Count: 2})
	srv.FP = fp
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewRetryingClient(ts.URL, testPolicy(1))
	v, err := c.Call("bump")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || execs != 1 {
		t.Fatalf("result=%v execs=%d (duplicate execution)", v, execs)
	}
	st := srv.Stats()
	if st.HandlerCalls != 1 || st.DedupReplays != 2 {
		t.Fatalf("server stats = %+v", st)
	}
	// A fresh call gets a fresh key and executes again.
	if v, err := c.Call("bump"); err != nil || v != 2 {
		t.Fatalf("second call = %v, %v", v, err)
	}
}

func TestRetryScheduleDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		fp := failpoint.New(seed)
		fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 0.5, Act: failpoint.Error})
		_, ts := newEchoServer(t, fp)
		c := NewRetryingClient(ts.URL, testPolicy(seed))
		c.Sleep = func(time.Duration) {}
		var out []time.Duration
		c.OnRetry = func(method string, attempt int, backoff time.Duration, err error) {
			out = append(out, backoff)
		}
		for i := 0; i < 40; i++ {
			c.Call("echo", i) // errors expected; the schedule is the subject
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	if len(a) == 0 {
		t.Fatal("no retries happened")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical retry schedules")
	}
}

func TestNilHTTPClientReusesSharedPool(t *testing.T) {
	_, ts := newEchoServer(t, nil)
	// A zero-value client (nil HTTPClient) must work and go through the
	// shared pooled transport rather than allocating one per call.
	c := &Client{URL: ts.URL}
	for i := 0; i < 3; i++ {
		if v, err := c.Call("echo", i); err != nil || v != i {
			t.Fatalf("call %d = %v, %v", i, v, err)
		}
	}
}

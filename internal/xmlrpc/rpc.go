package xmlrpc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// EncodeCall serializes a methodCall document.
func EncodeCall(method string, params ...any) ([]byte, error) {
	var b strings.Builder
	b.WriteString(xml.Header)
	b.WriteString("<methodCall><methodName>")
	xml.EscapeText(&b, []byte(method))
	b.WriteString("</methodName><params>")
	for _, p := range params {
		b.WriteString("<param>")
		if err := encodeValue(&b, p); err != nil {
			return nil, err
		}
		b.WriteString("</param>")
	}
	b.WriteString("</params></methodCall>")
	return []byte(b.String()), nil
}

// EncodeResponse serializes a successful methodResponse carrying result.
func EncodeResponse(result any) ([]byte, error) {
	var b strings.Builder
	b.WriteString(xml.Header)
	b.WriteString("<methodResponse><params><param>")
	if err := encodeValue(&b, result); err != nil {
		return nil, err
	}
	b.WriteString("</param></params></methodResponse>")
	return []byte(b.String()), nil
}

// EncodeFault serializes a fault methodResponse.
func EncodeFault(f *Fault) []byte {
	var b strings.Builder
	b.WriteString(xml.Header)
	b.WriteString("<methodResponse><fault>")
	// A fault is a struct with faultCode and faultString members.
	if err := encodeValue(&b, map[string]any{
		"faultCode":   f.Code,
		"faultString": f.String,
	}); err != nil {
		// The fault struct contains only int and string; cannot fail.
		panic(err)
	}
	b.WriteString("</fault></methodResponse>")
	return []byte(b.String())
}

type xCall struct {
	XMLName xml.Name `xml:"methodCall"`
	Method  string   `xml:"methodName"`
	Params  []xValue `xml:"params>param>value"`
}

type xResponse struct {
	XMLName xml.Name `xml:"methodResponse"`
	Params  []xValue `xml:"params>param>value"`
	Fault   *xValue  `xml:"fault>value"`
}

// DecodeCall parses a methodCall document into method name and parameters.
func DecodeCall(data []byte) (method string, params []any, err error) {
	var c xCall
	if err := xml.Unmarshal(data, &c); err != nil {
		return "", nil, fmt.Errorf("xmlrpc: parse call: %w", err)
	}
	if c.Method == "" {
		return "", nil, fmt.Errorf("xmlrpc: missing methodName")
	}
	for _, p := range c.Params {
		v, err := decodeValue(p)
		if err != nil {
			return "", nil, err
		}
		params = append(params, v)
	}
	return c.Method, params, nil
}

// DecodeResponse parses a methodResponse. A fault is returned as *Fault in
// err with a nil result.
func DecodeResponse(data []byte) (any, error) {
	var r xResponse
	if err := xml.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("xmlrpc: parse response: %w", err)
	}
	if r.Fault != nil {
		fv, err := decodeValue(*r.Fault)
		if err != nil {
			return nil, err
		}
		m, ok := fv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("xmlrpc: malformed fault")
		}
		f := &Fault{}
		if c, ok := m["faultCode"].(int); ok {
			f.Code = c
		}
		if s, ok := m["faultString"].(string); ok {
			f.String = s
		}
		return nil, f
	}
	if len(r.Params) == 0 {
		return nil, fmt.Errorf("xmlrpc: empty response")
	}
	return decodeValue(r.Params[0])
}

// Handler is a registered server method. Returning an error produces a
// fault response; a *Fault error preserves its code.
type Handler func(params []any) (any, error)

// Server dispatches XML-RPC calls to registered methods. It implements
// http.Handler. Method registration is not synchronized with serving:
// register everything before starting the HTTP server, which matches the
// NodeManager lifecycle.
type Server struct {
	methods map[string]Handler
}

// NewServer creates an empty method registry with the standard
// introspection method system.listMethods pre-registered.
func NewServer() *Server {
	s := &Server{methods: make(map[string]Handler)}
	s.Register("system.listMethods", func(params []any) (any, error) {
		names := s.Methods()
		out := make([]any, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})
	return s
}

// Register adds a method; registering a duplicate name panics.
func (s *Server) Register(name string, h Handler) {
	if _, dup := s.methods[name]; dup {
		panic("xmlrpc: duplicate method " + name)
	}
	s.methods[name] = h
}

// Methods returns the sorted names of registered methods (introspection).
func (s *Server) Methods() []string {
	out := make([]string, 0, len(s.methods))
	for m := range s.methods {
		out = append(out, m)
	}
	// Sorted for stable output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ServeHTTP handles one XML-RPC call per POST request.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "xmlrpc requires POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	method, params, err := DecodeCall(body)
	if err != nil {
		s.writeFault(w, &Fault{Code: -32700, String: err.Error()})
		return
	}
	h, ok := s.methods[method]
	if !ok {
		s.writeFault(w, &Fault{Code: -32601, String: "method not found: " + method})
		return
	}
	result, err := h(params)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.writeFault(w, f)
		} else {
			s.writeFault(w, &Fault{Code: 1, String: err.Error()})
		}
		return
	}
	resp, err := EncodeResponse(result)
	if err != nil {
		s.writeFault(w, &Fault{Code: -32603, String: "cannot encode result: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	w.Write(resp)
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	w.Header().Set("Content-Type", "text/xml")
	w.Write(EncodeFault(f))
}

// Client calls methods on a remote XML-RPC server. Calls are synchronous,
// mirroring the prototype's xmlrpclib usage (§VI-A).
type Client struct {
	// URL is the endpoint, e.g. "http://node1:8800/RPC2".
	URL string
	// HTTPClient defaults to a client with a 30 s timeout.
	HTTPClient *http.Client
}

// NewClient creates a client for the endpoint URL.
func NewClient(url string) *Client {
	return &Client{URL: url, HTTPClient: &http.Client{Timeout: 30 * time.Second}}
}

// Call invokes method with params and returns the decoded result. Fault
// responses surface as *Fault errors.
func (c *Client) Call(method string, params ...any) (any, error) {
	body, err := EncodeCall(method, params...)
	if err != nil {
		return nil, err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := hc.Post(c.URL, "text/xml", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("xmlrpc: %s: %w", method, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return DecodeResponse(data)
}

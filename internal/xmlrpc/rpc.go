package xmlrpc

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"excovery/internal/failpoint"
	"excovery/internal/obs"
)

// encBuf pools the encoders' scratch buffers: every RPC of every run
// serializes a call and a response, and growing a fresh builder each time
// dominated the encode path's allocations. The buffer retains its grown
// capacity across documents; only the final exact-size copy escapes.
var encBuf = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// finishEnc copies the document out of the pooled buffer and returns the
// buffer to the pool.
func finishEnc(b *bytes.Buffer) []byte {
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	b.Reset()
	encBuf.Put(b)
	return out
}

// EncodeCall serializes a methodCall document.
func EncodeCall(method string, params ...any) ([]byte, error) {
	b := encBuf.Get().(*bytes.Buffer)
	b.WriteString(xml.Header)
	b.WriteString("<methodCall><methodName>")
	xml.EscapeText(b, []byte(method))
	b.WriteString("</methodName><params>")
	for _, p := range params {
		b.WriteString("<param>")
		if err := encodeValue(b, p); err != nil {
			b.Reset()
			encBuf.Put(b)
			return nil, err
		}
		b.WriteString("</param>")
	}
	b.WriteString("</params></methodCall>")
	return finishEnc(b), nil
}

// EncodeResponse serializes a successful methodResponse carrying result.
func EncodeResponse(result any) ([]byte, error) {
	b := encBuf.Get().(*bytes.Buffer)
	b.WriteString(xml.Header)
	b.WriteString("<methodResponse><params><param>")
	if err := encodeValue(b, result); err != nil {
		b.Reset()
		encBuf.Put(b)
		return nil, err
	}
	b.WriteString("</param></params></methodResponse>")
	return finishEnc(b), nil
}

// EncodeFault serializes a fault methodResponse.
func EncodeFault(f *Fault) []byte {
	b := encBuf.Get().(*bytes.Buffer)
	b.WriteString(xml.Header)
	b.WriteString("<methodResponse><fault>")
	// A fault is a struct with faultCode and faultString members.
	if err := encodeValue(b, map[string]any{
		"faultCode":   f.Code,
		"faultString": f.String,
	}); err != nil {
		// The fault struct contains only int and string; cannot fail.
		panic(err)
	}
	b.WriteString("</fault></methodResponse>")
	return finishEnc(b)
}

type xCall struct {
	XMLName xml.Name `xml:"methodCall"`
	Method  string   `xml:"methodName"`
	Params  []xValue `xml:"params>param>value"`
}

type xResponse struct {
	XMLName xml.Name `xml:"methodResponse"`
	Params  []xValue `xml:"params>param>value"`
	Fault   *xValue  `xml:"fault>value"`
}

// DecodeCall parses a methodCall document into method name and parameters.
func DecodeCall(data []byte) (method string, params []any, err error) {
	var c xCall
	if err := xml.Unmarshal(data, &c); err != nil {
		return "", nil, fmt.Errorf("xmlrpc: parse call: %w", err)
	}
	if c.Method == "" {
		return "", nil, fmt.Errorf("xmlrpc: missing methodName")
	}
	for _, p := range c.Params {
		v, err := decodeValue(p)
		if err != nil {
			return "", nil, err
		}
		params = append(params, v)
	}
	return c.Method, params, nil
}

// DecodeResponse parses a methodResponse. A fault is returned as *Fault in
// err with a nil result.
func DecodeResponse(data []byte) (any, error) {
	var r xResponse
	if err := xml.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("xmlrpc: parse response: %w", err)
	}
	if r.Fault != nil {
		fv, err := decodeValue(*r.Fault)
		if err != nil {
			return nil, err
		}
		m, ok := fv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("xmlrpc: malformed fault")
		}
		f := &Fault{}
		if c, ok := m["faultCode"].(int); ok {
			f.Code = c
		}
		if s, ok := m["faultString"].(string); ok {
			f.String = s
		}
		return nil, f
	}
	if len(r.Params) == 0 {
		return nil, fmt.Errorf("xmlrpc: empty response")
	}
	return decodeValue(r.Params[0])
}

// Handler is a registered server method. Returning an error produces a
// fault response; a *Fault error preserves its code.
type Handler func(params []any) (any, error)

// IdempotencyHeader carries the client's per-call idempotency key. A
// server replays the cached response for a key it has already executed, so
// a retried call is applied at most once.
const IdempotencyHeader = "X-Excovery-Idempotency-Key"

// ServerStats counts server-side dispatch outcomes.
type ServerStats struct {
	// Requests counts accepted POST requests (after failpoint drops).
	Requests int64
	// HandlerCalls counts actual handler executions.
	HandlerCalls int64
	// DedupReplays counts responses replayed from the idempotency cache
	// instead of re-executing the handler.
	DedupReplays int64
	// Injected counts failpoint decisions that fired on the serving path.
	Injected int64
}

// dedupEntry caches the response of one idempotent call. done is closed
// once the response bytes are available, so a duplicate arriving while the
// first execution is still in flight waits instead of re-executing.
type dedupEntry struct {
	done chan struct{}
	resp []byte
}

// dedupCap bounds the idempotency cache; retries arrive within seconds,
// so FIFO eviction of old keys is safe long before the cache cycles.
const dedupCap = 4096

// Server dispatches XML-RPC calls to registered methods. It implements
// http.Handler. Method registration is not synchronized with serving:
// register everything before starting the HTTP server, which matches the
// NodeManager lifecycle.
type Server struct {
	methods map[string]Handler

	// FP, if set, injects deterministic faults on the serving path
	// (SiteServerRecv before the handler, SiteServerSend after).
	FP *failpoint.Registry
	// OnDispatch, if set, observes every handler execution with the
	// call's idempotency key ("" when the client sent none). Replays from
	// the idempotency cache do not dispatch. Set before serving.
	OnDispatch func(method, idemKey string)
	// Obs, if set, records dispatch counters and per-method handler
	// latency histograms into the registry. Set before serving.
	Obs *obs.Registry

	mu    sync.Mutex
	dedup map[string]*dedupEntry
	order []string
	stats ServerStats
}

// NewServer creates an empty method registry with the standard
// introspection method system.listMethods pre-registered.
func NewServer() *Server {
	s := &Server{methods: make(map[string]Handler), dedup: map[string]*dedupEntry{}}
	s.Register("system.listMethods", func(params []any) (any, error) {
		names := s.Methods()
		out := make([]any, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})
	return s
}

// Stats returns a snapshot of the dispatch counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Register adds a method; registering a duplicate name panics.
func (s *Server) Register(name string, h Handler) {
	if _, dup := s.methods[name]; dup {
		panic("xmlrpc: duplicate method " + name)
	}
	s.methods[name] = h
}

// Methods returns the sorted names of registered methods (introspection).
func (s *Server) Methods() []string {
	out := make([]string, 0, len(s.methods))
	for m := range s.methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP handles one XML-RPC call per POST request. Requests carrying
// an idempotency key are executed at most once: duplicates (retries of a
// call whose response was lost) replay the cached response.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "xmlrpc requires POST", http.StatusMethodNotAllowed)
		return
	}
	if !s.inject(w, failpoint.SiteServerRecv) {
		return
	}
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()
	s.Obs.Counter(obs.MRPCServerRequests,
		"accepted XML-RPC POST requests (after failpoint drops)").Inc()
	body, err := io.ReadAll(io.LimitReader(req.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	key := req.Header.Get(IdempotencyHeader)
	if key != "" {
		s.mu.Lock()
		if e, dup := s.dedup[key]; dup {
			s.stats.DedupReplays++
			s.mu.Unlock()
			s.Obs.Counter(obs.MRPCServerDedupReplays,
				"responses replayed from the idempotency cache").Inc()
			<-e.done
			s.deliver(w, e.resp)
			return
		}
		e := &dedupEntry{done: make(chan struct{})}
		s.dedup[key] = e
		s.order = append(s.order, key)
		if len(s.order) > dedupCap {
			delete(s.dedup, s.order[0])
			s.order = s.order[1:]
		}
		s.mu.Unlock()
		resp := s.dispatch(body, key)
		e.resp = resp
		close(e.done)
		s.deliver(w, resp)
		return
	}
	s.deliver(w, s.dispatch(body, ""))
}

// dispatch decodes and executes one call, returning the encoded response
// document (success or fault).
func (s *Server) dispatch(body []byte, key string) []byte {
	method, params, err := DecodeCall(body)
	if err != nil {
		return EncodeFault(&Fault{Code: -32700, String: err.Error()})
	}
	h, ok := s.methods[method]
	if !ok {
		return EncodeFault(&Fault{Code: -32601, String: "method not found: " + method})
	}
	s.mu.Lock()
	s.stats.HandlerCalls++
	s.mu.Unlock()
	s.Obs.Counter(obs.MRPCServerHandlerCalls,
		"handler executions by method", "method", method).Inc()
	if s.OnDispatch != nil {
		s.OnDispatch(method, key)
	}
	//lint:ignore walltime handler latency is an operator metric measuring real elapsed time
	start := time.Now()
	result, err := h(params)
	s.Obs.Histogram(obs.MRPCServerHandlerLatency,
		"handler execution latency by method", nil, "method", method).
		ObserveDuration(time.Since(start))
	if err != nil {
		if f, ok := err.(*Fault); ok {
			return EncodeFault(f)
		}
		return EncodeFault(&Fault{Code: 1, String: err.Error()})
	}
	resp, err := EncodeResponse(result)
	if err != nil {
		return EncodeFault(&Fault{Code: -32603, String: "cannot encode result: " + err.Error()})
	}
	return resp
}

// deliver writes the response, subject to the server-send failpoint: a
// Drop here loses a response whose handler already executed — exactly the
// case idempotency dedup recovers from.
func (s *Server) deliver(w http.ResponseWriter, resp []byte) {
	if !s.inject(w, failpoint.SiteServerSend) {
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	w.Write(resp)
}

// inject evaluates a failpoint site; it reports whether serving should
// continue.
func (s *Server) inject(w http.ResponseWriter, site string) bool {
	d := s.FP.Eval(site)
	if d.Act == failpoint.None {
		return true
	}
	s.mu.Lock()
	s.stats.Injected++
	s.mu.Unlock()
	s.Obs.Counter(obs.MRPCServerFailpointInjections,
		"failpoint decisions fired on the serving path", "site", site).Inc()
	switch d.Act {
	case failpoint.Drop:
		// Sever the connection without a response; net/http suppresses
		// ErrAbortHandler, the client sees a transport error.
		panic(http.ErrAbortHandler)
	case failpoint.Delay:
		time.Sleep(d.Delay)
	case failpoint.Error:
		http.Error(w, "failpoint: injected server error", d.Code)
		return false
	}
	return true
}

// RetryPolicy configures Call's retry behaviour. Retries apply only to
// transport errors (network failures, 5xx/429 responses) — an XML-RPC
// fault is an answer, not a failure, and is never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call; values <= 1
	// disable retry.
	MaxAttempts int
	// BaseBackoff is the backoff before the first retry; it doubles per
	// attempt. 0 means 50 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. 0 means 2 s.
	MaxBackoff time.Duration
	// Timeout bounds each attempt (request deadline); 0 uses the HTTP
	// client's own timeout.
	Timeout time.Duration
	// Seed feeds the jitter PRNG so a retry schedule replays exactly
	// under the same seed (like the treatment planner's PRNGs); 0 means
	// seed 1.
	Seed int64
}

// DefaultRetryPolicy is a sane policy for the control channel: four
// attempts with 50 ms–2 s equal-jitter backoff and a 30 s per-attempt
// deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond,
		MaxBackoff: 2 * time.Second, Timeout: 30 * time.Second, Seed: 1}
}

// TransportError wraps a failed HTTP exchange: the request never produced
// a decodable XML-RPC response. These — and only these — are candidates
// for retry.
type TransportError struct {
	// Method is the XML-RPC method of the failed call.
	Method string
	// Status is the received HTTP status; 0 when the failure was below
	// HTTP (connection refused, reset, timeout, injected drop).
	Status int
	// Err is the underlying error.
	Err error
}

func (e *TransportError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("xmlrpc: %s: http %d: %v", e.Method, e.Status, e.Err)
	}
	return fmt.Sprintf("xmlrpc: %s: %v", e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Retryable reports whether err is a transport error worth retrying:
// network-level failures and 5xx/429 statuses. Faults and other
// application errors are final.
func Retryable(err error) bool {
	var te *TransportError
	if !errors.As(err, &te) {
		return false
	}
	return te.Status == 0 || te.Status >= 500 || te.Status == 429
}

// errInjectedDrop is the synthetic failure of a client-send failpoint.
var errInjectedDrop = errors.New("failpoint: injected request drop")

// ClientStats counts call outcomes.
type ClientStats struct {
	// Calls counts Call invocations.
	Calls int64
	// Attempts counts HTTP exchanges (>= Calls under retry).
	Attempts int64
	// Retries counts re-attempts after retryable transport errors.
	Retries int64
	// Failures counts calls that returned an error after all attempts.
	Failures int64
}

// defaultHTTPClient is shared by every Client without an explicit
// HTTPClient, so TCP connections pool across calls and clients instead of
// being torn down per request.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// keyFallbacks counts crypto/rand failures feeding the degraded keyBase
// path, so even repeated re-derivations inside one process stay distinct.
var keyFallbacks atomic.Int64

// keyBase makes idempotency keys unique across processes: a master
// restarted mid-experiment must not collide with keys a long-lived node
// host has already cached. When crypto/rand is unavailable the fallback
// mixes the PID and a process-local counter into the wall-clock read —
// two masters restarted in the same instant (a supervisor reviving a
// whole control plane) otherwise derive the same nanosecond tag and their
// retries would replay each other's cached responses.
var keyBase = func() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		//lint:ignore walltime degraded uniqueness tag when crypto/rand fails, not an experiment measurement
		return fmt.Sprintf("t%x-%x-%x", os.Getpid(), keyFallbacks.Add(1), time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}()

var clientSeq atomic.Int64

// Client calls methods on a remote XML-RPC server. Calls are synchronous,
// mirroring the prototype's xmlrpclib usage (§VI-A). With a RetryPolicy,
// transport failures are retried with seeded exponential-jitter backoff;
// every call carries an idempotency key so retries are applied at most
// once by the server.
type Client struct {
	// URL is the endpoint, e.g. "http://node1:8800/RPC2".
	URL string
	// HTTPClient defaults to a shared client with a 30 s timeout.
	HTTPClient *http.Client
	// Retry is the retry policy; the zero value performs single attempts.
	Retry RetryPolicy
	// FP, if set, injects deterministic faults before requests are sent
	// (SiteClientSend).
	FP *failpoint.Registry
	// OnRetry, if set, observes every retry decision with the backoff
	// about to be slept.
	OnRetry func(method string, attempt int, backoff time.Duration, err error)
	// Obs, if set, records per-method call/attempt/retry/error counters
	// and call latency histograms into the registry.
	Obs *obs.Registry
	// Sleep replaces time.Sleep between attempts (test hook).
	Sleep func(time.Duration)

	id  string
	seq atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand

	calls, attempts, retries, failures atomic.Int64
}

// NewClient creates a client for the endpoint URL using the shared pooled
// HTTP transport.
func NewClient(url string) *Client {
	return &Client{URL: url, HTTPClient: defaultHTTPClient,
		id: fmt.Sprintf("%s-%d", keyBase, clientSeq.Add(1))}
}

// NewRetryingClient creates a client with a retry policy.
func NewRetryingClient(url string, p RetryPolicy) *Client {
	c := NewClient(url)
	c.Retry = p
	return c
}

// Stats returns a snapshot of the call counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{Calls: c.calls.Load(), Attempts: c.attempts.Load(),
		Retries: c.retries.Load(), Failures: c.failures.Load()}
}

// nextKey derives a fresh idempotency key for one logical call; all
// attempts of the call reuse it.
func (c *Client) nextKey() string {
	c.mu.Lock()
	if c.id == "" {
		// Zero-value clients (no NewClient) still get unique keys.
		c.id = fmt.Sprintf("%s-%d", keyBase, clientSeq.Add(1))
	}
	id := c.id
	c.mu.Unlock()
	return fmt.Sprintf("%s-%d", id, c.seq.Add(1))
}

// backoff computes the jittered delay before retry number attempt.
// Equal-jitter: half deterministic exponential, half drawn from the
// seeded PRNG, so schedules are bounded below and replayable.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.Retry.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.Retry.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	c.mu.Lock()
	if c.rng == nil {
		seed := c.Retry.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	jit := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d/2 + jit
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Call invokes method with params and returns the decoded result. Fault
// responses surface as *Fault errors. Transport failures are retried per
// the client's RetryPolicy under a per-call idempotency key.
func (c *Client) Call(method string, params ...any) (any, error) {
	body, err := EncodeCall(method, params...)
	if err != nil {
		return nil, err
	}
	c.calls.Add(1)
	c.Obs.Counter(obs.MRPCClientCalls,
		"logical XML-RPC calls by method", "method", method).Inc()
	//lint:ignore walltime call latency is an operator metric measuring real elapsed time
	start := time.Now()
	defer func() {
		c.Obs.Histogram(obs.MRPCClientLatency,
			"XML-RPC call latency (all attempts and backoffs) by method",
			nil, "method", method).ObserveDuration(time.Since(start))
	}()
	key := c.nextKey()
	max := c.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.attempts.Add(1)
		c.Obs.Counter(obs.MRPCClientAttempts,
			"HTTP exchanges by method (>= calls under retry)", "method", method).Inc()
		res, err := c.do(method, body, key)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !Retryable(err) || attempt >= max {
			break
		}
		backoff := c.backoff(attempt)
		c.retries.Add(1)
		c.Obs.Counter(obs.MRPCClientRetries,
			"re-attempts after retryable transport errors by method", "method", method).Inc()
		if c.OnRetry != nil {
			c.OnRetry(method, attempt, backoff, err)
		}
		c.sleep(backoff)
	}
	c.failures.Add(1)
	c.Obs.Counter(obs.MRPCClientErrors,
		"calls failed after all attempts by method", "method", method).Inc()
	return nil, lastErr
}

// do performs one HTTP exchange.
func (c *Client) do(method string, body []byte, key string) (any, error) {
	switch d := c.FP.Eval(failpoint.SiteClientSend); d.Act {
	case failpoint.Drop:
		return nil, &TransportError{Method: method, Err: errInjectedDrop}
	case failpoint.Delay:
		c.sleep(d.Delay)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = defaultHTTPClient
	}
	ctx := context.Background()
	if c.Retry.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Retry.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("xmlrpc: %s: %w", method, err)
	}
	req.Header.Set("Content-Type", "text/xml")
	req.Header.Set(IdempotencyHeader, key)
	resp, err := hc.Do(req)
	if err != nil {
		return nil, &TransportError{Method: method, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, &TransportError{Method: method, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &TransportError{Method: method, Status: resp.StatusCode,
			Err: fmt.Errorf("%s", strings.TrimSpace(string(data)))}
	}
	return DecodeResponse(data)
}

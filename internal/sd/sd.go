// Package sd defines the generic service discovery model used by the
// ExCovery case study (§III, §V), following the taxonomy of Dabrowski et
// al. [15]: service users (SU) discover services that service managers
// (SM) publish, optionally through service cache managers (SCM).
//
// The package provides the protocol-independent pieces — roles, service
// instances, the TTL cache, the Agent interface with its event vocabulary —
// while concrete service discovery protocols live in the subpackages
// zeroconf (two-party, mDNS/DNS-SD-like) and scmdir (three-party directory
// protocol with an SCM, plus a hybrid mode). The abstract SD process
// description "does not intend to model an SDP specific behavior in detail"
// (§V); any Agent implementation can execute it, which is what makes SDP
// implementations comparable in experiments.
package sd

import (
	"fmt"
	"sort"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
)

// Role is a node's function in the SD process (§III-A).
type Role string

const (
	// RoleSU is a service user (discovers services).
	RoleSU Role = "SU"
	// RoleSM is a service manager (publishes services).
	RoleSM Role = "SM"
	// RoleSCM is a service cache manager (caches and answers queries).
	RoleSCM Role = "SCM"
)

// ServiceType names an abstract service class, e.g. "_expproc._udp".
type ServiceType string

// Instance is a concrete service instance description (§III-A): the SM
// identity, the type, an interface location and optional attributes.
type Instance struct {
	// Name uniquely identifies the instance, e.g. "printer-1._ipp._udp".
	Name string
	// Type is the service class.
	Type ServiceType
	// Node is the identity of the publishing SM.
	Node netem.NodeID
	// Address is the service interface location.
	Address string
	// Port is the service port.
	Port int
	// TXT carries additional attributes.
	TXT map[string]string
	// Version increments with every description update; caches treat a
	// higher version as a changed description.
	Version int
}

func (i Instance) String() string {
	return fmt.Sprintf("%s (%s on %s)", i.Name, i.Type, i.Node)
}

// Equal reports whether two instances describe the same state.
func (i Instance) Equal(o Instance) bool {
	if i.Name != o.Name || i.Type != o.Type || i.Node != o.Node ||
		i.Address != o.Address || i.Port != o.Port || i.Version != o.Version ||
		len(i.TXT) != len(o.TXT) {
		return false
	}
	for k, v := range i.TXT {
		if o.TXT[k] != v {
			return false
		}
	}
	return true
}

// Event types of the SD experiment process (§V). Agents emit them through
// their EventSink; the experiment description synchronizes on them.
const (
	EvInitDone     = "sd_init_done"
	EvExitDone     = "sd_exit_done"
	EvStartSearch  = "sd_start_search"
	EvStopSearch   = "sd_stop_search"
	EvServiceAdd   = "sd_service_add"
	EvServiceDel   = "sd_service_del"
	EvServiceUpd   = "sd_service_upd"
	EvStartPublish = "sd_start_publish"
	EvStopPublish  = "sd_stop_publish"
	EvSCMStarted   = "scm_started"
	EvSCMFound     = "scm_found"
	EvSCMRegAdd    = "scm_registration_add"
	EvSCMRegDel    = "scm_registration_del"
	EvSCMRegUpd    = "scm_registration_upd"
)

// EventSink receives the SD events an agent generates. The node manager
// wires it to the node's event recorder.
type EventSink func(typ string, params map[string]string)

// Scheme is the communication scheme used for discovery (§III-B).
type Scheme string

const (
	// SchemeActive sends multicast queries (aggressive discovery).
	SchemeActive Scheme = "active"
	// SchemePassive only listens to unsolicited announcements (lazy
	// discovery).
	SchemePassive Scheme = "passive"
	// SchemeDirected sends unicast queries to a known SCM or SM.
	SchemeDirected Scheme = "directed"
)

// Agent is the protocol-independent SD interface executing the actions of
// §V. All methods must be called from scheduler task context. Agents
// operate continuously once initialized; searches and publications persist
// until stopped or until Exit.
type Agent interface {
	// Init performs "Configuration Discovery and Monitoring": the agent
	// establishes its identity and, depending on the protocol, discovers
	// scopes and SCMs. It emits sd_init_done when complete (and
	// scm_started when initialized as SCM).
	Init(role Role) error
	// Exit stops the role and all searches and publications, emitting
	// sd_exit_done upon completion.
	Exit()
	// StartSearch initiates a continuous discovery process for a service
	// type, emitting sd_start_search, then sd_service_add per discovered
	// instance (with the instance and publishing node as parameters).
	StartSearch(t ServiceType)
	// StopSearch stops a search, including removal of notification
	// requests on SCMs; emits sd_stop_search.
	StopSearch(t ServiceType)
	// StartPublish publishes an instance, emitting sd_start_publish.
	StartPublish(inst Instance)
	// StopPublish gracefully stops publishing (goodbyes, SCM
	// de-registration), emitting sd_stop_publish.
	StopPublish(name string)
	// UpdatePublish updates a published description, emitting
	// sd_service_upd before the update executes.
	UpdatePublish(inst Instance)
	// Discovered returns the currently known instances of a type, sorted
	// by name (the agent's local cache view).
	Discovered(t ServiceType) []Instance
}

// Cache is a TTL-bounded service instance cache, the "local cache on SUs
// and SMs to reduce network load" (§III-A). Expiry runs on the scheduler;
// callbacks fire on state transitions.
type Cache struct {
	s       *sched.Scheduler
	entries map[string]*cacheEntry
	// OnAdd fires when a previously unknown instance appears.
	OnAdd func(Instance)
	// OnDel fires when an instance expires or is removed.
	OnDel func(Instance)
	// OnUpd fires when a known instance's description changes.
	OnUpd func(Instance)
}

type cacheEntry struct {
	inst  Instance
	timer *sched.Timer
}

// NewCache creates an empty cache on the scheduler.
func NewCache(s *sched.Scheduler) *Cache {
	return &Cache{s: s, entries: make(map[string]*cacheEntry)}
}

// Upsert inserts or refreshes an instance with the given TTL. A TTL of
// zero removes the instance (a goodbye). Returns true if the instance was
// new.
func (c *Cache) Upsert(inst Instance, ttl time.Duration) bool {
	if ttl <= 0 {
		c.Remove(inst.Name)
		return false
	}
	e, known := c.entries[inst.Name]
	if known {
		e.timer.Stop()
		changed := !e.inst.Equal(inst)
		e.inst = inst
		e.timer = c.expiryTimer(inst.Name, ttl)
		if changed && c.OnUpd != nil {
			c.OnUpd(inst)
		}
		return false
	}
	c.entries[inst.Name] = &cacheEntry{inst: inst, timer: c.expiryTimer(inst.Name, ttl)}
	if c.OnAdd != nil {
		c.OnAdd(inst)
	}
	return true
}

func (c *Cache) expiryTimer(name string, ttl time.Duration) *sched.Timer {
	return c.s.ScheduleFunc(ttl, "cache-expire "+name, func() {
		c.Remove(name)
	})
}

// Remove deletes an instance, firing OnDel if it was present.
func (c *Cache) Remove(name string) {
	e, ok := c.entries[name]
	if !ok {
		return
	}
	e.timer.Stop()
	delete(c.entries, name)
	if c.OnDel != nil {
		c.OnDel(e.inst)
	}
}

// Lookup returns the cached instances of a type, sorted by name.
func (c *Cache) Lookup(t ServiceType) []Instance {
	var out []Instance
	for _, e := range c.entries {
		if e.inst.Type == t {
			out = append(out, e.inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns a cached instance by name.
func (c *Cache) Get(name string) (Instance, bool) {
	e, ok := c.entries[name]
	if !ok {
		return Instance{}, false
	}
	return e.inst, true
}

// Len returns the number of cached instances.
func (c *Cache) Len() int { return len(c.entries) }

// Flush removes all entries without firing callbacks (run preparation).
func (c *Cache) Flush() {
	for _, e := range c.entries {
		e.timer.Stop()
	}
	c.entries = make(map[string]*cacheEntry)
}

// InstParams builds the standard event parameters naming a discovered or
// published instance: the instance identifier and the publishing node, the
// latter matching the param_dependency checks of Fig. 10.
func InstParams(inst Instance) map[string]string {
	return map[string]string{
		"service": inst.Name,
		"type":    string(inst.Type),
		"node":    string(inst.Node),
	}
}

package sd

import (
	"testing"
	"testing/quick"
	"time"

	"excovery/internal/sched"
)

func TestCacheUpsertAddUpdDel(t *testing.T) {
	s := sched.NewVirtual()
	c := NewCache(s)
	var adds, upds, dels []string
	c.OnAdd = func(i Instance) { adds = append(adds, i.Name) }
	c.OnUpd = func(i Instance) { upds = append(upds, i.Name) }
	c.OnDel = func(i Instance) { dels = append(dels, i.Name) }
	s.Go("t", func() {
		i := Instance{Name: "a", Type: "_x"}
		if !c.Upsert(i, time.Minute) {
			t.Error("first upsert should report new")
		}
		if c.Upsert(i, time.Minute) {
			t.Error("refresh should not report new")
		}
		i.Version = 1
		c.Upsert(i, time.Minute)
		c.Remove("a")
		c.Remove("a") // idempotent
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(adds) != 1 || len(upds) != 1 || len(dels) != 1 {
		t.Fatalf("adds=%v upds=%v dels=%v", adds, upds, dels)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	s := sched.NewVirtual()
	c := NewCache(s)
	var delAt time.Time
	c.OnDel = func(Instance) { delAt = s.Now() }
	start := s.Now()
	s.Go("t", func() {
		c.Upsert(Instance{Name: "a", Type: "_x"}, 10*time.Second)
		s.Sleep(5 * time.Second)
		// Refresh restarts the TTL.
		c.Upsert(Instance{Name: "a", Type: "_x"}, 10*time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := delAt.Sub(start); got != 15*time.Second {
		t.Fatalf("expired after %v, want 15s (refresh at 5s + 10s TTL)", got)
	}
}

func TestCacheZeroTTLIsGoodbye(t *testing.T) {
	s := sched.NewVirtual()
	c := NewCache(s)
	dels := 0
	c.OnDel = func(Instance) { dels++ }
	s.Go("t", func() {
		c.Upsert(Instance{Name: "a", Type: "_x"}, time.Minute)
		c.Upsert(Instance{Name: "a", Type: "_x"}, 0)
		if c.Len() != 0 {
			t.Error("zero TTL did not remove")
		}
		// Goodbye for unknown instance is a no-op.
		c.Upsert(Instance{Name: "b", Type: "_x"}, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dels != 1 {
		t.Fatalf("dels = %d", dels)
	}
}

func TestCacheLookupSortedAndTyped(t *testing.T) {
	s := sched.NewVirtual()
	c := NewCache(s)
	s.Go("t", func() {
		c.Upsert(Instance{Name: "zeta", Type: "_x"}, time.Minute)
		c.Upsert(Instance{Name: "alpha", Type: "_x"}, time.Minute)
		c.Upsert(Instance{Name: "other", Type: "_y"}, time.Minute)
		got := c.Lookup("_x")
		if len(got) != 2 || got[0].Name != "alpha" || got[1].Name != "zeta" {
			t.Errorf("Lookup = %v", got)
		}
		if _, ok := c.Get("other"); !ok {
			t.Error("Get failed")
		}
		if _, ok := c.Get("nope"); ok {
			t.Error("Get on missing succeeded")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheFlushSilent(t *testing.T) {
	s := sched.NewVirtual()
	c := NewCache(s)
	dels := 0
	c.OnDel = func(Instance) { dels++ }
	s.Go("t", func() {
		c.Upsert(Instance{Name: "a", Type: "_x"}, time.Minute)
		c.Flush()
		if c.Len() != 0 {
			t.Error("flush left entries")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dels != 0 {
		t.Fatalf("flush fired %d OnDel callbacks", dels)
	}
}

func TestInstanceEqual(t *testing.T) {
	base := Instance{Name: "a", Type: "_x", Node: "n", Address: "1.2.3.4", Port: 5,
		TXT: map[string]string{"k": "v"}}
	same := base
	same.TXT = map[string]string{"k": "v"}
	if !base.Equal(same) {
		t.Fatal("equal instances reported unequal")
	}
	for _, mut := range []func(*Instance){
		func(i *Instance) { i.Name = "b" },
		func(i *Instance) { i.Type = "_y" },
		func(i *Instance) { i.Node = "m" },
		func(i *Instance) { i.Address = "x" },
		func(i *Instance) { i.Port = 6 },
		func(i *Instance) { i.Version = 1 },
		func(i *Instance) { i.TXT = map[string]string{"k": "w"} },
		func(i *Instance) { i.TXT = map[string]string{} },
	} {
		o := base
		o.TXT = map[string]string{"k": "v"}
		mut(&o)
		if base.Equal(o) {
			t.Fatalf("mutation not detected: %+v", o)
		}
	}
}

func TestInstParams(t *testing.T) {
	p := InstParams(Instance{Name: "svc", Type: "_x", Node: "host1"})
	if p["service"] != "svc" || p["type"] != "_x" || p["node"] != "host1" {
		t.Fatalf("params = %v", p)
	}
}

// Property: after any sequence of upserts and removes, Len equals the
// number of distinct live names.
func TestCacheLenProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := sched.NewVirtual()
		c := NewCache(s)
		live := map[string]bool{}
		ok := true
		s.Go("t", func() {
			for _, op := range ops {
				name := string(rune('a' + op%8))
				if op%3 == 0 {
					c.Remove(name)
					delete(live, name)
				} else {
					c.Upsert(Instance{Name: name, Type: "_x"}, time.Hour)
					live[name] = true
				}
			}
			ok = c.Len() == len(live)
		})
		if err := s.RunFor(time.Minute); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

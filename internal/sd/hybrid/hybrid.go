// Package hybrid implements the adaptive SD architecture of §III-B:
// "mixed forms that can switch among two- and three-party, called adaptive
// or hybrid architectures".
//
// The hybrid agent runs a two-party zeroconf agent and a three-party
// directory client side by side. Discovery starts immediately over
// multicast; in parallel the directory client keeps probing for an SCM
// ("in a hybrid architecture, SU and SM agents keep looking for SCMs and
// emit scm_found events", §V) and, once one is present, registrations and
// directed queries flow through it as well. Observable SD events are
// deduplicated: an instance is reported added when either path learns it
// first, and removed only when it is gone from both.
package hybrid

import (
	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/sd/scmdir"
	"excovery/internal/sd/zeroconf"
)

// Config bundles the sub-protocol configurations.
type Config struct {
	// Zeroconf configures the two-party path.
	Zeroconf zeroconf.Config
	// Directory configures the three-party path.
	Directory scmdir.Config
}

const (
	childZC = iota
	childDir
)

// Agent is the adaptive two-/three-party SD agent.
type Agent struct {
	emit    sd.EventSink
	zc      *zeroconf.Agent
	dir     *scmdir.Agent
	running bool
	role    sd.Role
	// present tracks which child paths currently know an instance.
	present map[string]map[int]bool
	insts   map[string]sd.Instance
}

// New creates a hybrid agent on a node.
func New(s *sched.Scheduler, node *netem.Node, cfg Config, emit sd.EventSink, seed int64) *Agent {
	if emit == nil {
		emit = func(string, map[string]string) {}
	}
	a := &Agent{
		emit:    emit,
		present: make(map[string]map[int]bool),
		insts:   make(map[string]sd.Instance),
	}
	a.zc = zeroconf.New(s, node, cfg.Zeroconf, a.childSink(childZC), seed^0x2c)
	a.dir = scmdir.New(s, node, cfg.Directory, a.childSink(childDir), seed^0xd1)
	return a
}

// childSink filters a sub-agent's events: lifecycle events are emitted by
// the hybrid agent itself, SCM events pass through, and service add/del
// events are deduplicated across the two paths.
func (a *Agent) childSink(child int) sd.EventSink {
	return func(typ string, params map[string]string) {
		switch typ {
		case sd.EvSCMStarted, sd.EvSCMFound, sd.EvSCMRegAdd, sd.EvSCMRegDel, sd.EvSCMRegUpd:
			a.emit(typ, params)
		case sd.EvServiceAdd:
			name := params["service"]
			if a.present[name] == nil {
				a.present[name] = make(map[int]bool)
			}
			first := len(a.present[name]) == 0
			a.present[name][child] = true
			if first {
				a.emit(typ, params)
			}
		case sd.EvServiceDel:
			name := params["service"]
			if a.present[name] == nil {
				return
			}
			delete(a.present[name], child)
			if len(a.present[name]) == 0 {
				delete(a.present, name)
				a.emit(typ, params)
			}
		case sd.EvServiceUpd:
			a.emit(typ, params)
		default:
			// Lifecycle events (init/exit/search/publish) are emitted
			// once by the hybrid agent itself.
		}
	}
}

// Init implements sd.Agent. For the SCM role the agent degrades to a pure
// directory server (the two-party path has no SCM concept).
func (a *Agent) Init(role sd.Role) error {
	a.role = role
	a.running = true
	if role != sd.RoleSCM {
		if err := a.zc.Init(role); err != nil {
			return err
		}
	}
	if err := a.dir.Init(role); err != nil {
		return err
	}
	a.emit(sd.EvInitDone, map[string]string{"role": string(role), "architecture": "hybrid"})
	return nil
}

// Exit implements sd.Agent.
func (a *Agent) Exit() {
	if !a.running {
		return
	}
	a.running = false
	if a.role != sd.RoleSCM {
		a.zc.Exit()
	}
	a.dir.Exit()
	a.present = make(map[string]map[int]bool)
	a.emit(sd.EvExitDone, nil)
}

// StartSearch implements sd.Agent: both paths search concurrently.
func (a *Agent) StartSearch(t sd.ServiceType) {
	if !a.running {
		return
	}
	a.emit(sd.EvStartSearch, map[string]string{"type": string(t), "architecture": "hybrid"})
	a.zc.StartSearch(t)
	a.dir.StartSearch(t)
}

// StopSearch implements sd.Agent.
func (a *Agent) StopSearch(t sd.ServiceType) {
	a.zc.StopSearch(t)
	a.dir.StopSearch(t)
	a.emit(sd.EvStopSearch, map[string]string{"type": string(t)})
}

// StartPublish implements sd.Agent: announce over multicast and register
// on the SCM when one is (or becomes) known.
func (a *Agent) StartPublish(inst sd.Instance) {
	if !a.running {
		return
	}
	a.emit(sd.EvStartPublish, sd.InstParams(inst))
	a.zc.StartPublish(inst)
	a.dir.StartPublish(inst)
}

// StopPublish implements sd.Agent.
func (a *Agent) StopPublish(name string) {
	a.zc.StopPublish(name)
	a.dir.StopPublish(name)
	a.emit(sd.EvStopPublish, map[string]string{"service": name})
}

// UpdatePublish implements sd.Agent.
func (a *Agent) UpdatePublish(inst sd.Instance) {
	a.emit(sd.EvServiceUpd, sd.InstParams(inst))
	a.zc.UpdatePublish(inst)
	a.dir.UpdatePublish(inst)
}

// Discovered implements sd.Agent: the union of both paths' caches.
func (a *Agent) Discovered(t sd.ServiceType) []sd.Instance {
	seen := map[string]bool{}
	var out []sd.Instance
	for _, inst := range a.zc.Discovered(t) {
		seen[inst.Name] = true
		out = append(out, inst)
	}
	for _, inst := range a.dir.Discovered(t) {
		if !seen[inst.Name] {
			out = append(out, inst)
		}
	}
	sortInstances(out)
	return out
}

// SCM reports the directory path's SCM, or "" while operating two-party.
func (a *Agent) SCM() netem.NodeID { return a.dir.SCM() }

// HandlePacket routes an SD packet to both sub-protocols; each ignores
// messages of the other's wire format (the JSON kinds are disjoint).
func (a *Agent) HandlePacket(p *netem.Packet) {
	a.zc.HandlePacket(p)
	a.dir.HandlePacket(p)
}

func sortInstances(insts []sd.Instance) {
	for i := 1; i < len(insts); i++ {
		for j := i; j > 0 && insts[j].Name < insts[j-1].Name; j-- {
			insts[j], insts[j-1] = insts[j-1], insts[j]
		}
	}
}

package hybrid

import (
	"testing"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/sd/scmdir"
)

type rig struct {
	s      *sched.Scheduler
	nw     *netem.Network
	ids    []netem.NodeID
	agents []*Agent
	events map[netem.NodeID][]string
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	s := sched.NewVirtual()
	nw := netem.New(s, 21)
	ids := netem.BuildFull(nw, "h", n, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	r := &rig{s: s, nw: nw, ids: ids, events: map[netem.NodeID][]string{}}
	for i, id := range ids {
		id := id
		sink := func(typ string, p map[string]string) {
			r.events[id] = append(r.events[id], typ)
		}
		a := New(s, nw.Node(id), Config{}, sink, int64(300+i))
		nw.Node(id).SetHandler(func(p *netem.Packet) {
			if p.Proto == "sd" {
				a.HandlePacket(p)
			}
		})
		r.agents = append(r.agents, a)
	}
	return r
}

func (r *rig) count(id netem.NodeID, typ string) int {
	n := 0
	for _, e := range r.events[id] {
		if e == typ {
			n++
		}
	}
	return n
}

func inst(name string) sd.Instance {
	return sd.Instance{Name: name, Type: "_exp._udp", Address: "10.0.0.1", Port: 1}
}

func TestHybridWorksWithoutSCM(t *testing.T) {
	// No SCM anywhere: the hybrid agent must behave like a plain
	// two-party agent.
	r := newRig(t, 2)
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.count(r.ids[1], sd.EvServiceAdd) != 1 {
		t.Fatalf("adds = %d, want exactly 1", r.count(r.ids[1], sd.EvServiceAdd))
	}
	if su.SCM() != "" {
		t.Fatalf("phantom SCM %q", su.SCM())
	}
	if len(su.Discovered("_exp._udp")) != 1 {
		t.Fatal("Discovered() empty")
	}
}

func TestHybridDeduplicatesAcrossPaths(t *testing.T) {
	// With an SCM present, the SU learns the instance over multicast AND
	// through the directory, but must report sd_service_add exactly once.
	r := newRig(t, 3)
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(30 * time.Second)
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := r.count(r.ids[2], sd.EvServiceAdd); got != 1 {
		t.Fatalf("adds = %d, want 1 (deduplicated)", got)
	}
	if r.count(r.ids[2], sd.EvSCMFound) == 0 {
		t.Fatal("hybrid SU did not find the SCM")
	}
	if r.count(r.ids[0], sd.EvSCMRegAdd) == 0 {
		t.Fatal("hybrid SM did not register on the SCM")
	}
	if su.SCM() != r.ids[0] {
		t.Fatalf("SCM() = %q", su.SCM())
	}
}

func TestHybridDelOnlyWhenGoneFromBothPaths(t *testing.T) {
	cfg := Config{}
	cfg.Zeroconf.TTL = 8 * time.Second // zeroconf path expires quickly
	cfg.Directory.RegTTL = 60 * time.Second
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	ids := netem.BuildFull(nw, "h", 3, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	events := map[netem.NodeID][]string{}
	var agents []*Agent
	for i, id := range ids {
		id := id
		a := New(s, nw.Node(id), cfg, func(typ string, p map[string]string) {
			events[id] = append(events[id], typ)
		}, int64(400+i))
		nw.Node(id).SetHandler(func(p *netem.Packet) { a.HandlePacket(p) })
		agents = append(agents, a)
	}
	scm, sm, su := agents[0], agents[1], agents[2]
	s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		// Run beyond the zeroconf TTL: announcements stop being
		// refreshed (only the initial burst is sent), so the zeroconf
		// cache entry may expire, but the directory path keeps the
		// instance alive via renewals — no sd_service_del may fire.
		s.Sleep(40 * time.Second)
	})
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	del := 0
	for _, e := range events[ids[2]] {
		if e == sd.EvServiceDel {
			del++
		}
	}
	if del != 0 {
		t.Fatalf("sd_service_del fired %d times while directory path alive", del)
	}
	if len(su.Discovered("_exp._udp")) != 1 {
		t.Fatal("instance lost")
	}
}

func TestHybridSCMAppearsLate(t *testing.T) {
	// Adaptive switching: discovery starts two-party; when an SCM boots
	// later, the agents adopt it (scm_found) without interrupting the
	// running search.
	r := newRig(t, 3)
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(20 * time.Second)
		scm.Init(sd.RoleSCM)
		r.s.Sleep(40 * time.Second)
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.count(r.ids[2], sd.EvSCMFound) == 0 {
		t.Fatal("late SCM not adopted by SU")
	}
	if r.count(r.ids[1], sd.EvSCMFound) == 0 {
		t.Fatal("late SCM not adopted by SM")
	}
	if r.count(r.ids[0], sd.EvSCMRegAdd) == 0 {
		t.Fatal("SM did not register on the late SCM")
	}
	if got := r.count(r.ids[2], sd.EvServiceAdd); got != 1 {
		t.Fatalf("adds = %d", got)
	}
}

func TestHybridStopPublishRemovesEverywhere(t *testing.T) {
	r := newRig(t, 3)
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(10 * time.Second)
		sm.StopPublish("svc1")
		r.s.Sleep(5 * time.Second)
		if n := len(su.Discovered("_exp._udp")); n != 0 {
			t.Errorf("still discovered: %d", n)
		}
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := r.count(r.ids[2], sd.EvServiceDel); got != 1 {
		t.Fatalf("dels = %d, want 1 (gone from both paths)", got)
	}
}

func TestHybridLifecycleEventsEmittedOnce(t *testing.T) {
	r := newRig(t, 2)
	su := r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		r.s.Sleep(time.Second)
		su.StopSearch("_exp._udp")
		su.Exit()
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{sd.EvInitDone, sd.EvStartSearch, sd.EvStopSearch, sd.EvExitDone} {
		if got := r.count(r.ids[1], typ); got != 1 {
			t.Errorf("%s emitted %d times", typ, got)
		}
	}
}

func TestHybridSCMRoleDegradesToDirectory(t *testing.T) {
	r := newRig(t, 2)
	scm := r.agents[0]
	r.s.Go("t", func() {
		if err := scm.Init(sd.RoleSCM); err != nil {
			t.Error(err)
		}
		scm.Exit()
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.count(r.ids[0], sd.EvSCMStarted) != 1 {
		t.Fatal("no scm_started")
	}
	if r.count(r.ids[0], sd.EvExitDone) != 1 {
		t.Fatal("no exit")
	}
}

func TestHybridVsDirAgentsInterop(t *testing.T) {
	// A hybrid SU must find services registered by a pure scmdir SM.
	s := sched.NewVirtual()
	nw := netem.New(s, 9)
	ids := netem.BuildFull(nw, "m", 3, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	adds := 0
	scm := scmdir.New(s, nw.Node(ids[0]), scmdir.Config{}, nil, 1)
	sm := scmdir.New(s, nw.Node(ids[1]), scmdir.Config{}, nil, 2)
	su := New(s, nw.Node(ids[2]), Config{}, func(typ string, p map[string]string) {
		if typ == sd.EvServiceAdd {
			adds++
		}
	}, 3)
	nw.Node(ids[0]).SetHandler(func(p *netem.Packet) { scm.HandlePacket(p) })
	nw.Node(ids[1]).SetHandler(func(p *netem.Packet) { sm.HandlePacket(p) })
	nw.Node(ids[2]).SetHandler(func(p *netem.Packet) { su.HandlePacket(p) })
	s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc-dir"))
		su.StartSearch("_exp._udp")
		s.Sleep(10 * time.Second)
	})
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if adds != 1 {
		t.Fatalf("adds = %d", adds)
	}
}

func TestHybridUpdateAndDiscoveredUnion(t *testing.T) {
	r := newRig(t, 3)
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(10 * time.Second)
		upd := inst("svc1")
		upd.TXT = map[string]string{"v": "2"}
		sm.UpdatePublish(upd)
		r.s.Sleep(5 * time.Second)
		got := su.Discovered("_exp._udp")
		if len(got) != 1 {
			t.Errorf("union = %d instances", len(got))
		} else if got[0].TXT["v"] != "2" {
			t.Errorf("update not visible: %+v", got[0])
		}
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.count(r.ids[1], sd.EvServiceUpd) == 0 {
		t.Fatal("no sd_service_upd from hybrid SM")
	}
}

func TestHybridIdempotentLifecycle(t *testing.T) {
	r := newRig(t, 2)
	su := r.agents[1]
	r.s.Go("t", func() {
		su.Exit() // exit before init is a no-op
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		su.StartSearch("_exp._udp") // duplicate search
		su.StopSearch("_exp._udp")
		su.Exit()
		su.Exit() // double exit
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := r.count(r.ids[1], sd.EvExitDone); got != 1 {
		t.Fatalf("exit events = %d", got)
	}
}

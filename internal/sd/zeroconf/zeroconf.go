// Package zeroconf implements a two-party service discovery protocol in
// the style of Zeroconf (mDNS/DNS-SD), the SDP family of the ExCovery
// prototype (§VI used Avahi [24]).
//
// Behaviour modeled after mDNS continuous querying:
//
//   - Publishing sends a burst of unsolicited multicast announcements and
//     thereafter answers multicast queries for the published type, delaying
//     each response by a small random interval (collision avoidance) and
//     applying known-answer suppression.
//   - Active searching multicasts queries with exponential backoff
//     (1 s, 2 s, 4 s, … capped) carrying the cache content as known
//     answers; passive searching only listens to announcements.
//   - Records carry a TTL and expire from the cache; goodbyes (TTL 0)
//     remove them immediately.
//   - Every query carries an identifier which responses echo. This
//     reproduces the paper's Avahi modification "to allow the association
//     of request and response pairs" (§VI) for per-packet response-time
//     analysis.
package zeroconf

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
)

// Proto is the netem protocol label of zeroconf packets; fault injections
// targeting the experiment process select it.
const Proto = "sd"

// Config tunes protocol timing. The zero value is completed with defaults
// resembling mDNS.
type Config struct {
	// Group is the multicast group; default "mdns".
	Group string
	// AnnounceCount is the number of unsolicited announcements sent when
	// publishing starts; default 3.
	AnnounceCount int
	// AnnounceInterval spaces the announcement burst; default 1 s.
	AnnounceInterval time.Duration
	// QueryInterval is the first query backoff step; default 1 s.
	QueryInterval time.Duration
	// QueryBackoff is the backoff multiplier; default 2.
	QueryBackoff float64
	// QueryMax caps the backoff; default 60 s.
	QueryMax time.Duration
	// ResponseDelayMin/Max bound the random response delay; default
	// 20–120 ms (mDNS shared-record response jitter).
	ResponseDelayMin time.Duration
	ResponseDelayMax time.Duration
	// TTL is the record lifetime; default 75 s.
	TTL time.Duration
	// Scheme selects active or passive discovery; default active.
	Scheme sd.Scheme
}

func (c *Config) fill() {
	if c.Group == "" {
		c.Group = "mdns"
	}
	if c.AnnounceCount == 0 {
		c.AnnounceCount = 3
	}
	if c.AnnounceInterval == 0 {
		c.AnnounceInterval = time.Second
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = time.Second
	}
	if c.QueryBackoff == 0 {
		c.QueryBackoff = 2
	}
	if c.QueryMax == 0 {
		c.QueryMax = 60 * time.Second
	}
	if c.ResponseDelayMin == 0 {
		c.ResponseDelayMin = 20 * time.Millisecond
	}
	if c.ResponseDelayMax == 0 {
		c.ResponseDelayMax = 120 * time.Millisecond
	}
	if c.TTL == 0 {
		c.TTL = 75 * time.Second
	}
	if c.Scheme == "" {
		c.Scheme = sd.SchemeActive
	}
}

// message is the wire format.
type message struct {
	Kind    string           `json:"kind"` // query | response | announce | goodbye
	QID     uint32           `json:"qid,omitempty"`
	From    netem.NodeID     `json:"from"`
	Types   []sd.ServiceType `json:"types,omitempty"`
	Known   []knownAnswer    `json:"known,omitempty"`
	Records []record         `json:"records,omitempty"`
}

type knownAnswer struct {
	Name         string  `json:"name"`
	RemainingSec float64 `json:"remaining_sec"`
}

type record struct {
	Inst   sd.Instance `json:"inst"`
	TTLSec float64     `json:"ttl_sec"`
}

// QueryRecord associates one sent query with its first answer, enabling
// per-packet response time analysis (§VI).
type QueryRecord struct {
	QID        uint32
	Type       sd.ServiceType
	SentAt     time.Time
	AnsweredAt time.Time
	Answered   bool
}

type search struct {
	typ      sd.ServiceType
	interval time.Duration
	timer    *sched.Timer
}

// Agent is a two-party zeroconf SD agent bound to one netem node.
type Agent struct {
	s    *sched.Scheduler
	node *netem.Node
	cfg  Config
	emit sd.EventSink
	rng  *rand.Rand

	running   bool
	epoch     int // invalidates scheduled callbacks from earlier lifecycles
	role      sd.Role
	cache     *sd.Cache
	published map[string]sd.Instance
	searches  map[sd.ServiceType]*search
	qidSeq    uint32
	queries   map[uint32]*QueryRecord
	qlog      []*QueryRecord
}

// New creates an agent on a node. All randomness (response jitter) derives
// from seed.
func New(s *sched.Scheduler, node *netem.Node, cfg Config, emit sd.EventSink, seed int64) *Agent {
	cfg.fill()
	if emit == nil {
		emit = func(string, map[string]string) {}
	}
	a := &Agent{
		s: s, node: node, cfg: cfg, emit: emit,
		rng:       rand.New(rand.NewSource(seed)),
		published: make(map[string]sd.Instance),
		searches:  make(map[sd.ServiceType]*search),
		queries:   make(map[uint32]*QueryRecord),
	}
	a.cache = sd.NewCache(s)
	a.cache.OnAdd = func(inst sd.Instance) {
		if a.running && a.searches[inst.Type] != nil {
			a.emit(sd.EvServiceAdd, sd.InstParams(inst))
		}
	}
	a.cache.OnDel = func(inst sd.Instance) {
		if a.running && a.searches[inst.Type] != nil {
			a.emit(sd.EvServiceDel, sd.InstParams(inst))
		}
	}
	a.cache.OnUpd = func(inst sd.Instance) {
		if a.running && a.searches[inst.Type] != nil {
			a.emit(sd.EvServiceUpd, sd.InstParams(inst))
		}
	}
	return a
}

// Cache exposes the agent's service cache (read-mostly; used by tests and
// metrics).
func (a *Agent) Cache() *sd.Cache { return a.cache }

// QueryLog returns the request/response association records.
func (a *Agent) QueryLog() []QueryRecord {
	out := make([]QueryRecord, len(a.qlog))
	for i, q := range a.qlog {
		out[i] = *q
	}
	return out
}

// Init implements sd.Agent. Zeroconf has no SCM role.
func (a *Agent) Init(role sd.Role) error {
	if role == sd.RoleSCM {
		return fmt.Errorf("zeroconf: SCM role not supported by a two-party protocol")
	}
	a.role = role
	a.running = true
	a.node.Net().Join(a.cfg.Group, a.node.ID())
	a.emit(sd.EvInitDone, map[string]string{"role": string(role)})
	return nil
}

// Exit implements sd.Agent.
func (a *Agent) Exit() {
	if !a.running {
		return
	}
	for name := range a.published {
		a.sendGoodbye(a.published[name])
	}
	a.published = make(map[string]sd.Instance)
	for _, se := range a.searches {
		if se.timer != nil {
			se.timer.Stop()
		}
	}
	a.searches = make(map[sd.ServiceType]*search)
	a.cache.Flush()
	a.node.Net().Leave(a.cfg.Group, a.node.ID())
	a.running = false
	a.epoch++
	a.emit(sd.EvExitDone, nil)
}

// StartSearch implements sd.Agent.
func (a *Agent) StartSearch(t sd.ServiceType) {
	if !a.running || a.searches[t] != nil {
		return
	}
	se := &search{typ: t, interval: a.cfg.QueryInterval}
	a.searches[t] = se
	a.emit(sd.EvStartSearch, map[string]string{"type": string(t)})
	// Instances already in the local cache count as discovered by this
	// search (§III-A: local caches reduce network load).
	for _, inst := range a.cache.Lookup(t) {
		a.emit(sd.EvServiceAdd, sd.InstParams(inst))
	}
	if a.cfg.Scheme == sd.SchemeActive {
		a.sendQuery(se)
	}
}

// StopSearch implements sd.Agent.
func (a *Agent) StopSearch(t sd.ServiceType) {
	se, ok := a.searches[t]
	if !ok {
		return
	}
	if se.timer != nil {
		se.timer.Stop()
	}
	delete(a.searches, t)
	a.emit(sd.EvStopSearch, map[string]string{"type": string(t)})
}

// StartPublish implements sd.Agent.
func (a *Agent) StartPublish(inst sd.Instance) {
	if !a.running {
		return
	}
	inst.Node = a.node.ID()
	a.published[inst.Name] = inst
	a.emit(sd.EvStartPublish, sd.InstParams(inst))
	a.announce(inst, a.cfg.AnnounceCount)
}

// StopPublish implements sd.Agent.
func (a *Agent) StopPublish(name string) {
	inst, ok := a.published[name]
	if !ok {
		return
	}
	delete(a.published, name)
	a.sendGoodbye(inst)
	a.emit(sd.EvStopPublish, sd.InstParams(inst))
}

// UpdatePublish implements sd.Agent.
func (a *Agent) UpdatePublish(inst sd.Instance) {
	old, ok := a.published[inst.Name]
	if !ok {
		return
	}
	a.emit(sd.EvServiceUpd, sd.InstParams(old))
	inst.Node = a.node.ID()
	inst.Version = old.Version + 1
	a.published[inst.Name] = inst
	a.announce(inst, 1)
}

// Discovered implements sd.Agent.
func (a *Agent) Discovered(t sd.ServiceType) []sd.Instance {
	return a.cache.Lookup(t)
}

// announce sends count unsolicited announcements spaced by the announce
// interval.
func (a *Agent) announce(inst sd.Instance, count int) {
	epoch := a.epoch
	a.sendRecords("announce", 0, []sd.Instance{inst})
	for i := 1; i < count; i++ {
		a.s.ScheduleFunc(time.Duration(i)*a.cfg.AnnounceInterval, "zc-announce", func() {
			if a.epoch != epoch || !a.running {
				return
			}
			// Re-read the instance: an UpdatePublish between burst
			// ticks must not be shadowed by the stale closure value.
			if cur, still := a.published[inst.Name]; still {
				a.sendRecords("announce", 0, []sd.Instance{cur})
			}
		})
	}
}

func (a *Agent) sendGoodbye(inst sd.Instance) {
	a.send(message{Kind: "goodbye", From: a.node.ID(),
		Records: []record{{Inst: inst, TTLSec: 0}}})
}

func (a *Agent) sendRecords(kind string, qid uint32, insts []sd.Instance) {
	recs := make([]record, len(insts))
	for i, inst := range insts {
		recs[i] = record{Inst: inst, TTLSec: a.cfg.TTL.Seconds()}
	}
	a.send(message{Kind: kind, QID: qid, From: a.node.ID(), Records: recs})
}

// sendQuery multicasts one query for a search and schedules the next one
// with exponential backoff.
func (a *Agent) sendQuery(se *search) {
	a.qidSeq++
	qid := a.qidSeq
	qr := &QueryRecord{QID: qid, Type: se.typ, SentAt: a.s.Now()}
	a.queries[qid] = qr
	a.qlog = append(a.qlog, qr)
	var known []knownAnswer
	for _, inst := range a.cache.Lookup(se.typ) {
		known = append(known, knownAnswer{Name: inst.Name, RemainingSec: a.cfg.TTL.Seconds() / 2})
	}
	a.send(message{Kind: "query", QID: qid, From: a.node.ID(),
		Types: []sd.ServiceType{se.typ}, Known: known})

	epoch := a.epoch
	interval := se.interval
	se.interval = time.Duration(float64(se.interval) * a.cfg.QueryBackoff)
	if se.interval > a.cfg.QueryMax {
		se.interval = a.cfg.QueryMax
	}
	se.timer = a.s.ScheduleFunc(interval, "zc-query", func() {
		if a.epoch != epoch || !a.running || a.searches[se.typ] != se {
			return
		}
		a.sendQuery(se)
	})
}

func (a *Agent) send(m message) {
	payload, err := json.Marshal(m)
	if err != nil {
		panic("zeroconf: marshal: " + err.Error())
	}
	a.node.Send(netem.Multicast(a.cfg.Group), Proto, payload)
}

// HandlePacket processes one received SD packet. The node manager routes
// packets with Proto here.
func (a *Agent) HandlePacket(p *netem.Packet) {
	if !a.running {
		return
	}
	var m message
	if err := json.Unmarshal(p.Payload, &m); err != nil {
		return // corrupted packets (Modify rules) are dropped
	}
	if m.From == a.node.ID() {
		return
	}
	switch m.Kind {
	case "query":
		a.handleQuery(m)
	case "response", "announce":
		for _, r := range m.Records {
			a.cache.Upsert(r.Inst, time.Duration(r.TTLSec*float64(time.Second)))
		}
		if m.QID != 0 {
			if qr := a.queries[m.QID]; qr != nil && !qr.Answered {
				qr.Answered = true
				qr.AnsweredAt = a.s.Now()
			}
		}
	case "goodbye":
		for _, r := range m.Records {
			a.cache.Remove(r.Inst.Name)
		}
	}
}

// handleQuery answers queries for published types after a random delay,
// with known-answer suppression.
func (a *Agent) handleQuery(m message) {
	var matches []sd.Instance
	for _, inst := range a.published {
		for _, t := range m.Types {
			if inst.Type != t {
				continue
			}
			suppressed := false
			for _, ka := range m.Known {
				// Suppress if the querier already knows the record
				// with at least half its lifetime remaining.
				if ka.Name == inst.Name && ka.RemainingSec >= a.cfg.TTL.Seconds()/2 {
					suppressed = true
					break
				}
			}
			if !suppressed {
				matches = append(matches, inst)
			}
		}
	}
	if len(matches) == 0 {
		return
	}
	// Sort for determinism: map iteration order must not leak into the
	// simulation.
	sortInstances(matches)
	jitter := a.cfg.ResponseDelayMax - a.cfg.ResponseDelayMin
	delay := a.cfg.ResponseDelayMin
	if jitter > 0 {
		delay += time.Duration(a.rng.Int63n(int64(jitter)))
	}
	epoch := a.epoch
	qid := m.QID
	a.s.ScheduleFunc(delay, "zc-respond", func() {
		if a.epoch != epoch || !a.running {
			return
		}
		live := matches[:0]
		for _, inst := range matches {
			if cur, still := a.published[inst.Name]; still {
				live = append(live, cur)
			}
		}
		if len(live) > 0 {
			a.sendRecords("response", qid, live)
		}
	})
}

func sortInstances(insts []sd.Instance) {
	for i := 1; i < len(insts); i++ {
		for j := i; j > 0 && insts[j].Name < insts[j-1].Name; j-- {
			insts[j], insts[j-1] = insts[j-1], insts[j]
		}
	}
}

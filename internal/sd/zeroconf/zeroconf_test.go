package zeroconf

import (
	"testing"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
)

// rig is a small two-party test fixture: n nodes in a full mesh, one agent
// per node, recorded events per node.
type rig struct {
	s      *sched.Scheduler
	nw     *netem.Network
	ids    []netem.NodeID
	agents []*Agent
	events map[netem.NodeID][]string
	params map[netem.NodeID][]map[string]string
}

func newRig(t *testing.T, n int, cfg Config, link netem.LinkParams) *rig {
	t.Helper()
	s := sched.NewVirtual()
	nw := netem.New(s, 7)
	ids := netem.BuildFull(nw, "n", n, netem.NodeParams{}, link)
	r := &rig{s: s, nw: nw, ids: ids,
		events: map[netem.NodeID][]string{},
		params: map[netem.NodeID][]map[string]string{},
	}
	for i, id := range ids {
		id := id
		sink := func(typ string, p map[string]string) {
			r.events[id] = append(r.events[id], typ)
			r.params[id] = append(r.params[id], p)
		}
		a := New(s, nw.Node(id), cfg, sink, int64(100+i))
		nw.Node(id).SetHandler(func(p *netem.Packet) {
			if p.Proto == Proto {
				a.HandlePacket(p)
			}
		})
		r.agents = append(r.agents, a)
	}
	return r
}

func (r *rig) has(id netem.NodeID, typ string) bool {
	for _, e := range r.events[id] {
		if e == typ {
			return true
		}
	}
	return false
}

func (r *rig) count(id netem.NodeID, typ string) int {
	n := 0
	for _, e := range r.events[id] {
		if e == typ {
			n++
		}
	}
	return n
}

func inst(name string, typ sd.ServiceType) sd.Instance {
	return sd.Instance{Name: name, Type: typ, Address: "10.0.0.1", Port: 4711}
}

func TestActiveDiscoveryQueryResponse(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	var tR time.Duration
	r.s.Go("sm", func() {
		if err := sm.Init(sd.RoleSM); err != nil {
			t.Error(err)
		}
		sm.StartPublish(inst("svc1", "_exp._udp"))
	})
	r.s.Go("su", func() {
		// Let the announcement burst pass so discovery must go through
		// query/response (the Fig. 11 preparation phase does the same).
		r.s.Sleep(5 * time.Second)
		if err := su.Init(sd.RoleSU); err != nil {
			t.Error(err)
		}
		start := r.s.Now()
		su.StartSearch("_exp._udp")
		for su.Cache().Len() == 0 {
			r.s.Sleep(10 * time.Millisecond)
			if r.s.Now().Sub(start) > 30*time.Second {
				t.Error("discovery did not complete within deadline")
				return
			}
		}
		tR = r.s.Now().Sub(start)
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[1], sd.EvServiceAdd) {
		t.Fatal("no sd_service_add on SU")
	}
	// Query → jittered response: t_R must be in (20ms, 200ms).
	if tR < 20*time.Millisecond || tR > 200*time.Millisecond {
		t.Fatalf("t_R = %v, want 20–200 ms for one-hop query/response", tR)
	}
	// Request/response association must record the answered query.
	ql := su.QueryLog()
	if len(ql) == 0 || !ql[0].Answered {
		t.Fatalf("query log = %+v", ql)
	}
	if rtt := ql[0].AnsweredAt.Sub(ql[0].SentAt); rtt != tR {
		t.Logf("per-packet rtt %v vs t_R %v", rtt, tR) // informational
	}
}

func TestPassiveDiscoveryViaAnnouncements(t *testing.T) {
	r := newRig(t, 2, Config{Scheme: sd.SchemePassive}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("su", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
	})
	r.s.Go("sm", func() {
		r.s.Sleep(time.Second)
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[1], sd.EvServiceAdd) {
		t.Fatal("passive SU did not learn from announcement")
	}
	// A passive searcher sends no queries.
	if len(su.QueryLog()) != 0 {
		t.Fatalf("passive agent sent %d queries", len(su.QueryLog()))
	}
}

func TestCachedInstanceDiscoveredImmediately(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(time.Second) // announcement fills SU cache
		if su.Cache().Len() != 1 {
			t.Error("cache not primed by announcement")
		}
		su.StartSearch("_exp._udp")
		// Event must fire synchronously from cache.
		if !r.has(r.ids[1], sd.EvServiceAdd) {
			t.Error("cached instance not reported at StartSearch")
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestGoodbyeRemovesAndEmitsDel(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(2 * time.Second)
		sm.StopPublish("svc1")
		r.s.Sleep(time.Second)
		if su.Cache().Len() != 0 {
			t.Error("goodbye did not purge SU cache")
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[1], sd.EvServiceDel) {
		t.Fatal("no sd_service_del after goodbye")
	}
	if !r.has(r.ids[0], sd.EvStopPublish) {
		t.Fatal("no sd_stop_publish on SM")
	}
}

func TestTTLExpiryEmitsDel(t *testing.T) {
	cfg := Config{TTL: 5 * time.Second, AnnounceCount: 1}
	r := newRig(t, 2, cfg, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(time.Second)
		// SM dies without goodbye: block its interface.
		r.nw.Node(r.ids[0]).SetInterfaceDir(true, true)
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[1], sd.EvServiceDel) {
		t.Fatal("record did not expire after TTL")
	}
}

func TestKnownAnswerSuppression(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(2 * time.Second) // cache primed via announcements
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	// All queries carried the cached record as known answer, so no
	// query should have been answered.
	for _, q := range su.QueryLog() {
		if q.Answered {
			t.Fatalf("query %d answered despite known-answer suppression", q.QID)
		}
	}
}

func TestQueryBackoffSchedule(t *testing.T) {
	// With no SM present, the searcher keeps querying with exponential
	// backoff: 0, 1s, 3s, 7s, 15s, 31s, 91s... (cumulative with cap 60).
	r := newRig(t, 1, Config{}, netem.LinkParams{Delay: time.Millisecond})
	su := r.agents[0]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	ql := su.QueryLog()
	if len(ql) < 6 {
		t.Fatalf("only %d queries in 200s", len(ql))
	}
	start := ql[0].SentAt
	offsets := make([]time.Duration, len(ql))
	for i, q := range ql {
		offsets[i] = q.SentAt.Sub(start)
	}
	want := []time.Duration{0, 1 * time.Second, 3 * time.Second, 7 * time.Second,
		15 * time.Second, 31 * time.Second}
	for i, w := range want {
		if offsets[i] != w {
			t.Fatalf("query %d at %v, want %v (offsets %v)", i, offsets[i], w, offsets[:6])
		}
	}
	// Backoff capped at QueryMax: consecutive gaps never exceed 60s.
	for i := 1; i < len(offsets); i++ {
		if gap := offsets[i] - offsets[i-1]; gap > 60*time.Second {
			t.Fatalf("gap %v exceeds cap", gap)
		}
	}
}

func TestMultipleSMsAllDiscovered(t *testing.T) {
	r := newRig(t, 5, Config{}, netem.LinkParams{Delay: time.Millisecond})
	r.s.Go("t", func() {
		for i := 0; i < 4; i++ {
			r.agents[i].Init(sd.RoleSM)
			r.agents[i].StartPublish(inst("svc"+string(rune('0'+i)), "_exp._udp"))
		}
		su := r.agents[4]
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.count(r.ids[4], sd.EvServiceAdd); got != 4 {
		t.Fatalf("discovered %d SMs, want 4", got)
	}
	if got := len(r.agents[4].Discovered("_exp._udp")); got != 4 {
		t.Fatalf("Discovered() = %d", got)
	}
}

func TestUpdatePublishPropagates(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(2 * time.Second)
		upd := inst("svc1", "_exp._udp")
		upd.TXT = map[string]string{"version": "2"}
		sm.UpdatePublish(upd)
		r.s.Sleep(time.Second)
		got := su.Discovered("_exp._udp")
		if len(got) != 1 || got[0].TXT["version"] != "2" {
			t.Errorf("updated description not propagated: %+v", got)
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	// sd_service_upd on the SM (before update, §V) and on the SU (cache
	// change).
	if !r.has(r.ids[0], sd.EvServiceUpd) {
		t.Fatal("no sd_service_upd on SM")
	}
	if !r.has(r.ids[1], sd.EvServiceUpd) {
		t.Fatal("no sd_service_upd on SU")
	}
}

func TestExitSendsGoodbyesAndStopsTimers(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	var exitAt time.Time
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(2 * time.Second)
		sm.Exit()
		su.Exit()
		exitAt = r.s.Now()
	})
	if err := r.s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[0], sd.EvExitDone) || !r.has(r.ids[1], sd.EvExitDone) {
		t.Fatal("missing sd_exit_done")
	}
	// After Exit no further queries may be sent (timers are
	// epoch-guarded).
	for _, q := range su.QueryLog() {
		if q.SentAt.After(exitAt) {
			t.Fatalf("query sent after Exit at %v", q.SentAt)
		}
	}
}

func TestSCMRoleRejected(t *testing.T) {
	r := newRig(t, 1, Config{}, netem.LinkParams{Delay: time.Millisecond})
	r.s.Go("t", func() {
		if err := r.agents[0].Init(sd.RoleSCM); err == nil {
			t.Error("zeroconf accepted SCM role")
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryUnderLoss(t *testing.T) {
	// With 30% loss, retransmissions (query backoff + announce burst)
	// must still discover, only later.
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond, Loss: 0.3})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(5 * time.Second)
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[1], sd.EvServiceAdd) {
		t.Fatal("discovery failed under 30% loss within 3 minutes")
	}
}

func TestCorruptedPacketIgnored(t *testing.T) {
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		// Corrupt everything the SM sends.
		r.nw.Node(r.ids[0]).InstallRule(netem.Rule{
			Dir: netem.DirTx, Proto: Proto,
			Modify: func(p *netem.Packet) { p.Payload = []byte("garbage") },
		})
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
	})
	if err := r.s.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.has(r.ids[1], sd.EvServiceAdd) {
		t.Fatal("corrupted records should not be parsed")
	}
}

func TestDeterministicDiscoveryTimes(t *testing.T) {
	run := func() time.Duration {
		r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond, Jitter: time.Millisecond, Loss: 0.05})
		var tR time.Duration
		r.s.Go("t", func() {
			r.agents[0].Init(sd.RoleSM)
			r.agents[0].StartPublish(inst("svc1", "_exp._udp"))
			r.s.Sleep(5 * time.Second)
			su := r.agents[2]
			su.Init(sd.RoleSU)
			start := r.s.Now()
			su.StartSearch("_exp._udp")
			for su.Cache().Len() == 0 {
				r.s.Sleep(time.Millisecond)
			}
			tR = r.s.Now().Sub(start)
		})
		if err := r.s.RunFor(time.Minute); err != nil {
			t.Fatal(err)
		}
		return tR
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("discovery time differs across identical runs: %v vs %v", a, b)
	}
}

func TestAnnounceBurstCarriesUpdatedDescription(t *testing.T) {
	// An UpdatePublish landing between the ticks of the announce burst
	// must not be shadowed: the remaining burst announcements carry the
	// new description.
	r := newRig(t, 2, Config{}, netem.LinkParams{Delay: time.Millisecond})
	sm, su := r.agents[0], r.agents[1]
	r.s.Go("t", func() {
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1", "_exp._udp"))
		r.s.Sleep(500 * time.Millisecond) // between burst ticks (0s,1s,2s)
		upd := inst("svc1", "_exp._udp")
		upd.TXT = map[string]string{"gen": "2"}
		sm.UpdatePublish(upd)
		r.s.Sleep(5 * time.Second)
		got := su.Discovered("_exp._udp")
		if len(got) != 1 || got[0].TXT["gen"] != "2" {
			t.Errorf("stale burst announcement won: %+v", got)
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
}

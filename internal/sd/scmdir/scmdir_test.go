package scmdir

import (
	"testing"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
)

type rig struct {
	s      *sched.Scheduler
	nw     *netem.Network
	ids    []netem.NodeID
	agents []*Agent
	events map[netem.NodeID][]string
}

func newRig(t *testing.T, n int, cfg Config, link netem.LinkParams) *rig {
	t.Helper()
	s := sched.NewVirtual()
	nw := netem.New(s, 11)
	ids := netem.BuildFull(nw, "n", n, netem.NodeParams{}, link)
	r := &rig{s: s, nw: nw, ids: ids, events: map[netem.NodeID][]string{}}
	for i, id := range ids {
		id := id
		sink := func(typ string, p map[string]string) {
			r.events[id] = append(r.events[id], typ)
		}
		a := New(s, nw.Node(id), cfg, sink, int64(200+i))
		nw.Node(id).SetHandler(func(p *netem.Packet) {
			if p.Proto == Proto {
				a.HandlePacket(p)
			}
		})
		r.agents = append(r.agents, a)
	}
	return r
}

func (r *rig) has(id netem.NodeID, typ string) bool {
	for _, e := range r.events[id] {
		if e == typ {
			return true
		}
	}
	return false
}

func (r *rig) count(id netem.NodeID, typ string) int {
	n := 0
	for _, e := range r.events[id] {
		if e == typ {
			n++
		}
	}
	return n
}

func inst(name string) sd.Instance {
	return sd.Instance{Name: name, Type: "_exp._udp", Address: "10.0.0.9", Port: 99}
}

func TestThreePartyDiscovery(t *testing.T) {
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[0], sd.EvSCMStarted) {
		t.Fatal("no scm_started")
	}
	if !r.has(r.ids[1], sd.EvSCMFound) || !r.has(r.ids[2], sd.EvSCMFound) {
		t.Fatal("SM/SU did not find the SCM")
	}
	if !r.has(r.ids[0], sd.EvSCMRegAdd) {
		t.Fatal("no scm_registration_add on SCM")
	}
	if !r.has(r.ids[2], sd.EvServiceAdd) {
		t.Fatal("SU did not discover the service")
	}
	if sm.SCM() != r.ids[0] || su.SCM() != r.ids[0] {
		t.Fatalf("SCM() = %s / %s", sm.SCM(), su.SCM())
	}
}

func TestPublishBeforeSCMFoundIsPended(t *testing.T) {
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		// SM and SU start before any SCM exists.
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(10 * time.Second)
		scm.Init(sd.RoleSCM) // SCM appears late
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[2], sd.EvServiceAdd) {
		t.Fatal("pended search did not complete after SCM appeared")
	}
	if !r.has(r.ids[0], sd.EvSCMRegAdd) {
		t.Fatal("pended registration did not reach SCM")
	}
}

func TestNotificationPush(t *testing.T) {
	// SU subscribes first; a service registered later must be pushed
	// without SU polling.
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	var addAt, regAt time.Time
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		r.s.Sleep(5 * time.Second)
		sm.Init(sd.RoleSM)
		r.s.Sleep(2 * time.Second)
		regAt = r.s.Now()
		sm.StartPublish(inst("svc-late"))
		for su.Cache().Len() == 0 {
			r.s.Sleep(time.Millisecond)
		}
		addAt = r.s.Now()
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if lat := addAt.Sub(regAt); lat <= 0 || lat > time.Second {
		t.Fatalf("notification latency = %v, want push within 1s", lat)
	}
}

func TestDeregistrationNotifiesDel(t *testing.T) {
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(5 * time.Second)
		sm.StopPublish("svc1")
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[0], sd.EvSCMRegDel) {
		t.Fatal("no scm_registration_del")
	}
	if !r.has(r.ids[2], sd.EvServiceDel) {
		t.Fatal("SU not notified of removal")
	}
	if su.Cache().Len() != 0 {
		t.Fatal("SU cache still holds removed service")
	}
}

func TestRegistrationExpiryWithoutRenewal(t *testing.T) {
	cfg := Config{RegTTL: 10 * time.Second}
	r := newRig(t, 3, cfg, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(3 * time.Second)
		// SM dies silently: interface down stops renewals.
		r.nw.Node(r.ids[1]).SetInterface(false)
	})
	if err := r.s.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[0], sd.EvSCMRegDel) {
		t.Fatal("registration did not expire on SCM")
	}
	if !r.has(r.ids[2], sd.EvServiceDel) {
		t.Fatal("SU not notified of expiry")
	}
}

func TestRenewalKeepsRegistrationAlive(t *testing.T) {
	cfg := Config{RegTTL: 10 * time.Second}
	r := newRig(t, 3, cfg, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Renewals every 5s keep the registration alive for the whole run.
	if r.has(r.ids[2], sd.EvServiceDel) {
		t.Fatal("service expired despite renewals")
	}
	if scm.Registry().Len() != 1 {
		t.Fatalf("registry len = %d", scm.Registry().Len())
	}
}

func TestSCMFailureTriggersReprobe(t *testing.T) {
	cfg := Config{RegTTL: 10 * time.Second, AckTimeout: 2 * time.Second}
	r := newRig(t, 4, cfg, netem.LinkParams{Delay: time.Millisecond})
	scm1, scm2, sm, su := r.agents[0], r.agents[1], r.agents[2], r.agents[3]
	r.s.Go("t", func() {
		scm1.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(8 * time.Second)
		// First SCM dies; a second one takes over.
		r.nw.Node(r.ids[0]).SetInterface(false)
		scm2.Init(sd.RoleSCM)
	})
	if err := r.s.RunFor(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if sm.SCM() != r.ids[1] {
		t.Fatalf("SM did not fail over: SCM() = %s", sm.SCM())
	}
	if !r.has(r.ids[1], sd.EvSCMRegAdd) {
		t.Fatal("re-registration on second SCM missing")
	}
	if got := r.count(r.ids[2], sd.EvSCMFound); got < 2 {
		t.Fatalf("SM scm_found count = %d, want ≥ 2 (failover)", got)
	}
}

func TestDirectedQueryReturnsExisting(t *testing.T) {
	r := newRig(t, 4, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm1, sm2, su := r.agents[0], r.agents[1], r.agents[2], r.agents[3]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm1.Init(sd.RoleSM)
		sm2.Init(sd.RoleSM)
		sm1.StartPublish(inst("svc-a"))
		sm2.StartPublish(inst("svc-b"))
		r.s.Sleep(5 * time.Second)
		// SU arrives late; the directed query must return both at once.
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
	})
	if err := r.s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(su.Discovered("_exp._udp")); got != 2 {
		t.Fatalf("discovered %d, want 2", got)
	}
	if got := r.count(r.ids[3], sd.EvServiceAdd); got != 2 {
		t.Fatalf("sd_service_add count = %d", got)
	}
}

func TestUpdatePropagatesViaSCM(t *testing.T) {
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(5 * time.Second)
		upd := inst("svc1")
		upd.TXT = map[string]string{"v": "2"}
		sm.UpdatePublish(upd)
		r.s.Sleep(2 * time.Second)
		got := su.Discovered("_exp._udp")
		if len(got) != 1 || got[0].TXT["v"] != "2" {
			t.Errorf("update not propagated: %+v", got)
		}
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[0], sd.EvSCMRegUpd) {
		t.Fatal("no scm_registration_upd")
	}
}

func TestStopSearchUnsubscribes(t *testing.T) {
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		su.Init(sd.RoleSU)
		su.StartSearch("_exp._udp")
		r.s.Sleep(3 * time.Second)
		su.StopSearch("_exp._udp")
		r.s.Sleep(time.Second)
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1"))
	})
	if err := r.s.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.has(r.ids[2], sd.EvServiceAdd) {
		t.Fatal("SU received notification after unsubscribe")
	}
	if !r.has(r.ids[2], sd.EvStopSearch) {
		t.Fatal("no sd_stop_search")
	}
}

func TestExitDeregisters(t *testing.T) {
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		su.Init(sd.RoleSU)
		sm.StartPublish(inst("svc1"))
		su.StartSearch("_exp._udp")
		r.s.Sleep(5 * time.Second)
		sm.Exit()
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.has(r.ids[1], sd.EvExitDone) {
		t.Fatal("no sd_exit_done")
	}
	if !r.has(r.ids[0], sd.EvSCMRegDel) {
		t.Fatal("Exit did not deregister on SCM")
	}
	if scm.Registry().Len() != 0 {
		t.Fatalf("registry len = %d after SM exit", scm.Registry().Len())
	}
}

func TestColdStartPenaltyVsWarmDirected(t *testing.T) {
	// Three-party cold start pays SCM discovery; once the SCM is known,
	// a directed query answers in about one round trip. This is the
	// architecture trade-off Exp. D measures.
	r := newRig(t, 3, Config{}, netem.LinkParams{Delay: 2 * time.Millisecond})
	scm, sm, su := r.agents[0], r.agents[1], r.agents[2]
	var cold, warm time.Duration
	r.s.Go("t", func() {
		scm.Init(sd.RoleSCM)
		sm.Init(sd.RoleSM)
		sm.StartPublish(inst("svc1"))
		r.s.Sleep(2 * time.Second)

		start := r.s.Now()
		su.Init(sd.RoleSU) // includes SCM discovery
		su.StartSearch("_exp._udp")
		for su.Cache().Len() == 0 {
			r.s.Sleep(time.Millisecond)
		}
		cold = r.s.Now().Sub(start)

		su.StopSearch("_exp._udp")
		su.Cache().Flush()
		start = r.s.Now()
		su.StartSearch("_exp._udp") // SCM already known
		for su.Cache().Len() == 0 {
			r.s.Sleep(time.Millisecond)
		}
		warm = r.s.Now().Sub(start)
	})
	if err := r.s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("warm directed search (%v) should beat cold start (%v)", warm, cold)
	}
	if warm > 50*time.Millisecond {
		t.Fatalf("warm directed search took %v", warm)
	}
}

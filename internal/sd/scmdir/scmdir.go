// Package scmdir implements a three-party service discovery protocol with
// a service cache manager (SCM), in the style of SLP directory agents or
// Jini lookup services (§III-B).
//
// Protocol outline:
//
//   - An SCM announces itself by answering multicast probes with a unicast
//     "scm_here". SUs and SMs discover it at runtime — the paper notes that
//     a centralized architecture "does not imply a preceding administrative
//     configuration" because the SCM itself is discovered as part of SD.
//   - SMs register their instances with the SCM (registration TTL, renewed
//     at half life). Registrations expire if not renewed; an SM that loses
//     its SCM re-enters discovery and re-registers.
//   - SUs send directed unicast queries to the SCM and subscribe for
//     notifications; the SCM pushes notify_add/notify_del on registration
//     changes, which gives SUs the monitoring half of
//     "Service-Description Discovery and Monitoring" (§V).
//
// The SCM emits the scm_* events of §V: scm_started,
// scm_registration_add/del/upd; SUs and SMs emit scm_found.
package scmdir

import (
	"encoding/json"
	"math/rand"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
)

// Proto is the netem protocol label of scmdir packets.
const Proto = "sd"

// Config tunes protocol timing; the zero value is completed with defaults.
type Config struct {
	// Group is the SCM discovery multicast group; default "scmdisc".
	Group string
	// ProbeInterval is the first SCM probe backoff step; default 500 ms.
	ProbeInterval time.Duration
	// ProbeBackoff is the probe backoff multiplier; default 2.
	ProbeBackoff float64
	// ProbeMax caps the probe backoff; default 30 s.
	ProbeMax time.Duration
	// RegTTL is the registration lifetime on the SCM; renewals happen at
	// half life. Default 60 s.
	RegTTL time.Duration
	// ResponseDelayMin/Max bound the SCM's random response delay for
	// probe answers; default 5–25 ms.
	ResponseDelayMin time.Duration
	ResponseDelayMax time.Duration
	// AckTimeout bounds how long an SM waits for a registration ack
	// before considering the SCM lost; default 5 s.
	AckTimeout time.Duration
	// RequeryInterval is the first directed-requery backoff step; the
	// SU repeats subscribe+query with exponential backoff while a search
	// is active, so lost unicast queries or notifications are recovered.
	// Default 1 s.
	RequeryInterval time.Duration
	// RequeryMax caps the requery backoff; default 30 s.
	RequeryMax time.Duration
}

func (c *Config) fill() {
	if c.Group == "" {
		c.Group = "scmdisc"
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeBackoff == 0 {
		c.ProbeBackoff = 2
	}
	if c.ProbeMax == 0 {
		c.ProbeMax = 30 * time.Second
	}
	if c.RegTTL == 0 {
		c.RegTTL = 60 * time.Second
	}
	if c.ResponseDelayMin == 0 {
		c.ResponseDelayMin = 5 * time.Millisecond
	}
	if c.ResponseDelayMax == 0 {
		c.ResponseDelayMax = 25 * time.Millisecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.RequeryInterval == 0 {
		c.RequeryInterval = time.Second
	}
	if c.RequeryMax == 0 {
		c.RequeryMax = 30 * time.Second
	}
}

type record struct {
	Inst   sd.Instance `json:"inst"`
	TTLSec float64     `json:"ttl_sec"`
}

type message struct {
	Kind    string           `json:"kind"`
	From    netem.NodeID     `json:"from"`
	SCM     netem.NodeID     `json:"scm,omitempty"`
	QID     uint32           `json:"qid,omitempty"`
	Types   []sd.ServiceType `json:"types,omitempty"`
	Records []record         `json:"records,omitempty"`
	Name    string           `json:"name,omitempty"`
}

// Agent is a three-party SD agent. Depending on the role passed to Init it
// acts as SCM, SM or SU.
type Agent struct {
	s    *sched.Scheduler
	node *netem.Node
	cfg  Config
	emit sd.EventSink
	rng  *rand.Rand

	running bool
	epoch   int
	role    sd.Role

	// SCM state.
	registry *sd.Cache
	subs     map[sd.ServiceType]map[netem.NodeID]bool

	// SU/SM state.
	scm       netem.NodeID // discovered SCM; "" while unknown
	probing   bool
	published map[string]sd.Instance
	searches  map[sd.ServiceType]bool
	cache     *sd.Cache
	qidSeq    uint32
	lastAck   time.Time
}

// New creates an agent on a node.
func New(s *sched.Scheduler, node *netem.Node, cfg Config, emit sd.EventSink, seed int64) *Agent {
	cfg.fill()
	if emit == nil {
		emit = func(string, map[string]string) {}
	}
	a := &Agent{
		s: s, node: node, cfg: cfg, emit: emit,
		rng:       rand.New(rand.NewSource(seed)),
		subs:      make(map[sd.ServiceType]map[netem.NodeID]bool),
		published: make(map[string]sd.Instance),
		searches:  make(map[sd.ServiceType]bool),
	}
	a.cache = sd.NewCache(s)
	a.cache.OnAdd = func(inst sd.Instance) {
		if a.running && a.searches[inst.Type] {
			a.emit(sd.EvServiceAdd, sd.InstParams(inst))
		}
	}
	a.cache.OnDel = func(inst sd.Instance) {
		if a.running && a.searches[inst.Type] {
			a.emit(sd.EvServiceDel, sd.InstParams(inst))
		}
	}
	a.cache.OnUpd = func(inst sd.Instance) {
		if a.running && a.searches[inst.Type] {
			a.emit(sd.EvServiceUpd, sd.InstParams(inst))
		}
	}
	return a
}

// Cache exposes the agent's local service cache.
func (a *Agent) Cache() *sd.Cache { return a.cache }

// Registry exposes the SCM's registration store (SCM role only).
func (a *Agent) Registry() *sd.Cache { return a.registry }

// SCM returns the currently known SCM node, or "".
func (a *Agent) SCM() netem.NodeID { return a.scm }

// Init implements sd.Agent.
func (a *Agent) Init(role sd.Role) error {
	a.role = role
	a.running = true
	if role == sd.RoleSCM {
		a.registry = sd.NewCache(a.s)
		a.registry.OnDel = func(inst sd.Instance) {
			// Expired or revoked registration.
			a.emit(sd.EvSCMRegDel, sd.InstParams(inst))
			a.notify("notify_del", inst)
		}
		a.node.Net().Join(a.cfg.Group, a.node.ID())
		a.emit(sd.EvSCMStarted, nil)
		a.emit(sd.EvInitDone, map[string]string{"role": string(role)})
		return nil
	}
	// SU/SM: discover the SCM at runtime; sd_init_done follows scm_found.
	a.startProbing()
	return nil
}

// Exit implements sd.Agent.
func (a *Agent) Exit() {
	if !a.running {
		return
	}
	if a.role != sd.RoleSCM && a.scm != "" {
		for name := range a.published {
			a.sendToSCM(message{Kind: "deregister", Name: name})
		}
		for t := range a.searches {
			a.sendToSCM(message{Kind: "unsubscribe", Types: []sd.ServiceType{t}})
		}
	}
	if a.role == sd.RoleSCM {
		a.node.Net().Leave(a.cfg.Group, a.node.ID())
		a.registry.Flush()
	}
	a.published = make(map[string]sd.Instance)
	a.searches = make(map[sd.ServiceType]bool)
	a.cache.Flush()
	a.scm = ""
	a.probing = false
	a.running = false
	a.epoch++
	a.emit(sd.EvExitDone, nil)
}

// StartSearch implements sd.Agent.
func (a *Agent) StartSearch(t sd.ServiceType) {
	if !a.running || a.searches[t] {
		return
	}
	a.searches[t] = true
	a.emit(sd.EvStartSearch, map[string]string{"type": string(t)})
	for _, inst := range a.cache.Lookup(t) {
		a.emit(sd.EvServiceAdd, sd.InstParams(inst))
	}
	if a.scm != "" {
		a.directedSearch(t)
	}
}

// StopSearch implements sd.Agent.
func (a *Agent) StopSearch(t sd.ServiceType) {
	if !a.searches[t] {
		return
	}
	delete(a.searches, t)
	if a.scm != "" {
		// Removal of notification requests previously given to SCMs (§V).
		a.sendToSCM(message{Kind: "unsubscribe", Types: []sd.ServiceType{t}})
	}
	a.emit(sd.EvStopSearch, map[string]string{"type": string(t)})
}

// StartPublish implements sd.Agent.
func (a *Agent) StartPublish(inst sd.Instance) {
	if !a.running {
		return
	}
	inst.Node = a.node.ID()
	a.published[inst.Name] = inst
	a.emit(sd.EvStartPublish, sd.InstParams(inst))
	if a.scm != "" {
		a.register(inst)
	}
}

// StopPublish implements sd.Agent.
func (a *Agent) StopPublish(name string) {
	inst, ok := a.published[name]
	if !ok {
		return
	}
	delete(a.published, name)
	if a.scm != "" {
		a.sendToSCM(message{Kind: "deregister", Name: name})
	}
	a.emit(sd.EvStopPublish, sd.InstParams(inst))
}

// UpdatePublish implements sd.Agent.
func (a *Agent) UpdatePublish(inst sd.Instance) {
	old, ok := a.published[inst.Name]
	if !ok {
		return
	}
	a.emit(sd.EvServiceUpd, sd.InstParams(old))
	inst.Node = a.node.ID()
	inst.Version = old.Version + 1
	a.published[inst.Name] = inst
	if a.scm != "" {
		a.register(inst)
	}
}

// Discovered implements sd.Agent.
func (a *Agent) Discovered(t sd.ServiceType) []sd.Instance {
	return a.cache.Lookup(t)
}

// --- SCM discovery (SU/SM side) ---

func (a *Agent) startProbing() {
	if a.probing {
		return
	}
	a.probing = true
	a.probe(a.cfg.ProbeInterval)
}

func (a *Agent) probe(interval time.Duration) {
	if !a.running || !a.probing || a.scm != "" {
		return
	}
	a.send(netem.Multicast(a.cfg.Group), message{Kind: "scm_probe"})
	next := time.Duration(float64(interval) * a.cfg.ProbeBackoff)
	if next > a.cfg.ProbeMax {
		next = a.cfg.ProbeMax
	}
	epoch := a.epoch
	a.s.ScheduleFunc(interval, "scm-probe", func() {
		if a.epoch != epoch {
			return
		}
		a.probe(next)
	})
}

// scmFound finalizes SCM discovery: pending publications register and
// pending searches subscribe.
func (a *Agent) scmFound(scm netem.NodeID) {
	if a.scm == scm || !a.running {
		return
	}
	first := a.scm == ""
	a.scm = scm
	a.probing = false
	a.lastAck = a.s.Now()
	a.emit(sd.EvSCMFound, map[string]string{"scm": string(scm)})
	if first {
		a.emit(sd.EvInitDone, map[string]string{"role": string(a.role)})
	}
	for _, inst := range sortedInstances(a.published) {
		a.register(inst)
	}
	for _, t := range sortedTypes(a.searches) {
		a.directedSearch(t)
	}
}

// scmLost re-enters SCM discovery after missing acks.
func (a *Agent) scmLost() {
	if a.scm == "" {
		return
	}
	a.scm = ""
	a.startProbing()
}

func (a *Agent) register(inst sd.Instance) {
	a.sendToSCM(message{Kind: "register",
		Records: []record{{Inst: inst, TTLSec: a.cfg.RegTTL.Seconds()}}})
	a.scheduleRenew(inst.Name)
	a.scheduleAckCheck()
}

func (a *Agent) scheduleRenew(name string) {
	epoch := a.epoch
	a.s.ScheduleFunc(a.cfg.RegTTL/2, "scm-renew", func() {
		if a.epoch != epoch || !a.running {
			return
		}
		inst, still := a.published[name]
		if !still {
			return
		}
		if a.scm == "" {
			return // re-registration happens on scmFound
		}
		a.sendToSCM(message{Kind: "renew",
			Records: []record{{Inst: inst, TTLSec: a.cfg.RegTTL.Seconds()}}})
		a.scheduleRenew(name)
		a.scheduleAckCheck()
	})
}

// scheduleAckCheck declares the SCM lost if no ack arrives in time.
func (a *Agent) scheduleAckCheck() {
	epoch := a.epoch
	sentAt := a.s.Now()
	a.s.ScheduleFunc(a.cfg.AckTimeout, "scm-ack-check", func() {
		if a.epoch != epoch || !a.running {
			return
		}
		if a.lastAck.Before(sentAt) {
			a.scmLost()
		}
	})
}

// directedSearch sends subscribe+query to the SCM and keeps re-sending
// with exponential backoff while the search stays active, recovering lost
// unicast queries and notifications.
func (a *Agent) directedSearch(t sd.ServiceType) {
	a.directedSearchStep(t, a.cfg.RequeryInterval)
}

func (a *Agent) directedSearchStep(t sd.ServiceType, interval time.Duration) {
	if !a.running || !a.searches[t] || a.scm == "" {
		return
	}
	a.qidSeq++
	a.sendToSCM(message{Kind: "subscribe", Types: []sd.ServiceType{t}})
	a.sendToSCM(message{Kind: "query", QID: a.qidSeq, Types: []sd.ServiceType{t}})
	next := time.Duration(float64(interval) * 2)
	if next > a.cfg.RequeryMax {
		next = a.cfg.RequeryMax
	}
	epoch := a.epoch
	a.s.ScheduleFunc(interval, "scm-requery", func() {
		if a.epoch != epoch {
			return
		}
		a.directedSearchStep(t, next)
	})
}

func (a *Agent) sendToSCM(m message) {
	if a.scm == "" {
		return
	}
	a.send(netem.Unicast(a.scm), m)
}

func (a *Agent) send(dst netem.Dest, m message) {
	m.From = a.node.ID()
	payload, err := json.Marshal(m)
	if err != nil {
		panic("scmdir: marshal: " + err.Error())
	}
	a.node.Send(dst, Proto, payload)
}

// --- packet handling ---

// HandlePacket processes one received SD packet.
func (a *Agent) HandlePacket(p *netem.Packet) {
	if !a.running {
		return
	}
	var m message
	if err := json.Unmarshal(p.Payload, &m); err != nil {
		return
	}
	if m.From == a.node.ID() {
		return
	}
	if a.role == sd.RoleSCM {
		a.handleAsSCM(m)
		return
	}
	a.handleAsClient(m)
}

func (a *Agent) handleAsSCM(m message) {
	switch m.Kind {
	case "scm_probe":
		jitter := a.cfg.ResponseDelayMax - a.cfg.ResponseDelayMin
		delay := a.cfg.ResponseDelayMin
		if jitter > 0 {
			delay += time.Duration(a.rng.Int63n(int64(jitter)))
		}
		from := m.From
		epoch := a.epoch
		a.s.ScheduleFunc(delay, "scm-here", func() {
			if a.epoch != epoch || !a.running {
				return
			}
			a.send(netem.Unicast(from), message{Kind: "scm_here", SCM: a.node.ID()})
		})
	case "register", "renew":
		for _, r := range m.Records {
			inst := r.Inst
			_, known := a.registry.Get(inst.Name)
			prev, _ := a.registry.Get(inst.Name)
			a.registry.Upsert(inst, time.Duration(r.TTLSec*float64(time.Second)))
			if m.Kind == "register" {
				if !known {
					a.emit(sd.EvSCMRegAdd, sd.InstParams(inst))
					a.notify("notify_add", inst)
				} else if !prev.Equal(inst) {
					a.emit(sd.EvSCMRegUpd, sd.InstParams(inst))
					a.notify("notify_add", inst)
				}
			} else {
				// Renewals refresh subscriber caches so their TTLs
				// track the registration's lifetime.
				a.notify("notify_add", inst)
			}
		}
		a.send(netem.Unicast(m.From), message{Kind: "reg_ack"})
	case "deregister":
		// Remove fires registry.OnDel, which emits scm_registration_del
		// and notifies subscribers.
		a.registry.Remove(m.Name)
	case "query":
		var recs []record
		for _, t := range m.Types {
			for _, inst := range a.registry.Lookup(t) {
				recs = append(recs, record{Inst: inst, TTLSec: a.cfg.RegTTL.Seconds()})
			}
		}
		a.send(netem.Unicast(m.From), message{Kind: "query_resp", QID: m.QID, Records: recs})
	case "subscribe":
		for _, t := range m.Types {
			if a.subs[t] == nil {
				a.subs[t] = make(map[netem.NodeID]bool)
			}
			a.subs[t][m.From] = true
		}
	case "unsubscribe":
		for _, t := range m.Types {
			delete(a.subs[t], m.From)
		}
	}
}

// notify pushes a registration change to all subscribers of the type.
func (a *Agent) notify(kind string, inst sd.Instance) {
	subs := a.subs[inst.Type]
	for _, n := range sortedNodes(subs) {
		ttl := a.cfg.RegTTL.Seconds()
		if kind == "notify_del" {
			ttl = 0
		}
		a.send(netem.Unicast(n), message{Kind: kind,
			Records: []record{{Inst: inst, TTLSec: ttl}}})
	}
}

func (a *Agent) handleAsClient(m message) {
	switch m.Kind {
	case "scm_here":
		a.scmFound(m.SCM)
	case "reg_ack":
		a.lastAck = a.s.Now()
	case "query_resp", "notify_add":
		for _, r := range m.Records {
			a.cache.Upsert(r.Inst, time.Duration(r.TTLSec*float64(time.Second)))
		}
	case "notify_del":
		for _, r := range m.Records {
			a.cache.Remove(r.Inst.Name)
		}
	}
}

func sortedInstances(m map[string]sd.Instance) []sd.Instance {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]sd.Instance, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

func sortedTypes(m map[sd.ServiceType]bool) []sd.ServiceType {
	names := make([]string, 0, len(m))
	for t := range m {
		names = append(names, string(t))
	}
	sortStrings(names)
	out := make([]sd.ServiceType, len(names))
	for i, n := range names {
		out[i] = sd.ServiceType(n)
	}
	return out
}

func sortedNodes(m map[netem.NodeID]bool) []netem.NodeID {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, string(n))
	}
	sortStrings(names)
	out := make([]netem.NodeID, len(names))
	for i, n := range names {
		out[i] = netem.NodeID(n)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

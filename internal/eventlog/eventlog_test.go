package eventlog

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"excovery/internal/sched"
	"excovery/internal/vclock"
)

func newBusAndRecorder(s *sched.Scheduler, node string) (*Bus, *Recorder) {
	b := NewBus(s)
	r := NewRecorder(node, vclock.Perfect{S: s}, func(ev Event) { b.Publish(ev) })
	return b, r
}

func TestRecorderEmitStampsLocalTime(t *testing.T) {
	s := sched.NewVirtual()
	clock := vclock.NewSkewed(s, 100*time.Millisecond, 0)
	r := NewRecorder("n1", clock, nil)
	s.Go("t", func() {
		ev := r.Emit("started", nil)
		if got := ev.Time.Sub(s.Now()); got != 100*time.Millisecond {
			t.Errorf("event time offset = %v, want 100ms (local clock)", got)
		}
		if ev.Node != "n1" || ev.Type != "started" || ev.Run != -1 {
			t.Errorf("event fields: %+v", ev)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderRunScoping(t *testing.T) {
	s := sched.NewVirtual()
	r := NewRecorder("n1", vclock.Perfect{S: s}, nil)
	s.Go("t", func() {
		r.Emit("experiment_init", nil)
		r.SetRun(0)
		r.Emit("a", nil)
		r.SetRun(1)
		r.Emit("b", nil)
		r.Emit("c", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.Events()) != 4 {
		t.Fatalf("total events = %d", len(r.Events()))
	}
	if got := len(r.RunEvents(1)); got != 2 {
		t.Fatalf("run 1 events = %d, want 2", got)
	}
	if got := len(r.RunEvents(-1)); got != 1 {
		t.Fatalf("experiment events = %d, want 1", got)
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestBusPublishAssignsDenseSeq(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "n1")
	s.Go("t", func() {
		for i := 0; i < 5; i++ {
			r.Emit("e", nil)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ev := range b.Events() {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
	}
}

func TestWaitForBlocksUntilMatch(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "n1")
	var gotAt time.Time
	start := s.Now()
	s.Go("waiter", func() {
		ev, ok := b.WaitFor(Match{Type: "go"}, 0, 0)
		if !ok || ev.Type != "go" {
			t.Errorf("WaitFor = %+v, %v", ev, ok)
		}
		gotAt = s.Now()
	})
	s.Go("emitter", func() {
		s.Sleep(time.Second)
		r.Emit("noise", nil)
		s.Sleep(time.Second)
		r.Emit("go", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := gotAt.Sub(start); got != 2*time.Second {
		t.Fatalf("matched after %v, want 2s", got)
	}
}

func TestWaitForSeesPastEvents(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "n1")
	s.Go("t", func() {
		r.Emit("early", nil)
		ev, ok := b.WaitFor(Match{Type: "early"}, 0, time.Second)
		if !ok {
			t.Error("WaitFor missed a past event")
		}
		_ = ev
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMarkerSkipsPastEvents(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "n1")
	s.Go("t", func() {
		r.Emit("x", nil)
		marker := b.Marker() // wait_marker semantics
		if _, ok := b.WaitFor(Match{Type: "x"}, marker, time.Second); ok {
			t.Error("WaitFor matched an event before the marker")
		}
		s.Go("later", func() { r.Emit("x", nil) })
		if _, ok := b.WaitFor(Match{Type: "x"}, marker, time.Second); !ok {
			t.Error("WaitFor missed event after marker")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForTimeout(t *testing.T) {
	s := sched.NewVirtual()
	b, _ := newBusAndRecorder(s, "n1")
	start := s.Now()
	s.Go("t", func() {
		_, ok := b.WaitFor(Match{Type: "never"}, 0, 30*time.Second)
		if ok {
			t.Error("WaitFor should have timed out")
		}
		if got := s.Now().Sub(start); got != 30*time.Second {
			t.Errorf("timed out after %v, want 30s (the paper's SD deadline)", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchSemantics(t *testing.T) {
	ev := Event{
		Node: "A", Type: "sd_service_add",
		Params: map[string]string{"service": "B", "extra": "1"},
	}
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"empty matches all", Match{}, true},
		{"type match", Match{Type: "sd_service_add"}, true},
		{"type mismatch", Match{Type: "sd_service_del"}, false},
		{"node in set", Match{Nodes: []string{"C", "A"}}, true},
		{"node not in set", Match{Nodes: []string{"C"}}, false},
		{"param exact", Match{Params: map[string]string{"service": "B"}}, true},
		{"param wrong value", Match{Params: map[string]string{"service": "X"}}, false},
		{"param any value (presence)", Match{Params: map[string]string{"extra": ""}}, true},
		{"param missing", Match{Params: map[string]string{"nope": ""}}, false},
		{"param any-of hit", Match{ParamKey: "service", ParamAnyOf: []string{"A", "B"}}, true},
		{"param any-of miss", Match{ParamKey: "service", ParamAnyOf: []string{"C"}}, false},
		{"combined", Match{Type: "sd_service_add", Nodes: []string{"A"}, Params: map[string]string{"service": "B"}}, true},
	}
	for _, c := range cases {
		if got := c.m.Matches(ev); got != c.want {
			t.Errorf("%s: Matches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWaitForDistinctAllFound(t *testing.T) {
	// Fig. 10: SU waits for sd_service_add covering all SM instances.
	s := sched.NewVirtual()
	b := NewBus(s)
	rs := make([]*Recorder, 3)
	for i, n := range []string{"sm0", "sm1", "sm2"} {
		rs[i] = NewRecorder(n, vclock.Perfect{S: s}, func(ev Event) { b.Publish(ev) })
	}
	su := NewRecorder("su", vclock.Perfect{S: s}, func(ev Event) { b.Publish(ev) })
	var okResult bool
	var n int
	s.Go("su", func() {
		evs, ok := b.WaitForDistinct(
			Match{Type: "sd_service_add", Nodes: []string{"su"}},
			"service", []string{"sm0", "sm1", "sm2"}, 0, 30*time.Second)
		okResult = ok
		n = len(evs)
	})
	s.Go("discoveries", func() {
		for i, r := range rs {
			s.Sleep(time.Duration(i+1) * time.Second)
			// The SU node emits the discovery event naming the found SM.
			su.Emit("sd_service_add", map[string]string{"service": r.Node()})
			// Duplicate discovery of the same SM must not count twice.
			su.Emit("sd_service_add", map[string]string{"service": r.Node()})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !okResult || n != 3 {
		t.Fatalf("WaitForDistinct = %d events, ok=%v", n, okResult)
	}
}

func TestWaitForDistinctTimeoutPartial(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "su")
	s.Go("su", func() {
		evs, ok := b.WaitForDistinct(Match{Type: "sd_service_add"},
			"service", []string{"sm0", "sm1"}, 0, 10*time.Second)
		if ok {
			t.Error("expected timeout")
		}
		if len(evs) != 1 {
			t.Errorf("partial = %d events, want 1", len(evs))
		}
	})
	s.Go("one", func() {
		s.Sleep(time.Second)
		r.Emit("sd_service_add", map[string]string{"service": "sm0"})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusReset(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "n")
	s.Go("t", func() {
		r.Emit("a", nil)
		b.Reset()
		if b.Len() != 0 || b.Marker() != 0 {
			t.Error("Reset did not clear bus")
		}
		r.Emit("b", nil)
		if b.Events()[0].Seq != 1 {
			t.Error("seq did not restart after Reset")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Run: 3, Node: "A", Type: "sd_init_done",
		Time:   time.Date(2014, 5, 19, 10, 0, 0, 0, time.UTC),
		Params: map[string]string{"b": "2", "a": "1"}}
	got := ev.String()
	for _, want := range []string{"[run 3]", "sd_init_done@A", "a=1", "b=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	// Params print in sorted key order for stable logs.
	if strings.Index(got, "a=1") > strings.Index(got, "b=2") {
		t.Errorf("params not sorted: %q", got)
	}
}

// Property: for any sequence of published events, WaitFor with from=marker
// taken after k events never returns one of the first k events.
func TestMarkerExclusionProperty(t *testing.T) {
	f := func(types []uint8, k uint8) bool {
		if len(types) == 0 {
			return true
		}
		s := sched.NewVirtual()
		b := NewBus(s)
		r := NewRecorder("n", vclock.Perfect{S: s}, func(ev Event) { b.Publish(ev) })
		cut := int(k) % (len(types) + 1)
		holds := true
		s.Go("t", func() {
			for _, ty := range types[:cut] {
				r.Emit(typeName(ty), nil)
			}
			marker := b.Marker()
			for _, ty := range types[cut:] {
				r.Emit(typeName(ty), nil)
			}
			for _, ty := range types[:cut] {
				ev, ok := b.WaitFor(Match{Type: typeName(ty)}, marker, 1)
				if ok && ev.Seq <= uint64(cut) {
					holds = false
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func typeName(b uint8) string {
	return string(rune('a' + b%4))
}

func TestCancelWaitersAbortsPendingWaits(t *testing.T) {
	s := sched.NewVirtual()
	b, r := newBusAndRecorder(s, "n1")
	gaveUp := 0
	s.Go("w1", func() {
		if _, ok := b.WaitFor(Match{Type: "never"}, 0, 0); !ok {
			gaveUp++
		}
	})
	s.Go("w2", func() {
		if _, ok := b.WaitForDistinct(Match{Type: "never"}, "node",
			[]string{"x"}, 0, 0); !ok {
			gaveUp++
		}
	})
	s.Go("canceler", func() {
		s.Sleep(time.Second)
		b.CancelWaiters()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("cancel did not unblock waiters: %v", err)
	}
	if gaveUp != 2 {
		t.Fatalf("gaveUp = %d", gaveUp)
	}
	// New waits after cancellation behave normally.
	s2 := sched.NewVirtual()
	b2, r2 := newBusAndRecorder(s2, "n1")
	b2.CancelWaiters()
	s2.Go("w", func() {
		if _, ok := b2.WaitFor(Match{Type: "go"}, 0, time.Minute); !ok {
			t.Error("post-cancel wait failed")
		}
	})
	s2.Go("e", func() { s2.Sleep(time.Second); r2.Emit("go", nil) })
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	_ = r
}

package eventlog

import (
	"io"
	"sync"
	"testing"
	"time"

	"excovery/internal/obs"
	"excovery/internal/sched"
)

// TestBusConcurrentPublishersWithMetricsReaders drives the bus from several
// foreign goroutines (each injecting publishes into scheduler context, the
// way node hosts deliver reported events) while an unsynchronized reader
// goroutine continuously samples the instrumentation — exactly what the obs
// HTTP listener does to a live master. Run under -race, it proves the
// atomic counters make that concurrent read safe.
func TestBusConcurrentPublishersWithMetricsReaders(t *testing.T) {
	s := sched.New(sched.RealTime, time.Unix(0, 0))
	s.SetSpeed(0.0001)
	s.SetKeepAlive(true)
	bus := NewBus(s)
	reg := obs.NewRegistry()
	bus.Instrument(reg)

	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()

	const publishers = 4
	const perPublisher = 50

	// Reader: hammer the counters and the full exposition concurrently
	// with the publishes, like a scraped /metrics endpoint.
	stopRead := make(chan struct{})
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			reg.CounterTotal("excovery_eventbus_published_total")
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := string(rune('A' + p))
			for i := 0; i < perPublisher; i++ {
				s.InjectWait("publish", func() {
					bus.Publish(Event{Run: 0, Node: node, Type: "tick"})
				})
			}
		}()
	}
	wg.Wait()
	close(stopRead)
	<-readDone

	const want = publishers * perPublisher
	if got := reg.CounterTotal("excovery_eventbus_published_total"); got != want {
		t.Fatalf("published counter = %d, want %d", got, want)
	}
	s.InjectWait("check", func() {
		if bus.Len() != want {
			t.Errorf("bus holds %d events, want %d", bus.Len(), want)
		}
		bus.Reset()
	})
	if got := reg.CounterTotal("excovery_eventbus_resets_total"); got != 1 {
		t.Fatalf("resets counter = %d, want 1", got)
	}

	s.Stop()
	if err := <-errCh; err != nil && err != sched.ErrStopped {
		t.Fatal(err)
	}
}

package eventlog

// Name is the type of registered event-type identifiers. It is an alias
// (not a defined type) so registry constants flow into every Emit(string)
// signature without conversions.
type Name = string

// Central registry of framework event types (§IV-B1). Every event the
// framework itself emits — run lifecycle, retry and quarantine accounting,
// durability failures — must use a constant from this block: level-3
// conditioning and the EventsOfRun queries select on these exact strings,
// so a typo at an Emit site silently corrupts analysis instead of failing.
// The eventnames analyzer (internal/lint) rejects string literals at Emit
// call sites; add new event types here, never inline.
//
// Service-discovery case-study events (sd_service_add, scm_found, …) live
// in their own registry, internal/sd (sd.Ev*), which the analyzer accepts
// the same way.
const (
	// Experiment lifecycle (§IV-C1 experiment_init / experiment_exit).
	EvExperimentInit Name = "experiment_init"
	EvExperimentExit Name = "experiment_exit"

	// Run lifecycle on nodes (§IV-C1 preparation and clean-up phases).
	EvRunInit Name = "run_init"
	EvRunExit Name = "run_exit"

	// Run-level recovery (DESIGN.md §6): in-place retries, aborts by
	// MaxRunTime, and crashed-session re-execution after journal replay.
	EvRunRetry     Name = "run_retry"
	EvRunAborted   Name = "run_aborted"
	EvRunRecovered Name = "run_recovered"

	// Harvest outcomes (DESIGN.md §8): failed level-2 commits and partial
	// salvage of runs that failed all attempts.
	EvRunHarvestFailed   Name = "run_harvest_failed"
	EvRunPartialHarvest  Name = "run_partial_harvest"
	EvJournalWriteFailed Name = "journal_write_failed"

	// Node health accounting (DESIGN.md §6): preflight probe failures,
	// quarantine, probation progress and re-admission.
	EvNodeHealthFailed Name = "node_health_failed"
	EvNodeQuarantined  Name = "node_quarantined"
	EvNodeProbation    Name = "node_probation"
	EvNodeReadmitted   Name = "node_readmitted"

	// Process engine (§IV-C2): an expired wait_for_event dependency.
	EvWaitTimeout Name = "wait_timeout"

	// Environment manipulation (§IV-D2): the action vocabulary doubles as
	// the event types the executor emits when an action takes effect, so
	// the analysis can condition on the exact manipulation window.
	EvEnvTrafficStart Name = "env_traffic_start"
	EvEnvTrafficStop  Name = "env_traffic_stop"
	EvEnvDropAllStart Name = "env_drop_all_start"
	EvEnvDropAllStop  Name = "env_drop_all_stop"

	// Network partition manipulation (chaos vocabulary, DESIGN.md §12):
	// the cut between the two groups and its healing.
	EvEnvPartitionStart Name = "env_partition_start"
	EvEnvPartitionHeal  Name = "env_partition_heal"

	// Fault injections (§IV-D3: "one event per action"): each fault kind
	// emits <kind>_start when the injection takes effect and <kind>_stop
	// when it ends — whether by timing block, explicit fault_stop, or a
	// scenario transition.
	EvFaultInterfaceStart Name = "fault_interface_start"
	EvFaultInterfaceStop  Name = "fault_interface_stop"
	EvFaultMsgLossStart   Name = "fault_msg_loss_start"
	EvFaultMsgLossStop    Name = "fault_msg_loss_stop"
	EvFaultMsgDelayStart  Name = "fault_msg_delay_start"
	EvFaultMsgDelayStop   Name = "fault_msg_delay_stop"
	EvFaultPathLossStart  Name = "fault_path_loss_start"
	EvFaultPathLossStop   Name = "fault_path_loss_stop"
	EvFaultPathDelayStart Name = "fault_path_delay_start"
	EvFaultPathDelayStop  Name = "fault_path_delay_stop"

	// Chaos fault kinds (DESIGN.md §12, pumba-grade vocabulary).
	EvFaultMsgCorruptStart   Name = "fault_msg_corrupt_start"
	EvFaultMsgCorruptStop    Name = "fault_msg_corrupt_stop"
	EvFaultMsgDuplicateStart Name = "fault_msg_duplicate_start"
	EvFaultMsgDuplicateStop  Name = "fault_msg_duplicate_stop"
	EvFaultMsgReorderStart   Name = "fault_msg_reorder_start"
	EvFaultMsgReorderStop    Name = "fault_msg_reorder_stop"
	EvFaultRateLimitStart    Name = "fault_rate_limit_start"
	EvFaultRateLimitStop     Name = "fault_rate_limit_stop"
	EvFaultNodeKillStart     Name = "fault_node_kill_start"
	EvFaultNodeKillStop      Name = "fault_node_kill_stop"
	EvFaultNodePauseStart    Name = "fault_node_pause_start"
	EvFaultNodePauseStop     Name = "fault_node_pause_stop"
	EvFaultNodeStressStart   Name = "fault_node_stress_start"
	EvFaultNodeStressStop    Name = "fault_node_stress_stop"

	// Scenario DSL transitions (DESIGN.md §12): flap cycles reuse the
	// inner fault's start/stop events; ramps additionally mark each step
	// with its interpolated level and the end of the sweep.
	EvFaultRampStep Name = "fault_ramp_step"
	EvFaultRampDone Name = "fault_ramp_done"

	// Self-healing fleet (DESIGN.md §14): a backing node host lost
	// mid-campaign, the re-placement of the in-flight run onto a
	// replacement host, and a failover that found no replacement (the
	// campaign then degrades through the ordinary retry/quarantine path).
	EvFleetHostLost       Name = "fleet_host_lost"
	EvRunReplaced         Name = "run_replaced"
	EvFleetFailoverFailed Name = "fleet_failover_failed"
)

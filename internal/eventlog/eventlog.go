// Package eventlog implements ExCovery's event measurement concept
// (§IV-B1) and the event-based flow control it supports (§IV-C2).
//
// State changes on nodes are recorded as events: each event carries the node
// it occurred on, a local timestamp taken from that node's clock, an event
// type and optional parameters. Nodes keep their own Recorder (the paper's
// per-node temporary storage); the experiment master aggregates reported
// events in a Bus, against which processes synchronize with wait_for_event
// and wait_marker.
package eventlog

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/vclock"
)

// Event is a recorded state change (§IV-B1).
type Event struct {
	// Run identifies the experiment run the event belongs to; -1 marks
	// experiment-scoped events outside any run.
	Run int
	// Node is the identifier of the node the event occurred on.
	Node string
	// Time is the local timestamp of the originating node.
	Time time.Time
	// Type names the state change, e.g. "sd_service_add".
	Type string
	// Params carries additional event parameters, e.g. the identifier of
	// a discovered service.
	Params map[string]string
	// Seq is the global arrival order at the master's Bus. It is assigned
	// by the Bus, not the recorder.
	Seq uint64
}

// Param returns the named parameter or "".
func (e Event) Param(k string) string { return e.Params[k] }

func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[run %d] %s@%s %s", e.Run, e.Type, e.Node, e.Time.Format("15:04:05.000000"))
	if len(e.Params) > 0 {
		keys := make([]string, 0, len(e.Params))
		for k := range e.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", k, e.Params[k])
		}
		b.WriteString("}")
	}
	return b.String()
}

// Match selects events in wait_for_event dependencies. Zero fields match
// anything, mirroring the paper's "if omitted, they default to any".
type Match struct {
	// Type is the required event type; empty matches any type.
	Type string
	// Nodes restricts the originating node to this set (the paper's
	// location dependency: a single abstract node or the nodes bound to an
	// actor role); empty matches any node.
	Nodes []string
	// Params are required parameter values; a parameter mapped to "" only
	// requires presence. Events may carry additional parameters.
	Params map[string]string
	// ParamAnyOf, if non-empty, requires that the named parameter's value
	// is one of the listed values (the paper's param_dependency against a
	// node set, e.g. "sd_service_add with parameter in instances of
	// actor0").
	ParamKey   string
	ParamAnyOf []string
}

// Matches reports whether ev satisfies the match.
func (m Match) Matches(ev Event) bool {
	if m.Type != "" && ev.Type != m.Type {
		return false
	}
	if len(m.Nodes) > 0 {
		ok := false
		for _, n := range m.Nodes {
			if ev.Node == n {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for k, v := range m.Params {
		got, present := ev.Params[k]
		if !present {
			return false
		}
		if v != "" && got != v {
			return false
		}
	}
	if m.ParamKey != "" && len(m.ParamAnyOf) > 0 {
		got, present := ev.Params[m.ParamKey]
		if !present {
			return false
		}
		ok := false
		for _, v := range m.ParamAnyOf {
			if got == v {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Recorder is a node's local event store. Events are timestamped with the
// node's local clock and optionally forwarded to the master's Bus via the
// report hook (the dedicated control channel of §IV-A1).
type Recorder struct {
	node   string
	clock  vclock.Clock
	run    int
	events []Event
	report func(Event)
}

// NewRecorder creates a recorder for a node. report may be nil.
func NewRecorder(node string, clock vclock.Clock, report func(Event)) *Recorder {
	return &Recorder{node: node, clock: clock, run: -1, report: report}
}

// SetRun sets the run identifier stamped on subsequent events. Run -1 marks
// experiment-scoped events.
func (r *Recorder) SetRun(run int) { r.run = run }

// Run returns the current run identifier.
func (r *Recorder) Run() int { return r.run }

// Node returns the recorder's node identifier.
func (r *Recorder) Node() string { return r.node }

// Emit records an event with the node's local timestamp and forwards it to
// the master.
func (r *Recorder) Emit(typ string, params map[string]string) Event {
	ev := Event{
		Run:    r.run,
		Node:   r.node,
		Time:   r.clock.Now(),
		Type:   typ,
		Params: params,
	}
	r.events = append(r.events, ev)
	if r.report != nil {
		r.report(ev)
	}
	return ev
}

// Events returns all locally recorded events.
func (r *Recorder) Events() []Event { return r.events }

// RunEvents returns the locally recorded events of one run.
func (r *Recorder) RunEvents(run int) []Event {
	var out []Event
	for _, ev := range r.events {
		if ev.Run == run {
			out = append(out, ev)
		}
	}
	return out
}

// Reset discards all locally recorded events (used between experiments).
func (r *Recorder) Reset() { r.events = nil }

// Bus is the master-side aggregation of reported events. Processes block on
// it with WaitFor; wait_marker corresponds to taking Marker() and passing it
// as the from argument of the next WaitFor.
type Bus struct {
	s      *sched.Scheduler
	cond   *sched.Cond
	events []Event
	seq    uint64
	epoch  uint64 // incremented by CancelWaiters; pending waits give up

	// Throughput instrumentation (nil-safe: unset without Instrument).
	// The counters are atomic, so the obs HTTP handlers read them from
	// foreign goroutines while the bus mutates in scheduler context.
	mPublished *obs.Counter
	mResets    *obs.Counter
	mCancels   *obs.Counter
	mLen       *obs.Gauge
}

// NewBus creates an empty bus on the scheduler.
func NewBus(s *sched.Scheduler) *Bus {
	return &Bus{s: s, cond: s.NewCond("eventbus")}
}

// Instrument registers the bus's throughput metrics in reg. Call before
// execution starts; a nil registry keeps the bus uninstrumented.
func (b *Bus) Instrument(reg *obs.Registry) {
	b.mPublished = reg.Counter(obs.MEventbusPublished,
		"events published to the master's bus")
	b.mResets = reg.Counter(obs.MEventbusResets,
		"bus resets (one per run preparation)")
	b.mCancels = reg.Counter(obs.MEventbusCancelWaiters,
		"CancelWaiters broadcasts (run aborts)")
	b.mLen = reg.Gauge(obs.MEventbusLen,
		"events currently held by the bus (current run)")
}

// Publish stores the event, assigns its global sequence number and wakes all
// waiters. It must run in scheduler task context.
func (b *Bus) Publish(ev Event) Event {
	b.seq++
	ev.Seq = b.seq
	b.events = append(b.events, ev)
	b.mPublished.Inc()
	b.mLen.Set(int64(len(b.events)))
	b.cond.Broadcast()
	return ev
}

// Marker returns the current position in the event stream. A subsequent
// WaitFor with this marker considers only events published after it
// (§IV-C2, wait_marker).
func (b *Bus) Marker() uint64 { return b.seq }

// Events returns all published events.
func (b *Bus) Events() []Event { return b.events }

// Snapshot returns a copy of all published events, detached from the
// bus's backing array (which Reset reuses between runs). The copy is
// exact-size — a run's event count is known here, so there is no reason
// to pay append's doubling growth. Returns nil when no events were
// published, matching append([]Event(nil), ...) semantics.
func (b *Bus) Snapshot() []Event {
	if len(b.events) == 0 {
		return nil
	}
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Len returns the number of published events.
func (b *Bus) Len() int { return len(b.events) }

// Reset discards all events and restarts sequence numbering.
func (b *Bus) Reset() {
	b.events = nil
	b.seq = 0
	b.mResets.Inc()
	b.mLen.Set(0)
}

// CancelWaiters aborts every pending WaitFor/WaitForDistinct: the waits
// return unsuccessfully at their next wake-up. The master uses it when a
// run is aborted so orphaned process tasks cannot linger into later runs.
func (b *Bus) CancelWaiters() {
	b.epoch++
	b.mCancels.Inc()
	b.cond.Broadcast()
}

// WaitFor blocks the calling task until an event with Seq > from matches m,
// or until timeout elapses (timeout <= 0 means wait forever). On success it
// returns the first matching event. It implements wait_for_event (§IV-C2).
func (b *Bus) WaitFor(m Match, from uint64, timeout time.Duration) (Event, bool) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = b.s.Now().Add(timeout)
	}
	epoch := b.epoch
	next := from
	for {
		if b.epoch != epoch {
			return Event{}, false
		}
		for _, ev := range b.since(next) {
			next = ev.Seq
			if m.Matches(ev) {
				return ev, true
			}
		}
		if !deadline.IsZero() {
			remain := deadline.Sub(b.s.Now())
			if remain <= 0 {
				return Event{}, false
			}
			if !b.cond.WaitTimeout(remain) && b.seq == next {
				return Event{}, false
			}
		} else {
			b.cond.Wait()
		}
	}
}

// WaitForDistinct blocks until, counting events with Seq > from that match
// m, the set of observed values of param key covers want. It returns the
// matched events in arrival order (one per distinct value) and true on
// success, or the partial set and false on timeout. This implements waiting
// for an event "from all instances" with a parameter covering a node set
// (Fig. 10: all SMs discovered).
func (b *Bus) WaitForDistinct(m Match, key string, want []string, from uint64, timeout time.Duration) ([]Event, bool) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = b.s.Now().Add(timeout)
	}
	missing := make(map[string]bool, len(want))
	for _, w := range want {
		missing[w] = true
	}
	epoch := b.epoch
	var got []Event
	next := from
	for {
		if b.epoch != epoch {
			return got, false
		}
		for _, ev := range b.since(next) {
			next = ev.Seq
			if !m.Matches(ev) {
				continue
			}
			v := ev.Params[key]
			if missing[v] {
				delete(missing, v)
				got = append(got, ev)
			}
		}
		if len(missing) == 0 {
			return got, true
		}
		if !deadline.IsZero() {
			remain := deadline.Sub(b.s.Now())
			if remain <= 0 {
				return got, false
			}
			b.cond.WaitTimeout(remain)
		} else {
			b.cond.Wait()
		}
	}
}

// since returns events with Seq > from. Sequence numbers are dense (1,2,…)
// so the slice offset is computed directly.
func (b *Bus) since(from uint64) []Event {
	if len(b.events) == 0 {
		return nil
	}
	first := b.events[0].Seq
	idx := int(from - first + 1)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(b.events) {
		return nil
	}
	return b.events[idx:]
}

// FindFirst scans the published history (without blocking) and returns the
// first event matching m. Analysis helpers use it after execution.
func (b *Bus) FindFirst(m Match) (Event, bool) {
	for _, ev := range b.events {
		if m.Matches(ev) {
			return ev, true
		}
	}
	return Event{}, false
}

package vclock

import (
	"testing"
	"testing/quick"
	"time"

	"excovery/internal/sched"
)

func TestPerfectTracksScheduler(t *testing.T) {
	s := sched.NewVirtual()
	c := Perfect{S: s}
	s.Go("t", func() {
		before := s.Now()
		if !c.Now().Equal(before) {
			t.Error("Perfect clock deviates at start")
		}
		s.Sleep(42 * time.Second)
		if got := c.Now().Sub(before); got != 42*time.Second {
			t.Errorf("Perfect clock advanced %v, want 42s", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedConstantOffset(t *testing.T) {
	s := sched.NewVirtual()
	c := NewSkewed(s, 150*time.Millisecond, 0)
	s.Go("t", func() {
		if got := c.Now().Sub(s.Now()); got != 150*time.Millisecond {
			t.Errorf("offset = %v, want 150ms", got)
		}
		s.Sleep(time.Hour)
		if got := c.Now().Sub(s.Now()); got != 150*time.Millisecond {
			t.Errorf("offset after 1h = %v, want 150ms (no drift)", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedDrift(t *testing.T) {
	s := sched.NewVirtual()
	c := NewSkewed(s, 0, 100) // 100 ppm fast
	s.Go("t", func() {
		s.Sleep(10000 * time.Second)
		// 100 ppm over 10000 s = 1 s.
		got := c.Now().Sub(s.Now())
		if got < 999*time.Millisecond || got > 1001*time.Millisecond {
			t.Errorf("drift after 10000s = %v, want ~1s", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedNegativeDrift(t *testing.T) {
	s := sched.NewVirtual()
	c := NewSkewed(s, time.Second, -50)
	s.Go("t", func() {
		s.Sleep(20000 * time.Second)
		// -50 ppm over 20000 s = -1 s; plus 1 s offset = 0.
		got := c.Now().Sub(s.Now())
		if got < -time.Millisecond || got > time.Millisecond {
			t.Errorf("deviation = %v, want ~0", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetAtMatchesNow(t *testing.T) {
	s := sched.NewVirtual()
	c := NewSkewed(s, -3*time.Millisecond, 77)
	s.Go("t", func() {
		for i := 0; i < 5; i++ {
			s.Sleep(1234 * time.Millisecond)
			g := s.Now()
			want := g.Add(c.OffsetAt(g))
			if !c.Now().Equal(want) {
				t.Errorf("Now() = %v, OffsetAt predicts %v", c.Now(), want)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	s := sched.NewVirtual()
	c := NewSkewed(s, 5*time.Millisecond, 12.5)
	if c.Offset() != 5*time.Millisecond || c.DriftPPM() != 12.5 {
		t.Fatalf("accessors: %v %v", c.Offset(), c.DriftPPM())
	}
}

// Property: local clocks are monotone as long as drift > -1e6 ppm (i.e. the
// clock does not run backwards), for arbitrary offsets.
func TestSkewedMonotoneProperty(t *testing.T) {
	f := func(offsetMs int16, driftPPM int16, steps uint8) bool {
		s := sched.NewVirtual()
		c := NewSkewed(s, time.Duration(offsetMs)*time.Millisecond, float64(driftPPM))
		ok := true
		s.Go("t", func() {
			prev := c.Now()
			for i := 0; i < int(steps%50)+1; i++ {
				s.Sleep(time.Second)
				cur := c.Now()
				if cur.Before(prev) {
					ok = false
				}
				prev = cur
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package vclock models per-node local clocks on top of the global virtual
// time of a scheduler.
//
// ExCovery runs on distributed platforms whose node clocks deviate from each
// other (§IV-B3). To reproduce that property in emulation, each node reads
// time through a Clock that applies a constant offset and a linear drift to
// the scheduler's global time. The timesync package measures these
// deviations exactly the way the paper prescribes — with a two-way message
// exchange per run — and the store's conditioning phase maps all local
// timestamps back onto a common time base.
package vclock

import (
	"time"

	"excovery/internal/sched"
)

// Clock provides a node-local view of time.
type Clock interface {
	// Now returns the node's local time.
	Now() time.Time
}

// Perfect is a clock exactly equal to the scheduler's global time. The
// experiment master uses it as the reference clock.
type Perfect struct {
	S *sched.Scheduler
}

// Now returns the global virtual time.
func (p Perfect) Now() time.Time { return p.S.Now() }

// Skewed is a local clock with a fixed offset and a linear drift relative
// to global time:
//
//	local(t) = t + Offset + DriftPPM·1e-6·(t − base)
//
// where base is the global time at which the clock was created. Offsets of
// a few milliseconds and drifts of tens of ppm reproduce the clock behaviour
// of real testbed nodes without NTP discipline.
type Skewed struct {
	s        *sched.Scheduler
	offset   time.Duration
	driftPPM float64
	base     time.Time
}

// NewSkewed creates a skewed clock anchored at the scheduler's current time.
func NewSkewed(s *sched.Scheduler, offset time.Duration, driftPPM float64) *Skewed {
	return &Skewed{s: s, offset: offset, driftPPM: driftPPM, base: s.Now()}
}

// Now returns the skewed local time.
func (c *Skewed) Now() time.Time {
	t := c.s.Now()
	drift := time.Duration(float64(t.Sub(c.base)) * c.driftPPM * 1e-6)
	return t.Add(c.offset + drift)
}

// Offset returns the configured constant offset.
func (c *Skewed) Offset() time.Duration { return c.offset }

// DriftPPM returns the configured drift in parts per million.
func (c *Skewed) DriftPPM() float64 { return c.driftPPM }

// OffsetAt returns the total deviation local(t)−t at global time t; tests
// and the timesync error quantification use it as ground truth.
func (c *Skewed) OffsetAt(t time.Time) time.Duration {
	drift := time.Duration(float64(t.Sub(c.base)) * c.driftPPM * 1e-6)
	return c.offset + drift
}

package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomProgram spawns a web of tasks performing random mixes of sleeps,
// yields, cond waits with timeouts and nested spawns. It exercises the
// scheduler's state machine far beyond what the protocol code does.
func randomProgram(s *Scheduler, seed int64, tasks, steps int) (completions *int) {
	rng := rand.New(rand.NewSource(seed))
	conds := []*Cond{s.NewCond("c0"), s.NewCond("c1"), s.NewCond("c2")}
	done := new(int)
	var spawn func(depth int)
	spawn = func(depth int) {
		// Derive per-task random decisions up front: rng is owned by
		// the constructing goroutine, and the cooperative scheduler
		// serializes task bodies, so sharing it inside tasks is safe —
		// but drawing up front keeps programs identical across runs
		// regardless of interleaving.
		plan := make([]int, steps)
		args := make([]int64, steps)
		for i := range plan {
			plan[i] = rng.Intn(6)
			args[i] = rng.Int63n(1000) + 1
		}
		s.Go("worker", func() {
			for i := 0; i < steps; i++ {
				switch plan[i] {
				case 0:
					s.Sleep(time.Duration(args[i]) * time.Microsecond)
				case 1:
					s.Yield()
				case 2:
					conds[args[i]%3].WaitTimeout(time.Duration(args[i]) * time.Microsecond)
				case 3:
					conds[args[i]%3].Signal()
				case 4:
					conds[args[i]%3].Broadcast()
				case 5:
					if depth < 2 {
						spawn(depth + 1)
					}
				}
			}
			*done++
		})
	}
	for i := 0; i < tasks; i++ {
		spawn(0)
	}
	return done
}

func TestStressRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		s := NewVirtual()
		done := randomProgram(s, seed, 8, 30)
		start := s.Now()
		if err := s.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if *done < 8 {
			t.Logf("seed %d: only %d tasks completed", seed, *done)
			return false
		}
		if s.Now().Before(start) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStressDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, uint64, time.Time) {
		s := NewVirtual()
		randomProgram(s, seed, 10, 40)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Switches(), s.FiredTimers(), s.Now()
	}
	for seed := int64(1); seed <= 5; seed++ {
		s1, f1, n1 := run(seed)
		s2, f2, n2 := run(seed)
		if s1 != s2 || f1 != f2 || !n1.Equal(n2) {
			t.Fatalf("seed %d: nondeterministic (%d/%d/%v vs %d/%d/%v)",
				seed, s1, f1, n1, s2, f2, n2)
		}
	}
}

// TestTimeNeverMovesBackward drives a program while sampling Now() from a
// monitor task.
func TestTimeNeverMovesBackward(t *testing.T) {
	s := NewVirtual()
	randomProgram(s, 99, 6, 25)
	prev := s.Now()
	violations := 0
	s.Go("monitor", func() {
		for i := 0; i < 200; i++ {
			now := s.Now()
			if now.Before(prev) {
				violations++
			}
			prev = now
			s.Sleep(37 * time.Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("time moved backward %d times", violations)
	}
}

// TestManyTasks checks scalability of the task machinery (thousands of
// concurrent tasks, as a large emulation would create).
func TestManyTasks(t *testing.T) {
	s := NewVirtual()
	const n = 3000
	finished := 0
	for i := 0; i < n; i++ {
		i := i
		s.Go("t", func() {
			s.Sleep(time.Duration(i%97) * time.Microsecond)
			s.Yield()
			finished++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d", finished)
	}
}

// TestRunUntilRepeatedSlices verifies that slicing one program into many
// RunUntil windows is equivalent to a single Run.
func TestRunUntilRepeatedSlices(t *testing.T) {
	mk := func() (*Scheduler, *int) {
		s := NewVirtual()
		return s, randomProgram(s, 1234, 6, 20)
	}
	s1, d1 := mk()
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	s2, d2 := mk()
	deadline := s2.Now()
	for i := 0; i < 1000; i++ {
		deadline = deadline.Add(777 * time.Microsecond)
		if err := s2.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
		if *d2 == *d1 {
			break
		}
	}
	if *d2 != *d1 {
		t.Fatalf("sliced run completed %d tasks, monolithic %d", *d2, *d1)
	}
	if s1.Switches() != s2.Switches() {
		t.Fatalf("switch counts differ: %d vs %d", s1.Switches(), s2.Switches())
	}
}

package sched

import "time"

// Cond is a scheduler-aware condition variable. Unlike sync.Cond it needs no
// external mutex: task code is already serialized by the cooperative
// scheduler, so checking the predicate and calling Wait cannot race with a
// Signal from another task.
//
// Typical use:
//
//	for !predicate() {
//	    if !cond.WaitTimeout(timeout) {
//	        // timed out
//	    }
//	}
type Cond struct {
	s       *Scheduler
	name    string
	blocked string // "cond <name>", precomputed (per-wait hot)
	waiters []*condWaiter
}

type condWaiter struct {
	t     *task
	timer *Timer
	fired bool // woken (either way); guards double wake
}

// NewCond creates a condition variable. The name appears in deadlock
// reports.
func (s *Scheduler) NewCond(name string) *Cond {
	return &Cond{s: s, name: name, blocked: "cond " + name}
}

// Wait blocks the current task until Signal or Broadcast wakes it.
func (c *Cond) Wait() {
	c.s.mu.Lock()
	t := c.s.mustCurrentLocked("Cond.Wait")
	t.state = stateBlocked
	t.blockedOn = c.blocked
	t.timedOut = false
	c.s.current = nil
	t.cw = condWaiter{t: t}
	c.waiters = append(c.waiters, &t.cw)
	c.s.mu.Unlock()
	c.s.block(t)
}

// WaitTimeout blocks the current task until woken or until d of virtual
// time elapses. It reports true if the task was woken by Signal/Broadcast
// and false on timeout. A non-positive d times out at the current instant
// (after yielding), which still allows an already-pending Broadcast to win.
func (c *Cond) WaitTimeout(d time.Duration) bool {
	c.s.mu.Lock()
	t := c.s.mustCurrentLocked("Cond.WaitTimeout")
	t.state = stateBlocked
	t.blockedOn = c.blocked
	t.timedOut = false
	c.s.current = nil
	t.cw = condWaiter{t: t}
	w := &t.cw
	if d < 0 {
		d = 0
	}
	w.timer = c.s.addTimerLocked(c.s.now.Add(d), func() {
		if w.fired {
			return
		}
		w.fired = true
		t.timedOut = true
		c.removeWaiterLocked(w)
		c.s.makeRunnableLocked(t)
	})
	c.waiters = append(c.waiters, w)
	c.s.mu.Unlock()
	c.s.block(t)
	return !t.timedOut
}

func (c *Cond) removeWaiterLocked(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal wakes the longest-waiting task, if any. It must be called from a
// task or injected closure.
func (c *Cond) Signal() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.fired {
			continue
		}
		w.fired = true
		if w.timer != nil {
			w.timer.stopped = true
		}
		c.s.makeRunnableLocked(w.t)
		return
	}
}

// Broadcast wakes all waiting tasks in FIFO order.
func (c *Cond) Broadcast() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		if w.fired {
			continue
		}
		w.fired = true
		if w.timer != nil {
			w.timer.stopped = true
		}
		c.s.makeRunnableLocked(w.t)
	}
}

// Queue is an unbounded FIFO mailbox for passing values between tasks.
// Pop blocks; TryPop and PopTimeout do not block forever. Queue is the
// scheduler-aware replacement for Go channels in cooperative task code.
type Queue[T any] struct {
	cond  *Cond
	items []T
	// closed marks the queue as finished: Pops drain remaining items and
	// then report failure.
	closed bool
}

// NewQueue creates an empty queue.
func NewQueue[T any](s *Scheduler, name string) *Queue[T] {
	return &Queue[T]{cond: s.NewCond("queue " + name)}
}

// Push appends v and wakes one waiter. Push on a closed queue panics, as
// with Go channels.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sched: push on closed queue")
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Close marks the queue closed and wakes all waiters.
func (q *Queue[T]) Close() {
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Pop removes and returns the head, blocking until an item is available.
// ok is false if the queue was closed and drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.cond.Wait()
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes and returns the head without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PopTimeout is Pop with a virtual-time deadline; ok is false on timeout or
// closed-and-drained.
func (q *Queue[T]) PopTimeout(d time.Duration) (v T, ok bool) {
	deadline := q.cond.s.Now().Add(d)
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		remain := deadline.Sub(q.cond.s.Now())
		if remain <= 0 {
			return v, false
		}
		if !q.cond.WaitTimeout(remain) && len(q.items) == 0 {
			return v, false
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// WaitGroup is a scheduler-aware counterpart of sync.WaitGroup for joining
// a set of tasks.
type WaitGroup struct {
	cond *Cond
	n    int
}

// NewWaitGroup creates a WaitGroup with count zero.
func (s *Scheduler) NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{cond: s.NewCond("waitgroup " + name)}
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sched: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	for wg.n > 0 {
		wg.cond.Wait()
	}
}

// WaitTimeout blocks until the counter reaches zero or d elapses; it
// reports true if the counter reached zero.
func (wg *WaitGroup) WaitTimeout(d time.Duration) bool {
	deadline := wg.cond.s.Now().Add(d)
	for wg.n > 0 {
		remain := deadline.Sub(wg.cond.s.Now())
		if remain <= 0 {
			return false
		}
		wg.cond.WaitTimeout(remain)
	}
	return true
}

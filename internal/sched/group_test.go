package sched

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// groupDigest runs a two-member ping-pong workload whose cross-shard
// events branch and re-post, and returns a per-shard transcript of every
// event execution. The workload is deterministic by construction; the
// digest must therefore be invariant under GOMAXPROCS and repetition.
func groupDigest(procs int) string {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	const lookahead = 5 * time.Millisecond
	a, b := NewVirtual(), NewVirtual()
	g := NewGroup(lookahead, a, b)
	members := []*Scheduler{a, b}
	logs := make([][]string, 2) // written only by the owning shard

	// Each event logs itself and re-posts to the other shard until the
	// hop budget is spent; odd hops also fork a second, longer-delayed
	// event so inbox installation has to order multiple pending events.
	var hop func(now time.Time, arg any)
	type msg struct {
		shard int
		hops  int
		label string
	}
	hop = func(now time.Time, arg any) {
		m := arg.(*msg)
		logs[m.shard] = append(logs[m.shard],
			fmt.Sprintf("%s shard%d %s", now.Format(time.RFC3339Nano), m.shard, m.label))
		if m.hops <= 0 {
			return
		}
		dst := 1 - m.shard
		g.Post(dst, m.shard, now.Add(lookahead), hop, &msg{shard: dst, hops: m.hops - 1, label: m.label + ">"})
		if m.hops%2 == 1 {
			g.Post(dst, m.shard, now.Add(2*lookahead), hop, &msg{shard: dst, hops: m.hops - 2, label: m.label + "+"})
		}
	}
	for i, m := range members {
		i, m := i, m
		m.Go(fmt.Sprintf("seed%d", i), func() {
			m.Sleep(time.Duration(i+1) * time.Millisecond)
			g.Post(1-i, i, m.Now().Add(lookahead), hop, &msg{shard: 1 - i, hops: 6, label: fmt.Sprintf("m%d", i)})
		})
	}
	if err := g.Run(); err != nil {
		return "error: " + err.Error()
	}
	return strings.Join(logs[0], "\n") + "\n---\n" + strings.Join(logs[1], "\n")
}

func TestGroupDeterministicAcrossGOMAXPROCS(t *testing.T) {
	want := groupDigest(1)
	if strings.HasPrefix(want, "error:") {
		t.Fatal(want)
	}
	if !strings.Contains(want, "m0>>") || !strings.Contains(want, "m1>+") {
		t.Fatalf("workload did not exercise cross-shard chains:\n%s", want)
	}
	for i := 0; i < 5; i++ {
		if got := groupDigest(8); got != want {
			t.Fatalf("run %d at GOMAXPROCS=8 diverged:\n--- want ---\n%s\n--- got ---\n%s", i, want, got)
		}
	}
}

func TestGroupDeadlockReportsAllShards(t *testing.T) {
	a, b := NewVirtual(), NewVirtual()
	g := NewGroup(time.Millisecond, a, b)
	ca, cb := a.NewCond("ca"), b.NewCond("cb")
	a.Go("stuck-a", func() { ca.Wait() })
	b.Go("stuck-b", func() { cb.Wait() })
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	names := strings.Join(de.Blocked, ",")
	if !strings.Contains(names, "stuck-a") || !strings.Contains(names, "stuck-b") {
		t.Fatalf("blocked = %v, want both shards' tasks", de.Blocked)
	}
}

func TestGroupMemberQuiescenceIsNotDeadlock(t *testing.T) {
	a, b := NewVirtual(), NewVirtual()
	g := NewGroup(time.Millisecond, a, b)
	ran := false
	a.Go("only-a", func() { a.Sleep(3 * time.Millisecond); ran = true })
	if err := g.Run(); err != nil {
		t.Fatalf("Run: %v (an idle member must not report deadlock)", err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestGroupLookaheadViolationPanics(t *testing.T) {
	a, b := NewVirtual(), NewVirtual()
	g := NewGroup(10*time.Millisecond, a, b)
	a.Go("violate", func() {
		a.Sleep(time.Millisecond)
		// Posting closer than the lookahead lands inside the running
		// window: the violation must surface, not corrupt the merge.
		g.Post(1, 0, a.Now().Add(time.Microsecond), func(time.Time, any) {}, nil)
	})
	err := g.Run()
	if err == nil || !strings.Contains(err.Error(), "lookahead violation") {
		t.Fatalf("err = %v, want lookahead violation", err)
	}
}

func TestGroupRunUntilLeavesFutureWork(t *testing.T) {
	a, b := NewVirtual(), NewVirtual()
	g := NewGroup(time.Millisecond, a, b)
	fired := 0
	a.ScheduleFunc(5*time.Millisecond, "early", func() { fired++ })
	b.ScheduleFunc(50*time.Millisecond, "late", func() { fired++ })
	if err := g.RunUntil(a.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want only the pre-deadline timer", fired)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after full run", fired)
	}
}

// TestGroupInboxInstallOrder posts events with equal timestamps from both
// shards and checks the (when, src, srcSeq) merge order.
func TestGroupInboxInstallOrder(t *testing.T) {
	a, b, c := NewVirtual(), NewVirtual(), NewVirtual()
	g := NewGroup(time.Millisecond, a, b, c)
	when := a.Now().Add(10 * time.Millisecond)
	var order []string
	rec := func(label string) func(time.Time, any) {
		return func(time.Time, any) { order = append(order, label) }
	}
	// Same destination, same timestamp, different sources and post order;
	// all posts land in the same window, so one barrier installs them all
	// and the (when, src, srcSeq) sort decides.
	c.Go("post-c", func() {
		g.Post(0, 2, when, rec("c1"), nil)
	})
	b.Go("post-b", func() {
		g.Post(0, 1, when, rec("b1"), nil)
		g.Post(0, 1, when, rec("b2"), nil)
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(order), "[b1 b2 c1]"; got != want {
		t.Fatalf("install order = %v, want %v", got, want)
	}
}

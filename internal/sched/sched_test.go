package sched

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRunEmpty(t *testing.T) {
	s := NewVirtual()
	if err := s.Run(); err != nil {
		t.Fatalf("Run on empty scheduler: %v", err)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := NewVirtual()
	start := s.Now()
	var woke time.Time
	s.Go("sleeper", func() {
		s.Sleep(5 * time.Second)
		woke = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := woke.Sub(start); got != 5*time.Second {
		t.Fatalf("woke after %v, want 5s", got)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	s := NewVirtual()
	start := s.Now()
	s.Go("z", func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		if !s.Now().Equal(start) {
			t.Errorf("time advanced on zero/negative sleep: %v", s.Now().Sub(start))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerOrderingDeterministic(t *testing.T) {
	// Tasks sleeping to the same instant must wake in creation order.
	for trial := 0; trial < 5; trial++ {
		s := NewVirtual()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			s.Go(fmt.Sprintf("t%d", i), func() {
				s.Sleep(time.Second)
				order = append(order, i)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: wake order %v", trial, order)
			}
		}
	}
}

func TestInterleavedSleeps(t *testing.T) {
	s := NewVirtual()
	var order []string
	s.Go("a", func() {
		s.Sleep(1 * time.Second)
		order = append(order, "a1")
		s.Sleep(2 * time.Second) // wakes at 3s
		order = append(order, "a3")
	})
	s.Go("b", func() {
		s.Sleep(2 * time.Second)
		order = append(order, "b2")
		s.Sleep(2 * time.Second) // wakes at 4s
		order = append(order, "b4")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b2", "a3", "b4"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := NewVirtual()
	ran := 0
	s.Go("ticker", func() {
		for i := 0; i < 100; i++ {
			s.Sleep(time.Second)
			ran++
		}
	})
	deadline := s.Now().Add(10*time.Second + 500*time.Millisecond)
	if err := s.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Fatalf("ran %d ticks, want 10", ran)
	}
	if !s.Now().Equal(deadline) {
		t.Fatalf("Now() = %v, want deadline %v", s.Now(), deadline)
	}
	// Continue to completion.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Fatalf("ran %d ticks after full Run, want 100", ran)
	}
}

func TestRunForRelativeDeadline(t *testing.T) {
	s := NewVirtual()
	n := 0
	s.Go("t", func() {
		for {
			s.Sleep(time.Minute)
			n++
		}
	})
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := NewVirtual()
	c := s.NewCond("never")
	s.Go("waiter", func() { c.Wait() })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	s := NewVirtual()
	s.Go("bomb", func() { panic("boom") })
	err := s.Run()
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Task != "bomb" || pe.Value != "boom" {
		t.Fatalf("unexpected panic error: %+v", pe)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := NewVirtual()
	c := s.NewCond("c")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Go(fmt.Sprintf("w%d", i), func() {
			c.Wait()
			order = append(order, i)
		})
	}
	s.Go("signaler", func() {
		s.Sleep(time.Second)
		c.Signal()
		s.Sleep(time.Second)
		c.Signal()
		c.Signal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := NewVirtual()
	c := s.NewCond("c")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Go("w", func() {
			c.Wait()
			woken++
		})
	}
	s.Go("b", func() {
		s.Sleep(time.Millisecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := NewVirtual()
	c := s.NewCond("c")
	var timedOut, signaled bool
	s.Go("to", func() {
		start := s.Now()
		if c.WaitTimeout(3*time.Second) == false {
			timedOut = true
		}
		if got := s.Now().Sub(start); got != 3*time.Second {
			t.Errorf("timeout after %v, want 3s", got)
		}
	})
	s.Go("sig", func() {
		ok := c.WaitTimeout(10 * time.Second)
		signaled = ok
	})
	s.Go("signaler", func() {
		s.Sleep(5 * time.Second)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("first waiter should have timed out")
	}
	if !signaled {
		t.Error("second waiter should have been signaled")
	}
}

func TestCondSignalAfterTimeoutDoesNotDoubleWake(t *testing.T) {
	s := NewVirtual()
	c := s.NewCond("c")
	wakes := 0
	s.Go("w", func() {
		c.WaitTimeout(time.Second)
		wakes++
		// Block again; a stray second wake of the first wait would
		// erroneously complete this wait too early.
		ok := c.WaitTimeout(time.Hour)
		if !ok {
			t.Error("second wait timed out; expected signal at t=2s")
		}
		wakes++
	})
	s.Go("sig", func() {
		s.Sleep(2 * time.Second)
		c.Signal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestScheduleFuncAndStop(t *testing.T) {
	s := NewVirtual()
	fired := make(map[string]bool)
	s.ScheduleFunc(time.Second, "a", func() { fired["a"] = true })
	tm := s.ScheduleFunc(2*time.Second, "b", func() { fired["b"] = true })
	s.ScheduleFunc(3*time.Second, "c", func() { fired["c"] = true })
	s.Go("stopper", func() {
		s.Sleep(1500 * time.Millisecond)
		if !tm.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired["a"] || fired["b"] || !fired["c"] {
		t.Fatalf("fired = %v", fired)
	}
}

func TestScheduleAtClampsPast(t *testing.T) {
	s := NewVirtual()
	past := s.Now().Add(-time.Hour)
	var at time.Time
	s.ScheduleAt(past, "p", func() { at = s.Now() })
	start := s.Now()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !at.Equal(start) {
		t.Fatalf("fired at %v, want clamped to %v", at, start)
	}
}

func TestNestedGo(t *testing.T) {
	s := NewVirtual()
	sum := 0
	s.Go("parent", func() {
		for i := 1; i <= 3; i++ {
			i := i
			s.Go("child", func() {
				s.Sleep(time.Duration(i) * time.Second)
				sum += i
			})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestYieldInterleaving(t *testing.T) {
	s := NewVirtual()
	var order []string
	s.Go("a", func() {
		order = append(order, "a1")
		s.Yield()
		order = append(order, "a2")
	})
	s.Go("b", func() {
		order = append(order, "b1")
		s.Yield()
		order = append(order, "b2")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a1 b1 a2 b2]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestQueuePushPop(t *testing.T) {
	s := NewVirtual()
	q := NewQueue[int](s, "q")
	var got []int
	s.Go("consumer", func() {
		for {
			v, ok := q.Pop()
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Go("producer", func() {
		for i := 0; i < 5; i++ {
			q.Push(i)
			s.Sleep(time.Millisecond)
		}
		q.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	s := NewVirtual()
	q := NewQueue[string](s, "q")
	s.Go("consumer", func() {
		if _, ok := q.PopTimeout(time.Second); ok {
			t.Error("expected timeout on empty queue")
		}
		v, ok := q.PopTimeout(10 * time.Second)
		if !ok || v != "x" {
			t.Errorf("PopTimeout = %q, %v", v, ok)
		}
	})
	s.Go("producer", func() {
		s.Sleep(3 * time.Second)
		q.Push("x")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueTryPop(t *testing.T) {
	s := NewVirtual()
	q := NewQueue[int](s, "q")
	s.Go("t", func() {
		if _, ok := q.TryPop(); ok {
			t.Error("TryPop on empty queue returned ok")
		}
		q.Push(7)
		if v, ok := q.TryPop(); !ok || v != 7 {
			t.Errorf("TryPop = %d, %v", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	s := NewVirtual()
	wg := s.NewWaitGroup("wg")
	done := 0
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		s.Go("worker", func() {
			s.Sleep(time.Duration(i) * time.Second)
			done++
			wg.Done()
		})
	}
	var joinedAt time.Time
	start := s.Now()
	s.Go("joiner", func() {
		wg.Wait()
		joinedAt = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if got := joinedAt.Sub(start); got != 3*time.Second {
		t.Fatalf("joined after %v, want 3s", got)
	}
}

func TestWaitGroupTimeout(t *testing.T) {
	s := NewVirtual()
	wg := s.NewWaitGroup("wg")
	wg.Add(1)
	s.Go("j", func() {
		if wg.WaitTimeout(time.Second) {
			t.Error("WaitTimeout should have failed")
		}
	})
	s.Go("done-later", func() {
		s.Sleep(5 * time.Second)
		wg.Done()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFromForeignGoroutine(t *testing.T) {
	s := New(RealTime, time.Unix(0, 0))
	q := NewQueue[int](s, "inbox")
	got := 0
	// The consumer blocks with no pending timer, exercising the
	// "wait for external input" path of the real-time controller.
	s.Go("consumer", func() {
		v, ok := q.Pop()
		if !ok {
			t.Error("queue closed unexpectedly")
		}
		got = v
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		s.Inject("external", func() { q.Push(99) })
	}()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("got = %d, want 99", got)
	}
}

func TestInjectWait(t *testing.T) {
	s := New(RealTime, time.Unix(0, 0))
	q := NewQueue[struct{}](s, "quit")
	s.Go("keeper", func() { q.Pop() })
	result := 0
	doneRun := make(chan error, 1)
	go func() { doneRun <- s.Run() }()
	s.InjectWait("compute", func() { result = 42 })
	if result != 42 {
		t.Fatalf("result = %d", result)
	}
	s.Inject("quit", func() { q.Close() })
	if err := <-doneRun; err != nil {
		t.Fatal(err)
	}
}

func TestStop(t *testing.T) {
	s := New(RealTime, time.Unix(0, 0))
	s.Go("forever", func() {
		for {
			s.Sleep(time.Hour)
		}
	})
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Stop()
	}()
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestDeterministicSwitchCount(t *testing.T) {
	run := func() uint64 {
		s := NewVirtual()
		c := s.NewCond("c")
		for i := 0; i < 20; i++ {
			i := i
			s.Go("w", func() {
				s.Sleep(time.Duration(i%5) * time.Second)
				c.WaitTimeout(time.Duration(i) * time.Second)
			})
		}
		s.Go("sig", func() {
			for j := 0; j < 10; j++ {
				s.Sleep(time.Second)
				c.Broadcast()
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Switches()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("switch count varies: %d vs %d", got, first)
		}
	}
}

func TestRealTimePacing(t *testing.T) {
	s := New(RealTime, time.Unix(0, 0))
	s.SetSpeed(0.5) // half speed: 40ms virtual ≈ 20ms wall
	s.Go("sleeper", func() { s.Sleep(40 * time.Millisecond) })
	wall := time.Now()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(wall)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("real-time run finished too fast: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("real-time run took too long: %v", elapsed)
	}
}

func TestModeString(t *testing.T) {
	if Virtual.String() != "virtual" || RealTime.String() != "realtime" {
		t.Fatal("Mode.String mismatch")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatalf("unknown mode: %s", Mode(9))
	}
}

func TestFiredTimersCounter(t *testing.T) {
	s := NewVirtual()
	s.Go("t", func() {
		for i := 0; i < 7; i++ {
			s.Sleep(time.Second)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.FiredTimers(); got != 7 {
		t.Fatalf("FiredTimers = %d, want 7", got)
	}
}

func BenchmarkSleepSwitch(b *testing.B) {
	s := NewVirtual()
	s.Go("bench", func() {
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCondSignal(b *testing.B) {
	s := NewVirtual()
	c := s.NewCond("bench")
	s.Go("waiter", func() {
		for i := 0; i < b.N; i++ {
			c.Wait()
		}
	})
	s.Go("signaler", func() {
		for i := 0; i < b.N; i++ {
			c.Signal()
			s.Yield()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestDaemonDoesNotBlockCompletion(t *testing.T) {
	s := NewVirtual()
	q := NewQueue[int](s, "work")
	served := 0
	s.GoDaemon("server", func() {
		for {
			if _, ok := q.Pop(); !ok {
				return
			}
			served++
		}
	})
	s.Go("client", func() {
		for i := 0; i < 3; i++ {
			q.Push(i)
			s.Sleep(time.Second)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run with idle daemon: %v", err)
	}
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
}

func TestDaemonExcludedFromDeadlockReport(t *testing.T) {
	s := NewVirtual()
	c := s.NewCond("never")
	s.GoDaemon("pump", func() { c.Wait() })
	s.Go("stuck", func() { c.Wait() })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError (non-daemon task is stuck)", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "stuck") {
		t.Fatalf("blocked = %v, want only the non-daemon task", de.Blocked)
	}
}

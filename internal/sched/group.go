package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Group coordinates several shard schedulers under conservative-lookahead
// parallel discrete-event simulation. Each member owns a disjoint set of
// tasks and events (in the emulator: a disjoint set of nodes) and runs its
// window on its own goroutine, so independent shards advance in parallel
// between cross-shard events.
//
// The merge rule: every barrier computes tmin, the minimum NextEventTime
// over all members, and runs each member up to the window end W = tmin +
// lookahead. An event one shard sends to another must be timestamped at
// least lookahead after the sender's current time (in the emulator this is
// guaranteed by requiring cross-shard link delays ≥ lookahead), so it
// always lands at or beyond W — outside the window every member is
// currently executing. Cross-shard events are collected in per-member
// inboxes and installed at the next barrier in (when, source shard, source
// sequence) order, which is a total order independent of goroutine timing:
// the same seeds produce byte-identical runs at any GOMAXPROCS.
type Group struct {
	members   []*Scheduler
	lookahead time.Duration

	// BeforeWindow, when set, runs at every barrier while all members are
	// idle — single-threaded, so it may rebuild state the shards read
	// concurrently during windows (topology snapshots, routing tables).
	BeforeWindow func()

	mu        sync.Mutex
	inboxes   [][]groupEvent
	postSeq   []uint64  // per-source post counter; source order is deterministic
	windowEnd time.Time // current window end, for the lookahead guard
	inWindow  bool
}

// groupEvent is one cross-shard event awaiting installation at a barrier.
type groupEvent struct {
	when   time.Time
	src    int
	srcSeq uint64
	fn     func(now time.Time, arg any)
	arg    any
}

// NewGroup creates a group over the given member schedulers. lookahead must
// be positive: it is the minimum virtual-time distance of any cross-shard
// event from its sender's clock, and the width of the parallel window.
// All members must be Virtual-mode schedulers.
func NewGroup(lookahead time.Duration, members ...*Scheduler) *Group {
	if lookahead <= 0 {
		panic("sched: group lookahead must be positive")
	}
	if len(members) == 0 {
		panic("sched: group needs at least one member")
	}
	for _, m := range members {
		if m.Mode() != Virtual {
			panic("sched: group members must be virtual-mode schedulers")
		}
		m.setMember(true)
	}
	return &Group{
		members:   members,
		lookahead: lookahead,
		inboxes:   make([][]groupEvent, len(members)),
		postSeq:   make([]uint64, len(members)),
	}
}

// Members returns the member schedulers in shard order.
func (g *Group) Members() []*Scheduler { return g.members }

// Lookahead returns the group's lookahead window width.
func (g *Group) Lookahead() time.Duration { return g.lookahead }

// Post queues fn(when, arg) for execution on member dst at virtual time
// when, on behalf of member src. It is safe to call from any member's
// tasks or events while the group runs. when must be at least lookahead
// after the sender's clock; posts that land inside the currently running
// window are a lookahead violation and panic, because the destination may
// already have advanced past them.
func (g *Group) Post(dst, src int, when time.Time, fn func(now time.Time, arg any), arg any) {
	g.mu.Lock()
	if g.inWindow && when.Before(g.windowEnd) {
		end := g.windowEnd
		g.mu.Unlock()
		panic(fmt.Sprintf("sched: group post at %s inside window ending %s (lookahead violation)",
			when.Format(time.RFC3339Nano), end.Format(time.RFC3339Nano)))
	}
	g.postSeq[src]++
	g.inboxes[dst] = append(g.inboxes[dst], groupEvent{
		when: when, src: src, srcSeq: g.postSeq[src], fn: fn, arg: arg,
	})
	g.mu.Unlock()
}

// Run drives the group until every member is quiescent and no cross-shard
// event is pending. It returns nil on completion, the first member error
// (panic, stop) otherwise, or a DeadlockError naming blocked tasks across
// all shards when no member can make progress.
func (g *Group) Run() error { return g.run(time.Time{}) }

// RunUntil drives the group until virtual time reaches deadline. As with
// Scheduler.RunUntil, events at or after the deadline stay pending.
func (g *Group) RunUntil(deadline time.Time) error { return g.run(deadline) }

func (g *Group) run(deadline time.Time) error {
	for {
		// Barrier: all members idle. Rebuild shared state, then install
		// the cross-shard events collected during the last window.
		if g.BeforeWindow != nil {
			g.BeforeWindow()
		}
		g.installInboxes()

		// Find the globally earliest pending event.
		var tmin time.Time
		any := false
		for _, m := range g.members {
			if when, ok := m.NextEventTime(); ok && (!any || when.Before(tmin)) {
				tmin, any = when, true
			}
		}
		if !any {
			var blocked []string
			for _, m := range g.members {
				blocked = append(blocked, m.BlockedTasks()...)
			}
			if len(blocked) > 0 {
				sort.Strings(blocked)
				return &DeadlockError{Now: g.members[0].Now(), Blocked: blocked}
			}
			return nil
		}
		if !deadline.IsZero() && !tmin.Before(deadline) {
			return nil
		}
		end := tmin.Add(g.lookahead)
		if !deadline.IsZero() && end.After(deadline) {
			end = deadline
		}

		// Window: run every member up to end, in parallel.
		g.mu.Lock()
		g.windowEnd = end
		g.inWindow = true
		g.mu.Unlock()
		errs := make([]error, len(g.members))
		var wg sync.WaitGroup
		for i, m := range g.members {
			wg.Add(1)
			go func(i int, m *Scheduler) {
				defer wg.Done()
				errs[i] = m.RunUntil(end)
			}(i, m)
		}
		wg.Wait()
		g.mu.Lock()
		g.inWindow = false
		g.mu.Unlock()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
}

// installInboxes moves pending cross-shard events into their destination
// schedulers in (when, src, srcSeq) order — the deterministic merge.
func (g *Group) installInboxes() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for dst, box := range g.inboxes {
		if len(box) == 0 {
			continue
		}
		sort.Slice(box, func(i, j int) bool {
			a, b := box[i], box[j]
			if !a.when.Equal(b.when) {
				return a.when.Before(b.when)
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.srcSeq < b.srcSeq
		})
		for _, ev := range box {
			g.members[dst].ScheduleEventAt(ev.when, ev.fn, ev.arg)
		}
		g.inboxes[dst] = box[:0]
	}
}

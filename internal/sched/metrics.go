package sched

import (
	"time"

	"excovery/internal/obs"
)

// schedMetrics caches the scheduler's pre-resolved instruments. The zero
// value (all nil pointers) is the uninstrumented state: every method on a
// nil *obs.Counter / *obs.Gauge is a no-op, so the run loop needs no
// guards and adds no allocations when no registry is attached.
type schedMetrics struct {
	switches *obs.Counter
	fired    *obs.Counter
	queueLen *obs.Gauge
	runnable *obs.Gauge
	vtimeLag *obs.Gauge
}

// Instrument attaches a metrics registry to the scheduler: context
// switches, dispatched timers, event-queue and runnable-queue depths, the
// realtime pacing lag, and the wall time foreign goroutines spend waiting
// to enter the scheduler via Inject. Call it before Run; a nil registry is
// valid and leaves the scheduler uninstrumented.
func (s *Scheduler) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.switches = reg.Counter(obs.MSchedSwitches,
		"task resumptions (context switches)")
	s.m.fired = reg.Counter(obs.MSchedTimersFired,
		"timer events dispatched")
	s.m.queueLen = reg.Gauge(obs.MSchedEventQueueLen,
		"pending timers in the event queue")
	s.m.runnable = reg.Gauge(obs.MSchedRunnableLen,
		"tasks in the runnable queue")
	s.m.vtimeLag = reg.Gauge(obs.MSchedVtimeLagUs,
		"microseconds the virtual clock trails the realtime pacing target")
	s.lockWait.Store(reg.Histogram(obs.MSchedLockWait,
		"wall time foreign goroutines wait to enter the scheduler", nil))
}

// observeVtimeLagLocked updates the pacing-lag gauge: how far the virtual
// clock trails where the wall clock says it should be. Realtime mode only,
// and only on an instrumented scheduler — the uninstrumented run loop must
// not touch the wall clock.
func (s *Scheduler) observeVtimeLagLocked(wallBase time.Time, virtBase time.Time) {
	if s.m.vtimeLag == nil || s.mode != RealTime {
		return
	}
	wallElapsed := time.Since(wallBase)
	expected := virtBase.Add(time.Duration(float64(wallElapsed) / s.factor))
	s.m.vtimeLag.Set(expected.Sub(s.now).Microseconds())
}

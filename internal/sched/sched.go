// Package sched provides a cooperative discrete-event scheduler.
//
// All ExCovery components that model distributed behaviour (network links,
// protocol agents, experiment processes, fault injectors) run as tasks on a
// Scheduler. Exactly one task executes at any moment; a task runs until it
// blocks on one of the scheduler primitives (Sleep, Cond.Wait, Yield). This
// cooperative model has two important consequences:
//
//   - Determinism. In virtual-time mode, a run is a pure function of the
//     task program and the seeds it uses. Timers fire in (time, sequence)
//     order and runnable tasks resume in FIFO order, so repeated executions
//     are bit-identical — the repeatability property ExCovery demands of its
//     platform (§IV-A).
//
//   - Lock freedom. Task code never runs concurrently with other task code,
//     so shared state touched only by tasks needs no mutexes. The only entry
//     point for foreign goroutines is Inject, which hands a closure to the
//     scheduler to be run as a task.
//
// The scheduler supports two modes. In Virtual mode time jumps instantly
// from event to event; an experiment with thousands of runs completes in
// seconds. In RealTime mode the controller sleeps the wall-clock delta
// (scaled by a speed factor) before firing each timer, so emulated protocol
// behaviour can interact with live external systems such as an XML-RPC
// control plane.
package sched

import (
	"container/heap"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"excovery/internal/obs"
)

// Mode selects how the scheduler maps virtual time onto wall-clock time.
type Mode int

const (
	// Virtual advances time instantly to the next pending timer.
	Virtual Mode = iota
	// RealTime sleeps the (scaled) wall-clock delta before firing timers.
	RealTime
)

func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case RealTime:
		return "realtime"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// taskState describes where a task currently is in its lifecycle.
type taskState int

const (
	stateRunnable taskState = iota
	stateRunning
	stateBlocked
	stateDone
)

type task struct {
	id    uint64
	name  string
	wake  chan struct{}
	state taskState
	// daemon tasks (network pumps, protocol agents) do not keep Run alive:
	// when only daemons remain and nothing is scheduled, Run returns nil
	// instead of reporting a deadlock.
	daemon bool
	// timedOut reports whether the last WaitTimeout ended by timeout.
	timedOut bool
	// blockedOn is a human-readable description of the blocking primitive,
	// used in deadlock reports. Sleep stores just "sleep" plus the
	// duration in blockedFor and the report formats them lazily —
	// deadlocks are rare, sleeps are per-action-hot, and the Sprintf was
	// a measurable share of the run loop's allocations.
	blockedOn  string
	blockedFor time.Duration
	// cw is the task's condition-variable waiter, embedded so Wait does
	// not allocate one per block. A task waits on at most one Cond at a
	// time, and a superseded waiter is never revisited: Signal/Broadcast
	// unlink it and stop its timer, and stopped timers are discarded
	// unfired when popped.
	cw condWaiter
}

// DeadlockError is returned by Run when live tasks remain but none is
// runnable and no timer is pending. It lists the blocked tasks to aid
// debugging of experiment descriptions that wait for events that can never
// occur.
type DeadlockError struct {
	Now     time.Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sched: deadlock at %s: %d task(s) blocked: %v",
		e.Now.Format(time.RFC3339Nano), len(e.Blocked), e.Blocked)
}

// PanicError wraps a panic that escaped a task function.
type PanicError struct {
	Task  string
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %q panicked: %v", e.Task, e.Value)
}

// Scheduler is a cooperative discrete-event scheduler. The zero value is not
// usable; create one with New.
type Scheduler struct {
	mode   Mode
	factor float64 // wall seconds per virtual second in RealTime mode

	mu        sync.Mutex
	now       time.Time
	seq       uint64
	timers    timerHeap
	runnable  []*task
	tasks     map[uint64]*task // live tasks
	current   *task
	ctrl      chan struct{} // task -> controller: "I blocked or exited"
	inject    chan struct{} // foreign goroutine -> controller: "new work"
	stopping  bool
	panicked  *PanicError
	running   bool // a Run* call is active
	daemons   int  // live daemon tasks
	keepAlive bool // RealTime: stay in Run when quiescent, awaiting Inject

	// stats
	switches uint64
	fired    uint64

	// m holds the scheduler's pre-resolved instruments (metrics.go); the
	// zero value keeps the run loop uninstrumented and allocation-free.
	// lockWait lives outside m so Inject can consult it before taking
	// s.mu without racing Instrument.
	m        schedMetrics
	lockWait atomic.Pointer[obs.Histogram]
}

// New creates a scheduler starting at the given epoch. The epoch becomes the
// initial value of Now; experiments typically use a fixed epoch so recorded
// timestamps are stable across runs.
func New(mode Mode, epoch time.Time) *Scheduler {
	return &Scheduler{
		mode:   mode,
		factor: 1.0,
		now:    epoch,
		tasks:  make(map[uint64]*task),
		ctrl:   make(chan struct{}),
		inject: make(chan struct{}, 1),
	}
}

// NewVirtual is shorthand for New(Virtual, epoch) with a fixed, arbitrary
// epoch useful in tests and emulated experiments.
func NewVirtual() *Scheduler {
	return New(Virtual, time.Date(2014, 5, 19, 0, 0, 0, 0, time.UTC))
}

// SetSpeed sets the real-time pacing factor: wall-clock seconds slept per
// virtual second. A factor of 0.1 runs ten times faster than real time. It
// has no effect in Virtual mode. SetSpeed must be called before Run.
func (s *Scheduler) SetSpeed(factor float64) {
	if factor <= 0 {
		panic("sched: speed factor must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.factor = factor
}

// Mode reports the scheduler's time mode.
func (s *Scheduler) Mode() Mode { return s.mode }

// SetKeepAlive makes a RealTime Run call stay active when the system is
// quiescent, waiting for Inject instead of returning. RPC-serving node
// hosts need this; Stop still terminates the Run.
func (s *Scheduler) SetKeepAlive(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keepAlive = on
}

// Now returns the current virtual time. It may be called from any goroutine.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Switches returns the number of task resumptions performed so far. It is a
// cheap proxy for simulation effort, used by benchmarks.
func (s *Scheduler) Switches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// FiredTimers returns the number of timers fired so far.
func (s *Scheduler) FiredTimers() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Go spawns fn as a new tracked task. It may be called before Run, from
// within a running task, or (rarely) from a foreign goroutine. The task does
// not start executing until the controller schedules it.
func (s *Scheduler) Go(name string, fn func()) {
	s.spawn(name, fn, false)
}

// GoDaemon spawns fn as a daemon task: a long-lived service (e.g. a network
// interface pump) that should not keep Run alive. When every live task is a
// daemon and no timer or runnable task remains, Run returns nil — the
// system is quiescent, not deadlocked.
func (s *Scheduler) GoDaemon(name string, fn func()) {
	s.spawn(name, fn, true)
}

func (s *Scheduler) spawn(name string, fn func(), daemon bool) {
	s.mu.Lock()
	t := s.newTaskLocked(name)
	t.daemon = daemon
	if daemon {
		s.daemons++
	}
	s.runnable = append(s.runnable, t)
	s.mu.Unlock()
	go s.taskBody(t, fn)
}

func (s *Scheduler) newTaskLocked(name string) *task {
	s.seq++
	t := &task{id: s.seq, name: name, wake: make(chan struct{}, 1), state: stateRunnable}
	s.tasks[t.id] = t
	return t
}

func (s *Scheduler) taskBody(t *task, fn func()) {
	<-t.wake // wait for first dispatch
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			if s.panicked == nil {
				s.panicked = &PanicError{Task: t.name, Value: r, Stack: string(debug.Stack())}
			}
			s.finishTaskLocked(t)
			s.mu.Unlock()
			s.ctrl <- struct{}{}
			return
		}
		s.mu.Lock()
		s.finishTaskLocked(t)
		s.mu.Unlock()
		s.ctrl <- struct{}{}
	}()
	fn()
}

func (s *Scheduler) finishTaskLocked(t *task) {
	t.state = stateDone
	delete(s.tasks, t.id)
	if t.daemon {
		s.daemons--
	}
	if s.current == t {
		s.current = nil
	}
}

// Inject hands fn to the scheduler from a foreign goroutine; fn will run as
// a regular task. Inject is the only scheduler entry point that is safe to
// call from goroutines not managed by the scheduler (e.g. RPC handlers). If
// the scheduler is between Run calls the work is queued until the next Run.
func (s *Scheduler) Inject(name string, fn func()) {
	if h := s.lockWait.Load(); h != nil {
		// Instrumented path only: the uninstrumented scheduler must not
		// read the wall clock.
		//lint:ignore walltime the lock-wait histogram measures wall time by definition
		t0 := time.Now()
		s.mu.Lock()
		h.Observe(time.Since(t0).Seconds())
	} else {
		s.mu.Lock()
	}
	t := s.newTaskLocked(name)
	s.runnable = append(s.runnable, t)
	s.mu.Unlock()
	go s.taskBody(t, fn)
	// Poke the controller in case it is idle-waiting (RealTime mode).
	select {
	case s.inject <- struct{}{}:
	default:
	}
}

// InjectWait runs fn as a task and blocks the calling (foreign) goroutine
// until fn returns. It must not be called from within a task: that would
// deadlock the cooperative scheduler.
func (s *Scheduler) InjectWait(name string, fn func()) {
	done := make(chan struct{})
	s.Inject(name, func() {
		defer close(done)
		fn()
	})
	<-done
}

// Stop requests that the active Run call return as soon as the currently
// executing task blocks. Pending work remains queued.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
	select {
	case s.inject <- struct{}{}:
	default:
	}
}

// ErrStopped is returned by Run when Stop was called.
var ErrStopped = fmt.Errorf("sched: stopped")

// Run drives the scheduler until no live tasks remain, a deadline (zero
// means none) is reached, Stop is called, or the system deadlocks. It
// returns nil on normal completion, a *DeadlockError on deadlock, a
// *PanicError if a task panicked, or ErrStopped.
func (s *Scheduler) Run() error { return s.run(time.Time{}) }

// RunUntil drives the scheduler until virtual time reaches deadline (or any
// of the Run termination conditions occurs first). Reaching the deadline is
// a normal return: timers at or after the deadline stay pending.
func (s *Scheduler) RunUntil(deadline time.Time) error { return s.run(deadline) }

// RunFor is RunUntil(Now().Add(d)).
func (s *Scheduler) RunFor(d time.Duration) error {
	s.mu.Lock()
	deadline := s.now.Add(d)
	s.mu.Unlock()
	return s.run(deadline)
}

func (s *Scheduler) run(deadline time.Time) error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		panic("sched: concurrent Run calls")
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}()

	//lint:ignore walltime realtime mode anchors the virtual timeline to one wall reading by design
	wallBase := time.Now()
	virtBase := s.Now()

	for {
		s.mu.Lock()
		if s.panicked != nil {
			pe := s.panicked
			s.panicked = nil
			s.mu.Unlock()
			return pe
		}
		if s.stopping {
			s.stopping = false
			s.mu.Unlock()
			return ErrStopped
		}

		// 1. Resume the next runnable task, if any.
		if len(s.runnable) > 0 {
			t := s.runnable[0]
			copy(s.runnable, s.runnable[1:])
			s.runnable = s.runnable[:len(s.runnable)-1]
			t.state = stateRunning
			s.current = t
			s.switches++
			s.m.switches.Inc()
			s.m.runnable.Set(int64(len(s.runnable)))
			s.mu.Unlock()
			t.wake <- struct{}{}
			<-s.ctrl // wait until t blocks or exits
			continue
		}

		// 2. No runnable task: fire the earliest timer.
		if s.timers.Len() > 0 {
			tm := s.timers[0]
			if tm.stopped {
				heap.Pop(&s.timers)
				s.mu.Unlock()
				continue
			}
			if !deadline.IsZero() && tm.when.After(deadline) {
				if s.now.Before(deadline) {
					s.now = deadline
				}
				s.mu.Unlock()
				return nil
			}
			if s.mode == RealTime && tm.when.After(s.now) {
				// Sleep the scaled wall-clock delta, but wake early on
				// injection so external work gets serviced promptly.
				target := wallBase.Add(time.Duration(float64(tm.when.Sub(virtBase)) * s.factor))
				dt := time.Until(target)
				if dt > 0 {
					s.mu.Unlock()
					select {
					case <-time.After(dt):
					case <-s.inject:
					}
					continue // re-evaluate: injection may have added work
				}
			}
			heap.Pop(&s.timers)
			if tm.when.After(s.now) {
				s.now = tm.when
			}
			if !tm.stopped {
				s.fired++
				s.m.fired.Inc()
				s.m.queueLen.Set(int64(s.timers.Len()))
				s.observeVtimeLagLocked(wallBase, virtBase)
				// Runs with s.mu held; only queue manipulation.
				switch {
				case tm.wake != nil:
					s.makeRunnableLocked(tm.wake)
				case tm.spawnFn != nil:
					t := s.newTaskLocked(tm.spawnName)
					s.runnable = append(s.runnable, t)
					go s.taskBody(t, tm.spawnFn)
				default:
					tm.fire()
				}
			}
			s.mu.Unlock()
			continue
		}

		// 3. Nothing runnable, no timers. The system is finished when
		// only daemon tasks remain blocked — unless keep-alive mode
		// holds the scheduler open for external injections (an RPC
		// serving host).
		if len(s.tasks) == s.daemons {
			if s.keepAlive && s.mode == RealTime {
				s.mu.Unlock()
				select {
				case <-s.inject:
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			s.mu.Unlock()
			return nil
		}
		if s.mode == RealTime {
			// Live tasks are blocked waiting for external input.
			s.mu.Unlock()
			select {
			case <-s.inject:
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		blocked := s.blockedNamesLocked()
		now := s.now
		s.mu.Unlock()
		return &DeadlockError{Now: now, Blocked: blocked}
	}
}

func (s *Scheduler) blockedNamesLocked() []string {
	var names []string
	for _, t := range s.tasks {
		if t.state == stateBlocked && !t.daemon {
			on := t.blockedOn
			if on == "sleep" {
				on = "sleep " + t.blockedFor.String()
			}
			names = append(names, fmt.Sprintf("%s (on %s)", t.name, on))
		}
	}
	sort.Strings(names)
	return names
}

// block parks the current task. The caller must have already registered the
// task with whatever will later make it runnable again (a timer or a cond
// waiter list), while holding s.mu; block is called after releasing s.mu.
func (s *Scheduler) block(t *task) {
	s.ctrl <- struct{}{}
	<-t.wake
}

// mustCurrent returns the currently executing task and panics if the caller
// is not running on the scheduler. All blocking primitives require task
// context.
func (s *Scheduler) mustCurrentLocked(op string) *task {
	t := s.current
	if t == nil || t.state != stateRunning {
		panic("sched: " + op + " called outside a scheduler task")
	}
	return t
}

// makeRunnableLocked transitions a blocked task to the runnable queue.
func (s *Scheduler) makeRunnableLocked(t *task) {
	if t.state != stateBlocked {
		panic("sched: makeRunnable on non-blocked task")
	}
	t.state = stateRunnable
	t.blockedOn = ""
	s.runnable = append(s.runnable, t)
}

// Sleep suspends the current task for d of virtual time. Non-positive
// durations yield the processor but do not advance time.
func (s *Scheduler) Sleep(d time.Duration) {
	s.mu.Lock()
	t := s.mustCurrentLocked("Sleep")
	t.state = stateBlocked
	t.blockedOn = "sleep"
	t.blockedFor = d
	s.current = nil
	if d < 0 {
		d = 0
	}
	s.addWakeTimerLocked(s.now.Add(d), t)
	s.mu.Unlock()
	s.block(t)
}

// Yield moves the current task to the back of the runnable queue, letting
// other runnable tasks execute at the same virtual instant.
func (s *Scheduler) Yield() {
	s.mu.Lock()
	t := s.mustCurrentLocked("Yield")
	t.state = stateRunnable
	s.current = nil
	s.runnable = append(s.runnable, t)
	s.mu.Unlock()
	s.block(t)
}

// Timer is a cancelable scheduled callback. Its fire function runs with the
// scheduler lock held and must restrict itself to queue manipulation; user
// callbacks are wrapped in fresh tasks by ScheduleFunc.
type Timer struct {
	s       *Scheduler
	when    time.Time
	seq     uint64
	idx     int
	stopped bool
	fire    func()
	// wake, when set, replaces fire: the timer just makes this task
	// runnable. Sleep is per-action-hot, and storing the task directly
	// avoids allocating a wake closure for every sleep.
	wake *task
	// spawnFn/spawnName, when set, replace fire: the timer starts a new
	// task running spawnFn. ScheduleFunc fires once per emulated packet
	// delivery, so the spawn parameters live in the timer instead of a
	// per-call closure.
	spawnFn   func()
	spawnName string
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() time.Time { return t.when }

// Stop cancels the timer. It reports whether the timer was still pending.
// Safe to call multiple times and from any task.
func (t *Timer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

func (s *Scheduler) addTimerLocked(when time.Time, fire func()) *Timer {
	s.seq++
	tm := &Timer{s: s, when: when, seq: s.seq, fire: fire}
	heap.Push(&s.timers, tm)
	return tm
}

// addWakeTimerLocked schedules a timer that just makes t runnable again,
// without the wake closure a fire func would cost.
func (s *Scheduler) addWakeTimerLocked(when time.Time, t *task) *Timer {
	s.seq++
	tm := &Timer{s: s, when: when, seq: s.seq, wake: t}
	heap.Push(&s.timers, tm)
	return tm
}

// ScheduleFunc runs fn as a new task after d of virtual time. The returned
// Timer can cancel it before it fires. fn runs as a full task and may block
// on scheduler primitives.
func (s *Scheduler) ScheduleFunc(d time.Duration, name string, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addSpawnTimerLocked(s.now.Add(d), name, fn)
}

// ScheduleAt is ScheduleFunc with an absolute firing time.
func (s *Scheduler) ScheduleAt(when time.Time, name string, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if when.Before(s.now) {
		when = s.now
	}
	return s.addSpawnTimerLocked(when, name, fn)
}

// addSpawnTimerLocked schedules a timer that starts fn as a fresh task.
func (s *Scheduler) addSpawnTimerLocked(when time.Time, name string, fn func()) *Timer {
	s.seq++
	tm := &Timer{s: s, when: when, seq: s.seq, spawnFn: fn, spawnName: name}
	heap.Push(&s.timers, tm)
	return tm
}

// timerHeap orders timers by (when, seq) so simultaneous timers fire in
// creation order, keeping virtual-mode execution deterministic.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *timerHeap) Push(x any) {
	tm := x.(*Timer)
	tm.idx = len(*h)
	*h = append(*h, tm)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return tm
}

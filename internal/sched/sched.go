// Package sched provides a cooperative discrete-event scheduler.
//
// All ExCovery components that model distributed behaviour (network links,
// protocol agents, experiment processes, fault injectors) run as tasks on a
// Scheduler. Exactly one task executes at any moment; a task runs until it
// blocks on one of the scheduler primitives (Sleep, Cond.Wait, Yield). This
// cooperative model has two important consequences:
//
//   - Determinism. In virtual-time mode, a run is a pure function of the
//     task program and the seeds it uses. Timers fire in (time, sequence)
//     order and runnable tasks resume in FIFO order, so repeated executions
//     are bit-identical — the repeatability property ExCovery demands of its
//     platform (§IV-A).
//
//   - Lock freedom. Task code never runs concurrently with other task code,
//     so shared state touched only by tasks needs no mutexes. The only entry
//     point for foreign goroutines is Inject, which hands a closure to the
//     scheduler to be run as a task.
//
// Besides tasks, the scheduler runs inline events: small non-blocking
// callbacks executed directly on the controller goroutine (ScheduleEvent,
// PostEvent). Events skip the goroutine handoff a task costs and their
// timers are pooled, which is what makes the emulator's per-packet path
// allocation-free. An event shares the timer heap and the runnable FIFO
// with tasks, so tasks and events interleave in exactly the (time, seq) /
// FIFO order determinism requires.
//
// The scheduler supports two modes. In Virtual mode time jumps instantly
// from event to event; an experiment with thousands of runs completes in
// seconds. In RealTime mode the controller sleeps the wall-clock delta
// (scaled by a speed factor) before firing each timer, so emulated protocol
// behaviour can interact with live external systems such as an XML-RPC
// control plane.
package sched

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"excovery/internal/obs"
)

// Mode selects how the scheduler maps virtual time onto wall-clock time.
type Mode int

const (
	// Virtual advances time instantly to the next pending timer.
	Virtual Mode = iota
	// RealTime sleeps the (scaled) wall-clock delta before firing timers.
	RealTime
)

func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case RealTime:
		return "realtime"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// taskState describes where a task currently is in its lifecycle.
type taskState int

const (
	stateRunnable taskState = iota
	stateRunning
	stateBlocked
	stateDone
)

type task struct {
	id    uint64
	name  string
	wake  chan struct{}
	state taskState
	// fn is the body the worker goroutine runs on its next dispatch. Task
	// goroutines are pooled: when a task finishes, its goroutine parks and
	// a later spawn reuses it with a fresh id, name and fn.
	fn func()
	// daemon tasks (network pumps, protocol agents) do not keep Run alive:
	// when only daemons remain and nothing is scheduled, Run returns nil
	// instead of reporting a deadlock.
	daemon bool
	// timedOut reports whether the last WaitTimeout ended by timeout.
	timedOut bool
	// blockedOn is a human-readable description of the blocking primitive,
	// used in deadlock reports. Sleep stores just "sleep" plus the
	// duration in blockedFor and the report formats them lazily —
	// deadlocks are rare, sleeps are per-action-hot, and the Sprintf was
	// a measurable share of the run loop's allocations.
	blockedOn  string
	blockedFor time.Duration
	// cw is the task's condition-variable waiter, embedded so Wait does
	// not allocate one per block. A task waits on at most one Cond at a
	// time, and a superseded waiter is never revisited: Signal/Broadcast
	// unlink it and stop its timer, and stopped timers are discarded
	// unfired when popped.
	cw condWaiter
	// sleep is the task's wake timer, embedded so Sleep does not allocate
	// a Timer per block. Sleep timers are never stopped and are always
	// popped from the heap before the task can sleep again, so the struct
	// is reusable the moment the task resumes.
	sleep Timer
}

// runnableItem is one entry of the runnable FIFO: either a task to resume
// or an inline event to run on the controller goroutine. Sharing one FIFO
// keeps the relative order of task wakeups and posted events identical to
// a task-only scheduler, which the byte-identity of recorded runs depends
// on.
type runnableItem struct {
	t   *task
	fn  func(now time.Time, arg any)
	arg any
}

// DeadlockError is returned by Run when live tasks remain but none is
// runnable and no timer is pending. It lists the blocked tasks to aid
// debugging of experiment descriptions that wait for events that can never
// occur.
type DeadlockError struct {
	Now     time.Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sched: deadlock at %s: %d task(s) blocked: %v",
		e.Now.Format(time.RFC3339Nano), len(e.Blocked), e.Blocked)
}

// PanicError wraps a panic that escaped a task function.
type PanicError struct {
	Task  string
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %q panicked: %v", e.Task, e.Value)
}

// maxIdleWorkers bounds the pool of parked task goroutines kept between
// spawns; the pool is drained when Run returns so abandoned schedulers do
// not pin goroutines.
const maxIdleWorkers = 64

// maxFreeTimers bounds the event-timer free list.
const maxFreeTimers = 1024

// Scheduler is a cooperative discrete-event scheduler. The zero value is not
// usable; create one with New.
type Scheduler struct {
	mode   Mode
	factor float64 // wall seconds per virtual second in RealTime mode

	mu        sync.Mutex
	now       time.Time
	seq       uint64
	timers    timerHeap
	runnable  []runnableItem
	tasks     map[uint64]*task // live tasks
	current   *task
	ctrl      chan struct{} // task -> controller: "I blocked or exited"
	inject    chan struct{} // foreign goroutine -> controller: "new work"
	stopping  bool
	panicked  *PanicError
	running   bool // a Run* call is active
	daemons   int  // live daemon tasks
	keepAlive bool // RealTime: stay in Run when quiescent, awaiting Inject
	// member marks the scheduler as a shard of a Group: a Virtual-mode
	// window that ends with blocked tasks is not a deadlock (the wakeup
	// may arrive as a cross-shard event at the next barrier), so run
	// returns nil and leaves the diagnosis to the group.
	member bool

	// idleWorkers holds parked task goroutines for reuse; timerFree holds
	// recycled event timers. Both are touched only under mu.
	idleWorkers []*task
	timerFree   []*Timer

	// stats
	switches uint64
	fired    uint64

	// m holds the scheduler's pre-resolved instruments (metrics.go); the
	// zero value keeps the run loop uninstrumented and allocation-free.
	// lockWait lives outside m so Inject can consult it before taking
	// s.mu without racing Instrument.
	m        schedMetrics
	lockWait atomic.Pointer[obs.Histogram]
}

// New creates a scheduler starting at the given epoch. The epoch becomes the
// initial value of Now; experiments typically use a fixed epoch so recorded
// timestamps are stable across runs.
func New(mode Mode, epoch time.Time) *Scheduler {
	return &Scheduler{
		mode:   mode,
		factor: 1.0,
		now:    epoch,
		tasks:  make(map[uint64]*task),
		ctrl:   make(chan struct{}),
		inject: make(chan struct{}, 1),
	}
}

// NewVirtual is shorthand for New(Virtual, epoch) with a fixed, arbitrary
// epoch useful in tests and emulated experiments.
func NewVirtual() *Scheduler {
	return New(Virtual, time.Date(2014, 5, 19, 0, 0, 0, 0, time.UTC))
}

// SetSpeed sets the real-time pacing factor: wall-clock seconds slept per
// virtual second. A factor of 0.1 runs ten times faster than real time. It
// has no effect in Virtual mode. SetSpeed must be called before Run.
func (s *Scheduler) SetSpeed(factor float64) {
	if factor <= 0 {
		panic("sched: speed factor must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.factor = factor
}

// Mode reports the scheduler's time mode.
func (s *Scheduler) Mode() Mode { return s.mode }

// SetKeepAlive makes a RealTime Run call stay active when the system is
// quiescent, waiting for Inject instead of returning. RPC-serving node
// hosts need this; Stop still terminates the Run.
func (s *Scheduler) SetKeepAlive(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keepAlive = on
}

// setMember marks the scheduler as a Group shard (see Group).
func (s *Scheduler) setMember(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.member = on
}

// Now returns the current virtual time. It may be called from any goroutine.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Switches returns the number of task resumptions performed so far. It is a
// cheap proxy for simulation effort, used by benchmarks.
func (s *Scheduler) Switches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// FiredTimers returns the number of timers fired so far.
func (s *Scheduler) FiredTimers() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Go spawns fn as a new tracked task. It may be called before Run, from
// within a running task, or (rarely) from a foreign goroutine. The task does
// not start executing until the controller schedules it.
func (s *Scheduler) Go(name string, fn func()) {
	s.spawn(name, fn, false)
}

// GoDaemon spawns fn as a daemon task: a long-lived service (e.g. a network
// interface pump) that should not keep Run alive. When every live task is a
// daemon and no timer or runnable task remains, Run returns nil — the
// system is quiescent, not deadlocked.
func (s *Scheduler) GoDaemon(name string, fn func()) {
	s.spawn(name, fn, true)
}

func (s *Scheduler) spawn(name string, fn func(), daemon bool) {
	s.mu.Lock()
	t, fresh := s.startTaskLocked(name, fn, daemon)
	s.runnable = append(s.runnable, runnableItem{t: t})
	s.mu.Unlock()
	if fresh {
		go s.workerBody(t)
	}
}

// startTaskLocked allocates or reuses a task for fn and registers it as
// live. fresh reports whether a new worker goroutine must be started.
func (s *Scheduler) startTaskLocked(name string, fn func(), daemon bool) (t *task, fresh bool) {
	s.seq++
	if k := len(s.idleWorkers); k > 0 {
		t = s.idleWorkers[k-1]
		s.idleWorkers[k-1] = nil
		s.idleWorkers = s.idleWorkers[:k-1]
		t.id = s.seq
		t.name = name
		t.state = stateRunnable
		t.daemon = daemon
		t.timedOut = false
		t.blockedOn = ""
		t.cw = condWaiter{}
		t.fn = fn
	} else {
		fresh = true
		t = &task{id: s.seq, name: name, wake: make(chan struct{}, 1),
			state: stateRunnable, daemon: daemon, fn: fn}
	}
	s.tasks[t.id] = t
	if daemon {
		s.daemons++
	}
	return t, fresh
}

// workerBody is the goroutine behind one (possibly reused) task slot. Each
// iteration runs one task body; between bodies the goroutine parks in the
// idle pool. A nil fn wakes it for the last time: the pool is draining.
func (s *Scheduler) workerBody(t *task) {
	for {
		<-t.wake // wait for dispatch (or pool drain)
		fn := t.fn
		if fn == nil {
			return
		}
		t.fn = nil
		s.runTaskFn(t, fn)
		s.mu.Lock()
		s.finishTaskLocked(t)
		pooled := len(s.idleWorkers) < maxIdleWorkers
		if pooled {
			s.idleWorkers = append(s.idleWorkers, t)
		}
		s.mu.Unlock()
		s.ctrl <- struct{}{}
		if !pooled {
			return
		}
	}
}

// runTaskFn executes one task body, converting an escaped panic into the
// scheduler's PanicError.
func (s *Scheduler) runTaskFn(t *task, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			if s.panicked == nil {
				s.panicked = &PanicError{Task: t.name, Value: r, Stack: string(debug.Stack())}
			}
			s.mu.Unlock()
		}
	}()
	fn()
}

func (s *Scheduler) finishTaskLocked(t *task) {
	t.state = stateDone
	delete(s.tasks, t.id)
	if t.daemon {
		s.daemons--
	}
	if s.current == t {
		s.current = nil
	}
}

// drainWorkersLocked releases all parked worker goroutines. Called (with mu
// held) when Run returns, so a scheduler that is dropped between runs does
// not pin goroutines.
func (s *Scheduler) drainWorkersLocked() []*task {
	ws := s.idleWorkers
	s.idleWorkers = nil
	return ws
}

// Inject hands fn to the scheduler from a foreign goroutine; fn will run as
// a regular task. Inject is the only scheduler entry point that is safe to
// call from goroutines not managed by the scheduler (e.g. RPC handlers). If
// the scheduler is between Run calls the work is queued until the next Run.
func (s *Scheduler) Inject(name string, fn func()) {
	if h := s.lockWait.Load(); h != nil {
		// Instrumented path only: the uninstrumented scheduler must not
		// read the wall clock.
		//lint:ignore walltime the lock-wait histogram measures wall time by definition
		t0 := time.Now()
		s.mu.Lock()
		h.Observe(time.Since(t0).Seconds())
	} else {
		s.mu.Lock()
	}
	t, fresh := s.startTaskLocked(name, fn, false)
	s.runnable = append(s.runnable, runnableItem{t: t})
	s.mu.Unlock()
	if fresh {
		go s.workerBody(t)
	}
	// Poke the controller in case it is idle-waiting (RealTime mode).
	select {
	case s.inject <- struct{}{}:
	default:
	}
}

// InjectWait runs fn as a task and blocks the calling (foreign) goroutine
// until fn returns. It must not be called from within a task: that would
// deadlock the cooperative scheduler.
func (s *Scheduler) InjectWait(name string, fn func()) {
	done := make(chan struct{})
	s.Inject(name, func() {
		defer close(done)
		fn()
	})
	<-done
}

// Stop requests that the active Run call return as soon as the currently
// executing task blocks. Pending work remains queued.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
	select {
	case s.inject <- struct{}{}:
	default:
	}
}

// ErrStopped is returned by Run when Stop was called.
var ErrStopped = fmt.Errorf("sched: stopped")

// Run drives the scheduler until no live tasks remain, a deadline (zero
// means none) is reached, Stop is called, or the system deadlocks. It
// returns nil on normal completion, a *DeadlockError on deadlock, a
// *PanicError if a task panicked, or ErrStopped.
func (s *Scheduler) Run() error { return s.run(time.Time{}) }

// RunUntil drives the scheduler until virtual time reaches deadline (or any
// of the Run termination conditions occurs first). Reaching the deadline is
// a normal return: timers at or after the deadline stay pending.
func (s *Scheduler) RunUntil(deadline time.Time) error { return s.run(deadline) }

// RunFor is RunUntil(Now().Add(d)).
func (s *Scheduler) RunFor(d time.Duration) error {
	s.mu.Lock()
	deadline := s.now.Add(d)
	s.mu.Unlock()
	return s.run(deadline)
}

func (s *Scheduler) run(deadline time.Time) error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		panic("sched: concurrent Run calls")
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		ws := s.drainWorkersLocked()
		s.mu.Unlock()
		for _, t := range ws {
			t.fn = nil
			t.wake <- struct{}{}
		}
	}()

	//lint:ignore walltime realtime mode anchors the virtual timeline to one wall reading by design
	wallBase := time.Now()
	virtBase := s.Now()

	for {
		s.mu.Lock()
		if s.panicked != nil {
			pe := s.panicked
			s.panicked = nil
			s.mu.Unlock()
			return pe
		}
		if s.stopping {
			s.stopping = false
			s.mu.Unlock()
			return ErrStopped
		}

		// 1. Resume the next runnable item (task or posted event), if any.
		if len(s.runnable) > 0 {
			it := s.runnable[0]
			copy(s.runnable, s.runnable[1:])
			s.runnable[len(s.runnable)-1] = runnableItem{}
			s.runnable = s.runnable[:len(s.runnable)-1]
			if it.t != nil {
				t := it.t
				t.state = stateRunning
				s.current = t
				s.switches++
				s.m.switches.Inc()
				s.m.runnable.Set(int64(len(s.runnable)))
				s.mu.Unlock()
				t.wake <- struct{}{}
				<-s.ctrl // wait until t blocks or exits
			} else {
				now := s.now
				s.m.runnable.Set(int64(len(s.runnable)))
				s.mu.Unlock()
				s.runEvent(it.fn, now, it.arg)
			}
			continue
		}

		// 2. No runnable task: fire the earliest timer.
		if s.timers.Len() > 0 {
			tm := s.timers[0]
			if tm.stopped {
				s.timers.pop()
				s.mu.Unlock()
				continue
			}
			if !deadline.IsZero() && tm.when.After(deadline) {
				if s.now.Before(deadline) {
					s.now = deadline
				}
				s.mu.Unlock()
				return nil
			}
			if s.mode == RealTime && tm.when.After(s.now) {
				// Sleep the scaled wall-clock delta, but wake early on
				// injection so external work gets serviced promptly.
				target := wallBase.Add(time.Duration(float64(tm.when.Sub(virtBase)) * s.factor))
				dt := time.Until(target)
				if dt > 0 {
					s.mu.Unlock()
					select {
					case <-time.After(dt):
					case <-s.inject:
					}
					continue // re-evaluate: injection may have added work
				}
			}
			s.timers.pop()
			if tm.when.After(s.now) {
				s.now = tm.when
			}
			if !tm.stopped {
				s.fired++
				s.m.fired.Inc()
				s.m.queueLen.Set(int64(s.timers.Len()))
				s.observeVtimeLagLocked(wallBase, virtBase)
				switch {
				case tm.eventFn != nil:
					// Inline event: runs on the controller goroutine
					// after releasing the lock. The timer is recycled
					// first — event timers are never exposed to callers.
					fn, arg := tm.eventFn, tm.eventArg
					now := s.now
					s.releaseTimerLocked(tm)
					s.mu.Unlock()
					s.runEvent(fn, now, arg)
					continue
				case tm.wake != nil:
					s.makeRunnableLocked(tm.wake)
				case tm.spawnFn != nil:
					t, fresh := s.startTaskLocked(tm.spawnName, tm.spawnFn, false)
					s.runnable = append(s.runnable, runnableItem{t: t})
					tm.spawnFn = nil
					if fresh {
						s.mu.Unlock()
						go s.workerBody(t)
						continue
					}
				default:
					// Runs with s.mu held; only queue manipulation.
					tm.fire()
				}
			}
			s.mu.Unlock()
			continue
		}

		// 3. Nothing runnable, no timers. The system is finished when
		// only daemon tasks remain blocked — unless keep-alive mode
		// holds the scheduler open for external injections (an RPC
		// serving host).
		if len(s.tasks) == s.daemons {
			if s.keepAlive && s.mode == RealTime {
				s.mu.Unlock()
				select {
				case <-s.inject:
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			s.mu.Unlock()
			return nil
		}
		if s.mode == RealTime {
			// Live tasks are blocked waiting for external input.
			s.mu.Unlock()
			select {
			case <-s.inject:
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if s.member {
			// A group shard with blocked tasks is not (yet) deadlocked:
			// the wakeup may arrive from another shard at the next
			// barrier. The Group reports the deadlock if every shard is
			// stuck and no cross-shard event is pending.
			s.mu.Unlock()
			return nil
		}
		blocked := s.blockedNamesLocked()
		now := s.now
		s.mu.Unlock()
		return &DeadlockError{Now: now, Blocked: blocked}
	}
}

// runEvent executes one inline event on the controller goroutine, without
// the scheduler lock, converting an escaped panic into a PanicError.
func (s *Scheduler) runEvent(fn func(time.Time, any), now time.Time, arg any) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			if s.panicked == nil {
				s.panicked = &PanicError{Task: "event", Value: r, Stack: string(debug.Stack())}
			}
			s.mu.Unlock()
		}
	}()
	fn(now, arg)
}

func (s *Scheduler) blockedNamesLocked() []string {
	var names []string
	for _, t := range s.tasks {
		if t.state == stateBlocked && !t.daemon {
			on := t.blockedOn
			if on == "sleep" {
				on = "sleep " + t.blockedFor.String()
			}
			names = append(names, fmt.Sprintf("%s (on %s)", t.name, on))
		}
	}
	sort.Strings(names)
	return names
}

// BlockedTasks returns the names of blocked non-daemon tasks, formatted as
// in a DeadlockError. The Group uses it to assemble a cross-shard deadlock
// report; it must only be called while the scheduler is idle.
func (s *Scheduler) BlockedTasks() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blockedNamesLocked()
}

// NextEventTime returns the virtual time of the scheduler's next pending
// work item: Now() if anything is runnable, else the earliest timer's fire
// time. ok is false when the scheduler has nothing pending. Group barriers
// use it to pick the next lookahead window.
func (s *Scheduler) NextEventTime() (when time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.runnable) > 0 {
		return s.now, true
	}
	for s.timers.Len() > 0 {
		if s.timers[0].stopped {
			s.timers.pop()
			continue
		}
		return s.timers[0].when, true
	}
	return time.Time{}, false
}

// block parks the current task. The caller must have already registered the
// task with whatever will later make it runnable again (a timer or a cond
// waiter list), while holding s.mu; block is called after releasing s.mu.
func (s *Scheduler) block(t *task) {
	s.ctrl <- struct{}{}
	<-t.wake
}

// mustCurrent returns the currently executing task and panics if the caller
// is not running on the scheduler. All blocking primitives require task
// context — inline events (ScheduleEvent, PostEvent) and packet handlers
// invoked from them must not block.
func (s *Scheduler) mustCurrentLocked(op string) *task {
	t := s.current
	if t == nil || t.state != stateRunning {
		panic("sched: " + op + " called outside a scheduler task")
	}
	return t
}

// makeRunnableLocked transitions a blocked task to the runnable queue.
func (s *Scheduler) makeRunnableLocked(t *task) {
	if t.state != stateBlocked {
		panic("sched: makeRunnable on non-blocked task")
	}
	t.state = stateRunnable
	t.blockedOn = ""
	s.runnable = append(s.runnable, runnableItem{t: t})
}

// Sleep suspends the current task for d of virtual time. Non-positive
// durations yield the processor but do not advance time.
func (s *Scheduler) Sleep(d time.Duration) {
	s.mu.Lock()
	t := s.mustCurrentLocked("Sleep")
	t.state = stateBlocked
	t.blockedOn = "sleep"
	t.blockedFor = d
	s.current = nil
	if d < 0 {
		d = 0
	}
	s.addSleepTimerLocked(s.now.Add(d), t)
	s.mu.Unlock()
	s.block(t)
}

// Yield moves the current task to the back of the runnable queue, letting
// other runnable tasks execute at the same virtual instant.
func (s *Scheduler) Yield() {
	s.mu.Lock()
	t := s.mustCurrentLocked("Yield")
	t.state = stateRunnable
	s.current = nil
	s.runnable = append(s.runnable, runnableItem{t: t})
	s.mu.Unlock()
	s.block(t)
}

// Timer is a cancelable scheduled callback. Its fire function runs with the
// scheduler lock held and must restrict itself to queue manipulation; user
// callbacks are wrapped in fresh tasks by ScheduleFunc.
type Timer struct {
	s       *Scheduler
	when    time.Time
	whenNS  int64 // when.UnixNano(), cached so heap ordering is int compares
	seq     uint64
	stopped bool
	fire    func()
	// wake, when set, replaces fire: the timer just makes this task
	// runnable. Sleep is per-action-hot, and storing the task directly
	// avoids allocating a wake closure for every sleep.
	wake *task
	// spawnFn/spawnName, when set, replace fire: the timer starts a new
	// task running spawnFn.
	spawnFn   func()
	spawnName string
	// eventFn/eventArg, when set, replace fire: the timer runs eventFn
	// inline on the controller goroutine, outside the scheduler lock.
	// Event timers are pooled and never escape the scheduler.
	eventFn  func(now time.Time, arg any)
	eventArg any
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() time.Time { return t.when }

// Stop cancels the timer. It reports whether the timer was still pending.
// Safe to call multiple times and from any task.
func (t *Timer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

func (s *Scheduler) addTimerLocked(when time.Time, fire func()) *Timer {
	s.seq++
	tm := &Timer{s: s, when: when, whenNS: when.UnixNano(), seq: s.seq, fire: fire}
	s.timers.push(tm)
	return tm
}

// addSleepTimerLocked schedules the task's embedded wake timer: no
// allocation, and no wake closure a fire func would cost.
func (s *Scheduler) addSleepTimerLocked(when time.Time, t *task) {
	s.seq++
	tm := &t.sleep
	tm.s = s
	tm.when = when
	tm.whenNS = when.UnixNano()
	tm.seq = s.seq
	tm.stopped = false
	tm.wake = t
	s.timers.push(tm)
}

// ScheduleFunc runs fn as a new task after d of virtual time. The returned
// Timer can cancel it before it fires. fn runs as a full task and may block
// on scheduler primitives.
func (s *Scheduler) ScheduleFunc(d time.Duration, name string, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addSpawnTimerLocked(s.now.Add(d), name, fn)
}

// ScheduleAt is ScheduleFunc with an absolute firing time.
func (s *Scheduler) ScheduleAt(when time.Time, name string, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if when.Before(s.now) {
		when = s.now
	}
	return s.addSpawnTimerLocked(when, name, fn)
}

// addSpawnTimerLocked schedules a timer that starts fn as a fresh task.
func (s *Scheduler) addSpawnTimerLocked(when time.Time, name string, fn func()) *Timer {
	s.seq++
	tm := &Timer{s: s, when: when, whenNS: when.UnixNano(), seq: s.seq, spawnFn: fn, spawnName: name}
	s.timers.push(tm)
	return tm
}

// ScheduleEvent runs fn(now, arg) inline on the controller goroutine after
// d of virtual time. Events are the allocation-free fast path for per-packet
// work: the timer comes from a free list and fn is expected to be a static
// function with its state in arg. fn runs without the scheduler lock but
// outside any task, so it must not block on scheduler primitives; it may
// schedule further events, post events, spawn tasks and signal conds.
// Events are not cancelable.
func (s *Scheduler) ScheduleEvent(d time.Duration, fn func(now time.Time, arg any), arg any) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.scheduleEventAtLocked(s.now.Add(d), fn, arg)
	s.mu.Unlock()
}

// ScheduleEventAt is ScheduleEvent with an absolute firing time (clamped to
// the present). Group barriers use it to install cross-shard events.
func (s *Scheduler) ScheduleEventAt(when time.Time, fn func(now time.Time, arg any), arg any) {
	s.mu.Lock()
	if when.Before(s.now) {
		when = s.now
	}
	s.scheduleEventAtLocked(when, fn, arg)
	s.mu.Unlock()
}

func (s *Scheduler) scheduleEventAtLocked(when time.Time, fn func(now time.Time, arg any), arg any) {
	s.seq++
	var tm *Timer
	if k := len(s.timerFree); k > 0 {
		tm = s.timerFree[k-1]
		s.timerFree[k-1] = nil
		s.timerFree = s.timerFree[:k-1]
	} else {
		tm = &Timer{s: s}
	}
	tm.when = when
	tm.whenNS = when.UnixNano()
	tm.seq = s.seq
	tm.stopped = false
	tm.eventFn = fn
	tm.eventArg = arg
	s.timers.push(tm)
}

// releaseTimerLocked returns a fired event timer to the free list.
func (s *Scheduler) releaseTimerLocked(tm *Timer) {
	tm.eventFn = nil
	tm.eventArg = nil
	if len(s.timerFree) < maxFreeTimers {
		s.timerFree = append(s.timerFree, tm)
	}
}

// PostEvent appends fn(now, arg) to the runnable FIFO: it runs at the
// current virtual instant, after the items already queued, before any
// timer fires — the same position a task woken by Cond.Signal would get.
// The same non-blocking rules as for ScheduleEvent apply.
func (s *Scheduler) PostEvent(fn func(now time.Time, arg any), arg any) {
	s.mu.Lock()
	s.runnable = append(s.runnable, runnableItem{fn: fn, arg: arg})
	s.mu.Unlock()
}

// timerHeap orders timers by (whenNS, seq) so simultaneous timers fire in
// creation order, keeping virtual-mode execution deterministic. It is a
// hand-rolled binary heap: timer pushes and pops are the hottest scheduler
// operation, and cached int64 keys with direct calls beat the
// container/heap interface plus time.Time comparisons by a wide margin.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) before(a, b *Timer) bool {
	if a.whenNS != b.whenNS {
		return a.whenNS < b.whenNS
	}
	return a.seq < b.seq
}

func (h *timerHeap) push(tm *Timer) {
	*h = append(*h, tm)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(tm, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = tm
}

// pop removes and returns the earliest timer. The caller must have checked
// Len() > 0.
func (h *timerHeap) pop() *Timer {
	q := *h
	top := q[0]
	n := len(q) - 1
	tm := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if n > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && q.before(q[r], q[l]) {
				l = r
			}
			if !q.before(q[l], tm) {
				break
			}
			q[i] = q[l]
			i = l
		}
		q[i] = tm
	}
	return top
}

// Package viz renders recorded experiment runs as text timelines — the
// visualization feature the description enables (§I: the formal
// description "allows for automatic checking, execution and additional
// features, such as visualisation of experiments"). The output format
// mirrors Fig. 11: one lane per participating node, markers at the virtual
// times of the node's events, and a legend resolving the markers.
package viz

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"excovery/internal/eventlog"
)

// Timeline renders the events of one run. width is the number of columns
// of the plot area (default 72 when ≤ 0). Events are placed by their
// timestamps relative to the run's first and last event.
func Timeline(events []eventlog.Event, width int) string {
	if width <= 0 {
		width = 72
	}
	if len(events) == 0 {
		return "(no events)\n"
	}
	sorted := append([]eventlog.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	t0 := sorted[0].Time
	t1 := sorted[len(sorted)-1].Time
	span := t1.Sub(t0)
	if span <= 0 {
		span = time.Nanosecond
	}

	// Assign one marker character per event type, in order of first
	// occurrence: a, b, c, …
	markers := map[string]byte{}
	var order []string
	next := byte('a')
	for _, ev := range sorted {
		if _, ok := markers[ev.Type]; !ok && next <= 'z' {
			markers[ev.Type] = next
			order = append(order, ev.Type)
			next++
		}
	}

	// Lane per node, sorted.
	nodes := map[string][]eventlog.Event{}
	for _, ev := range sorted {
		nodes[ev.Node] = append(nodes[ev.Node], ev)
	}
	names := make([]string, 0, len(nodes))
	nameW := 4
	for n := range nodes {
		names = append(names, n)
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%*s  t=0%s+%s\n", nameW, "", strings.Repeat(" ", width-len(fmt.Sprint(span.Round(time.Millisecond)))-3), span.Round(time.Millisecond))
	for _, n := range names {
		lane := []byte(strings.Repeat("-", width))
		for _, ev := range nodes[n] {
			pos := int(float64(ev.Time.Sub(t0)) / float64(span) * float64(width-1))
			mk := markers[ev.Type]
			if mk == 0 {
				mk = '?'
			}
			// Collisions show the later event.
			lane[pos] = mk
		}
		fmt.Fprintf(&b, "%*s  |%s|\n", nameW, n, lane)
	}
	b.WriteString("\nlegend:\n")
	for _, typ := range order {
		first := time.Duration(-1)
		for _, ev := range sorted {
			if ev.Type == typ {
				first = ev.Time.Sub(t0)
				break
			}
		}
		fmt.Fprintf(&b, "  %c  %-22s first at +%s\n", markers[typ], typ, first.Round(time.Microsecond))
	}
	return b.String()
}

// PhaseSummary derives the Fig. 11 phase boundaries of a run from its
// events: the preparation phase ends at the (first) sd_start_search, the
// execution phase ends at the "done" flag (or the last sd_service_add),
// clean-up covers the rest.
type PhaseSummary struct {
	Preparation time.Duration
	Execution   time.Duration
	Cleanup     time.Duration
	TR          time.Duration
	Complete    bool
}

// Phases computes the phase summary of one run's events.
func Phases(events []eventlog.Event) PhaseSummary {
	var s PhaseSummary
	if len(events) == 0 {
		return s
	}
	sorted := append([]eventlog.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	t0 := sorted[0].Time
	tEnd := sorted[len(sorted)-1].Time
	var searchAt, doneAt, addAt time.Time
	for _, ev := range sorted {
		switch ev.Type {
		case "sd_start_search":
			if searchAt.IsZero() {
				searchAt = ev.Time
			}
		case "sd_service_add":
			addAt = ev.Time
		case "done":
			if doneAt.IsZero() {
				doneAt = ev.Time
			}
		}
	}
	if searchAt.IsZero() {
		return s
	}
	s.Preparation = searchAt.Sub(t0)
	execEnd := doneAt
	if execEnd.IsZero() {
		execEnd = addAt
	}
	if execEnd.IsZero() {
		execEnd = tEnd
	}
	s.Execution = execEnd.Sub(searchAt)
	s.Cleanup = tEnd.Sub(execEnd)
	if !addAt.IsZero() {
		s.TR = addAt.Sub(searchAt)
		s.Complete = true
	}
	return s
}

func (s PhaseSummary) String() string {
	if !s.Complete {
		return fmt.Sprintf("preparation %s | execution %s (incomplete) | clean-up %s",
			s.Preparation.Round(time.Microsecond),
			s.Execution.Round(time.Microsecond),
			s.Cleanup.Round(time.Microsecond))
	}
	return fmt.Sprintf("preparation %s | execution %s (t_R %s) | clean-up %s",
		s.Preparation.Round(time.Microsecond),
		s.Execution.Round(time.Microsecond),
		s.TR.Round(time.Microsecond),
		s.Cleanup.Round(time.Microsecond))
}

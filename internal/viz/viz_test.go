package viz

import (
	"strings"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
)

var t0 = time.Date(2014, 5, 19, 0, 0, 0, 0, time.UTC)

func ev(node, typ string, at time.Duration) eventlog.Event {
	return eventlog.Event{Node: node, Type: typ, Time: t0.Add(at)}
}

func TestTimelineBasics(t *testing.T) {
	events := []eventlog.Event{
		ev("A", "sd_start_publish", 0),
		ev("B", "sd_start_search", 5*time.Second),
		ev("B", "sd_service_add", 5*time.Second+50*time.Millisecond),
	}
	out := Timeline(events, 60)
	// One lane per node, in sorted order.
	lines := strings.Split(out, "\n")
	var laneA, laneB string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "A ") {
			laneA = l
		}
		if strings.HasPrefix(strings.TrimSpace(l), "B ") {
			laneB = l
		}
	}
	if laneA == "" || laneB == "" {
		t.Fatalf("missing lanes:\n%s", out)
	}
	// Marker a (first type) at the start of A's lane.
	if !strings.Contains(laneA, "|a") {
		t.Errorf("publish marker not at t=0: %q", laneA)
	}
	// Legend resolves all three types.
	for _, typ := range []string{"sd_start_publish", "sd_start_search", "sd_service_add"} {
		if !strings.Contains(out, typ) {
			t.Errorf("legend missing %s\n%s", typ, out)
		}
	}
}

func TestTimelineEmptyAndZeroSpan(t *testing.T) {
	if got := Timeline(nil, 40); !strings.Contains(got, "no events") {
		t.Fatalf("empty = %q", got)
	}
	// All events at the same instant must not divide by zero.
	out := Timeline([]eventlog.Event{ev("A", "x", 0), ev("A", "y", 0)}, 0)
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Fatalf("zero-span output:\n%s", out)
	}
}

func TestPhasesCompleteRun(t *testing.T) {
	events := []eventlog.Event{
		ev("A", "run_init", 0),
		ev("A", "sd_start_publish", 10*time.Millisecond),
		ev("B", "sd_start_search", 5*time.Second),
		ev("B", "sd_service_add", 5*time.Second+40*time.Millisecond),
		ev("B", "done", 5*time.Second+41*time.Millisecond),
		ev("B", "run_exit", 5*time.Second+50*time.Millisecond),
	}
	s := Phases(events)
	if !s.Complete {
		t.Fatalf("phases = %+v", s)
	}
	if s.Preparation != 5*time.Second {
		t.Errorf("prep = %v", s.Preparation)
	}
	if s.TR != 40*time.Millisecond {
		t.Errorf("t_R = %v", s.TR)
	}
	if s.Execution != 41*time.Millisecond {
		t.Errorf("exec = %v", s.Execution)
	}
	if s.Cleanup != 9*time.Millisecond {
		t.Errorf("cleanup = %v", s.Cleanup)
	}
	if !strings.Contains(s.String(), "t_R") {
		t.Errorf("String = %q", s.String())
	}
}

func TestPhasesIncomplete(t *testing.T) {
	events := []eventlog.Event{
		ev("B", "sd_start_search", time.Second),
		ev("B", "wait_timeout", 31*time.Second),
	}
	s := Phases(events)
	if s.Complete {
		t.Fatal("incomplete run reported complete")
	}
	if !strings.Contains(s.String(), "incomplete") {
		t.Errorf("String = %q", s.String())
	}
	if Phases(nil).Complete {
		t.Fatal("empty events complete")
	}
	// No search at all: zero summary.
	if s := Phases([]eventlog.Event{ev("A", "x", 0)}); s.Preparation != 0 || s.Complete {
		t.Fatalf("no-search phases = %+v", s)
	}
}

func TestTimelineOfRealRun(t *testing.T) {
	x, err := core.New(desc.OneShot(30), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := Timeline(rep.Results[0].Events, 72)
	if !strings.Contains(out, "sd_service_add") {
		t.Fatalf("real-run timeline lacks discovery:\n%s", out)
	}
	ph := Phases(rep.Results[0].Events)
	if !ph.Complete || ph.Preparation < 4*time.Second {
		t.Fatalf("real-run phases = %+v", ph)
	}
}

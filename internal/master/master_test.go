package master

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/vclock"
)

// stubNode is an in-memory NodeHandle that records calls and emits events
// through a recorder, optionally failing configured actions or hanging.
type stubNode struct {
	id    string
	s     *sched.Scheduler
	rec   *eventlog.Recorder
	calls []string
	fail  map[string]bool
	failN map[string]int // fail an action the first n times, then succeed
	hang  map[string]bool
}

func newStub(id string, s *sched.Scheduler, bus *eventlog.Bus) *stubNode {
	return &stubNode{
		id: id, s: s,
		rec:  eventlog.NewRecorder(id, vclock.Perfect{S: s}, func(ev eventlog.Event) { bus.Publish(ev) }),
		fail: map[string]bool{}, failN: map[string]int{}, hang: map[string]bool{},
	}
}

func (n *stubNode) ID() string { return n.id }
func (n *stubNode) PrepareRun(run int) {
	n.rec.SetRun(run)
	n.calls = append(n.calls, fmt.Sprintf("prepare:%d", run))
}
func (n *stubNode) CleanupRun(run int) {
	n.calls = append(n.calls, fmt.Sprintf("cleanup:%d", run))
}
func (n *stubNode) Execute(action string, params map[string]string) error {
	n.calls = append(n.calls, action)
	if n.hang[action] {
		n.s.Sleep(24 * time.Hour)
	}
	if n.fail[action] {
		return fmt.Errorf("stub failure in %s", action)
	}
	if n.failN[action] > 0 {
		n.failN[action]--
		return fmt.Errorf("stub transient failure in %s", action)
	}
	n.rec.Emit(action+"_done", params)
	return nil
}
func (n *stubNode) Emit(typ string, params map[string]string) { n.rec.Emit(typ, params) }
func (n *stubNode) LocalTime() time.Time                      { return n.s.Now() }
func (n *stubNode) HarvestEvents(run int) []eventlog.Event    { return n.rec.RunEvents(run) }
func (n *stubNode) HarvestPackets() []store.PacketRecord      { return nil }
func (n *stubNode) HarvestExtras() []store.ExtraMeasurement   { return nil }

// stubEnv records environment actions.
type stubEnv struct {
	calls  []string
	resets int
}

func (e *stubEnv) Execute(action string, params map[string]string) error {
	e.calls = append(e.calls, action)
	return nil
}
func (e *stubEnv) Reset() { e.resets++ }

// twoNodeExp is a minimal two-actor description driving stub actions.
func twoNodeExp(reps int) *desc.Experiment {
	e := &desc.Experiment{
		Name:          "stub-exp",
		AbstractNodes: []string{"A", "B"},
		Factors: []desc.Factor{
			desc.ActorMapFactor("fact_nodes", desc.UsageBlocking, map[string][]string{
				"actor0": {"A"}, "actor1": {"B"},
			}),
		},
		Repl: desc.Replication{ID: "rep", Count: reps},
		Seed: 5,
	}
	e.NodeProcesses = []desc.NodeProcess{
		{
			Actor: "actor0", Name: "P", NodesRef: "fact_nodes",
			Actions: []desc.Action{
				desc.Act("alpha"),
				desc.WaitEvent(desc.WaitSpec{Event: "go"}),
				desc.Act("omega"),
			},
		},
		{
			Actor: "actor1", Name: "Q", NodesRef: "fact_nodes",
			Actions: []desc.Action{
				desc.WaitEvent(desc.WaitSpec{
					Event: "alpha_done", FromActor: "actor0", FromInstance: "all"}),
				desc.Flag("go"),
			},
		},
	}
	return e
}

type fixture struct {
	s    *sched.Scheduler
	bus  *eventlog.Bus
	a, b *stubNode
	env  *stubEnv
}

func newFixture(t *testing.T, e *desc.Experiment, cfgMut func(*Config)) (*Master, *fixture) {
	t.Helper()
	s := sched.NewVirtual()
	bus := eventlog.NewBus(s)
	f := &fixture{s: s, bus: bus,
		a: newStub("A", s, bus), b: newStub("B", s, bus), env: &stubEnv{}}
	cfg := Config{
		Exp: e, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{"A": f.a, "B": f.b},
		Env:   f.env,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, f
}

func runMaster(t *testing.T, m *Master, s *sched.Scheduler) *Report {
	t.Helper()
	var rep *Report
	var err error
	s.Go("experimaster", func() { rep, err = m.RunAll() })
	if rerr := s.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunPhasesAndOrdering(t *testing.T) {
	m, f := newFixture(t, twoNodeExp(2), nil)
	rep := runMaster(t, m, f.s)
	if rep.Completed != 2 || len(rep.Results) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// Each run: prepare, alpha (+ event sync), omega, cleanup.
	want := "prepare:0,alpha,omega,cleanup:0,prepare:1,alpha,omega,cleanup:1"
	if got := strings.Join(f.a.calls, ","); got != want {
		t.Fatalf("A calls = %s", got)
	}
	// The environment is reset twice per run (prep + cleanup).
	if f.env.resets != 4 {
		t.Fatalf("env resets = %d", f.env.resets)
	}
	// Offsets were measured for both nodes.
	if len(rep.Results[0].Offsets) != 2 {
		t.Fatalf("offsets = %v", rep.Results[0].Offsets)
	}
}

func TestProcessErrorRecorded(t *testing.T) {
	m, f := newFixture(t, twoNodeExp(1), nil)
	f.a.fail["omega"] = true
	rep := runMaster(t, m, f.s)
	if rep.Completed != 0 {
		t.Fatal("failed run counted as completed")
	}
	rr := rep.Results[0]
	if rr.Err == nil || !strings.Contains(rr.Err.Error(), "stub failure") {
		t.Fatalf("err = %v", rr.Err)
	}
	// Cleanup still ran.
	if !strings.Contains(strings.Join(f.a.calls, ","), "cleanup:0") {
		t.Fatal("cleanup skipped after error")
	}
}

func TestMaxRunTimeAborts(t *testing.T) {
	e := twoNodeExp(1)
	m, f := newFixture(t, e, func(c *Config) { c.MaxRunTime = 10 * time.Second })
	f.a.hang["alpha"] = true
	rep := runMaster(t, m, f.s)
	rr := rep.Results[0]
	if !rr.Aborted {
		t.Fatalf("run not aborted: %+v", rr)
	}
	if rr.Duration < 10*time.Second {
		t.Fatalf("aborted after %v", rr.Duration)
	}
	if _, ok := f.bus.FindFirst(eventlog.Match{Type: "run_aborted"}); !ok {
		t.Fatal("no run_aborted event")
	}
}

func TestEnvProcessExecution(t *testing.T) {
	e := twoNodeExp(1)
	e.EnvProcesses = []desc.EnvProcess{{
		Name: "env",
		Actions: []desc.Action{
			desc.Act("env_traffic_start", "bw", "10"),
			desc.WaitEvent(desc.WaitSpec{Event: "go"}),
			desc.Act("env_traffic_stop"),
		},
	}}
	m, f := newFixture(t, e, nil)
	rep := runMaster(t, m, f.s)
	if rep.Completed != 1 {
		t.Fatalf("completed = %d (%+v)", rep.Completed, rep.Results[0])
	}
	if strings.Join(f.env.calls, ",") != "env_traffic_start,env_traffic_stop" {
		t.Fatalf("env calls = %v", f.env.calls)
	}
}

func TestEnvProcessWithoutExecutorFails(t *testing.T) {
	e := twoNodeExp(1)
	e.EnvProcesses = []desc.EnvProcess{{
		Actions: []desc.Action{desc.Act("env_traffic_start", "bw", "10")},
	}}
	m, f := newFixture(t, e, func(c *Config) { c.Env = nil })
	rep := runMaster(t, m, f.s)
	if rep.Results[0].Err == nil {
		t.Fatal("env action without executor succeeded")
	}
}

func TestStoreHarvestAndResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := twoNodeExp(2)
	m, f := newFixture(t, e, func(c *Config) { c.Store = st })
	rep := runMaster(t, m, f.s)
	if rep.Completed != 2 {
		t.Fatalf("completed = %d", rep.Completed)
	}
	// Level-2 content present.
	evs, err := st.ReadEvents(0, "A")
	if err != nil || len(evs) == 0 {
		t.Fatalf("stored events = %d, %v", len(evs), err)
	}
	if !st.RunDone(0) || !st.RunDone(1) {
		t.Fatal("runs not marked done")
	}
	// Description stored for transparency.
	if doc, err := st.ReadDescription(); err != nil || !strings.Contains(doc, "stub-exp") {
		t.Fatalf("description = %v, %v", doc, err)
	}
	_ = f

	// Resume skips both runs.
	m2, f2 := newFixture(t, e, func(c *Config) { c.Store = st; c.Resume = true })
	rep2 := runMaster(t, m2, f2.s)
	if rep2.Skipped != 2 || rep2.Completed != 0 {
		t.Fatalf("resume: %+v", rep2)
	}
	if len(f2.a.calls) != 0 {
		t.Fatalf("skipped runs still executed: %v", f2.a.calls)
	}

	// Finalize produces the level-3 DB.
	db, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.RunIDs()
	if err != nil || len(ids) != 2 {
		t.Fatalf("level-3 runs = %v, %v", ids, err)
	}
}

func TestFinalizeWithoutStoreErrors(t *testing.T) {
	m, _ := newFixture(t, twoNodeExp(1), nil)
	if _, err := m.Finalize(); err == nil {
		t.Fatal("Finalize without store succeeded")
	}
}

func TestTopologyMeasureRecorded(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.NewRunStore(dir)
	calls := 0
	m, f := newFixture(t, twoNodeExp(1), func(c *Config) {
		c.Store = st
		c.TopologyMeasure = func() string { calls++; return "A B 1\n" }
	})
	runMaster(t, m, f.s)
	if calls != 2 {
		t.Fatalf("topology measured %d times, want before+after", calls)
	}
	ems, err := st.ListExperimentMeasurements()
	if err != nil || len(ems) != 2 {
		t.Fatalf("experiment measurements = %v, %v", ems, err)
	}
	names := ems[0].Name + "," + ems[1].Name
	if !strings.Contains(names, "topology_before") || !strings.Contains(names, "topology_after") {
		t.Fatalf("measurement names = %s", names)
	}
}

func TestNewValidation(t *testing.T) {
	s := sched.NewVirtual()
	bus := eventlog.NewBus(s)
	good := twoNodeExp(1)
	if _, err := New(Config{S: s, Bus: bus}); err == nil {
		t.Error("missing Exp accepted")
	}
	bad := twoNodeExp(1)
	bad.Name = ""
	if _, err := New(Config{Exp: bad, S: s, Bus: bus}); err == nil {
		t.Error("invalid description accepted")
	}
	// Platform mapping requires handles.
	withPlatform := twoNodeExp(1)
	withPlatform.Platform = desc.Platform{Actors: []desc.PlatformNode{
		{ID: "px", Abstract: "A", Address: "1"},
		{ID: "py", Abstract: "B", Address: "2"},
	}}
	if _, err := New(Config{Exp: withPlatform, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{"A": newStub("A", s, bus)}}); err == nil {
		t.Error("missing platform handle accepted")
	}
	if _, err := New(Config{Exp: good, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{
			"A": newStub("A", s, bus), "B": newStub("B", s, bus),
		}}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestOnRunDoneObserver(t *testing.T) {
	seen := []int{}
	m, f := newFixture(t, twoNodeExp(3), func(c *Config) {
		c.OnRunDone = func(run desc.Run, rr RunResult) { seen = append(seen, run.ID) }
	})
	runMaster(t, m, f.s)
	if fmt.Sprint(seen) != "[0 1 2]" {
		t.Fatalf("observed runs = %v", seen)
	}
}

func TestExperimentLifecycleEvents(t *testing.T) {
	m, f := newFixture(t, twoNodeExp(1), nil)
	runMaster(t, m, f.s)
	// experiment_init/exit were emitted on the master's recorder; the
	// bus was reset per run, so check the final state contains
	// experiment_exit.
	if _, ok := f.bus.FindFirst(eventlog.Match{Type: "experiment_exit"}); !ok {
		t.Fatal("no experiment_exit event")
	}
}

func TestMissingRoleNodeHandle(t *testing.T) {
	// An actor mapped to a node without a handle fails the run but does
	// not wedge the experiment.
	e := twoNodeExp(1)
	e.AbstractNodes = append(e.AbstractNodes, "C")
	e.Factors[0].Levels[0].ActorMap["actor0"] = []string{"A", "C"}
	m, f := newFixture(t, e, nil)
	rep := runMaster(t, m, f.s)
	if rep.Results[0].Err == nil {
		t.Fatal("missing handle not reported")
	}
	_ = f
}

func TestAbortedRunDoesNotLeakIntoNextRun(t *testing.T) {
	// Run 0 hangs and is aborted; run 1 must execute cleanly with no
	// leftover task from run 0 executing actions.
	e := twoNodeExp(2)
	m, f := newFixture(t, e, func(c *Config) { c.MaxRunTime = 5 * time.Second })
	hangFirst := true
	orig := f.a
	_ = orig
	f.a.hang["alpha"] = true
	// Un-hang after the first run by flipping during cleanup: simplest is
	// to let both runs hang and check isolation of the counters instead.
	_ = hangFirst
	rep := runMaster(t, m, f.s)
	if !rep.Results[0].Aborted || !rep.Results[1].Aborted {
		t.Fatalf("results: %+v", rep.Results)
	}
	// The omega action (after the wait) must never have run: canceled
	// tasks stop at the cancel check.
	for _, c := range f.a.calls {
		if c == "omega" {
			t.Fatal("canceled process executed a post-abort action")
		}
	}
}

package master

import "sync"

// fanOut runs fn(slot) for every slot in [0, n), bounded to at most limit
// concurrent invocations. With limit <= 1 (or fewer than two slots) the
// calls run strictly sequentially in the caller's context — no goroutines
// at all — which is the required mode for platforms whose node handles
// are not safe for concurrent use (the in-process emulated platform
// publishes into the cooperative scheduler's event bus from its handles).
//
// With limit > 1 the slots run on real goroutines. Callers must hand out
// disjoint slot-indexed result storage so collected measurements keep the
// deterministic node order of the sequential path; fanOut itself
// guarantees only that all invocations finished when it returns.
// Blocking the calling scheduler task here is no worse than today's
// blocking sequential RPC: the cooperative scheduler stalls either way
// for the duration of the slowest call instead of the sum of all calls.
func fanOut(limit, n int, fn func(slot int)) {
	if limit <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if limit > n {
		limit = n
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, limit)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(slot)
		}(i)
	}
	wg.Wait()
}

// broadcast performs one control-plane operation per node — the four
// per-node broadcast sites of a run are PrepareRun, timesync Measure,
// CleanupRun and the harvest collection. Sequentially (Fanout <= 1) it
// preserves the serial master's exact call and span order. In parallel
// it first opens the per-node tracer spans in deterministic node order
// (RunSpans returns begin order, so trace.json keeps the sequential
// layout; under the virtual clock the timestamps are identical too) and
// then fans the operations out, each goroutine closing its own span —
// the spans become siblings under the phase span.
func (m *Master) broadcast(parent uint64, label string, run, attempt int, op func(slot int, id string)) {
	if m.cfg.Fanout <= 1 || len(m.order) < 2 {
		for slot, id := range m.order {
			sp := m.cfg.Tracer.Begin(parent, "master", "rpc",
				label+" "+id, run, attempt, nil)
			setTraceParent(m.cfg.Nodes[id], sp)
			op(slot, id)
			m.cfg.Tracer.End(sp)
		}
		return
	}
	spans := make([]uint64, len(m.order))
	for slot, id := range m.order {
		spans[slot] = m.cfg.Tracer.Begin(parent, "master", "rpc",
			label+" "+id, run, attempt, nil)
	}
	fanOut(m.cfg.Fanout, len(m.order), func(slot int) {
		setTraceParent(m.cfg.Nodes[m.order[slot]], spans[slot])
		op(slot, m.order[slot])
		m.cfg.Tracer.End(spans[slot])
	})
}

// Package master implements the ExperiMaster (§VI-A, Figs. 3 and 12): the
// controlling entity that executes experiment runs as specified in the
// abstract description.
//
// For every run the master performs the three phases of §IV-C1:
//
//	preparation — the environment is reset to a defined initial working
//	    condition (leftover packets dropped, faults cleared, caches
//	    flushed) and the per-node clock offsets are measured;
//	execution — the experiment, manipulation and environment processes
//	    run concurrently, synchronized through the event bus;
//	clean-up — every participant is terminated, measurements are
//	    harvested into the level-2 store.
//
// The master generates the treatment plan from the description, executes
// runs in plan order, and resumes aborted experiments by skipping runs the
// level-2 store marks as done.
package master

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/obs"
	"excovery/internal/process"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/timesync"
	"excovery/internal/vclock"
)

// ErrCrashed is returned by RunAll when a crash failpoint fired and no
// CrashFn is configured: the run loop stops dead without any clean-up or
// journaling, leaving on-disk state exactly as a process kill would.
// In-process crash-recovery tests run to this error, then resume.
var ErrCrashed = errors.New("master: crash failpoint fired")

// NodeHandle is the master's view of one participating node. The emulated
// platform backs it with an in-process node.Manager; the distributed
// deployment backs it with an XML-RPC proxy. The paper's node object
// semantics ("uses locking to allow only one access at a time") hold
// trivially under the cooperative scheduler.
type NodeHandle interface {
	// ID is the platform node id.
	ID() string
	// PrepareRun resets the node for a run (preparation phase).
	PrepareRun(run int)
	// CleanupRun terminates the run on the node (clean-up phase).
	CleanupRun(run int)
	// Execute performs one experiment action.
	Execute(action string, params map[string]string) error
	// Emit records an event on the node (event_flag).
	Emit(typ string, params map[string]string)
	// LocalTime reads the node's local clock (time sync probe).
	LocalTime() time.Time
	// HarvestEvents returns the node's recorded events of the run.
	HarvestEvents(run int) []eventlog.Event
	// HarvestPackets returns and clears the node's packet captures.
	HarvestPackets() []store.PacketRecord
	// HarvestExtras returns and clears the node's plugin measurements
	// (§IV-B5).
	HarvestExtras() []store.ExtraMeasurement
}

// EnvExecutor performs environment actions (traffic generation, drop-all)
// for the platform. Reset is called during run preparation and clean-up to
// stop leftover manipulations.
type EnvExecutor interface {
	Execute(action string, params map[string]string) error
	Reset()
}

// HealthChecker is an optional NodeHandle extension. When implemented
// (the XML-RPC proxy does), the master probes it before every run attempt
// and quarantines nodes that keep failing.
type HealthChecker interface {
	// Health returns nil when the node is reachable and serviceable.
	Health() error
}

// runErrorer is an optional NodeHandle extension reporting the node's
// first control-channel error of the current run (noderpc.RemoteNode).
// The master uses it to fail runs whose measurements silently went
// missing and to feed quarantine accounting.
type runErrorer interface {
	Err() error
}

// traceParentSetter is an optional NodeHandle extension (noderpc.RemoteNode
// implements it): the master hands the handle the span id under which its
// next control-channel calls should parent, and the handle carries it
// across the wire as the trailing trace_parent parameter (DESIGN.md §13).
type traceParentSetter interface {
	SetTraceParent(id uint64)
}

// traceHarvester is an optional NodeHandle extension returning the node
// host's closed spans of one run, merged into the per-run trace.json.
type traceHarvester interface {
	HarvestTrace(run int) []obs.Span
}

// metricSnapshotter is an optional NodeHandle extension for the campaign
// metric fan-in: ObsSnapshot ships the node host's registry contents over
// the control channel, ObsSource identifies the backing host so co-hosted
// nodes are collected once per host rather than once per node.
type metricSnapshotter interface {
	ObsSnapshot() ([]obs.MetricPoint, error)
	ObsSource() string
}

// FleetManager is the master's hook into a discovery-backed host fleet
// (internal/discovery.Fleet implements it). Failover re-places the run's
// nodes onto a surviving or newly joined host after the active one died;
// it returns the replacement's host id. The existing Config.Nodes handles
// must remain valid — the fleet re-points them internally.
type FleetManager interface {
	Failover(run int, nodeErrs map[string]string) (hostID string, err error)
}

// setTraceParent forwards a span id to handles that propagate it.
func setTraceParent(h NodeHandle, id uint64) {
	if t, ok := h.(traceParentSetter); ok {
		t.SetTraceParent(id)
	}
}

// RetryPolicy controls run-level recovery: §IV-C1's "aborted experiments
// resume" extended from resume-on-restart to retry-in-place.
type RetryPolicy struct {
	// MaxAttempts is how often one run may be attempted before it is
	// recorded as failed; values <= 1 mean a single attempt.
	MaxAttempts int
	// QuarantineAfter quarantines a node after this many consecutive
	// control-channel failures (failed health probes or in-run transport
	// errors); 0 disables quarantine.
	QuarantineAfter int
	// ProbationProbes converts quarantine from a permanent exclusion into
	// probation: a quarantined node is re-probed at each preflight and
	// re-admitted after this many consecutive healthy probes. 0 keeps the
	// pre-probation behaviour (quarantined forever).
	ProbationProbes int
}

// Config assembles a master.
type Config struct {
	// Exp is the experiment description (level 1).
	Exp *desc.Experiment
	// S is the scheduler everything runs on.
	S *sched.Scheduler
	// Bus is the master's event bus.
	Bus *eventlog.Bus
	// Nodes maps platform node ids to handles. Every platform actor
	// node of the description must be present.
	Nodes map[string]NodeHandle
	// Fanout bounds how many per-node control-channel operations run
	// concurrently during the broadcast phases of a run (prepare,
	// timesync, clean-up, harvest collection). Values <= 1 keep the
	// strictly sequential order — required for the in-process emulated
	// platform, whose handles publish into the cooperative scheduler's
	// event bus and are not safe for concurrent use. The distributed
	// master sets it from -fanout (default: number of nodes); its
	// XML-RPC proxies are goroutine-safe.
	Fanout int
	// Env executes environment actions; nil disallows env processes.
	Env EnvExecutor
	// Store receives level-2 data; nil keeps measurements in memory
	// only (events remain available through the Report).
	Store *store.RunStore
	// Ref is the master's reference clock; nil means the scheduler
	// clock.
	Ref vclock.Clock
	// MaxRunTime bounds one run's execution phase; 0 means 120 s.
	MaxRunTime time.Duration
	// Resume skips runs already marked done in the store.
	Resume bool
	// Retry configures run-level retry and node quarantine.
	Retry RetryPolicy
	// Journal, if set, is the write-ahead run journal: the master records
	// every attempt's begin/end and every durable completion, and on
	// Resume replays it to discard and re-execute runs that died
	// mid-attempt in a crashed session.
	Journal *store.Journal
	// PlatformSeed, if non-zero, records the emulated platform's
	// effective seed in the plan manifest; resume refuses a store taken
	// under a different one. The distributed master leaves it zero (its
	// platform lives on the node host).
	PlatformSeed int64
	// Failpoints, if set, is consulted at the master's failpoint sites
	// (currently failpoint.SiteMasterAttempt for crash injection).
	Failpoints *failpoint.Registry
	// CrashFn is invoked when a crash failpoint fires; it must not
	// return. Nil makes RunAll return ErrCrashed instead (in-process
	// crash simulation for tests). The daemons pass os.Exit.
	CrashFn func()
	// OnRunDone, if set, observes each completed run.
	OnRunDone func(run desc.Run, rr RunResult)
	// Fleet, if set, is the self-healing placement hook (DESIGN.md §14):
	// when a run attempt fails with control-channel node errors and
	// attempts remain, the master asks the fleet to re-place the run's
	// nodes onto a replacement host before the next attempt, and resets
	// the health accounting that described the dead host.
	Fleet FleetManager
	// TopologyMeasure, if set, returns a serialized topology snapshot;
	// it is recorded before and after the experiment (§IV-B4).
	TopologyMeasure func() string
	// Tracer, if set, records the hierarchical execution trace
	// (experiment → run → phase → action); per-run spans are harvested
	// into the level-2 store as trace.json.
	Tracer *obs.Tracer
	// Status, if set, tracks the live execution state served on the obs
	// /status endpoint.
	Status *obs.Status
	// Metrics, if set, receives the run loop's counters (runs
	// completed/retried/partial, health probes, quarantine).
	Metrics *obs.Registry
}

// RunResult summarizes one executed run.
type RunResult struct {
	// Run is the plan entry.
	Run desc.Run
	// Start is the run's start on the reference clock.
	Start time.Time
	// Duration is the wall (virtual) duration of the run.
	Duration time.Duration
	// Timeouts counts expired waits across all processes.
	Timeouts int
	// Err is the first process error, if any.
	Err error
	// Aborted reports that MaxRunTime expired before all processes
	// finished.
	Aborted bool
	// Events are the run's events in bus order.
	Events []eventlog.Event
	// Offsets are the per-node clock measurements of the preparation
	// phase.
	Offsets []timesync.Measurement
	// Skipped marks a run skipped by resume.
	Skipped bool
	// Attempts is the number of in-place attempts this result consumed
	// (1 without retry).
	Attempts int
	// Partial marks that measurements of this failed/aborted run were
	// harvested into the store for post-mortem analysis.
	Partial bool
	// NodeErrs maps node ids to their first control-channel error of the
	// final attempt.
	NodeErrs map[string]string
}

// Report summarizes an experiment execution.
type Report struct {
	// Plan is the executed treatment plan.
	Plan *desc.Plan
	// Results holds one entry per run, in execution order.
	Results []RunResult
	// Completed counts successfully executed runs.
	Completed int
	// Skipped counts runs skipped by resume.
	Skipped int
	// Failed counts runs that failed or aborted all their attempts.
	Failed int
	// Retried counts runs that needed more than one attempt.
	Retried int
	// Recovered counts runs whose partial state from a crashed session
	// was discarded (journal replay) before they were re-executed.
	Recovered int
	// HealthProbes and HealthFailures count preflight node probes.
	HealthProbes   int
	HealthFailures int
	// Quarantined lists nodes still quarantined at experiment end,
	// sorted. Nodes that served probation and returned are in Readmitted
	// instead.
	Quarantined []string
	// Readmitted lists nodes that were quarantined and later re-admitted
	// after ProbationProbes consecutive healthy probes, sorted.
	Readmitted []string
}

// Master executes experiments.
type Master struct {
	cfg    Config
	rec    *eventlog.Recorder // the master's own events (node "env")
	est    *timesync.Estimator
	plan   *desc.Plan
	order  []string // node ids in deterministic (sorted) order, cached
	expXML string   // the level-1 description document, encoded once

	// commits is the background commit pipeline of the current RunAll
	// (nil outside RunAll or without a store).
	commits *committer

	// Control-channel health accounting (consecutive failures per node).
	health      map[string]int
	quarantined map[string]bool
	probation   map[string]int // consecutive healthy probes while quarantined
	readmitted  map[string]bool
	probes      int
	probeFails  int

	// Observability: the open experiment span (parent of all run spans).
	expSpan uint64
}

// New validates the description, generates the plan and assembles a
// master.
func New(cfg Config) (*Master, error) {
	if cfg.Exp == nil || cfg.S == nil || cfg.Bus == nil {
		return nil, fmt.Errorf("master: Exp, S and Bus are required")
	}
	if err := desc.Validate(cfg.Exp); err != nil {
		return nil, fmt.Errorf("master: invalid description: %w", err)
	}
	plan, err := desc.GeneratePlan(cfg.Exp)
	if err != nil {
		return nil, err
	}
	if cfg.Ref == nil {
		cfg.Ref = vclock.Perfect{S: cfg.S}
	}
	if cfg.MaxRunTime == 0 {
		cfg.MaxRunTime = 120 * time.Second
	}
	// Every abstract node must be realized by a handle via the platform
	// mapping.
	for _, pn := range cfg.Exp.Platform.Actors {
		if cfg.Nodes[pn.ID] == nil {
			return nil, fmt.Errorf("master: no handle for platform node %q", pn.ID)
		}
	}
	m := &Master{cfg: cfg, plan: plan,
		est:    &timesync.Estimator{Ref: cfg.Ref, Samples: 3},
		health: map[string]int{}, quarantined: map[string]bool{},
		probation: map[string]int{}, readmitted: map[string]bool{},
	}
	// Node order and the encoded description are fixed for the master's
	// lifetime; compute them once instead of per use (the description is
	// needed by the manifest, the level-2 store and conditioning, the
	// node order by every broadcast phase of every run).
	m.order = make([]string, 0, len(cfg.Nodes))
	for id := range cfg.Nodes {
		m.order = append(m.order, id)
	}
	sort.Strings(m.order)
	xml, err := desc.EncodeString(cfg.Exp)
	if err != nil {
		return nil, fmt.Errorf("master: encode description: %w", err)
	}
	m.expXML = xml
	m.rec = eventlog.NewRecorder("env", cfg.Ref, func(ev eventlog.Event) { cfg.Bus.Publish(ev) })
	return m, nil
}

// Plan returns the generated treatment plan.
func (m *Master) Plan() *desc.Plan { return m.plan }

// RunAll executes the whole experiment. It must be called from scheduler
// task context (the facade spawns it as a task).
//
// With Retry.MaxAttempts > 1, failed and aborted runs are re-executed in
// place before being recorded — the §IV-C1 recovery promise extended from
// resume-on-restart to retry-in-place. When a run still fails after the
// final attempt, its measurements are harvested with a partial marker
// instead of being dropped.
func (m *Master) RunAll() (*Report, error) {
	rep := &Report{Plan: m.plan}
	replay, err := m.prepareDurability()
	if err != nil {
		return nil, err
	}
	if m.cfg.Store != nil {
		// The commit pipeline: run N's staged harvest, done marker and
		// journal completion happen on a background goroutine so run
		// N+1's preparation overlaps the disk commit. Every return path
		// drains it first.
		m.commits = newCommitter(m)
		defer m.stopCommitter()
	}
	m.experimentInit()
	maxAttempts := m.cfg.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for _, run := range m.plan.Runs {
		if m.cfg.Resume && (m.cfg.Store != nil && m.cfg.Store.RunDone(run.ID) ||
			replay.Done[run.ID]) {
			rep.Results = append(rep.Results, RunResult{Run: run, Skipped: true})
			rep.Skipped++
			m.counter(obs.MRunsSkipped, "runs skipped by resume").Inc()
			m.cfg.Status.RunFinished("skipped", false)
			continue
		}
		// Journal replay: this run has lifecycle records but no durable
		// completion — the previous session died mid-attempt (or right
		// before commit). Whatever level-2 state it left is
		// untrustworthy; discard it and re-execute from scratch.
		if m.cfg.Resume && m.cfg.Store != nil && replay.InDoubt(run.ID) {
			if err := m.cfg.Store.DiscardRun(run.ID); err != nil {
				return nil, fmt.Errorf("master: run %d: discarding crashed state: %w", run.ID, err)
			}
			rep.Recovered++
			m.counter(obs.MRunsRecovered,
				"crashed runs whose partial state was discarded and re-executed").Inc()
			m.rec.Emit(eventlog.EvRunRecovered, map[string]string{
				"run": fmt.Sprint(run.ID), "attempts": fmt.Sprint(replay.Attempts[run.ID])})
		}
		var rr RunResult
		for attempt := 1; attempt <= maxAttempts; attempt++ {
			if attempt > 1 {
				// Re-attempt barrier: pending commits of earlier runs
				// finish before this run executes again, keeping the
				// journal's retry ordering that of the serial master.
				m.drainCommits()
			}
			m.journalAppend(m.cfg.Journal.Begin(run.ID, attempt,
				desc.RunSeed(m.cfg.Exp.Seed, run.ID), run.TreatmentIndex))
			if d := m.cfg.Failpoints.Eval(failpoint.SiteMasterAttempt); d.Act == failpoint.Crash {
				// Crash barrier: a simulated kill must observe a settled
				// pipeline, exactly like the sequential master at this
				// point (a real kill that beats the drain is covered by
				// journal replay: the in-flight run resumes as in-doubt).
				m.drainCommits()
				m.crash()
				return rep, ErrCrashed
			}
			rr = m.executeRun(run, attempt)
			m.journalAppend(m.cfg.Journal.End(run.ID, attempt, outcomeOf(rr), errStringOf(rr)))
			if rr.Err == nil && !rr.Aborted {
				break
			}
			if attempt < maxAttempts {
				// Self-healing fleet (DESIGN.md §14): if the failure looks
				// like a dead backing host, re-place the run's nodes before
				// the next attempt re-executes from the same derived seed.
				m.maybeFailover(run, &rr)
			}
		}
		retried := rr.Attempts > 1
		if retried {
			rep.Retried++
			m.counter(obs.MRunsRetried,
				"runs that needed more than one attempt").Inc()
		}
		if rr.Err == nil && !rr.Aborted {
			// Commit the run durably: staged harvest renamed into place,
			// fsync'd done marker, then the journal's completion record.
			// Collection happens here, in task context, before the next
			// run's PrepareRun resets node state; the disk commit itself
			// is pipelined onto the committer.
			if m.cfg.Store != nil {
				m.commits.enqueue(m.collectHarvest(run, &rr, false))
			} else {
				// No store, no artifact — but the campaign fan-in still
				// feeds the live /metrics and /status surfaces.
				m.fanInMetrics(run.ID)
				m.journalAppend(m.cfg.Journal.Done(run.ID))
			}
			rep.Completed++
			m.counter(obs.MRunsCompleted, "successfully executed runs").Inc()
			m.cfg.Status.RunFinished("completed", retried)
		} else {
			// Failure barrier: settle the pipeline before the partial
			// harvest so its store writes cannot interleave with a
			// pending commit.
			m.drainCommits()
			m.harvestPartial(run, &rr)
			rep.Failed++
			m.counter(obs.MRunsFailed,
				"runs that failed all attempts").Inc()
			if rr.Partial {
				m.counter(obs.MRunsPartial,
					"failed runs whose measurements were salvaged").Inc()
			}
			m.cfg.Status.RunFinished("failed", retried)
		}
		rep.Results = append(rep.Results, rr)
		if m.cfg.OnRunDone != nil {
			m.cfg.OnRunDone(run, rr)
		}
	}
	// Exit barrier: every durable commit lands (and its deferred events
	// are emitted) before experiment_exit is recorded.
	m.drainCommits()
	m.experimentExit()
	rep.HealthProbes, rep.HealthFailures = m.probes, m.probeFails
	for id, q := range m.quarantined {
		if q {
			rep.Quarantined = append(rep.Quarantined, id)
		}
	}
	sort.Strings(rep.Quarantined)
	for id := range m.readmitted {
		rep.Readmitted = append(rep.Readmitted, id)
	}
	sort.Strings(rep.Readmitted)
	return rep, nil
}

// journalAppend accounts one write-ahead journal append (no-op without a
// journal). Append errors — a full or vanished disk — surface as events
// and a counter rather than aborting the experiment: the journal degrades
// to the pre-journal done-marker guarantees.
func (m *Master) journalAppend(err error) {
	if m.cfg.Journal == nil {
		return
	}
	if err != nil {
		m.counter(obs.MJournalWriteErrors,
			"failed write-ahead journal appends").Inc()
		m.rec.Emit(eventlog.EvJournalWriteFailed, map[string]string{"err": err.Error()})
		return
	}
	m.counter(obs.MJournalRecords,
		"write-ahead journal records appended").Inc()
}

// outcomeOf maps a run result to its journal outcome string.
func outcomeOf(rr RunResult) string {
	switch {
	case rr.Aborted:
		return "aborted"
	case rr.Err != nil:
		return "failed"
	}
	return "ok"
}

func errStringOf(rr RunResult) string {
	if rr.Err != nil {
		return rr.Err.Error()
	}
	return ""
}

// crash honors a fired crash failpoint. The configured CrashFn must not
// return (the daemons pass a hard os.Exit); without one the caller
// unwinds with ErrCrashed, which skips all clean-up and journaling — the
// in-process equivalent of a kill.
func (m *Master) crash() {
	m.counter(obs.MCrashFailpoints, "crash failpoints fired").Inc()
	if m.cfg.CrashFn != nil {
		m.cfg.CrashFn()
		return
	}
	if m.cfg.Journal == nil && m.cfg.Store == nil {
		// A crash without durable state would silently lose runs; make
		// the misconfiguration loud in development.
		fmt.Fprintln(os.Stderr, "master: crash failpoint fired without journal or store")
	}
}

// prepareDurability verifies (on resume) or records the plan manifest and
// surfaces the journal's replay state: which runs completed durably and
// which died mid-attempt in a crashed session.
func (m *Master) prepareDurability() (store.Replay, error) {
	replay := m.cfg.Journal.Replay()
	if m.cfg.Store == nil {
		return replay, nil
	}
	manifest := store.PlanManifest{
		DescriptionHash: store.HashDescription(m.expXML),
		Seed:            m.cfg.Exp.Seed,
		PlanLen:         len(m.plan.Runs),
		PlatformSeed:    m.cfg.PlatformSeed,
		Flags: map[string]string{
			"max_attempts": fmt.Sprint(m.cfg.Retry.MaxAttempts),
			"max_run_time": m.cfg.MaxRunTime.String(),
		},
	}
	if m.cfg.Resume {
		if err := m.cfg.Store.VerifyManifest(manifest); err != nil {
			return replay, err
		}
	}
	if err := m.cfg.Store.WriteManifest(manifest); err != nil {
		return replay, err
	}
	if replay.Records > 0 {
		m.counter(obs.MJournalReplayedRecords,
			"journal records replayed at session start").Add(int64(replay.Records))
	}
	return replay, nil
}

// maybeFailover asks the fleet for a replacement host after a failed
// attempt whose node errors implicate the control channel. On success the
// per-node health accounting is reset — consecutive failures, quarantine
// and probation described the dead host, not its replacement — so the
// retry starts with a clean slate on the new host.
func (m *Master) maybeFailover(run desc.Run, rr *RunResult) {
	if m.cfg.Fleet == nil || len(rr.NodeErrs) == 0 {
		return
	}
	m.rec.Emit(eventlog.EvFleetHostLost, map[string]string{
		"run": fmt.Sprint(run.ID), "node_errs": fmt.Sprint(len(rr.NodeErrs))})
	host, err := m.cfg.Fleet.Failover(run.ID, rr.NodeErrs)
	if err != nil {
		m.counter(obs.MMasterFailoverErrors,
			"failovers that found no replacement host").Inc()
		m.rec.Emit(eventlog.EvFleetFailoverFailed, map[string]string{
			"run": fmt.Sprint(run.ID), "err": err.Error()})
		return
	}
	for _, id := range m.order {
		m.health[id] = 0
		delete(m.quarantined, id)
		delete(m.probation, id)
		m.cfg.Status.NodeHealthy(id)
	}
	m.counter(obs.MMasterFailovers,
		"mid-campaign host replacements").Inc()
	m.rec.Emit(eventlog.EvRunReplaced, map[string]string{
		"run": fmt.Sprint(run.ID), "host": host})
}

// preflight verifies every node's control channel before a run attempt
// (§IV-C1 preparation, hardened). Quarantined nodes fail fast — unless
// ProbationProbes grants them a probation probe, through which they earn
// re-admission; probe failures count toward quarantine. On failure the
// offending node id is returned alongside the error, so the attempt's
// NodeErrs implicate the node (and its backing host) even though the run
// never reached the wire — the fleet failover path keys off that.
func (m *Master) preflight(run desc.Run) (string, error) {
	for _, id := range m.nodeOrder() {
		if m.quarantined[id] {
			if err := m.probeProbation(run, id); err != nil {
				return id, err
			}
			// The node served probation and is re-admitted; its probe
			// already succeeded, so move on to the next node.
			continue
		}
		hc, ok := m.cfg.Nodes[id].(HealthChecker)
		if !ok {
			continue
		}
		m.probes++
		m.counter(obs.MHealthProbes, "preflight node health probes").Inc()
		if err := hc.Health(); err != nil {
			m.probeFails++
			m.counter(obs.MHealthProbeFailures,
				"failed preflight node health probes").Inc()
			m.rec.Emit(eventlog.EvNodeHealthFailed, map[string]string{
				"node": id, "err": err.Error()})
			m.noteNodeFailure(id, err.Error())
			return id, fmt.Errorf("master: run %d: node %s unhealthy: %w", run.ID, id, err)
		}
		m.health[id] = 0
		m.cfg.Status.NodeHealthy(id)
	}
	return "", nil
}

// probeProbation gives a quarantined node its probation probe: with
// ProbationProbes > 0, each preflight re-probes the node; after that many
// consecutive healthy probes it is re-admitted. Returns nil exactly when
// the node was re-admitted; otherwise the run fails fast as before, but
// the probe advanced (or reset) the node's probation progress.
func (m *Master) probeProbation(run desc.Run, id string) error {
	need := m.cfg.Retry.ProbationProbes
	hc, isChecker := m.cfg.Nodes[id].(HealthChecker)
	if need <= 0 || !isChecker {
		return fmt.Errorf("master: run %d: node %s is quarantined", run.ID, id)
	}
	m.probes++
	m.counter(obs.MHealthProbes, "preflight node health probes").Inc()
	if err := hc.Health(); err != nil {
		m.probeFails++
		m.counter(obs.MHealthProbeFailures,
			"failed preflight node health probes").Inc()
		m.probation[id] = 0
		m.cfg.Status.NodeProbation(id, 0, need)
		return fmt.Errorf("master: run %d: node %s is quarantined (probe failed: %v)",
			run.ID, id, err)
	}
	m.probation[id]++
	if m.probation[id] < need {
		m.cfg.Status.NodeProbation(id, m.probation[id], need)
		m.rec.Emit(eventlog.EvNodeProbation, map[string]string{
			"node": id, "healthy": fmt.Sprint(m.probation[id]), "need": fmt.Sprint(need)})
		return fmt.Errorf("master: run %d: node %s on probation (%d/%d healthy probes)",
			run.ID, id, m.probation[id], need)
	}
	delete(m.quarantined, id)
	m.probation[id] = 0
	m.health[id] = 0
	m.readmitted[id] = true
	m.counter(obs.MNodesReadmitted,
		"quarantined nodes re-admitted after probation").Inc()
	m.rec.Emit(eventlog.EvNodeReadmitted, map[string]string{
		"node": id, "probes": fmt.Sprint(need)})
	m.cfg.Status.NodeReadmitted(id)
	return nil
}

// noteNodeFailure advances a node's consecutive-failure count and
// quarantines it once the policy threshold is crossed.
func (m *Master) noteNodeFailure(id, errStr string) {
	m.health[id]++
	m.cfg.Status.NodeFailed(id, errStr, m.health[id])
	q := m.cfg.Retry.QuarantineAfter
	if q > 0 && m.health[id] >= q && !m.quarantined[id] {
		m.quarantined[id] = true
		m.probation[id] = 0
		m.cfg.Status.NodeQuarantined(id)
		m.counter(obs.MNodesQuarantined,
			"nodes quarantined for repeated control-channel failures").Inc()
		m.rec.Emit(eventlog.EvNodeQuarantined, map[string]string{
			"node": id, "failures": fmt.Sprint(m.health[id])})
	}
}

// counter is a nil-safe shortcut into the configured metrics registry.
func (m *Master) counter(name, help string) *obs.Counter {
	return m.cfg.Metrics.Counter(name, help)
}

// experimentInit performs the preparations before all individual runs
// (§IV-C1 experiment_init) and records the initial topology.
func (m *Master) experimentInit() {
	m.rec.SetRun(-1)
	m.cfg.Status.ExperimentStarted(m.cfg.Exp.Name, len(m.plan.Runs))
	m.expSpan = m.cfg.Tracer.Begin(0, "master", "experiment", m.cfg.Exp.Name,
		-1, 0, map[string]string{"seed": fmt.Sprint(m.cfg.Exp.Seed)})
	m.rec.Emit(eventlog.EvExperimentInit, map[string]string{"name": m.cfg.Exp.Name})
	if m.cfg.Store != nil {
		m.cfg.Store.WriteDescription(m.expXML)
		if m.cfg.TopologyMeasure != nil {
			m.cfg.Store.WriteExperimentMeasurement("master", "topology_before.txt",
				[]byte(m.cfg.TopologyMeasure()))
		}
	}
}

func (m *Master) experimentExit() {
	m.rec.SetRun(-1)
	if m.cfg.Store != nil && m.cfg.TopologyMeasure != nil {
		m.cfg.Store.WriteExperimentMeasurement("master", "topology_after.txt",
			[]byte(m.cfg.TopologyMeasure()))
	}
	m.rec.Emit(eventlog.EvExperimentExit, nil)
	m.cfg.Tracer.End(m.expSpan)
	m.cfg.Status.ExperimentFinished()
}

// rawTreatment flattens a run's treatment into factor → raw value for
// status and trace annotation. Actor-map levels have no scalar value and
// are skipped.
func rawTreatment(run desc.Run) map[string]string {
	out := map[string]string{}
	for fid, l := range run.Treatment {
		if l.Raw != "" {
			out[fid] = l.Raw
		}
	}
	return out
}

// executeRun performs one run attempt's three phases.
func (m *Master) executeRun(run desc.Run, attempt int) RunResult {
	s := m.cfg.S
	rr := RunResult{Run: run, Start: m.cfg.Ref.Now(), Attempts: attempt}

	// Observability: one span per attempt (experiment → run), annotated
	// with the derived run seed and the applied treatment so a trace is
	// self-describing.
	treat := rawTreatment(run)
	m.counter(obs.MRunAttempts,
		"run attempts, including in-place retries").Inc()
	m.cfg.Status.RunStarted(run.ID, attempt, treat)
	runArgs := map[string]string{
		"seed": fmt.Sprint(desc.RunSeed(m.cfg.Exp.Seed, run.ID)),
	}
	for fid, v := range treat {
		runArgs[fid] = v
	}
	runSpan := m.cfg.Tracer.Begin(m.expSpan, "master", "run",
		fmt.Sprintf("run %d", run.ID), run.ID, attempt, runArgs)
	endRun := func() {
		if rr.Err != nil {
			m.cfg.Tracer.EndWith(runSpan, map[string]string{"err": rr.Err.Error()})
		} else if rr.Aborted {
			m.cfg.Tracer.EndWith(runSpan, map[string]string{"aborted": "true"})
		} else {
			m.cfg.Tracer.End(runSpan)
		}
	}

	// --- preparation phase ---
	m.cfg.Status.PhaseChanged("prepare")
	prepSpan := m.cfg.Tracer.Begin(runSpan, "master", "phase", "prepare",
		run.ID, attempt, nil)
	// Preflight probes and other pre-broadcast RPCs parent under the
	// prepare phase; each broadcast site then narrows the parent to its
	// per-node rpc span.
	for _, id := range m.order {
		setTraceParent(m.cfg.Nodes[id], prepSpan)
	}
	m.cfg.Bus.Reset()
	m.rec.SetRun(run.ID)
	if attempt > 1 {
		m.rec.Emit(eventlog.EvRunRetry, map[string]string{
			"run": fmt.Sprint(run.ID), "attempt": fmt.Sprint(attempt)})
	}
	if id, err := m.preflight(run); err != nil {
		rr.Err = err
		if id != "" {
			rr.NodeErrs = map[string]string{id: err.Error()}
		}
		rr.Duration = m.cfg.Ref.Now().Sub(rr.Start)
		rr.Events = m.cfg.Bus.Snapshot()
		m.cfg.Tracer.EndWith(prepSpan, map[string]string{"err": err.Error()})
		endRun()
		return rr
	}
	if m.cfg.Env != nil {
		m.cfg.Env.Reset()
	}
	m.broadcast(prepSpan, "prepare", run.ID, attempt, func(slot int, id string) {
		m.cfg.Nodes[id].PrepareRun(run.ID)
	})
	// Preliminary measurements: per-node clock offsets (§IV-B3). Results
	// land in slots indexed by node order, so the stored offsets are
	// byte-identical to the sequential master's.
	offsets := make([]timesync.Measurement, len(m.order))
	m.broadcast(prepSpan, "timesync", run.ID, attempt, func(slot int, id string) {
		offsets[slot] = m.est.Measure(id, m.cfg.Nodes[id].LocalTime)
	})
	rr.Offsets = offsets
	m.cfg.Tracer.End(prepSpan)

	// --- execution phase ---
	m.cfg.Status.PhaseChanged("execute")
	execSpan := m.cfg.Tracer.Begin(runSpan, "master", "phase", "execute",
		run.ID, attempt, nil)
	// Execution-phase RPCs (Execute, Emit) come from concurrent process
	// tasks sharing each node's handle, so the whole phase parents under
	// the execute span rather than per-action spans.
	for _, id := range m.order {
		setTraceParent(m.cfg.Nodes[id], execSpan)
	}
	roles := desc.RolesFor(m.cfg.Exp, run)
	wg := s.NewWaitGroup(fmt.Sprintf("run %d", run.ID))
	// Process outcomes are written from multiple scheduler tasks; under
	// the virtual scheduler those are serialized, but realtime mode runs
	// them on real goroutines — guard the shared state so the execution
	// phase is race-clean by construction.
	var execMu sync.Mutex
	var firstErr error
	timeouts := 0
	var canceled atomic.Bool

	setErr := func(err error) {
		execMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		execMu.Unlock()
	}

	launch := func(name string, ctx *process.Ctx, actions []desc.Action) {
		ctx.Canceled = canceled.Load
		ctx.Trace = m.cfg.Tracer
		ctx.SpanParent = execSpan
		ctx.Track = name
		ctx.Attempt = attempt
		wg.Add(1)
		s.Go(name, func() {
			defer wg.Done()
			res, err := ctx.RunSequence(actions)
			execMu.Lock()
			timeouts += len(res.Timeouts)
			if err != nil && err != process.ErrCanceled && firstErr == nil {
				firstErr = err
			}
			execMu.Unlock()
		})
	}

	emit := func(nodeID string, typ string, params map[string]string) {
		if nodeID == "" {
			m.rec.Emit(typ, params)
			return
		}
		m.cfg.Nodes[nodeID].Emit(typ, params)
	}

	for _, np := range m.cfg.Exp.NodeProcesses {
		np := np
		for _, nodeID := range roles[np.Actor] {
			nodeID := nodeID
			h := m.cfg.Nodes[nodeID]
			if h == nil {
				setErr(fmt.Errorf("master: run %d: no handle for node %q", run.ID, nodeID))
				continue
			}
			exec := process.ExecutorFunc(func(_, action string, params map[string]string) error {
				if action == "sd_init" && params["role"] == "" {
					params["role"] = np.Name
				}
				return h.Execute(action, params)
			})
			ctx := &process.Ctx{S: s, Bus: m.cfg.Bus, Run: run, Roles: roles,
				Node: nodeID, Emit: emit, Exec: exec}
			launch(fmt.Sprintf("proc %s@%s", np.Actor, nodeID), ctx, np.Actions)
		}
	}
	for _, mp := range m.cfg.Exp.ManipProcesses {
		mp := mp
		for _, nodeID := range roles[mp.Actor] {
			nodeID := nodeID
			h := m.cfg.Nodes[nodeID]
			if h == nil {
				continue
			}
			exec := process.ExecutorFunc(func(_, action string, params map[string]string) error {
				return h.Execute(action, params)
			})
			ctx := &process.Ctx{S: s, Bus: m.cfg.Bus, Run: run, Roles: roles,
				Node: nodeID, Emit: emit, Exec: exec}
			launch(fmt.Sprintf("manip %s@%s", mp.Actor, nodeID), ctx, mp.Actions)
		}
	}
	for i, ep := range m.cfg.Exp.EnvProcesses {
		ep := ep
		exec := process.ExecutorFunc(func(_, action string, params map[string]string) error {
			if m.cfg.Env == nil {
				return fmt.Errorf("master: no environment executor for %q", action)
			}
			params["__run"] = fmt.Sprint(run.ID)
			return m.cfg.Env.Execute(action, params)
		})
		ctx := &process.Ctx{S: s, Bus: m.cfg.Bus, Run: run, Roles: roles,
			Node: "", Emit: emit, Exec: exec}
		launch(fmt.Sprintf("env %d", i), ctx, ep.Actions)
	}

	if !wg.WaitTimeout(m.cfg.MaxRunTime) {
		rr.Aborted = true
		m.counter(obs.MRunsAborted,
			"run attempts aborted by MaxRunTime").Inc()
		m.rec.Emit(eventlog.EvRunAborted, map[string]string{"run": fmt.Sprint(run.ID)})
		// Cancel leftover process tasks: waiters on the bus give up at
		// their next wake-up and the cancel flag stops further actions,
		// so orphaned tasks cannot leak into later runs.
		canceled.Store(true)
		m.cfg.Bus.CancelWaiters()
		wg.WaitTimeout(time.Second)
	}
	execMu.Lock()
	rr.Timeouts = timeouts
	rr.Err = firstErr
	execMu.Unlock()
	if rr.Aborted {
		m.cfg.Tracer.EndWith(execSpan, map[string]string{"aborted": "true"})
	} else {
		m.cfg.Tracer.End(execSpan)
	}

	// --- clean-up phase ---
	m.cfg.Status.PhaseChanged("cleanup")
	cleanSpan := m.cfg.Tracer.Begin(runSpan, "master", "phase", "cleanup",
		run.ID, attempt, nil)
	if m.cfg.Env != nil {
		m.cfg.Env.Reset()
	}
	m.broadcast(cleanSpan, "cleanup", run.ID, attempt, func(slot int, id string) {
		m.cfg.Nodes[id].CleanupRun(run.ID)
	})
	m.cfg.Tracer.End(cleanSpan)
	rr.Duration = m.cfg.Ref.Now().Sub(rr.Start)
	rr.Events = m.cfg.Bus.Snapshot()

	// Control-channel accounting: a run whose node proxies swallowed
	// transport errors (lost emits, failed harvest preludes) did not
	// produce trustworthy measurements — surface that as a run error so
	// the retry layer re-executes it.
	for _, id := range m.nodeOrder() {
		re, ok := m.cfg.Nodes[id].(runErrorer)
		if !ok {
			continue
		}
		if nerr := re.Err(); nerr != nil {
			if rr.NodeErrs == nil {
				rr.NodeErrs = map[string]string{}
			}
			rr.NodeErrs[id] = nerr.Error()
			m.noteNodeFailure(id, nerr.Error())
			if rr.Err == nil {
				rr.Err = fmt.Errorf("master: run %d: control channel to node %s: %w",
					run.ID, id, nerr)
			}
		} else {
			m.health[id] = 0
			m.cfg.Status.NodeHealthy(id)
		}
	}

	// The run span must close before harvesting so trace.json contains
	// the complete attempt. Harvest itself happens in RunAll, where the
	// staged level-2 commit and journal completion are sequenced.
	endRun()
	return rr
}

// harvestPartial salvages measurements of a run that failed all its
// attempts: events and packets are written with a partial marker in
// RunInfo so post-mortems are possible, but the run is NOT marked done —
// a resumed session re-executes it. Unlike the success path this commits
// synchronously (the caller already drained the pipeline).
func (m *Master) harvestPartial(run desc.Run, rr *RunResult) {
	if m.cfg.Store == nil {
		return
	}
	hd := m.collectHarvest(run, rr, true)
	if err := m.commitHarvest(hd); err != nil {
		m.rec.Emit(eventlog.EvRunHarvestFailed, map[string]string{
			"run": fmt.Sprint(run.ID), "err": err.Error()})
		return
	}
	rr.Partial = true
	m.rec.Emit(eventlog.EvRunPartialHarvest, map[string]string{"run": fmt.Sprint(run.ID)})
}

// envEvents extracts the master's own events of one run.
func (m *Master) envEvents(run int) []eventlog.Event {
	return m.rec.RunEvents(run)
}

// nodeOrder returns the handle ids sorted for deterministic iteration
// (cached at construction; callers must not mutate the slice).
func (m *Master) nodeOrder() []string { return m.order }

// Finalize conditions the level-2 store into a level-3 database (§IV-F).
func (m *Master) Finalize() (*store.ExperimentDB, error) {
	if m.cfg.Store == nil {
		return nil, fmt.Errorf("master: no store configured")
	}
	return store.Condition(m.cfg.Store, store.Meta{
		ExpXML:  m.expXML,
		Name:    m.cfg.Exp.Name,
		Comment: m.cfg.Exp.Comment,
	})
}

package master

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"excovery/internal/eventlog"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/store"
)

// sickNode wraps a stub with a controllable health probe and per-run
// transport-error reporting, mimicking noderpc.RemoteNode.
type sickNode struct {
	*stubNode
	healthErr  error
	healthFail int // fail the first n probes, then succeed
	probes     int
	runErr     error
}

func (n *sickNode) Health() error {
	n.probes++
	if n.healthFail > 0 {
		n.healthFail--
		return errors.New("probe failed")
	}
	return n.healthErr
}

func (n *sickNode) Err() error { return n.runErr }

func TestRunLevelRetryRecoversTransientFailure(t *testing.T) {
	m, f := newFixture(t, twoNodeExp(1), func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 3}
	})
	f.a.failN["alpha"] = 1 // first attempt fails, second succeeds
	rep := runMaster(t, m, f.s)
	if rep.Completed != 1 || rep.Retried != 1 {
		t.Fatalf("report: completed=%d retried=%d", rep.Completed, rep.Retried)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Attempts != 2 {
		t.Fatalf("result: err=%v attempts=%d", rr.Err, rr.Attempts)
	}
	// The retried attempt announced itself on the bus.
	if _, ok := f.bus.FindFirst(eventlog.Match{Type: "run_retry"}); !ok {
		t.Fatal("no run_retry event")
	}
}

func TestRunLevelRetryExhausted(t *testing.T) {
	m, f := newFixture(t, twoNodeExp(1), func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 2}
	})
	f.a.fail["alpha"] = true // every attempt fails
	rep := runMaster(t, m, f.s)
	if rep.Completed != 0 || rep.Retried != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if rr := rep.Results[0]; rr.Err == nil || rr.Attempts != 2 {
		t.Fatalf("result: err=%v attempts=%d", rr.Err, rr.Attempts)
	}
	// Each attempt ran the full three phases.
	joined := strings.Join(f.a.calls, ",")
	if strings.Count(joined, "prepare:0") != 2 || strings.Count(joined, "cleanup:0") != 2 {
		t.Fatalf("calls = %s", joined)
	}
}

func TestPreflightHealthFailureRetries(t *testing.T) {
	e := twoNodeExp(1)
	s, bus := newFixtureParts()
	sick := &sickNode{stubNode: newStub("A", s, bus), healthFail: 1}
	b := newStub("B", s, bus)
	m, err := New(Config{Exp: e, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{"A": sick, "B": b},
		Env:   &stubEnv{},
		Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep := runMaster(t, m, s)
	// Attempt 1 fails preflight (probe error, no phases run); attempt 2
	// probes healthy and completes.
	if rep.Completed != 1 || rep.HealthFailures != 1 || rep.HealthProbes != 2 {
		t.Fatalf("report: completed=%d probes=%d failures=%d",
			rep.Completed, rep.HealthProbes, rep.HealthFailures)
	}
	if got := strings.Count(strings.Join(sick.calls, ","), "prepare:0"); got != 1 {
		t.Fatalf("unhealthy attempt still prepared the node: %v", sick.calls)
	}
}

func TestPersistentlyFailingNodeQuarantined(t *testing.T) {
	e := twoNodeExp(3)
	s, bus := newFixtureParts()
	sick := &sickNode{stubNode: newStub("A", s, bus), healthErr: errors.New("dead")}
	b := newStub("B", s, bus)
	m, err := New(Config{Exp: e, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{"A": sick, "B": b},
		Env:   &stubEnv{},
		Retry: RetryPolicy{MaxAttempts: 2, QuarantineAfter: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep := runMaster(t, m, s)
	if rep.Completed != 0 {
		t.Fatalf("completed = %d with a dead node", rep.Completed)
	}
	if fmt.Sprint(rep.Quarantined) != "[A]" {
		t.Fatalf("quarantined = %v", rep.Quarantined)
	}
	// Probed twice (run 0, attempts 1+2), quarantined on the second
	// failure; every later attempt fails fast without touching the node.
	if sick.probes != 2 {
		t.Fatalf("probes = %d, want 2 (quarantine must stop probing)", sick.probes)
	}
	for _, rr := range rep.Results {
		if rr.Err == nil || !strings.Contains(rr.Err.Error(), "quarantin") {
			if !strings.Contains(rr.Err.Error(), "unhealthy") {
				t.Fatalf("run %d err = %v", rr.Run.ID, rr.Err)
			}
		}
	}
	// The quarantine event landed in the event trail of the attempt that
	// crossed the threshold (run 0, attempt 2).
	quarantined := false
	for _, ev := range rep.Results[0].Events {
		if ev.Type == "node_quarantined" && ev.Param("node") == "A" {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("no node_quarantined event in run 0 trail: %v", rep.Results[0].Events)
	}
}

func TestControlChannelErrorFailsRun(t *testing.T) {
	// A node that swallows transport errors (lost emits) must fail the
	// run so the data is not silently incomplete.
	e := twoNodeExp(1)
	s, bus := newFixtureParts()
	sick := &sickNode{stubNode: newStub("A", s, bus), runErr: errors.New("lost emit")}
	b := newStub("B", s, bus)
	m, err := New(Config{Exp: e, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{"A": sick, "B": b}, Env: &stubEnv{}})
	if err != nil {
		t.Fatal(err)
	}
	rep := runMaster(t, m, s)
	rr := rep.Results[0]
	if rr.Err == nil || !strings.Contains(rr.Err.Error(), "control channel") {
		t.Fatalf("err = %v", rr.Err)
	}
	if rr.NodeErrs["A"] != "lost emit" {
		t.Fatalf("NodeErrs = %v", rr.NodeErrs)
	}
}

func TestPartialHarvestOfFailedRun(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, f := newFixture(t, twoNodeExp(1), func(c *Config) {
		c.Store = st
		c.Retry = RetryPolicy{MaxAttempts: 2}
	})
	f.a.fail["omega"] = true // fails late: alpha already produced events
	rep := runMaster(t, m, f.s)
	if rep.Completed != 0 {
		t.Fatal("failed run counted completed")
	}
	if !rep.Results[0].Partial {
		t.Fatal("result not marked partial")
	}
	// The run is not done — resume must re-execute it.
	if st.RunDone(0) {
		t.Fatal("partial run marked done")
	}
	info, err := st.ReadRunInfo(0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Partial || info.Attempts != 2 || !strings.Contains(info.Err, "stub failure") {
		t.Fatalf("runinfo = %+v", info)
	}
	// Salvaged events are present for post-mortems.
	evs, err := st.ReadEvents(0, "A")
	if err != nil || len(evs) == 0 {
		t.Fatalf("salvaged events = %d, %v", len(evs), err)
	}
	found := false
	for _, ev := range evs {
		if ev.Type == "alpha_done" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alpha_done missing from salvaged events: %v", evs)
	}
}

func TestAbortedRunPartialHarvest(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.NewRunStore(dir)
	m, f := newFixture(t, twoNodeExp(1), func(c *Config) {
		c.Store = st
		c.MaxRunTime = 5 * 1e9 // 5 s virtual
	})
	f.a.hang["alpha"] = true
	rep := runMaster(t, m, f.s)
	if !rep.Results[0].Aborted || !rep.Results[0].Partial {
		t.Fatalf("result: %+v", rep.Results[0])
	}
	info, err := st.ReadRunInfo(0)
	if err != nil || !info.Partial || !info.Aborted {
		t.Fatalf("runinfo = %+v, %v", info, err)
	}
	if st.RunDone(0) {
		t.Fatal("aborted run marked done")
	}
}

func TestQuarantinedNodeServesProbationAndReturns(t *testing.T) {
	// Run 0: the probe fails and node A is quarantined on the spot
	// (QuarantineAfter: 1). With ProbationProbes: 2 the node is re-probed
	// at every later preflight: run 1 is its first healthy probe (1/2,
	// run still fails fast), run 2 its second — A is re-admitted and the
	// run completes, as do runs 3 and 4.
	e := twoNodeExp(5)
	s, bus := newFixtureParts()
	sick := &sickNode{stubNode: newStub("A", s, bus), healthFail: 1}
	b := newStub("B", s, bus)
	status := obs.NewStatus(s.Now)
	m, err := New(Config{Exp: e, S: s, Bus: bus,
		Nodes:  map[string]NodeHandle{"A": sick, "B": b},
		Env:    &stubEnv{},
		Status: status,
		Retry:  RetryPolicy{MaxAttempts: 1, QuarantineAfter: 1, ProbationProbes: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep := runMaster(t, m, s)
	if rep.Completed != 3 || rep.Failed != 2 {
		t.Fatalf("completed=%d failed=%d, want 3/2", rep.Completed, rep.Failed)
	}
	if fmt.Sprint(rep.Readmitted) != "[A]" || len(rep.Quarantined) != 0 {
		t.Fatalf("readmitted=%v quarantined=%v", rep.Readmitted, rep.Quarantined)
	}
	// One probe per run: the quarantined node keeps being probed instead
	// of being written off forever.
	if sick.probes != 5 {
		t.Fatalf("probes = %d, want 5", sick.probes)
	}
	// Run 1 failed with a probation progress message, not a permanent
	// quarantine verdict.
	if err := rep.Results[1].Err; err == nil || !strings.Contains(err.Error(), "on probation (1/2") {
		t.Fatalf("run 1 err = %v", err)
	}
	// The node_readmitted event landed in the re-admitting run's trail.
	readmitted := false
	for _, ev := range rep.Results[2].Events {
		if ev.Type == "node_readmitted" && ev.Param("node") == "A" {
			readmitted = true
		}
	}
	if !readmitted {
		t.Fatalf("no node_readmitted event in run 2 trail: %v", rep.Results[2].Events)
	}
	// /status reflects the journey's end state.
	ns := status.Snapshot().Nodes["A"]
	if ns.Health != "ok" || !ns.Readmitted {
		t.Fatalf("status node A = %+v", ns)
	}
}

func TestFailedProbationProbeResetsProgress(t *testing.T) {
	// The probe sequence for A is fail, fail, ok, ok, ok: run 0
	// quarantines it, run 1's probation probe fails (progress stays 0),
	// runs 2 and 3 serve probation, run 3 re-admits. Probation demands
	// *consecutive* healthy probes from the start.
	e := twoNodeExp(5)
	s, bus := newFixtureParts()
	sick := &sickNode{stubNode: newStub("A", s, bus), healthFail: 2}
	b := newStub("B", s, bus)
	m, err := New(Config{Exp: e, S: s, Bus: bus,
		Nodes: map[string]NodeHandle{"A": sick, "B": b},
		Env:   &stubEnv{},
		Retry: RetryPolicy{MaxAttempts: 1, QuarantineAfter: 1, ProbationProbes: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep := runMaster(t, m, s)
	if rep.Completed != 2 || rep.Failed != 3 {
		t.Fatalf("completed=%d failed=%d, want 2/3", rep.Completed, rep.Failed)
	}
	if fmt.Sprint(rep.Readmitted) != "[A]" {
		t.Fatalf("readmitted = %v", rep.Readmitted)
	}
	if err := rep.Results[1].Err; err == nil || !strings.Contains(err.Error(), "probe failed") {
		t.Fatalf("run 1 err = %v", err)
	}
}

// newFixtureParts builds just the scheduler and bus for tests that need
// custom node handles.
func newFixtureParts() (*sched.Scheduler, *eventlog.Bus) {
	s := sched.NewVirtual()
	return s, eventlog.NewBus(s)
}

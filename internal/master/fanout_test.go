package master

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"excovery/internal/obs"
	"excovery/internal/store"
)

// TestFanOutBounds exercises the helper directly: every slot runs exactly
// once, and concurrency never exceeds the limit.
func TestFanOutBounds(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 4, 100} {
		var active, peak, calls atomic.Int32
		done := make([]bool, 17)
		var mu sync.Mutex
		fanOut(limit, len(done), func(slot int) {
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			mu.Lock()
			if done[slot] {
				t.Errorf("limit %d: slot %d ran twice", limit, slot)
			}
			done[slot] = true
			mu.Unlock()
			calls.Add(1)
			active.Add(-1)
		})
		if int(calls.Load()) != len(done) {
			t.Fatalf("limit %d: %d calls, want %d", limit, calls.Load(), len(done))
		}
		want := int32(limit)
		if limit <= 1 {
			want = 1
		}
		if limit > len(done) {
			want = int32(len(done))
		}
		if peak.Load() > want {
			t.Fatalf("limit %d: peak concurrency %d exceeds bound %d",
				limit, peak.Load(), want)
		}
	}
}

// runStored executes the stub experiment into a level-2 store directory
// with the given fan-out bound and returns the report.
func runStored(t *testing.T, fanout int, dir string, mut func(*fixture)) *Report {
	t.Helper()
	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, f := newFixture(t, twoNodeExp(3), func(c *Config) {
		c.Fanout = fanout
		c.Store = st
		c.Tracer = obs.NewTracer(c.S.Now)
	})
	if mut != nil {
		mut(f)
	}
	return runMaster(t, m, f.s)
}

// listFiles returns path → content for every regular file under root.
func listFiles(t *testing.T, root string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(root, p)
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFanOutMatchesSequential runs the same experiment sequentially and
// with fan-out and requires byte-identical level-2 artifacts and equal
// report accounting: parallel collection must not change what is stored.
func TestFanOutMatchesSequential(t *testing.T) {
	seqDir, fanDir := t.TempDir(), t.TempDir()
	seq := runStored(t, 1, seqDir, nil)
	fan := runStored(t, 4, fanDir, nil)

	if seq.Completed != fan.Completed || seq.Failed != fan.Failed ||
		seq.Retried != fan.Retried || seq.Skipped != fan.Skipped {
		t.Fatalf("report mismatch: sequential %+v fanout %+v", seq, fan)
	}
	for i := range seq.Results {
		so, fo := seq.Results[i].Offsets, fan.Results[i].Offsets
		if len(so) != len(fo) {
			t.Fatalf("run %d: offset count %d vs %d", i, len(so), len(fo))
		}
		for j := range so {
			if so[j].Node != fo[j].Node {
				t.Fatalf("run %d: offset order differs at %d: %s vs %s",
					i, j, so[j].Node, fo[j].Node)
			}
		}
	}

	sf, ff := listFiles(t, seqDir), listFiles(t, fanDir)
	if len(sf) == 0 {
		t.Fatal("sequential run stored no files")
	}
	if len(sf) != len(ff) {
		t.Fatalf("file count differs: %d vs %d", len(sf), len(ff))
	}
	for p, sb := range sf {
		fb, ok := ff[p]
		if !ok {
			t.Fatalf("fan-out store missing %s", p)
		}
		if string(sb) != string(fb) {
			t.Errorf("artifact %s differs between sequential and fan-out:\nseq: %s\nfan: %s",
				p, sb, fb)
		}
	}
}

// errNode wraps a stubNode with a control-channel error, mimicking a
// RemoteNode whose transport failed mid-run (runErrorer extension).
type errNode struct {
	*stubNode
	err error
}

func (n *errNode) Err() error { return n.err }

// TestFanOutErrorAccountingMatchesSequential fails one node's control
// channel and requires the fan-out master to produce the same error,
// retry, and quarantine accounting as the sequential baseline.
func TestFanOutErrorAccountingMatchesSequential(t *testing.T) {
	run := func(fanout int) *Report {
		m, f := newFixture(t, twoNodeExp(2), func(c *Config) {
			c.Fanout = fanout
			c.Retry = RetryPolicy{MaxAttempts: 2, QuarantineAfter: 10}
		})
		// Node B's proxy reports a transport error after every run.
		m.cfg.Nodes["B"] = &errNode{stubNode: f.b,
			err: fmt.Errorf("connection reset")}
		return runMaster(t, m, f.s)
	}
	seq, fan := run(1), run(4)
	if seq.Completed != fan.Completed || seq.Failed != fan.Failed ||
		seq.Retried != fan.Retried {
		t.Fatalf("accounting mismatch: sequential %+v fanout %+v", seq, fan)
	}
	if fan.Failed != 2 {
		t.Fatalf("failed = %d, want 2 (every run's node B errored)", fan.Failed)
	}
	for i := range seq.Results {
		se, fe := seq.Results[i].NodeErrs, fan.Results[i].NodeErrs
		if len(se) != len(fe) || se["B"] != fe["B"] {
			t.Fatalf("run %d NodeErrs: sequential %v fanout %v", i, se, fe)
		}
	}
	if len(seq.Quarantined) != len(fan.Quarantined) {
		t.Fatalf("quarantine mismatch: %v vs %v", seq.Quarantined, fan.Quarantined)
	}
}

package master

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"excovery/internal/failpoint"
	"excovery/internal/store"
)

// crashFixture assembles a journaled, store-backed master over the stub
// platform, optionally resuming and optionally armed with failpoints.
func crashFixture(t *testing.T, dir string, reps int, resume bool, fp *failpoint.Registry) (*Master, *fixture, *store.Journal) {
	t.Helper()
	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	m, f := newFixture(t, twoNodeExp(reps), func(c *Config) {
		c.Store = st
		c.Journal = j
		c.Resume = resume
		c.Failpoints = fp
	})
	return m, f, j
}

// runToCrash drives RunAll expecting it to die on the crash failpoint.
func runToCrash(t *testing.T, m *Master, f *fixture) *Report {
	t.Helper()
	var rep *Report
	var err error
	f.s.Go("experimaster", func() { rep, err = m.RunAll() })
	if rerr := f.s.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("RunAll err = %v, want ErrCrashed", err)
	}
	return rep
}

// TestCrashRecoveryReexecutesInFlightRun is the end-to-end durability
// scenario of the journal: the master is killed by the crash failpoint
// between a run's run_attempt_begin record and its execution, restarted
// with resume, and must re-execute exactly that run — once — with no
// duplicate or lost measurements in the final level-3 database.
func TestCrashRecoveryReexecutesInFlightRun(t *testing.T) {
	dir := t.TempDir()

	// Session 1: crash at the second run's first attempt (Skip: 1 lets
	// run 0 attempt 1 through; run 1 attempt 1 crashes).
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteMasterAttempt, failpoint.Rule{
		Prob: 1, Act: failpoint.Crash, Skip: 1, Count: 1})
	m1, f1, _ := crashFixture(t, dir, 3, false, fp)
	rep1 := runToCrash(t, m1, f1)
	if rep1.Completed != 1 {
		t.Fatalf("session 1 completed = %d, want 1", rep1.Completed)
	}

	// The crash left a dangling journal attempt for run 1; plant the
	// half-written run dir a crashed harvest would have left, so the
	// discard path is exercised too.
	if err := os.MkdirAll(filepath.Join(dir, "runs", "1", "A"), 0o755); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "runs", "1", "A", "events.jsonl")
	if err := os.WriteFile(junk, []byte(`{"type":"stale"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Session 2: resume. Run 0 skips, run 1 recovers and re-executes,
	// run 2 executes normally.
	m2, f2, j2 := crashFixture(t, dir, 3, true, nil)
	if rp := j2.Replay(); !rp.Done[0] || !rp.Dangling[1] || rp.InDoubt(0) || !rp.InDoubt(1) {
		t.Fatalf("journal replay = %+v", rp)
	}
	rep2 := runMaster(t, m2, f2.s)
	if rep2.Skipped != 1 || rep2.Recovered != 1 || rep2.Completed != 2 {
		t.Fatalf("session 2: skipped=%d recovered=%d completed=%d",
			rep2.Skipped, rep2.Recovered, rep2.Completed)
	}
	// The planted partial state was discarded; the path now holds only the
	// re-executed run's fresh harvest.
	if data, err := os.ReadFile(junk); err != nil || strings.Contains(string(data), "stale") {
		t.Fatalf("stale partial state survived resume: %q (%v)", data, err)
	}

	// No duplicate and no lost measurements in the conditioned level-3
	// database: every plan run is present and the re-executed run's
	// events appear exactly once (one alpha_done from node A per run).
	db, err := m2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.RunIDs()
	if err != nil || len(ids) != 3 {
		t.Fatalf("level-3 runs = %v (%v)", ids, err)
	}
	for _, run := range ids {
		evs, err := db.EventsOfRun(run)
		if err != nil {
			t.Fatal(err)
		}
		alphaDone := 0
		for _, ev := range evs {
			if ev.Type == "alpha_done" && ev.Node == "A" {
				alphaDone++
			}
		}
		if alphaDone != 1 {
			t.Fatalf("run %d has %d alpha_done events, want exactly 1", run, alphaDone)
		}
	}

	// A third session has nothing left to do: the journal proves every
	// run durably complete.
	m3, f3, j3 := crashFixture(t, dir, 3, true, nil)
	rp := j3.Replay()
	for run := 0; run < 3; run++ {
		if !rp.Done[run] || rp.InDoubt(run) {
			t.Fatalf("run %d not durably done after session 2: %+v", run, rp)
		}
	}
	rep3 := runMaster(t, m3, f3.s)
	if rep3.Skipped != 3 || rep3.Completed != 0 || rep3.Recovered != 0 {
		t.Fatalf("session 3: %+v", rep3)
	}
}

// TestCrashMidPipelineExactlyOnce: with fan-out and the pipelined
// committer active, a crash failpoint must still observe a settled
// pipeline — earlier runs' staged harvests, done markers and journal
// completions are all durable before the simulated kill — and a resumed
// session re-executes only the in-flight run, exactly once.
func TestCrashMidPipelineExactlyOnce(t *testing.T) {
	dir := t.TempDir()

	// Session 1: runs 0 and 1 complete (their commits ride the pipeline),
	// run 2's first attempt crashes after its journal begin record.
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteMasterAttempt, failpoint.Rule{
		Prob: 1, Act: failpoint.Crash, Skip: 2, Count: 1})
	m1, f1, _ := crashFixture(t, dir, 3, false, fp)
	m1.cfg.Fanout = 4
	rep1 := runToCrash(t, m1, f1)
	if rep1.Completed != 2 {
		t.Fatalf("session 1 completed = %d, want 2", rep1.Completed)
	}
	// The crash barrier drained the pipeline: both completed runs are
	// durable on every layer — done marker, journal completion, artifacts.
	// (Replay is an open-time snapshot, so inspect through a fresh open.)
	jr, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	rp := jr.Replay()
	jr.Close()
	for run := 0; run < 2; run++ {
		if !rp.Done[run] {
			t.Fatalf("run %d has no journal completion after crash drain: %+v", run, rp)
		}
		if !m1.cfg.Store.RunDone(run) {
			t.Fatalf("run %d has no done marker after crash drain", run)
		}
		if _, err := os.Stat(filepath.Join(dir, "runs", itoa(run), "A", "events.jsonl")); err != nil {
			t.Fatalf("run %d harvest not committed before crash: %v", run, err)
		}
	}
	if !rp.Dangling[2] || !rp.InDoubt(2) {
		t.Fatalf("run 2 should be in doubt: %+v", rp)
	}

	// Session 2: resume with fan-out still on. Runs 0 and 1 skip, run 2
	// recovers and re-executes.
	m2, f2, _ := crashFixture(t, dir, 3, true, nil)
	m2.cfg.Fanout = 4
	rep2 := runMaster(t, m2, f2.s)
	if rep2.Skipped != 2 || rep2.Recovered != 1 || rep2.Completed != 1 {
		t.Fatalf("session 2: skipped=%d recovered=%d completed=%d",
			rep2.Skipped, rep2.Recovered, rep2.Completed)
	}

	// Exactly-once across both sessions: one alpha_done per run in the
	// conditioned database.
	db, err := m2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.RunIDs()
	if err != nil || len(ids) != 3 {
		t.Fatalf("level-3 runs = %v (%v)", ids, err)
	}
	for _, run := range ids {
		evs, err := db.EventsOfRun(run)
		if err != nil {
			t.Fatal(err)
		}
		alphaDone := 0
		for _, ev := range evs {
			if ev.Type == "alpha_done" && ev.Node == "A" {
				alphaDone++
			}
		}
		if alphaDone != 1 {
			t.Fatalf("run %d has %d alpha_done events, want exactly 1", run, alphaDone)
		}
	}
}

func itoa(n int) string { return fmt.Sprint(n) }

// TestJournalDoneAloneSkipsRun: the journal's run_done record is an
// independent completion witness — even if the store's done marker is
// lost, replay prevents re-executing a durably recorded run.
func TestJournalDoneAloneSkipsRun(t *testing.T) {
	dir := t.TempDir()
	m1, f1, _ := crashFixture(t, dir, 2, false, nil)
	if rep := runMaster(t, m1, f1.s); rep.Completed != 2 {
		t.Fatalf("completed = %d", rep.Completed)
	}
	if err := os.Remove(filepath.Join(dir, "runs", "0", "done")); err != nil {
		t.Fatal(err)
	}
	m2, f2, _ := crashFixture(t, dir, 2, true, nil)
	rep := runMaster(t, m2, f2.s)
	if rep.Skipped != 2 {
		t.Fatalf("journal done record ignored: %+v", rep)
	}
	if len(f2.a.calls) != 0 {
		t.Fatalf("skipped runs still executed: %v", f2.a.calls)
	}
}

// TestResumeRefusesMismatchedPlan: the manifest pins a store to one
// description+seed+plan identity; resuming with anything else must fail
// loudly instead of silently mixing incompatible measurements.
func TestResumeRefusesMismatchedPlan(t *testing.T) {
	dir := t.TempDir()
	m1, f1, _ := crashFixture(t, dir, 2, false, nil)
	runMaster(t, m1, f1.s)

	st, err := store.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := twoNodeExp(2)
	e.Seed = 99 // different seed → different plan identity
	m2, f2 := newFixture(t, e, func(c *Config) {
		c.Store = st
		c.Resume = true
	})
	var runErr error
	f2.s.Go("experimaster", func() { _, runErr = m2.RunAll() })
	if err := f2.s.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil || !errors.Is(runErr, store.ErrResumeRefused) {
		t.Fatalf("mismatched seed resumed: err = %v", runErr)
	}
}

// TestCrashFnIsInvoked: with a CrashFn configured (the daemons pass
// os.Exit), the failpoint invokes it before the in-process fallback.
func TestCrashFnIsInvoked(t *testing.T) {
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteMasterAttempt, failpoint.Rule{Prob: 1, Act: failpoint.Crash, Count: 1})
	called := 0
	m, f := newFixture(t, twoNodeExp(1), func(c *Config) {
		c.Failpoints = fp
		c.CrashFn = func() { called++ }
	})
	rep := runToCrash(t, m, f)
	if called != 1 || rep.Completed != 0 {
		t.Fatalf("called=%d rep=%+v", called, rep)
	}
}

package master

import (
	"fmt"
	"sync"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/obs"
	"excovery/internal/store"
)

// nodeHarvest is one node's collected measurements of a run, detached
// from the node handle so the disk commit can proceed while the next run
// reuses the handle.
type nodeHarvest struct {
	events  []eventlog.Event
	packets []store.PacketRecord
	extras  []store.ExtraMeasurement
}

// harvestData is one run's fully collected measurements: everything the
// staged level-2 commit needs, and nothing that still aliases live node
// or recorder state. Collection happens in the run loop (node packet and
// extra buffers are cleared on read and reset by the next PrepareRun);
// only the disk commit is pipelined.
type harvestData struct {
	run      desc.Run
	nodes    []nodeHarvest // slot-indexed by Master.order
	env      []eventlog.Event
	trace    []byte
	campaign []byte
	info     store.RunInfo
}

// collectHarvest snapshots one run's measurements from the node handles
// (fanned out under the same bound as the other broadcast sites), the
// master's own recorder and the tracer. Must run in task context.
func (m *Master) collectHarvest(run desc.Run, rr *RunResult, partial bool) *harvestData {
	hd := &harvestData{run: run, nodes: make([]nodeHarvest, len(m.order))}
	fanOut(m.cfg.Fanout, len(m.order), func(slot int) {
		h := m.cfg.Nodes[m.order[slot]]
		// Harvest runs after the run span closed; detach the stale parent
		// so host-side harvest spans stay roots of their own track.
		setTraceParent(h, 0)
		hd.nodes[slot] = nodeHarvest{
			events:  h.HarvestEvents(run.ID),
			packets: h.HarvestPackets(),
			extras:  h.HarvestExtras(),
		}
	})
	hd.env = m.envEvents(run.ID)
	// Level-2 trace artifact: the run's closed spans (all attempts so far)
	// merged with the harvested node-host spans into one coherent document
	// — the hosts' seeded id spaces keep cross-process parent links
	// unambiguous. Exportable as a Chrome trace by excovery-report, with
	// one lane per track (master, host:...).
	if m.cfg.Tracer != nil {
		spans := m.cfg.Tracer.RunSpans(run.ID)
		spans = append(spans, m.harvestNodeTraces(run.ID)...)
		if len(spans) > 0 {
			hd.trace = obs.MarshalSpans(spans)
		}
	}
	// Campaign metric fan-in (DESIGN.md §13): collect each host's registry
	// snapshot, fold it into the master's /metrics, and persist the run's
	// campaign_metrics.json artifact.
	hd.campaign = m.fanInMetrics(run.ID)
	hd.info = store.RunInfo{Run: run.ID, Start: rr.Start, Offsets: rr.Offsets,
		Attempts: rr.Attempts}
	if partial {
		hd.info.Partial = true
		hd.info.Aborted = rr.Aborted
		if rr.Err != nil {
			hd.info.Err = rr.Err.Error()
		}
	}
	return hd
}

// commitHarvest writes collected measurements through the atomic
// stage-and-commit of PR 3: everything lands in a staging directory and
// is renamed into the level-2 hierarchy in one step, so a crash
// mid-harvest can never leave a half-written run directory for
// conditioning to ingest. Safe to call from the committer goroutine: it
// touches only the store and the job's own data.
func (m *Master) commitHarvest(hd *harvestData) error {
	sr, err := m.cfg.Store.StageRun(hd.run.ID)
	if err != nil {
		return err
	}
	st := sr.Store()
	for slot, id := range m.order {
		nh := hd.nodes[slot]
		st.WriteEvents(hd.run.ID, id, nh.events)
		st.WritePackets(hd.run.ID, id, nh.packets)
		for _, x := range nh.extras {
			st.WriteExtra(hd.run.ID, x.Node, x.Name, x.Content)
		}
	}
	st.WriteEvents(hd.run.ID, "env", hd.env)
	if len(hd.trace) > 0 {
		st.WriteExtra(hd.run.ID, "master", "trace.json", hd.trace)
	}
	if len(hd.campaign) > 0 {
		st.WriteExtra(hd.run.ID, "master", "campaign_metrics.json", hd.campaign)
	}
	st.WriteRunInfo(hd.info)
	if err := sr.Commit(); err != nil {
		sr.Abort()
		return err
	}
	return nil
}

// commitQueueDepth bounds how many committed-but-unwritten runs the
// pipeline may hold: enough to overlap run N+1's preparation with run
// N's disk commit, small enough that a slow disk backpressures the run
// loop instead of buffering an unbounded measurement backlog.
const commitQueueDepth = 2

// pendingEvent is an event the committer wants emitted. The recorder and
// bus are task-context-only, so the committer queues events under its
// own mutex and the run loop emits them at the next drain point.
type pendingEvent struct {
	typ    string
	params map[string]string
}

// committer is the single background goroutine that performs the durable
// tail of a successful run: staged level-2 commit, done marker, then the
// journal's completion record — in that order, preserving the PR 3 crash
// contract (a done marker without a journal Done resumes as skipped; a
// journal End without either resumes as in-doubt and is re-executed).
// Run N+1's preparation overlaps run N's disk commit; the run loop
// drains the queue on retry, failure, crash and experiment exit.
type committer struct {
	m    *Master
	jobs chan *harvestData
	wg   sync.WaitGroup // counts enqueued-but-uncommitted jobs
	quit chan struct{}  // closed when the worker exited

	mu     sync.Mutex
	events []pendingEvent
}

func newCommitter(m *Master) *committer {
	c := &committer{m: m, jobs: make(chan *harvestData, commitQueueDepth),
		quit: make(chan struct{})}
	go c.loop()
	return c
}

func (c *committer) loop() {
	defer close(c.quit)
	for hd := range c.jobs {
		c.commit(hd)
		c.wg.Done()
	}
}

// commit performs one job. Counters are atomic and safe from this
// goroutine; events are deferred to the next drain.
func (c *committer) commit(hd *harvestData) {
	m := c.m
	if err := m.commitHarvest(hd); err != nil {
		c.noteEvent(eventlog.EvRunHarvestFailed, map[string]string{
			"run": fmt.Sprint(hd.run.ID), "err": err.Error()})
		return
	}
	m.cfg.Store.MarkRunDone(hd.run.ID)
	if m.cfg.Journal != nil {
		if err := m.cfg.Journal.Done(hd.run.ID); err != nil {
			m.counter(obs.MJournalWriteErrors,
				"failed write-ahead journal appends").Inc()
			c.noteEvent(eventlog.EvJournalWriteFailed,
				map[string]string{"err": err.Error()})
		} else {
			m.counter(obs.MJournalRecords,
				"write-ahead journal records appended").Inc()
		}
	}
}

func (c *committer) noteEvent(typ string, params map[string]string) {
	c.mu.Lock()
	c.events = append(c.events, pendingEvent{typ: typ, params: params})
	c.mu.Unlock()
}

// enqueue hands one run's collected measurements to the worker; it
// blocks (backpressure) when commitQueueDepth runs are already pending.
func (c *committer) enqueue(hd *harvestData) {
	c.wg.Add(1)
	c.jobs <- hd
}

// drain blocks until every enqueued commit finished, then emits the
// events the committer queued. Must run in task context.
func (c *committer) drain(rec *eventlog.Recorder) {
	c.wg.Wait()
	c.mu.Lock()
	evs := c.events
	c.events = nil
	c.mu.Unlock()
	for _, e := range evs {
		rec.Emit(e.typ, e.params)
	}
}

// stop drains and terminates the worker.
func (c *committer) stop(rec *eventlog.Recorder) {
	c.drain(rec)
	close(c.jobs)
	<-c.quit
}

// drainCommits flushes the commit pipeline: every pending durable commit
// completes and the committer's deferred events are emitted. Called at
// the ordering barriers — before a run is re-attempted, before a failed
// run's partial harvest, before a crash failpoint fires, and at
// experiment exit — so crash/resume semantics and event placement stay
// those of the sequential master.
func (m *Master) drainCommits() {
	if m.commits != nil {
		m.commits.drain(m.rec)
	}
}

// stopCommitter drains and shuts down the pipeline (idempotent).
func (m *Master) stopCommitter() {
	if m.commits != nil {
		m.commits.stop(m.rec)
		m.commits = nil
	}
}

package master

import (
	"encoding/json"
	"sort"
	"strings"

	"excovery/internal/obs"
)

// harvestNodeTraces collects the node hosts' closed spans of one run via
// the optional traceHarvester extension. One RPC per backing host (handles
// sharing an ObsSource are collected once), with a span-id dedup as a
// second line of defense. Must run in task context.
func (m *Master) harvestNodeTraces(run int) []obs.Span {
	var out []obs.Span
	seenSrc := map[string]bool{}
	seenID := map[uint64]bool{}
	for _, id := range m.order {
		h := m.cfg.Nodes[id]
		th, ok := h.(traceHarvester)
		if !ok {
			continue
		}
		src := id
		if ms, ok := h.(metricSnapshotter); ok {
			src = ms.ObsSource()
		}
		if seenSrc[src] {
			continue
		}
		seenSrc[src] = true
		for _, sp := range th.HarvestTrace(run) {
			if sp.ID == 0 || seenID[sp.ID] {
				continue
			}
			seenID[sp.ID] = true
			out = append(out, sp)
		}
	}
	return out
}

// campaignDoc is the campaign_metrics.json level-2 artifact: one run's
// fan-in of every reporting host's metric registry, plus the fleet-wide
// rollup (series summed across hosts). encoding/json sorts the map keys,
// so the document is deterministic for a deterministic platform.
type campaignDoc struct {
	Run     int                        `json:"run"`
	Sources map[string]*campaignSource `json:"sources"`
	Fleet   map[string]float64         `json:"fleet"`
}

// campaignSource is one host's contribution: the node ids it serves and
// its registry snapshot.
type campaignSource struct {
	Nodes  []string          `json:"nodes"`
	Points []obs.MetricPoint `json:"points"`
}

// fanInMetrics performs the campaign metric fan-in at a run boundary: one
// host.obs_snapshot RPC per backing host (via the optional metricSnapshotter
// extension), re-exported into the master's registry as gauges under
// MNodePrefix with a src label, summed into MFleetPrefix rollups, surfaced
// on /status, and returned as the campaign_metrics.json artifact (nil when
// no handle reports). Must run in task context.
func (m *Master) fanInMetrics(run int) []byte {
	sources := map[string]*campaignSource{}
	errs := 0
	for _, id := range m.order {
		ms, ok := m.cfg.Nodes[id].(metricSnapshotter)
		if !ok {
			continue
		}
		src := ms.ObsSource()
		if rep, seen := sources[src]; seen {
			rep.Nodes = append(rep.Nodes, id)
			continue
		}
		pts, err := ms.ObsSnapshot()
		if err != nil {
			errs++
			m.counter(obs.MCampaignFaninErrors,
				"failed node metric snapshot collections").Inc()
			continue
		}
		sources[src] = &campaignSource{Nodes: []string{id}, Points: filterFanIn(pts)}
	}
	if len(sources) == 0 && errs == 0 {
		return nil
	}
	m.counter(obs.MCampaignFanins,
		"campaign metric fan-in collections").Inc()
	m.cfg.Metrics.Gauge(obs.MCampaignNodesReporting,
		"node hosts that delivered a metric snapshot at the last fan-in").
		Set(int64(len(sources)))
	m.cfg.Status.FanIn(len(sources))

	// Sorted iteration both times: gauge re-export order decides metric
	// registration order, which must be seed-stable for the campaign
	// artifact diffs (and the maporder analyzer holds us to it).
	srcs := make([]string, 0, len(sources))
	for src := range sources {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	fleet := map[string]float64{}
	for _, src := range srcs {
		for _, p := range sources[src].Points {
			name, value := reExport(p)
			labels := append(append([]string(nil), p.Labels...), "src", src)
			m.cfg.Metrics.Gauge(obs.MNodePrefix+name, p.Help, labels...).
				Set(int64(value))
			fleet[name] += value
		}
	}
	rollups := make([]string, 0, len(fleet))
	for name := range fleet {
		rollups = append(rollups, name)
	}
	sort.Strings(rollups)
	for _, name := range rollups {
		m.cfg.Metrics.Gauge(obs.MFleetPrefix+name,
			"fan-in rollup: the node-host series summed across all reporting hosts").
			Set(int64(fleet[name]))
	}
	doc := campaignDoc{Run: run, Sources: sources, Fleet: fleet}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil
	}
	return b
}

// filterFanIn drops points that must not round-trip through a fan-in: the
// master's own re-exports and rollups (a test wiring may point a handle at
// the master's registry, and re-importing them would compound per run) and
// the fan-in accounting itself.
func filterFanIn(pts []obs.MetricPoint) []obs.MetricPoint {
	out := pts[:0]
	for _, p := range pts {
		if strings.HasPrefix(p.Name, obs.MNodePrefix) ||
			strings.HasPrefix(p.Name, obs.MFleetPrefix) ||
			strings.HasPrefix(p.Name, "excovery_campaign_") {
			continue
		}
		out = append(out, p)
	}
	return out
}

// reExport maps a harvested point onto the master-side gauge name and
// value. The framework prefix is stripped (MNodePrefix re-adds its own),
// and fractional-second histogram sums become integral microseconds, since
// obs gauges are int64-valued.
func reExport(p obs.MetricPoint) (name string, value float64) {
	name = strings.TrimPrefix(p.Name, "excovery_")
	if strings.HasSuffix(name, "_sum_seconds") {
		return strings.TrimSuffix(name, "_sum_seconds") + "_sum_us", p.Value * 1e6
	}
	return name, p.Value
}

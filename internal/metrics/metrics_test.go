package metrics

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/master"
	"excovery/internal/sd"
	"excovery/internal/store"
)

var t0 = time.Date(2014, 5, 19, 0, 0, 0, 0, time.UTC)

func ev(node, typ string, at time.Duration, params map[string]string) eventlog.Event {
	return eventlog.Event{Node: node, Type: typ, Time: t0.Add(at), Params: params}
}

func TestExtractRunComplete(t *testing.T) {
	events := []eventlog.Event{
		ev("B", sd.EvStartSearch, 0, nil),
		ev("B", sd.EvServiceAdd, 100*time.Millisecond, map[string]string{"node": "A"}),
		ev("B", sd.EvServiceAdd, 300*time.Millisecond, map[string]string{"node": "C"}),
	}
	m := ExtractRun(events, []string{"A", "C"}, []string{"B"})
	if !m.Complete || m.Found != 2 || m.Expected != 2 {
		t.Fatalf("m = %+v", m)
	}
	if m.TR != 300*time.Millisecond {
		t.Fatalf("TR = %v (must be the last required add)", m.TR)
	}
}

func TestExtractRunIncomplete(t *testing.T) {
	events := []eventlog.Event{
		ev("B", sd.EvStartSearch, 0, nil),
		ev("B", sd.EvServiceAdd, 100*time.Millisecond, map[string]string{"node": "A"}),
	}
	m := ExtractRun(events, []string{"A", "C"}, nil)
	if m.Complete || m.Found != 1 {
		t.Fatalf("m = %+v", m)
	}
	if m.TR != 0 {
		t.Fatalf("TR = %v for incomplete run", m.TR)
	}
}

func TestExtractRunIgnoresForeignNodesAndDuplicates(t *testing.T) {
	events := []eventlog.Event{
		ev("B", sd.EvStartSearch, 0, nil),
		// Add observed on a non-SU node: ignored.
		ev("X", sd.EvServiceAdd, 10*time.Millisecond, map[string]string{"node": "A"}),
		ev("B", sd.EvServiceAdd, 200*time.Millisecond, map[string]string{"node": "A"}),
		// Duplicate: ignored.
		ev("B", sd.EvServiceAdd, 400*time.Millisecond, map[string]string{"node": "A"}),
		// Unexpected SM: ignored.
		ev("B", sd.EvServiceAdd, 500*time.Millisecond, map[string]string{"node": "Z"}),
	}
	m := ExtractRun(events, []string{"A"}, []string{"B"})
	if !m.Complete || m.TR != 200*time.Millisecond || m.Found != 1 {
		t.Fatalf("m = %+v", m)
	}
}

func TestExtractRunAddBeforeSearchIgnored(t *testing.T) {
	events := []eventlog.Event{
		ev("B", sd.EvServiceAdd, 0, map[string]string{"node": "A"}),
		ev("B", sd.EvStartSearch, time.Second, nil),
	}
	m := ExtractRun(events, []string{"A"}, []string{"B"})
	if m.Complete {
		t.Fatalf("add before search must not count: %+v", m)
	}
}

func TestResponsiveness(t *testing.T) {
	ms := []RunMetric{
		{Complete: true, TR: 100 * time.Millisecond},
		{Complete: true, TR: 2 * time.Second},
		{Complete: false},
		{Complete: true, TR: 500 * time.Millisecond},
	}
	if got := Responsiveness(ms, time.Second); got != 0.5 {
		t.Fatalf("R(1s) = %v", got)
	}
	if got := Responsiveness(ms, 0); got != 0.75 {
		t.Fatalf("R(∞) = %v", got)
	}
	if got := Responsiveness(nil, time.Second); got != 0 {
		t.Fatalf("R(empty) = %v", got)
	}
}

func TestGroupByAndTRs(t *testing.T) {
	ms := []RunMetric{
		{Complete: true, TR: 3 * time.Second, Treatment: map[string]string{"bw": "10"}},
		{Complete: true, TR: time.Second, Treatment: map[string]string{"bw": "50"}},
		{Complete: false, Treatment: map[string]string{"bw": "50"}},
	}
	g := GroupBy(ms, "bw")
	if len(g["10"]) != 1 || len(g["50"]) != 2 {
		t.Fatalf("groups = %v", g)
	}
	trs := TRs(ms)
	if len(trs) != 2 || trs[0] != time.Second {
		t.Fatalf("TRs = %v (sorted, complete only)", trs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("s = %+v", s)
	}
	if math.Abs(s.Std-1.5811) > 0.001 {
		t.Fatalf("Std = %v", s.Std)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Fatalf("CI = [%v, %v]", s.CI95Lo, s.CI95Hi)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 1: 40, 0.5: 25, 0.25: 17.5}
	for p, want := range cases {
		if got := Quantile(xs, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Q(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Q on empty should be NaN")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single-element quantile")
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{3, 1, 2})
	if len(pts) != 3 || pts[0].X != 1 || pts[2].P != 1 {
		t.Fatalf("ecdf = %v", pts)
	}
	if math.Abs(pts[0].P-1.0/3) > 1e-9 {
		t.Fatalf("first P = %v", pts[0].P)
	}
}

func TestAnalyzePackets(t *testing.T) {
	pkts := []store.PacketRecord{
		{Dir: "tx", ID: 1, Time: t0},
		{Dir: "rx", ID: 1, Time: t0.Add(2 * time.Millisecond)},
		{Dir: "tx", ID: 2, Time: t0}, // lost
		{Dir: "tx", ID: 3, Time: t0},
		{Dir: "rx", ID: 3, Time: t0.Add(4 * time.Millisecond)},
		{Dir: "rx", ID: 3, Time: t0.Add(6 * time.Millisecond)}, // second receiver
	}
	st := AnalyzePackets(pkts)
	if st.TxCount != 3 || st.RxCount != 3 || st.Delivered != 2 {
		t.Fatalf("st = %+v", st)
	}
	if math.Abs(st.LossRate-1.0/3) > 1e-9 {
		t.Fatalf("loss = %v", st.LossRate)
	}
	if st.MeanDelay != 3*time.Millisecond {
		t.Fatalf("delay = %v", st.MeanDelay)
	}
}

func TestFromReportAndFromDBAgree(t *testing.T) {
	e := desc.OneShot(30)
	e.Repl.Count = 3
	dir := t.TempDir()
	x, err := core.New(e, core.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	fromRep := FromReport(e, rep, "", "")
	if len(fromRep) != 3 {
		t.Fatalf("FromReport = %d metrics", len(fromRep))
	}
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	fromDB, err := FromDB(db, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fromDB) != 3 {
		t.Fatalf("FromDB = %d metrics", len(fromDB))
	}
	for i := range fromRep {
		if fromRep[i].Complete != fromDB[i].Complete {
			t.Fatalf("run %d: completeness differs", i)
		}
		// The DB path uses conditioned timestamps; with perfect clocks
		// both must agree exactly.
		if fromRep[i].TR != fromDB[i].TR {
			t.Fatalf("run %d: TR %v (report) vs %v (db)", i, fromRep[i].TR, fromDB[i].TR)
		}
	}
}

func TestDurationsToSeconds(t *testing.T) {
	out := DurationsToSeconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if out[0] != 1 || out[1] != 0.5 {
		t.Fatalf("out = %v", out)
	}
}

func TestQueryPairsFromRealRunPackets(t *testing.T) {
	// Run a one-shot discovery with storage, then reconstruct the
	// query/response association from the captured packets alone.
	e := desc.OneShot(30)
	dir := t.TempDir()
	x, err := core.New(e, core.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := db.PacketsOfRun(0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := QueryPairs(pkts, "B")
	if len(pairs) == 0 {
		t.Fatal("no query pairs reconstructed from packets")
	}
	rtts := QueryRTTs(pairs)
	if len(rtts) == 0 {
		t.Fatal("no answered queries")
	}
	// The packet-level RTT of the answered query must roughly match the
	// event-level t_R (both measure query → response on the SU).
	ms := FromReport(e, mustReport(t, e), "", "")
	_ = ms
	if rtts[0] < 20*time.Millisecond || rtts[0] > 200*time.Millisecond {
		t.Fatalf("query RTT = %v", rtts[0])
	}
}

// mustReport reruns a fresh experiment for comparison data.
func mustReport(t *testing.T, e *desc.Experiment) *master.Report {
	t.Helper()
	x, err := core.New(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestQueryPairsSynthetic(t *testing.T) {
	mk := func(dir, kind string, qid uint32, src string, at time.Duration) store.PacketRecord {
		data := []byte(fmt.Sprintf(`{"kind":%q,"qid":%d}`, kind, qid))
		return store.PacketRecord{Dir: dir, Src: src, Data: data, Time: t0.Add(at)}
	}
	pkts := []store.PacketRecord{
		mk("tx", "query", 1, "su", 0),
		mk("rx", "response", 1, "sm", 30*time.Millisecond),
		mk("rx", "response", 1, "sm", 60*time.Millisecond), // dup ignored
		mk("tx", "query", 2, "su", 100*time.Millisecond),   // unanswered
		mk("tx", "query", 3, "other", 0),                   // foreign node ignored
		{Dir: "rx", Src: "x", Data: []byte("not json"), Time: t0},
	}
	pairs := QueryPairs(pkts, "su")
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if !pairs[0].Answered || pairs[0].RTT() != 30*time.Millisecond {
		t.Fatalf("pair 0 = %+v", pairs[0])
	}
	if pairs[1].Answered || pairs[1].RTT() != 0 {
		t.Fatalf("pair 1 = %+v", pairs[1])
	}
	if rtts := QueryRTTs(pairs); len(rtts) != 1 {
		t.Fatalf("rtts = %v", rtts)
	}
}

func TestResponsivenessCI(t *testing.T) {
	ms := make([]RunMetric, 20)
	for i := range ms {
		ms[i] = RunMetric{Complete: i < 15, TR: 100 * time.Millisecond}
	}
	lo, hi := ResponsivenessCI(ms, time.Second)
	p := Responsiveness(ms, time.Second)
	if p != 0.75 {
		t.Fatalf("p = %v", p)
	}
	if lo >= p || hi <= p {
		t.Fatalf("CI [%v,%v] does not bracket %v", lo, hi, p)
	}
	if lo < 0.5 || hi > 0.95 {
		t.Fatalf("Wilson interval too wide: [%v,%v]", lo, hi)
	}
	// Degenerate cases stay in [0,1].
	all := []RunMetric{{Complete: true, TR: time.Millisecond}}
	lo, hi = ResponsivenessCI(all, time.Second)
	if lo < 0 || hi > 1 {
		t.Fatalf("bounds: [%v,%v]", lo, hi)
	}
	if lo2, hi2 := ResponsivenessCI(nil, time.Second); lo2 != 0 || hi2 != 0 {
		t.Fatalf("empty CI = [%v,%v]", lo2, hi2)
	}
}

func TestWriteCSV(t *testing.T) {
	ms := []RunMetric{
		{RunID: 0, Treatment: map[string]string{"bw": "10", "pairs": "5"},
			Expected: 1, Found: 1, Complete: true, TR: 50 * time.Millisecond},
		{RunID: 1, Treatment: map[string]string{"bw": "50", "pairs": "5"},
			Expected: 1, Found: 0, Complete: false},
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d\n%s", len(lines), buf.String())
	}
	if lines[0] != "run,bw,pairs,expected,found,complete,t_R_seconds" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,10,5,1,1,true,0.05") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], "false,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestControlSummary(t *testing.T) {
	rep := &master.Report{
		Completed:      2,
		Skipped:        1,
		Retried:        1,
		HealthProbes:   5,
		HealthFailures: 2,
		Quarantined:    []string{"C"},
		Results: []master.RunResult{
			{Attempts: 1},
			{Attempts: 3},
			{Attempts: 2, Partial: true},
		},
	}
	cs := ControlSummary(rep)
	if cs.Runs != 3 || cs.Completed != 2 || cs.Skipped != 1 || cs.Retried != 1 {
		t.Fatalf("run accounting: %+v", cs)
	}
	if cs.Attempts != 6 || cs.Partial != 1 {
		t.Fatalf("attempts=%d partial=%d", cs.Attempts, cs.Partial)
	}
	if cs.HealthProbes != 5 || cs.HealthFailures != 2 || fmt.Sprint(cs.Quarantined) != "[C]" {
		t.Fatalf("health: %+v", cs)
	}
	// The summary owns its quarantine slice.
	cs.Quarantined[0] = "X"
	if rep.Quarantined[0] != "C" {
		t.Fatal("ControlSummary aliases the report's slice")
	}
}

func TestControlSummaryMixedOutcomeAggregation(t *testing.T) {
	// Attempts and Partial must aggregate correctly over a report mixing
	// first-try successes, retried successes, skipped runs (resume;
	// zero attempts) and exhausted runs with partial harvests.
	rep := &master.Report{
		Completed: 2,
		Skipped:   2,
		Retried:   2,
		Results: []master.RunResult{
			{Attempts: 1},                 // clean success
			{Skipped: true},               // resume skip: no attempts consumed
			{Attempts: 2},                 // retried success
			{Skipped: true},               // second resume skip
			{Attempts: 3, Partial: true},  // all attempts failed, salvaged
			{Attempts: 3, Partial: false}, // all attempts failed, no store
		},
	}
	cs := ControlSummary(rep)
	if cs.Runs != 6 {
		t.Fatalf("Runs = %d, want 6", cs.Runs)
	}
	if cs.Attempts != 9 {
		t.Fatalf("Attempts = %d, want 9 (skipped runs add none)", cs.Attempts)
	}
	if cs.Partial != 1 {
		t.Fatalf("Partial = %d, want 1", cs.Partial)
	}
	if cs.Completed != 2 || cs.Skipped != 2 || cs.Retried != 2 {
		t.Fatalf("pass-through fields: %+v", cs)
	}
	if cs.HealthProbes != 0 || cs.HealthFailures != 0 || len(cs.Quarantined) != 0 {
		t.Fatalf("zero-value health fields: %+v", cs)
	}
}

// Package metrics extracts dependability metrics from recorded
// experiments — the "set of functions for extraction and analysis of event
// and packet based metrics" of §VI.
//
// The key property is responsiveness: "the probability that a number of
// SMs is found within a deadline, as required by the application calling
// SD". Per run, the discovery time t_R (Fig. 11) spans from the SU's
// sd_start_search event to the sd_service_add event completing the
// required SM set; responsiveness over a run group is the fraction of runs
// with t_R within the deadline.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/master"
	"excovery/internal/sd"
	"excovery/internal/store"
)

// RunMetric is the per-run extraction result.
type RunMetric struct {
	// RunID identifies the run.
	RunID int
	// Treatment maps factor ids to the applied raw level values (for
	// grouping); empty when extracted from a bare event list.
	Treatment map[string]string
	// Expected is the number of SMs the SU had to find.
	Expected int
	// Found is the number of distinct SMs found.
	Found int
	// TR is the discovery time: sd_start_search → last required
	// sd_service_add. Zero when incomplete.
	TR time.Duration
	// Complete reports whether all expected SMs were found.
	Complete bool
}

// ExtractRun computes the discovery metric from one run's events. smNodes
// is the platform node set of the SM actor; suNodes restricts the
// observing SU nodes (nil = any node).
func ExtractRun(events []eventlog.Event, smNodes, suNodes []string) RunMetric {
	m := RunMetric{Expected: len(smNodes)}
	var searchAt time.Time
	haveSearch := false
	su := map[string]bool{}
	for _, n := range suNodes {
		su[n] = true
	}
	missing := map[string]bool{}
	for _, n := range smNodes {
		missing[n] = true
	}
	var lastAdd time.Time
	for _, ev := range events {
		switch ev.Type {
		case sd.EvStartSearch:
			if !haveSearch && (len(su) == 0 || su[ev.Node]) {
				searchAt = ev.Time
				haveSearch = true
			}
		case sd.EvServiceAdd:
			if !haveSearch {
				continue
			}
			if len(su) > 0 && !su[ev.Node] {
				continue
			}
			n := ev.Param("node")
			if missing[n] {
				delete(missing, n)
				m.Found++
				if ev.Time.After(lastAdd) {
					lastAdd = ev.Time
				}
			}
		}
	}
	if haveSearch && len(missing) == 0 && m.Expected > 0 {
		m.Complete = true
		m.TR = lastAdd.Sub(searchAt)
	}
	return m
}

// FromReport extracts metrics for every completed run of a master report,
// resolving SM and SU node sets from the description's actor roles.
// smActor/suActor default to "actor0"/"actor1".
func FromReport(e *desc.Experiment, rep *master.Report, smActor, suActor string) []RunMetric {
	if smActor == "" {
		smActor = "actor0"
	}
	if suActor == "" {
		suActor = "actor1"
	}
	var out []RunMetric
	for _, rr := range rep.Results {
		if rr.Skipped || rr.Err != nil || rr.Aborted {
			continue
		}
		roles := desc.RolesFor(e, rr.Run)
		m := ExtractRun(rr.Events, roles[smActor], roles[suActor])
		m.RunID = rr.Run.ID
		m.Treatment = treatmentStrings(rr.Run)
		out = append(out, m)
	}
	return out
}

// FromDB extracts metrics from a level-3 database by replaying the stored
// description's plan (repeatability: the plan regenerates bit-identically
// from the stored document).
func FromDB(db *store.ExperimentDB, smActor, suActor string) ([]RunMetric, error) {
	info, err := db.Info()
	if err != nil {
		return nil, err
	}
	e, err := desc.ParseString(info.ExpXML)
	if err != nil {
		return nil, fmt.Errorf("metrics: stored description: %w", err)
	}
	plan, err := desc.GeneratePlan(e)
	if err != nil {
		return nil, err
	}
	if smActor == "" {
		smActor = "actor0"
	}
	if suActor == "" {
		suActor = "actor1"
	}
	byID := map[int]desc.Run{}
	for _, r := range plan.Runs {
		byID[r.ID] = r
	}
	ids, err := db.RunIDs()
	if err != nil {
		return nil, err
	}
	var out []RunMetric
	for _, id := range ids {
		events, err := db.EventsOfRun(id)
		if err != nil {
			return nil, err
		}
		run, ok := byID[id]
		if !ok {
			continue
		}
		roles := desc.RolesFor(e, run)
		m := ExtractRun(events, roles[smActor], roles[suActor])
		m.RunID = id
		m.Treatment = treatmentStrings(run)
		out = append(out, m)
	}
	return out, nil
}

// ControlStats summarizes the control channel's resilience behaviour of
// one experiment execution: run-level retries, preflight health probes,
// partial harvests and node quarantine. It complements the SD metrics —
// a result is only as trustworthy as the control plane that produced it.
type ControlStats struct {
	// Runs, Completed and Skipped mirror the report's run accounting.
	Runs, Completed, Skipped int
	// Failed counts runs that failed or aborted all their attempts.
	Failed int
	// Retried counts runs that needed more than one in-place attempt.
	Retried int
	// Recovered counts crashed runs whose partial state was discarded via
	// journal replay before re-execution.
	Recovered int
	// Attempts is the total number of run attempts executed.
	Attempts int
	// Partial counts failed runs whose measurements were still harvested.
	Partial int
	// HealthProbes and HealthFailures count preflight node probes.
	HealthProbes, HealthFailures int
	// Quarantined lists nodes still quarantined at experiment end.
	Quarantined []string
	// Readmitted lists nodes that served probation and returned.
	Readmitted []string
}

// ControlSummary extracts control-channel resilience counters from a
// master report.
func ControlSummary(rep *master.Report) ControlStats {
	cs := ControlStats{
		Runs:           len(rep.Results),
		Completed:      rep.Completed,
		Skipped:        rep.Skipped,
		Failed:         rep.Failed,
		Retried:        rep.Retried,
		Recovered:      rep.Recovered,
		HealthProbes:   rep.HealthProbes,
		HealthFailures: rep.HealthFailures,
		Quarantined:    append([]string(nil), rep.Quarantined...),
		Readmitted:     append([]string(nil), rep.Readmitted...),
	}
	for _, rr := range rep.Results {
		cs.Attempts += rr.Attempts
		if rr.Partial {
			cs.Partial++
		}
	}
	return cs
}

func treatmentStrings(run desc.Run) map[string]string {
	out := make(map[string]string, len(run.Treatment))
	for fid, l := range run.Treatment {
		if l.ActorMap != nil {
			continue
		}
		out[fid] = l.Raw
	}
	return out
}

// Responsiveness returns the fraction of runs that found all expected SMs
// within the deadline (≤ 0 means any completion counts).
func Responsiveness(ms []RunMetric, deadline time.Duration) float64 {
	if len(ms) == 0 {
		return 0
	}
	ok := 0
	for _, m := range ms {
		if m.Complete && (deadline <= 0 || m.TR <= deadline) {
			ok++
		}
	}
	return float64(ok) / float64(len(ms))
}

// GroupBy partitions metrics by the raw level value of a factor.
func GroupBy(ms []RunMetric, factorID string) map[string][]RunMetric {
	out := map[string][]RunMetric{}
	for _, m := range ms {
		out[m.Treatment[factorID]] = append(out[m.Treatment[factorID]], m)
	}
	return out
}

// TRs returns the discovery times of complete runs, sorted ascending.
func TRs(ms []RunMetric) []time.Duration {
	var out []time.Duration
	for _, m := range ms {
		if m.Complete {
			out = append(out, m.TR)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P50, P90, P99  float64
	CI95Lo, CI95Hi float64
}

// Summarize computes descriptive statistics; the 95% confidence interval
// of the mean uses the normal approximation.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	varsum := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varsum / float64(s.N-1))
	}
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	se := s.Std / math.Sqrt(float64(s.N))
	s.CI95Lo = s.Mean - 1.96*se
	s.CI95Hi = s.Mean + 1.96*se
	return s
}

// Quantile returns the p-quantile of a sorted sample (linear
// interpolation).
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// DurationsToSeconds converts durations to float seconds for Summarize.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// ECDFPoint is one point of an empirical CDF.
type ECDFPoint struct {
	X float64
	P float64
}

// ECDF computes the empirical CDF of a sample.
func ECDF(xs []float64) []ECDFPoint {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]ECDFPoint, len(sorted))
	for i, x := range sorted {
		out[i] = ECDFPoint{X: x, P: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// PacketStats are packet-level connection parameters derived from captures
// (§IV-B2: "derive statistical connection parameters during later
// analysis").
type PacketStats struct {
	// TxCount and RxCount count capture records by direction.
	TxCount, RxCount int
	// Delivered counts packet ids seen both at a sender and at least one
	// receiver.
	Delivered int
	// LossRate is 1 − Delivered/TxCount (unique tx packet ids).
	LossRate float64
	// MeanDelay is the mean tx→first-rx delay of delivered packets.
	MeanDelay time.Duration
}

// AnalyzePackets matches captures by packet id across nodes.
func AnalyzePackets(pkts []store.PacketRecord) PacketStats {
	var st PacketStats
	txAt := map[uint64]time.Time{}
	rxAt := map[uint64]time.Time{}
	for _, p := range pkts {
		switch p.Dir {
		case "tx":
			st.TxCount++
			if t, seen := txAt[p.ID]; !seen || p.Time.Before(t) {
				txAt[p.ID] = p.Time
			}
		case "rx":
			st.RxCount++
			if t, seen := rxAt[p.ID]; !seen || p.Time.Before(t) {
				rxAt[p.ID] = p.Time
			}
		}
	}
	var total time.Duration
	for id, t0 := range txAt {
		if t1, ok := rxAt[id]; ok {
			st.Delivered++
			if t1.After(t0) {
				total += t1.Sub(t0)
			}
		}
	}
	if len(txAt) > 0 {
		st.LossRate = 1 - float64(st.Delivered)/float64(len(txAt))
	}
	if st.Delivered > 0 {
		st.MeanDelay = total / time.Duration(st.Delivered)
	}
	return st
}

// QueryPair associates one SD query with its first answer, reconstructed
// purely from captured packets — the analysis the prototype's Avahi
// modification enables: "response times not only on SD operation level but
// on the level of individual SD request and response packets" (§VI).
type QueryPair struct {
	// QID is the query identifier echoed by responses.
	QID uint32
	// Node is the querying node.
	Node string
	// SentAt is the local capture time of the query transmission.
	SentAt time.Time
	// AnsweredAt is the local capture time of the first matching
	// response reception; zero if unanswered.
	AnsweredAt time.Time
	// Answered reports whether a response arrived.
	Answered bool
}

// RTT returns the query/response round-trip time (0 if unanswered).
func (q QueryPair) RTT() time.Duration {
	if !q.Answered {
		return 0
	}
	return q.AnsweredAt.Sub(q.SentAt)
}

// sdWireHeader is the subset of the zeroconf wire format needed to
// associate requests and responses.
type sdWireHeader struct {
	Kind string `json:"kind"`
	QID  uint32 `json:"qid"`
}

// QueryPairs scans one node's packet captures for SD queries it sent and
// the responses it received, matching them by the echoed query id.
func QueryPairs(pkts []store.PacketRecord, node string) []QueryPair {
	var out []QueryPair
	index := map[uint32]int{}
	for _, p := range pkts {
		var h sdWireHeader
		if err := json.Unmarshal(p.Data, &h); err != nil || h.QID == 0 {
			continue
		}
		// Only captures taken at the querying node count; a relay's tx
		// capture of a forwarded query keeps the original Src and must
		// not be misattributed.
		if p.Node != "" && p.Node != node {
			continue
		}
		switch {
		case p.Dir == "tx" && h.Kind == "query" && p.Src == node:
			index[h.QID] = len(out)
			out = append(out, QueryPair{QID: h.QID, Node: node, SentAt: p.Time})
		case p.Dir == "rx" && (h.Kind == "response" || h.Kind == "query_resp"):
			if i, ok := index[h.QID]; ok && !out[i].Answered {
				out[i].Answered = true
				out[i].AnsweredAt = p.Time
			}
		}
	}
	return out
}

// QueryRTTs extracts the round-trip times of answered queries, sorted
// ascending.
func QueryRTTs(pairs []QueryPair) []time.Duration {
	var out []time.Duration
	for _, q := range pairs {
		if q.Answered {
			out = append(out, q.RTT())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResponsivenessCI returns the Wilson score 95% confidence interval for
// the responsiveness estimate — appropriate for the binomial
// "found-within-deadline" proportion even at small run counts.
func ResponsivenessCI(ms []RunMetric, deadline time.Duration) (lo, hi float64) {
	n := float64(len(ms))
	if n == 0 {
		return 0, 0
	}
	p := Responsiveness(ms, deadline)
	const z = 1.96
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WriteCSV exports per-run metrics as CSV for external analysis tools.
// Columns: run id, the union of treatment factors (sorted), expected,
// found, complete, and t_R in seconds (empty when incomplete).
func WriteCSV(w io.Writer, ms []RunMetric) error {
	factorSet := map[string]bool{}
	for _, m := range ms {
		for f := range m.Treatment {
			factorSet[f] = true
		}
	}
	factors := make([]string, 0, len(factorSet))
	for f := range factorSet {
		factors = append(factors, f)
	}
	sort.Strings(factors)

	cw := csv.NewWriter(w)
	header := append([]string{"run"}, factors...)
	header = append(header, "expected", "found", "complete", "t_R_seconds")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range ms {
		row := []string{fmt.Sprint(m.RunID)}
		for _, f := range factors {
			row = append(row, m.Treatment[f])
		}
		tr := ""
		if m.Complete {
			tr = fmt.Sprintf("%.9f", m.TR.Seconds())
		}
		row = append(row, fmt.Sprint(m.Expected), fmt.Sprint(m.Found),
			fmt.Sprint(m.Complete), tr)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Package node implements the NodeManager, the central component of a
// node participating in experiments (§VI-A, Fig. 12). It exposes the
// experiment process actions (the SD actions of §V), the fault injection
// actions (§IV-D1) and management procedures; their implementation is
// delegated to sub-components — the SD actions to an sd.Agent (the
// prototype delegated to Avahi), the faults to the fault package. All
// components use the node's event recorder to signal event occurrences.
//
// A plugin mechanism lets experimenters extend the action vocabulary with
// custom functions (§IV-B: "a plugin concept to extend these data with
// custom measurements on demand").
package node

import (
	"fmt"
	"strconv"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/fault"
	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/store"
)

// DefaultServiceType is the service class used when an action does not
// name one.
const DefaultServiceType sd.ServiceType = "_expproc._udp"

// PluginFunc is a custom action or measurement registered by an
// experimenter.
type PluginFunc func(params map[string]string) error

// Manager is one node's experiment agent.
type Manager struct {
	s     *sched.Scheduler
	nd    *netem.Node
	rec   *eventlog.Recorder
	agent sd.Agent

	faults  map[string][]activeFault // kind → active injections
	plugins map[string]PluginFunc
	extras  []store.ExtraMeasurement // plugin measurements of the run
}

type activeFault struct {
	inj     fault.Injection
	applied *fault.Applied
}

// New creates a manager for a netem node. agent may be nil for pure
// environment nodes. The recorder should report to the master's bus.
func New(s *sched.Scheduler, nd *netem.Node, rec *eventlog.Recorder, agent sd.Agent) *Manager {
	return &Manager{
		s: s, nd: nd, rec: rec, agent: agent,
		faults:  make(map[string][]activeFault),
		plugins: make(map[string]PluginFunc),
	}
}

// ID returns the platform node id.
func (m *Manager) ID() string { return string(m.nd.ID()) }

// Recorder returns the node's event recorder.
func (m *Manager) Recorder() *eventlog.Recorder { return m.rec }

// Node returns the underlying netem node.
func (m *Manager) Node() *netem.Node { return m.nd }

// Agent returns the SD agent (nil on environment nodes).
func (m *Manager) Agent() sd.Agent { return m.agent }

// Emit records an event on this node.
func (m *Manager) Emit(typ string, params map[string]string) {
	m.rec.Emit(typ, params)
}

// LocalTime returns the node's local clock reading; the master's time-sync
// estimator probes it (§IV-B3).
func (m *Manager) LocalTime() time.Time { return m.nd.Clock().Now() }

// AddExtra records a named plugin measurement for the current run; the
// master harvests it into the level-2 store, from where conditioning moves
// it into the ExtraRunMeasurements table (§IV-B5: plugins have a separate
// storage location that must be accessible during collection).
func (m *Manager) AddExtra(name string, content []byte) {
	m.extras = append(m.extras, store.ExtraMeasurement{
		Run: m.rec.Run(), Node: m.ID(), Name: name, Content: content,
	})
}

// HarvestExtras returns and clears the plugin measurements.
func (m *Manager) HarvestExtras() []store.ExtraMeasurement {
	out := m.extras
	m.extras = nil
	return out
}

// RegisterPlugin adds a custom action; it becomes invocable from process
// descriptions under its name.
func (m *Manager) RegisterPlugin(name string, fn PluginFunc) {
	if _, dup := m.plugins[name]; dup {
		panic("node: duplicate plugin " + name)
	}
	m.plugins[name] = fn
}

// PrepareRun resets per-run state: the run id on the recorder, leftover
// packets and rules in the network, pending faults, and packet captures
// (§IV-C1: "the whole environment of the experiment process must be reset
// to a defined initial working condition").
func (m *Manager) PrepareRun(run int) {
	m.rec.SetRun(run)
	m.StopAllFaults()
	m.nd.ResetRunState()
	m.nd.ClearCaptures()
	m.nd.SetCapture(true)
	m.nd.SetTagging(true)
	m.Emit(eventlog.EvRunInit, map[string]string{"run": strconv.Itoa(run)})
}

// CleanupRun terminates a run on this node (§IV-C1 clean-up phase).
func (m *Manager) CleanupRun(run int) {
	if m.agent != nil {
		m.agent.Exit()
	}
	m.StopAllFaults()
	m.Emit(eventlog.EvRunExit, map[string]string{"run": strconv.Itoa(run)})
}

// HarvestRun returns and clears the packet captures of the current run.
func (m *Manager) HarvestRun() []store.PacketRecord {
	caps := m.nd.Captures()
	out := make([]store.PacketRecord, len(caps))
	for i, c := range caps {
		out[i] = store.FromCapture(c)
	}
	m.nd.ClearCaptures()
	return out
}

// StopAllFaults deactivates every active fault injection.
func (m *Manager) StopAllFaults() {
	for kind, list := range m.faults {
		for _, af := range list {
			af.applied.Cancel(af.inj)
		}
		delete(m.faults, kind)
	}
}

// ActiveFaults returns the number of active injections.
func (m *Manager) ActiveFaults() int {
	n := 0
	for _, list := range m.faults {
		n += len(list)
	}
	return n
}

// Execute dispatches one experiment action (process.Executor contract for
// node-bound processes).
func (m *Manager) Execute(action string, params map[string]string) error {
	switch action {
	case "sd_init":
		return m.sdInit(params)
	case "sd_exit":
		m.needAgent()
		m.agent.Exit()
		return nil
	case "sd_start_search":
		m.needAgent()
		m.agent.StartSearch(serviceType(params))
		return nil
	case "sd_stop_search":
		m.needAgent()
		m.agent.StopSearch(serviceType(params))
		return nil
	case "sd_start_publish":
		m.needAgent()
		m.agent.StartPublish(m.instance(params))
		return nil
	case "sd_stop_publish":
		m.needAgent()
		m.agent.StopPublish(m.instanceName(params))
		return nil
	case "sd_update_publish":
		m.needAgent()
		inst := m.instance(params)
		inst.TXT = map[string]string{"updated": "1"}
		m.agent.UpdatePublish(inst)
		return nil
	case "fault_interface", "fault_msg_loss", "fault_msg_delay",
		"fault_path_loss", "fault_path_delay":
		return m.startFault(action, params)
	case "fault_stop":
		return m.stopFault(params)
	default:
		if fn, ok := m.plugins[action]; ok {
			return fn(params)
		}
		return fmt.Errorf("node %s: unknown action %q", m.ID(), action)
	}
}

func (m *Manager) needAgent() {
	if m.agent == nil {
		panic("node: SD action on a node without SD agent")
	}
}

func (m *Manager) sdInit(params map[string]string) error {
	m.needAgent()
	role := sd.Role(params["role"])
	switch role {
	case sd.RoleSU, sd.RoleSM, sd.RoleSCM:
	case "":
		return fmt.Errorf("node %s: sd_init without role", m.ID())
	default:
		return fmt.Errorf("node %s: unknown SD role %q", m.ID(), params["role"])
	}
	return m.agent.Init(role)
}

func serviceType(params map[string]string) sd.ServiceType {
	if t := params["type"]; t != "" {
		return sd.ServiceType(t)
	}
	return DefaultServiceType
}

func (m *Manager) instanceName(params map[string]string) string {
	if n := params["name"]; n != "" {
		return n
	}
	return m.ID() + "." + string(serviceType(params))
}

func (m *Manager) instance(params map[string]string) sd.Instance {
	return sd.Instance{
		Name:    m.instanceName(params),
		Type:    serviceType(params),
		Node:    m.nd.ID(),
		Address: params["address"],
		Port:    atoiDefault(params["port"], 4711),
	}
}

// startFault creates, schedules and registers a fault injection. Common
// parameters: direction, proto (default "sd"), duration_s, rate,
// randomseed; specific parameters: prob, delay_ms, peer. The action emits
// a <kind>_start event; the scheduled stop (if timed) emits <kind>_stop
// (§IV-D3).
func (m *Manager) startFault(kind string, params map[string]string) error {
	dir := fault.Direction(params["direction"])
	if dir == "" {
		dir = fault.DirBoth
	}
	proto := params["proto"]
	if proto == "" {
		proto = "sd"
	}
	seed := int64(atoiDefault(params["randomseed"], 1))
	var inj fault.Injection
	var err error
	switch kind {
	case "fault_interface":
		inj, err = fault.NewInterfaceFault(m.nd, dir, seed)
	case "fault_msg_loss":
		inj, err = fault.NewMessageLoss(m.nd, atofDefault(params["prob"], 1), dir, proto, seed)
	case "fault_msg_delay":
		inj, err = fault.NewMessageDelay(m.nd, msParam(params, "delay_ms"), dir, proto, seed)
	case "fault_path_loss":
		inj, err = fault.NewPathLoss(m.nd, netem.NodeID(params["peer"]), atofDefault(params["prob"], 1), dir, proto, seed)
	case "fault_path_delay":
		inj, err = fault.NewPathDelay(m.nd, netem.NodeID(params["peer"]), msParam(params, "delay_ms"), dir, proto, seed)
	}
	if err != nil {
		return err
	}
	tm := fault.Timing{
		Duration: time.Duration(atofDefault(params["duration_s"], 0) * float64(time.Second)),
		Rate:     atofDefault(params["rate"], 0),
		Seed:     seed,
	}
	applied := fault.Apply(m.s, inj, tm, func(what string) {
		m.Emit(kind+"_"+what, map[string]string{"target": m.ID()})
	})
	m.faults[kind] = append(m.faults[kind], activeFault{inj: inj, applied: applied})
	return nil
}

// stopFault stops active injections: all of one kind (param kind), or all.
func (m *Manager) stopFault(params map[string]string) error {
	kind := params["kind"]
	if kind == "" {
		m.StopAllFaults()
		return nil
	}
	list, ok := m.faults[kind]
	if !ok {
		return fmt.Errorf("node %s: no active fault of kind %q", m.ID(), kind)
	}
	for _, af := range list {
		af.applied.Cancel(af.inj)
	}
	delete(m.faults, kind)
	m.Emit(kind+"_stop", map[string]string{"target": m.ID()})
	return nil
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

func atofDefault(s string, def float64) float64 {
	if s == "" {
		return def
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	return def
}

func msParam(params map[string]string, key string) time.Duration {
	return time.Duration(atofDefault(params[key], 0) * float64(time.Millisecond))
}

// Package node implements the NodeManager, the central component of a
// node participating in experiments (§VI-A, Fig. 12). It exposes the
// experiment process actions (the SD actions of §V), the fault injection
// actions (§IV-D1) and management procedures; their implementation is
// delegated to sub-components — the SD actions to an sd.Agent (the
// prototype delegated to Avahi), the faults to the fault package. All
// components use the node's event recorder to signal event occurrences.
//
// A plugin mechanism lets experimenters extend the action vocabulary with
// custom functions (§IV-B: "a plugin concept to extend these data with
// custom measurements on demand").
package node

import (
	"fmt"
	"strconv"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/fault"
	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/store"
)

// DefaultServiceType is the service class used when an action does not
// name one.
const DefaultServiceType sd.ServiceType = "_expproc._udp"

// PluginFunc is a custom action or measurement registered by an
// experimenter.
type PluginFunc func(params map[string]string) error

// Manager is one node's experiment agent.
type Manager struct {
	s     *sched.Scheduler
	nd    *netem.Node
	rec   *eventlog.Recorder
	agent sd.Agent

	faults  map[string][]activeFault // kind → active injections
	plugins map[string]PluginFunc
	extras  []store.ExtraMeasurement // plugin measurements of the run
}

// activeFault is one registered injection or scenario; cancel stops its
// pending transitions and deactivates it.
type activeFault struct {
	cancel func()
}

// faultEvents maps each fault action to its registry-constant transition
// events (§IV-D3: one event per action; see internal/eventlog/names.go).
var faultEvents = map[string]struct{ start, stop eventlog.Name }{
	"fault_interface":     {eventlog.EvFaultInterfaceStart, eventlog.EvFaultInterfaceStop},
	"fault_msg_loss":      {eventlog.EvFaultMsgLossStart, eventlog.EvFaultMsgLossStop},
	"fault_msg_delay":     {eventlog.EvFaultMsgDelayStart, eventlog.EvFaultMsgDelayStop},
	"fault_path_loss":     {eventlog.EvFaultPathLossStart, eventlog.EvFaultPathLossStop},
	"fault_path_delay":    {eventlog.EvFaultPathDelayStart, eventlog.EvFaultPathDelayStop},
	"fault_msg_corrupt":   {eventlog.EvFaultMsgCorruptStart, eventlog.EvFaultMsgCorruptStop},
	"fault_msg_duplicate": {eventlog.EvFaultMsgDuplicateStart, eventlog.EvFaultMsgDuplicateStop},
	"fault_msg_reorder":   {eventlog.EvFaultMsgReorderStart, eventlog.EvFaultMsgReorderStop},
	"fault_rate_limit":    {eventlog.EvFaultRateLimitStart, eventlog.EvFaultRateLimitStop},
	"fault_node_kill":     {eventlog.EvFaultNodeKillStart, eventlog.EvFaultNodeKillStop},
	"fault_node_pause":    {eventlog.EvFaultNodePauseStart, eventlog.EvFaultNodePauseStop},
	"fault_node_stress":   {eventlog.EvFaultNodeStressStart, eventlog.EvFaultNodeStressStop},
}

// New creates a manager for a netem node. agent may be nil for pure
// environment nodes. The recorder should report to the master's bus.
func New(s *sched.Scheduler, nd *netem.Node, rec *eventlog.Recorder, agent sd.Agent) *Manager {
	return &Manager{
		s: s, nd: nd, rec: rec, agent: agent,
		faults:  make(map[string][]activeFault),
		plugins: make(map[string]PluginFunc),
	}
}

// ID returns the platform node id.
func (m *Manager) ID() string { return string(m.nd.ID()) }

// Recorder returns the node's event recorder.
func (m *Manager) Recorder() *eventlog.Recorder { return m.rec }

// Node returns the underlying netem node.
func (m *Manager) Node() *netem.Node { return m.nd }

// Agent returns the SD agent (nil on environment nodes).
func (m *Manager) Agent() sd.Agent { return m.agent }

// Emit records an event on this node.
func (m *Manager) Emit(typ string, params map[string]string) {
	m.rec.Emit(typ, params)
}

// LocalTime returns the node's local clock reading; the master's time-sync
// estimator probes it (§IV-B3).
func (m *Manager) LocalTime() time.Time { return m.nd.Clock().Now() }

// AddExtra records a named plugin measurement for the current run; the
// master harvests it into the level-2 store, from where conditioning moves
// it into the ExtraRunMeasurements table (§IV-B5: plugins have a separate
// storage location that must be accessible during collection).
func (m *Manager) AddExtra(name string, content []byte) {
	m.extras = append(m.extras, store.ExtraMeasurement{
		Run: m.rec.Run(), Node: m.ID(), Name: name, Content: content,
	})
}

// HarvestExtras returns and clears the plugin measurements.
func (m *Manager) HarvestExtras() []store.ExtraMeasurement {
	out := m.extras
	m.extras = nil
	return out
}

// RegisterPlugin adds a custom action; it becomes invocable from process
// descriptions under its name.
func (m *Manager) RegisterPlugin(name string, fn PluginFunc) {
	if _, dup := m.plugins[name]; dup {
		panic("node: duplicate plugin " + name)
	}
	m.plugins[name] = fn
}

// PrepareRun resets per-run state: the run id on the recorder, leftover
// packets and rules in the network, pending faults, and packet captures
// (§IV-C1: "the whole environment of the experiment process must be reset
// to a defined initial working condition").
func (m *Manager) PrepareRun(run int) {
	m.rec.SetRun(run)
	m.StopAllFaults()
	m.nd.ResetRunState()
	m.nd.ClearCaptures()
	m.nd.SetCapture(true)
	m.nd.SetTagging(true)
	m.Emit(eventlog.EvRunInit, map[string]string{"run": strconv.Itoa(run)})
}

// CleanupRun terminates a run on this node (§IV-C1 clean-up phase).
func (m *Manager) CleanupRun(run int) {
	if m.agent != nil {
		m.agent.Exit()
	}
	m.StopAllFaults()
	m.Emit(eventlog.EvRunExit, map[string]string{"run": strconv.Itoa(run)})
}

// HarvestRun returns and clears the packet captures of the current run.
func (m *Manager) HarvestRun() []store.PacketRecord {
	caps := m.nd.Captures()
	out := make([]store.PacketRecord, len(caps))
	for i, c := range caps {
		out[i] = store.FromCapture(c)
	}
	m.nd.ClearCaptures()
	return out
}

// StopAllFaults deactivates every active fault injection and scenario.
func (m *Manager) StopAllFaults() {
	for kind, list := range m.faults {
		for _, af := range list {
			af.cancel()
		}
		delete(m.faults, kind)
	}
}

// ActiveFaults returns the number of active injections.
func (m *Manager) ActiveFaults() int {
	n := 0
	for _, list := range m.faults {
		n += len(list)
	}
	return n
}

// Execute dispatches one experiment action (process.Executor contract for
// node-bound processes).
func (m *Manager) Execute(action string, params map[string]string) error {
	switch action {
	case "sd_init":
		return m.sdInit(params)
	case "sd_exit":
		m.needAgent()
		m.agent.Exit()
		return nil
	case "sd_start_search":
		m.needAgent()
		m.agent.StartSearch(serviceType(params))
		return nil
	case "sd_stop_search":
		m.needAgent()
		m.agent.StopSearch(serviceType(params))
		return nil
	case "sd_start_publish":
		m.needAgent()
		m.agent.StartPublish(m.instance(params))
		return nil
	case "sd_stop_publish":
		m.needAgent()
		m.agent.StopPublish(m.instanceName(params))
		return nil
	case "sd_update_publish":
		m.needAgent()
		inst := m.instance(params)
		inst.TXT = map[string]string{"updated": "1"}
		m.agent.UpdatePublish(inst)
		return nil
	case "fault_interface", "fault_msg_loss", "fault_msg_delay",
		"fault_path_loss", "fault_path_delay",
		"fault_msg_corrupt", "fault_msg_duplicate", "fault_msg_reorder",
		"fault_rate_limit",
		"fault_node_kill", "fault_node_pause", "fault_node_stress":
		return m.startFault(action, params)
	case "fault_flap":
		return m.startFlap(params)
	case "fault_ramp":
		return m.startRamp(params)
	case "fault_stop":
		return m.stopFault(params)
	default:
		if fn, ok := m.plugins[action]; ok {
			return fn(params)
		}
		return fmt.Errorf("node %s: unknown action %q", m.ID(), action)
	}
}

func (m *Manager) needAgent() {
	if m.agent == nil {
		panic("node: SD action on a node without SD agent")
	}
}

func (m *Manager) sdInit(params map[string]string) error {
	m.needAgent()
	role := sd.Role(params["role"])
	switch role {
	case sd.RoleSU, sd.RoleSM, sd.RoleSCM:
	case "":
		return fmt.Errorf("node %s: sd_init without role", m.ID())
	default:
		return fmt.Errorf("node %s: unknown SD role %q", m.ID(), params["role"])
	}
	return m.agent.Init(role)
}

func serviceType(params map[string]string) sd.ServiceType {
	if t := params["type"]; t != "" {
		return sd.ServiceType(t)
	}
	return DefaultServiceType
}

func (m *Manager) instanceName(params map[string]string) string {
	if n := params["name"]; n != "" {
		return n
	}
	return m.ID() + "." + string(serviceType(params))
}

func (m *Manager) instance(params map[string]string) sd.Instance {
	return sd.Instance{
		Name:    m.instanceName(params),
		Type:    serviceType(params),
		Node:    m.nd.ID(),
		Address: params["address"],
		Port:    atoiDefault(params["port"], 4711),
	}
}

// newInjection builds the fault injection for one fault action. Common
// parameters: direction, proto (default "sd"), randomseed; specific
// parameters: prob, corr, delay_ms, peer, rate_kbps, burst, factor.
func (m *Manager) newInjection(kind string, params map[string]string) (fault.Injection, error) {
	dir := fault.Direction(params["direction"])
	if dir == "" {
		dir = fault.DirBoth
	}
	proto := params["proto"]
	if proto == "" {
		proto = "sd"
	}
	seed := int64(atoiDefault(params["randomseed"], 1))
	switch kind {
	case "fault_interface":
		return fault.NewInterfaceFault(m.nd, dir, seed)
	case "fault_msg_loss":
		return fault.NewMessageLoss(m.nd, atofDefault(params["prob"], 1), dir, proto, seed)
	case "fault_msg_delay":
		return fault.NewMessageDelay(m.nd, msParam(params, "delay_ms"), dir, proto, seed)
	case "fault_path_loss":
		return fault.NewPathLoss(m.nd, netem.NodeID(params["peer"]), atofDefault(params["prob"], 1), dir, proto, seed)
	case "fault_path_delay":
		return fault.NewPathDelay(m.nd, netem.NodeID(params["peer"]), msParam(params, "delay_ms"), dir, proto, seed)
	case "fault_msg_corrupt":
		return fault.NewMessageCorrupt(m.nd, atofDefault(params["prob"], 1), dir, proto, seed)
	case "fault_msg_duplicate":
		return fault.NewMessageDuplicate(m.nd, atofDefault(params["prob"], 1), dir, proto, seed)
	case "fault_msg_reorder":
		return fault.NewMessageReorder(m.nd, atofDefault(params["prob"], 0.5),
			atofDefault(params["corr"], 0), msParam(params, "delay_ms"), dir, proto, seed)
	case "fault_rate_limit":
		return fault.NewRateLimit(m.nd, int64(atofDefault(params["rate_kbps"], 64)*1000),
			atoiDefault(params["burst"], 0), dir, proto, seed)
	case "fault_node_kill":
		return fault.NewNodeKill(m.nd), nil
	case "fault_node_pause":
		return fault.NewNodePause(m.nd), nil
	case "fault_node_stress":
		return fault.NewNodeStress(m.nd, atofDefault(params["factor"], 1))
	default:
		return nil, fmt.Errorf("node %s: unknown fault kind %q", m.ID(), kind)
	}
}

// emitTransition returns an onEvent callback translating "start"/"stop"
// notifications into the kind's registry events.
func (m *Manager) emitTransition(kind string) func(string) {
	ev := faultEvents[kind]
	return func(what string) {
		name := ev.start
		if what == "stop" {
			name = ev.stop
		}
		m.Emit(name, map[string]string{"target": m.ID()})
	}
}

// startFault creates, schedules and registers a fault injection. Common
// parameters: direction, proto (default "sd"), duration_s, rate,
// randomseed. The action emits a <kind>_start event; the scheduled stop
// (if timed) emits <kind>_stop (§IV-D3).
func (m *Manager) startFault(kind string, params map[string]string) error {
	inj, err := m.newInjection(kind, params)
	if err != nil {
		return err
	}
	tm := fault.Timing{
		Duration: time.Duration(atofDefault(params["duration_s"], 0) * float64(time.Second)),
		Rate:     atofDefault(params["rate"], 0),
		Seed:     int64(atoiDefault(params["randomseed"], 1)),
	}
	applied := fault.Apply(m.s, inj, tm, m.emitTransition(kind))
	m.faults[kind] = append(m.faults[kind], activeFault{cancel: func() { applied.Cancel(inj) }})
	return nil
}

// startFlap schedules a flap scenario: the inner fault (param kind) is
// toggled with period_s and duty for cycles periods. Inner fault
// parameters ride along on the same action.
func (m *Manager) startFlap(params map[string]string) error {
	kind := params["kind"]
	if _, ok := faultEvents[kind]; !ok {
		return fmt.Errorf("node %s: fault_flap with unknown kind %q", m.ID(), kind)
	}
	inj, err := m.newInjection(kind, params)
	if err != nil {
		return err
	}
	period := time.Duration(atofDefault(params["period_s"], 1) * float64(time.Second))
	sc, err := fault.Flap(m.s, inj, period,
		atofDefault(params["duty"], 0.5), atoiDefault(params["cycles"], 1),
		m.emitTransition(kind))
	if err != nil {
		return err
	}
	m.faults["fault_flap"] = append(m.faults["fault_flap"], activeFault{cancel: sc.Cancel})
	return nil
}

// rampKinds maps the fault kinds a ramp can sweep to the parameter the
// interpolated level feeds.
var rampKinds = map[string]string{
	"fault_msg_loss":   "prob",
	"fault_msg_delay":  "delay_ms",
	"fault_rate_limit": "rate_kbps",
}

// startRamp schedules a ramp scenario sweeping the inner fault's intensity
// from from to to in steps equal steps of step_s seconds each.
func (m *Manager) startRamp(params map[string]string) error {
	kind := params["kind"]
	levelParam, ok := rampKinds[kind]
	if !ok {
		return fmt.Errorf("node %s: fault_ramp cannot sweep kind %q", m.ID(), kind)
	}
	mk := func(level float64) (fault.Injection, error) {
		p := make(map[string]string, len(params)+1)
		for k, v := range params {
			p[k] = v
		}
		p[levelParam] = strconv.FormatFloat(level, 'g', -1, 64)
		return m.newInjection(kind, p)
	}
	stepDur := time.Duration(atofDefault(params["step_s"], 1) * float64(time.Second))
	steps := atoiDefault(params["steps"], 1)
	sc, err := fault.Ramp(m.s, mk,
		atofDefault(params["from"], 0), atofDefault(params["to"], 1),
		steps, stepDur,
		func(step int, level float64) {
			name := eventlog.EvFaultRampStep
			if step == steps {
				name = eventlog.EvFaultRampDone
			}
			m.Emit(name, map[string]string{
				"target": m.ID(), "kind": kind,
				"step":  strconv.Itoa(step),
				"level": strconv.FormatFloat(level, 'g', -1, 64),
			})
		})
	if err != nil {
		return err
	}
	m.faults["fault_ramp"] = append(m.faults["fault_ramp"], activeFault{cancel: sc.Cancel})
	return nil
}

// stopFault stops active injections: all of one kind (param kind), or all.
func (m *Manager) stopFault(params map[string]string) error {
	kind := params["kind"]
	if kind == "" {
		m.StopAllFaults()
		return nil
	}
	list, ok := m.faults[kind]
	if !ok {
		return fmt.Errorf("node %s: no active fault of kind %q", m.ID(), kind)
	}
	for _, af := range list {
		af.cancel()
	}
	delete(m.faults, kind)
	if ev, ok := faultEvents[kind]; ok {
		m.Emit(ev.stop, map[string]string{"target": m.ID()})
	}
	return nil
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

func atofDefault(s string, def float64) float64 {
	if s == "" {
		return def
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	return def
}

func msParam(params map[string]string, key string) time.Duration {
	return time.Duration(atofDefault(params[key], 0) * float64(time.Millisecond))
}

package node

import (
	"strings"
	"testing"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/netem"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/sd/zeroconf"
	"excovery/internal/vclock"
)

// rig builds two connected managers with zeroconf agents and a shared bus.
type rig struct {
	s    *sched.Scheduler
	nw   *netem.Network
	bus  *eventlog.Bus
	mgrs map[string]*Manager
}

func newRig(t *testing.T) *rig {
	t.Helper()
	s := sched.NewVirtual()
	nw := netem.New(s, 3)
	bus := eventlog.NewBus(s)
	r := &rig{s: s, nw: nw, bus: bus, mgrs: map[string]*Manager{}}
	for _, id := range []string{"a", "b"} {
		id := id
		nd := nw.AddNode(netem.NodeID(id), netem.NodeParams{})
		rec := eventlog.NewRecorder(id, vclock.Perfect{S: s}, func(ev eventlog.Event) { bus.Publish(ev) })
		agent := zeroconf.New(s, nd, zeroconf.Config{}, func(typ string, p map[string]string) {
			rec.Emit(typ, p)
		}, int64(len(id)))
		mgr := New(s, nd, rec, agent)
		nd.SetHandler(func(p *netem.Packet) {
			if p.Proto == zeroconf.Proto {
				agent.HandlePacket(p)
			}
		})
		r.mgrs[id] = mgr
	}
	nw.AddLink("a", "b", netem.LinkParams{Delay: time.Millisecond})
	return r
}

func (r *rig) run(t *testing.T, fn func()) {
	t.Helper()
	r.s.Go("test", fn)
	if err := r.s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestSDActionDispatch(t *testing.T) {
	r := newRig(t)
	a, b := r.mgrs["a"], r.mgrs["b"]
	r.run(t, func() {
		a.PrepareRun(0)
		b.PrepareRun(0)
		must(t, a.Execute("sd_init", map[string]string{"role": "SM"}))
		must(t, b.Execute("sd_init", map[string]string{"role": "SU"}))
		must(t, a.Execute("sd_start_publish", map[string]string{}))
		must(t, b.Execute("sd_start_search", map[string]string{}))
		r.s.Sleep(5 * time.Second)
		must(t, b.Execute("sd_stop_search", map[string]string{}))
		must(t, a.Execute("sd_stop_publish", map[string]string{}))
		must(t, a.Execute("sd_exit", nil))
		must(t, b.Execute("sd_exit", nil))
	})
	// Discovery events flowed through the managers' recorders.
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: sd.EvServiceAdd, Nodes: []string{"b"}}); !ok {
		t.Fatal("no sd_service_add recorded")
	}
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: sd.EvStopPublish, Nodes: []string{"a"}}); !ok {
		t.Fatal("no sd_stop_publish recorded")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSDInitValidation(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		if err := a.Execute("sd_init", map[string]string{}); err == nil {
			t.Error("sd_init without role accepted")
		}
		if err := a.Execute("sd_init", map[string]string{"role": "DJ"}); err == nil {
			t.Error("unknown role accepted")
		}
	})
}

func TestUnknownActionErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func() {
		err := r.mgrs["a"].Execute("warp_drive", nil)
		if err == nil || !strings.Contains(err.Error(), "unknown action") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestPluginDispatch(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	got := map[string]string{}
	a.RegisterPlugin("measure_cpu", func(params map[string]string) error {
		got = params
		return nil
	})
	r.run(t, func() {
		must(t, a.Execute("measure_cpu", map[string]string{"interval": "5"}))
	})
	if got["interval"] != "5" {
		t.Fatalf("plugin params = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate plugin registration should panic")
		}
	}()
	a.RegisterPlugin("measure_cpu", func(map[string]string) error { return nil })
}

func TestFaultActionLifecycle(t *testing.T) {
	r := newRig(t)
	a, b := r.mgrs["a"], r.mgrs["b"]
	delivered := 0
	b.Node().SetHandler(func(p *netem.Packet) { delivered++ })
	r.run(t, func() {
		must(t, a.Execute("fault_msg_loss", map[string]string{
			"prob": "1.0", "direction": "transmit", "proto": "sd",
		}))
		if a.ActiveFaults() != 1 {
			t.Errorf("active faults = %d", a.ActiveFaults())
		}
		a.Node().Send(netem.Unicast("b"), "sd", nil)
		r.s.Sleep(50 * time.Millisecond)
		must(t, a.Execute("fault_stop", map[string]string{"kind": "fault_msg_loss"}))
		if a.ActiveFaults() != 0 {
			t.Errorf("faults after stop = %d", a.ActiveFaults())
		}
		a.Node().Send(netem.Unicast("b"), "sd", nil)
		r.s.Sleep(50 * time.Millisecond)
	})
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// The stop action emitted its event (§IV-D3).
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: "fault_msg_loss_stop"}); !ok {
		t.Fatal("no fault stop event")
	}
}

func TestFaultTimedActivation(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		must(t, a.Execute("fault_interface", map[string]string{
			"duration_s": "10", "rate": "0.5", "randomseed": "3",
		}))
		r.s.Sleep(time.Minute)
		if a.ActiveFaults() == 0 {
			t.Error("fault bookkeeping lost the injection")
		}
	})
	// Both start and stop events occurred within the window.
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: "fault_interface_start"}); !ok {
		t.Fatal("no start event")
	}
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: "fault_interface_stop"}); !ok {
		t.Fatal("no stop event")
	}
}

func TestFaultStopAllAndUnknownKind(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		must(t, a.Execute("fault_msg_delay", map[string]string{"delay_ms": "10"}))
		must(t, a.Execute("fault_path_loss", map[string]string{"peer": "b", "prob": "0.5"}))
		if a.ActiveFaults() != 2 {
			t.Errorf("active = %d", a.ActiveFaults())
		}
		if err := a.Execute("fault_stop", map[string]string{"kind": "fault_interface"}); err == nil {
			t.Error("stopping absent kind should error")
		}
		must(t, a.Execute("fault_stop", map[string]string{}))
		if a.ActiveFaults() != 0 {
			t.Errorf("active after stop-all = %d", a.ActiveFaults())
		}
	})
}

func TestFaultBadParams(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		if err := a.Execute("fault_msg_loss", map[string]string{"prob": "2.0"}); err == nil {
			t.Error("probability 2.0 accepted")
		}
		if err := a.Execute("fault_msg_loss", map[string]string{"direction": "sideways"}); err == nil {
			t.Error("bad direction accepted")
		}
	})
}

func TestPrepareRunResetsState(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		a.PrepareRun(0)
		must(t, a.Execute("fault_msg_delay", map[string]string{"delay_ms": "5"}))
		a.Emit("custom", nil)
		a.Node().Send(netem.Unicast("b"), "sd", []byte("x"))
		r.s.Sleep(10 * time.Millisecond)
		a.PrepareRun(1)
		if a.ActiveFaults() != 0 {
			t.Error("faults survived PrepareRun")
		}
		if len(a.Node().Captures()) != 0 {
			t.Error("captures survived PrepareRun")
		}
		if a.Recorder().Run() != 1 {
			t.Errorf("run id = %d", a.Recorder().Run())
		}
	})
	// Events are scoped per run.
	if evs := a.Recorder().RunEvents(0); len(evs) < 2 {
		t.Fatalf("run 0 events = %d", len(evs))
	}
	for _, ev := range a.Recorder().RunEvents(1) {
		if ev.Type == "custom" {
			t.Fatal("run 0 event leaked into run 1")
		}
	}
}

func TestCleanupRunExitsAgentAndFaults(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		a.PrepareRun(0)
		must(t, a.Execute("sd_init", map[string]string{"role": "SM"}))
		must(t, a.Execute("sd_start_publish", nil))
		must(t, a.Execute("fault_msg_delay", map[string]string{"delay_ms": "5"}))
		a.CleanupRun(0)
		if a.ActiveFaults() != 0 {
			t.Error("faults survived CleanupRun")
		}
	})
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: sd.EvExitDone, Nodes: []string{"a"}}); !ok {
		t.Fatal("CleanupRun did not exit the agent")
	}
	if _, ok := r.bus.FindFirst(eventlog.Match{Type: "run_exit"}); !ok {
		t.Fatal("no run_exit event")
	}
}

func TestHarvestRunPackets(t *testing.T) {
	r := newRig(t)
	a, b := r.mgrs["a"], r.mgrs["b"]
	r.run(t, func() {
		a.PrepareRun(0)
		b.PrepareRun(0)
		a.Node().Send(netem.Unicast("b"), "sd", []byte("ping"))
		r.s.Sleep(10 * time.Millisecond)
	})
	pkts := a.HarvestRun()
	if len(pkts) != 1 || pkts[0].Dir != "tx" || string(pkts[0].Data) != "ping" {
		t.Fatalf("a packets = %+v", pkts)
	}
	// Tagging was enabled by PrepareRun.
	if pkts[0].Tag == 0 {
		t.Fatal("packet tagger inactive")
	}
	if got := b.HarvestRun(); len(got) != 1 || got[0].Dir != "rx" {
		t.Fatalf("b packets = %+v", got)
	}
	// Harvest clears.
	if len(a.HarvestRun()) != 0 {
		t.Fatal("harvest did not clear captures")
	}
}

func TestInstanceDefaults(t *testing.T) {
	r := newRig(t)
	a := r.mgrs["a"]
	r.run(t, func() {
		a.PrepareRun(0)
		must(t, a.Execute("sd_init", map[string]string{"role": "SM"}))
		must(t, a.Execute("sd_start_publish", map[string]string{}))
	})
	ev, ok := r.bus.FindFirst(eventlog.Match{Type: sd.EvStartPublish})
	if !ok {
		t.Fatal("no publish event")
	}
	if ev.Param("service") != "a._expproc._udp" {
		t.Fatalf("default instance name = %q", ev.Param("service"))
	}
	if ev.Param("node") != "a" {
		t.Fatalf("node param = %q", ev.Param("node"))
	}
}

func TestLocalTimeUsesNodeClock(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 1)
	nd := nw.AddNode("x", netem.NodeParams{Clock: vclock.NewSkewed(s, time.Second, 0)})
	rec := eventlog.NewRecorder("x", nd.Clock(), nil)
	mgr := New(s, nd, rec, nil)
	s.Go("t", func() {
		if got := mgr.LocalTime().Sub(s.Now()); got != time.Second {
			t.Errorf("LocalTime skew = %v", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

package timesync

import (
	"math/rand"
	"testing"
	"time"

	"excovery/internal/sched"
	"excovery/internal/vclock"
)

// jitteryProbe simulates a control channel with request/response latency:
// each probe sleeps a random delay, reads the node clock, and sleeps again.
func jitteryProbe(s *sched.Scheduler, c vclock.Clock, rng *rand.Rand, maxLeg time.Duration) Probe {
	return func() time.Time {
		s.Sleep(time.Duration(rng.Int63n(int64(maxLeg))))
		t := c.Now()
		s.Sleep(time.Duration(rng.Int63n(int64(maxLeg))))
		return t
	}
}

func TestMeasureExactOnInstantChannel(t *testing.T) {
	s := sched.NewVirtual()
	node := vclock.NewSkewed(s, 123*time.Millisecond, 0)
	est := &Estimator{Ref: vclock.Perfect{S: s}}
	s.Go("t", func() {
		m := est.Measure("n1", func() time.Time { return node.Now() })
		if m.Offset != 123*time.Millisecond {
			t.Errorf("offset = %v, want 123ms", m.Offset)
		}
		if m.ErrorBound != 0 {
			t.Errorf("bound = %v, want 0 on instant channel", m.ErrorBound)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureWithJitterWithinBound(t *testing.T) {
	s := sched.NewVirtual()
	trueOffset := -40 * time.Millisecond
	node := vclock.NewSkewed(s, trueOffset, 0)
	rng := rand.New(rand.NewSource(7))
	est := &Estimator{Ref: vclock.Perfect{S: s}, Samples: 9}
	s.Go("t", func() {
		m := est.Measure("n1", jitteryProbe(s, node, rng, 5*time.Millisecond))
		err := m.Offset - trueOffset
		if err < 0 {
			err = -err
		}
		if err > m.ErrorBound {
			t.Errorf("estimation error %v exceeds reported bound %v", err, m.ErrorBound)
		}
		if m.ErrorBound > 5*time.Millisecond {
			t.Errorf("bound %v too loose for 5ms legs", m.ErrorBound)
		}
		if m.Samples != 9 {
			t.Errorf("samples = %d", m.Samples)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMoreSamplesTightenBound(t *testing.T) {
	bound := func(samples int) time.Duration {
		s := sched.NewVirtual()
		node := vclock.NewSkewed(s, time.Millisecond, 0)
		rng := rand.New(rand.NewSource(3))
		est := &Estimator{Ref: vclock.Perfect{S: s}, Samples: samples}
		var b time.Duration
		s.Go("t", func() {
			m := est.Measure("n1", jitteryProbe(s, node, rng, 10*time.Millisecond))
			b = m.ErrorBound
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return b
	}
	if b1, b20 := bound(1), bound(20); b20 > b1 {
		t.Errorf("20 samples bound %v worse than 1 sample %v", b20, b1)
	}
}

func TestCorrectMapsToReferenceBase(t *testing.T) {
	s := sched.NewVirtual()
	node := vclock.NewSkewed(s, 250*time.Millisecond, 0)
	est := &Estimator{Ref: vclock.Perfect{S: s}}
	s.Go("t", func() {
		m := est.Measure("n1", func() time.Time { return node.Now() })
		s.Sleep(10 * time.Second)
		local := node.Now()
		ref := Correct(local, m)
		diff := ref.Sub(s.Now())
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("corrected time deviates by %v", diff)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureWithDrift(t *testing.T) {
	// With drift, the measured offset is only valid near the measurement
	// instant — exactly why the paper measures before every run.
	s := sched.NewVirtual()
	node := vclock.NewSkewed(s, 0, 200) // 200 ppm
	est := &Estimator{Ref: vclock.Perfect{S: s}}
	s.Go("t", func() {
		s.Sleep(1000 * time.Second) // drift accumulates 0.2 s
		m := est.Measure("n1", func() time.Time { return node.Now() })
		want := 200 * time.Millisecond
		diff := m.Offset - want
		if diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("offset = %v, want ≈ %v", m.Offset, want)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementString(t *testing.T) {
	m := Measurement{Node: "x", Offset: time.Millisecond, ErrorBound: time.Microsecond, Samples: 5}
	if got := m.String(); got == "" {
		t.Fatal("empty String()")
	}
}

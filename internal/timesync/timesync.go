// Package timesync measures the clock offset between the experiment
// master's reference clock and each participating node (§IV-B3).
//
// ExCovery mandates that the time difference of every participant to a
// reference clock is estimated before each run, so a valid global time line
// of events and packets can be constructed during conditioning. The
// estimator is Cristian's algorithm: the master samples a node's local
// clock over the control channel, timestamps the request and the response
// with the reference clock, and estimates
//
//	offset ≈ t_node − (t_send + t_recv)/2
//
// with an error bound of half the round-trip time. Multiple samples are
// taken and the one with the smallest RTT wins, which both tightens the
// bound and filters control-channel jitter. The platform requirement to
// "support quantification of the synchronization error" (§IV-A3) is met by
// reporting that bound alongside the estimate.
package timesync

import (
	"fmt"
	"time"

	"excovery/internal/vclock"
)

// Probe asks a node for its current local time. Implementations go over
// the control channel (in-process call, or XML-RPC in the distributed
// deployment). The call must be synchronous.
type Probe func() time.Time

// Measurement is one node's estimated clock deviation.
type Measurement struct {
	// Node is the measured node.
	Node string
	// Offset is the estimated local−reference clock difference.
	Offset time.Duration
	// ErrorBound is the half-RTT uncertainty of the estimate.
	ErrorBound time.Duration
	// Samples is the number of probes taken.
	Samples int
	// MeasuredAt is the reference time of the winning sample.
	MeasuredAt time.Time
}

func (m Measurement) String() string {
	return fmt.Sprintf("%s: offset %v ± %v (%d samples)", m.Node, m.Offset, m.ErrorBound, m.Samples)
}

// Estimator measures node clock offsets against a reference clock.
type Estimator struct {
	// Ref is the reference clock (the master's).
	Ref vclock.Clock
	// Samples per measurement; default 5.
	Samples int
}

// Measure estimates the clock offset of one node.
func (e *Estimator) Measure(node string, probe Probe) Measurement {
	n := e.Samples
	if n <= 0 {
		n = 5
	}
	best := Measurement{Node: node, Samples: n, ErrorBound: time.Duration(1<<63 - 1)}
	for i := 0; i < n; i++ {
		t0 := e.Ref.Now()
		tn := probe()
		t1 := e.Ref.Now()
		rtt := t1.Sub(t0)
		mid := t0.Add(rtt / 2)
		offset := tn.Sub(mid)
		if bound := rtt / 2; bound < best.ErrorBound {
			best.Offset = offset
			best.ErrorBound = bound
			best.MeasuredAt = mid
		}
	}
	return best
}

// Correct maps a local node timestamp onto the reference time base using a
// measured offset: ref = local − offset. Conditioning applies it to all
// events and captures of a run (§IV-F).
func Correct(local time.Time, m Measurement) time.Time {
	return local.Add(-m.Offset)
}
